// Experiment E1/E4: the paper's Example 1 decisions and the Example 4
// comparison-aware plan, timed end to end. There are no absolute numbers
// to match (the paper is theory); the point is that the full pipeline —
// inverse rules, function-term elimination, unfolding, containment — runs
// in microseconds on the paper's own instance.

#include <benchmark/benchmark.h>

#include "datalog/parser.h"
#include "relcont/relative_containment.h"
#include "rewriting/comparison_plans.h"
#include "rewriting/inverse_rules.h"

namespace relcont {
namespace {

constexpr char kViews[] =
    "redcars(CarNo, Model, Year) :- cardesc(CarNo, Model, red, Year).\n"
    "antiquecars(CarNo, Model, Year) :- "
    "cardesc(CarNo, Model, Color, Year), Year < 1970.\n"
    "caranddriver(Model, Review) :- review(Model, Review, 10).\n";

constexpr char kQ1[] =
    "q1(CarNo, Review) :- cardesc(CarNo, Model, C, Y), "
    "review(Model, Review, Rating).";
constexpr char kQ2[] =
    "q2(CarNo, Review) :- cardesc(CarNo, Model, C, Y), "
    "review(Model, Review, 10).";
constexpr char kQ3[] =
    "q3(CarNo, Review) :- cardesc(CarNo, Model, C, Y), "
    "review(Model, Review, 10), Y < 1970.";

void BM_Example1_Q1EquivQ2(benchmark::State& state) {
  Interner interner;
  ViewSet views = *ParseViews(kViews, &interner);
  GoalQuery q1{*ParseProgram(kQ1, &interner), interner.Lookup("q1")};
  GoalQuery q2{*ParseProgram(kQ2, &interner), interner.Lookup("q2")};
  for (auto _ : state) {
    Result<bool> eq = RelativelyEquivalent(q1, q2, views, &interner);
    if (!eq.ok() || !*eq) state.SkipWithError("wrong answer");
  }
}
BENCHMARK(BM_Example1_Q1EquivQ2);

void BM_Example1_Q1NotInQ3(benchmark::State& state) {
  Interner interner;
  ViewSet views = *ParseViews(kViews, &interner);
  GoalQuery q1{*ParseProgram(kQ1, &interner), interner.Lookup("q1")};
  GoalQuery q3{*ParseProgram(kQ3, &interner), interner.Lookup("q3")};
  for (auto _ : state) {
    Result<bool> r = RelativelyContainedViaExpansion(q1, q3, views, &interner);
    if (!r.ok() || *r) state.SkipWithError("wrong answer");
  }
}
BENCHMARK(BM_Example1_Q1NotInQ3);

void BM_Example1_Q3InQ1(benchmark::State& state) {
  Interner interner;
  ViewSet views = *ParseViews(kViews, &interner);
  GoalQuery q1{*ParseProgram(kQ1, &interner), interner.Lookup("q1")};
  GoalQuery q3{*ParseProgram(kQ3, &interner), interner.Lookup("q3")};
  for (auto _ : state) {
    Result<RelativeContainmentResult> r =
        RelativelyContainedWithComparisons(q3, q1, views, &interner);
    if (!r.ok() || !r->contained) state.SkipWithError("wrong answer");
  }
}
BENCHMARK(BM_Example1_Q3InQ1);

void BM_Example1_AblationNoRedCars(benchmark::State& state) {
  Interner interner;
  ViewSet views = *ParseViews(
      "antiquecars(CarNo, Model, Year) :- "
      "cardesc(CarNo, Model, Color, Year), Year < 1970.\n"
      "caranddriver(Model, Review) :- review(Model, Review, 10).\n",
      &interner);
  GoalQuery q1{*ParseProgram(kQ1, &interner), interner.Lookup("q1")};
  GoalQuery q3{*ParseProgram(kQ3, &interner), interner.Lookup("q3")};
  for (auto _ : state) {
    Result<bool> r = RelativelyContainedViaExpansion(q1, q3, views, &interner);
    if (!r.ok() || !*r) state.SkipWithError("wrong answer");
  }
}
BENCHMARK(BM_Example1_AblationNoRedCars);

void BM_Example2_InverseRules(benchmark::State& state) {
  Interner interner;
  ViewSet views = *ParseViews(kViews, &interner);
  Program q1 = *ParseProgram(kQ1, &interner);
  for (auto _ : state) {
    Result<Program> plan = MaximallyContainedPlan(q1, views, &interner);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_Example2_InverseRules);

void BM_Example3_PlanToUnion(benchmark::State& state) {
  Interner interner;
  ViewSet views = *ParseViews(kViews, &interner);
  Program q1 = *ParseProgram(kQ1, &interner);
  Program plan = *MaximallyContainedPlan(q1, views, &interner);
  SymbolId goal = interner.Lookup("q1");
  for (auto _ : state) {
    Result<UnionQuery> ucq = PlanToUnion(plan, goal, views, &interner);
    if (!ucq.ok() || ucq->disjuncts.size() != 2) {
      state.SkipWithError("wrong plan");
    }
  }
}
BENCHMARK(BM_Example3_PlanToUnion);

void BM_Example4_ComparisonAwarePlan(benchmark::State& state) {
  Interner interner;
  ViewSet views = *ParseViews(kViews, &interner);
  Program q3 = *ParseProgram(kQ3, &interner);
  SymbolId goal = interner.Lookup("q3");
  for (auto _ : state) {
    Result<UnionQuery> plan =
        ComparisonAwarePlan(q3, goal, views, &interner);
    if (!plan.ok() || plan->disjuncts.size() != 2) {
      state.SkipWithError("wrong plan");
    }
  }
}
BENCHMARK(BM_Example4_ComparisonAwarePlan);

}  // namespace
}  // namespace relcont
