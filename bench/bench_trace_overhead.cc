// Overhead benchmark for the trace instrumentation: ns per containment
// decision with (a) tracing disabled at runtime (no active TraceContext —
// the cost every untraced caller pays for the hooks being present) and
// (b) tracing enabled (a context installed, every span and counter
// recorded). Writes BENCH_trace_overhead.json (relcont-bench-v1 schema —
// see bench/harness.h). RELCONT_BENCH_SMOKE=1 shrinks reps to CI scale.
//
// The compiled-out claim ("a build with -DRELCONT_TRACE=0 is within 2% of
// one with the hooks elided entirely") is established by running this same
// binary from an ON build and an OFF build and comparing their
// disabled-mode numbers — the JSON records `compiled_in` so the two runs
// are distinguishable. See docs/OBSERVABILITY.md and EXPERIMENTS.md.
//
// Standalone (not google-benchmark): the two modes must run interleaved in
// one process so allocator and interner drift cancel out.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"

#include "binding/adornment.h"
#include "datalog/parser.h"
#include "relcont/decide.h"
#include "trace/trace.h"

namespace relcont {
namespace {

int DecisionsPerRep() { return bench::ScaleIterations(200, 50); }
int Reps() { return bench::ScaleIterations(12, 3); }  // interleaved pairs

// One rep: fresh interner (DecideRelativeContainment mints fresh symbols,
// so a shared interner would grow without bound and skew later reps),
// parse the fixed workload, then time kDecisionsPerRep decisions.
uint64_t RunRep(bool traced, uint64_t* decisions_made) {
  Interner interner;
  ViewSet views = *ParseViews(
      "redcars(C, M, Y) :- cardesc(C, M, red, Y).\n"
      "allcars(C, M, Col) :- cardesc(C, M, Col, Y).\n"
      "modelyears(M, Y) :- cardesc(C, M, Col, Y).\n",
      &interner);
  GoalQuery q1{*ParseProgram("q1(C) :- cardesc(C, M, red, Y).", &interner),
               interner.Intern("q1")};
  GoalQuery q2{*ParseProgram("q2(C) :- cardesc(C, M, Col, Y).", &interner),
               interner.Intern("q2")};

  auto start = std::chrono::steady_clock::now();
  const int decisions = DecisionsPerRep();
  for (int i = 0; i < decisions; ++i) {
    if (traced) {
      trace::TraceContext ctx;
      trace::TraceScope scope(&ctx);
      Result<Decision> d = DecideRelativeContainment(q1, q2, views,
                                                     BindingPatterns{},
                                                     &interner);
      if (!d.ok() || !d->contained) return 0;
    } else {
      Result<Decision> d = DecideRelativeContainment(q1, q2, views,
                                                     BindingPatterns{},
                                                     &interner);
      if (!d.ok() || !d->contained) return 0;
    }
    ++*decisions_made;
  }
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

int Main() {
  const int reps = Reps();
  const int decisions_per_rep = DecisionsPerRep();
  std::printf("bench_trace_overhead: trace hooks %s, %d reps x %d "
              "decisions per mode\n",
              trace::kCompiledIn ? "compiled in" : "compiled out", reps,
              decisions_per_rep);

  // Warm up both paths once, then take the best rep per mode — the minimum
  // is the least-noise estimate of the true cost.
  uint64_t scratch = 0;
  RunRep(false, &scratch);
  RunRep(true, &scratch);

  uint64_t best_disabled = UINT64_MAX;
  uint64_t best_traced = UINT64_MAX;
  for (int rep = 0; rep < reps; ++rep) {
    uint64_t made = 0;
    uint64_t ns = RunRep(false, &made);
    if (ns == 0 || made != static_cast<uint64_t>(decisions_per_rep)) {
      std::fprintf(stderr, "disabled rep failed\n");
      return 1;
    }
    if (ns < best_disabled) best_disabled = ns;
    made = 0;
    ns = RunRep(true, &made);
    if (ns == 0 || made != static_cast<uint64_t>(decisions_per_rep)) {
      std::fprintf(stderr, "traced rep failed\n");
      return 1;
    }
    if (ns < best_traced) best_traced = ns;
  }

  double disabled_ns_per_op =
      static_cast<double>(best_disabled) / decisions_per_rep;
  double traced_ns_per_op =
      static_cast<double>(best_traced) / decisions_per_rep;
  double traced_overhead_pct =
      100.0 * (traced_ns_per_op - disabled_ns_per_op) / disabled_ns_per_op;
  std::printf("  disabled: %.0f ns/decision\n", disabled_ns_per_op);
  std::printf("  traced:   %.0f ns/decision (%+.1f%%)\n", traced_ns_per_op,
              traced_overhead_pct);

  std::vector<bench::Metric> metrics;
  metrics.push_back(
      {"disabled_ns_per_decision", disabled_ns_per_op, "ns", false});
  metrics.push_back({"traced_ns_per_decision", traced_ns_per_op, "ns",
                     false});
  metrics.push_back(
      {"traced_overhead_pct", traced_overhead_pct, "%", false});
  if (!bench::WriteBenchJson("BENCH_trace_overhead.json", "trace_overhead",
                             metrics)) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace relcont

int main() { return relcont::Main(); }
