// Overhead benchmark for the trace instrumentation: ns per containment
// decision with (a) tracing disabled at runtime (no active TraceContext —
// the cost every untraced caller pays for the hooks being present) and
// (b) tracing enabled (a context installed, every span and counter
// recorded). Writes BENCH_trace_overhead.json.
//
// The compiled-out claim ("a build with -DRELCONT_TRACE=0 is within 2% of
// one with the hooks elided entirely") is established by running this same
// binary from an ON build and an OFF build and comparing their
// disabled-mode numbers — the JSON records `compiled_in` so the two runs
// are distinguishable. See docs/OBSERVABILITY.md and EXPERIMENTS.md.
//
// Standalone (not google-benchmark): the two modes must run interleaved in
// one process so allocator and interner drift cancel out.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "binding/adornment.h"
#include "datalog/parser.h"
#include "relcont/decide.h"
#include "trace/trace.h"

namespace relcont {
namespace {

constexpr int kDecisionsPerRep = 200;
constexpr int kReps = 12;  // interleaved disabled/enabled pairs

// One rep: fresh interner (DecideRelativeContainment mints fresh symbols,
// so a shared interner would grow without bound and skew later reps),
// parse the fixed workload, then time kDecisionsPerRep decisions.
uint64_t RunRep(bool traced, uint64_t* decisions_made) {
  Interner interner;
  ViewSet views = *ParseViews(
      "redcars(C, M, Y) :- cardesc(C, M, red, Y).\n"
      "allcars(C, M, Col) :- cardesc(C, M, Col, Y).\n"
      "modelyears(M, Y) :- cardesc(C, M, Col, Y).\n",
      &interner);
  GoalQuery q1{*ParseProgram("q1(C) :- cardesc(C, M, red, Y).", &interner),
               interner.Intern("q1")};
  GoalQuery q2{*ParseProgram("q2(C) :- cardesc(C, M, Col, Y).", &interner),
               interner.Intern("q2")};

  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kDecisionsPerRep; ++i) {
    if (traced) {
      trace::TraceContext ctx;
      trace::TraceScope scope(&ctx);
      Result<Decision> d = DecideRelativeContainment(q1, q2, views,
                                                     BindingPatterns{},
                                                     &interner);
      if (!d.ok() || !d->contained) return 0;
    } else {
      Result<Decision> d = DecideRelativeContainment(q1, q2, views,
                                                     BindingPatterns{},
                                                     &interner);
      if (!d.ok() || !d->contained) return 0;
    }
    ++*decisions_made;
  }
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

int Main() {
  std::printf("bench_trace_overhead: trace hooks %s, %d reps x %d "
              "decisions per mode\n",
              trace::kCompiledIn ? "compiled in" : "compiled out", kReps,
              kDecisionsPerRep);

  // Warm up both paths once, then take the best rep per mode — the minimum
  // is the least-noise estimate of the true cost.
  uint64_t scratch = 0;
  RunRep(false, &scratch);
  RunRep(true, &scratch);

  uint64_t best_disabled = UINT64_MAX;
  uint64_t best_traced = UINT64_MAX;
  for (int rep = 0; rep < kReps; ++rep) {
    uint64_t made = 0;
    uint64_t ns = RunRep(false, &made);
    if (ns == 0 || made != kDecisionsPerRep) {
      std::fprintf(stderr, "disabled rep failed\n");
      return 1;
    }
    if (ns < best_disabled) best_disabled = ns;
    made = 0;
    ns = RunRep(true, &made);
    if (ns == 0 || made != kDecisionsPerRep) {
      std::fprintf(stderr, "traced rep failed\n");
      return 1;
    }
    if (ns < best_traced) best_traced = ns;
  }

  double disabled_ns_per_op =
      static_cast<double>(best_disabled) / kDecisionsPerRep;
  double traced_ns_per_op =
      static_cast<double>(best_traced) / kDecisionsPerRep;
  double traced_overhead_pct =
      100.0 * (traced_ns_per_op - disabled_ns_per_op) / disabled_ns_per_op;
  std::printf("  disabled: %.0f ns/decision\n", disabled_ns_per_op);
  std::printf("  traced:   %.0f ns/decision (%+.1f%%)\n", traced_ns_per_op,
              traced_overhead_pct);

  FILE* out = std::fopen("BENCH_trace_overhead.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_trace_overhead.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n  \"benchmark\": \"trace_overhead\",\n"
               "  \"compiled_in\": %s,\n"
               "  \"decisions_per_rep\": %d,\n  \"reps\": %d,\n"
               "  \"disabled_ns_per_decision\": %.1f,\n"
               "  \"traced_ns_per_decision\": %.1f,\n"
               "  \"traced_overhead_pct\": %.2f\n}\n",
               trace::kCompiledIn ? "true" : "false", kDecisionsPerRep,
               kReps, disabled_ns_per_op, traced_ns_per_op,
               traced_overhead_pct);
  std::fclose(out);
  std::printf("wrote BENCH_trace_overhead.json\n");
  return 0;
}

}  // namespace
}  // namespace relcont

int main() { return relcont::Main(); }
