#ifndef RELCONT_BENCH_HARNESS_H_
#define RELCONT_BENCH_HARNESS_H_

// Shared scaffolding for the standalone bench binaries: smoke-mode
// scaling, an environment fingerprint, order statistics over repeated
// samples, and one JSON writer so every BENCH_<name>.json carries the
// same `relcont-bench-v1` schema that tools/bench_compare consumes.
//
//   {
//     "schema": "relcont-bench-v1",
//     "name": "service_throughput",
//     "env": {"compiler": "...", "build_type": "Release",
//             "trace_compiled_in": true, "hardware_threads": 8,
//             "smoke": false},
//     "metrics": [
//       {"name": "warm_8t_req_per_sec", "value": 51234.0,
//        "unit": "req/s", "higher_is_better": true}, ...
//     ]
//   }
//
// Smoke mode (RELCONT_BENCH_SMOKE=1) shrinks iteration counts so the
// whole suite runs in CI seconds; absolute numbers from a smoke run are
// only comparable to other smoke runs on the same class of machine —
// which is exactly what the CI regression gate does.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "trace/trace.h"

namespace relcont {
namespace bench {

inline bool SmokeMode() {
  const char* value = std::getenv("RELCONT_BENCH_SMOKE");
  return value != nullptr && *value != '\0' &&
         std::strcmp(value, "0") != 0;
}

/// `full` iterations normally, `smoke` under RELCONT_BENCH_SMOKE.
inline int ScaleIterations(int full, int smoke) {
  return SmokeMode() ? smoke : full;
}

struct EnvFingerprint {
  std::string compiler;
  std::string build_type;
  bool trace_compiled_in = false;
  unsigned hardware_threads = 0;
  bool smoke = false;
};

inline EnvFingerprint Fingerprint() {
  EnvFingerprint env;
#if defined(__clang__)
  env.compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  env.compiler = std::string("gcc ") + std::to_string(__GNUC__) + "." +
                 std::to_string(__GNUC_MINOR__) + "." +
                 std::to_string(__GNUC_PATCHLEVEL__);
#else
  env.compiler = "unknown";
#endif
#if defined(NDEBUG)
  env.build_type = "Release";
#else
  env.build_type = "Debug";
#endif
  env.trace_compiled_in = trace::kCompiledIn;
  env.hardware_threads = std::thread::hardware_concurrency();
  env.smoke = SmokeMode();
  return env;
}

/// Repeated measurements of one quantity; order statistics interpolate
/// nothing (they pick actual samples) so small rep counts stay honest.
struct Samples {
  std::vector<double> values;

  void Add(double v) { values.push_back(v); }

  double Min() const {
    return values.empty()
               ? 0
               : *std::min_element(values.begin(), values.end());
  }
  double Median() const { return Quantile(0.5); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }

  double Quantile(double q) const {
    if (values.empty()) return 0;
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    size_t index = static_cast<size_t>(q * (sorted.size() - 1) + 0.5);
    return sorted[std::min(index, sorted.size() - 1)];
  }
};

struct Metric {
  std::string name;
  double value = 0;
  std::string unit;
  /// Direction of goodness — bench_compare flags a regression only when
  /// the current value is worse in this direction.
  bool higher_is_better = true;
  /// Optional per-run distribution. When set, WriteBenchJson additionally
  /// emits `p50`/`p95`/`p99` keys and bench_compare gates on p99 drift in
  /// the metric's direction — but only when BOTH files carry percentiles,
  /// so files written before this field existed still compare cleanly.
  bool has_percentiles = false;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// A metric summarizing a sample distribution: `value` is the median and
/// the p50/p95/p99 order statistics ride along for tail gating.
inline Metric DistributionMetric(const std::string& name,
                                 const Samples& samples,
                                 const std::string& unit,
                                 bool higher_is_better) {
  Metric m;
  m.name = name;
  m.value = samples.Median();
  m.unit = unit;
  m.higher_is_better = higher_is_better;
  m.has_percentiles = true;
  m.p50 = samples.Median();
  m.p95 = samples.P95();
  m.p99 = samples.P99();
  return m;
}

/// Writes `path` in the relcont-bench-v1 schema. Returns false (and
/// prints to stderr) when the file cannot be written.
inline bool WriteBenchJson(const std::string& path, const std::string& name,
                           const std::vector<Metric>& metrics) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  EnvFingerprint env = Fingerprint();
  std::fprintf(out,
               "{\n"
               "  \"schema\": \"relcont-bench-v1\",\n"
               "  \"name\": \"%s\",\n"
               "  \"env\": {\n"
               "    \"compiler\": \"%s\",\n"
               "    \"build_type\": \"%s\",\n"
               "    \"trace_compiled_in\": %s,\n"
               "    \"hardware_threads\": %u,\n"
               "    \"smoke\": %s\n"
               "  },\n"
               "  \"metrics\": [\n",
               name.c_str(), env.compiler.c_str(), env.build_type.c_str(),
               env.trace_compiled_in ? "true" : "false",
               env.hardware_threads, env.smoke ? "true" : "false");
  for (size_t i = 0; i < metrics.size(); ++i) {
    const Metric& m = metrics[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\", "
                 "\"higher_is_better\": %s",
                 m.name.c_str(), m.value, m.unit.c_str(),
                 m.higher_is_better ? "true" : "false");
    if (m.has_percentiles) {
      std::fprintf(out, ", \"p50\": %.6g, \"p95\": %.6g, \"p99\": %.6g",
                   m.p50, m.p95, m.p99);
    }
    std::fprintf(out, "}%s\n", i + 1 < metrics.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace bench
}  // namespace relcont

#endif  // RELCONT_BENCH_HARNESS_H_
