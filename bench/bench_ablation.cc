// Ablation harness for the design choices DESIGN.md calls out:
//   A1  per-column join indexes in the evaluator (on/off)
//   A2  the semi-interval entailment fast path vs. forcing the complete
//       linearization test on the same containment instance
//   A3  union minimization before plan comparison (on/off)
//   A4  the exact dom-profile decider vs. bounded expansion enumeration
//       on instances the bounded oracle can also decide

#include <benchmark/benchmark.h>

#include "binding/dom_containment.h"
#include "containment/comparison_containment.h"
#include "containment/cq_containment.h"
#include "containment/expansion.h"
#include "datalog/parser.h"
#include "eval/evaluator.h"
#include "relcont/workload.h"

namespace relcont {
namespace {

// --- A1: join indexes -------------------------------------------------------

void BM_Ablation_EvalIndexed(benchmark::State& state) {
  Interner interner;
  Program tc = *ParseProgram(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n",
      &interner);
  Database graph = RandomGraph("e", 64, 256, 3, &interner);
  EvalOptions opts;
  opts.use_index = state.range(0) == 1;
  for (auto _ : state) {
    Result<EvalResult> r = Evaluate(tc, graph, opts);
    if (!r.ok()) state.SkipWithError("failed");
  }
  state.SetLabel(opts.use_index ? "indexed" : "nested-loop");
}
BENCHMARK(BM_Ablation_EvalIndexed)->Arg(0)->Arg(1);

// --- A2: semi-interval fast path ---------------------------------------------

void BM_Ablation_SemiIntervalFastPath(benchmark::State& state) {
  bool fast = state.range(0) == 1;
  Interner interner;
  Rule q1 = *ParseRule(
      "q(A) :- p(A, B), p(B, C), p(C, D), A < 3, B < 5, C < 7.", &interner);
  Rule q2 = *ParseRule(
      "q(A) :- p(A, B), p(B, C), p(C, D), A < 30, B < 50.", &interner);
  for (auto _ : state) {
    Result<bool> r = fast ? CqContainedViaEntailment(q1, q2)
                          : [&]() -> Result<bool> {
                              // Bypass the fast path by going through the
                              // union-complete entry with a two-element
                              // union of incomparable disjuncts.
                              UnionQuery u;
                              u.disjuncts.push_back(q2);
                              u.disjuncts.push_back(*ParseRule(
                                  "q(A) :- p(A, B), B < A.", &interner));
                              return CqContainedInUnionComplete(q1, u);
                            }();
    if (!r.ok() || !*r) state.SkipWithError("wrong answer");
  }
  state.SetLabel(fast ? "entailment-fast-path" : "with-linearization-entry");
}
BENCHMARK(BM_Ablation_SemiIntervalFastPath)->Arg(0)->Arg(1);

// --- A3: union minimization ---------------------------------------------------

void BM_Ablation_UnionMinimization(benchmark::State& state) {
  bool minimize = state.range(0) == 1;
  Interner interner;
  // A union with many redundant disjuncts, checked against itself.
  UnionQuery u;
  RandomQueryOptions opts;
  opts.num_atoms = 2;
  opts.num_variables = 3;
  opts.num_predicates = 1;
  opts.head_arity = 1;
  for (int i = 0; i < 6; ++i) {
    opts.seed = 900 + i;
    Rule r = RandomConjunctiveQuery(opts, "g", &interner);
    u.disjuncts.push_back(r);
    // A strictly more constrained copy (redundant in the union).
    Rule constrained = r;
    constrained.body.push_back(r.body[0]);
    u.disjuncts.push_back(constrained);
  }
  for (auto _ : state) {
    UnionQuery left = u;
    if (minimize) {
      Result<UnionQuery> m = MinimizeUnion(left);
      if (!m.ok()) {
        state.SkipWithError("minimize failed");
        return;
      }
      left = *m;
    }
    Result<bool> r = UnionContainedInUnion(left, u);
    if (!r.ok() || !*r) state.SkipWithError("wrong answer");
  }
  state.SetLabel(minimize ? "minimized-first" : "raw-union");
}
BENCHMARK(BM_Ablation_UnionMinimization)->Arg(0)->Arg(1);

// --- A4: exact decider vs bounded enumeration ---------------------------------

constexpr char kChainPlan[] =
    "q(Y) :- e(X, Y), dom(X).\n"
    "dom(c).\n"
    "dom(Y) :- dom(X), e(X, Y).\n";

void BM_Ablation_DomDeciderExact(benchmark::State& state) {
  Interner interner;
  Program prog = *ParseProgram(kChainPlan, &interner);
  UnionQuery u;
  u.disjuncts.push_back(*ParseRule("p(Y) :- e(c, Y).", &interner));
  for (auto _ : state) {
    Result<DomContainmentResult> r = DomPlanContainedInUcq(
        prog, interner.Lookup("q"), interner.Lookup("dom"), u, &interner);
    if (!r.ok() || r->contained) state.SkipWithError("wrong answer");
  }
  state.SetLabel("profile-saturation (exact)");
}
BENCHMARK(BM_Ablation_DomDeciderExact);

void BM_Ablation_DomDeciderBounded(benchmark::State& state) {
  Interner interner;
  Program prog = *ParseProgram(kChainPlan, &interner);
  UnionQuery u;
  u.disjuncts.push_back(*ParseRule("p(Y) :- e(c, Y).", &interner));
  ExpansionOptions opts;
  opts.max_rule_applications = 8;
  for (auto _ : state) {
    Result<bool> r = DatalogContainedInUcqBounded(
        prog, interner.Lookup("q"), u, &interner, opts);
    if (!r.ok() || *r) state.SkipWithError("wrong answer");
  }
  state.SetLabel("bounded-enumeration (counterexample search)");
}
BENCHMARK(BM_Ablation_DomDeciderBounded);

}  // namespace
}  // namespace relcont
