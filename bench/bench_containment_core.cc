// Experiment S1 (substrate): classical conjunctive-query containment
// (Chandra–Merlin). Containment is NP-complete; the family below shows
// where the backtracking search is easy (chains, stars) and where it
// degrades (self-join-heavy random queries).

#include <benchmark/benchmark.h>

#include "containment/cq_containment.h"
#include "relcont/workload.h"

namespace relcont {
namespace {

// Boolean chain folding: chain(2n) ⊑ chain(n) needs a folding hom.
void BM_CqContainment_BooleanChains(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Interner interner;
  Rule shorter = ChainQuery(n, "g", "e", &interner);
  Rule longer = ChainQuery(2 * n, "g", "e", &interner);
  shorter.head.args.clear();
  longer.head.args.clear();
  for (auto _ : state) {
    Result<bool> r = CqContained(longer, shorter);
    if (!r.ok() || !*r) state.SkipWithError("wrong answer");
  }
  state.counters["atoms"] = 2 * n;
}
BENCHMARK(BM_CqContainment_BooleanChains)->RangeMultiplier(2)->Range(2, 32);

void BM_CqContainment_Stars(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Interner interner;
  Rule small = StarQuery(1, "g", "e", &interner);
  Rule big = StarQuery(n, "g", "e", &interner);
  for (auto _ : state) {
    Result<bool> r = CqContained(small, big);
    if (!r.ok() || !*r) state.SkipWithError("wrong answer");
  }
  state.counters["rays"] = n;
}
BENCHMARK(BM_CqContainment_Stars)->RangeMultiplier(2)->Range(2, 64);

// Random self-join-heavy queries over one predicate: the hard regime.
void BM_CqContainment_RandomSelfJoins(benchmark::State& state) {
  int atoms = static_cast<int>(state.range(0));
  Interner interner;
  RandomQueryOptions opts;
  opts.num_atoms = atoms;
  opts.num_variables = atoms;  // sparse sharing
  opts.num_predicates = 1;
  opts.constant_probability = 0.0;
  opts.head_arity = 0;
  opts.seed = 12345;
  Rule q1 = RandomConjunctiveQuery(opts, "g1", &interner);
  opts.seed = 54321;
  Rule q2 = RandomConjunctiveQuery(opts, "g2", &interner);
  for (auto _ : state) {
    Result<bool> r = CqContained(q1, q2);
    benchmark::DoNotOptimize(r);
  }
  state.counters["atoms"] = atoms;
}
BENCHMARK(BM_CqContainment_RandomSelfJoins)->DenseRange(2, 12, 2);

// Union containment (Sagiv–Yannakakis): disjunct count scaling.
void BM_UnionContainment_Disjuncts(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  Interner interner;
  UnionQuery u1, u2;
  RandomQueryOptions opts;
  opts.num_atoms = 3;
  opts.num_variables = 3;
  opts.num_predicates = 2;
  opts.head_arity = 1;
  for (int i = 0; i < k; ++i) {
    opts.seed = 100 + i;
    u1.disjuncts.push_back(RandomConjunctiveQuery(opts, "g", &interner));
    opts.seed = 200 + i;
    u2.disjuncts.push_back(RandomConjunctiveQuery(opts, "g", &interner));
    // Make u2 a superset of u1 so containment holds.
    u2.disjuncts.push_back(u1.disjuncts.back());
  }
  for (auto _ : state) {
    Result<bool> r = UnionContainedInUnion(u1, u2);
    if (!r.ok() || !*r) state.SkipWithError("wrong answer");
  }
  state.counters["disjuncts"] = k;
}
BENCHMARK(BM_UnionContainment_Disjuncts)->RangeMultiplier(2)->Range(2, 32);

}  // namespace
}  // namespace relcont
