// Experiment X31 (Theorem 3.1): relative containment for positive queries
// and conjunctive views. The procedure builds both maximally-contained
// plans, unfolds them to UCQs over the sources, and compares. Cost drivers:
// the number of views matching each subgoal (plan width — exponential in
// query size in the worst case) and the per-disjunct NP containment check.

#include <benchmark/benchmark.h>

#include "relcont/gav.h"
#include "relcont/pi2p_reduction.h"
#include "relcont/relative_containment.h"
#include "relcont/workload.h"
#include "rewriting/bucket.h"
#include "rewriting/inverse_rules.h"

namespace relcont {
namespace {

void BM_Relative_SweepViews(benchmark::State& state) {
  int num_views = static_cast<int>(state.range(0));
  Interner interner;
  RandomQueryOptions opts;
  opts.num_atoms = 3;
  opts.num_variables = 4;
  opts.num_predicates = 2;
  opts.constant_probability = 0.0;
  opts.head_arity = 1;
  opts.seed = 31337;
  ViewSet views = RandomViews(opts, num_views, &interner);
  GoalQuery a{Program({RandomConjunctiveQuery(opts, "ga", &interner)}),
              interner.Lookup("ga")};
  opts.seed = 31338;
  GoalQuery b{Program({RandomConjunctiveQuery(opts, "gb", &interner)}),
              interner.Lookup("gb")};
  int64_t plan1 = 0;
  for (auto _ : state) {
    Result<RelativeContainmentResult> r =
        RelativelyContained(a, b, views, &interner);
    if (!r.ok()) {
      state.SkipWithError("failed");
      return;
    }
    plan1 = static_cast<int64_t>(r->plan1.disjuncts.size());
  }
  state.counters["views"] = num_views;
  state.counters["plan1_disjuncts"] = static_cast<double>(plan1);
}
BENCHMARK(BM_Relative_SweepViews)->DenseRange(1, 9, 2);

// Sweep the query size: the unfolded plan is exponential in the number of
// subgoals when several views cover each relation.
void BM_Relative_SweepQueryAtoms(benchmark::State& state) {
  int atoms = static_cast<int>(state.range(0));
  Interner interner;
  RandomQueryOptions opts;
  opts.num_atoms = atoms;
  opts.num_variables = atoms + 1;
  opts.num_predicates = 2;
  opts.constant_probability = 0.0;
  opts.head_arity = 1;
  opts.seed = 4242;
  ViewSet views = RandomViews(opts, 4, &interner);
  GoalQuery a{Program({RandomConjunctiveQuery(opts, "ga", &interner)}),
              interner.Lookup("ga")};
  opts.seed = 4243;
  GoalQuery b{Program({RandomConjunctiveQuery(opts, "gb", &interner)}),
              interner.Lookup("gb")};
  for (auto _ : state) {
    Result<RelativeContainmentResult> r =
        RelativelyContained(a, b, views, &interner);
    if (!r.ok()) {
      state.SkipWithError("failed");
      return;
    }
  }
  state.counters["atoms"] = atoms;
}
BENCHMARK(BM_Relative_SweepQueryAtoms)->DenseRange(1, 6);

// Chain queries over chain-fragment views: a structured (non-random)
// family where plan width is controlled exactly by the overlap count.
void BM_Relative_ChainsOverFragmentViews(benchmark::State& state) {
  int length = static_cast<int>(state.range(0));
  Interner interner;
  // Views exporting every single edge and every 2-edge path.
  ViewSet views;
  {
    Result<ViewSet> parsed = ParseViews(
        "edge1(X, Y) :- e(X, Y).\n"
        "path2(X, Z) :- e(X, Y), e(Y, Z).\n",
        &interner);
    views = *parsed;
  }
  GoalQuery longer{Program({ChainQuery(length, "ga", "e", &interner)}),
                   interner.Lookup("ga")};
  GoalQuery shorter{Program({ChainQuery(length, "gb", "e", &interner)}),
                    interner.Lookup("gb")};
  for (auto _ : state) {
    Result<RelativeContainmentResult> r =
        RelativelyContained(longer, shorter, views, &interner);
    if (!r.ok() || !r->contained) {
      state.SkipWithError("wrong answer");
      return;
    }
  }
  state.counters["chain"] = length;
}
BENCHMARK(BM_Relative_ChainsOverFragmentViews)->DenseRange(2, 8, 2);

// The two independent AQUV pipelines on identical inputs: inverse rules
// (unfold + function-term elimination) vs the bucket algorithm (candidate
// products + expansion containment checks).
void BM_Rewriting_InverseRules(benchmark::State& state) {
  int atoms = static_cast<int>(state.range(0));
  Interner interner;
  RandomQueryOptions opts;
  opts.num_atoms = atoms;
  opts.num_variables = atoms + 1;
  opts.num_predicates = 2;
  opts.constant_probability = 0.0;
  opts.head_arity = 1;
  opts.seed = 777;
  ViewSet views = RandomViews(opts, 4, &interner);
  Program q({RandomConjunctiveQuery(opts, "g", &interner)});
  SymbolId goal = q.rules[0].head.predicate;
  for (auto _ : state) {
    Result<Program> plan = MaximallyContainedPlan(q, views, &interner);
    if (!plan.ok()) {
      state.SkipWithError("plan failed");
      return;
    }
    Result<UnionQuery> ucq = PlanToUnion(*plan, goal, views, &interner);
    benchmark::DoNotOptimize(ucq);
  }
  state.counters["atoms"] = atoms;
}
BENCHMARK(BM_Rewriting_InverseRules)->DenseRange(1, 4);

void BM_Rewriting_Bucket(benchmark::State& state) {
  int atoms = static_cast<int>(state.range(0));
  Interner interner;
  RandomQueryOptions opts;
  opts.num_atoms = atoms;
  opts.num_variables = atoms + 1;
  opts.num_predicates = 2;
  opts.constant_probability = 0.0;
  opts.head_arity = 1;
  opts.seed = 777;
  ViewSet views = RandomViews(opts, 4, &interner);
  Program q({RandomConjunctiveQuery(opts, "g", &interner)});
  SymbolId goal = q.rules[0].head.predicate;
  for (auto _ : state) {
    Result<UnionQuery> ucq = BucketRewriting(q, goal, views, &interner);
    benchmark::DoNotOptimize(ucq);
  }
  state.counters["atoms"] = atoms;
}
BENCHMARK(BM_Rewriting_Bucket)->DenseRange(1, 4);

// GAV vs LAV on structurally matched systems: the paper notes GAV relative
// containment is a "straightforward corollary" of classical containment
// (NP), while LAV is Π₂ᴾ-complete. Chain queries over k-covered relations
// make the plan width (and the gap) visible.
void BM_Gav_ChainContainment(benchmark::State& state) {
  int length = static_cast<int>(state.range(0));
  Interner interner;
  GavSchema schema = *ParseGavSchema(
      "hop(X, Y) :- s1(X, Y).\n"
      "hop(X, Y) :- s2(X, Y).\n",
      &interner);
  GoalQuery longer{Program({ChainQuery(length, "ga", "hop", &interner)}),
                   interner.Lookup("ga")};
  GoalQuery same{Program({ChainQuery(length, "gb", "hop", &interner)}),
                 interner.Lookup("gb")};
  for (auto _ : state) {
    Result<RelativeContainmentResult> r =
        GavRelativelyContained(longer, same, schema, &interner);
    if (!r.ok() || !r->contained) {
      state.SkipWithError("wrong answer");
      return;
    }
  }
  state.counters["chain"] = length;
}
BENCHMARK(BM_Gav_ChainContainment)->DenseRange(2, 6, 2);

void BM_Lav_ChainContainment(benchmark::State& state) {
  int length = static_cast<int>(state.range(0));
  Interner interner;
  ViewSet views = *ParseViews(
      "s1(X, Y) :- hop(X, Y).\n"
      "s2(X, Y) :- hop(X, Y).\n",
      &interner);
  GoalQuery longer{Program({ChainQuery(length, "ga", "hop", &interner)}),
                   interner.Lookup("ga")};
  GoalQuery same{Program({ChainQuery(length, "gb", "hop", &interner)}),
                 interner.Lookup("gb")};
  for (auto _ : state) {
    Result<RelativeContainmentResult> r =
        RelativelyContained(longer, same, views, &interner);
    if (!r.ok() || !r->contained) {
      state.SkipWithError("wrong answer");
      return;
    }
  }
  state.counters["chain"] = length;
}
BENCHMARK(BM_Lav_ChainContainment)->DenseRange(2, 6, 2);


// Parallel disjunct scan on the Theorem 3.3 hard family: the same
// decision at m ∈ {5, 6} swept over the fan-out width. Speedup is bounded
// by the host's core count — on a single-CPU machine the curve is flat
// and the interesting number is the overhead of spawning helpers (see
// EXPERIMENTS.md, "Parallel disjunct scan"). Lived in
// bench_pi2p_reduction before that binary became the standalone
// scan-vs-CEGAR crossover harness.
void BM_Pi2p_ParallelWorkers(benchmark::State& state) {
  int m = static_cast<int>(state.range(0));
  int workers = static_cast<int>(state.range(1));
  Interner interner;
  QbfFormula f = RandomQbf(/*num_exists=*/3, m, /*num_clauses=*/4,
                           /*seed=*/7);
  Result<Pi2pInstance> inst = BuildPi2pReduction(f, &interner);
  if (!inst.ok()) {
    state.SkipWithError("reduction failed");
    return;
  }
  bool expected = ForallExistsSatisfiable(f);
  RelativeContainmentOptions options;
  options.parallel_workers = workers;
  for (auto _ : state) {
    Result<RelativeContainmentResult> r = RelativelyContained(
        inst->q2, inst->q1, inst->views, &interner, options);
    if (!r.ok() || r->contained != expected) {
      state.SkipWithError("wrong answer");
      return;
    }
  }
  state.counters["forall_vars"] = m;
  state.counters["workers"] = workers;
}
BENCHMARK(BM_Pi2p_ParallelWorkers)
    ->ArgsProduct({{5, 6}, {1, 2, 4, 8}});

// The brute-force ∀∃ oracle, for scale comparison with the engines in
// bench_pi2p_reduction: also exponential in m, but over truth
// assignments rather than containment mappings.
void BM_Pi2p_BruteForceOracle(benchmark::State& state) {
  int m = static_cast<int>(state.range(0));
  QbfFormula f = RandomQbf(/*num_exists=*/3, m, /*num_clauses=*/4,
                           /*seed=*/7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ForallExistsSatisfiable(f));
  }
  state.counters["forall_vars"] = m;
}
BENCHMARK(BM_Pi2p_BruteForceOracle)->DenseRange(1, 6);

}  // namespace
}  // namespace relcont
