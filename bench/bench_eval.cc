// Experiment S1 (substrate): bottom-up evaluation. Datalog has polynomial
// data complexity; certain-answer computation through inverse-rule plans
// inherits it (Abiteboul–Duschka). The sweeps below exhibit the polynomial
// shape on growing source instances.

#include <benchmark/benchmark.h>

#include "datalog/parser.h"
#include "eval/evaluator.h"
#include "relcont/certain_answers.h"
#include "relcont/workload.h"

namespace relcont {
namespace {

// Transitive closure over random graphs: the classical semi-naive stress.
void BM_Eval_TransitiveClosure(benchmark::State& state) {
  int edges = static_cast<int>(state.range(0));
  Interner interner;
  Program tc = *ParseProgram(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n",
      &interner);
  Database graph =
      RandomGraph("e", /*num_nodes=*/edges / 4 + 2, edges, 99, &interner);
  int64_t derived = 0;
  for (auto _ : state) {
    Result<EvalResult> r = Evaluate(tc, graph);
    if (!r.ok()) {
      state.SkipWithError("evaluation failed");
      return;
    }
    derived = r->database.TotalFacts();
  }
  state.counters["edges"] = edges;
  state.counters["facts"] = static_cast<double>(derived);
}
BENCHMARK(BM_Eval_TransitiveClosure)->RangeMultiplier(2)->Range(32, 1024);

// Certain answers through an inverse-rule plan, sweeping instance size:
// polynomial data complexity (the paper relies on [AD98] for this).
void BM_Eval_CertainAnswersDataComplexity(benchmark::State& state) {
  int facts = static_cast<int>(state.range(0));
  Interner interner;
  ViewSet views = *ParseViews(
      "v1(X, Y) :- p(X, Y).\n"
      "v2(Y, Z) :- r(Y, Z).\n"
      "v3(X) :- p(X, X).\n",
      &interner);
  Program q = *ParseProgram("q(X, Z) :- p(X, Y), r(Y, Z).", &interner);
  SymbolId goal = interner.Lookup("q");
  Database inst =
      RandomInstance(views, facts, /*domain_size=*/facts / 4 + 2, 7,
                     &interner);
  int64_t answers = 0;
  for (auto _ : state) {
    Result<std::vector<Tuple>> r =
        CertainAnswers(q, goal, views, inst, &interner);
    if (!r.ok()) {
      state.SkipWithError("failed");
      return;
    }
    answers = static_cast<int64_t>(r->size());
  }
  state.counters["facts"] = facts;
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Eval_CertainAnswersDataComplexity)
    ->RangeMultiplier(2)
    ->Range(32, 2048);

// Recursive executable plans (Section 4) on growing chain instances: the
// dom accumulator makes evaluation quadratic-ish but still polynomial.
void BM_Eval_RecursiveDomPlan(benchmark::State& state) {
  int length = static_cast<int>(state.range(0));
  Interner interner;
  Program plan = *ParseProgram(
      "q(Y) :- link(X, Y).\n"
      "link(X, Y) :- dom(X), next(X, Y).\n"
      "dom(B) :- seed(B).\n"
      "dom(Y) :- dom(X), next(X, Y).\n",
      &interner);
  std::string facts = "seed(n0).";
  for (int i = 0; i < length; ++i) {
    facts += " next(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
             ").";
  }
  Database inst = *ParseDatabase(facts, &interner);
  for (auto _ : state) {
    Result<std::vector<Tuple>> r =
        EvaluateGoal(plan, interner.Lookup("q"), inst);
    if (!r.ok() || r->size() != static_cast<size_t>(length)) {
      state.SkipWithError("wrong answers");
      return;
    }
  }
  state.counters["chain"] = length;
}
BENCHMARK(BM_Eval_RecursiveDomPlan)->RangeMultiplier(2)->Range(16, 512);

}  // namespace
}  // namespace relcont
