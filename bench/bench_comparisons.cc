// Experiment X51 (Section 5, Klug/van der Meyden linearization test):
// before/after benchmark for the bitset dense-order engine. The LEGACY
// pipeline materialized every linearization with the unpruned
// subset-over-remaining enumerator (kept in the library as the test
// oracle, EnumerateLinearizations) and then checked disjunct coverage per
// linearization; the CURRENT pipeline streams linearizations out of the
// closed pair matrix with a pruned DFS (ForEachLinearization) and stops at
// the first uncovered one. Both run here on the same Klug-family
// instances — a mostly-constrained strict chain plus two free variables
// joined by an r(Y, Z) atom, decided against the C <= D / C >= D
// case-split union that forces the linearization path — so the
// speedup_x metric is the before/after ratio on identical verdicts.
//
// Also measures what the legacy cap made impossible: satisfiability,
// entailment, and streamed containment on point sets past the old
// 12-point enumeration limit (the matrix engine is polynomial there).
//
// Writes BENCH_comparisons.json (relcont-bench-v1 schema, see
// bench/harness.h). RELCONT_BENCH_SMOKE=1 shrinks reps to CI scale.
// Standalone (not google-benchmark): old and new loops must interleave in
// one process so allocator and interner drift cancel out.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "harness.h"

#include "constraints/order_constraints.h"
#include "containment/comparison_containment.h"
#include "containment/homomorphism.h"
#include "datalog/parser.h"
#include "datalog/substitution.h"

namespace relcont {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The Klug-family instance with `points` total order points: a strict
// chain V0 < ... < V{m} threaded through p-atoms, plus free Y, Z in an
// r(Y, Z) atom (points = m + 3). Decided against the case-split union
// q(A) :- p(A, B), r(C, D), C <= D | C >= D: true in every linearization,
// but no single disjunct is entailed, so the fast path fails and the
// verdict rides entirely on the linearization walk.
struct KlugCase {
  Rule q1;
  UnionQuery u;
};

KlugCase MakeKlugCase(int points, Interner* interner) {
  int m = points - 3;  // chain variables V0..Vm
  std::string body = "q(V0) :- ";
  for (int i = 0; i < m; ++i) {
    body += "p(V" + std::to_string(i) + ", V" + std::to_string(i + 1) + "), ";
  }
  body += "r(Y, Z)";
  for (int i = 0; i < m; ++i) {
    body += ", V" + std::to_string(i) + " < V" + std::to_string(i + 1);
  }
  KlugCase out;
  out.q1 = *ParseRule(body + ".", interner);
  out.u.disjuncts.push_back(
      *ParseRule("q(A) :- p(A, B), r(C, D), C <= D.", interner));
  out.u.disjuncts.push_back(
      *ParseRule("q(A) :- p(A, B), r(C, D), C >= D.", interner));
  return out;
}

bool IsNumericTerm(const Term& t) {
  return t.is_constant() && t.value().is_number();
}

bool HoldsUnder(const Comparison& c, const std::map<Term, Rational>& sigma) {
  auto lookup = [&](const Term& t, Rational* out) {
    if (IsNumericTerm(t)) {
      *out = t.value().number();
      return true;
    }
    auto it = sigma.find(t);
    if (it == sigma.end()) return false;
    *out = it->second;
    return true;
  };
  Rational a, b;
  if (!lookup(c.lhs, &a) || !lookup(c.rhs, &b)) return false;
  switch (c.op) {
    case ComparisonOp::kEq: return a == b;
    case ComparisonOp::kNe: return a != b;
    case ComparisonOp::kLt: return a < b;
    case ComparisonOp::kLe: return a <= b;
    case ComparisonOp::kGt: return a > b;
    case ComparisonOp::kGe: return a >= b;
  }
  return false;
}

// The legacy decision loop, verbatim modulo plumbing: materialize every
// linearization with the retained oracle enumerator, then check disjunct
// coverage one linearization at a time. This is the "before" arm.
std::optional<bool> LegacyContainedInUnion(const Rule& q1,
                                           const std::vector<Rule>& q2) {
  OrderConstraints c1;
  for (SymbolId v : q1.Variables()) {
    if (!c1.AddPoint(Term::Var(v)).ok()) return std::nullopt;
  }
  auto add_consts = [&](const Rule& r) {
    for (const Value& v : r.Constants()) {
      if (v.is_number() && !c1.AddPoint(Term::Constant(v)).ok()) return false;
    }
    return true;
  };
  if (!add_consts(q1)) return std::nullopt;
  for (const Rule& d : q2) {
    if (!add_consts(d)) return std::nullopt;
  }
  if (!c1.AddAll(q1.comparisons).ok()) return std::nullopt;
  if (!c1.IsSatisfiable()) return true;
  Result<std::vector<Linearization>> lins = c1.EnumerateLinearizations();
  if (!lins.ok()) return std::nullopt;
  for (const Linearization& lin : *lins) {
    std::map<Term, Rational> sigma = c1.Realize(lin);
    Substitution rho;
    for (const std::vector<int>& cls : lin) {
      Term rep = c1.points()[cls[0]];
      for (int p : cls) {
        if (IsNumericTerm(c1.points()[p])) rep = c1.points()[p];
      }
      for (int p : cls) {
        const Term& t = c1.points()[p];
        if (t.is_variable() && !(t == rep)) rho.Bind(t.symbol(), rep);
      }
    }
    Rule q1_collapsed = rho.Apply(q1);
    bool covered = false;
    for (const Rule& d : q2) {
      if (d.head.arity() != q1.head.arity()) continue;
      if (ForEachContainmentMapping(d, q1_collapsed,
                                    [&](const Substitution& h) {
                                      for (const Comparison& c :
                                           d.comparisons) {
                                        if (!HoldsUnder(h.ApplyOnce(c),
                                                        sigma)) {
                                          return false;
                                        }
                                      }
                                      return true;
                                    })) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

// Best-of-reps timing of `op` (which must return true), in ns per call.
template <typename Fn>
double BestNsPerOp(int reps, int iters, const Fn& op) {
  uint64_t best = UINT64_MAX;
  for (int rep = 0; rep < reps; ++rep) {
    uint64_t start = NowNs();
    for (int i = 0; i < iters; ++i) {
      if (!op()) return -1;
    }
    uint64_t ns = NowNs() - start;
    if (ns < best) best = ns;
  }
  return static_cast<double>(best) / iters;
}

int Main() {
  const int reps = bench::ScaleIterations(7, 3);
  std::vector<bench::Metric> metrics;

  // ---- Klug family at 10 and 12 points: new streaming vs legacy loop.
  for (int points : {10, 12}) {
    Interner interner;
    KlugCase kc = MakeKlugCase(points, &interner);
    std::vector<Rule> disjuncts = kc.u.disjuncts;

    // Verdict agreement before timing anything.
    Result<bool> check_new = CqContainedInUnionComplete(kc.q1, kc.u);
    std::optional<bool> check_old = LegacyContainedInUnion(kc.q1, disjuncts);
    if (!check_new.ok() || !check_old.has_value() || *check_new != *check_old ||
        !*check_new) {
      std::fprintf(stderr, "klug%d verdict mismatch\n", points);
      return 1;
    }

    const int iters = bench::ScaleIterations(points >= 12 ? 20 : 50, 3);
    double new_ns = BestNsPerOp(reps, iters, [&] {
      Result<bool> r = CqContainedInUnionComplete(kc.q1, kc.u);
      return r.ok() && *r;
    });
    double old_ns = BestNsPerOp(reps, iters, [&] {
      std::optional<bool> r = LegacyContainedInUnion(kc.q1, disjuncts);
      return r.has_value() && *r;
    });
    if (new_ns < 0 || old_ns < 0) {
      std::fprintf(stderr, "klug%d timing failed\n", points);
      return 1;
    }
    double speedup = old_ns / new_ns;
    std::printf("klug%-2d: new %.1f us, old %.1f us, speedup %.1fx\n", points,
                new_ns / 1e3, old_ns / 1e3, speedup);
    std::string prefix = "klug" + std::to_string(points);
    metrics.push_back({prefix + "_new_us", new_ns / 1e3, "us", false});
    metrics.push_back({prefix + "_old_us", old_ns / 1e3, "us", false});
    metrics.push_back({prefix + "_speedup_x", speedup, "x", true});
  }

  // ---- Past the old cap: sat/entailment at 24 points, streamed
  // containment at 22 points. The legacy enumerator refuses all of these
  // (kBoundReached at 13+ points); the matrix engine must not.
  {
    Interner interner;
    OrderConstraints chain;
    std::vector<Comparison> claims;
    for (int i = 0; i < 23; ++i) {
      Term a = Term::Var(interner.Intern("W" + std::to_string(i)));
      Term b = Term::Var(interner.Intern("W" + std::to_string(i + 1)));
      if (!chain.Add(Comparison(a, ComparisonOp::kLt, b)).ok()) return 1;
    }
    Term first = Term::Var(interner.Intern("W0"));
    Term last = Term::Var(interner.Intern("W23"));
    claims.push_back(Comparison(first, ComparisonOp::kLt, last));
    claims.push_back(Comparison(last, ComparisonOp::kGe, first));
    claims.push_back(Comparison(first, ComparisonOp::kNe, last));
    if (!chain.IsSatisfiable() || !chain.EntailsAll(claims) ||
        chain.Entails(Comparison(last, ComparisonOp::kLe, first))) {
      std::fprintf(stderr, "24-point chain verdicts wrong\n");
      return 1;
    }
    const int iters = bench::ScaleIterations(200, 20);
    double sat_entail_ns = BestNsPerOp(reps, iters, [&] {
      // Fresh constraint set per op: the closure cache would otherwise
      // reduce repeat calls to a consistency-flag read.
      OrderConstraints c;
      for (int i = 0; i < 23; ++i) {
        Term a = Term::Var(interner.Intern("W" + std::to_string(i)));
        Term b = Term::Var(interner.Intern("W" + std::to_string(i + 1)));
        if (!c.Add(Comparison(a, ComparisonOp::kLt, b)).ok()) return false;
      }
      return c.IsSatisfiable() && c.EntailsAll(claims);
    });
    if (sat_entail_ns < 0) return 1;
    std::printf("24-point sat+entail: %.1f us\n", sat_entail_ns / 1e3);
    metrics.push_back(
        {"points24_sat_entail_us", sat_entail_ns / 1e3, "us", false});
  }
  {
    Interner interner;
    KlugCase kc = MakeKlugCase(22, &interner);
    Result<bool> check = CqContainedInUnionComplete(kc.q1, kc.u);
    if (!check.ok() || !*check) {
      std::fprintf(stderr, "22-point containment: %s\n",
                   check.ok() ? "wrong verdict" : check.status().ToString().c_str());
      return 1;
    }
    const int iters = bench::ScaleIterations(10, 2);
    double ns = BestNsPerOp(reps, iters, [&] {
      Result<bool> r = CqContainedInUnionComplete(kc.q1, kc.u);
      return r.ok() && *r;
    });
    if (ns < 0) return 1;
    std::printf("22-point streamed containment: %.1f us\n", ns / 1e3);
    metrics.push_back({"points22_containment_us", ns / 1e3, "us", false});
    // 1.0 = no kBoundReached past the old cap (the acceptance criterion);
    // the early exits above make this constitutive, not decorative.
    metrics.push_back({"points_beyond_cap_ok", 1.0, "bool", true});
  }

  // ---- The semi-interval fast path (Theorem 5.1) must not have
  // regressed: entailment now rides the refutation closure.
  {
    Interner interner;
    int n = 6;
    std::string body1 = "q(X0) :- ", body2 = "q(X0) :- ";
    for (int i = 0; i < n; ++i) {
      std::string v = "X" + std::to_string(i);
      if (i > 0) {
        body1 += ", ";
        body2 += ", ";
      }
      std::string atom = "p(" + v + ", X" + std::to_string((i + 1) % n) + ")";
      body1 += atom + ", " + v + " < 5";
      body2 += atom + ", " + v + " < 10";
    }
    Rule q1 = *ParseRule(body1 + ".", &interner);
    Rule q2 = *ParseRule(body2 + ".", &interner);
    Result<bool> check = CqContainedViaEntailment(q1, q2);
    if (!check.ok() || !*check) {
      std::fprintf(stderr, "semi-interval fast path verdict wrong\n");
      return 1;
    }
    const int iters = bench::ScaleIterations(300, 30);
    double ns = BestNsPerOp(reps, iters, [&] {
      Result<bool> r = CqContainedViaEntailment(q1, q2);
      return r.ok() && *r;
    });
    if (ns < 0) return 1;
    std::printf("semi-interval fast path (6 vars): %.1f us\n", ns / 1e3);
    metrics.push_back({"semi_interval_entail_us", ns / 1e3, "us", false});
  }

  return bench::WriteBenchJson("BENCH_comparisons.json", "comparisons",
                               metrics)
             ? 0
             : 1;
}

}  // namespace
}  // namespace relcont

int main() { return relcont::Main(); }
