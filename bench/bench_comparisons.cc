// Experiments X51/X53 (Theorems 5.1/5.3): containment and relative
// containment with comparison predicates. The complete linearization test
// is exponential in the variable count (ordered Bell numbers); the
// homomorphism-entailment fast path — complete for semi-interval
// constraints, the fragment Theorem 5.1 covers — stays polynomial-ish.
// This is also the ablation DESIGN.md calls out: run both tests on the
// same instances and compare.

#include <benchmark/benchmark.h>

#include <string>

#include "containment/comparison_containment.h"
#include "datalog/parser.h"
#include "relcont/relative_containment.h"

namespace relcont {
namespace {

// Semi-interval query pair with n compared variables.
void MakeSemiIntervalPair(int n, Interner* interner, Rule* q1, Rule* q2) {
  std::string body1 = "q(X0) :- ", body2 = "q(X0) :- ";
  for (int i = 0; i < n; ++i) {
    std::string v = "X" + std::to_string(i);
    if (i > 0) {
      body1 += ", ";
      body2 += ", ";
    }
    std::string atom =
        "p(" + v + ", X" + std::to_string((i + 1) % n) + ")";
    body1 += atom;
    body2 += atom;
    body1 += ", " + v + " < 5";
    body2 += ", " + v + " < 10";
  }
  *q1 = *ParseRule(body1 + ".", interner);
  *q2 = *ParseRule(body2 + ".", interner);
}

void BM_Comparison_EntailmentFastPath(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Interner interner;
  Rule q1, q2;
  MakeSemiIntervalPair(n, &interner, &q1, &q2);
  for (auto _ : state) {
    Result<bool> r = CqContainedViaEntailment(q1, q2);
    if (!r.ok() || !*r) state.SkipWithError("wrong answer");
  }
  state.counters["vars"] = n;
}
BENCHMARK(BM_Comparison_EntailmentFastPath)->DenseRange(2, 7);

void BM_Comparison_CompleteLinearizationTest(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Interner interner;
  Rule q1, q2;
  MakeSemiIntervalPair(n, &interner, &q1, &q2);
  // Force the linearization path by asking a question the fast path
  // rejects: containment in a case-split union.
  UnionQuery split;
  split.disjuncts.push_back(
      *ParseRule("q(X0) :- p(X0, X1), X0 <= X1.", &interner));
  split.disjuncts.push_back(
      *ParseRule("q(X0) :- p(X0, X1), X0 >= X1.", &interner));
  Rule plain = *ParseRule("q(X0) :- p(X0, X1).", &interner);
  // Pad the left query with extra variables to grow the point set.
  for (int i = 1; i < n; ++i) {
    Atom extra;
    extra.predicate = interner.Intern("p");
    extra.args.push_back(Term::Var(interner.Intern("X" + std::to_string(i))));
    extra.args.push_back(
        Term::Var(interner.Intern("X" + std::to_string(i + 1))));
    plain.body.push_back(extra);
  }
  for (auto _ : state) {
    Result<bool> r = CqContainedInUnionComplete(plain, split);
    if (!r.ok() || !*r) state.SkipWithError("wrong answer");
  }
  state.counters["vars"] = n + 1;
}
BENCHMARK(BM_Comparison_CompleteLinearizationTest)->DenseRange(1, 5);

// Theorem 5.1: relative containment with semi-interval views, sweeping the
// number of interval sources.
void BM_Comparison_RelativeSemiInterval(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  Interner interner;
  std::string views_text;
  for (int i = 0; i < k; ++i) {
    int lo = i * 10, hi = i * 10 + 15;  // overlapping bands
    views_text += "band" + std::to_string(i) + "(X, P) :- item(X, P), P >= " +
                  std::to_string(lo) + ", P < " + std::to_string(hi) + ".\n";
  }
  ViewSet views = *ParseViews(views_text, &interner);
  GoalQuery all{*ParseProgram("qa(X) :- item(X, P).", &interner),
                interner.Lookup("qa")};
  GoalQuery low{*ParseProgram("ql(X) :- item(X, P), P < 100.", &interner),
                interner.Lookup("ql")};
  for (auto _ : state) {
    Result<RelativeContainmentResult> r =
        RelativelyContainedWithComparisons(all, low, views, &interner);
    if (!r.ok()) {
      state.SkipWithError("failed");
      return;
    }
  }
  state.counters["interval_sources"] = k;
}
BENCHMARK(BM_Comparison_RelativeSemiInterval)->DenseRange(1, 5);

// Theorem 5.3: comparison-free Q1 against a Q2 with comparisons, via the
// expansion reduction.
void BM_Comparison_ExpansionRoute(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  Interner interner;
  std::string views_text;
  for (int i = 0; i < k; ++i) {
    views_text += "cheap" + std::to_string(i) +
                  "(X, P) :- item(X, P), P < " + std::to_string(10 * (i + 1)) +
                  ".\n";
  }
  ViewSet views = *ParseViews(views_text, &interner);
  GoalQuery all{*ParseProgram("qa(X) :- item(X, P).", &interner),
                interner.Lookup("qa")};
  GoalQuery bounded{*ParseProgram(
                        "qb(X) :- item(X, P), P < " +
                            std::to_string(10 * k) + ".",
                        &interner),
                    interner.Lookup("qb")};
  for (auto _ : state) {
    Result<bool> r =
        RelativelyContainedViaExpansion(all, bounded, views, &interner);
    if (!r.ok() || !*r) {
      state.SkipWithError("wrong answer");
      return;
    }
  }
  state.counters["sources"] = k;
}
BENCHMARK(BM_Comparison_ExpansionRoute)->DenseRange(1, 6);

}  // namespace
}  // namespace relcont
