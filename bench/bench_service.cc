// Throughput benchmark for the containment-decision service: requests/sec
// at 1/4/8 worker threads, cold cache (every request re-derived) vs warm
// cache (repeated workload served from the canonical-form cache). Writes
// BENCH_service.json (relcont-bench-v1 schema — see bench/harness.h) so
// the perf trajectory is recorded across PRs and diffable with
// tools/bench_compare.
//
// This is a standalone binary (not google-benchmark) because the quantity
// of interest is end-to-end batch throughput of the executor, not
// per-iteration latency of a hot loop.
//
// RELCONT_BENCH_SMOKE=1 shrinks the workload to CI scale and drops the
// absolute speedup exit criterion (smoke numbers are for relative
// comparison against a smoke baseline only).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"
#include "relcont/workload.h"
#include "service/service.h"

namespace relcont {
namespace {

struct Measurement {
  int threads = 1;
  const char* cache = "cold";
  size_t requests = 0;
  double seconds = 0;
  double requests_per_sec() const {
    return seconds > 0 ? static_cast<double>(requests) / seconds : 0;
  }
};

std::vector<DecisionRequest> DistinctPairs(int count,
                                           std::string* views_text) {
  Interner gen;
  RandomQueryOptions options;
  options.num_atoms = 4;
  options.num_variables = 5;
  options.num_predicates = 2;
  options.arity = 2;
  options.head_arity = 1;
  ViewSet views = RandomViews(options, 5, &gen);
  for (const ViewDefinition& v : views.views()) {
    *views_text += v.rule.ToString(gen);
    *views_text += '\n';
  }
  std::vector<DecisionRequest> pairs;
  for (int i = 0; i < count; ++i) {
    options.seed = 7000 + i;
    Rule qa = RandomConjunctiveQuery(options, "qa", &gen);
    options.seed = 9000 + i;
    Rule qb = RandomConjunctiveQuery(options, "qb", &gen);
    DecisionRequest request;
    request.q1_text = qa.ToString(gen);
    request.q2_text = qb.ToString(gen);
    request.catalog = "bench";
    pairs.push_back(std::move(request));
  }
  return pairs;
}

Measurement Run(ContainmentService* service,
                const std::vector<DecisionRequest>& requests, int threads,
                const char* cache_label,
                bench::Samples* latencies = nullptr) {
  Measurement m;
  m.threads = threads;
  m.cache = cache_label;
  m.requests = requests.size();
  auto start = std::chrono::steady_clock::now();
  std::vector<DecisionResponse> responses =
      service->ExecuteBatch(requests, threads);
  m.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  for (const DecisionResponse& r : responses) {
    if (!r.status.ok()) {
      std::fprintf(stderr, "request failed: %s\n",
                   r.status.ToString().c_str());
    }
    if (latencies != nullptr) {
      latencies->Add(static_cast<double>(r.latency_micros));
    }
  }
  std::printf("  threads=%d cache=%-4s requests=%zu  %.0f req/s\n",
              threads, cache_label, m.requests, m.requests_per_sec());
  return m;
}

int Main() {
  std::string views_text;
  std::vector<DecisionRequest> pairs = DistinctPairs(16, &views_text);

  const int cold_reps = bench::ScaleIterations(5, 1);
  const int warm_reps = bench::ScaleIterations(100, 10);

  // Cold workload: every request bypasses the cache, so each one pays the
  // full decision cost. Kept smaller — these are the expensive ones.
  std::vector<DecisionRequest> cold;
  for (int rep = 0; rep < cold_reps; ++rep) {
    for (const DecisionRequest& p : pairs) {
      DecisionRequest r = p;
      r.bypass_cache = true;
      cold.push_back(std::move(r));
    }
  }
  // Warm workload: the repeated-request shape the service is built for.
  std::vector<DecisionRequest> warm;
  for (int rep = 0; rep < warm_reps; ++rep) {
    for (const DecisionRequest& p : pairs) warm.push_back(p);
  }

  std::printf("bench_service: %zu distinct pairs, cold=%zu warm=%zu\n",
              pairs.size(), cold.size(), warm.size());
  std::vector<Measurement> results;
  bench::Samples cold_latency_us;
  bench::Samples warm_latency_us;
  for (int threads : {1, 4, 8}) {
    ContainmentService service;
    if (!service.catalogs().Register("bench", views_text).ok()) {
      std::fprintf(stderr, "catalog registration failed\n");
      return 1;
    }
    // Per-request latency distributions come from the 8-thread runs —
    // the contended configuration is where the tail lives.
    results.push_back(Run(&service, cold, threads, "cold",
                          threads == 8 ? &cold_latency_us : nullptr));
    // Prewarm, then measure the steady state.
    service.ExecuteBatch(pairs, threads);
    results.push_back(Run(&service, warm, threads, "warm",
                          threads == 8 ? &warm_latency_us : nullptr));
  }

  double cold1 = 0;
  double warm8 = 0;
  for (const Measurement& m : results) {
    if (m.threads == 1 && std::string(m.cache) == "cold") {
      cold1 = m.requests_per_sec();
    }
    if (m.threads == 8 && std::string(m.cache) == "warm") {
      warm8 = m.requests_per_sec();
    }
  }
  double speedup = cold1 > 0 ? warm8 / cold1 : 0;
  std::printf("warm-8-thread vs cold-1-thread speedup: %.1fx\n", speedup);

  std::vector<bench::Metric> metrics;
  for (const Measurement& m : results) {
    bench::Metric metric;
    metric.name = std::string(m.cache) + "_" + std::to_string(m.threads) +
                  "t_req_per_sec";
    metric.value = m.requests_per_sec();
    metric.unit = "req/s";
    metric.higher_is_better = true;
    metrics.push_back(std::move(metric));
  }
  metrics.push_back({"speedup_warm8_vs_cold1", speedup, "x", true});
  // Tail latency of the contended runs: value is the median, p50/p95/p99
  // ride along so bench_compare can gate on tail drift specifically.
  metrics.push_back(bench::DistributionMetric(
      "cold_8t_request_latency_us", cold_latency_us, "us",
      /*higher_is_better=*/false));
  metrics.push_back(bench::DistributionMetric(
      "warm_8t_request_latency_us", warm_latency_us, "us",
      /*higher_is_better=*/false));
  std::printf("warm 8t latency us: p50=%.0f p95=%.0f p99=%.0f\n",
              warm_latency_us.Median(), warm_latency_us.P95(),
              warm_latency_us.P99());
  if (!bench::WriteBenchJson("BENCH_service.json", "service_throughput",
                             metrics)) {
    return 1;
  }
  // Absolute acceptance only at full scale: a smoke run's workload is too
  // small for the cache advantage to express itself reliably.
  if (!bench::SmokeMode() && speedup < 5.0) {
    std::fprintf(stderr, "speedup %.2fx below the 5x acceptance bar\n",
                 speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace relcont

int main() { return relcont::Main(); }
