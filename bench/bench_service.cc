// Throughput benchmark for the containment-decision service: requests/sec
// at 1/4/8 worker threads, cold cache (every request re-derived) vs warm
// cache (repeated workload served from the canonical-form cache). Writes
// BENCH_service.json next to the working directory so the perf trajectory
// is recorded across PRs.
//
// This is a standalone binary (not google-benchmark) because the quantity
// of interest is end-to-end batch throughput of the executor, not
// per-iteration latency of a hot loop.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "relcont/workload.h"
#include "service/service.h"

namespace relcont {
namespace {

struct Measurement {
  int threads = 1;
  const char* cache = "cold";
  size_t requests = 0;
  double seconds = 0;
  double requests_per_sec() const {
    return seconds > 0 ? static_cast<double>(requests) / seconds : 0;
  }
};

std::vector<DecisionRequest> DistinctPairs(int count,
                                           std::string* views_text) {
  Interner gen;
  RandomQueryOptions options;
  options.num_atoms = 4;
  options.num_variables = 5;
  options.num_predicates = 2;
  options.arity = 2;
  options.head_arity = 1;
  ViewSet views = RandomViews(options, 5, &gen);
  for (const ViewDefinition& v : views.views()) {
    *views_text += v.rule.ToString(gen);
    *views_text += '\n';
  }
  std::vector<DecisionRequest> pairs;
  for (int i = 0; i < count; ++i) {
    options.seed = 7000 + i;
    Rule qa = RandomConjunctiveQuery(options, "qa", &gen);
    options.seed = 9000 + i;
    Rule qb = RandomConjunctiveQuery(options, "qb", &gen);
    DecisionRequest request;
    request.q1_text = qa.ToString(gen);
    request.q2_text = qb.ToString(gen);
    request.catalog = "bench";
    pairs.push_back(std::move(request));
  }
  return pairs;
}

Measurement Run(ContainmentService* service,
                const std::vector<DecisionRequest>& requests, int threads,
                const char* cache_label) {
  Measurement m;
  m.threads = threads;
  m.cache = cache_label;
  m.requests = requests.size();
  auto start = std::chrono::steady_clock::now();
  std::vector<DecisionResponse> responses =
      service->ExecuteBatch(requests, threads);
  m.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  for (const DecisionResponse& r : responses) {
    if (!r.status.ok()) {
      std::fprintf(stderr, "request failed: %s\n",
                   r.status.ToString().c_str());
    }
  }
  std::printf("  threads=%d cache=%-4s requests=%zu  %.0f req/s\n",
              threads, cache_label, m.requests, m.requests_per_sec());
  return m;
}

int Main() {
  std::string views_text;
  std::vector<DecisionRequest> pairs = DistinctPairs(16, &views_text);

  // Cold workload: every request bypasses the cache, so each one pays the
  // full decision cost. Kept smaller — these are the expensive ones.
  std::vector<DecisionRequest> cold;
  for (int rep = 0; rep < 5; ++rep) {
    for (const DecisionRequest& p : pairs) {
      DecisionRequest r = p;
      r.bypass_cache = true;
      cold.push_back(std::move(r));
    }
  }
  // Warm workload: the repeated-request shape the service is built for.
  std::vector<DecisionRequest> warm;
  for (int rep = 0; rep < 100; ++rep) {
    for (const DecisionRequest& p : pairs) warm.push_back(p);
  }

  std::printf("bench_service: %zu distinct pairs, cold=%zu warm=%zu\n",
              pairs.size(), cold.size(), warm.size());
  std::vector<Measurement> results;
  for (int threads : {1, 4, 8}) {
    ContainmentService service;
    if (!service.catalogs().Register("bench", views_text).ok()) {
      std::fprintf(stderr, "catalog registration failed\n");
      return 1;
    }
    results.push_back(Run(&service, cold, threads, "cold"));
    // Prewarm, then measure the steady state.
    service.ExecuteBatch(pairs, threads);
    results.push_back(Run(&service, warm, threads, "warm"));
  }

  double cold1 = 0;
  double warm8 = 0;
  for (const Measurement& m : results) {
    if (m.threads == 1 && std::string(m.cache) == "cold") {
      cold1 = m.requests_per_sec();
    }
    if (m.threads == 8 && std::string(m.cache) == "warm") {
      warm8 = m.requests_per_sec();
    }
  }
  double speedup = cold1 > 0 ? warm8 / cold1 : 0;
  std::printf("warm-8-thread vs cold-1-thread speedup: %.1fx\n", speedup);

  FILE* out = std::fopen("BENCH_service.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_service.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n  \"benchmark\": \"service_throughput\",\n"
               "  \"distinct_pairs\": %zu,\n  \"results\": [\n",
               pairs.size());
  for (size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    std::fprintf(out,
                 "    {\"threads\": %d, \"cache\": \"%s\", \"requests\": "
                 "%zu, \"seconds\": %.6f, \"requests_per_sec\": %.1f}%s\n",
                 m.threads, m.cache, m.requests, m.seconds,
                 m.requests_per_sec(), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"speedup_warm8_vs_cold1\": %.2f\n}\n", speedup);
  std::fclose(out);
  std::printf("wrote BENCH_service.json\n");
  return speedup >= 5.0 ? 0 : 1;
}

}  // namespace
}  // namespace relcont

int main() { return relcont::Main(); }
