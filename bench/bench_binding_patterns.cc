// Experiment X41 (Theorems 4.1/4.2): relative containment under binding
// patterns. The left plan is recursive (the dom accumulator), so the
// decision runs the profile-saturation procedure; the sweeps scale the
// number of adorned sources and the UCQ cover size.

#include <benchmark/benchmark.h>

#include "datalog/parser.h"
#include "relcont/binding_containment.h"

namespace relcont {
namespace {

// The chain scenario: seed + k distinct lookup sources over one relation.
struct ChainScenario {
  Interner interner;
  ViewSet views;
  BindingPatterns patterns;
  GoalQuery q_any;
  GoalQuery q_cover;
};

// Builds: seed(X) :- link(a, X); next_i(X, Y) :- link(X, Y) with ^bf.
// The cover is "one step from a" plus "last two steps" — containment holds
// and its proof needs trees of unbounded depth.
void BuildChain(int lookups, ChainScenario* s) {
  std::string views_text = "seed(X) :- link(a, X).\n";
  for (int i = 0; i < lookups; ++i) {
    views_text +=
        "next" + std::to_string(i) + "(X, Y) :- link(X, Y).\n";
  }
  s->views = *ParseViews(views_text, &s->interner);
  for (int i = 0; i < lookups; ++i) {
    s->patterns.Set(s->interner.Lookup("next" + std::to_string(i)),
                    *Adornment::Parse("bf"));
  }
  s->q_any = {*ParseProgram("q1(Y) :- link(X, Y).", &s->interner),
              s->interner.Lookup("q1")};
  s->q_cover = {*ParseProgram(
                    "q3(Y) :- link(a, Y).\n"
                    "q3(Y) :- link(X1, X2), link(X2, Y).\n",
                    &s->interner),
                s->interner.Lookup("q3")};
}

void BM_Binding_SweepLookupSources(benchmark::State& state) {
  int lookups = static_cast<int>(state.range(0));
  ChainScenario s;
  BuildChain(lookups, &s);
  int tree_options = 0;
  for (auto _ : state) {
    Result<BindingRelativeResult> r = RelativelyContainedWithBindingPatterns(
        s.q_any, s.q_cover, s.views, s.patterns, &s.interner);
    if (!r.ok() || !r->contained) {
      state.SkipWithError(r.ok() ? "wrong answer" : r.status().ToString().c_str());
      return;
    }
    tree_options = r->tree_options;
  }
  state.counters["lookup_sources"] = lookups;
  state.counters["tree_profiles"] = tree_options;
}
BENCHMARK(BM_Binding_SweepLookupSources)->DenseRange(1, 4);

// Sweep the UCQ cover width: "last k steps" disjuncts.
void BM_Binding_SweepCoverWidth(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  ChainScenario s;
  BuildChain(1, &s);
  // cover: link(a, Y) plus suffixes of lengths 2..width+1.
  std::string text = "qc(Y) :- link(a, Y).\n";
  for (int k = 2; k <= width + 1; ++k) {
    text += "qc(Y) :- ";
    for (int i = 0; i < k; ++i) {
      if (i > 0) text += ", ";
      text += "link(S" + std::to_string(i) + ", " +
              (i + 1 == k ? std::string("Y")
                          : "S" + std::to_string(i + 1)) +
              ")";
    }
    text += ".\n";
  }
  GoalQuery cover{*ParseProgram(text, &s.interner), s.interner.Lookup("qc")};
  for (auto _ : state) {
    Result<BindingRelativeResult> r = RelativelyContainedWithBindingPatterns(
        s.q_any, cover, s.views, s.patterns, &s.interner);
    if (!r.ok() || !r->contained) {
      state.SkipWithError("wrong answer");
      return;
    }
  }
  state.counters["cover_width"] = width;
}
BENCHMARK(BM_Binding_SweepCoverWidth)->DenseRange(1, 4);

// A non-containment that needs a deep counterexample: cover that misses
// exactly the depth-3 expansions.
void BM_Binding_Counterexample(benchmark::State& state) {
  ChainScenario s;
  BuildChain(1, &s);
  GoalQuery partial{*ParseProgram("qp(Y) :- link(a, Y).", &s.interner),
                    s.interner.Lookup("qp")};
  for (auto _ : state) {
    Result<BindingRelativeResult> r = RelativelyContainedWithBindingPatterns(
        s.q_any, partial, s.views, s.patterns, &s.interner);
    if (!r.ok() || r->contained) {
      state.SkipWithError("wrong answer");
      return;
    }
  }
}
BENCHMARK(BM_Binding_Counterexample);

}  // namespace
}  // namespace relcont
