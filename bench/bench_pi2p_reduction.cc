// Experiment X33 (Theorem 3.3): relative containment on the ∀∃-3CNF
// hard-instance family. The paper proves Π₂ᴾ-completeness; the measurable
// shape is exponential growth in the number of universal variables m (the
// unfolded plans have 2^m disjuncts and the containment check compares
// them pairwise), against polynomial growth in the clause count.

#include <benchmark/benchmark.h>

#include "relcont/pi2p_reduction.h"

namespace relcont {
namespace {

// Sweep the universal-variable count m: expect ~4^m growth.
void BM_Pi2p_SweepForall(benchmark::State& state) {
  int m = static_cast<int>(state.range(0));
  Interner interner;
  QbfFormula f = RandomQbf(/*num_exists=*/3, m, /*num_clauses=*/4,
                           /*seed=*/7);
  Result<Pi2pInstance> inst = BuildPi2pReduction(f, &interner);
  if (!inst.ok()) {
    state.SkipWithError("reduction failed");
    return;
  }
  bool expected = ForallExistsSatisfiable(f);
  for (auto _ : state) {
    Result<RelativeContainmentResult> r =
        RelativelyContained(inst->q2, inst->q1, inst->views, &interner);
    if (!r.ok() || r->contained != expected) {
      state.SkipWithError("wrong answer");
      return;
    }
  }
  state.counters["forall_vars"] = m;
  state.counters["plan_disjuncts"] = static_cast<double>(1) * (1 << m);
}
BENCHMARK(BM_Pi2p_SweepForall)->DenseRange(1, 6);

// Sweep the clause count p at fixed m: expect polynomial growth (each
// disjunct pair needs one containment-mapping search whose size grows
// with p).
void BM_Pi2p_SweepClauses(benchmark::State& state) {
  int p = static_cast<int>(state.range(0));
  Interner interner;
  QbfFormula f = RandomQbf(/*num_exists=*/3, /*num_forall=*/2, p,
                           /*seed=*/11);
  Result<Pi2pInstance> inst = BuildPi2pReduction(f, &interner);
  if (!inst.ok()) {
    state.SkipWithError("reduction failed");
    return;
  }
  bool expected = ForallExistsSatisfiable(f);
  for (auto _ : state) {
    Result<RelativeContainmentResult> r =
        RelativelyContained(inst->q2, inst->q1, inst->views, &interner);
    if (!r.ok() || r->contained != expected) {
      state.SkipWithError("wrong answer");
      return;
    }
  }
  state.counters["clauses"] = p;
}
BENCHMARK(BM_Pi2p_SweepClauses)->DenseRange(2, 10, 2);

// Parallel disjunct scan: the same decision at m ∈ {5, 6} swept over the
// fan-out width. Speedup is bounded by the host's core count — on a
// single-CPU machine the curve is flat and the interesting number is the
// overhead of spawning helpers (see docs/EXPERIMENTS.md).
void BM_Pi2p_ParallelWorkers(benchmark::State& state) {
  int m = static_cast<int>(state.range(0));
  int workers = static_cast<int>(state.range(1));
  Interner interner;
  QbfFormula f = RandomQbf(/*num_exists=*/3, m, /*num_clauses=*/4,
                           /*seed=*/7);
  Result<Pi2pInstance> inst = BuildPi2pReduction(f, &interner);
  if (!inst.ok()) {
    state.SkipWithError("reduction failed");
    return;
  }
  bool expected = ForallExistsSatisfiable(f);
  RelativeContainmentOptions options;
  options.parallel_workers = workers;
  for (auto _ : state) {
    Result<RelativeContainmentResult> r = RelativelyContained(
        inst->q2, inst->q1, inst->views, &interner, options);
    if (!r.ok() || r->contained != expected) {
      state.SkipWithError("wrong answer");
      return;
    }
  }
  state.counters["forall_vars"] = m;
  state.counters["workers"] = workers;
}
BENCHMARK(BM_Pi2p_ParallelWorkers)
    ->ArgsProduct({{5, 6}, {1, 2, 4, 8}});

// The brute-force ∀∃ oracle, for scale comparison: also exponential in m,
// but over truth assignments rather than containment mappings.
void BM_Pi2p_BruteForceOracle(benchmark::State& state) {
  int m = static_cast<int>(state.range(0));
  QbfFormula f = RandomQbf(/*num_exists=*/3, m, /*num_clauses=*/4,
                           /*seed=*/7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ForallExistsSatisfiable(f));
  }
  state.counters["forall_vars"] = m;
}
BENCHMARK(BM_Pi2p_BruteForceOracle)->DenseRange(1, 6);

}  // namespace
}  // namespace relcont
