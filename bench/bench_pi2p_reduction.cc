// Experiment X33 (Theorem 3.3): relative containment on the ∀∃-3CNF
// hard-instance family, scan vs CEGAR. The paper proves Π₂ᴾ-completeness;
// the measurable shape is exponential growth in the number of universal
// variables m. The parallel scan materializes all 2^m plan disjuncts and
// checks them pairwise (~4^m); the CEGAR engine proposes canonical
// databases one at a time and prunes with blocking clauses (~2^m·poly), so
// the two curves cross and the gap widens by another factor of 2 per
// universal variable. This harness sweeps m with both engines on the SAME
// instances, records per-m timings plus the measured crossover point, and
// in full mode fails (exit status) unless CEGAR is strictly faster at
// every measured m >= 10 — the acceptance bar of the CEGAR change.
//
// Every timed decision is verdict-checked against the brute-force ∀∃
// oracle, and the per-m instance is seed-searched to be ∀∃-satisfiable so
// the verdict is YES: both engines must run their search to exhaustion
// rather than winning by a lucky early counterexample.
//
// Writes BENCH_pi2p_reduction.json (relcont-bench-v1 schema, see
// bench/harness.h). RELCONT_BENCH_SMOKE=1 caps the sweep at m=12 so the
// CI gate finishes in seconds; the full sweep runs scan to m=13 and CEGAR
// to m=20 (scan at m=14 already takes minutes). Standalone (not
// google-benchmark): the two engines must interleave per-m on identical
// instances for the crossover to be an apples-to-apples number.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"

#include "relcont/pi2p_reduction.h"
#include "relcont/relative_containment.h"

namespace relcont {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The first seed from 7 whose formula is ∀∃-satisfiable. A YES instance
// forces both engines through their full search space; a NO instance can
// end at the first uncovered proposal and would understate scan's cost.
QbfFormula PickFormula(int m) {
  for (uint64_t seed = 7;; ++seed) {
    QbfFormula f = RandomQbf(/*num_exists=*/3, m, /*num_clauses=*/4, seed);
    if (ForallExistsSatisfiable(f)) return f;
  }
}

// Best-of-reps wall time of one decision under `strategy`, in ns.
// Negative on error or on a verdict disagreeing with the oracle.
double TimeEngine(const Pi2pInstance& inst, Interner* interner,
                  ContainmentStrategy strategy, int reps) {
  RelativeContainmentOptions options;
  options.strategy = strategy;
  // The scan's unfolded plan has 2^m disjuncts; lift the default cap so
  // the full sweep measures the engine, not the guard rail.
  options.unfold.max_disjuncts = 1 << 22;
  uint64_t best = UINT64_MAX;
  for (int rep = 0; rep < reps; ++rep) {
    uint64_t start = NowNs();
    Result<RelativeContainmentResult> r = RelativelyContained(
        inst.q2, inst.q1, inst.views, interner, options);
    uint64_t ns = NowNs() - start;
    if (!r.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   std::string(ContainmentStrategyName(strategy)).c_str(),
                   r.status().ToString().c_str());
      return -1;
    }
    if (!r->contained) {
      std::fprintf(stderr, "%s verdict disagrees with the oracle\n",
                   std::string(ContainmentStrategyName(strategy)).c_str());
      return -1;
    }
    if (ns < best) best = ns;
  }
  return static_cast<double>(best);
}

int Main() {
  const bool smoke = bench::SmokeMode();
  // Scan is ~4^m: m=13 is tens of seconds, m=14 minutes — the full sweep
  // stops scan at 13 and lets CEGAR continue to 20 to show the widening
  // gap. Smoke caps both at 12 (a few seconds total) for the CI gate.
  const int scan_max = smoke ? 12 : 13;
  const int cegar_max = smoke ? 12 : 20;

  std::vector<bench::Metric> metrics;
  int crossover_m = 0;      // first m where cegar beats scan
  bool bar_met = true;      // cegar strictly faster at every m >= 10
  bool bar_measured = false;

  for (int m = 4; m <= cegar_max; m += 2) {
    Interner interner;
    QbfFormula f = PickFormula(m);
    Result<Pi2pInstance> inst = BuildPi2pReduction(f, &interner);
    if (!inst.ok()) {
      std::fprintf(stderr, "m=%d reduction failed: %s\n", m,
                   inst.status().ToString().c_str());
      return 1;
    }
    const int reps = m <= 8 ? 3 : 1;
    double cegar_ns =
        TimeEngine(*inst, &interner, ContainmentStrategy::kCegar, reps);
    if (cegar_ns < 0) return 1;
    std::string suffix = "_m" + std::to_string(m);
    metrics.push_back({"cegar_ns" + suffix, cegar_ns, "ns", false});
    if (m > scan_max) {
      std::printf("m=%-2d  cegar %10.3f ms   scan (skipped)\n", m,
                  cegar_ns / 1e6);
      continue;
    }
    double scan_ns =
        TimeEngine(*inst, &interner, ContainmentStrategy::kScan, reps);
    if (scan_ns < 0) return 1;
    metrics.push_back({"scan_ns" + suffix, scan_ns, "ns", false});
    std::printf("m=%-2d  cegar %10.3f ms   scan %10.3f ms   ratio %.2fx\n",
                m, cegar_ns / 1e6, scan_ns / 1e6, scan_ns / cegar_ns);
    if (crossover_m == 0 && cegar_ns < scan_ns) crossover_m = m;
    if (m >= 10) {
      bar_measured = true;
      if (cegar_ns >= scan_ns) bar_met = false;
    }
  }

  // The crossover point itself (sentinel past the sweep when cegar never
  // won) and the m>=10 acceptance bar as a gateable boolean.
  if (crossover_m == 0) crossover_m = scan_max + 1;
  std::printf("crossover: cegar faster from m=%d\n", crossover_m);
  metrics.push_back({"crossover_m", static_cast<double>(crossover_m),
                     "forall_vars", false});
  metrics.push_back({"cegar_faster_at_10plus",
                     bar_measured && bar_met ? 1.0 : 0.0, "bool", true});

  if (!bench::WriteBenchJson("BENCH_pi2p_reduction.json", "pi2p_reduction",
                             metrics)) {
    return 1;
  }
  // Full-scale acceptance bar: scan must lose everywhere it can still be
  // run at all. (Smoke runs report the boolean metric instead — the
  // committed baseline plus bench_compare gate it in CI.)
  if (!smoke && (!bar_measured || !bar_met)) {
    std::fprintf(stderr, "FAIL: cegar not strictly faster at every m>=10\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace relcont

int main() { return relcont::Main(); }
