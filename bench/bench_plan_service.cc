// Throughput benchmark for the plan service on the path-view workload:
// plans/sec cold (every PLAN? rebuilds the plan) vs warm (repeats served
// from the versioned plan cache), over both plan regimes — the recursive
// dom plan of the binding-pattern catalog and the UCQ-over-sources plan
// of the pattern-free catalog. Writes BENCH_plan_service.json
// (relcont-bench-v1 schema — see bench/harness.h) for tools/bench_compare.
//
// This is a standalone binary (not google-benchmark) because the quantity
// of interest is request throughput through the Planner facade, cache
// included, not hot-loop latency of one construction.
//
// RELCONT_BENCH_SMOKE=1 shrinks the workload to CI scale and drops the
// absolute speedup exit criterion (smoke numbers are for relative
// comparison against a smoke baseline only).

#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "harness.h"
#include "planner/planner.h"
#include "relcont/workload.h"
#include "service/service.h"

namespace relcont {
namespace {

/// Distinct chain queries over the mediated relations e0..e{k-1}, the
/// query shape the path-view catalogs answer.
std::vector<std::string> ChainQueries(int count, int num_relations,
                                      uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> length(2, 3);
  std::uniform_int_distribution<int> relation(0, num_relations - 1);
  std::vector<std::string> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    int hops = length(rng);
    std::string q = "q(X0, X" + std::to_string(hops) + ") :- ";
    for (int hop = 0; hop < hops; ++hop) {
      if (hop > 0) q += ", ";
      q += "e" + std::to_string(relation(rng)) + "(X" +
           std::to_string(hop) + ", X" + std::to_string(hop + 1) + ")";
    }
    q += ".";
    out.push_back(std::move(q));
  }
  return out;
}

struct Measurement {
  size_t requests = 0;
  double seconds = 0;
  /// Per-request wall latency in microseconds, for the tail metrics.
  bench::Samples latency_us;
  double plans_per_sec() const {
    return seconds > 0 ? static_cast<double>(requests) / seconds : 0;
  }
};

/// Runs `reps` passes of `queries` through the planner. `bypass_cache`
/// makes every request rebuild (the cold shape); otherwise repeats hit
/// the plan cache (the warm shape).
Measurement Run(Planner* planner, PlannerContext* ctx,
                const std::string& catalog,
                const std::vector<std::string>& queries, int reps,
                bool bypass_cache, const char* label) {
  Measurement m;
  auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    for (const std::string& query : queries) {
      PlanRequest request;
      request.query_text = query;
      request.catalog = catalog;
      request.bypass_cache = bypass_cache;
      auto request_start = std::chrono::steady_clock::now();
      PlanResponse response = planner->Plan(request, ctx);
      m.latency_us.Add(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - request_start)
                           .count());
      if (!response.status.ok()) {
        std::fprintf(stderr, "plan failed (%s): %s\n", label,
                     response.status.ToString().c_str());
      }
      ++m.requests;
    }
  }
  m.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  std::printf("  %-14s requests=%zu  %.0f plans/s\n", label, m.requests,
              m.plans_per_sec());
  return m;
}

int Main() {
  PathViewOptions options;
  options.num_views = bench::ScaleIterations(600, 60);
  options.num_relations = 8;
  options.min_length = 1;
  options.max_length = 4;
  options.bound_probability = 1.0;  // every view input-bound: dom regime
  options.skew = 1.0;
  options.seed = 424242;
  PathViewWorkload bound = MakePathViewWorkload(options);

  // The UCQ regime unfolds through every matching view, so its catalog
  // stays small enough that the disjunct fan-out is the work, not a bound.
  PathViewOptions free_options = options;
  free_options.num_views = bench::ScaleIterations(40, 12);
  free_options.bound_probability = 0.0;
  PathViewWorkload free_views = MakePathViewWorkload(free_options);

  ContainmentService service;
  if (!service.catalogs()
           .Register("bound", bound.views_text, bound.patterns)
           .ok() ||
      !service.catalogs().Register("free", free_views.views_text).ok()) {
    std::fprintf(stderr, "catalog registration failed\n");
    return 1;
  }

  std::vector<std::string> queries =
      ChainQueries(/*count=*/16, options.num_relations, /*seed=*/7);
  const int cold_reps = bench::ScaleIterations(3, 1);
  const int warm_reps = bench::ScaleIterations(200, 20);
  std::printf("bench_plan_service: views=%d/%d queries=%zu cold=%d "
              "warm=%d\n",
              options.num_views, free_options.num_views, queries.size(),
              cold_reps, warm_reps);

  Planner& planner = service.planner();
  PlannerContext ctx;
  Measurement cold_bound = Run(&planner, &ctx, "bound", queries, cold_reps,
                               /*bypass_cache=*/true, "cold/recursive");
  Measurement cold_free = Run(&planner, &ctx, "free", queries, cold_reps,
                              /*bypass_cache=*/true, "cold/ucq");
  // Prewarm one pass, then measure the repeated-request steady state.
  Run(&planner, &ctx, "bound", queries, 1, false, "prewarm/recursive");
  Run(&planner, &ctx, "free", queries, 1, false, "prewarm/ucq");
  Measurement warm_bound = Run(&planner, &ctx, "bound", queries, warm_reps,
                               /*bypass_cache=*/false, "warm/recursive");
  Measurement warm_free = Run(&planner, &ctx, "free", queries, warm_reps,
                              /*bypass_cache=*/false, "warm/ucq");

  double speedup = cold_bound.plans_per_sec() > 0
                       ? warm_bound.plans_per_sec() /
                             cold_bound.plans_per_sec()
                       : 0;
  std::printf("warm vs cold speedup (recursive regime): %.1fx\n", speedup);
  PlanCacheStats stats = planner.cache().Stats();
  std::printf("plan cache: hits=%llu misses=%llu entries=%llu\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.entries));

  std::vector<bench::Metric> metrics;
  metrics.push_back({"cold_recursive_plans_per_sec",
                     cold_bound.plans_per_sec(), "plans/s", true});
  metrics.push_back({"cold_ucq_plans_per_sec", cold_free.plans_per_sec(),
                     "plans/s", true});
  metrics.push_back({"warm_recursive_plans_per_sec",
                     warm_bound.plans_per_sec(), "plans/s", true});
  metrics.push_back({"warm_ucq_plans_per_sec", warm_free.plans_per_sec(),
                     "plans/s", true});
  metrics.push_back({"speedup_warm_vs_cold", speedup, "x", true});
  // Per-request latency distributions: the throughput rows above hide the
  // tail, and bench_compare gates p99 drift once the baseline carries it.
  metrics.push_back(bench::DistributionMetric(
      "cold_recursive_plan_latency_us", cold_bound.latency_us, "us", false));
  metrics.push_back(bench::DistributionMetric(
      "cold_ucq_plan_latency_us", cold_free.latency_us, "us", false));
  metrics.push_back(bench::DistributionMetric(
      "warm_recursive_plan_latency_us", warm_bound.latency_us, "us", false));
  metrics.push_back(bench::DistributionMetric(
      "warm_ucq_plan_latency_us", warm_free.latency_us, "us", false));
  if (!bench::WriteBenchJson("BENCH_plan_service.json", "plan_service",
                             metrics)) {
    return 1;
  }
  // Absolute acceptance only at full scale: a smoke run's catalog is small
  // enough that a cold rebuild is already cheap.
  if (!bench::SmokeMode() && speedup < 10.0) {
    std::fprintf(stderr, "speedup %.2fx below the 10x acceptance bar\n",
                 speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace relcont

int main() { return relcont::Main(); }
