// Randomized differential testing of the plan service: for seeded random
// path-view catalogs (the Section 4 binding-pattern fragment and the
// pattern-free local-as-view fragment), the plan a live ServerSession
// serves over PLAN? must equal the plan the library produces when called
// directly — compared by canonical fingerprint after re-parsing both
// renderings in fresh interners, so worker-arena symbol state cannot mask
// or manufacture a difference.
//
// Every failure message carries the seed; replay one case with
//   RELCONT_PLAN_DIFF_SEED=<seed> ./build/tests/plan_differential_test
// and scale the sweep with RELCONT_PLAN_DIFF_CASES=<n>.

#include <cstdlib>
#include <functional>
#include <optional>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "binding/dom_plan.h"
#include "containment/canonical.h"
#include "datalog/parser.h"
#include "relcont/decide.h"
#include "relcont/workload.h"
#include "rewriting/inverse_rules.h"
#include "service/catalog.h"
#include "service/protocol.h"
#include "service/service.h"

namespace relcont {
namespace {

int CasesFromEnv() {
  const char* env = std::getenv("RELCONT_PLAN_DIFF_CASES");
  if (env == nullptr || *env == '\0') return 200;
  int cases = std::atoi(env);
  return cases > 0 ? cases : 200;
}

std::optional<uint64_t> ReplaySeedFromEnv() {
  const char* env = std::getenv("RELCONT_PLAN_DIFF_SEED");
  if (env == nullptr || *env == '\0') return std::nullopt;
  return std::strtoull(env, nullptr, 10);
}

std::string ReplayHint(uint64_t seed) {
  return "replay: RELCONT_PLAN_DIFF_SEED=" + std::to_string(seed) +
         " ./build/tests/plan_differential_test";
}

void ForEachCase(const std::function<void(uint64_t)>& run) {
  if (std::optional<uint64_t> replay = ReplaySeedFromEnv()) {
    run(*replay);
    return;
  }
  int cases = CasesFromEnv();
  for (int i = 0; i < cases; ++i) run(static_cast<uint64_t>(i));
}

/// Fingerprint of rendered plan text, computed in a throwaway interner:
/// renaming- and rule-order-invariant, cross-interner comparable.
std::string PlanFingerprint(const std::string& plan_text, uint64_t seed) {
  Interner interner;
  Result<Program> parsed = ParseProgram(plan_text, &interner);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n"
                           << plan_text << "\n"
                           << ReplayHint(seed);
  if (!parsed.ok()) return "<unparseable>";
  return CanonicalProgramFingerprint(*parsed, interner.Intern("q"),
                                     interner);
}

PathViewOptions CaseOptions(uint64_t seed) {
  PathViewOptions options;
  options.num_views = 3 + static_cast<int>(seed % 6);
  options.num_relations = 3;
  options.min_length = 1;
  options.max_length = 3;
  options.query_length = 2;
  // Every third case is pattern-free so the sweep covers both plan
  // regimes: the recursive dom plan and the UCQ-over-sources plan.
  options.bound_probability = (seed % 3 == 0) ? 0.0 : 0.8;
  options.seed = seed * 2654435761ULL + 17;
  return options;
}

TEST(PlanDifferentialTest, ServedPlanMatchesLibraryPlan) {
  int recursive_cases = 0, ucq_cases = 0, skipped = 0;
  ForEachCase([&](uint64_t seed) {
    PathViewOptions options = CaseOptions(seed);
    PathViewWorkload workload = MakePathViewWorkload(options);

    // Library side: materialize the same catalog into a private interner
    // and build the plan by direct calls, mirroring planner.cc's dispatch.
    Interner lib;
    CatalogSpec spec;
    spec.name = "c";
    spec.version = 1;
    spec.views_text = workload.views_text;
    spec.patterns = workload.patterns;
    Result<MaterializedCatalog> catalog = MaterializeCatalog(spec, &lib);
    ASSERT_TRUE(catalog.ok()) << catalog.status().ToString() << "\n"
                              << ReplayHint(seed);
    Result<Program> query = ParseProgram(workload.query_text, &lib);
    ASSERT_TRUE(query.ok()) << ReplayHint(seed);
    SymbolId goal = query->rules[0].head.predicate;

    std::string library_plan;
    Status library_status = Status::OK();
    if (!catalog->patterns.empty()) {
      Result<ExecutablePlanResult> plan =
          ExecutablePlan(*query, catalog->views, catalog->patterns, &lib);
      if (plan.ok()) {
        library_plan = plan->program.ToString(lib);
      } else {
        library_status = plan.status();
      }
    } else {
      DecideOptions defaults;
      Result<Program> plan =
          MaximallyContainedPlan(*query, catalog->views, &lib);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString() << "\n"
                             << ReplayHint(seed);
      Result<UnionQuery> ucq = PlanToUnion(*plan, goal, catalog->views,
                                           &lib, defaults.unfold);
      if (ucq.ok()) {
        library_plan = ucq->ToString(lib);
      } else {
        library_status = ucq.status();
      }
    }

    // Served side: the same catalog registered by name, the same query
    // DEFINEd, and the plan requested through the protocol layer.
    ContainmentService service;
    Result<int64_t> version = service.catalogs().Register(
        "c", workload.views_text, workload.patterns);
    ASSERT_TRUE(version.ok()) << ReplayHint(seed);
    ServerSession session(&service);
    ASSERT_EQ(session.HandleLine("DEFINE q " + workload.query_text),
              "OK query q rules=1\n")
        << ReplayHint(seed);
    std::string served = session.HandleLine("PLAN? q @c");

    if (!library_status.ok()) {
      // Library-side bounds (e.g. max_disjuncts on a fan-out-heavy
      // catalog) must surface identically through the service.
      EXPECT_EQ(served.rfind("ERR [id=", 0), 0u)
          << served << "\n"
          << ReplayHint(seed);
      EXPECT_NE(served.find(library_status.ToString()), std::string::npos)
          << served << "\n"
          << ReplayHint(seed);
      ++skipped;
      return;
    }
    ASSERT_EQ(served.rfind("OK plan catalog=c v1 ", 0), 0u)
        << served << "\n"
        << ReplayHint(seed);
    std::string served_plan = served.substr(served.find('\n') + 1);
    EXPECT_EQ(PlanFingerprint(served_plan, seed),
              PlanFingerprint(library_plan, seed))
        << "served:\n"
        << served_plan << "library:\n"
        << library_plan << ReplayHint(seed);
    if (catalog->patterns.empty()) {
      ++ucq_cases;
    } else {
      ++recursive_cases;
    }
  });
  RecordProperty("recursive_cases", recursive_cases);
  RecordProperty("ucq_cases", ucq_cases);
  RecordProperty("skipped", skipped);
  // The sweep must exercise both plan regimes, not degenerate skips.
  if (ReplaySeedFromEnv() == std::nullopt) {
    EXPECT_GT(recursive_cases, 0);
    EXPECT_GT(ucq_cases, 0);
  }
}

}  // namespace
}  // namespace relcont
