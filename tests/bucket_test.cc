#include <gtest/gtest.h>

#include "containment/cq_containment.h"
#include "datalog/parser.h"
#include "relcont/workload.h"
#include "rewriting/bucket.h"
#include "rewriting/inverse_rules.h"

namespace relcont {
namespace {

class BucketTest : public ::testing::Test {
 protected:
  ViewSet V(const std::string& text) {
    Result<ViewSet> v = ParseViews(text, &interner_);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return *v;
  }
  Program P(const std::string& text) {
    Result<Program> p = ParseProgram(text, &interner_);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return *p;
  }
  SymbolId S(const char* name) { return interner_.Intern(name); }

  // Both pipelines on the same inputs.
  void ExpectAgreement(const Program& q, const char* goal,
                       const ViewSet& views) {
    Result<UnionQuery> bucket =
        BucketRewriting(q, S(goal), views, &interner_);
    ASSERT_TRUE(bucket.ok()) << bucket.status().ToString();
    Result<Program> plan = MaximallyContainedPlan(q, views, &interner_);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    Result<UnionQuery> inverse =
        PlanToUnion(*plan, S(goal), views, &interner_);
    ASSERT_TRUE(inverse.ok()) << inverse.status().ToString();
    Result<bool> eq = UnionEquivalent(*bucket, *inverse);
    ASSERT_TRUE(eq.ok()) << eq.status().ToString();
    EXPECT_TRUE(*eq) << "bucket:\n"
                     << bucket->ToString(interner_) << "inverse-rules:\n"
                     << inverse->ToString(interner_);
  }

  Interner interner_;
};

TEST_F(BucketTest, MatchesInverseRulesOnExample3) {
  ViewSet views = V(
      "redcars(C, M, Y) :- cardesc(C, M, red, Y).\n"
      "antiquecars(C, M, Y) :- cardesc(C, M, Col, Y).\n"
      "caranddriver(M, R) :- review(M, R, 10).\n");
  Program q = P(
      "q1(C, R) :- cardesc(C, M, Col, Y), review(M, R, Rat).");
  ExpectAgreement(q, "q1", views);
}

TEST_F(BucketTest, MatchesOnProjectionViews) {
  ViewSet views = V(
      "v1(X) :- p(X, Y).\n"
      "v2(Y) :- p(X, Y).\n"
      "v3(X, Y) :- p(X, Y), r(X, Y).\n");
  Program q = P("q(X, Y) :- p(X, Y).");
  ExpectAgreement(q, "q", views);
}

TEST_F(BucketTest, MatchesOnJoinThroughExistential) {
  ViewSet views = V("src(X, Y) :- p(X, Z), q(Z, Y).");
  Program query = P("qq(X, Y) :- p(X, Z), q(Z, Y).");
  ExpectAgreement(query, "qq", views);
}

TEST_F(BucketTest, MatchesWhenSubgoalUnanswerable) {
  ViewSet views = V("v(X) :- p(X).");
  Program q = P("q(X) :- p(X), s(X).");
  Result<UnionQuery> bucket = BucketRewriting(q, S("q"), views, &interner_);
  ASSERT_TRUE(bucket.ok());
  EXPECT_TRUE(bucket->disjuncts.empty());
}

TEST_F(BucketTest, MatchesOnConstantsInViews) {
  ViewSet views = V(
      "top(M, R) :- review(M, R, 10).\n"
      "any(M, R, S) :- review(M, R, S).\n");
  Program q = P("q(M, R) :- review(M, R, 10).");
  ExpectAgreement(q, "q", views);
}

TEST_F(BucketTest, MatchesOnUnionQueries) {
  ViewSet views = V(
      "v1(X) :- a(X).\n"
      "v2(X) :- b(X).\n");
  Program q = P(
      "q(X) :- a(X).\n"
      "q(X) :- b(X).\n");
  ExpectAgreement(q, "q", views);
}

TEST_F(BucketTest, StatsReportBucketsAndCandidates) {
  ViewSet views = V(
      "v1(X, Y) :- p(X, Y).\n"
      "v2(X, Y) :- p(X, Y).\n");
  Program q = P("q(X) :- p(X, Y), p(Y, X).");
  BucketStats stats;
  Result<UnionQuery> bucket =
      BucketRewriting(q, S("q"), views, &interner_, &stats);
  ASSERT_TRUE(bucket.ok());
  ASSERT_EQ(stats.bucket_sizes.size(), 2u);
  EXPECT_EQ(stats.bucket_sizes[0], 2);
  EXPECT_EQ(stats.bucket_sizes[1], 2);
  EXPECT_EQ(stats.candidates, 4);
  // Each candidate may keep several copy-sharing variants (MiniCon-style
  // coverage of two subgoals by one view copy).
  EXPECT_GE(stats.kept, 4);
}

TEST_F(BucketTest, RejectsComparisons) {
  ViewSet views = V("v(X) :- p(X).");
  Program q = P("q(X) :- p(X), X < 3.");
  EXPECT_EQ(BucketRewriting(q, S("q"), views, &interner_).status().code(),
            StatusCode::kUnsupported);
}

// Randomized cross-validation of the two independent pipelines.
class BucketAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(BucketAgreementTest, BucketEquivalentToInverseRules) {
  Interner interner;
  uint64_t seed = static_cast<uint64_t>(GetParam());
  RandomQueryOptions opts;
  opts.seed = seed;
  opts.num_atoms = 2;
  opts.num_variables = 3;
  opts.num_predicates = 2;
  opts.constant_probability = 0.1;
  opts.head_arity = 1;
  ViewSet views = RandomViews(opts, 3, &interner);
  if (views.empty()) return;
  Program q({RandomConjunctiveQuery(opts, "g", &interner)});
  if (!q.CheckSafe().ok()) return;
  SymbolId goal = q.rules[0].head.predicate;

  Result<UnionQuery> bucket = BucketRewriting(q, goal, views, &interner);
  ASSERT_TRUE(bucket.ok()) << bucket.status().ToString();
  Result<Program> plan = MaximallyContainedPlan(q, views, &interner);
  ASSERT_TRUE(plan.ok());
  Result<UnionQuery> inverse = PlanToUnion(*plan, goal, views, &interner);
  ASSERT_TRUE(inverse.ok());
  Result<bool> eq = UnionEquivalent(*bucket, *inverse);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq) << "seed " << seed << "\nbucket:\n"
                   << bucket->ToString(interner) << "inverse:\n"
                   << inverse->ToString(interner);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BucketAgreementTest, ::testing::Range(0, 80));

}  // namespace
}  // namespace relcont
