#include <gtest/gtest.h>

#include "binding/dom_containment.h"
#include "containment/canonical.h"
#include "containment/cq_containment.h"
#include "containment/expansion.h"
#include "datalog/parser.h"
#include "eval/evaluator.h"
#include "relcont/binding_containment.h"

namespace relcont {
namespace {

class DomContainmentTest : public ::testing::Test {
 protected:
  Program P(const std::string& text) {
    Result<Program> p = ParseProgram(text, &interner_);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return *p;
  }
  UnionQuery U(const std::vector<std::string>& texts) {
    UnionQuery u;
    for (const auto& t : texts) {
      Result<Rule> r = ParseRule(t, &interner_);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      u.disjuncts.push_back(*r);
    }
    return u;
  }
  SymbolId S(const char* name) { return interner_.Intern(name); }

  // Runs the exact decider and, when it reports non-containment,
  // validates the counterexample: it must be a genuine expansion (the
  // program derives its head on its frozen body) that the UCQ does not
  // contain.
  bool Decide(const Program& prog, const char* goal, const UnionQuery& q2) {
    Result<DomContainmentResult> r =
        DomPlanContainedInUcq(prog, S(goal), S("dom"), q2, &interner_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return false;
    if (!r->contained) {
      EXPECT_TRUE(r->counterexample.has_value());
      if (r->counterexample.has_value()) {
        ValidateCounterexample(prog, S(goal), q2, *r->counterexample);
      }
    }
    return r->contained;
  }

  void ValidateCounterexample(const Program& prog, SymbolId goal,
                              const UnionQuery& q2, const Rule& cx) {
    // Not contained in the UCQ.
    Result<bool> contained = CqContainedInUnion(cx, q2);
    ASSERT_TRUE(contained.ok()) << contained.status().ToString();
    EXPECT_FALSE(*contained) << "witness is contained: "
                             << cx.ToString(interner_);
    // A genuine expansion: the program derives the frozen head on the
    // frozen body.
    Result<FrozenQuery> frozen = FreezeRule(cx, &interner_);
    ASSERT_TRUE(frozen.ok());
    Result<EvalResult> eval = Evaluate(prog, frozen->database);
    ASSERT_TRUE(eval.ok()) << eval.status().ToString();
    EXPECT_TRUE(eval->database.Contains(goal, frozen->head_tuple))
        << "witness is not an expansion: " << cx.ToString(interner_);
  }

  // The bounded expansion-enumeration oracle (definite only when it finds
  // a counterexample or the enumeration completes).
  Result<bool> Bounded(const Program& prog, const char* goal,
                       const UnionQuery& q2, int depth) {
    ExpansionOptions opts;
    opts.max_rule_applications = depth;
    return DatalogContainedInUcqBounded(prog, S(goal), q2, &interner_, opts);
  }

  Interner interner_;
};

// The canonical chain program: values reachable from the constant c.
constexpr char kChain[] =
    "q(Y) :- e(X, Y), dom(X).\n"
    "dom(c).\n"
    "dom(Y) :- dom(X), e(X, Y).\n";

TEST_F(DomContainmentTest, ChainContainedInAnyEdge) {
  Program prog = P(kChain);
  EXPECT_TRUE(Decide(prog, "q", U({"p(Y) :- e(X, Y)."})));
}

TEST_F(DomContainmentTest, ChainNotContainedInEdgeFromC) {
  Program prog = P(kChain);
  // Chains of length >= 2 end at values not directly adjacent to c.
  EXPECT_FALSE(Decide(prog, "q", U({"p(Y) :- e(c, Y)."})));
}

TEST_F(DomContainmentTest, ChainContainedInEdgeFromCOrTwoStep) {
  Program prog = P(kChain);
  // Every chain is either a single step from c or ends with two steps.
  EXPECT_TRUE(Decide(prog, "q",
                     U({"p(Y) :- e(c, Y).",
                        "p(Y) :- e(X1, X2), e(X2, Y)."})));
}

TEST_F(DomContainmentTest, ChainNotContainedInTwoStepOnly) {
  Program prog = P(kChain);
  // The single step e(c, y) has no two-step suffix.
  EXPECT_FALSE(Decide(prog, "q", U({"p(Y) :- e(X1, X2), e(X2, Y)."})));
}

TEST_F(DomContainmentTest, ChainRequiresConstantAnchorIsDetected) {
  Program prog = P(kChain);
  // Every expansion starts at c, but q2 demanding the LAST step from c
  // only matches depth-1 expansions.
  EXPECT_TRUE(Decide(prog, "q",
                     U({"p(Y) :- e(c, X), e(X2, Y).",
                        "p(Y) :- e(c, Y)."})));
}

TEST_F(DomContainmentTest, BranchingGuardsAreTrees) {
  // A dom rule with two guards: pairs table reachable by two keys.
  Program prog = P(
      "q(Z) :- t(X, Y, Z), dom(X), dom(Y).\n"
      "dom(c).\n"
      "dom(Z) :- t(X, Y, Z), dom(X), dom(Y).\n");
  EXPECT_TRUE(Decide(prog, "q", U({"p(Z) :- t(X, Y, Z)."})));
  EXPECT_FALSE(Decide(prog, "q", U({"p(Z) :- t(c, c, Z)."})));
  EXPECT_TRUE(Decide(
      prog, "q",
      U({"p(Z) :- t(c, c, Z).", "p(Z) :- t(A, B, Z), t(X, Y, A).",
         "p(Z) :- t(A, B, Z), t(X, Y, B)."})));
}

TEST_F(DomContainmentTest, NonRecursiveProgramsAlsoHandled) {
  Program prog = P(
      "q(Y) :- e(c, Y), dom(c).\n"
      "dom(c).\n");
  EXPECT_TRUE(Decide(prog, "q", U({"p(Y) :- e(c, Y)."})));
  EXPECT_FALSE(Decide(prog, "q", U({"p(Y) :- e(Y, Y)."})));
}

TEST_F(DomContainmentTest, SkolemsInCoresAreOpaque) {
  // The core carries a Skolem value; q2 variables may land on it, but q2
  // constants may not.
  Program prog = P(
      "q(X) :- r(X, f(X)), dom(X).\n"
      "dom(c).\n");
  EXPECT_TRUE(Decide(prog, "q", U({"p(X) :- r(X, W)."})));
  EXPECT_FALSE(Decide(prog, "q", U({"p(X) :- r(X, c)."})));
}

TEST_F(DomContainmentTest, ConstantsInsideTreeBodiesMatchUcqConstants) {
  // The dom rule's body carries a constant; a UCQ disjunct demanding that
  // constant can map into tree atoms.
  Program prog = P(
      "q(Y) :- e(X, Y, K), dom(X).\n"
      "dom(c).\n"
      "dom(Y) :- dom(X), e(X, Y, special).\n");
  // Every expansion's TREE atoms have 'special' in the third column, but
  // the CORE atom's third column is free — so demanding it everywhere
  // fails...
  EXPECT_FALSE(Decide(prog, "q", U({"p(Y) :- e(X, Y, special)."})));
  // ...while a union covering both the seeded core and the special-marked
  // suffix succeeds.
  EXPECT_TRUE(Decide(
      prog, "q",
      U({"p(Y) :- e(c, Y, K).",
         "p(Y) :- e(A, B, special), e(B, Y, K)."})));
}

TEST_F(DomContainmentTest, ThreeGuardTreesSaturate) {
  Program prog = P(
      "q(W) :- t(X, Y, Z, W), dom(X), dom(Y), dom(Z).\n"
      "dom(c).\n"
      "dom(W) :- t(X, Y, Z, W), dom(X), dom(Y), dom(Z).\n");
  EXPECT_TRUE(Decide(prog, "q", U({"p(W) :- t(X, Y, Z, W)."})));
  EXPECT_FALSE(Decide(prog, "q", U({"p(W) :- t(c, c, c, W)."})));
}

TEST_F(DomContainmentTest, RejectsNonDomRecursion) {
  Program prog = P(
      "q(Y) :- t(X, Y).\n"
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y).\n");
  Result<DomContainmentResult> r = DomPlanContainedInUcq(
      prog, S("q"), S("dom"), U({"p(Y) :- e(X, Y)."}), &interner_);
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST_F(DomContainmentTest, RejectsNonUnaryDom) {
  Program prog = P(
      "q(Y) :- e(X, Y), dom(X, X).\n"
      "dom(c, c).\n");
  Result<DomContainmentResult> r = DomPlanContainedInUcq(
      prog, S("q"), S("dom"), U({"p(Y) :- e(X, Y)."}), &interner_);
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

// Agreement with the bounded expansion-enumeration oracle on every case it
// can decide.
TEST_F(DomContainmentTest, AgreesWithBoundedOracle) {
  struct Case {
    std::string program;
    std::vector<std::string> ucq;
  };
  const std::vector<Case> cases = {
      {kChain, {"p(Y) :- e(X, Y)."}},
      {kChain, {"p(Y) :- e(c, Y)."}},
      {kChain, {"p(Y) :- e(c, Y).", "p(Y) :- e(X1, X2), e(X2, Y)."}},
      {kChain, {"p(Y) :- e(X1, X2), e(X2, Y)."}},
      {kChain, {"p(Y) :- e(Y, Y)."}},
      {"q(Y) :- e(X, Y), dom(X).\ndom(c).\ndom(d).\n"
       "dom(Y) :- dom(X), e(X, Y).\n",
       {"p(Y) :- e(X, Y)."}},
      {"q(Y) :- e(X, Y), dom(X).\ndom(c).\ndom(d).\n"
       "dom(Y) :- dom(X), e(X, Y).\n",
       {"p(Y) :- e(c, Y).", "p(Y) :- e(X1, X2), e(X2, Y)."}},
  };
  for (const Case& c : cases) {
    Program prog = P(c.program);
    UnionQuery ucq = U(c.ucq);
    Result<DomContainmentResult> exact =
        DomPlanContainedInUcq(prog, S("q"), S("dom"), ucq, &interner_);
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
    Result<bool> oracle = Bounded(prog, "q", ucq, 7);
    if (oracle.ok()) {
      EXPECT_EQ(exact->contained, *oracle) << c.program;
    } else {
      // Oracle inconclusive (recursion ran past the bound without finding
      // a counterexample): the exact decider must say contained.
      EXPECT_EQ(oracle.status().code(), StatusCode::kBoundReached);
      EXPECT_TRUE(exact->contained) << c.program;
    }
  }
}

// ---------------------------------------------------------------------------
// Theorem 4.1 / 4.2 end to end.
// ---------------------------------------------------------------------------

class BindingRelativeTest : public DomContainmentTest {
 protected:
  GoalQuery GQ(const std::string& text, const char* goal) {
    return GoalQuery{P(text), S(goal)};
  }
  bool RelContained(const GoalQuery& a, const GoalQuery& b,
                    const ViewSet& views, const BindingPatterns& patterns) {
    Result<BindingRelativeResult> r = RelativelyContainedWithBindingPatterns(
        a, b, views, patterns, &interner_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() && r->contained;
  }
  ViewSet V(const std::string& text) {
    Result<ViewSet> v = ParseViews(text, &interner_);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return *v;
  }
  Adornment A(const char* text) { return *Adornment::Parse(text); }
};

TEST_F(BindingRelativeTest, AccessPatternsCreateRelativeContainment) {
  // Prices are only retrievable by probing with a known value. Probe
  // values are catalogued ISBNs — or outputs of earlier price lookups,
  // since the untyped dom accumulator admits price VALUES as keys too.
  ViewSet views = V(
      "isbns(I) :- book(I, T).\n"
      "pricelookup(I, P) :- price(I, P).\n");
  BindingPatterns patterns;
  patterns.Set(S("pricelookup"), A("bf"));
  GoalQuery q_price = GQ("qa(P) :- price(I, P).", "qa");
  GoalQuery q_book_price = GQ("qb(P) :- book(I, T), price(I, P).", "qb");
  // Classically not contained:
  Result<bool> classical = CqContained(q_price.program.rules[0],
                                       q_book_price.program.rules[0]);
  ASSERT_TRUE(classical.ok());
  EXPECT_FALSE(*classical);
  // Not contained relative to the patterns either: a reachable price may
  // have been probed with a PRICE value (price(p1, p2) chains), and such
  // a probe key need not be a catalogued ISBN. The decider discovers this
  // subtlety of the untyped dom accumulator by itself.
  EXPECT_FALSE(RelContained(q_price, q_book_price, views, patterns));
  // Adding the price-chain disjunct covers every reachable probe, and the
  // containment appears — this genuinely needs the recursive plan
  // analysis of Theorem 4.2:
  GoalQuery q_cover = GQ(
      "qc(P) :- book(I, T), price(I, P).\n"
      "qc(P) :- price(X, Y), price(Y, P).\n",
      "qc");
  EXPECT_TRUE(RelContained(q_price, q_cover, views, patterns));
  // And trivially in the other direction (classical containment).
  EXPECT_TRUE(RelContained(q_book_price, q_price, views, patterns));
}

TEST_F(BindingRelativeTest, WithoutPatternsTheContainmentDisappears) {
  ViewSet views = V(
      "isbns(I) :- book(I, T).\n"
      "pricelookup(I, P) :- price(I, P).\n");
  BindingPatterns none;
  GoalQuery q_price = GQ("qa(P) :- price(I, P).", "qa");
  GoalQuery q_book_price = GQ("qb(P) :- book(I, T), price(I, P).", "qb");
  EXPECT_FALSE(RelContained(q_price, q_book_price, views, none));
}

TEST_F(BindingRelativeTest, RecursivePlansStillDecidable) {
  // The [DGL] chain: answering q1 requires a recursive plan, yet relative
  // containment is decidable (Theorem 4.2).
  ViewSet views = V(
      "seed(X) :- link(a, X).\n"
      "next(X, Y) :- link(X, Y).\n");
  BindingPatterns patterns;
  patterns.Set(S("next"), A("bf"));
  GoalQuery q_any = GQ("q1(Y) :- link(X, Y).", "q1");
  GoalQuery q_same = GQ("q2(Y) :- link(X, Y).", "q2");
  EXPECT_TRUE(RelContained(q_any, q_same, views, patterns));
  // Everything reachable is a link out of a or a link out of a link
  // target:
  GoalQuery q_cover = GQ(
      "q3(Y) :- link(a, Y).\n"
      "q3(Y) :- link(X1, X2), link(X2, Y).\n",
      "q3");
  EXPECT_TRUE(RelContained(q_any, q_cover, views, patterns));
  // But not every reachable link starts at a:
  GoalQuery q_from_a = GQ("q4(Y) :- link(a, Y).", "q4");
  EXPECT_FALSE(RelContained(q_any, q_from_a, views, patterns));
}

TEST_F(BindingRelativeTest, ConstantDisciplineEnforced) {
  ViewSet views = V("v(X) :- p(X).");
  BindingPatterns none;
  GoalQuery q1 = GQ("q1() :- p(zebra).", "q1");
  GoalQuery q2 = GQ("q2() :- p(X).", "q2");
  Result<BindingRelativeResult> r = RelativelyContainedWithBindingPatterns(
      q1, q2, views, none, &interner_);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BindingRelativeTest, NoPatternsMatchesSection3Semantics) {
  // With all-free sources the binding-pattern machinery must agree with
  // the plain Section 3 decision.
  ViewSet views = V(
      "v1(X, Y) :- p(X, Y).\n"
      "v2(X) :- p(X, X).\n");
  BindingPatterns none;
  struct Pair {
    const char* a;
    const char* ga;
    const char* b;
    const char* gb;
  };
  const std::vector<Pair> pairs = {
      {"g1(X) :- p(X, X).", "g1", "g2(X) :- p(X, Y).", "g2"},
      {"g3(X) :- p(X, Y).", "g3", "g4(X) :- p(X, X).", "g4"},
      {"g5(X) :- p(X, Y), p(Y, X).", "g5", "g6(X) :- p(X, Y).", "g6"},
  };
  for (const Pair& pr : pairs) {
    GoalQuery a = GQ(pr.a, pr.ga);
    GoalQuery b = GQ(pr.b, pr.gb);
    Result<RelativeContainmentResult> plain =
        RelativelyContained(a, b, views, &interner_);
    ASSERT_TRUE(plain.ok());
    Result<BindingRelativeResult> with = RelativelyContainedWithBindingPatterns(
        a, b, views, none, &interner_);
    ASSERT_TRUE(with.ok()) << with.status().ToString();
    EXPECT_EQ(plain->contained, with->contained) << pr.a << " vs " << pr.b;
  }
}

}  // namespace
}  // namespace relcont
