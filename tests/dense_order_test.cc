// Unit tests for the bitset dense-order engine (constraints/dense_order.h):
// the compile-time Invert/Compose tables (exhaustive over all 8 relation
// sets), path-consistency closure on the pair matrix, refutation-based
// entailment, and the OrderConstraints streaming DFS against brute-force
// linearization semantics on small point sets.

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "constraints/dense_order.h"
#include "constraints/order_constraints.h"
#include "datalog/parser.h"

namespace relcont {
namespace constraints {
namespace {

// ---------------------------------------------------------------------------
// Table tests. The 3-bit encoding makes every property exhaustively
// checkable; the algebraic identities are pinned at compile time.

static_assert(kRelLe == (kRelLt | kRelEq), "LE is {<,=}");
static_assert(kRelNe == (kRelLt | kRelGt), "NE is {<,>}");
static_assert(kRelAny == 7 && kRelNone == 0, "3-bit encoding");

// Invert swaps the strict bits and fixes EQ.
static_assert(Invert(kRelLt) == kRelGt, "converse of <");
static_assert(Invert(kRelGt) == kRelLt, "converse of >");
static_assert(Invert(kRelEq) == kRelEq, "= is its own converse");
static_assert(Invert(kRelLe) == kRelGe, "converse of <=");
static_assert(Invert(kRelNe) == kRelNe, "!= is its own converse");
static_assert(Invert(kRelAny) == kRelAny && Invert(kRelNone) == kRelNone,
              "top and bottom are fixed points");

// Primitive composition: EQ is the identity, strict relations chain, and
// opposed strict relations say nothing over a dense unbounded order.
static_assert(Compose(kRelLt, kRelLt) == kRelLt, "< chains");
static_assert(Compose(kRelGt, kRelGt) == kRelGt, "> chains");
static_assert(Compose(kRelLt, kRelGt) == kRelAny, "x<y>z is unconstrained");
static_assert(Compose(kRelGt, kRelLt) == kRelAny, "x>y<z is unconstrained");
static_assert(Compose(kRelEq, kRelLt) == kRelLt, "= is a left identity");
static_assert(Compose(kRelGe, kRelEq) == kRelGe, "= is a right identity");

// Set-level spot checks: LE∘LE = LE (only <∘<, <∘=, =∘<, =∘= fire), and a
// disequality chained with anything strict-free degenerates to Any.
static_assert(Compose(kRelLe, kRelLe) == kRelLe, "<= chains");
static_assert(Compose(kRelGe, kRelGe) == kRelGe, ">= chains");
static_assert(Compose(kRelLe, kRelLt) == kRelLt, "<= then < is <");
static_assert(Compose(kRelNe, kRelNe) == kRelAny, "!= does not chain");
static_assert(Compose(kRelNone, kRelAny) == kRelNone, "bottom annihilates");
static_assert(Compose(kRelAny, kRelNone) == kRelNone, "bottom annihilates");

TEST(DenseOrderTableTest, InvertIsAnInvolutionAndPreservesUnions) {
  for (int r = 0; r < 8; ++r) {
    RelSet s = static_cast<RelSet>(r);
    EXPECT_EQ(Invert(Invert(s)), s) << "relset " << r;
    // Invert distributes over the bit union by construction; verify
    // against the per-primitive definition.
    RelSet expect = kRelNone;
    if (s & kRelLt) expect |= kRelGt;
    if (s & kRelEq) expect |= kRelEq;
    if (s & kRelGt) expect |= kRelLt;
    EXPECT_EQ(Invert(s), expect) << "relset " << r;
  }
}

TEST(DenseOrderTableTest, ComposeTableMatchesUnionOfPrimitives) {
  // The baked table must equal the union-of-primitive-compositions
  // definition, recomputed here independently at runtime.
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      RelSet expect = kRelNone;
      for (RelSet pa : {kRelLt, kRelEq, kRelGt}) {
        for (RelSet pb : {kRelLt, kRelEq, kRelGt}) {
          if ((a & pa) && (b & pb)) {
            expect |= ComposePrimitive(pa, pb);
          }
        }
      }
      EXPECT_EQ(Compose(static_cast<RelSet>(a), static_cast<RelSet>(b)),
                expect)
          << "Compose(" << a << ", " << b << ")";
    }
  }
}

TEST(DenseOrderTableTest, ComposeIsAssociativeAndMonotone) {
  // Associativity: (a∘b)∘c == a∘(b∘c) for all 512 triples — the point
  // algebra is a relation algebra, so the set-level table must inherit it.
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      for (int c = 0; c < 8; ++c) {
        RelSet sa = static_cast<RelSet>(a);
        RelSet sb = static_cast<RelSet>(b);
        RelSet sc = static_cast<RelSet>(c);
        EXPECT_EQ(Compose(Compose(sa, sb), sc), Compose(sa, Compose(sb, sc)))
            << a << " " << b << " " << c;
      }
    }
  }
  // Monotonicity: shrinking an argument can only shrink the composition.
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      for (int sub = 0; sub < 8; ++sub) {
        if ((sub & a) != sub) continue;  // sub ⊆ a only
        RelSet narrowed = Compose(static_cast<RelSet>(sub),
                                  static_cast<RelSet>(b));
        RelSet full = Compose(static_cast<RelSet>(a), static_cast<RelSet>(b));
        EXPECT_EQ(narrowed & full, narrowed)
            << "Compose not monotone at " << a << "/" << sub << ", " << b;
      }
    }
  }
}

TEST(DenseOrderTableTest, ConverseOfCompositionIsReversedComposition) {
  // Invert(a∘b) == Invert(b)∘Invert(a) — the law the mirror invariant of
  // the matrix leans on.
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      RelSet sa = static_cast<RelSet>(a);
      RelSet sb = static_cast<RelSet>(b);
      EXPECT_EQ(Invert(Compose(sa, sb)), Compose(Invert(sb), Invert(sa)))
          << a << " " << b;
    }
  }
}

// ---------------------------------------------------------------------------
// Matrix tests.

TEST(DenseOrderMatrixTest, FreshMatrixIsUnconstrained) {
  DenseOrderMatrix m(3);
  EXPECT_TRUE(m.Close());
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(m.rel(i, j), i == j ? kRelEq : kRelAny);
    }
  }
}

TEST(DenseOrderMatrixTest, ClosurePropagatesChainsAndKeepsMirror) {
  DenseOrderMatrix m(4);
  ASSERT_TRUE(m.Restrict(0, 1, kRelLt));
  ASSERT_TRUE(m.Restrict(1, 2, kRelLt));
  ASSERT_TRUE(m.Restrict(2, 3, kRelLe));
  ASSERT_TRUE(m.Close());
  EXPECT_EQ(m.rel(0, 2), kRelLt);
  EXPECT_EQ(m.rel(0, 3), kRelLt);
  EXPECT_EQ(m.rel(1, 3), kRelLt);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(m.rel(j, i), Invert(m.rel(i, j))) << i << " " << j;
    }
  }
}

TEST(DenseOrderMatrixTest, ClosureIsIdempotent) {
  DenseOrderMatrix m(5);
  ASSERT_TRUE(m.Restrict(0, 1, kRelLe));
  ASSERT_TRUE(m.Restrict(1, 2, kRelNe));
  ASSERT_TRUE(m.Restrict(2, 3, kRelLt));
  ASSERT_TRUE(m.Restrict(3, 4, kRelGe));
  ASSERT_TRUE(m.Close());
  std::vector<RelSet> before;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) before.push_back(m.rel(i, j));
  }
  uint64_t props = m.propagations();
  ASSERT_TRUE(m.Close());  // a second Close must be a no-op
  EXPECT_EQ(m.propagations(), props);
  std::vector<RelSet> after;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) after.push_back(m.rel(i, j));
  }
  EXPECT_EQ(before, after);
}

TEST(DenseOrderMatrixTest, StrictCycleClosesToInconsistent) {
  DenseOrderMatrix m(3);
  ASSERT_TRUE(m.Restrict(0, 1, kRelLt));
  ASSERT_TRUE(m.Restrict(1, 2, kRelLt));
  ASSERT_TRUE(m.Restrict(2, 0, kRelLe));
  EXPECT_FALSE(m.Close());
  EXPECT_FALSE(m.consistent());
}

TEST(DenseOrderMatrixTest, RestrictToEmptyFailsFast) {
  DenseOrderMatrix m(2);
  ASSERT_TRUE(m.Restrict(0, 1, kRelLt));
  EXPECT_FALSE(m.Restrict(0, 1, kRelGe));  // {<} ∩ {>,=} = ∅
  EXPECT_FALSE(m.consistent());
}

TEST(DenseOrderMatrixTest, EntailsDerivesWhatClosureLeavesImplicit) {
  // The sandwich network {w<=x, w<=y, x<=z, y<=z, x!=y}: path consistency
  // leaves rel(w,z) at {<,=} but every solution has w<z, because x and y
  // cannot both coincide with w and z at once. Refutation must find it.
  DenseOrderMatrix m(4);  // 0=w, 1=x, 2=y, 3=z
  ASSERT_TRUE(m.Restrict(0, 1, kRelLe));
  ASSERT_TRUE(m.Restrict(0, 2, kRelLe));
  ASSERT_TRUE(m.Restrict(1, 3, kRelLe));
  ASSERT_TRUE(m.Restrict(2, 3, kRelLe));
  ASSERT_TRUE(m.Restrict(1, 2, kRelNe));
  ASSERT_TRUE(m.Close());
  // Documents the non-minimality: the closed cell still allows equality...
  EXPECT_EQ(m.rel(0, 3), kRelLe);
  // ...yet the strict relation is entailed, and equality is refutable.
  EXPECT_TRUE(m.Entails(0, 3, kRelLt));
  EXPECT_FALSE(m.Entails(0, 3, kRelEq));
  // Entails must not mutate the matrix it refutes on.
  EXPECT_EQ(m.rel(0, 3), kRelLe);
  EXPECT_TRUE(m.consistent());
}

TEST(DenseOrderMatrixTest, EntailsAgainstBruteForceOnAllSmallNetworks) {
  // For every assignment of a base constraint to the three pairs of a
  // 3-point network, check Entails against brute-force semantics: a
  // primitive p is possible for (i,j) iff some rank assignment
  // (ranks in {0,1,2}, i.e. a weak order) satisfies the base constraints
  // and relates i,j by p. Entails(i,j,claim) iff possible ⊆ claim.
  const RelSet bases[] = {kRelLt, kRelLe, kRelEq, kRelNe, kRelGe, kRelAny};
  for (RelSet c01 : bases) {
    for (RelSet c02 : bases) {
      for (RelSet c12 : bases) {
        DenseOrderMatrix m(3);
        m.Restrict(0, 1, c01);
        m.Restrict(0, 2, c02);
        m.Restrict(1, 2, c12);
        bool consistent = m.Close();
        // Brute force over all 27 rank assignments.
        auto prim = [](int a, int b) {
          return a < b ? kRelLt : a == b ? kRelEq : kRelGt;
        };
        RelSet possible[3][3] = {};
        bool sat = false;
        for (int r0 = 0; r0 < 3; ++r0) {
          for (int r1 = 0; r1 < 3; ++r1) {
            for (int r2 = 0; r2 < 3; ++r2) {
              int rank[3] = {r0, r1, r2};
              if (!(prim(r0, r1) & c01) || !(prim(r0, r2) & c02) ||
                  !(prim(r1, r2) & c12)) {
                continue;
              }
              sat = true;
              for (int i = 0; i < 3; ++i) {
                for (int j = 0; j < 3; ++j) {
                  possible[i][j] |= prim(rank[i], rank[j]);
                }
              }
            }
          }
        }
        ASSERT_EQ(consistent, sat)
            << "network " << int{c01} << "/" << int{c02} << "/" << int{c12};
        if (!consistent) continue;
        for (int i = 0; i < 3; ++i) {
          for (int j = 0; j < 3; ++j) {
            for (int claim = 0; claim < 8; ++claim) {
              bool expect = (possible[i][j] & ~claim & kRelAny) == 0;
              EXPECT_EQ(m.Entails(i, j, static_cast<RelSet>(claim)), expect)
                  << "network " << int{c01} << "/" << int{c02} << "/"
                  << int{c12} << " pair (" << i << "," << j << ") claim "
                  << claim;
            }
          }
        }
      }
    }
  }
}

TEST(DenseOrderStatsTest, ClosureFeedsGlobalPropagationCounter) {
  uint64_t before =
      GlobalDenseOrderStats().propagations.load(std::memory_order_relaxed);
  DenseOrderMatrix m(6);
  for (int i = 0; i + 1 < 6; ++i) ASSERT_TRUE(m.Restrict(i, i + 1, kRelLt));
  ASSERT_TRUE(m.Close());
  EXPECT_GT(m.propagations(), 0u);
  uint64_t after =
      GlobalDenseOrderStats().propagations.load(std::memory_order_relaxed);
  EXPECT_GE(after, before + m.propagations());
}

}  // namespace
}  // namespace constraints

// ---------------------------------------------------------------------------
// OrderConstraints-level tests: the streaming DFS against brute-force
// linearization semantics on <= 5 points.

namespace {

class DenseOrderEngineTest : public ::testing::Test {
 protected:
  std::vector<Comparison> Cmp(const std::string& comparisons) {
    Result<Rule> r =
        ParseRule("q() :- p(A, B, C, D, E), " + comparisons + ".", &interner_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->comparisons;
  }
  Comparison One(const std::string& c) { return Cmp(c)[0]; }
  Term Var(const char* name) { return Term::Var(interner_.Intern(name)); }

  // Collects the streamed linearizations, asserting a complete stream.
  std::vector<Linearization> Streamed(const OrderConstraints& c) {
    std::vector<Linearization> out;
    Status s = c.ForEachLinearization([&](const Linearization& lin) {
      out.push_back(lin);
      return true;
    });
    EXPECT_TRUE(s.ok()) << s.ToString();
    return out;
  }

  Interner interner_;
};

TEST_F(DenseOrderEngineTest, StreamMatchesOracleOnConstrainedSets) {
  const char* cases[] = {
      "A <= B, B <= C",
      "A < B, C < B",
      "A != B, B != C, A != C",
      "A <= B, B <= A, C < A",
      "A < B, B < C, C < D",
      "A <= B, C <= D, A != D",
  };
  for (const char* text : cases) {
    OrderConstraints c;
    ASSERT_TRUE(c.AddAll(Cmp(text)).ok()) << text;
    Result<std::vector<Linearization>> oracle = c.EnumerateLinearizations();
    ASSERT_TRUE(oracle.ok()) << text;
    std::vector<Linearization> streamed = Streamed(c);
    std::vector<Linearization> expect = *oracle;
    std::sort(expect.begin(), expect.end());
    std::sort(streamed.begin(), streamed.end());
    EXPECT_EQ(streamed, expect) << text;
  }
}

TEST_F(DenseOrderEngineTest, StreamStopsWhenVisitorDeclines) {
  OrderConstraints c;
  ASSERT_TRUE(c.AddAll(Cmp("A != B")).ok());
  int seen = 0;
  Status s = c.ForEachLinearization([&](const Linearization&) {
    ++seen;
    return false;  // first linearization is enough
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(seen, 1);
}

TEST_F(DenseOrderEngineTest, UnsatisfiableSetStreamsNothing) {
  OrderConstraints c;
  ASSERT_TRUE(c.AddAll(Cmp("A < B, B < A")).ok());
  EXPECT_TRUE(Streamed(c).empty());
  Result<std::vector<Linearization>> oracle = c.EnumerateLinearizations();
  ASSERT_TRUE(oracle.ok());
  EXPECT_TRUE(oracle->empty());
}

TEST_F(DenseOrderEngineTest, EntailmentMatchesLinearizationSemanticsOn5Points) {
  // On every case: Entails(c) must equal "every streamed linearization's
  // realization satisfies c" — the definition of entailment over a finite
  // point set (dense-order solutions beyond the registered points cannot
  // refute claims about registered points).
  const char* cases[] = {
      "A <= B, B <= C, C <= A",
      "A < B, C <= D, D <= E",
      "A != B, B <= C, C <= D, D <= B",
      "A <= C, B <= C, C <= D, A != B, D <= E",
  };
  const char* claims[] = {"A < C",  "A <= C", "A = C", "A != C",
                          "B <= D", "B = C",  "A < E", "E >= A"};
  for (const char* text : cases) {
    OrderConstraints c;
    ASSERT_TRUE(c.AddAll(Cmp(text)).ok()) << text;
    for (const char* claim_text : claims) {
      Comparison claim = One(claim_text);
      // Entails treats unregistered terms as unconstrained; the brute
      // force below can only evaluate registered points.
      if (c.PointIndex(claim.lhs) < 0 || c.PointIndex(claim.rhs) < 0) {
        continue;
      }
      bool expect = true;
      Status s = c.ForEachLinearization([&](const Linearization& lin) {
        std::map<Term, Rational> sigma = c.Realize(lin);
        auto value = [&](const Term& t) { return sigma.at(t); };
        Rational a = value(claim.lhs);
        Rational b = value(claim.rhs);
        bool holds = false;
        switch (claim.op) {
          case ComparisonOp::kLt: holds = a < b; break;
          case ComparisonOp::kLe: holds = a <= b; break;
          case ComparisonOp::kGt: holds = a > b; break;
          case ComparisonOp::kGe: holds = a >= b; break;
          case ComparisonOp::kEq: holds = a == b; break;
          case ComparisonOp::kNe: holds = a != b; break;
        }
        if (!holds) {
          expect = false;
          return false;
        }
        return true;
      });
      ASSERT_TRUE(s.ok()) << text;
      EXPECT_EQ(c.Entails(claim), expect)
          << "constraints {" << text << "} claim " << claim_text;
    }
  }
}

}  // namespace
}  // namespace relcont
