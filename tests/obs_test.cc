// Tests for the observability layer that do not need a live TCP server:
// the JSON escaper/parser, hostile-name escaping in the trace exporters,
// the shared MetricsSnapshot renderers, the access-log event format and
// file behavior (sampling, rotation), histogram bucket edges, and
// slow-log tie-breaking. The networked half lives in obs_server_test.cc.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "gtest/gtest.h"
#include "obs/access_log.h"
#include "obs/exposition.h"
#include "obs/http.h"
#include "service/metrics.h"
#include "service/service.h"
#include "trace/trace.h"

namespace relcont {
namespace {

// ---------------------------------------------------------------------------
// JSON: escaping and parsing round-trips.

TEST(JsonTest, EscapesControlAndQuoteCharacters) {
  std::string out;
  json::AppendEscaped("a\"b\\c\nd\te\r\x01", &out);
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\\r\\u0001\"");
}

TEST(JsonTest, ParseRoundTripsEscapedStrings) {
  const std::string hostile =
      "quote:\" backslash:\\ newline:\n tab:\t bell:\x07 high:\xc3\xa9";
  std::string doc = "{\"key\":";
  json::AppendEscaped(hostile, &doc);
  doc += "}";
  Result<json::Value> parsed = json::Parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* value = parsed->Find("key");
  ASSERT_NE(value, nullptr);
  ASSERT_TRUE(value->is_string());
  EXPECT_EQ(value->string_value, hostile);
}

TEST(JsonTest, ParsesNestedStructures) {
  Result<json::Value> parsed = json::Parse(
      "{\"a\": [1, 2.5, -3e2], \"b\": {\"c\": true, \"d\": null}, "
      "\"e\": \"\\u0041\\u00e9\"}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* a = parsed->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[0].number_value, 1.0);
  EXPECT_DOUBLE_EQ(a->array[2].number_value, -300.0);
  const json::Value* b = parsed->Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->Find("c")->bool_value);
  EXPECT_TRUE(b->Find("d")->is_null());
  EXPECT_EQ(parsed->Find("e")->string_value, "A\xc3\xa9");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(json::Parse("{").ok());
  EXPECT_FALSE(json::Parse("{} trailing").ok());
  EXPECT_FALSE(json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(json::Parse("\"unterminated").ok());
  EXPECT_FALSE(json::Parse("").ok());
}

// ---------------------------------------------------------------------------
// Trace exporters with hostile span names: both JSON exports must stay
// parseable whatever the instrumentation sites call their spans.

TEST(TraceJsonTest, ChromeJsonSurvivesHostileSpanNames) {
  trace::TraceContext ctx;
  int root = ctx.OpenSpan("root \"quoted\\path\"\nnewline");
  int child = ctx.OpenSpan("child\ttab");
  ctx.AddCount(trace::Counter::kHomBacktracks, 3);
  ctx.CloseSpan(child);
  ctx.CloseSpan(root);

  std::string chrome = ctx.ToChromeJson();
  Result<json::Value> parsed = json::Parse(chrome);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);
  EXPECT_EQ(events->array[0].Find("name")->string_value,
            "root \"quoted\\path\"\nnewline");
}

// ---------------------------------------------------------------------------
// The shared snapshot renderers: METRICS text and Prometheus exposition
// must agree because they render the same MetricsSnapshot.

obs::MetricsSnapshot FixtureSnapshot() {
  obs::MetricsSnapshot s;
  s.version = "1.2.3";
  s.trace_compiled_in = true;
  s.start_time_unix_seconds = 1700000000;
  s.uptime_seconds = 12.5;
  s.requests = 42;
  s.errors = 2;
  s.request_cache_hits = 7;
  s.decisions_by_regime.push_back({"section3", 40});
  s.decisions_by_regime.push_back({"theorem5.1", 2});
  s.cache.hits = 7;
  s.cache.misses = 35;
  s.cache.evictions = 1;
  s.cache.entries = 34;
  s.dense_order_propagations = 901;
  s.dense_order_pruned_branches = 77;
  s.dense_order_bound_hits = 3;
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    obs::HistogramBucket bucket;
    bucket.unbounded = i == LatencyHistogram::kBuckets - 1;
    bucket.le = bucket.unbounded ? 0 : (uint64_t{1} << i) - 1;
    bucket.cumulative_count = 42;
    s.latency_buckets.push_back(bucket);
  }
  s.latency_sum_micros = 1234;
  s.latency_count = 42;
  s.phases.push_back({"decide \"hostile\"\\phase", 5000, 3});
  return s;
}

TEST(ExpositionTest, TextAndPrometheusRenderTheSameCounters) {
  obs::MetricsSnapshot s = FixtureSnapshot();
  std::string text = obs::RenderMetricsText(s);
  std::string prom = obs::RenderPrometheusText(s);

  EXPECT_NE(text.find("requests_total 42\n"), std::string::npos);
  EXPECT_NE(prom.find("relcont_requests_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("errors_total 2\n"), std::string::npos);
  EXPECT_NE(prom.find("relcont_errors_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("decisions_by_regime{section3} 40"),
            std::string::npos);
  EXPECT_NE(prom.find("relcont_decisions_total{regime=\"section3\"} 40"),
            std::string::npos);
  EXPECT_NE(text.find("cache_misses 35"), std::string::npos);
  EXPECT_NE(prom.find("relcont_cache_misses_total 35"), std::string::npos);
  // The dense-order engine counters render in lockstep, distinct values
  // each so a transposed field cannot slip through.
  EXPECT_NE(text.find("dense_order_propagations_total 901"),
            std::string::npos);
  EXPECT_NE(prom.find("relcont_dense_order_propagations_total 901"),
            std::string::npos);
  EXPECT_NE(text.find("dense_order_pruned_branches_total 77"),
            std::string::npos);
  EXPECT_NE(prom.find("relcont_dense_order_pruned_branches_total 77"),
            std::string::npos);
  EXPECT_NE(text.find("dense_order_bound_hits_total 3"), std::string::npos);
  EXPECT_NE(prom.find("relcont_dense_order_bound_hits_total 3"),
            std::string::npos);
  EXPECT_NE(text.find("latency_us_count 42"), std::string::npos);
  EXPECT_NE(prom.find("relcont_request_latency_microseconds_count 42"),
            std::string::npos);
  // Both expose the +Inf bucket in their own convention.
  EXPECT_NE(text.find("latency_us_bucket{le=\"+Inf\"} 42"),
            std::string::npos);
  EXPECT_NE(prom.find(
                "relcont_request_latency_microseconds_bucket{le=\"+Inf\"} "
                "42"),
            std::string::npos);
  // Prometheus label values escape backslashes and quotes.
  EXPECT_NE(prom.find("phase=\"decide \\\"hostile\\\"\\\\phase\""),
            std::string::npos);
  // Identity lines come from the snapshot, not from global state.
  EXPECT_NE(text.find("library_version 1.2.3"), std::string::npos);
  EXPECT_NE(prom.find("version=\"1.2.3\""), std::string::npos);
  EXPECT_NE(text.find("start_time_unix_seconds 1700000000"),
            std::string::npos);
}

TEST(ExpositionTest, DumpEqualsRenderedSnapshot) {
  ServiceMetrics metrics;
  metrics.RecordRequest(Regime::kSection3, 100, false, false);
  metrics.RecordRequest(Regime::kSection3, 3, false, true);
  CacheStats cache;
  cache.hits = 1;
  cache.misses = 1;
  // Dump is the text rendering of the snapshot; uptime is the only field
  // that moves between the two calls, so compare around it.
  std::string dump = metrics.Dump(cache);
  std::string rendered = obs::RenderMetricsText(metrics.Snapshot(cache));
  auto strip_uptime = [](const std::string& text) {
    std::string out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("uptime_seconds ", 0) == 0) continue;
      out += line;
      out += '\n';
    }
    return out;
  };
  EXPECT_EQ(strip_uptime(dump), strip_uptime(rendered));
}

// ---------------------------------------------------------------------------
// Latency histogram bucket edges.

TEST(LatencyHistogramTest, BucketBoundsEdges) {
  // Bucket 0 is [0, 1) µs.
  EXPECT_EQ(LatencyHistogram::BucketBounds(0),
            (std::pair<uint64_t, uint64_t>{0, 1}));
  // Interior buckets are [2^(i-1), 2^i).
  EXPECT_EQ(LatencyHistogram::BucketBounds(1),
            (std::pair<uint64_t, uint64_t>{1, 2}));
  EXPECT_EQ(LatencyHistogram::BucketBounds(10),
            (std::pair<uint64_t, uint64_t>{512, 1024}));
  // The last bucket is unbounded: upper == 0 by convention.
  auto last = LatencyHistogram::BucketBounds(LatencyHistogram::kBuckets - 1);
  EXPECT_EQ(last.first, uint64_t{1} << (LatencyHistogram::kBuckets - 2));
  EXPECT_EQ(last.second, 0u);
}

TEST(LatencyHistogramTest, RecordsIntoEdgeBuckets) {
  LatencyHistogram hist;
  hist.Record(0);                 // bucket 0
  hist.Record(uint64_t{1} << 40); // far beyond the last bounded bucket
  EXPECT_EQ(hist.BucketCount(0), 1u);
  EXPECT_EQ(hist.BucketCount(LatencyHistogram::kBuckets - 1), 1u);
  EXPECT_EQ(hist.TotalCount(), 2u);
}

// ---------------------------------------------------------------------------
// Slow-log tie-breaking: equal latencies keep arrival order, and an
// arrival that merely equals the current minimum does not displace it.

void RecordSlow(ServiceMetrics* metrics, uint64_t latency,
                const std::string& description) {
  trace::TraceContext ctx;
  int span = ctx.OpenSpan("decide");
  ctx.CloseSpan(span);
  metrics->RecordTrace(Regime::kSection3, latency, ctx, description);
}

TEST(SlowLogTest, EqualLatenciesKeepArrivalOrder) {
  ServiceMetrics metrics;
  metrics.set_slow_log_capacity(2);
  RecordSlow(&metrics, 500, "A");
  RecordSlow(&metrics, 500, "B");
  std::vector<SlowRequest> log = metrics.SlowLog();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].description, "A");
  EXPECT_EQ(log[1].description, "B");
}

TEST(SlowLogTest, TieWithMinimumDoesNotDisplaceWhenFull) {
  ServiceMetrics metrics;
  metrics.set_slow_log_capacity(2);
  RecordSlow(&metrics, 500, "A");
  RecordSlow(&metrics, 500, "B");
  RecordSlow(&metrics, 500, "C");  // equal to the min of a full log
  std::vector<SlowRequest> log = metrics.SlowLog();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].description, "A");
  EXPECT_EQ(log[1].description, "B");
}

TEST(SlowLogTest, StrictlyWorseDisplacesTheMinimum) {
  ServiceMetrics metrics;
  metrics.set_slow_log_capacity(2);
  RecordSlow(&metrics, 100, "A");
  RecordSlow(&metrics, 500, "B");
  RecordSlow(&metrics, 500, "C");  // beats A (100), ties with B
  std::vector<SlowRequest> log = metrics.SlowLog();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].description, "B");
  EXPECT_EQ(log[1].description, "C");
}

// ---------------------------------------------------------------------------
// Access log: event shape, hostile-content escaping, sampling, rotation.

TEST(AccessLogTest, RenderEventIsValidJsonWithHostileContent) {
  DecisionRequest request;
  request.q1_text = "q1(X) :- r(X, \"weird\\name\").";
  request.q2_text = "q2(X) :- r(X, Y).";
  request.catalog = "cat\"alog\n";
  DecisionResponse response;
  response.status = Status::InvalidArgument("parse error: got \"}\"\\");
  response.regime = Regime::kSection3;
  response.contained = true;
  response.cache_hit = true;
  response.latency_micros = 77;
  response.catalog_version = 3;

  std::string line = obs::AccessLog::RenderEvent(9, 1700000000000000,
                                                 request, response);
  Result<json::Value> parsed = json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << line;
  EXPECT_DOUBLE_EQ(parsed->Find("id")->number_value, 9);
  EXPECT_EQ(parsed->Find("catalog")->string_value, "cat\"alog\n");
  EXPECT_DOUBLE_EQ(parsed->Find("catalog_version")->number_value, 3);
  EXPECT_EQ(parsed->Find("q1")->string_value, request.q1_text);
  EXPECT_EQ(parsed->Find("regime")->string_value, "section3");
  EXPECT_TRUE(parsed->Find("contained")->bool_value);
  EXPECT_TRUE(parsed->Find("cache_hit")->bool_value);
  EXPECT_DOUBLE_EQ(parsed->Find("latency_us")->number_value, 77);
  EXPECT_NE(parsed->Find("error")->string_value.find("parse error"),
            std::string::npos);
  // No trace on the response — no phases array.
  EXPECT_EQ(parsed->Find("phases"), nullptr);
}

TEST(AccessLogTest, RenderEventIncludesTopLevelPhases) {
  DecisionRequest request;
  DecisionResponse response;
  auto ctx = std::make_shared<trace::TraceContext>();
  int root = ctx->OpenSpan("decide");
  int child = ctx->OpenSpan("parse");
  int grandchild = ctx->OpenSpan("intern");  // depth 2: excluded
  ctx->CloseSpan(grandchild);
  ctx->CloseSpan(child);
  int child2 = ctx->OpenSpan("containment");
  ctx->CloseSpan(child2);
  ctx->CloseSpan(root);
  response.trace = ctx;

  std::string line =
      obs::AccessLog::RenderEvent(1, 1700000000000000, request, response);
  Result<json::Value> parsed = json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << line;
  const json::Value* phases = parsed->Find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_TRUE(phases->is_array());
  std::vector<std::string> names;
  for (const json::Value& phase : phases->array) {
    names.push_back(phase.Find("phase")->string_value);
  }
  EXPECT_EQ(names,
            (std::vector<std::string>{"decide", "parse", "containment"}));
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(AccessLogTest, SamplingKeepsEveryNthRequest) {
  std::string path = TempPath("access_sample.jsonl");
  std::remove(path.c_str());
  obs::AccessLogOptions options;
  options.path = path;
  options.sample = 3;
  auto log = obs::AccessLog::Open(options);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  DecisionRequest request;
  DecisionResponse response;
  for (int i = 0; i < 9; ++i) (*log)->Record(request, response);
  EXPECT_EQ((*log)->requests_seen(), 9u);
  log->reset();  // flush + close

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 3u);  // ids 1, 4, 7
  std::vector<double> ids;
  for (const std::string& line : lines) {
    Result<json::Value> parsed = json::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    ids.push_back(parsed->Find("id")->number_value);
  }
  EXPECT_EQ(ids, (std::vector<double>{1, 4, 7}));
}

TEST(AccessLogTest, RotatesAtSizeLimit) {
  std::string path = TempPath("access_rotate.jsonl");
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  obs::AccessLogOptions options;
  options.path = path;
  options.max_bytes = 512;
  auto log = obs::AccessLog::Open(options);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  DecisionRequest request;
  request.q1_text = std::string(100, 'x');  // make events chunky
  DecisionResponse response;
  for (int i = 0; i < 20; ++i) (*log)->Record(request, response);
  log->reset();

  std::vector<std::string> active = ReadLines(path);
  std::vector<std::string> rotated = ReadLines(path + ".1");
  // One rotated generation is kept; older ones age out by design.
  ASSERT_FALSE(rotated.empty());
  ASSERT_FALSE(active.empty());
  EXPECT_LE(active.size() + rotated.size(), 20u);
  // Rotation never truncates mid-line: every surviving line parses, and
  // the newest event is in the active file.
  for (const std::string& line : active) {
    EXPECT_TRUE(json::Parse(line).ok()) << line;
  }
  for (const std::string& line : rotated) {
    EXPECT_TRUE(json::Parse(line).ok()) << line;
  }
  Result<json::Value> newest = json::Parse(active.back());
  ASSERT_TRUE(newest.ok());
  EXPECT_DOUBLE_EQ(newest->Find("id")->number_value, 20);
}

// ---------------------------------------------------------------------------
// HTTP parsing.

TEST(HttpTest, SniffsRequestLines) {
  EXPECT_TRUE(obs::LooksLikeHttp("GET /metrics HTTP/1.1"));
  EXPECT_TRUE(obs::LooksLikeHttp("HEAD / HTTP/1.0"));
  EXPECT_FALSE(obs::LooksLikeHttp("CONTAINED? q1 q2 @cars"));
  EXPECT_FALSE(obs::LooksLikeHttp("METRICS"));
  EXPECT_FALSE(obs::LooksLikeHttp("GET lost"));
}

TEST(HttpTest, ParsesRequestHeadWithHeaders) {
  Result<obs::HttpRequest> parsed = obs::ParseHttpRequest(
      "GET /metrics?window=60 HTTP/1.1\r\nHost: localhost:8080\r\n"
      "User-Agent: curl/8.0\r\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->method, "GET");
  EXPECT_EQ(parsed->target, "/metrics?window=60");
  EXPECT_EQ(parsed->path(), "/metrics");
  EXPECT_EQ(parsed->version, "HTTP/1.1");
  const std::string* host = parsed->FindHeader("host");
  ASSERT_NE(host, nullptr);
  EXPECT_EQ(*host, "localhost:8080");
  EXPECT_EQ(parsed->FindHeader("absent"), nullptr);
}

TEST(HttpTest, RejectsMalformedRequestLines) {
  EXPECT_FALSE(obs::ParseHttpRequest("GET\r\n").ok());
  EXPECT_FALSE(obs::ParseHttpRequest("GET /x\r\n").ok());
  EXPECT_FALSE(obs::ParseHttpRequest("GET metrics HTTP/1.1\r\n").ok());
  EXPECT_FALSE(obs::ParseHttpRequest("GET / FTP/1.1\r\n").ok());
  EXPECT_FALSE(
      obs::ParseHttpRequest("GET / HTTP/1.1\r\nbad header\r\n").ok());
}

TEST(HttpTest, RendersResponsesWithContentLength) {
  std::string response =
      obs::RenderHttpResponse(200, "text/plain", "hello\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 6\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(response.substr(response.size() - 6), "hello\n");

  std::string head =
      obs::RenderHttpResponse(200, "text/plain", "hello\n", true);
  EXPECT_NE(head.find("Content-Length: 6\r\n"), std::string::npos);
  EXPECT_EQ(head.substr(head.size() - 4), "\r\n\r\n");
}

}  // namespace
}  // namespace relcont
