// Randomized differential testing of the dense-order engine.
//
// Three fragments, each >= RELCONT_DIFF_CASES seeded random cases
// (default 500; the nightly CI job raises it 10x):
//
//   * Streaming vs oracle: on random comparison networks over <= 6 points,
//     ForEachLinearization (pruned matrix DFS) must yield exactly the
//     linearization set of EnumerateLinearizations (the retained original
//     unpruned subset enumerator), and IsSatisfiable must agree with
//     "the oracle produced at least one linearization".
//   * Entailment vs linearization semantics: Entails(c) must equal "c
//     holds in the realization of every linearization" — the brute-force
//     definition, computed with the oracle enumerator.
//   * Section 5 containment: the streaming CqContainedInUnionComplete
//     verdict must equal a reference verdict computed in-test by the
//     legacy materialize-then-check loop (normalize, fast path, enumerate
//     all linearizations, per-linearization disjunct coverage).
//
// Every failure message carries the seed; replay one case with
//   RELCONT_DIFF_SEED=<seed> ./build/tests/dense_order_differential_test
// and scale the sweep with RELCONT_DIFF_CASES=<n>.

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "constraints/order_constraints.h"
#include "containment/comparison_containment.h"
#include "containment/homomorphism.h"
#include "datalog/substitution.h"
#include "relcont/workload.h"

namespace relcont {
namespace {

int CasesFromEnv() {
  const char* env = std::getenv("RELCONT_DIFF_CASES");
  if (env == nullptr || *env == '\0') return 500;
  int cases = std::atoi(env);
  return cases > 0 ? cases : 500;
}

std::optional<uint64_t> ReplaySeedFromEnv() {
  const char* env = std::getenv("RELCONT_DIFF_SEED");
  if (env == nullptr || *env == '\0') return std::nullopt;
  return std::strtoull(env, nullptr, 10);
}

std::string ReplayHint(uint64_t seed) {
  return "replay: RELCONT_DIFF_SEED=" + std::to_string(seed) +
         " ./build/tests/dense_order_differential_test";
}

/// Runs `run(seed)` for every seed of the fragment's sweep, or for the one
/// replay seed when RELCONT_DIFF_SEED is set. Bases 4M/4.5M/5M keep these
/// sweeps disjoint from each other and from tests/differential_test.cc
/// (1M/2M/3M), so a replay seed is unambiguous.
void ForEachCase(uint64_t fragment_base,
                 const std::function<void(uint64_t)>& run) {
  if (std::optional<uint64_t> replay = ReplaySeedFromEnv()) {
    run(*replay);
    return;
  }
  int cases = CasesFromEnv();
  for (int i = 0; i < cases; ++i) run(fragment_base + static_cast<uint64_t>(i));
}

/// Deterministic splitmix64 stream; the seed alone regenerates the case.
struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed) {}
  uint64_t Next() {
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  int Below(int n) { return static_cast<int>(Next() % n); }
};

const ComparisonOp kOps[] = {ComparisonOp::kLt, ComparisonOp::kLe,
                             ComparisonOp::kEq, ComparisonOp::kNe,
                             ComparisonOp::kGt, ComparisonOp::kGe};

/// A random comparison network over up to `num_vars` variables and up to
/// two small numeric constants. Points stay <= 6 so the materializing
/// oracle is always available as the reference.
struct RandomNetwork {
  OrderConstraints constraints;
  std::vector<Comparison> comparisons;
  std::vector<Term> points;
};

RandomNetwork MakeNetwork(uint64_t seed, Interner* interner) {
  Rng rng(seed);
  RandomNetwork out;
  int num_vars = 2 + rng.Below(3);  // 2..4 variables
  for (int v = 0; v < num_vars; ++v) {
    std::string name = "V" + std::to_string(v);
    out.points.push_back(Term::Var(interner->Intern(name)));
  }
  int num_consts = rng.Below(3);  // 0..2 numeric constants
  for (int k = 0; k < num_consts; ++k) {
    out.points.push_back(Term::Number(Rational(1 + k)));
  }
  for (const Term& t : out.points) {
    Status s = out.constraints.AddPoint(t);
    EXPECT_TRUE(s.ok()) << ReplayHint(seed);
  }
  int num_comparisons = rng.Below(6);  // 0..5 comparisons
  for (int k = 0; k < num_comparisons; ++k) {
    const Term& lhs = out.points[rng.Below(static_cast<int>(out.points.size()))];
    const Term& rhs = out.points[rng.Below(static_cast<int>(out.points.size()))];
    Comparison c(lhs, kOps[rng.Below(6)], rhs);
    out.comparisons.push_back(c);
    Status s = out.constraints.Add(c);
    EXPECT_TRUE(s.ok()) << ReplayHint(seed);
  }
  return out;
}

TEST(DenseOrderDifferentialTest, StreamingMatchesMaterializingOracle) {
  int decided = 0;
  ForEachCase(4'000'000, [&](uint64_t seed) {
    Interner interner;
    RandomNetwork net = MakeNetwork(seed, &interner);

    Result<std::vector<Linearization>> oracle =
        net.constraints.EnumerateLinearizations();
    ASSERT_TRUE(oracle.ok()) << ReplayHint(seed);

    std::vector<Linearization> streamed;
    Status s = net.constraints.ForEachLinearization(
        [&](const Linearization& lin) {
          streamed.push_back(lin);
          return true;
        });
    ASSERT_TRUE(s.ok()) << ReplayHint(seed);

    std::vector<Linearization> expect = *oracle;
    std::sort(expect.begin(), expect.end());
    std::sort(streamed.begin(), streamed.end());
    ASSERT_EQ(streamed, expect) << ReplayHint(seed);
    // No duplicates from either side.
    ASSERT_EQ(std::unique(streamed.begin(), streamed.end()), streamed.end())
        << ReplayHint(seed);
    ASSERT_EQ(net.constraints.IsSatisfiable(), !expect.empty())
        << ReplayHint(seed);
    ++decided;
  });
  RecordProperty("decided", decided);
  EXPECT_GT(decided, 0);
}

TEST(DenseOrderDifferentialTest, EntailmentMatchesLinearizationSemantics) {
  int decided = 0;
  ForEachCase(4'500'000, [&](uint64_t seed) {
    Interner interner;
    RandomNetwork net = MakeNetwork(seed, &interner);
    Rng rng(seed ^ 0xabcdef12345ULL);

    Result<std::vector<Linearization>> oracle =
        net.constraints.EnumerateLinearizations();
    ASSERT_TRUE(oracle.ok()) << ReplayHint(seed);

    // A handful of random claims over the registered points.
    for (int k = 0; k < 8; ++k) {
      const Term& lhs =
          net.points[rng.Below(static_cast<int>(net.points.size()))];
      const Term& rhs =
          net.points[rng.Below(static_cast<int>(net.points.size()))];
      Comparison claim(lhs, kOps[rng.Below(6)], rhs);
      // Same-term claims take Entails' trivial syntactic path (which
      // deliberately ignores ex falso); covered by the unit tests.
      if (claim.lhs == claim.rhs) continue;

      // Brute force: the claim is entailed iff it holds in the
      // realization of every linearization (vacuously for unsat).
      bool expect = true;
      for (const Linearization& lin : *oracle) {
        std::map<Term, Rational> sigma = net.constraints.Realize(lin);
        Rational a = sigma.at(claim.lhs);
        Rational b = sigma.at(claim.rhs);
        bool holds = false;
        switch (claim.op) {
          case ComparisonOp::kLt: holds = a < b; break;
          case ComparisonOp::kLe: holds = a <= b; break;
          case ComparisonOp::kGt: holds = a > b; break;
          case ComparisonOp::kGe: holds = a >= b; break;
          case ComparisonOp::kEq: holds = a == b; break;
          case ComparisonOp::kNe: holds = a != b; break;
        }
        if (!holds) {
          expect = false;
          break;
        }
      }
      ASSERT_EQ(net.constraints.Entails(claim), expect)
          << claim.ToString(interner) << "  " << ReplayHint(seed);
      ++decided;
    }
  });
  RecordProperty("decided", decided);
  EXPECT_GT(decided, 0);
}

// ---------------------------------------------------------------------------
// Section 5 containment: streaming pipeline vs the legacy
// materialize-then-check loop, reimplemented here as the reference.

bool IsNumericTerm(const Term& t) {
  return t.is_constant() && t.value().is_number();
}

// Evaluates a ground-under-sigma comparison (mirror of the production
// helper, kept independent on purpose).
bool HoldsUnder(const Comparison& c, const std::map<Term, Rational>& sigma) {
  auto lookup = [&](const Term& t, Rational* out) {
    if (IsNumericTerm(t)) {
      *out = t.value().number();
      return true;
    }
    auto it = sigma.find(t);
    if (it == sigma.end()) return false;
    *out = it->second;
    return true;
  };
  Rational a, b;
  if (!lookup(c.lhs, &a) || !lookup(c.rhs, &b)) return false;
  switch (c.op) {
    case ComparisonOp::kEq: return a == b;
    case ComparisonOp::kNe: return a != b;
    case ComparisonOp::kLt: return a < b;
    case ComparisonOp::kLe: return a <= b;
    case ComparisonOp::kGt: return a > b;
    case ComparisonOp::kGe: return a >= b;
  }
  return false;
}

// The legacy decision pipeline: normalize both sides, try the sound
// entailment fast path, then MATERIALIZE all linearizations of q1's points
// with the oracle enumerator and check disjunct coverage per linearization.
Result<bool> ReferenceContainedInUnion(const Rule& q1_in,
                                       const UnionQuery& u) {
  RELCONT_ASSIGN_OR_RETURN(std::optional<Rule> q1n,
                           NormalizeComparisons(q1_in));
  if (!q1n.has_value()) return true;
  std::vector<Rule> q2;
  for (const Rule& d : u.disjuncts) {
    RELCONT_ASSIGN_OR_RETURN(std::optional<Rule> dn, NormalizeComparisons(d));
    if (dn.has_value()) q2.push_back(std::move(*dn));
  }
  if (q2.empty()) return false;
  for (const Rule& d : q2) {
    RELCONT_ASSIGN_OR_RETURN(bool fast, CqContainedViaEntailment(*q1n, d));
    if (fast) return true;
  }
  const Rule& q1 = *q1n;
  OrderConstraints c1;
  for (SymbolId v : q1.Variables()) {
    RELCONT_RETURN_NOT_OK(c1.AddPoint(Term::Var(v)));
  }
  auto add_consts = [&](const Rule& r) -> Status {
    for (const Value& v : r.Constants()) {
      if (v.is_number()) {
        RELCONT_RETURN_NOT_OK(c1.AddPoint(Term::Constant(v)));
      }
    }
    return Status::OK();
  };
  RELCONT_RETURN_NOT_OK(add_consts(q1));
  for (const Rule& d : q2) RELCONT_RETURN_NOT_OK(add_consts(d));
  RELCONT_RETURN_NOT_OK(c1.AddAll(q1.comparisons));
  if (!c1.IsSatisfiable()) return true;

  RELCONT_ASSIGN_OR_RETURN(std::vector<Linearization> lins,
                           c1.EnumerateLinearizations());
  for (const Linearization& lin : lins) {
    std::map<Term, Rational> sigma = c1.Realize(lin);
    Substitution rho;
    for (const std::vector<int>& cls : lin) {
      Term rep = c1.points()[cls[0]];
      for (int p : cls) {
        if (IsNumericTerm(c1.points()[p])) rep = c1.points()[p];
      }
      for (int p : cls) {
        const Term& t = c1.points()[p];
        if (t.is_variable() && !(t == rep)) rho.Bind(t.symbol(), rep);
      }
    }
    Rule q1_collapsed = rho.Apply(q1);
    bool covered = false;
    for (const Rule& d : q2) {
      if (d.head.arity() != q1.head.arity()) continue;
      bool found = ForEachContainmentMapping(
          d, q1_collapsed, [&](const Substitution& h) {
            for (const Comparison& c : d.comparisons) {
              if (!HoldsUnder(h.ApplyOnce(c), sigma)) return false;
            }
            return true;
          });
      if (found) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

RandomQueryOptions CaseOptions(uint64_t seed) {
  RandomQueryOptions options;
  options.num_atoms = 2 + static_cast<int>(seed % 2);
  options.num_variables = 3;
  options.num_predicates = 2;
  options.arity = 2;
  options.constant_probability = 0.15;
  options.head_arity = 1;
  options.seed = seed;
  return options;
}

// Attaches 0..3 random comparisons over the rule's body variables and
// small numeric constants, keeping the point count tiny.
void AttachComparisons(Rule* q, Rng* rng) {
  std::vector<SymbolId> vars = q->Variables();
  if (vars.empty()) return;
  std::vector<Term> pool;
  for (SymbolId v : vars) pool.push_back(Term::Var(v));
  pool.push_back(Term::Number(Rational(1)));
  pool.push_back(Term::Number(Rational(2)));
  int n = rng->Below(4);
  for (int k = 0; k < n; ++k) {
    const Term& lhs = pool[rng->Below(static_cast<int>(pool.size()))];
    const Term& rhs = pool[rng->Below(static_cast<int>(pool.size()))];
    if (lhs.is_constant() && rhs.is_constant()) continue;
    q->comparisons.push_back(Comparison(lhs, kOps[rng->Below(6)], rhs));
  }
}

TEST(DenseOrderDifferentialTest, ContainmentMatchesLegacyPipeline) {
  int decided = 0;
  int skipped = 0;
  ForEachCase(5'000'000, [&](uint64_t seed) {
    Interner interner;
    Rng rng(seed ^ 0x5eed5eedULL);
    Rule q1 = RandomConjunctiveQuery(CaseOptions(seed), "q", &interner);
    AttachComparisons(&q1, &rng);

    UnionQuery u;
    int disjuncts = 1 + rng.Below(2);
    for (int d = 0; d < disjuncts; ++d) {
      Rule q2 = RandomConjunctiveQuery(CaseOptions(seed * 2 + 1 + d), "q",
                                       &interner);
      AttachComparisons(&q2, &rng);
      u.disjuncts.push_back(std::move(q2));
    }

    Result<bool> streamed = CqContainedInUnionComplete(q1, u);
    Result<bool> reference = ReferenceContainedInUnion(q1, u);
    if (!streamed.ok() || !reference.ok()) {
      // Both pipelines must refuse (e.g. kUnsupported) in lockstep.
      ASSERT_EQ(streamed.ok(), reference.ok())
          << streamed.status().ToString() << " vs "
          << reference.status().ToString() << "  " << ReplayHint(seed);
      ASSERT_EQ(streamed.status().code(), reference.status().code())
          << ReplayHint(seed);
      ++skipped;
      return;
    }
    ASSERT_EQ(*streamed, *reference) << ReplayHint(seed);
    ++decided;
  });
  RecordProperty("decided", decided);
  RecordProperty("skipped", skipped);
  EXPECT_GT(decided, skipped);
}

}  // namespace
}  // namespace relcont
