#include <gtest/gtest.h>

#include "constraints/order_constraints.h"
#include "containment/canonical.h"
#include "containment/comparison_containment.h"
#include "containment/cq_containment.h"
#include "datalog/parser.h"
#include "eval/evaluator.h"

namespace relcont {
namespace {

class ContainmentTest : public ::testing::Test {
 protected:
  Rule R(const std::string& text) {
    Result<Rule> r = ParseRule(text, &interner_);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << text;
    return *r;
  }
  UnionQuery U(const std::vector<std::string>& texts) {
    UnionQuery u;
    for (const auto& t : texts) u.disjuncts.push_back(R(t));
    return u;
  }
  bool Contained(const std::string& q1, const std::string& q2) {
    Result<bool> r = CqContained(R(q1), R(q2));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }
  bool ContainedCmp(const std::string& q1, const std::string& q2) {
    Result<bool> r = CqContainedComplete(R(q1), R(q2));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  Interner interner_;
};

TEST_F(ContainmentTest, IdenticalQueriesContained) {
  EXPECT_TRUE(Contained("q(X) :- p(X, Y).", "q(X) :- p(X, Y)."));
}

TEST_F(ContainmentTest, MoreRestrictiveContainedInLess) {
  // Chain of length 2 is contained in "has an outgoing edge".
  EXPECT_TRUE(Contained("q(X) :- e(X, Y), e(Y, Z).", "q(X) :- e(X, W)."));
  EXPECT_FALSE(Contained("q(X) :- e(X, W).", "q(X) :- e(X, Y), e(Y, Z)."));
}

TEST_F(ContainmentTest, ConstantsMustMatch) {
  EXPECT_TRUE(Contained("q(X) :- p(X, 1).", "q(X) :- p(X, Y)."));
  EXPECT_FALSE(Contained("q(X) :- p(X, Y).", "q(X) :- p(X, 1)."));
  EXPECT_FALSE(Contained("q(X) :- p(X, 2).", "q(X) :- p(X, 1)."));
}

TEST_F(ContainmentTest, HeadVariablesMustCorrespond) {
  EXPECT_FALSE(Contained("q(X, Y) :- p(X, Y).", "q(X, Y) :- p(Y, X)."));
  EXPECT_TRUE(Contained("q(X, X) :- p(X, X).", "q(A, B) :- p(A, B)."));
  EXPECT_FALSE(Contained("q(A, B) :- p(A, B).", "q(X, X) :- p(X, X)."));
}

TEST_F(ContainmentTest, SelfJoinFolding) {
  // Example-1-style: the cycle query maps onto the self-loop.
  EXPECT_TRUE(Contained("q() :- e(X, X).", "q() :- e(A, B), e(B, A)."));
  EXPECT_FALSE(Contained("q() :- e(A, B), e(B, A).", "q() :- e(X, X)."));
}

TEST_F(ContainmentTest, ArityMismatchIsError) {
  EXPECT_FALSE(CqContained(R("q(X) :- p(X)."), R("q(X, Y) :- p(X), p(Y).")).ok());
}

TEST_F(ContainmentTest, ComparisonInputRejectedByClassicalTest) {
  EXPECT_FALSE(
      CqContained(R("q(X) :- p(X), X < 3."), R("q(X) :- p(X).")).ok());
}

TEST_F(ContainmentTest, UnionContainment) {
  UnionQuery u = U({"q(X) :- a(X).", "q(X) :- b(X)."});
  Result<bool> r1 = CqContainedInUnion(R("q(X) :- a(X), c(X)."), u);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(*r1);
  Result<bool> r2 = CqContainedInUnion(R("q(X) :- c(X)."), u);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(*r2);
}

TEST_F(ContainmentTest, UnionInUnionAndEquivalence) {
  UnionQuery u1 = U({"q(X) :- a(X), b(X).", "q(X) :- b(X), c(X)."});
  UnionQuery u2 = U({"q(X) :- b(X)."});
  Result<bool> r = UnionContainedInUnion(u1, u2);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  Result<bool> back = UnionContainedInUnion(u2, u1);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(*back);
  Result<bool> eq = UnionEquivalent(u1, u1);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST_F(ContainmentTest, MinimizeUnionDropsRedundantDisjuncts) {
  UnionQuery u = U({"q(X) :- a(X).", "q(X) :- a(X), b(X).",
                    "q(X) :- c(X)."});
  Result<UnionQuery> m = MinimizeUnion(u);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->disjuncts.size(), 2u);  // a(X),b(X) disjunct is redundant
}

TEST_F(ContainmentTest, MinimizeUnionKeepsOneOfEquivalentPair) {
  UnionQuery u = U({"q(X) :- a(X, Y).", "q(X) :- a(X, Z)."});
  Result<UnionQuery> m = MinimizeUnion(u);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->disjuncts.size(), 1u);
}

TEST_F(ContainmentTest, FreezeProducesCanonicalDatabase) {
  Rule q = R("q(X) :- e(X, Y), e(Y, X).");
  Result<FrozenQuery> f = FreezeRule(q, &interner_);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->database.TotalFacts(), 2);
  EXPECT_EQ(f->head_tuple.size(), 1u);
  EXPECT_TRUE(f->head_tuple[0].is_constant());
}

TEST_F(ContainmentTest, UnionContainedInDatalogRecursive) {
  // Paths of length 1 and 3 are contained in transitive closure; an
  // arbitrary edge pair is not.
  Program tc = *ParseProgram(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n",
      &interner_);
  SymbolId goal = interner_.Lookup("tc");
  UnionQuery contained = U({"q(X, Y) :- e(X, Y).",
                            "q(X, W) :- e(X, Y), e(Y, Z), e(Z, W)."});
  Result<bool> r1 = UnionContainedInDatalog(contained, tc, goal, &interner_);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(*r1);
  UnionQuery not_contained = U({"q(X, W) :- e(X, Y), e(Z, W)."});
  Result<bool> r2 =
      UnionContainedInDatalog(not_contained, tc, goal, &interner_);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(*r2);
}

// ---------------------------------------------------------------------------
// Comparison predicates (Section 5 machinery).
// ---------------------------------------------------------------------------

TEST_F(ContainmentTest, StrongerConditionContained) {
  // Paper Example 1 intuition: Rating=10 is stronger than free Rating.
  EXPECT_TRUE(ContainedCmp(
      "q2(C, R) :- cardesc(C, M, Col, Y), review(M, R, 10).",
      "q1(C, R) :- cardesc(C, M, Col, Y), review(M, R, Rat)."));
  EXPECT_FALSE(ContainedCmp(
      "q1(C, R) :- cardesc(C, M, Col, Y), review(M, R, Rat).",
      "q2(C, R) :- cardesc(C, M, Col, Y), review(M, R, 10)."));
}

TEST_F(ContainmentTest, SemiIntervalContainment) {
  EXPECT_TRUE(ContainedCmp("q(X) :- p(X, Y), Y < 5.",
                           "q(X) :- p(X, Y), Y < 10."));
  EXPECT_FALSE(ContainedCmp("q(X) :- p(X, Y), Y < 10.",
                            "q(X) :- p(X, Y), Y < 5."));
  EXPECT_TRUE(ContainedCmp("q(X) :- p(X, Y), Y <= 5.",
                           "q(X) :- p(X, Y), Y < 6."));
  // Dense domain: Y < 6 admits 5.5, so NOT contained in Y <= 5.
  EXPECT_FALSE(ContainedCmp("q(X) :- p(X, Y), Y < 6.",
                            "q(X) :- p(X, Y), Y <= 5."));
}

TEST_F(ContainmentTest, ComparisonFreeSidesAgreeWithClassicalTest) {
  EXPECT_TRUE(ContainedCmp("q(X) :- e(X, Y), e(Y, Z).", "q(X) :- e(X, W)."));
  EXPECT_FALSE(ContainedCmp("q(X) :- e(X, W).", "q(X) :- e(X, Y), e(Y, Z)."));
}

TEST_F(ContainmentTest, UnsatisfiableLeftSideContainedInAnything) {
  EXPECT_TRUE(ContainedCmp("q(X) :- p(X, Y), Y < 3, Y > 5.",
                           "q(X) :- r(X)."));
}

TEST_F(ContainmentTest, EqualityComparisonNormalization) {
  EXPECT_TRUE(ContainedCmp("q(X) :- p(X, Y), Y = 10.",
                           "q(X) :- p(X, 10)."));
  EXPECT_TRUE(ContainedCmp("q(X) :- p(X, 10).",
                           "q(X) :- p(X, Y), Y = 10."));
}

TEST_F(ContainmentTest, ContainmentNeedsUnionWithComparisons) {
  // q(X) :- p(X,Y) is contained in (Y<5) ∪ (Y>=5) but in neither disjunct.
  UnionQuery split = U({"q(X) :- p(X, Y), Y < 5.",
                        "q(X) :- p(X, Y), Y >= 5."});
  Rule plain = R("q(X) :- p(X, Y).");
  Result<bool> whole = CqContainedInUnionComplete(plain, split);
  ASSERT_TRUE(whole.ok());
  EXPECT_TRUE(*whole);
  Result<bool> first = CqContainedComplete(plain, split.disjuncts[0]);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(*first);
  Result<bool> second = CqContainedComplete(plain, split.disjuncts[1]);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(*second);
}

TEST_F(ContainmentTest, CaseSplitOnVariableOrder) {
  // q(X,Y) :- p(X), p(Y) is contained in (X<=Y branch) ∪ (X>=Y branch).
  UnionQuery split = U({"q(X, Y) :- p(X), p(Y), X <= Y.",
                        "q(X, Y) :- p(X), p(Y), X >= Y."});
  Result<bool> r =
      CqContainedInUnionComplete(R("q(X, Y) :- p(X), p(Y)."), split);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  // But not in the <= branch alone.
  Result<bool> half =
      CqContainedComplete(R("q(X, Y) :- p(X), p(Y)."), split.disjuncts[0]);
  ASSERT_TRUE(half.ok());
  EXPECT_FALSE(*half);
}

TEST_F(ContainmentTest, EntailmentTestIsSoundAndSemiIntervalComplete) {
  Result<bool> r1 = CqContainedViaEntailment(
      R("q(X) :- p(X, Y), Y < 5."), R("q(X) :- p(X, Y), Y < 10."));
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(*r1);
  Result<bool> r2 = CqContainedViaEntailment(
      R("q(X) :- p(X, Y), Y < 10."), R("q(X) :- p(X, Y), Y < 5."));
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(*r2);
}

TEST_F(ContainmentTest, SemiIntervalClassifier) {
  EXPECT_TRUE(AllComparisonsSemiInterval(R("q(X) :- p(X, Y), Y < 5, X >= 2.")));
  EXPECT_FALSE(AllComparisonsSemiInterval(R("q(X) :- p(X, Y), X < Y.")));
  EXPECT_TRUE(AllComparisonsSemiInterval(R("q(X) :- p(X, Y), Y = 5.")));
}

TEST_F(ContainmentTest, NormalizeDropsGroundTrueComparisons) {
  Result<std::optional<Rule>> n =
      NormalizeComparisons(R("q(X) :- p(X), 1 < 2, X <= 5."));
  ASSERT_TRUE(n.ok());
  ASSERT_TRUE(n->has_value());
  EXPECT_EQ((*n)->comparisons.size(), 1u);
}

TEST_F(ContainmentTest, NormalizeDetectsGroundFalse) {
  Result<std::optional<Rule>> n =
      NormalizeComparisons(R("q(X) :- p(X), 2 < 1."));
  ASSERT_TRUE(n.ok());
  EXPECT_FALSE(n->has_value());
}

TEST_F(ContainmentTest, NormalizeSymbolOrderComparisonIsEmptyQuery) {
  Result<std::optional<Rule>> n =
      NormalizeComparisons(R("q(X) :- p(X, C), C < red."));
  ASSERT_TRUE(n.ok());
  EXPECT_FALSE(n->has_value());
}

// Cross-validation: containment decisions agree with evaluation on the
// canonical databases generated from each linearization of the left query.
TEST_F(ContainmentTest, ComparisonContainmentAgreesWithEvalOracle) {
  struct Case {
    std::string q1, q2;
  };
  const std::vector<Case> cases = {
      {"q(X) :- p(X, Y), Y < 5.", "q(X) :- p(X, Y), Y < 10."},
      {"q(X) :- p(X, Y), Y < 10.", "q(X) :- p(X, Y), Y < 5."},
      {"q(X) :- p(X, Y), Y < 5, Y > 1.", "q(X) :- p(X, Y), Y > 0."},
      {"q(X) :- p(X, Y), p(Y, X).", "q(X) :- p(X, Y)."},
      {"q(X) :- p(X, Y).", "q(X) :- p(X, Y), p(Y, X)."},
      {"q(X) :- p(X, Y), X < Y.", "q(X) :- p(X, Y)."},
      {"q(X) :- p(X, Y), X < Y.", "q(A) :- p(A, B), A <= B."},
      {"q(X) :- p(X, Y), X <= Y.", "q(A) :- p(A, B), A < B."},
  };
  for (const Case& c : cases) {
    Rule q1 = R(c.q1);
    Rule q2 = R(c.q2);
    Result<bool> decision = CqContainedComplete(q1, q2);
    ASSERT_TRUE(decision.ok()) << decision.status().ToString();
    // Oracle: for q1 ⊑ q2 a NECESSARY condition is that on every canonical
    // database of q1 (one per linearization), q2 derives q1's frozen head.
    // For these CQs it is also sufficient (the linearization test itself),
    // so we recompute it independently through the evaluator.
    OrderConstraints oc;
    for (SymbolId v : q1.Variables()) {
      ASSERT_TRUE(oc.AddPoint(Term::Var(v)).ok());
    }
    for (const Value& v : q1.Constants()) {
      if (v.is_number()) {
        ASSERT_TRUE(oc.AddPoint(Term::Constant(v)).ok());
      }
    }
    for (const Value& v : q2.Constants()) {
      if (v.is_number()) {
        ASSERT_TRUE(oc.AddPoint(Term::Constant(v)).ok());
      }
    }
    ASSERT_TRUE(oc.AddAll(q1.comparisons).ok());
    bool oracle = true;
    Result<std::vector<Linearization>> lins = oc.EnumerateLinearizations();
    ASSERT_TRUE(lins.ok()) << lins.status().ToString();
    for (const Linearization& lin : *lins) {
      std::map<Term, Rational> sigma = oc.Realize(lin);
      // Canonical database: q1's body under sigma.
      Substitution freeze;
      for (const auto& [term, value] : sigma) {
        if (term.is_variable()) {
          freeze.Bind(term.symbol(), Term::Number(value));
        }
      }
      Database db;
      for (const Atom& a : q1.body) db.Add(freeze.Apply(a));
      Tuple head = freeze.Apply(q1.head).args;
      // Evaluate q2 on it.
      Program prog;
      prog.rules.push_back(q2);
      Result<std::vector<Tuple>> answers =
          EvaluateGoal(prog, q2.head.predicate, db);
      ASSERT_TRUE(answers.ok());
      bool derived = false;
      for (const Tuple& t : *answers) {
        if (t == head) {
          derived = true;
          break;
        }
      }
      if (!derived) {
        oracle = false;
        break;
      }
    }
    EXPECT_EQ(*decision, oracle) << c.q1 << "  vs  " << c.q2;
  }
}

}  // namespace
}  // namespace relcont
