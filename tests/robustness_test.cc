#include <gtest/gtest.h>

#include <random>
#include <string>

#include "containment/comparison_containment.h"
#include "binding/dom_containment.h"
#include "containment/expansion.h"
#include "datalog/parser.h"
#include "eval/evaluator.h"
#include "relcont/binding_containment.h"
#include "relcont/workload.h"

namespace relcont {
namespace {

// ---------------------------------------------------------------------------
// Parser robustness: malformed inputs must produce errors, never crashes,
// and every successfully parsed rule must round-trip through the printer.
// ---------------------------------------------------------------------------

TEST(ParserRobustnessTest, HandCraftedMalformedInputs) {
  const std::vector<std::string> bad = {
      "",            ".",             ":-",           "q(",
      "q).",         "q(X) :-",       "q(X) :- .",    "q(X) :- p(X),.",
      "q(X) p(X).",  "q(X) :- p(X)",  "(X) :- p(X).", "q(X) :- p(X)) .",
      "q(X] :- p.",  "q(X) :- p('a.", "1(X) :- p.",   "q(X) :- X < .",
      "q(X) :- < 3.", "q(X) :- p(X), X ! 3.",
  };
  Interner interner;
  for (const std::string& text : bad) {
    Result<Rule> r = ParseRule(text, &interner);
    EXPECT_FALSE(r.ok()) << "accepted: '" << text << "'";
  }
}

TEST(ParserRobustnessTest, RandomTokenSoupNeverCrashes) {
  const char* tokens[] = {"q",  "p",  "X",  "Y",  "(",  ")",  ",",
                          ".",  ":-", "<",  "<=", "=",  "!=", "1",
                          "2.5", "'s'", "f"};
  std::mt19937_64 rng(2024);
  std::uniform_int_distribution<int> pick(0, 16);
  std::uniform_int_distribution<int> length(1, 12);
  Interner interner;
  int accepted = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string text;
    int n = length(rng);
    for (int i = 0; i < n; ++i) {
      text += tokens[pick(rng)];
      text += ' ';
    }
    Result<Rule> r = ParseRule(text, &interner);
    if (!r.ok()) continue;
    ++accepted;
    // Anything accepted must round-trip.
    std::string printed = r->ToString(interner);
    Result<Rule> again = ParseRule(printed, &interner);
    ASSERT_TRUE(again.ok()) << "no round trip for: " << printed;
    EXPECT_EQ(*r, *again) << printed;
  }
  // The soup occasionally forms valid rules; make sure the loop is not
  // vacuous.
  EXPECT_GT(accepted, 0);
}

TEST(ParserRobustnessTest, DeeplyNestedFunctionTerms) {
  Interner interner;
  std::string term = "X";
  for (int i = 0; i < 200; ++i) term = "f(" + term + ")";
  Result<Rule> r = ParseRule("q(X) :- p(" + term + ", X).", &interner);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->body[0].args[0].ToString(interner).size(), 200 * 2 + 1 + 200);
}

TEST(ParserRobustnessTest, LongProgramsParse) {
  Interner interner;
  std::string text;
  for (int i = 0; i < 500; ++i) {
    text += "q" + std::to_string(i) + "(X) :- p(X, " + std::to_string(i) +
            ").\n";
  }
  Result<Program> p = ParseProgram(text, &interner);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->rules.size(), 500u);
}

// ---------------------------------------------------------------------------
// Klug completeness: on semi-interval instances the entailment fast path
// must agree with the complete linearization test.
// ---------------------------------------------------------------------------

class KlugAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(KlugAgreementTest, FastPathAgreesWithCompleteTest) {
  Interner interner;
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 7 + 1);
  auto random_semi_interval_query = [&](const char* head) {
    std::uniform_int_distribution<int> natoms(1, 2);
    std::uniform_int_distribution<int> nvar(0, 2);
    std::uniform_int_distribution<int> cval(0, 4);
    std::uniform_int_distribution<int> op(0, 3);
    std::uniform_int_distribution<int> ncmp(0, 2);
    Rule rule;
    int atoms = natoms(rng);
    for (int i = 0; i < atoms; ++i) {
      Atom a;
      a.predicate = interner.Intern("p");
      a.args.push_back(Term::Var(interner.Intern("V" + std::to_string(nvar(rng)))));
      a.args.push_back(Term::Var(interner.Intern("V" + std::to_string(nvar(rng)))));
      rule.body.push_back(a);
    }
    std::vector<SymbolId> vars = rule.BodyVariables();
    int cmps = ncmp(rng);
    for (int i = 0; i < cmps; ++i) {
      ComparisonOp o = op(rng) == 0   ? ComparisonOp::kLt
                       : op(rng) == 1 ? ComparisonOp::kLe
                       : op(rng) == 2 ? ComparisonOp::kGt
                                      : ComparisonOp::kGe;
      rule.comparisons.emplace_back(
          Term::Var(vars[static_cast<size_t>(nvar(rng)) % vars.size()]), o,
          Term::Number(Rational(cval(rng))));
    }
    rule.head = Atom(interner.Intern(head), {Term::Var(vars[0])});
    return rule;
  };
  Rule q1 = random_semi_interval_query("g1");
  Rule q2 = random_semi_interval_query("g2");
  Result<bool> fast = CqContainedViaEntailment(q1, q2);
  Result<bool> complete = CqContainedComplete(q1, q2);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  ASSERT_TRUE(complete.ok()) << complete.status().ToString();
  EXPECT_EQ(*fast, *complete)
      << q1.ToString(interner) << "  vs  " << q2.ToString(interner);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KlugAgreementTest, ::testing::Range(0, 120));

// ---------------------------------------------------------------------------
// Randomized binding-pattern scenarios: the exact dom decider agrees with
// the bounded expansion oracle wherever the oracle is conclusive.
// ---------------------------------------------------------------------------

class DomRandomAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(DomRandomAgreementTest, ExactDeciderAgreesWithBoundedOracle) {
  Interner interner;
  uint64_t seed = static_cast<uint64_t>(GetParam());
  std::mt19937_64 rng(seed);
  // Scenario family: one free "seed" view over link(a, X) or p(X); one or
  // two adorned lookup views; a one-atom query; a random small UCQ cover.
  ViewSet views = *ParseViews(
      "seed(X) :- link(a, X).\n"
      "next(X, Y) :- link(X, Y).\n",
      &interner);
  BindingPatterns patterns;
  patterns.Set(interner.Lookup("next"), *Adornment::Parse("bf"));
  GoalQuery q1{*ParseProgram("q1(Y) :- link(X, Y).", &interner),
               interner.Lookup("q1")};
  // Random cover: subsets of {link(a,Y)} ∪ {suffix chains of length 2, 3}
  // ∪ {link(Y, Z) forward edge}.
  const std::vector<std::string> pool = {
      "qc(Y) :- link(a, Y).",
      "qc(Y) :- link(X1, X2), link(X2, Y).",
      "qc(Y) :- link(X1, X2), link(X2, X3), link(X3, Y).",
      "qc(Y) :- link(a, X2), link(X2, Y).",
      "qc(Y) :- link(Y, Z).",
  };
  std::string text;
  std::uniform_int_distribution<int> coin(0, 1);
  for (const std::string& d : pool) {
    if (coin(rng) == 1) text += d + "\n";
  }
  if (text.empty()) text = pool[0] + "\n";
  GoalQuery q2{*ParseProgram(text, &interner), interner.Lookup("qc")};

  Result<BindingRelativeResult> exact = RelativelyContainedWithBindingPatterns(
      q1, q2, views, patterns, &interner);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString() << "\ncover:\n"
                          << text;

  // Oracle: bounded expansion search over the same expanded plan.
  BindingPatterns patterns_copy = patterns;
  Result<ExecutablePlanResult> plan =
      ExecutablePlan(q1.program, views, patterns_copy, &interner);
  ASSERT_TRUE(plan.ok());
  Result<Program> p1_exp = ExpandExecutablePlanForContainment(
      *plan, q1.goal, views, &interner);
  ASSERT_TRUE(p1_exp.ok());
  Result<UnionQuery> q2_ucq =
      UnfoldToUnion(q2.program, q2.goal, &interner);
  ASSERT_TRUE(q2_ucq.ok());
  ExpansionOptions bounds;
  bounds.max_rule_applications = 9;
  Result<bool> oracle = DatalogContainedInUcqBounded(
      *p1_exp, q1.goal, *q2_ucq, &interner, bounds);
  if (oracle.ok()) {
    EXPECT_EQ(exact->contained, *oracle) << "cover:\n" << text;
  } else {
    ASSERT_EQ(oracle.status().code(), StatusCode::kBoundReached);
    EXPECT_TRUE(exact->contained) << "cover:\n" << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomRandomAgreementTest,
                         ::testing::Range(0, 60));

// Branching (tree-shaped) dom recursion: guards with two children.
class DomTreeAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(DomTreeAgreementTest, ExactDeciderAgreesWithBoundedOracle) {
  Interner interner;
  uint64_t seed = static_cast<uint64_t>(GetParam());
  std::mt19937_64 rng(seed);
  // Hand-written dom program with a two-guard rule (derivation TREES).
  Program prog = *ParseProgram(
      "q(Z) :- t(X, Y, Z), dom(X), dom(Y).\n"
      "dom(c).\n"
      "dom(d).\n"
      "dom(Z) :- t(X, Y, Z), dom(X), dom(Y).\n",
      &interner);
  const std::vector<std::string> pool = {
      "p(Z) :- t(X, Y, Z).",
      "p(Z) :- t(c, c, Z).",
      "p(Z) :- t(c, d, Z).",
      "p(Z) :- t(A, B, Z), t(X, Y, A).",
      "p(Z) :- t(A, B, Z), t(X, Y, B).",
      "p(Z) :- t(A, A, Z).",
  };
  UnionQuery ucq;
  std::uniform_int_distribution<int> coin(0, 1);
  for (const std::string& d : pool) {
    if (coin(rng) == 1) ucq.disjuncts.push_back(*ParseRule(d, &interner));
  }
  if (ucq.disjuncts.empty()) {
    ucq.disjuncts.push_back(*ParseRule(pool[0], &interner));
  }
  Result<DomContainmentResult> exact = DomPlanContainedInUcq(
      prog, interner.Lookup("q"), interner.Lookup("dom"), ucq, &interner);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  ExpansionOptions bounds;
  bounds.max_rule_applications = 6;
  Result<bool> oracle = DatalogContainedInUcqBounded(
      prog, interner.Lookup("q"), ucq, &interner, bounds);
  if (oracle.ok()) {
    EXPECT_EQ(exact->contained, *oracle) << "seed " << seed;
  } else {
    ASSERT_EQ(oracle.status().code(), StatusCode::kBoundReached);
    EXPECT_TRUE(exact->contained) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomTreeAgreementTest,
                         ::testing::Range(0, 60));

// A large randomized soak of the full Section 3 pipeline: for random
// workloads, every positive containment decision must survive
// certain-answer sampling, and containment must be reflexive and
// transitive on the sampled workload.
TEST(SoakTest, Section3PipelineInvariants) {
  Interner interner;
  RandomQueryOptions opts;
  opts.num_atoms = 2;
  opts.num_variables = 3;
  opts.num_predicates = 2;
  opts.constant_probability = 0.0;
  opts.head_arity = 1;
  opts.seed = 424242;
  ViewSet views = RandomViews(opts, 4, &interner);
  ASSERT_FALSE(views.empty());
  std::vector<GoalQuery> workload;
  for (int i = 0; i < 8; ++i) {
    opts.seed = 5000 + i;
    Program p({RandomConjunctiveQuery(
        opts, ("w" + std::to_string(i)).c_str(), &interner)});
    if (!p.CheckSafe().ok()) continue;
    workload.push_back({p, p.rules[0].head.predicate});
  }
  ASSERT_GE(workload.size(), 4u);
  int n = static_cast<int>(workload.size());
  std::vector<std::vector<bool>> contained(n, std::vector<bool>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      Result<RelativeContainmentResult> r = RelativelyContained(
          workload[i], workload[j], views, &interner);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      contained[i][j] = r->contained;
    }
    EXPECT_TRUE(contained[i][i]) << "reflexivity";
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int k = 0; k < n; ++k) {
        if (contained[i][j] && contained[j][k]) {
          EXPECT_TRUE(contained[i][k]) << "transitivity " << i << "->" << j
                                       << "->" << k;
        }
      }
    }
  }
}

}  // namespace
}  // namespace relcont
