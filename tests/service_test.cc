#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "containment/canonical.h"
#include "containment/homomorphism.h"
#include "datalog/parser.h"
#include "relcont/pi2p_reduction.h"
#include "relcont/relative_containment.h"
#include "relcont/workload.h"
#include "rewriting/inverse_rules.h"
#include "rewriting/views.h"
#include "service/protocol.h"
#include "service/service.h"
#include "trace/trace.h"

namespace relcont {
namespace {

// --- canonical fingerprints -------------------------------------------------

TEST(CanonicalFingerprintTest, InvariantUnderVariableRenaming) {
  Interner a;
  Interner b;
  Rule r1 = *ParseRule("q(X) :- p(X, Y), p(Y, X).", &a);
  Rule r2 = *ParseRule("q(U) :- p(U, W), p(W, U).", &b);
  // Computed against different interners: spellings decide, not SymbolIds.
  EXPECT_EQ(CanonicalRuleFingerprint(r1, a), CanonicalRuleFingerprint(r2, b));
}

TEST(CanonicalFingerprintTest, DistinguishesDifferentJoinShapes) {
  Interner interner;
  Rule r1 = *ParseRule("q(X) :- p(X, Y), p(Y, X).", &interner);
  Rule r2 = *ParseRule("q(X) :- p(X, Y), p(X, Y).", &interner);
  EXPECT_NE(CanonicalRuleFingerprint(r1, interner),
            CanonicalRuleFingerprint(r2, interner));
}

TEST(CanonicalFingerprintTest, ConstantsAndComparisonsAppear) {
  Interner interner;
  Rule r1 = *ParseRule("q(X) :- p(X, 3), X < 7.", &interner);
  Rule r2 = *ParseRule("q(X) :- p(X, 4), X < 7.", &interner);
  Rule r3 = *ParseRule("q(X) :- p(X, 3), X < 8.", &interner);
  EXPECT_NE(CanonicalRuleFingerprint(r1, interner),
            CanonicalRuleFingerprint(r2, interner));
  EXPECT_NE(CanonicalRuleFingerprint(r1, interner),
            CanonicalRuleFingerprint(r3, interner));
}

TEST(CanonicalFingerprintTest, ProgramFingerprintIgnoresRuleOrder) {
  Interner interner;
  Program p1 = *ParseProgram(
      "q(X) :- r(X, Y).\n"
      "q(X) :- s(X).\n",
      &interner);
  Program p2 = *ParseProgram(
      "q(X) :- s(X).\n"
      "q(X) :- r(X, Y).\n",
      &interner);
  SymbolId goal = interner.Lookup("q");
  EXPECT_EQ(CanonicalProgramFingerprint(p1, goal, interner),
            CanonicalProgramFingerprint(p2, goal, interner));
}

// --- catalog registry -------------------------------------------------------

TEST(CatalogRegistryTest, RegisterFindAndVersionBump) {
  CatalogRegistry registry;
  Result<int64_t> v1 = registry.Register("cars", "v(X) :- p(X, Y).\n");
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(*v1, 1);
  auto spec = registry.Find("cars");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->version, 1);

  Result<int64_t> v2 =
      registry.Register("cars", "v(X) :- p(X, Y), s(Y).\n");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 2);
  // The old snapshot a reader holds is untouched by the re-registration.
  EXPECT_EQ(spec->version, 1);
  EXPECT_EQ(registry.Find("cars")->version, 2);
  EXPECT_EQ(registry.Find("nope"), nullptr);
}

TEST(CatalogRegistryTest, RejectsInvalidSpecs) {
  CatalogRegistry registry;
  EXPECT_FALSE(registry.Register("bad", "v(X) :- p(X Y).\n").ok());
  // Pattern naming a source that is not declared.
  EXPECT_FALSE(
      registry.Register("bad", "v(X) :- p(X, Y).\n", {{"w", "b"}}).ok());
  // Adornment arity mismatch.
  EXPECT_FALSE(
      registry.Register("bad", "v(X) :- p(X, Y).\n", {{"v", "bf"}}).ok());
  EXPECT_EQ(registry.size(), 0u);
}

TEST(CatalogRegistryTest, MaterializesPatterns) {
  CatalogRegistry registry;
  ASSERT_TRUE(registry
                  .Register("c", "v(X, Y) :- p(X, Y).\n", {{"v", "bf"}})
                  .ok());
  Interner interner;
  Result<MaterializedCatalog> m =
      MaterializeCatalog(*registry.Find("c"), &interner);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->views.size(), 1u);
  const std::vector<Adornment>* adornments =
      m->patterns.Find(interner.Lookup("v"));
  ASSERT_NE(adornments, nullptr);
  EXPECT_EQ((*adornments)[0].ToString(), "bf");
}

// --- decision cache ---------------------------------------------------------

CachedDecision Cached(bool contained) {
  CachedDecision d;
  d.contained = contained;
  d.regime = Regime::kSection3;
  return d;
}

TEST(DecisionCacheTest, LookupInsertAndStats) {
  DecisionCache cache(8, 2);
  EXPECT_FALSE(cache.Lookup("k1").has_value());
  cache.Insert("k1", Cached(true));
  auto hit = cache.Lookup("k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->contained);
  EXPECT_EQ(hit->regime, Regime::kSection3);
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(DecisionCacheTest, LruEvictionOrder) {
  // One shard so recency order is global and deterministic.
  DecisionCache cache(3, 1);
  cache.Insert("a", Cached(true));
  cache.Insert("b", Cached(true));
  cache.Insert("c", Cached(true));
  // Refresh "a": now "b" is the least recently used entry.
  EXPECT_TRUE(cache.Lookup("a").has_value());
  cache.Insert("d", Cached(false));
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  EXPECT_TRUE(cache.Lookup("d").has_value());
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
}

TEST(DecisionCacheTest, ClearDropsEntriesKeepsCounters) {
  DecisionCache cache(4, 1);
  cache.Insert("a", Cached(true));
  EXPECT_TRUE(cache.Lookup("a").has_value());
  cache.Clear();
  EXPECT_FALSE(cache.Lookup("a").has_value());
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

// --- service ----------------------------------------------------------------

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(service_.catalogs()
                    .Register("main",
                              "v1(X, Y) :- p(X, Y).\n"
                              "v2(X) :- s(X).\n")
                    .ok());
  }

  DecisionRequest Req(const std::string& q1, const std::string& q2) {
    DecisionRequest request;
    request.q1_text = q1;
    request.q2_text = q2;
    request.catalog = "main";
    return request;
  }

  ContainmentService service_;
  WorkerContext ctx_;
};

TEST_F(ServiceTest, DecidesAndCaches) {
  DecisionRequest request =
      Req("a(X) :- p(X, X).", "b(X) :- p(X, Y).");
  DecisionResponse first = service_.Decide(request, &ctx_);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_TRUE(first.contained);
  EXPECT_EQ(first.regime, Regime::kSection3);
  EXPECT_FALSE(first.cache_hit);

  DecisionResponse second = service_.Decide(request, &ctx_);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.contained, first.contained);
  EXPECT_EQ(second.regime, first.regime);
  EXPECT_EQ(second.witness_text, first.witness_text);
}

TEST_F(ServiceTest, RenamedQueryHitsSameEntry) {
  DecisionResponse first = service_.Decide(
      Req("a(X) :- p(X, Y), s(Y).", "b(X) :- p(X, Y)."), &ctx_);
  ASSERT_TRUE(first.status.ok());
  // Same queries up to variable renaming: must be a cache hit.
  DecisionResponse second = service_.Decide(
      Req("a(U) :- p(U, V), s(V).", "b(W) :- p(W, Z)."), &ctx_);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.contained, first.contained);
}

TEST_F(ServiceTest, NonContainmentCachesWitnessText) {
  DecisionRequest request =
      Req("a(X) :- p(X, Y).", "b(X) :- p(X, Y), s(X).");
  DecisionResponse first = service_.Decide(request, &ctx_);
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.contained);
  EXPECT_FALSE(first.witness_text.empty());
  DecisionResponse second = service_.Decide(request, &ctx_);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.witness_text, first.witness_text);
}

TEST_F(ServiceTest, ErrorsSurfaceAndCount) {
  DecisionRequest request = Req("a(X) :- p(X, Y).", "b(X) :- p(X, Y).");
  request.catalog = "nope";
  DecisionResponse response = service_.Decide(request, &ctx_);
  EXPECT_FALSE(response.status.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service_.metrics().errors(), 1u);

  DecisionRequest bad = Req("a(X :- p(X, Y).", "b(X) :- p(X, Y).");
  EXPECT_FALSE(service_.Decide(bad, &ctx_).status.ok());
  EXPECT_EQ(service_.metrics().errors(), 2u);
}

TEST_F(ServiceTest, CatalogVersionBumpInvalidatesCachedDecisions) {
  DecisionRequest request =
      Req("a(X) :- p(X, Y).", "b(X) :- p(X, Y), s(X).");
  DecisionResponse before = service_.Decide(request, &ctx_);
  ASSERT_TRUE(before.status.ok());
  EXPECT_FALSE(before.contained);
  // With s gone from the catalog, Q2's plan collapses and the answer
  // changes; the version bump must route around the cached decision.
  ASSERT_TRUE(
      service_.catalogs().Register("main", "v1(X, Y) :- p(X, Y).\n").ok());
  DecisionResponse after = service_.Decide(request, &ctx_);
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.cache_hit);
}

TEST_F(ServiceTest, WorkerArenaResetKeepsServing) {
  ServiceConfig config;
  config.max_worker_symbols = 64;  // force frequent arena resets
  ContainmentService service(config);
  ASSERT_TRUE(service.catalogs().Register("main", "v(X, Y) :- p(X, Y).\n").ok());
  WorkerContext ctx;
  for (int i = 0; i < 32; ++i) {
    DecisionRequest request;
    request.q1_text = "a(X) :- p(X, X).";
    request.q2_text = "b(X) :- p(X, Y).";
    request.catalog = "main";
    DecisionResponse response = service.Decide(request, &ctx);
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_TRUE(response.contained);
  }
  EXPECT_EQ(service.metrics().requests(), 32u);
}

TEST_F(ServiceTest, CacheKeyIsRenamingInvariantAndOptionSensitive) {
  DecisionRequest base = Req("a(X) :- p(X, Y).", "b(X) :- p(X, Y).");
  DecisionRequest renamed = Req("a(U) :- p(U, V).", "b(V) :- p(V, W).");
  DecisionRequest different = Req("a(X) :- p(X, X).", "b(X) :- p(X, Y).");
  DecisionRequest rebounded = base;
  rebounded.options.max_rule_applications = 99;

  Result<std::string> k_base = service_.CacheKey(base, &ctx_);
  Result<std::string> k_renamed = service_.CacheKey(renamed, &ctx_);
  Result<std::string> k_different = service_.CacheKey(different, &ctx_);
  Result<std::string> k_rebounded = service_.CacheKey(rebounded, &ctx_);
  ASSERT_TRUE(k_base.ok() && k_renamed.ok() && k_different.ok() &&
              k_rebounded.ok());
  EXPECT_EQ(*k_base, *k_renamed);
  EXPECT_NE(*k_base, *k_different);
  EXPECT_NE(*k_base, *k_rebounded);
}

// --- randomized cache determinism -------------------------------------------

// Renders a reproducible randomized workload as request texts: the service
// parses everything into its own worker arenas, so the generator's interner
// never crosses the API boundary.
std::vector<DecisionRequest> RandomWorkload(int distinct_pairs,
                                            std::string* views_text) {
  Interner gen;
  RandomQueryOptions options;
  options.num_atoms = 3;
  options.num_variables = 4;
  options.num_predicates = 2;
  options.arity = 2;
  options.head_arity = 1;
  ViewSet views = RandomViews(options, 4, &gen);
  views_text->clear();
  for (const ViewDefinition& v : views.views()) {
    *views_text += v.rule.ToString(gen);
    *views_text += '\n';
  }
  std::vector<DecisionRequest> requests;
  for (int i = 0; i < distinct_pairs; ++i) {
    options.seed = 1000 + i;
    Rule qa = RandomConjunctiveQuery(options, "qa", &gen);
    options.seed = 2000 + i;
    Rule qb = RandomConjunctiveQuery(options, "qb", &gen);
    DecisionRequest request;
    request.q1_text = qa.ToString(gen);
    request.q2_text = qb.ToString(gen);
    request.catalog = "rand";
    requests.push_back(std::move(request));
  }
  return requests;
}

TEST(ServiceRandomizedTest, CachedDecisionEqualsFreshDecision) {
  std::string views_text;
  std::vector<DecisionRequest> requests = RandomWorkload(20, &views_text);
  ContainmentService service;
  ASSERT_TRUE(service.catalogs().Register("rand", views_text).ok());
  WorkerContext ctx;
  for (const DecisionRequest& request : requests) {
    DecisionResponse fresh = service.Decide(request, &ctx);
    ASSERT_TRUE(fresh.status.ok()) << fresh.status.ToString();
    EXPECT_FALSE(fresh.cache_hit);
    DecisionResponse cached = service.Decide(request, &ctx);
    ASSERT_TRUE(cached.status.ok());
    EXPECT_TRUE(cached.cache_hit);
    EXPECT_EQ(cached.contained, fresh.contained);
    EXPECT_EQ(cached.regime, fresh.regime);
    EXPECT_EQ(cached.witness_text, fresh.witness_text);
    // And a forced re-derivation agrees with both.
    DecisionRequest bypass = request;
    bypass.bypass_cache = true;
    DecisionResponse rederived = service.Decide(bypass, &ctx);
    ASSERT_TRUE(rederived.status.ok());
    EXPECT_EQ(rederived.contained, fresh.contained);
    EXPECT_EQ(rederived.regime, fresh.regime);
  }
}

// --- multithreaded stress ----------------------------------------------------

TEST(ServiceStressTest, EightThreadBatchMatchesSerialBaseline) {
  std::string views_text;
  std::vector<DecisionRequest> distinct = RandomWorkload(12, &views_text);
  // ≥1k mixed requests cycling through the distinct pairs.
  std::vector<DecisionRequest> requests;
  for (int i = 0; i < 1200; ++i) {
    requests.push_back(distinct[i % distinct.size()]);
  }

  ContainmentService serial;
  ASSERT_TRUE(serial.catalogs().Register("rand", views_text).ok());
  std::vector<DecisionResponse> baseline = serial.ExecuteBatch(requests, 1);

  ContainmentService parallel;
  ASSERT_TRUE(parallel.catalogs().Register("rand", views_text).ok());
  std::vector<DecisionResponse> concurrent =
      parallel.ExecuteBatch(requests, 8);

  ASSERT_EQ(baseline.size(), requests.size());
  ASSERT_EQ(concurrent.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(baseline[i].status.ok()) << baseline[i].status.ToString();
    ASSERT_TRUE(concurrent[i].status.ok())
        << concurrent[i].status.ToString();
    EXPECT_EQ(concurrent[i].contained, baseline[i].contained) << "at " << i;
    EXPECT_EQ(concurrent[i].regime, baseline[i].regime) << "at " << i;
  }
  EXPECT_EQ(parallel.metrics().requests(), requests.size());
  CacheStats stats = parallel.cache().Stats();
  EXPECT_EQ(stats.hits + stats.misses, requests.size());
  // Each distinct pair is decided at most a handful of times (a pair can
  // race to a miss on several workers at once, but never once per repeat).
  EXPECT_GE(stats.hits, requests.size() - 8 * distinct.size());
}

TEST(ServiceStressTest, ParallelWorkersUnderConcurrentLoadMatchSerial) {
  // Batch threads × per-request disjunct workers: every decision fans out
  // its own helpers while eight batch workers run at once. Verdicts must
  // still equal the fully serial baseline, and the helper pool must be
  // quiescent once ExecuteBatch returns.
  std::string views_text;
  std::vector<DecisionRequest> distinct = RandomWorkload(12, &views_text);
  std::vector<DecisionRequest> requests;
  for (int i = 0; i < 240; ++i) {
    DecisionRequest r = distinct[i % distinct.size()];
    r.options.parallel_workers = 4;
    r.bypass_cache = true;  // force a real decision on every repeat
    requests.push_back(std::move(r));
  }

  ContainmentService serial;
  ASSERT_TRUE(serial.catalogs().Register("rand", views_text).ok());
  std::vector<DecisionRequest> serial_requests = requests;
  for (DecisionRequest& r : serial_requests) r.options.parallel_workers = 1;
  std::vector<DecisionResponse> baseline =
      serial.ExecuteBatch(serial_requests, 1);

  ContainmentService parallel;
  ASSERT_TRUE(parallel.catalogs().Register("rand", views_text).ok());
  std::vector<DecisionResponse> concurrent =
      parallel.ExecuteBatch(requests, 8);

  ASSERT_EQ(baseline.size(), requests.size());
  ASSERT_EQ(concurrent.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(baseline[i].status.ok()) << baseline[i].status.ToString();
    ASSERT_TRUE(concurrent[i].status.ok())
        << concurrent[i].status.ToString();
    EXPECT_EQ(concurrent[i].contained, baseline[i].contained) << "at " << i;
    EXPECT_EQ(concurrent[i].regime, baseline[i].regime) << "at " << i;
  }
  // Quiescence: every helper the decisions spawned has been joined; the
  // spawn/complete counters can only balance if no task is still running.
  EXPECT_EQ(parallel.metrics().tasks_spawned(),
            parallel.metrics().tasks_completed());
  EXPECT_EQ(parallel.metrics().deadline_exceeded(), 0u);
}

// --- deadlines and step budgets ---------------------------------------------

// Renders a Π₂ᵖ-hard pair through the text API: a random ∀∃-3CNF reduction
// whose disjunct scan (2^8 disjuncts, tens of milliseconds serially) takes
// well over any millisecond-scale deadline.
void HardRequestWorkload(std::string* views_text, DecisionRequest* request) {
  Interner gen;
  QbfFormula f = RandomQbf(/*num_exists=*/2, /*num_forall=*/8,
                           /*num_clauses=*/16, /*seed=*/11);
  Result<Pi2pInstance> inst = BuildPi2pReduction(f, &gen);
  ASSERT_TRUE(inst.ok()) << inst.status().ToString();
  views_text->clear();
  for (const ViewDefinition& v : inst->views.views()) {
    *views_text += v.rule.ToString(gen);
    *views_text += '\n';
  }
  // The containment question of the reduction is q2 ⊑ q1; the goal rule
  // must come first (ParseGoalQuery takes the first head as the goal).
  auto render = [&gen](const GoalQuery& q) {
    std::string text;
    for (const Rule& r : q.program.rules) {
      text += r.ToString(gen);
      text += '\n';
    }
    return text;
  };
  request->q1_text = render(inst->q2);
  request->q2_text = render(inst->q1);
  request->catalog = "qbf";
}

TEST(ServiceDeadlineTest, MidFlightDeadlineAnswersBoundReachedAndQuiesces) {
  std::string views_text;
  DecisionRequest request;
  HardRequestWorkload(&views_text, &request);
  request.options.timeout_ms = 1;
  request.options.parallel_workers = 4;

  ContainmentService service;
  ASSERT_TRUE(service.catalogs().Register("qbf", views_text).ok());
  WorkerContext ctx;
  DecisionResponse response = service.Decide(request, &ctx);
  ASSERT_FALSE(response.status.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kBoundReached)
      << response.status.ToString();
  EXPECT_NE(response.status.message().find("deadline exceeded"),
            std::string::npos)
      << response.status.ToString();
  // The expired request still quiesced its helpers before returning and
  // was counted by the deadline metric.
  EXPECT_GE(service.metrics().deadline_exceeded(), 1u);
  EXPECT_EQ(service.metrics().tasks_spawned(),
            service.metrics().tasks_completed());
  // A bound is an error, not a verdict: nothing may enter the cache.
  CacheStats stats = service.cache().Stats();
  EXPECT_EQ(stats.entries, 0u);
}

TEST(ServiceDeadlineTest, StepBudgetTripsDeterministically) {
  std::string views_text;
  DecisionRequest request;
  HardRequestWorkload(&views_text, &request);
  request.options.max_steps = 8;

  ContainmentService service;
  ASSERT_TRUE(service.catalogs().Register("qbf", views_text).ok());
  WorkerContext ctx;
  for (int round = 0; round < 3; ++round) {
    DecisionResponse response = service.Decide(request, &ctx);
    ASSERT_FALSE(response.status.ok());
    EXPECT_EQ(response.status.code(), StatusCode::kBoundReached)
        << response.status.ToString();
    EXPECT_NE(response.status.message().find("step budget exhausted"),
              std::string::npos)
        << response.status.ToString();
  }
  // Step bounds are not deadline trips.
  EXPECT_EQ(service.metrics().deadline_exceeded(), 0u);
  // Lifting the budget on the same worker context decides normally: the
  // trip left no sticky state behind.
  request.options.max_steps = 0;
  DecisionResponse full = service.Decide(request, &ctx);
  EXPECT_TRUE(full.status.ok()) << full.status.ToString();
}

TEST(ServiceDeadlineTest, ConfigDefaultTimeoutAppliesWhenRequestSetsNone) {
  std::string views_text;
  DecisionRequest request;
  HardRequestWorkload(&views_text, &request);

  ServiceConfig config;
  config.default_timeout_ms = 1;
  ContainmentService service(config);
  ASSERT_TRUE(service.catalogs().Register("qbf", views_text).ok());
  WorkerContext ctx;
  DecisionResponse response = service.Decide(request, &ctx);
  ASSERT_FALSE(response.status.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kBoundReached)
      << response.status.ToString();
  EXPECT_GE(service.metrics().deadline_exceeded(), 1u);
}

// --- protocol ---------------------------------------------------------------

TEST(ProtocolTest, EndToEndSession) {
  ContainmentService service;
  ServerSession session(&service);
  EXPECT_EQ(session.HandleLine(""), "");
  EXPECT_EQ(session.HandleLine("% comment"), "");
  EXPECT_EQ(session.HandleLine("CATALOG c VIEW v(X, Y) :- p(X, Y)."),
            "OK catalog c v1 views=1 patterns=0\n");
  EXPECT_EQ(session.HandleLine("DEFINE a a(X) :- p(X, X)."),
            "OK query a rules=1\n");
  EXPECT_EQ(session.HandleLine("DEFINE b b(X) :- p(X, Y)."),
            "OK query b rules=1\n");
  std::string yes = session.HandleLine("CONTAINED? a b @c");
  EXPECT_EQ(yes.rfind("YES section3 MISS", 0), 0u) << yes;
  std::string hit = session.HandleLine("CONTAINED? a b @c");
  EXPECT_EQ(hit.rfind("YES section3 HIT", 0), 0u) << hit;
  std::string no = session.HandleLine("CONTAINED? b a @c");
  EXPECT_EQ(no.rfind("NO section3", 0), 0u) << no;
  EXPECT_NE(no.find("witness:"), std::string::npos) << no;

  std::string metrics = session.HandleLine("METRICS");
  EXPECT_NE(metrics.find("requests_total 3"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("cache_hits 1"), std::string::npos) << metrics;
}

TEST(ProtocolTest, BatchFanOut) {
  ContainmentService service;
  ServerSession session(&service, /*batch_threads=*/4);
  session.HandleLine("CATALOG c VIEW v(X, Y) :- p(X, Y).");
  session.HandleLine("DEFINE a a(X) :- p(X, X).");
  session.HandleLine("DEFINE b b(X) :- p(X, Y).");
  EXPECT_EQ(session.HandleLine("BATCH BEGIN"), "OK batch begin\n");
  EXPECT_EQ(session.HandleLine("CONTAINED? a b @c"), "QUEUED 0\n");
  EXPECT_EQ(session.HandleLine("CONTAINED? b a @c"), "QUEUED 1\n");
  std::string out = session.HandleLine("BATCH END");
  EXPECT_EQ(out.rfind("OK batch 2\n", 0), 0u) << out;
  EXPECT_NE(out.find("[0] YES section3"), std::string::npos) << out;
  EXPECT_NE(out.find("[1] NO section3"), std::string::npos) << out;
}

TEST(ProtocolTest, ErrorsAreLineDelimited) {
  ContainmentService service;
  ServerSession session(&service);
  EXPECT_EQ(session.HandleLine("FROBNICATE").rfind("ERR", 0), 0u);
  EXPECT_EQ(session.HandleLine("CATALOG").rfind("ERR", 0), 0u);
  EXPECT_EQ(session.HandleLine("CATALOG c PATTERN v bf").rfind("ERR", 0),
            0u);
  session.HandleLine("CATALOG c VIEW v(X, Y) :- p(X, Y).");
  EXPECT_EQ(session.HandleLine("CONTAINED? a b @c").rfind("ERR", 0), 0u);
  session.HandleLine("DEFINE a a(X) :- p(X, X).");
  session.HandleLine("DEFINE b b(X) :- p(X, Y).");
  std::string unknown_catalog = session.HandleLine("CONTAINED? a b @zzz");
  EXPECT_EQ(unknown_catalog.rfind("ERR", 0), 0u);
  EXPECT_NE(unknown_catalog.find("unknown catalog"), std::string::npos);
}

TEST(ProtocolTest, BudgetOptionsParseAndSurfaceBounds) {
  ContainmentService service;
  ServerSession session(&service);
  session.HandleLine("CATALOG c VIEW v(X, Y) :- p(X, Y).");
  session.HandleLine("DEFINE a a(X) :- p(X, X).");
  session.HandleLine("DEFINE b b(X) :- p(X, Y).");

  // Generous bounds leave the verdict untouched.
  std::string yes = session.HandleLine(
      "CONTAINED? a b @c timeout_ms=60000 budget=1000000 workers=4");
  EXPECT_EQ(yes.rfind("YES section3", 0), 0u) << yes;

  // A one-step budget on an uncached pair turns the decision into the
  // uniform bound error, and the bound never enters the cache.
  std::string bound = session.HandleLine("CONTAINED? b a @c budget=1");
  EXPECT_EQ(bound.rfind("ERR", 0), 0u) << bound;
  EXPECT_NE(bound.find("bound reached"), std::string::npos) << bound;
  std::string retry = session.HandleLine("CONTAINED? b a @c");
  EXPECT_EQ(retry.rfind("NO section3 MISS", 0), 0u) << retry;

  // Malformed options are usage errors, not silent defaults.
  for (const char* bad :
       {"CONTAINED? a b @c timeout_ms=abc", "CONTAINED? a b @c budget=0",
        "CONTAINED? a b @c workers=-2", "CONTAINED? a b @c frobs=3"}) {
    std::string err = session.HandleLine(bad);
    EXPECT_EQ(err.rfind("ERR", 0), 0u) << bad << " -> " << err;
  }

  // EXPLAIN accepts the same trailing options.
  std::string explain =
      session.HandleLine("EXPLAIN a b @c timeout_ms=60000 workers=2");
  EXPECT_EQ(explain.rfind("ERR", 0), std::string::npos) << explain;
}

// --- metrics ----------------------------------------------------------------

TEST(MetricsTest, HistogramBucketsAndDump) {
  ServiceMetrics metrics;
  metrics.RecordRequest(Regime::kSection3, 0, false, false);
  metrics.RecordRequest(Regime::kSection3, 1, false, true);
  metrics.RecordRequest(Regime::kTheorem51, 100, false, false);
  metrics.RecordRequest(Regime::kUnknown, 5, true, false);
  EXPECT_EQ(metrics.requests(), 4u);
  EXPECT_EQ(metrics.errors(), 1u);
  EXPECT_EQ(metrics.cache_hits(), 1u);
  EXPECT_EQ(metrics.RegimeCount(Regime::kSection3), 2u);
  EXPECT_EQ(metrics.RegimeCount(Regime::kTheorem51), 1u);
  EXPECT_EQ(metrics.latency().TotalCount(), 4u);
  // 100µs lands in [64, 128).
  auto [lower, upper] = LatencyHistogram::BucketBounds(7);
  EXPECT_EQ(lower, 64u);
  EXPECT_EQ(upper, 128u);
  EXPECT_EQ(metrics.latency().BucketCount(7), 1u);

  CacheStats cache;
  cache.hits = 1;
  cache.misses = 3;
  std::string dump = metrics.Dump(cache);
  EXPECT_NE(dump.find("requests_total 4"), std::string::npos);
  EXPECT_NE(dump.find("decisions_by_regime{section3} 2"),
            std::string::npos);
  EXPECT_NE(dump.find("cache_misses 3"), std::string::npos);
  // Prometheus histogram conventions: cumulative le buckets ending at
  // +Inf, plus the _sum/_count pair. Latencies: 0, 1, 5, 100.
  EXPECT_NE(dump.find("latency_us_bucket{le=\"0\"} 1"), std::string::npos);
  EXPECT_NE(dump.find("latency_us_bucket{le=\"1\"} 2"), std::string::npos);
  EXPECT_NE(dump.find("latency_us_bucket{le=\"7\"} 3"), std::string::npos);
  EXPECT_NE(dump.find("latency_us_bucket{le=\"127\"} 4"), std::string::npos);
  EXPECT_NE(dump.find("latency_us_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(dump.find("latency_us_sum 106"), std::string::npos);
  EXPECT_NE(dump.find("latency_us_count 4"), std::string::npos);
  EXPECT_EQ(metrics.latency().SumMicros(), 106u);
}

TEST(MetricsTest, BudgetCountersAppearInDumpAndSnapshot) {
  ServiceMetrics metrics;
  metrics.RecordBudget(/*tasks_spawned=*/5, /*tasks_completed=*/5,
                       /*deadline_exceeded=*/true);
  metrics.RecordBudget(/*tasks_spawned=*/2, /*tasks_completed=*/2,
                       /*deadline_exceeded=*/false);
  EXPECT_EQ(metrics.deadline_exceeded(), 1u);
  EXPECT_EQ(metrics.tasks_spawned(), 7u);
  EXPECT_EQ(metrics.tasks_completed(), 7u);
  std::string dump = metrics.Dump(CacheStats{});
  EXPECT_NE(dump.find("deadline_exceeded 1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("parallel_tasks_spawned 7"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("parallel_tasks_completed 7"), std::string::npos)
      << dump;
}

TEST(MetricsTest, CumulativeBucketsAreMonotone) {
  ServiceMetrics metrics;
  for (uint64_t us : {0u, 3u, 3u, 17u, 90u, 5000u, 123456u}) {
    metrics.RecordRequest(Regime::kSection3, us, false, false);
  }
  std::string dump = metrics.Dump(CacheStats{});
  // Parse back every latency_us_bucket value; the sequence must be
  // nondecreasing and end at the total count.
  uint64_t prev = 0;
  size_t pos = 0;
  int buckets_seen = 0;
  while ((pos = dump.find("latency_us_bucket{", pos)) != std::string::npos) {
    size_t space = dump.find(' ', pos);
    ASSERT_NE(space, std::string::npos);
    uint64_t value = std::stoull(dump.substr(space + 1));
    EXPECT_GE(value, prev);
    prev = value;
    ++buckets_seen;
    pos = space;
  }
  EXPECT_EQ(buckets_seen, LatencyHistogram::kBuckets);
  EXPECT_EQ(prev, 7u);
}

TEST(MetricsTest, SlowLogKeepsWorstTraces) {
  ServiceMetrics metrics;
  metrics.set_slow_log_capacity(2);
  trace::TraceContext ctx;
  int s = ctx.OpenSpan("decide");
  ctx.CloseSpan(s);
  metrics.RecordTrace(Regime::kSection3, 10, ctx, "fast");
  metrics.RecordTrace(Regime::kSection3, 500, ctx, "slow");
  metrics.RecordTrace(Regime::kSection3, 100, ctx, "medium");
  metrics.RecordTrace(Regime::kSection3, 1, ctx, "fastest");
  std::vector<SlowRequest> log = metrics.SlowLog();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].latency_micros, 500u);
  EXPECT_EQ(log[0].description, "slow");
  EXPECT_EQ(log[1].latency_micros, 100u);
  EXPECT_NE(log[0].trace_text.find("decide"), std::string::npos);
  std::string dump = metrics.Dump(CacheStats{});
  EXPECT_NE(dump.find("slow_request{rank=0,latency_us=500"),
            std::string::npos);
}

// --- tracing through the service --------------------------------------------

class ServiceTraceTest : public ::testing::Test {
 protected:
  void RegisterCars(ContainmentService* service) {
    Result<int64_t> v = service->catalogs().Register(
        "cars",
        "redcars(C, M, Y) :- cardesc(C, M, red, Y).\n"
        "allcars(C, M, Col) :- cardesc(C, M, Col, Y).\n",
        {});
    ASSERT_TRUE(v.ok()) << v.status().ToString();
  }

  DecisionRequest CarRequest() {
    DecisionRequest request;
    request.q1_text = "q1(C) :- cardesc(C, M, red, Y).";
    request.q2_text = "q2(C) :- cardesc(C, M, Col, Y).";
    request.catalog = "cars";
    request.bypass_cache = true;
    request.collect_trace = true;
    return request;
  }
};

TEST_F(ServiceTraceTest, LatencyIsNonzeroAndConsistentWithTheTrace) {
  ContainmentService service;
  RegisterCars(&service);
  WorkerContext ctx;
  DecisionResponse response = service.Decide(CarRequest(), &ctx);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  // A non-trivial decision (parse + plan + containment check) cannot take
  // zero time; steady_clock latencies are monotone so this is a hard floor.
  EXPECT_GT(response.latency_micros, 0u);
  ASSERT_NE(response.trace, nullptr);
  if (trace::kCompiledIn) {
    ASSERT_FALSE(response.trace->spans().empty());
    // The decision span is timed by the same steady clock inside the
    // request window, so it cannot exceed the request latency.
    EXPECT_LE(response.trace->root_duration_ns() / 1000,
              response.latency_micros);
  }
}

TEST_F(ServiceTraceTest, TraceCountersMatchIndependentRecount) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "trace hooks compiled out";
  ContainmentService service;
  RegisterCars(&service);
  WorkerContext ctx;
  DecisionResponse response = service.Decide(CarRequest(), &ctx);
  ASSERT_TRUE(response.status.ok());
  ASSERT_NE(response.trace, nullptr);
  EXPECT_TRUE(response.contained);
  EXPECT_EQ(response.regime, Regime::kSection3);

  // Recount with direct library calls against a fresh interner: the
  // service decision must have done exactly this work.
  Interner interner;
  ViewSet views = *ParseViews(
      "redcars(C, M, Y) :- cardesc(C, M, red, Y).\n"
      "allcars(C, M, Col) :- cardesc(C, M, Col, Y).\n",
      &interner);
  GoalQuery q1{*ParseProgram("q1(C) :- cardesc(C, M, red, Y).", &interner),
               interner.Intern("q1")};
  GoalQuery q2{*ParseProgram("q2(C) :- cardesc(C, M, Col, Y).", &interner),
               interner.Intern("q2")};
  Result<Program> p1 = MaximallyContainedPlan(q1.program, views, &interner);
  Result<Program> p2 = MaximallyContainedPlan(q2.program, views, &interner);
  ASSERT_TRUE(p1.ok() && p2.ok());
  Result<UnionQuery> plan1 = PlanToUnion(*p1, q1.goal, views, &interner);
  Result<UnionQuery> plan2 = PlanToUnion(*p2, q2.goal, views, &interner);
  ASSERT_TRUE(plan1.ok() && plan2.ok());
  EXPECT_EQ(response.trace->TotalCount(trace::Counter::kPlanDisjunctsKept),
            plan1->disjuncts.size() + plan2->disjuncts.size());
  uint64_t checks = 0;
  uint64_t hom_calls = 0;
  for (const Rule& d : plan1->disjuncts) {
    for (const Rule& target : plan2->disjuncts) {
      if (d.head.arity() != target.head.arity()) continue;
      ++checks;
      ++hom_calls;
      if (FindContainmentMapping(target, d).has_value()) break;
    }
  }
  EXPECT_EQ(response.trace->TotalCount(trace::Counter::kDisjunctChecks),
            checks);
  EXPECT_EQ(response.trace->TotalCount(trace::Counter::kHomMappingCalls),
            hom_calls);
}

TEST_F(ServiceTraceTest, UntracedRequestsCarryNoTrace) {
  ContainmentService service;
  RegisterCars(&service);
  WorkerContext ctx;
  DecisionRequest request = CarRequest();
  request.collect_trace = false;
  DecisionResponse response = service.Decide(request, &ctx);
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.trace, nullptr);
  EXPECT_TRUE(service.metrics().SlowLog().empty());
}

TEST_F(ServiceTraceTest, ConcurrentTracedBatchIsConsistent) {
  ServiceConfig config;
  config.trace_requests = true;  // every worker traces, concurrently
  config.slow_log_capacity = 3;
  ContainmentService service(config);
  RegisterCars(&service);
  std::vector<DecisionRequest> requests;
  for (int i = 0; i < 24; ++i) {
    DecisionRequest request = CarRequest();
    request.collect_trace = false;  // service-wide flag must cover this
    request.bypass_cache = (i % 2 == 0);
    requests.push_back(request);
  }
  std::vector<DecisionResponse> responses = service.ExecuteBatch(requests, 4);
  ASSERT_EQ(responses.size(), requests.size());
  for (const DecisionResponse& r : responses) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_TRUE(r.contained);
    ASSERT_NE(r.trace, nullptr);
  }
  EXPECT_EQ(service.metrics().requests(), requests.size());
  EXPECT_LE(service.metrics().SlowLog().size(), 3u);
  if (trace::kCompiledIn) {
    EXPECT_FALSE(service.metrics().SlowLog().empty());
    // Every non-cache-hit decision opened exactly one "decide" span.
    EXPECT_GE(service.metrics().PhaseCalls("decide"), 12u);
    EXPECT_GT(service.metrics().PhaseNanos("decide"), 0u);
    EXPECT_GT(service.metrics().RegimeCounterTotal(
                  Regime::kSection3, trace::Counter::kHomMappingCalls),
              0u);
  }
  std::string dump = service.metrics().Dump(service.cache().Stats());
  EXPECT_NE(dump.find("latency_us_count 24"), std::string::npos);
}

TEST_F(ServiceTraceTest, ExplainVerbReturnsSpanTree) {
  ContainmentService service;
  ServerSession session(&service);
  session.HandleLine("CATALOG c VIEW v(X) :- p(X, Y).");
  session.HandleLine("DEFINE a a(X) :- p(X, Y).");
  session.HandleLine("DEFINE b b(X) :- p(X, Z).");
  std::string out = session.HandleLine("EXPLAIN a b @c");
  EXPECT_EQ(out.rfind("YES section3 MISS", 0), 0u) << out;
  if (trace::kCompiledIn) {
    EXPECT_NE(out.find("decide"), std::string::npos) << out;
    EXPECT_NE(out.find("containment_check"), std::string::npos) << out;
    EXPECT_NE(out.find("hom_mapping_calls="), std::string::npos) << out;
  }
  std::string json_out = session.HandleLine("EXPLAIN JSON a b @c");
  EXPECT_EQ(json_out.rfind("YES section3 MISS", 0), 0u) << json_out;
  if (trace::kCompiledIn) {
    EXPECT_NE(json_out.find("\"traceEvents\""), std::string::npos)
        << json_out;
  } else {
    EXPECT_NE(json_out.find("compiled out"), std::string::npos) << json_out;
  }
  // EXPLAIN bypasses the cache, so a following CONTAINED? still misses.
  EXPECT_EQ(session.HandleLine("EXPLAIN zzz b @c").rfind("ERR", 0), 0u);
  session.HandleLine("BATCH BEGIN");
  EXPECT_EQ(session.HandleLine("EXPLAIN a b @c").rfind("ERR", 0), 0u);
  session.HandleLine("BATCH END");
}

}  // namespace
}  // namespace relcont
