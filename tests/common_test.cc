#include <gtest/gtest.h>

#include "common/interner.h"
#include "common/rational.h"
#include "common/status.h"

namespace relcont {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arity");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arity");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnsafe), "Unsafe");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnsupported), "Unsupported");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kBoundReached), "BoundReached");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Unsupported("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

Result<int> Halve(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  RELCONT_ASSIGN_OR_RETURN(int half, Halve(x));
  return Halve(half);
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> err = Quarter(6);  // 6/2 = 3, odd
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(InternerTest, InternIsIdempotent) {
  Interner interner;
  SymbolId a = interner.Intern("foo");
  SymbolId b = interner.Intern("foo");
  SymbolId c = interner.Intern("bar");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(interner.NameOf(a), "foo");
  EXPECT_EQ(interner.NameOf(c), "bar");
}

TEST(InternerTest, LookupMissesWithoutIntern) {
  Interner interner;
  EXPECT_EQ(interner.Lookup("ghost"), kInvalidSymbol);
  interner.Intern("ghost");
  EXPECT_NE(interner.Lookup("ghost"), kInvalidSymbol);
}

TEST(InternerTest, FreshAvoidsCollisions) {
  Interner interner;
  interner.Intern("_v0");
  SymbolId f = interner.Fresh("_v");
  EXPECT_EQ(interner.NameOf(f), "_v1");
  SymbolId g = interner.Fresh("_v");
  EXPECT_NE(f, g);
}

TEST(RationalTest, NormalizesOnConstruction) {
  Rational r(4, 8);
  EXPECT_EQ(r.num(), 1);
  EXPECT_EQ(r.den(), 2);
  Rational neg(3, -6);
  EXPECT_EQ(neg.num(), -1);
  EXPECT_EQ(neg.den(), 2);
  Rational zero(0, 5);
  EXPECT_EQ(zero.den(), 1);
}

TEST(RationalTest, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1), Rational(0));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(1970), Rational(1969));
}

TEST(RationalTest, ParseForms) {
  Rational r;
  ASSERT_TRUE(Rational::Parse("1970", &r));
  EXPECT_EQ(r, Rational(1970));
  ASSERT_TRUE(Rational::Parse("-3", &r));
  EXPECT_EQ(r, Rational(-3));
  ASSERT_TRUE(Rational::Parse("12.5", &r));
  EXPECT_EQ(r, Rational(25, 2));
  ASSERT_TRUE(Rational::Parse("25/2", &r));
  EXPECT_EQ(r, Rational(25, 2));
  ASSERT_TRUE(Rational::Parse("-1.25", &r));
  EXPECT_EQ(r, Rational(-5, 4));
  EXPECT_FALSE(Rational::Parse("", &r));
  EXPECT_FALSE(Rational::Parse("abc", &r));
  EXPECT_FALSE(Rational::Parse("1/0", &r));
}

TEST(RationalTest, MidpointIsStrictlyBetween) {
  Rational a(1), b(2);
  Rational m = Rational::Midpoint(a, b);
  EXPECT_LT(a, m);
  EXPECT_LT(m, b);
  EXPECT_EQ(m, Rational(3, 2));
  // Density: midpoints keep working at tiny gaps.
  Rational c(999, 1000), d(1);
  Rational m2 = Rational::Midpoint(c, d);
  EXPECT_LT(c, m2);
  EXPECT_LT(m2, d);
}

TEST(RationalTest, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
}

TEST(RationalTest, ToStringForms) {
  EXPECT_EQ(Rational(7).ToString(), "7");
  EXPECT_EQ(Rational(1, 2).ToString(), "1/2");
  EXPECT_EQ(Rational(-3, 2).ToString(), "-3/2");
}

}  // namespace
}  // namespace relcont
