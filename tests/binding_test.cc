#include <algorithm>
#include <gtest/gtest.h>

#include "binding/dom_plan.h"
#include "datalog/parser.h"
#include "eval/evaluator.h"

namespace relcont {
namespace {

class BindingTest : public ::testing::Test {
 protected:
  ViewSet V(const std::string& text) {
    Result<ViewSet> v = ParseViews(text, &interner_);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return *v;
  }
  Program P(const std::string& text) {
    Result<Program> p = ParseProgram(text, &interner_);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return *p;
  }
  Rule R(const std::string& text) {
    Result<Rule> r = ParseRule(text, &interner_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }
  Database D(const std::string& text) {
    Result<Database> d = ParseDatabase(text, &interner_);
    EXPECT_TRUE(d.ok()) << d.status().ToString();
    return *d;
  }
  SymbolId S(const char* name) { return interner_.Intern(name); }
  Adornment A(const char* text) {
    Result<Adornment> a = Adornment::Parse(text);
    EXPECT_TRUE(a.ok());
    return *a;
  }

  Interner interner_;
};

TEST_F(BindingTest, AdornmentParseAndPrint) {
  Adornment a = A("fbf");
  EXPECT_EQ(a.arity(), 3);
  EXPECT_FALSE(a.IsBound(0));
  EXPECT_TRUE(a.IsBound(1));
  EXPECT_FALSE(a.IsBound(2));
  EXPECT_TRUE(a.HasBoundPosition());
  EXPECT_EQ(a.ToString(), "fbf");
  EXPECT_FALSE(Adornment::Parse("fxb").ok());
  EXPECT_FALSE(Adornment::AllFree(2).HasBoundPosition());
}

TEST_F(BindingTest, ExecutabilityDefinition41) {
  BindingPatterns patterns;
  patterns.Set(S("redcars"), A("fbf"));
  // The paper's example: the model must be known before calling RedCars.
  EXPECT_FALSE(IsRuleExecutable(
      R("p(C, Y) :- redcars(C, M, Y)."), patterns));
  EXPECT_TRUE(IsRuleExecutable(
      R("p(C, Y) :- models(M), redcars(C, M, Y)."), patterns));
  // A constant in the bound position is fine ("cheating" plans, which the
  // sound-plan discipline rules out separately).
  EXPECT_TRUE(IsRuleExecutable(
      R("p(C, Y) :- redcars(C, corolla, Y)."), patterns));
}

TEST_F(BindingTest, ExecutabilityIsOrderSensitive) {
  BindingPatterns patterns;
  patterns.Set(S("lookup"), A("bf"));
  Rule bad = R("p(Y) :- lookup(X, Y), seed(X).");
  EXPECT_FALSE(IsRuleExecutable(bad, patterns));
  std::optional<Rule> fixed = ReorderForExecutability(bad, patterns);
  ASSERT_TRUE(fixed.has_value());
  EXPECT_TRUE(IsRuleExecutable(*fixed, patterns));
  EXPECT_EQ(fixed->body[0].predicate, S("seed"));
}

TEST_F(BindingTest, ReorderFailsWhenImpossible) {
  BindingPatterns patterns;
  patterns.Set(S("a"), A("bf"));
  patterns.Set(S("b"), A("bf"));
  // a needs X which only b outputs, and b needs Y which only a outputs.
  Rule rule = R("p(X, Y) :- a(X, Y), b(Y, X).");
  EXPECT_FALSE(ReorderForExecutability(rule, patterns).has_value());
}

TEST_F(BindingTest, ExecutablePlanGuardsAndDomRules) {
  ViewSet views = V(
      "isbns(I) :- book(I, T).\n"
      "pricelookup(I, P) :- price(I, P).\n");
  BindingPatterns patterns;
  patterns.Set(S("pricelookup"), A("bf"));
  Program query = P("q(T, P) :- book(I, T), price(I, P).");
  Result<ExecutablePlanResult> plan =
      ExecutablePlan(query, views, patterns, &interner_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Expected rules: the query; book-inverse (from isbns); price-inverse
  // guarded by dom; dom rules for isbns' free column and pricelookup's
  // free column. No constants, so no dom facts.
  const Program& prog = plan->program;
  SymbolId dom = plan->dom_predicate;
  int guarded_inverse = 0;
  int dom_rules = 0;
  for (const Rule& r : prog.rules) {
    bool has_guard = false;
    for (const Atom& a : r.body) {
      if (a.predicate == dom) has_guard = true;
    }
    if (r.head.predicate == dom) {
      ++dom_rules;
    } else if (has_guard) {
      ++guarded_inverse;
    }
  }
  EXPECT_EQ(guarded_inverse, 1);  // price-inverse needs dom(I)
  EXPECT_EQ(dom_rules, 2);        // dom(I) from isbns, dom(P) from lookup
  EXPECT_TRUE(prog.IsRecursive() ||
              !prog.RecursivePredicates().count(dom));
}

TEST_F(BindingTest, ReachableCertainAnswersNeedSeeds) {
  // Amazon-style: prices only by ISBN; ISBNs come from the catalog.
  ViewSet views = V(
      "isbns(I) :- book(I, T).\n"
      "pricelookup(I, P) :- price(I, P).\n");
  BindingPatterns patterns;
  patterns.Set(S("pricelookup"), A("bf"));
  Program query = P("q(P) :- price(I, P).");
  Database inst = D(
      "isbns(i1).\n"
      "pricelookup(i1, 10).\n"
      "pricelookup(i2, 20).\n");
  Result<std::vector<Tuple>> answers = ReachableCertainAnswers(
      query, S("q"), views, patterns, inst, &interner_);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  // i2's price is unreachable: no way to learn i2.
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0][0].value().number(), Rational(10));
}

TEST_F(BindingTest, WithoutPatternsAllAnswersReachable) {
  ViewSet views = V(
      "isbns(I) :- book(I, T).\n"
      "pricelookup(I, P) :- price(I, P).\n");
  BindingPatterns none;
  Program query = P("q(P) :- price(I, P).");
  Database inst = D("pricelookup(i1, 10). pricelookup(i2, 20).");
  Result<std::vector<Tuple>> answers = ReachableCertainAnswers(
      query, S("q"), views, none, inst, &interner_);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 2u);
}

TEST_F(BindingTest, RecursiveDomChainsUnlockDeepAnswers) {
  // [DGL]: recursion is necessary — values discovered from one lookup seed
  // the next.
  ViewSet views = V(
      "seed(X) :- link(a, X).\n"
      "next(X, Y) :- link(X, Y).\n");
  BindingPatterns patterns;
  patterns.Set(S("next"), A("bf"));
  Program query = P("q(Y) :- link(X, Y).");
  Database inst = D(
      "seed(b).\n"
      "next(b, c). next(c, d). next(z, zz).\n");
  Result<std::vector<Tuple>> answers = ReachableCertainAnswers(
      query, S("q"), views, patterns, inst, &interner_);
  ASSERT_TRUE(answers.ok());
  // Reachable: b (seed), c (next from b), d (next from c); zz requires z,
  // which is never discovered. 'a' is a constant of V, so dom(a) holds and
  // next(a, ...) could fire, but the instance has no such tuple.
  std::set<std::string> got;
  for (const Tuple& t : *answers) {
    got.insert(interner_.NameOf(t[0].value().symbol()));
  }
  EXPECT_EQ(got, (std::set<std::string>{"b", "c", "d"}));
}

TEST_F(BindingTest, PlanUsesOnlyQueryAndViewConstants) {
  // Definition 4.2: sound plans introduce no new constants. The plan may
  // probe with 'corolla' (a view constant) but must not invent 'pinto'.
  ViewSet views = V("bymodel(C, Y) :- car(C, corolla, Y).");
  BindingPatterns patterns;
  patterns.Set(S("bymodel"), A("ff"));
  Program query = P("q(C) :- car(C, M, Y).");
  Result<ExecutablePlanResult> plan =
      ExecutablePlan(query, views, patterns, &interner_);
  ASSERT_TRUE(plan.ok());
  bool has_corolla_fact = false;
  for (const Rule& r : plan->program.rules) {
    if (r.head.predicate == plan->dom_predicate && r.body.empty()) {
      EXPECT_EQ(r.head.args[0].value().symbol(), S("corolla"));
      has_corolla_fact = true;
    }
  }
  EXPECT_TRUE(has_corolla_fact);
}

TEST_F(BindingTest, GeneratedPlansAreThemselvesExecutable) {
  // The construction must produce rules that satisfy its own Definition
  // 4.1: dom guards precede the source subgoal whose bound positions they
  // feed.
  ViewSet views = V(
      "isbns(I) :- book(I, T).\n"
      "pricelookup(I, P) :- price(I, P).\n"
      "review(I, R) :- opinion(I, R).\n");
  BindingPatterns patterns;
  patterns.Set(S("pricelookup"), A("bf"));
  patterns.Set(S("review"), A("bf"));
  Program query = P("q(T, P, R) :- book(I, T), price(I, P), opinion(I, R).");
  Result<ExecutablePlanResult> plan =
      ExecutablePlan(query, views, patterns, &interner_);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(IsProgramExecutable(plan->program, patterns));
}

TEST_F(BindingTest, ExecutablePlanRejectsComparisons) {
  ViewSet views = V("v(X) :- p(X).");
  BindingPatterns patterns;
  Program query = P("q(X) :- p(X), X < 3.");
  EXPECT_EQ(ExecutablePlan(query, views, patterns, &interner_)
                .status()
                .code(),
            StatusCode::kUnsupported);
}

TEST_F(BindingTest, ExpandedPlanSeparatesPlanRelationsFromStored) {
  ViewSet views = V(
      "isbns(I) :- book(I, T).\n"
      "pricelookup(I, P) :- price(I, P).\n");
  BindingPatterns patterns;
  patterns.Set(S("pricelookup"), A("bf"));
  Program query = P("q(P) :- price(I, P).");
  Result<ExecutablePlanResult> plan =
      ExecutablePlan(query, views, patterns, &interner_);
  ASSERT_TRUE(plan.ok());
  Result<Program> expanded = ExpandExecutablePlanForContainment(
      *plan, S("q"), views, &interner_);
  ASSERT_TRUE(expanded.ok()) << expanded.status().ToString();
  // EDB schema is the mediated schema; the plan's own reconstruction of
  // price is a distinct (primed) IDB predicate.
  std::set<SymbolId> edb = expanded->EdbPredicates();
  EXPECT_TRUE(edb.count(S("book")) > 0);
  EXPECT_TRUE(edb.count(S("price")) > 0);
  std::set<SymbolId> idb = expanded->IdbPredicates();
  EXPECT_TRUE(idb.count(S("q")) > 0);
  EXPECT_EQ(idb.count(S("price")), 0u);
  // Recursion survives only through dom.
  EXPECT_EQ(expanded->RecursivePredicates(),
            std::set<SymbolId>{plan->dom_predicate});
}

TEST_F(BindingTest, ExpandedPlanDropsUncoveredMediatedRelations) {
  // No source covers relation s, so the query rule through it vanishes.
  ViewSet views = V("v(X) :- p(X).");
  BindingPatterns patterns;
  Program query = P(
      "q(X) :- p(X).\n"
      "q(X) :- s(X).\n");
  Result<ExecutablePlanResult> plan =
      ExecutablePlan(query, views, patterns, &interner_);
  ASSERT_TRUE(plan.ok());
  Result<Program> expanded = ExpandExecutablePlanForContainment(
      *plan, S("q"), views, &interner_);
  ASSERT_TRUE(expanded.ok());
  int q_rules = 0;
  for (const Rule& r : expanded->rules) {
    if (r.head.predicate == S("q")) ++q_rules;
  }
  EXPECT_EQ(q_rules, 1);
}

// Cross-validation: plan-based reachable certain answers equal evaluation
// of the expanded program on the canonical completion... here simply: the
// reachable answers are always a subset of the unrestricted certain
// answers.
TEST_F(BindingTest, ReachableAnswersSubsetOfUnrestricted) {
  ViewSet views = V(
      "seed(X) :- link(a, X).\n"
      "next(X, Y) :- link(X, Y).\n");
  Program query = P("q(Y) :- link(X, Y).");
  Database inst = D("seed(b). next(b, c). next(z, zz).");
  BindingPatterns restricted;
  restricted.Set(S("next"), A("bf"));
  BindingPatterns free;
  Result<std::vector<Tuple>> with = ReachableCertainAnswers(
      query, S("q"), views, restricted, inst, &interner_);
  Result<std::vector<Tuple>> without = ReachableCertainAnswers(
      query, S("q"), views, free, inst, &interner_);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  for (const Tuple& t : *with) {
    EXPECT_NE(std::find(without->begin(), without->end(), t),
              without->end());
  }
  EXPECT_LT(with->size(), without->size());
}

}  // namespace
}  // namespace relcont
