#include "trace/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "containment/canonical.h"
#include "containment/cq_containment.h"
#include "containment/homomorphism.h"
#include "datalog/parser.h"
#include "datalog/unfold.h"
#include "binding/adornment.h"
#include "relcont/binding_containment.h"
#include "relcont/decide.h"
#include "relcont/pi2p_reduction.h"
#include "relcont/relative_containment.h"
#include "rewriting/inverse_rules.h"

namespace relcont {
namespace {

using trace::Counter;
using trace::TraceContext;
using trace::TraceScope;

// --- context mechanics ------------------------------------------------------

TEST(TraceContextTest, SpansNestAndCountersAttachToInnermost) {
  TraceContext ctx;
  int outer = ctx.OpenSpan("outer");
  ctx.AddCount(Counter::kPlanRules, 2);
  int inner = ctx.OpenSpan("inner");
  ctx.AddCount(Counter::kPlanRules, 5);
  ctx.CloseSpan(inner);
  ctx.AddCount(Counter::kHomBacktracks, 1);
  ctx.CloseSpan(outer);

  ASSERT_EQ(ctx.spans().size(), 2u);
  const trace::SpanNode& o = ctx.spans()[0];
  const trace::SpanNode& i = ctx.spans()[1];
  EXPECT_STREQ(o.name, "outer");
  EXPECT_EQ(o.parent, -1);
  EXPECT_EQ(o.depth, 0);
  EXPECT_STREQ(i.name, "inner");
  EXPECT_EQ(i.parent, 0);
  EXPECT_EQ(i.depth, 1);
  EXPECT_EQ(o.counters[static_cast<size_t>(Counter::kPlanRules)], 2u);
  EXPECT_EQ(i.counters[static_cast<size_t>(Counter::kPlanRules)], 5u);
  EXPECT_EQ(o.counters[static_cast<size_t>(Counter::kHomBacktracks)], 1u);
  EXPECT_EQ(ctx.TotalCount(Counter::kPlanRules), 7u);
}

TEST(TraceContextTest, CloseAbsorbsUnclosedChildren) {
  TraceContext ctx;
  int outer = ctx.OpenSpan("outer");
  ctx.OpenSpan("leaked");
  ctx.CloseSpan(outer);  // must close "leaked" too
  for (const trace::SpanNode& s : ctx.spans()) {
    EXPECT_GE(s.end_ns, s.start_ns) << s.name;
  }
  // A new span after that is a fresh root, not a child of a closed span.
  int next = ctx.OpenSpan("next");
  EXPECT_EQ(ctx.spans()[next].depth, 0);
}

TEST(TraceContextTest, ScopeInstallsAndRestores) {
  EXPECT_EQ(trace::CurrentTrace(), nullptr);
  TraceContext outer_ctx;
  {
    TraceScope outer(&outer_ctx);
    EXPECT_EQ(trace::CurrentTrace(), &outer_ctx);
    TraceContext inner_ctx;
    {
      TraceScope inner(&inner_ctx);
      EXPECT_EQ(trace::CurrentTrace(), &inner_ctx);
    }
    EXPECT_EQ(trace::CurrentTrace(), &outer_ctx);
  }
  EXPECT_EQ(trace::CurrentTrace(), nullptr);
}

TEST(TraceContextTest, NoScopeMeansNoRecording) {
  Interner interner;
  Rule from = *ParseRule("q(X) :- e(X, Y).", &interner);
  Rule to = *ParseRule("q(A) :- e(A, B).", &interner);
  // No TraceScope installed: the instrumented search must record nothing
  // anywhere (there is nowhere to record to) and still work.
  EXPECT_TRUE(FindContainmentMapping(from, to).has_value());
  EXPECT_EQ(trace::CurrentTrace(), nullptr);
}

TEST(TraceContextTest, RenderingsContainSpansAndCounters) {
  TraceContext ctx;
  int s = ctx.OpenSpan("decide");
  ctx.AddCount(Counter::kHomMappingCalls, 3);
  ctx.CloseSpan(s);
  std::string text = ctx.ToText();
  EXPECT_NE(text.find("decide"), std::string::npos);
  EXPECT_NE(text.find("hom_mapping_calls=3"), std::string::npos);
  std::string json = ctx.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"decide\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"hom_mapping_calls\":3"), std::string::npos);
}

// --- well-formedness of recorded decision traces ----------------------------

void ExpectWellFormed(const TraceContext& ctx) {
  const std::vector<trace::SpanNode>& spans = ctx.spans();
  for (size_t i = 0; i < spans.size(); ++i) {
    const trace::SpanNode& s = spans[i];
    EXPECT_GE(s.end_ns, s.start_ns) << s.name;
    if (s.parent < 0) {
      EXPECT_EQ(s.depth, 0) << s.name;
      continue;
    }
    ASSERT_LT(s.parent, static_cast<int>(i)) << s.name;
    const trace::SpanNode& p = spans[s.parent];
    EXPECT_EQ(s.depth, p.depth + 1) << s.name;
    // A child's interval nests inside its parent's.
    EXPECT_GE(s.start_ns, p.start_ns) << s.name;
    EXPECT_LE(s.end_ns, p.end_ns) << s.name;
  }
  // Spans are recorded in opening order, so starts are nondecreasing.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].start_ns, spans[i - 1].start_ns);
  }
}

class TraceDecisionTest : public ::testing::Test {
 protected:
  GoalQuery GQ(const std::string& text, const char* goal) {
    Result<Program> p = ParseProgram(text, &interner_);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return GoalQuery{*p, interner_.Intern(goal)};
  }
  ViewSet V(const std::string& text) {
    Result<ViewSet> v = ParseViews(text, &interner_);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return *v;
  }

  Interner interner_;
};

TEST_F(TraceDecisionTest, DecisionTraceIsWellFormedAndNamesTheRegime) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "trace hooks compiled out";
  ViewSet views = V("v(X, Y) :- p(X, Y).");
  GoalQuery q1 = GQ("a(X) :- p(X, Y).", "a");
  GoalQuery q2 = GQ("b(X) :- p(X, Z).", "b");
  TraceContext ctx;
  {
    TraceScope scope(&ctx);
    Result<Decision> d = DecideRelativeContainment(q1, q2, views,
                                                   BindingPatterns{},
                                                   &interner_);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    EXPECT_TRUE(d->contained);
    EXPECT_EQ(d->regime, Regime::kSection3);
  }
  ExpectWellFormed(ctx);
  ASSERT_FALSE(ctx.spans().empty());
  EXPECT_STREQ(ctx.spans()[0].name, "decide");
  EXPECT_EQ(ctx.spans()[0].parent, -1);
  std::set<std::string> names;
  for (const trace::SpanNode& s : ctx.spans()) names.insert(s.name);
  EXPECT_TRUE(names.count("regime_section3"));
  EXPECT_TRUE(names.count("build_plans"));
  EXPECT_TRUE(names.count("containment_check"));
  EXPECT_GT(ctx.root_duration_ns(), 0u);
}

TEST_F(TraceDecisionTest, ComparisonRegimeTraceIsWellFormed) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "trace hooks compiled out";
  // Paper Example 1's comparison sources (Theorem 5.1 regime).
  ViewSet views = V(
      "redcars(C, M, Y) :- cardesc(C, M, red, Y).\n"
      "antiquecars(C, M, Y) :- cardesc(C, M, Col, Y), Y < 1970.\n"
      "caranddriver(M, R) :- review(M, R, 10).\n");
  GoalQuery q3 = GQ(
      "q3(C, R) :- cardesc(C, M, Col, Y), review(M, R, 10), Y < 1970.",
      "q3");
  GoalQuery q1 = GQ(
      "q1(C, R) :- cardesc(C, M, Col, Y), review(M, R, Rat), Y < 1980.",
      "q1");
  TraceContext ctx;
  {
    TraceScope scope(&ctx);
    Result<Decision> d = DecideRelativeContainment(q3, q1, views,
                                                   BindingPatterns{},
                                                   &interner_);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    EXPECT_EQ(d->regime, Regime::kTheorem51);
  }
  ExpectWellFormed(ctx);
  std::set<std::string> names;
  for (const trace::SpanNode& s : ctx.spans()) names.insert(s.name);
  EXPECT_TRUE(names.count("regime_theorem51"));
  EXPECT_TRUE(names.count("plan_comparison_aware"));
}

TEST_F(TraceDecisionTest, RecursiveRegimeTraceIsWellFormed) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "trace hooks compiled out";
  ViewSet views = V("ve(X, Y) :- e(X, Y).");
  GoalQuery q1 = GQ("a(X, Y) :- e(X, Y).", "a");
  GoalQuery q2 = GQ(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y).\n",
      "t");
  TraceContext ctx;
  {
    TraceScope scope(&ctx);
    Result<Decision> d = DecideRelativeContainment(q1, q2, views,
                                                   BindingPatterns{},
                                                   &interner_);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    EXPECT_EQ(d->regime, Regime::kTheorem32);
    EXPECT_TRUE(d->contained);
  }
  ExpectWellFormed(ctx);
  std::set<std::string> names;
  for (const trace::SpanNode& s : ctx.spans()) names.insert(s.name);
  EXPECT_TRUE(names.count("regime_theorem32"));
  EXPECT_TRUE(names.count("canonical_eval"));
  EXPECT_GT(ctx.TotalCount(Counter::kFrozenQueries), 0u);
}

// --- counters vs. independent recounts --------------------------------------

// Brute-force containment-mapping counter: enumerates EVERY assignment of
// the variables of `from` to terms occurring in `to` and checks the
// Chandra–Merlin conditions directly. Exponential and entirely independent
// of the backtracking search it double-checks.
uint64_t BruteForceMappingCount(const Rule& from, const Rule& to) {
  std::set<SymbolId> var_set;
  for (SymbolId v : from.HeadVariables()) var_set.insert(v);
  for (SymbolId v : from.BodyVariables()) var_set.insert(v);
  std::vector<SymbolId> vars(var_set.begin(), var_set.end());

  std::vector<Term> targets;
  auto add_target = [&targets](const Term& t) {
    if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
      targets.push_back(t);
    }
  };
  for (const Term& t : to.head.args) add_target(t);
  for (const Atom& a : to.body) {
    for (const Term& t : a.args) add_target(t);
  }

  uint64_t count = 0;
  std::vector<size_t> choice(vars.size(), 0);
  for (;;) {
    Substitution h;
    for (size_t i = 0; i < vars.size(); ++i) h.Bind(vars[i], targets[choice[i]]);
    bool ok = from.head.args.size() == to.head.args.size();
    for (size_t i = 0; ok && i < from.head.args.size(); ++i) {
      if (!(h.Apply(from.head.args[i]) == to.head.args[i])) ok = false;
    }
    for (size_t i = 0; ok && i < from.body.size(); ++i) {
      Atom mapped = h.Apply(from.body[i]);
      bool found = false;
      for (const Atom& target : to.body) {
        if (mapped == target) {
          found = true;
          break;
        }
      }
      ok = found;
    }
    if (ok) ++count;
    // Next assignment in the cartesian product.
    size_t d = 0;
    while (d < vars.size() && ++choice[d] == targets.size()) {
      choice[d] = 0;
      ++d;
    }
    if (d == vars.size()) break;
  }
  return count;
}

TEST_F(TraceDecisionTest, HomCountersMatchBruteForceRecount) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "trace hooks compiled out";
  struct Case {
    const char* from;
    const char* to;
  };
  const Case cases[] = {
      // Two ways to fold a 2-chain into a fork.
      {"q(X) :- e(X, Y).", "q(A) :- e(A, B), e(A, C)."},
      // A 2-chain into a 2-cycle: exactly one folding.
      {"q(X) :- e(X, Y), e(Y, Z).", "q(A) :- e(A, B), e(B, A)."},
      // A triangle into itself: the identity plus rotations that fix the
      // head.
      {"q(X) :- e(X, Y), e(Y, Z), e(Z, X).",
       "q(A) :- e(A, B), e(B, C), e(C, A)."},
      // No mapping: the target lacks the loop.
      {"q(X) :- e(X, X).", "q(A) :- e(A, B)."},
  };
  for (const Case& c : cases) {
    Rule from = *ParseRule(c.from, &interner_);
    Rule to = *ParseRule(c.to, &interner_);
    uint64_t expected = BruteForceMappingCount(from, to);

    TraceContext ctx;
    uint64_t visited = 0;
    {
      TraceScope scope(&ctx);
      ForEachContainmentMapping(from, to, [&](const Substitution&) {
        ++visited;
        return false;  // enumerate everything
      });
    }
    EXPECT_EQ(ctx.TotalCount(Counter::kHomMappingsFound), expected)
        << c.from << " into " << c.to;
    EXPECT_EQ(visited, expected) << c.from << " into " << c.to;
    EXPECT_EQ(ctx.TotalCount(Counter::kHomMappingCalls), 1u);
    // Every mapping found required at least one candidate per subgoal.
    if (expected > 0) {
      EXPECT_GE(ctx.TotalCount(Counter::kHomCandidatesTried),
                expected * from.body.size());
    }
  }
}

TEST_F(TraceDecisionTest, PlanAndDisjunctCountersMatchRecount) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "trace hooks compiled out";
  ViewSet views = V(
      "v1(X) :- p(X, Y).\n"
      "v2(X, Y) :- p(X, Y), r(Y).\n");
  GoalQuery q1 = GQ("a(X) :- p(X, Y).", "a");
  GoalQuery q2 = GQ("b(X) :- p(X, Z).", "b");

  TraceContext ctx;
  Result<RelativeContainmentResult> traced = [&]() {
    TraceScope scope(&ctx);
    return RelativelyContained(q1, q2, views, &interner_);
  }();
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();

  // Independent recount, outside any trace: rebuild both plans with the
  // same public API and count what the counters claim to count.
  Result<Program> p1 = MaximallyContainedPlan(q1.program, views, &interner_);
  Result<Program> p2 = MaximallyContainedPlan(q2.program, views, &interner_);
  ASSERT_TRUE(p1.ok() && p2.ok());
  Result<UnionQuery> u1 = UnfoldToUnion(*p1, q1.goal, &interner_);
  Result<UnionQuery> u2 = UnfoldToUnion(*p2, q2.goal, &interner_);
  ASSERT_TRUE(u1.ok() && u2.ok());
  Result<UnionQuery> plan1 = PlanToUnion(*p1, q1.goal, views, &interner_);
  Result<UnionQuery> plan2 = PlanToUnion(*p2, q2.goal, views, &interner_);
  ASSERT_TRUE(plan1.ok() && plan2.ok());

  // Each view body atom contributes one inverse rule, built once per plan.
  uint64_t inverse_rules = 0;
  for (const ViewDefinition& v : views.views()) {
    inverse_rules += v.rule.body.size();
  }
  EXPECT_EQ(ctx.TotalCount(Counter::kPlanRules), 2 * inverse_rules);
  EXPECT_EQ(ctx.TotalCount(Counter::kUnfoldDisjuncts),
            u1->disjuncts.size() + u2->disjuncts.size());
  EXPECT_EQ(ctx.TotalCount(Counter::kPlanDisjunctsKept),
            plan1->disjuncts.size() + plan2->disjuncts.size());
  EXPECT_EQ(ctx.TotalCount(Counter::kPlanDisjunctsDropped),
            (u1->disjuncts.size() + u2->disjuncts.size()) -
                (plan1->disjuncts.size() + plan2->disjuncts.size()));

  // Disjunct checks: RelativelyContained asks, for every disjunct of
  // plan1, whether it maps into SOME disjunct of plan2, trying plan2's
  // disjuncts in order until one admits a mapping. Recount that loop with
  // FindContainmentMapping, the single-pair primitive.
  uint64_t checks = 0;
  uint64_t hom_calls = 0;
  for (const Rule& d : plan1->disjuncts) {
    for (const Rule& target : plan2->disjuncts) {
      if (d.head.arity() != target.head.arity()) continue;
      ++checks;
      ++hom_calls;
      if (FindContainmentMapping(target, d).has_value()) break;
    }
  }
  EXPECT_EQ(ctx.TotalCount(Counter::kDisjunctChecks), checks);
  EXPECT_EQ(ctx.TotalCount(Counter::kHomMappingCalls), hom_calls);
}

TEST_F(TraceDecisionTest, FrozenCountersMatchRecount) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "trace hooks compiled out";
  Rule q = *ParseRule("q(X) :- e(X, Y), e(Y, Z), f(Z, c).", &interner_);
  TraceContext ctx;
  Result<FrozenQuery> frozen = [&]() {
    TraceScope scope(&ctx);
    return FreezeRule(q, &interner_);
  }();
  ASSERT_TRUE(frozen.ok()) << frozen.status().ToString();
  EXPECT_EQ(ctx.TotalCount(Counter::kFrozenQueries), 1u);
  EXPECT_EQ(ctx.TotalCount(Counter::kFrozenAtoms), q.body.size());
  // FreezeRule invents one fresh constant per distinct variable.
  EXPECT_EQ(ctx.TotalCount(Counter::kFrozenConstants), q.Variables().size());
}

TEST_F(TraceDecisionTest, DomCountersMatchResultFields) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "trace hooks compiled out";
  ViewSet views = V("v(X, Y) :- p(X, Y).");
  BindingPatterns patterns;
  patterns.Set(interner_.Intern("v"), *Adornment::Parse("bf"));
  GoalQuery q1 = GQ("a(Y) :- p(c, Y).", "a");
  GoalQuery q2 = GQ("b(Y) :- p(c, Y).", "b");
  TraceContext ctx;
  Result<BindingRelativeResult> r = [&]() {
    TraceScope scope(&ctx);
    return RelativelyContainedWithBindingPatterns(q1, q2, views, patterns,
                                                 &interner_);
  }();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(ctx.TotalCount(Counter::kDomTreeOptions),
            static_cast<uint64_t>(r->tree_options));
  EXPECT_EQ(ctx.TotalCount(Counter::kDomCoresChecked),
            static_cast<uint64_t>(r->cores_checked));
  std::set<std::string> names;
  for (const trace::SpanNode& s : ctx.spans()) names.insert(s.name);
  // Called below DecideRelativeContainment, so no regime_* span here —
  // the dom pipeline's own phases are the markers.
  EXPECT_TRUE(names.count("dom_containment"));
  EXPECT_TRUE(names.count("plan_executable"));
}

// --- budget and parallel counters -------------------------------------------

TEST_F(TraceDecisionTest, BoundHitsCounterTracksBudgetTrips) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "trace hooks compiled out";
  ViewSet views = V("v(X, Y) :- p(X, Y).");
  GoalQuery q1 = GQ("a(X) :- p(X, Y), p(Y, Z).", "a");
  GoalQuery q2 = GQ("b(X) :- p(X, Y).", "b");
  DecideOptions options;
  options.max_steps = 1;
  TraceContext ctx;
  Result<Decision> r = [&]() {
    TraceScope scope(&ctx);
    return DecideRelativeContainment(q1, q2, views, {}, &interner_, options);
  }();
  // The one-step budget trips, the trip mints exactly the uniform
  // kBoundReached status, and every mint bumps the counter.
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBoundReached)
      << r.status().ToString();
  EXPECT_GE(ctx.TotalCount(Counter::kBoundHits), 1u);

  // An unbounded rerun of the same question mints no bound status.
  TraceContext clean;
  Result<Decision> ok = [&]() {
    TraceScope scope(&clean);
    return DecideRelativeContainment(q1, q2, views, {}, &interner_, {});
  }();
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(clean.TotalCount(Counter::kBoundHits), 0u);
}

TEST_F(TraceDecisionTest, ParallelScanCountersTrackHelperFanOut) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "trace hooks compiled out";
  // A Π₂ᵖ reduction with 2^3 = 8 plan disjuncts gives the scan something
  // to share across helpers.
  QbfFormula f = RandomQbf(/*num_exists=*/2, /*num_forall=*/3,
                           /*num_clauses=*/6, /*seed=*/5);
  Result<Pi2pInstance> inst = BuildPi2pReduction(f, &interner_);
  ASSERT_TRUE(inst.ok()) << inst.status().ToString();

  TraceContext serial;
  Result<Decision> serial_r = [&]() {
    TraceScope scope(&serial);
    return DecideRelativeContainment(inst->q2, inst->q1, inst->views, {},
                                     &interner_, {});
  }();
  ASSERT_TRUE(serial_r.ok()) << serial_r.status().ToString();
  EXPECT_EQ(serial.TotalCount(Counter::kParallelTasksSpawned), 0u);

  DecideOptions options;
  options.parallel_workers = 4;
  TraceContext parallel;
  Result<Decision> parallel_r = [&]() {
    TraceScope scope(&parallel);
    return DecideRelativeContainment(inst->q2, inst->q1, inst->views, {},
                                     &interner_, options);
  }();
  ASSERT_TRUE(parallel_r.ok()) << parallel_r.status().ToString();
  EXPECT_EQ(parallel_r->contained, serial_r->contained);
  // The fan-out actually spawned helpers (recorded on the calling thread,
  // where the trace context lives), bounded by the requested width.
  EXPECT_GE(parallel.TotalCount(Counter::kParallelTasksSpawned), 1u);
  EXPECT_LE(parallel.TotalCount(Counter::kParallelTasksSpawned), 3u);
}

}  // namespace
}  // namespace relcont
