#include <algorithm>
#include <gtest/gtest.h>

#include "containment/cq_containment.h"
#include "containment/canonical.h"
#include "datalog/parser.h"
#include "eval/evaluator.h"
#include "relcont/certain_answers.h"
#include "relcont/pi2p_reduction.h"
#include "relcont/workload.h"

namespace relcont {
namespace {

// ---------------------------------------------------------------------------
// Theorem 3.3 reduction: structure and hand-checked instances.
// ---------------------------------------------------------------------------

class Pi2pTest : public ::testing::Test {
 protected:
  Interner interner_;
};

// The paper's running formula: (x1 ∨ x2 ∨ y1) ∧ (¬x1 ∨ ¬x2 ∨ y2).
QbfFormula PaperFormula() {
  QbfFormula f;
  f.num_exists = 2;
  f.num_forall = 2;
  f.clauses.push_back({{{0, false}, {1, false}, {2, false}}});
  f.clauses.push_back({{{0, true}, {1, true}, {3, false}}});
  return f;
}

TEST_F(Pi2pTest, PaperFormulaStructure) {
  Result<Pi2pInstance> inst = BuildPi2pReduction(PaperFormula(), &interner_);
  ASSERT_TRUE(inst.ok()) << inst.status().ToString();
  const Rule& q1 = inst->q1.program.rules[0];
  const Rule& q2 = inst->q2.program.rules[0];
  // Q1: one r-atom per clause plus one e-atom per universal variable.
  EXPECT_EQ(q1.body.size(), 2u + 2u);
  // Q2: seven satisfying rows per clause plus the e-atoms.
  EXPECT_EQ(q2.body.size(), 14u + 2u);
  // Views: one v per clause, two w per universal variable.
  EXPECT_EQ(inst->views.size(), 2u + 4u);
}

TEST_F(Pi2pTest, PaperFormulaIsForallExistsSatisfiable) {
  // x1 = 1, x2 = 0 satisfies both clauses for every y.
  EXPECT_TRUE(ForallExistsSatisfiable(PaperFormula()));
  Result<Pi2pInstance> inst = BuildPi2pReduction(PaperFormula(), &interner_);
  ASSERT_TRUE(inst.ok());
  Result<RelativeContainmentResult> r =
      RelativelyContained(inst->q2, inst->q1, inst->views, &interner_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->contained);
}

TEST_F(Pi2pTest, UnsatisfiableInstanceIsNotContained) {
  // (x1 ∨ y1 ∨ y2) ∧ (¬x1 ∨ y1 ∨ y2): for y1 = y2 = 0 we need x1 ∧ ¬x1.
  QbfFormula f;
  f.num_exists = 1;
  f.num_forall = 2;
  f.clauses.push_back({{{0, false}, {1, false}, {2, false}}});
  f.clauses.push_back({{{0, true}, {1, false}, {2, false}}});
  EXPECT_FALSE(ForallExistsSatisfiable(f));
  Result<Pi2pInstance> inst = BuildPi2pReduction(f, &interner_);
  ASSERT_TRUE(inst.ok());
  Result<RelativeContainmentResult> r =
      RelativelyContained(inst->q2, inst->q1, inst->views, &interner_);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->contained);
}

TEST_F(Pi2pTest, RejectsRepeatedClauseVariables) {
  QbfFormula f;
  f.num_exists = 2;
  f.num_forall = 0;
  f.clauses.push_back({{{0, false}, {0, true}, {1, false}}});
  EXPECT_FALSE(BuildPi2pReduction(f, &interner_).ok());
}

TEST_F(Pi2pTest, PlanSizesGrowExponentiallyInForallCount) {
  // The unfolded plans have 2^m disjuncts — the Π₂ᴾ shape made visible.
  for (int m = 1; m <= 3; ++m) {
    QbfFormula f = RandomQbf(2, m, 2, /*seed=*/42);
    Result<Pi2pInstance> inst = BuildPi2pReduction(f, &interner_);
    ASSERT_TRUE(inst.ok());
    Result<RelativeContainmentResult> r =
        RelativelyContained(inst->q1, inst->q1, inst->views, &interner_);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->plan1.disjuncts.size(), size_t{1} << m);
  }
}

// Parameterized sweep: the decision procedure agrees with brute-force ∀∃
// evaluation on random formulas.
class Pi2pAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(Pi2pAgreementTest, DecisionMatchesBruteForce) {
  Interner interner;
  uint64_t seed = static_cast<uint64_t>(GetParam());
  QbfFormula f = RandomQbf(/*num_exists=*/2, /*num_forall=*/2,
                           /*num_clauses=*/3, seed);
  Result<Pi2pInstance> inst = BuildPi2pReduction(f, &interner);
  ASSERT_TRUE(inst.ok());
  Result<RelativeContainmentResult> r =
      RelativelyContained(inst->q2, inst->q1, inst->views, &interner);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->contained, ForallExistsSatisfiable(f)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Pi2pAgreementTest, ::testing::Range(0, 40));

// With no universal variables the reduction degenerates to the classical
// Aho–Sagiv–Ullman SAT reduction, and relative containment coincides with
// classical containment.
class SatAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(SatAgreementTest, ClassicalContainmentMatchesSat) {
  Interner interner;
  uint64_t seed = static_cast<uint64_t>(GetParam());
  QbfFormula f = RandomQbf(/*num_exists=*/3, /*num_forall=*/0,
                           /*num_clauses=*/4, seed);
  Result<Pi2pInstance> inst = BuildPi2pReduction(f, &interner);
  ASSERT_TRUE(inst.ok());
  Result<bool> classical = CqContained(inst->q2.program.rules[0],
                                       inst->q1.program.rules[0]);
  ASSERT_TRUE(classical.ok());
  EXPECT_EQ(*classical, Satisfiable(f)) << "seed " << seed;
  Result<RelativeContainmentResult> relative =
      RelativelyContained(inst->q2, inst->q1, inst->views, &interner);
  ASSERT_TRUE(relative.ok());
  EXPECT_EQ(relative->contained, *classical);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatAgreementTest, ::testing::Range(0, 40));

// ---------------------------------------------------------------------------
// Random conjunctive queries: containment agrees with the canonical
// database oracle (freeze the left query, evaluate the right one).
// ---------------------------------------------------------------------------

class CqOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(CqOracleTest, ContainmentMatchesFrozenEvaluation) {
  Interner interner;
  RandomQueryOptions opts;
  opts.seed = static_cast<uint64_t>(GetParam());
  opts.num_atoms = 3;
  opts.num_variables = 3;
  opts.num_predicates = 2;
  opts.head_arity = 1;
  Rule q1 = RandomConjunctiveQuery(opts, "g1", &interner);
  opts.seed += 1000003;
  Rule q2 = RandomConjunctiveQuery(opts, "g2", &interner);
  if (q1.head.arity() != q2.head.arity()) return;
  if (!q1.CheckSafe().ok() || !q2.CheckSafe().ok()) return;

  Result<bool> decision = CqContained(q1, q2);
  ASSERT_TRUE(decision.ok());
  // Oracle: q1 ⊑ q2 iff q2 derives q1's frozen head on q1's canonical db.
  Result<FrozenQuery> frozen = FreezeRule(q1, &interner);
  ASSERT_TRUE(frozen.ok());
  Program p;
  p.rules.push_back(q2);
  Result<std::vector<Tuple>> answers =
      EvaluateGoal(p, q2.head.predicate, frozen->database);
  ASSERT_TRUE(answers.ok());
  bool oracle = std::find(answers->begin(), answers->end(),
                          frozen->head_tuple) != answers->end();
  EXPECT_EQ(*decision, oracle)
      << q1.ToString(interner) << "  vs  " << q2.ToString(interner);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqOracleTest, ::testing::Range(0, 120));

// Chain and star families have known containment relationships.
TEST(QueryFamiliesTest, ChainContainmentIsLengthMonotone) {
  Interner interner;
  // Longer chains are NOT contained in shorter ones with both endpoints
  // distinguished, and vice versa; but a chain folded to a self-loop maps
  // anywhere.
  Rule c2 = ChainQuery(2, "g", "e", &interner);
  Rule c3 = ChainQuery(3, "g", "e", &interner);
  EXPECT_FALSE(*CqContained(c2, c3));
  EXPECT_FALSE(*CqContained(c3, c2));
  // Boolean chains (no head vars) fold: longer ⊑ shorter.
  Rule b2 = c2, b3 = c3;
  b2.head.args.clear();
  b3.head.args.clear();
  EXPECT_TRUE(*CqContained(b3, b2));
  EXPECT_FALSE(*CqContained(b2, b3));
}

TEST(QueryFamiliesTest, StarRaysAreRedundant) {
  Interner interner;
  // All rays are parallel edges from the center: star(n) ≡ star(1).
  Rule s1 = StarQuery(1, "g", "e", &interner);
  Rule s4 = StarQuery(4, "g", "e", &interner);
  EXPECT_TRUE(*CqContained(s1, s4));
  EXPECT_TRUE(*CqContained(s4, s1));
}

// ---------------------------------------------------------------------------
// Random relative containment: decisions are consistent with certain
// answers on random instances (soundness sampling).
// ---------------------------------------------------------------------------

class RelativeSamplingTest : public ::testing::TestWithParam<int> {};

TEST_P(RelativeSamplingTest, ContainmentImpliesCertainAnswerSubset) {
  Interner interner;
  uint64_t seed = static_cast<uint64_t>(GetParam());
  RandomQueryOptions opts;
  opts.seed = seed;
  opts.num_atoms = 2;
  opts.num_variables = 3;
  opts.num_predicates = 2;
  opts.head_arity = 1;
  opts.constant_probability = 0.0;
  ViewSet views = RandomViews(opts, /*num_views=*/3, &interner);
  if (views.empty()) return;
  GoalQuery a{Program({RandomConjunctiveQuery(opts, "ga", &interner)}), 0};
  a.goal = a.program.rules[0].head.predicate;
  opts.seed = seed + 77;
  GoalQuery b{Program({RandomConjunctiveQuery(opts, "gb", &interner)}), 0};
  b.goal = b.program.rules[0].head.predicate;
  if (!a.program.CheckSafe().ok() || !b.program.CheckSafe().ok()) return;

  Result<RelativeContainmentResult> decision =
      RelativelyContained(a, b, views, &interner);
  ASSERT_TRUE(decision.ok()) << decision.status().ToString();
  for (int k = 0; k < 4; ++k) {
    Database inst =
        RandomInstance(views, /*num_facts=*/5, /*domain_size=*/3,
                       seed * 17 + k, &interner);
    Result<std::vector<Tuple>> ca =
        CertainAnswers(a.program, a.goal, views, inst, &interner);
    Result<std::vector<Tuple>> cb =
        CertainAnswers(b.program, b.goal, views, inst, &interner);
    ASSERT_TRUE(ca.ok());
    ASSERT_TRUE(cb.ok());
    if (decision->contained) {
      for (const Tuple& t : *ca) {
        EXPECT_NE(std::find(cb->begin(), cb->end(), t), cb->end())
            << "contained, but certain answer missing on sampled instance";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelativeSamplingTest, ::testing::Range(0, 50));

}  // namespace
}  // namespace relcont
