#include <algorithm>
#include <gtest/gtest.h>

#include "binding/dom_plan.h"
#include "datalog/parser.h"
#include "relcont/certain_answers.h"
#include "rewriting/losslessness.h"

namespace relcont {
namespace {

class RewritingExtensionsTest : public ::testing::Test {
 protected:
  ViewSet V(const std::string& text) {
    Result<ViewSet> v = ParseViews(text, &interner_);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return *v;
  }
  Program P(const std::string& text) {
    Result<Program> p = ParseProgram(text, &interner_);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return *p;
  }
  Database D(const std::string& text) {
    Result<Database> d = ParseDatabase(text, &interner_);
    EXPECT_TRUE(d.ok()) << d.status().ToString();
    return *d;
  }
  SymbolId S(const char* name) { return interner_.Intern(name); }

  Interner interner_;
};

// ---------------------------------------------------------------------------
// Losslessness / equivalent rewritings.
// ---------------------------------------------------------------------------

TEST_F(RewritingExtensionsTest, IdentityViewsAreLossless) {
  ViewSet views = V(
      "v1(X, Y) :- p(X, Y).\n"
      "v2(Y, Z) :- r(Y, Z).\n");
  Program q = P("q(X, Z) :- p(X, Y), r(Y, Z).");
  Result<LosslessnessResult> r =
      CheckLossless(q, S("q"), views, &interner_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->lossless);
  EXPECT_EQ(r->plan.disjuncts.size(), 1u);
}

TEST_F(RewritingExtensionsTest, ProjectionViewsLoseTheJoinColumn) {
  ViewSet views = V(
      "v1(X) :- p(X, Y).\n"
      "v2(Z) :- r(Y, Z).\n");
  Program q = P("q(X, Z) :- p(X, Y), r(Y, Z).");
  Result<LosslessnessResult> r =
      CheckLossless(q, S("q"), views, &interner_);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->lossless);
}

TEST_F(RewritingExtensionsTest, PrejoinedViewIsLosslessForItsOwnJoin) {
  ViewSet views = V("joined(X, Z) :- p(X, Y), r(Y, Z).");
  Program q = P("q(X, Z) :- p(X, Y), r(Y, Z).");
  Result<LosslessnessResult> r =
      CheckLossless(q, S("q"), views, &interner_);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->lossless);
  // ...but lossy for the base relation alone.
  Program base = P("qb(X, Y) :- p(X, Y).");
  Result<LosslessnessResult> rb =
      CheckLossless(base, S("qb"), views, &interner_);
  ASSERT_TRUE(rb.ok());
  EXPECT_FALSE(rb->lossless);
}

TEST_F(RewritingExtensionsTest, SelectionViewsCoveringAllCasesAreLossless) {
  // red+nonred... without negation we use two overlapping selections that
  // happen to cover the query's own selection.
  ViewSet views = V("redonly(C, Y) :- car(C, red, Y).");
  Program red_query = P("q(C) :- car(C, red, Y).");
  Result<LosslessnessResult> r =
      CheckLossless(red_query, S("q"), views, &interner_);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->lossless);
  Program all_query = P("qa(C) :- car(C, Col, Y).");
  Result<LosslessnessResult> ra =
      CheckLossless(all_query, S("qa"), views, &interner_);
  ASSERT_TRUE(ra.ok());
  EXPECT_FALSE(ra->lossless);
}

// ---------------------------------------------------------------------------
// Certain answers with comparisons (Theorem 5.1 plans, [21]).
// ---------------------------------------------------------------------------

TEST_F(RewritingExtensionsTest, ComparisonCertainAnswersUseViewGuarantees) {
  ViewSet views = V(
      "antique(C, M, Y) :- cardesc(C, M, Col, Y), Y < 1970.\n"
      "redcars(C, M, Y) :- cardesc(C, M, red, Y).\n");
  // Q3-style query: old cars.
  Program q = P("q(C) :- cardesc(C, M, Col, Y), Y < 1970.");
  Database inst = D(
      "antique(1, model_t, 1920).\n"
      "redcars(2, corolla, 1990).\n"
      "redcars(3, beetle, 1960).\n");
  Result<std::vector<Tuple>> answers = CertainAnswersWithComparisons(
      q, S("q"), views, inst, &interner_);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  // 1 (antique guarantees Y<1970) and 3 (red with explicit 1960), not 2.
  ASSERT_EQ(answers->size(), 2u);
  std::vector<Rational> got;
  for (const Tuple& t : *answers) got.push_back(t[0].value().number());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got[0], Rational(1));
  EXPECT_EQ(got[1], Rational(3));
}

TEST_F(RewritingExtensionsTest, ComparisonCertainAnswersEmptyPlan) {
  ViewSet views = V("cheap(X, P) :- item(X, P), P < 10.");
  Program q = P("q(X) :- item(X, P), P > 100.");
  Database inst = D("cheap(pen, 2).");
  Result<std::vector<Tuple>> answers = CertainAnswersWithComparisons(
      q, S("q"), views, inst, &interner_);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->empty());
}

TEST_F(RewritingExtensionsTest,
       ComparisonCertainAnswersAgreeWithPlainOnComparisonFreeInputs) {
  ViewSet views = V(
      "v1(X, Y) :- p(X, Y).\n"
      "v2(X) :- p(X, X).\n");
  Program q = P("q(X) :- p(X, Y).");
  Database inst = D("v1(a, b). v2(c).");
  Result<std::vector<Tuple>> plain =
      CertainAnswers(q, S("q"), views, inst, &interner_);
  Result<std::vector<Tuple>> cmp = CertainAnswersWithComparisons(
      q, S("q"), views, inst, &interner_);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(cmp.ok());
  std::sort(plain->begin(), plain->end());
  std::sort(cmp->begin(), cmp->end());
  EXPECT_EQ(*plain, *cmp);
}

TEST_F(RewritingExtensionsTest,
       ComparisonPlanAnswersSurviveSampledWorlds) {
  // Soundness sampling: every answer the comparison-aware plan produces
  // must hold in every consistent database over a sampled numeric domain
  // (plan answers ⊆ certain answers ⊆ sampled-world intersection).
  ViewSet views = V(
      "cheap(X, P) :- item(X, P), P < 10.\n"
      "named(X) :- item(X, P).\n");
  Program q = P("q(X) :- item(X, P), P < 20.");
  Database inst = D("cheap(pen, 3). cheap(ink, 9). named(desk).");
  Result<std::vector<Tuple>> plan_answers = CertainAnswersWithComparisons(
      q, S("q"), views, inst, &interner_);
  ASSERT_TRUE(plan_answers.ok()) << plan_answers.status().ToString();
  // pen and ink are certainly under 20; desk's price is unknown.
  EXPECT_EQ(plan_answers->size(), 2u);

  // Sampled worlds: items get prices from {3, 9, 15, 25}; a world is
  // consistent when every source tuple is reproduced.
  const std::vector<int> prices = {3, 9, 15, 25};
  const std::vector<const char*> items = {"pen", "ink", "desk"};
  SymbolId item = S("item");
  int consistent_worlds = 0;
  for (int p0 : prices) {
    for (int p1 : prices) {
      for (int p2 : prices) {
        Database world;
        int price_of[3] = {p0, p1, p2};
        for (int i = 0; i < 3; ++i) {
          world.Add(item, {Term::Symbol(S(items[i])),
                           Term::Number(Rational(price_of[i]))});
        }
        // Consistency: cheap must contain (pen,3) and (ink,9); named must
        // contain desk (it does by construction).
        auto view_holds = [&](const char* name, int price) {
          Program vp;
          vp.rules.push_back(views.Find(S("cheap"))->rule);
          Result<std::vector<Tuple>> rows =
              EvaluateGoal(vp, S("cheap"), world);
          if (!rows.ok()) return false;
          Tuple expect{Term::Symbol(S(name)), Term::Number(Rational(price))};
          return std::find(rows->begin(), rows->end(), expect) != rows->end();
        };
        if (!view_holds("pen", 3) || !view_holds("ink", 9)) continue;
        ++consistent_worlds;
        Program qp;
        qp.rules.push_back(q.rules[0]);
        Result<std::vector<Tuple>> world_answers =
            EvaluateGoal(qp, S("q"), world);
        ASSERT_TRUE(world_answers.ok());
        for (const Tuple& t : *plan_answers) {
          EXPECT_NE(
              std::find(world_answers->begin(), world_answers->end(), t),
              world_answers->end())
              << "plan answer not certain in a sampled world";
        }
      }
    }
  }
  EXPECT_GT(consistent_worlds, 0);
}

// ---------------------------------------------------------------------------
// Provenance.
// ---------------------------------------------------------------------------

TEST_F(RewritingExtensionsTest, ProvenanceAttributesAnswersToSources) {
  ViewSet views = V(
      "v1(X, Y) :- p(X, Y).\n"
      "v2(X) :- p(X, X).\n");
  Program q = P("q(X) :- p(X, Y).");
  Database inst = D("v1(a, b). v2(c). v1(c, c).");
  Result<ProvenanceResult> r = CertainAnswersWithProvenance(
      q, S("q"), views, inst, &interner_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->answers.size(), 2u);
  auto find = [&](const char* value) -> const ProvenancedAnswer* {
    for (const ProvenancedAnswer& a : r->answers) {
      if (a.tuple[0].value().symbol() == S(value)) return &a;
    }
    return nullptr;
  };
  const ProvenancedAnswer* a = find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->sources, std::set<SymbolId>{S("v1")});
  EXPECT_EQ(a->disjuncts.size(), 1u);
  // c is justified by BOTH sources (v1(c,c) and v2(c)).
  const ProvenancedAnswer* c = find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->sources, (std::set<SymbolId>{S("v1"), S("v2")}));
  EXPECT_EQ(c->disjuncts.size(), 2u);
}

TEST_F(RewritingExtensionsTest, ProvenanceAgreesWithPlainCertainAnswers) {
  ViewSet views = V(
      "v1(X, Y) :- p(X, Y).\n"
      "v2(Y, Z) :- r(Y, Z).\n");
  Program q = P("q(X, Z) :- p(X, Y), r(Y, Z).");
  Database inst = D("v1(a, b). v2(b, c). v2(x, y).");
  Result<ProvenanceResult> withp = CertainAnswersWithProvenance(
      q, S("q"), views, inst, &interner_);
  Result<std::vector<Tuple>> plain =
      CertainAnswers(q, S("q"), views, inst, &interner_);
  ASSERT_TRUE(withp.ok());
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(withp->answers.size(), plain->size());
  for (const ProvenancedAnswer& a : withp->answers) {
    EXPECT_NE(std::find(plain->begin(), plain->end(), a.tuple),
              plain->end());
    EXPECT_FALSE(a.sources.empty());
  }
}

// ---------------------------------------------------------------------------
// Multiple access patterns per source.
// ---------------------------------------------------------------------------

TEST_F(RewritingExtensionsTest, MultipleAdornmentsWidenExecutability) {
  BindingPatterns patterns;
  patterns.Set(S("phonebook"), *Adornment::Parse("bf"));
  patterns.AddAlternative(S("phonebook"), *Adornment::Parse("fb"));
  // Lookup by name or by number, but not a full scan.
  Rule by_name = *ParseRule(
      "q(N) :- names(X), phonebook(X, N).", &interner_);
  Rule by_number = *ParseRule(
      "q(X) :- numbers(N), phonebook(X, N).", &interner_);
  Rule scan = *ParseRule("q(X, N) :- phonebook(X, N).", &interner_);
  EXPECT_TRUE(IsRuleExecutable(by_name, patterns));
  EXPECT_TRUE(IsRuleExecutable(by_number, patterns));
  EXPECT_FALSE(IsRuleExecutable(scan, patterns));

  BindingPatterns single;
  single.Set(S("phonebook"), *Adornment::Parse("bf"));
  EXPECT_FALSE(IsRuleExecutable(by_number, single));
}

TEST_F(RewritingExtensionsTest, MultipleAdornmentsInExecutablePlans) {
  ViewSet views = V(
      "names(X) :- person(X).\n"
      "phonebook(X, N) :- phone(X, N).\n");
  BindingPatterns patterns;
  patterns.Set(S("phonebook"), *Adornment::Parse("bf"));
  patterns.AddAlternative(S("phonebook"), *Adornment::Parse("fb"));
  Program q = P("q(X, N) :- phone(X, N).");
  Result<ExecutablePlanResult> plan =
      ExecutablePlan(q, views, patterns, &interner_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Two guarded inverse rules for phone: one per access pattern.
  int phone_rules = 0;
  for (const Rule& r : plan->program.rules) {
    if (r.head.predicate == S("phone")) ++phone_rules;
  }
  EXPECT_EQ(phone_rules, 2);

  // Reachable answers: by-name lookups seed from `names`; by-number
  // lookups seed from numbers already discovered.
  Database inst = D(
      "names(ada).\n"
      "phonebook(ada, 1234).\n"
      "phonebook(bob, 9999).\n");
  Result<std::vector<Tuple>> answers = ReachableCertainAnswers(
      q, S("q"), views, patterns, inst, &interner_);
  ASSERT_TRUE(answers.ok());
  // ada reachable via bf with name; bob unreachable (no seed for either
  // column).
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0][0].value().symbol(), S("ada"));
}

TEST_F(RewritingExtensionsTest, AlternativeAdornmentsUnlockMoreAnswers) {
  ViewSet views = V(
      "knownnumbers(N) :- important(N).\n"
      "phonebook(X, N) :- phone(X, N).\n");
  Program q = P("q(X) :- phone(X, N).");
  Database inst = D(
      "knownnumbers(5555).\n"
      "phonebook(eve, 5555).\n");
  // With only bf (name required), nothing is reachable.
  BindingPatterns bf_only;
  bf_only.Set(S("phonebook"), *Adornment::Parse("bf"));
  Result<std::vector<Tuple>> none = ReachableCertainAnswers(
      q, S("q"), views, bf_only, inst, &interner_);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  // Adding the fb alternative lets the known number unlock eve.
  BindingPatterns both = bf_only;
  both.AddAlternative(S("phonebook"), *Adornment::Parse("fb"));
  Result<std::vector<Tuple>> some = ReachableCertainAnswers(
      q, S("q"), views, both, inst, &interner_);
  ASSERT_TRUE(some.ok());
  ASSERT_EQ(some->size(), 1u);
  EXPECT_EQ((*some)[0][0].value().symbol(), S("eve"));
}

}  // namespace
}  // namespace relcont
