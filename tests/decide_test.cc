#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "relcont/decide.h"

namespace relcont {
namespace {

class DecideTest : public ::testing::Test {
 protected:
  ViewSet V(const std::string& text) {
    Result<ViewSet> v = ParseViews(text, &interner_);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return *v;
  }
  GoalQuery GQ(const std::string& text, const char* goal) {
    Result<Program> p = ParseProgram(text, &interner_);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return GoalQuery{*p, interner_.Intern(goal)};
  }
  Decision Decide(const GoalQuery& a, const GoalQuery& b, const ViewSet& v,
                  const BindingPatterns& patterns = {}) {
    Result<Decision> d =
        DecideRelativeContainment(a, b, v, patterns, &interner_);
    EXPECT_TRUE(d.ok()) << d.status().ToString();
    return d.ok() ? *d : Decision{};
  }

  Interner interner_;
};

TEST_F(DecideTest, DispatchesToSection3) {
  ViewSet views = V("v(X, Y) :- p(X, Y).");
  Decision d = Decide(GQ("a(X) :- p(X, X).", "a"),
                      GQ("b(X) :- p(X, Y).", "b"), views);
  EXPECT_TRUE(d.contained);
  EXPECT_EQ(d.regime, Regime::kSection3);
}

TEST_F(DecideTest, DispatchesToTheorem52OnComparisonViews) {
  ViewSet views = V("cheap(X, P) :- item(X, P), P < 10.");
  Decision d = Decide(GQ("a(X) :- item(X, P).", "a"),
                      GQ("b(X) :- item(X, P), P < 10.", "b"), views);
  EXPECT_TRUE(d.contained);
  EXPECT_EQ(d.regime, Regime::kTheorem52);
}

TEST_F(DecideTest, DispatchesToTheorem51WhenLeftHasComparisons) {
  ViewSet views = V("cheap(X, P) :- item(X, P), P < 10.");
  Decision d = Decide(GQ("a(X) :- item(X, P), P < 5.", "a"),
                      GQ("b(X) :- item(X, P).", "b"), views);
  EXPECT_TRUE(d.contained);
  EXPECT_EQ(d.regime, Regime::kTheorem51);
}

TEST_F(DecideTest, DispatchesToTheorem32OnRecursiveQuery) {
  ViewSet views = V("sedge(X, Y) :- e(X, Y).");
  GoalQuery tc = GQ(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n",
      "tc");
  Decision d =
      Decide(GQ("a(X, Y) :- e(X, Z), e(Z, Y).", "a"), tc, views);
  EXPECT_TRUE(d.contained);
  EXPECT_EQ(d.regime, Regime::kTheorem32);
}

TEST_F(DecideTest, DispatchesToSection4OnPatterns) {
  ViewSet views = V(
      "seed(X) :- link(a, X).\n"
      "next(X, Y) :- link(X, Y).\n");
  BindingPatterns patterns;
  patterns.Set(interner_.Lookup("next"), *Adornment::Parse("bf"));
  Decision d = Decide(GQ("q1(Y) :- link(X, Y).", "q1"),
                      GQ("q2(Y) :- link(a, Y).", "q2"), views, patterns);
  EXPECT_FALSE(d.contained);
  EXPECT_EQ(d.regime, Regime::kSection4);
  EXPECT_TRUE(d.witness.has_value());
}

TEST_F(DecideTest, PatternsPlusComparisonsUnsupported) {
  ViewSet views = V("cheap(X, P) :- item(X, P), P < 10.");
  BindingPatterns patterns;
  patterns.Set(interner_.Lookup("cheap"), *Adornment::Parse("bf"));
  Result<Decision> d = DecideRelativeContainment(
      GQ("a(X) :- item(X, P).", "a"), GQ("b(X) :- item(X, P).", "b"), views,
      patterns, &interner_);
  EXPECT_EQ(d.status().code(), StatusCode::kUnsupported);
}

TEST_F(DecideTest, WitnessSurfacesOnTheorem52Failure) {
  ViewSet views = V("cheap(X, P) :- item(X, P), P < 10.");
  Decision d = Decide(GQ("a(X) :- item(X, P).", "a"),
                      GQ("b(X) :- item(X, P), P < 5.", "b"), views);
  EXPECT_FALSE(d.contained);
  EXPECT_EQ(d.regime, Regime::kTheorem52);
  EXPECT_TRUE(d.witness.has_value());
}

TEST_F(DecideTest, WitnessSurfacesOnTheorem32Failure) {
  // Recursive Q2: the failing plan disjunct of Q1 is the witness.
  ViewSet views = V(
      "sedge(X, Y) :- e(X, Y).\n"
      "snode(X) :- n(X).\n");
  GoalQuery tc = GQ(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n",
      "tc");
  Decision d = Decide(GQ("a(X, X) :- n(X).", "a"), tc, views);
  EXPECT_FALSE(d.contained);
  EXPECT_EQ(d.regime, Regime::kTheorem32);
  EXPECT_TRUE(d.witness.has_value());
}

TEST_F(DecideTest, WitnessSurfacesOnRecursiveQ1Failure) {
  // Recursive Q1: the counterexample expansion is the witness.
  ViewSet views = V("sedge(X, Y) :- e(X, Y).");
  GoalQuery tc = GQ(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n",
      "tc");
  Decision d = Decide(tc, GQ("b(X, Y) :- e(X, Y).", "b"), views);
  EXPECT_FALSE(d.contained);
  EXPECT_EQ(d.regime, Regime::kTheorem32);
  EXPECT_TRUE(d.witness.has_value());
}

TEST_F(DecideTest, Theorem51WitnessCarriesViewGuaranteedComparisons) {
  ViewSet views = V("cheap(X, P) :- item(X, P), P < 10.");
  Decision d = Decide(GQ("a(X) :- item(X, P), P < 5.", "a"),
                      GQ("b(X) :- item(X, P), P < 2.", "b"), views);
  EXPECT_FALSE(d.contained);
  EXPECT_EQ(d.regime, Regime::kTheorem51);
  ASSERT_TRUE(d.witness.has_value());
  // The witness is the *augmented* disjunct: it keeps the comparisons its
  // views guarantee, so it genuinely fails on a consistent instance.
  EXPECT_FALSE(d.witness->comparisons.empty());
}

TEST_F(DecideTest, RegimeNamesRoundTrip) {
  for (Regime regime :
       {Regime::kSection3, Regime::kTheorem32, Regime::kSection4,
        Regime::kTheorem51, Regime::kTheorem52}) {
    EXPECT_EQ(ParseRegime(RegimeName(regime)), regime);
  }
  EXPECT_EQ(ParseRegime("nonsense"), Regime::kUnknown);
  EXPECT_EQ(RegimeName(Regime::kUnknown), "unknown");
}

TEST_F(DecideTest, WitnessSurfacesOnSection3Failure) {
  ViewSet views = V(
      "v1(X, Y) :- p(X, Y).\n"
      "v2(X) :- s(X).\n");
  Decision d = Decide(GQ("a(X) :- p(X, Y).", "a"),
                      GQ("b(X) :- p(X, Y), s(X).", "b"), views);
  EXPECT_FALSE(d.contained);
  EXPECT_EQ(d.regime, Regime::kSection3);
  EXPECT_TRUE(d.witness.has_value());
}

}  // namespace
}  // namespace relcont
