// Tests for the sliding-window latency telemetry (obs/window.h) and its
// integration into ServiceMetrics: deterministic decay under a fake
// clock, percentile estimates checked against a sorted-vector oracle,
// slot reclaim across ring wrap-around, concurrent recording (run under
// TSan in CI), and the acceptance property that the windowed p99 per
// verb x regime is pinned to the same value across all three renderings
// (METRICS text, Prometheus /metrics, STATUSZ JSON).

#include "obs/window.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "gtest/gtest.h"
#include "obs/exposition.h"
#include "service/metrics.h"

namespace relcont {
namespace {

using obs::WindowAggregate;
using obs::WindowRing;

TEST(WindowRingTest, BucketForMatchesHistogramLaw) {
  EXPECT_EQ(WindowRing::BucketFor(0), 0);
  EXPECT_EQ(WindowRing::BucketFor(1), 1);
  EXPECT_EQ(WindowRing::BucketFor(2), 2);
  EXPECT_EQ(WindowRing::BucketFor(3), 2);
  EXPECT_EQ(WindowRing::BucketFor(4), 3);
  EXPECT_EQ(WindowRing::BucketFor(100), 7);   // [64, 128)
  EXPECT_EQ(WindowRing::BucketFor(5000), 13);  // [4096, 8192)
  // Everything at or beyond 2^22 lands in the unbounded top bucket.
  EXPECT_EQ(WindowRing::BucketFor(1ull << 22), WindowRing::kBuckets - 1);
  EXPECT_EQ(WindowRing::BucketFor(~0ull), WindowRing::kBuckets - 1);
}

TEST(WindowRingTest, AggregateDecaysDeterministicallyUnderFakeClock) {
  WindowRing ring;
  for (uint64_t sec = 100; sec <= 104; ++sec) {
    for (int i = 0; i < 3; ++i) ring.Record(sec, 100);
  }
  EXPECT_EQ(ring.Aggregate(104, 1).count(), 3u);
  EXPECT_EQ(ring.Aggregate(104, 3).count(), 9u);
  EXPECT_EQ(ring.Aggregate(104, 5).count(), 15u);
  EXPECT_EQ(ring.Aggregate(104, 60).count(), 15u);
  // Advancing the clock drops whole seconds, oldest first — no partial
  // or probabilistic decay.
  EXPECT_EQ(ring.Aggregate(110, 10).count(), 12u);  // 101..110 keeps 101-104
  EXPECT_EQ(ring.Aggregate(113, 10).count(), 3u);   // 104..113 keeps 104
  EXPECT_EQ(ring.Aggregate(114, 10).count(), 0u);
  EXPECT_EQ(ring.Aggregate(110, 5).count(), 0u);    // 106..110 is empty
}

TEST(WindowRingTest, EmptyWindowReportsZero) {
  WindowRing ring;
  WindowAggregate agg = ring.Aggregate(42, 10);
  EXPECT_EQ(agg.count(), 0u);
  EXPECT_EQ(agg.sum_micros, 0u);
  EXPECT_EQ(agg.max_micros, 0u);
  EXPECT_EQ(agg.PercentileMicros(0.99), 0u);
}

TEST(WindowRingTest, SlotsAreReclaimedAfterWrapAround) {
  WindowRing ring;
  ring.Record(5, 1000000);
  // kSlots seconds later the same physical slot is reused for a new
  // second; the stale million-microsecond sample must not leak into it.
  const uint64_t later = 5 + WindowRing::kSlots;
  ring.Record(later, 7);
  WindowAggregate agg = ring.Aggregate(later, 1);
  EXPECT_EQ(agg.count(), 1u);
  EXPECT_EQ(agg.sum_micros, 7u);
  EXPECT_EQ(agg.max_micros, 7u);
}

TEST(WindowRingTest, PercentilesUpperBoundSortedOracle) {
  // Deterministic LCG stream; the ring's bucketed percentile must be an
  // upper bound on the exact order statistic, within the documented
  // factor-of-two envelope: exact <= estimate <= 2*exact + 1.
  WindowRing ring;
  std::vector<uint64_t> samples;
  uint64_t state = 12345;
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    uint64_t value = (state >> 33) % 1000000;
    samples.push_back(value);
    ring.Record(100 + static_cast<uint64_t>(i % 10), value);
  }
  std::sort(samples.begin(), samples.end());
  WindowAggregate agg = ring.Aggregate(109, 10);
  ASSERT_EQ(agg.count(), samples.size());
  EXPECT_EQ(agg.max_micros, samples.back());
  for (double q : {0.10, 0.50, 0.90, 0.99, 1.0}) {
    const auto rank = static_cast<size_t>(std::ceil(
        q * static_cast<double>(samples.size())));
    const uint64_t exact = samples[std::max<size_t>(rank, 1) - 1];
    const uint64_t estimate = agg.PercentileMicros(q);
    EXPECT_GE(estimate, exact) << "q=" << q;
    EXPECT_LE(estimate, 2 * exact + 1) << "q=" << q;
    EXPECT_LE(estimate, agg.max_micros) << "q=" << q;
  }
}

TEST(WindowRingTest, MergeFoldsCountSumAndMax) {
  WindowRing a;
  WindowRing b;
  a.Record(10, 100);
  b.Record(10, 5000);
  WindowAggregate agg = a.Aggregate(10, 1);
  agg.Merge(b.Aggregate(10, 1));
  EXPECT_EQ(agg.count(), 2u);
  EXPECT_EQ(agg.sum_micros, 5100u);
  EXPECT_EQ(agg.max_micros, 5000u);
}

/// Run under TSan in CI: 8 recorder threads race an aggregating reader;
/// after the join every sample is accounted for exactly once.
TEST(WindowRingTest, ConcurrentRecordersAndReaderAgree) {
  WindowRing ring;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  std::atomic<bool> stop{false};
  std::thread reader([&ring, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      WindowAggregate agg = ring.Aggregate(103, 10);
      // Monotone sanity while writers run; exactness is asserted after.
      EXPECT_LE(agg.count(), static_cast<uint64_t>(kThreads * kPerThread));
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&ring, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ring.Record(100 + static_cast<uint64_t>(i % 4),
                    static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(ring.Aggregate(103, 10).count(),
            static_cast<uint64_t>(kThreads * kPerThread));
}

// ---------------------------------------------------------------------------
// ServiceMetrics integration: per-verb x per-regime rings, deterministic
// decay through the injected clock, and the no-drift pin across renderers.

TEST(ServiceMetricsWindowTest, VerbAndRegimeWindowsDecayUnderFakeClock) {
  ServiceMetrics metrics;
  auto now = std::make_shared<std::atomic<uint64_t>>(100);
  metrics.set_window_clock_for_test([now] { return now->load(); });
  metrics.set_window_secs(60);

  metrics.RecordRequest(Regime::kSection3, 100, /*error=*/false,
                        /*cache_hit=*/false);
  metrics.RecordRequest(Regime::kTheorem32, 200, false, false);
  metrics.RecordPlanRequest(/*rewrite=*/false, Regime::kSection3, 300,
                            false);
  metrics.RecordPlanRequest(/*rewrite=*/true, Regime::kSection4, 400,
                            false);

  EXPECT_EQ(metrics.WindowFor(ServiceVerb::kContained, 10).count(), 2u);
  EXPECT_EQ(metrics
                .WindowFor(ServiceVerb::kContained, 10,
                           static_cast<int>(Regime::kSection3))
                .count(),
            1u);
  EXPECT_EQ(metrics
                .WindowFor(ServiceVerb::kContained, 10,
                           static_cast<int>(Regime::kTheorem32))
                .count(),
            1u);
  EXPECT_EQ(metrics.WindowFor(ServiceVerb::kPlan, 10).count(), 1u);
  EXPECT_EQ(metrics.WindowFor(ServiceVerb::kRewrite, 10).count(), 1u);
  EXPECT_EQ(metrics.WindowFor(ServiceVerb::kRewrite, 10).sum_micros, 400u);

  now->store(105);  // still inside the short window
  EXPECT_EQ(metrics.WindowFor(ServiceVerb::kContained, 10).count(), 2u);
  now->store(115);  // past the 10s window, inside the 60s window
  EXPECT_EQ(metrics.WindowFor(ServiceVerb::kContained, 10).count(), 0u);
  EXPECT_EQ(metrics.WindowFor(ServiceVerb::kContained, 60).count(), 2u);
  now->store(170);  // past the 60s window too
  EXPECT_EQ(metrics.WindowFor(ServiceVerb::kContained, 60).count(), 0u);
  EXPECT_EQ(metrics.WindowFor(ServiceVerb::kPlan, 60).count(), 0u);
}

/// The acceptance pin: one traffic mix, one fake clock, and the windowed
/// p99 per verb x regime carries the same value through the snapshot and
/// all three renderings of it.
TEST(ServiceMetricsWindowTest, WindowedP99IsPinnedAcrossAllThreeRenderings) {
  ServiceMetrics metrics;
  auto now = std::make_shared<std::atomic<uint64_t>>(100);
  metrics.set_window_clock_for_test([now] { return now->load(); });
  metrics.set_window_secs(60);

  // 98 fast + 2 slow samples: rank ceil(0.99*100) = 99 lands in the slow
  // bucket [4096, 8192), clamped by the observed max. Exact expectations:
  // p50 = 127 (upper bound of [64,128)), p99 = max = 5000.
  for (int i = 0; i < 98; ++i) {
    metrics.RecordRequest(Regime::kSection3, 100, false, false);
  }
  metrics.RecordRequest(Regime::kSection3, 5000, false, false);
  metrics.RecordRequest(Regime::kSection3, 5000, false, false);
  metrics.RecordPlanRequest(false, Regime::kSection4, 100, false);

  obs::MetricsSnapshot snapshot = metrics.Snapshot(CacheStats{});
  EXPECT_EQ(snapshot.short_window_secs, 10);
  EXPECT_EQ(snapshot.long_window_secs, 60);

  auto find_row = [&snapshot](const std::string& verb,
                              const std::string& regime, int window_secs)
      -> const obs::WindowLatency* {
    for (const obs::WindowLatency& w : snapshot.window_latency) {
      if (w.verb == verb && w.regime == regime &&
          w.window_secs == window_secs) {
        return &w;
      }
    }
    return nullptr;
  };
  const obs::WindowLatency* row = find_row("contained", "section3", 10);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->count, 100u);
  EXPECT_EQ(row->p50_micros, 127u);
  EXPECT_EQ(row->p99_micros, 5000u);
  EXPECT_EQ(row->max_micros, 5000u);
  // The per-verb "all" fold and the long window carry the same traffic.
  const obs::WindowLatency* all_row = find_row("contained", "all", 60);
  ASSERT_NE(all_row, nullptr);
  EXPECT_EQ(all_row->count, 100u);
  EXPECT_EQ(all_row->p99_micros, 5000u);
  const obs::WindowLatency* plan_row = find_row("plan", "section4", 10);
  ASSERT_NE(plan_row, nullptr);
  EXPECT_EQ(plan_row->count, 1u);
  // Quiet cells stay out of the snapshot: rewrite saw no traffic, so only
  // its always-present "all" rows appear and they are empty.
  EXPECT_EQ(find_row("rewrite", "section3", 10), nullptr);
  const obs::WindowLatency* rewrite_all = find_row("rewrite", "all", 10);
  ASSERT_NE(rewrite_all, nullptr);
  EXPECT_EQ(rewrite_all->count, 0u);

  const std::string text = obs::RenderMetricsText(snapshot);
  EXPECT_NE(text.find("window_latency_requests{verb=\"contained\","
                      "regime=\"section3\",window=\"10s\"} 100"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("window_latency_us{verb=\"contained\","
                      "regime=\"section3\",window=\"10s\",q=\"p99\"} 5000"),
            std::string::npos);

  const std::string prom = obs::RenderPrometheusText(snapshot);
  EXPECT_NE(prom.find("relcont_window_latency_requests{verb=\"contained\","
                      "regime=\"section3\",window=\"10s\"} 100"),
            std::string::npos)
      << prom;
  EXPECT_NE(
      prom.find("relcont_window_latency_microseconds{verb=\"contained\","
                "regime=\"section3\",window=\"10s\",quantile=\"p99\"} 5000"),
      std::string::npos);

  const std::string statusz = obs::RenderStatuszJson(snapshot);
  Result<json::Value> parsed = json::Parse(statusz);
  ASSERT_TRUE(parsed.ok()) << statusz;
  const json::Value* windows = parsed->Find("windows");
  ASSERT_NE(windows, nullptr);
  EXPECT_DOUBLE_EQ(windows->Find("short_secs")->number_value, 10);
  EXPECT_DOUBLE_EQ(windows->Find("long_secs")->number_value, 60);
  const json::Value* latency = windows->Find("latency");
  ASSERT_NE(latency, nullptr);
  bool found = false;
  for (const json::Value& entry : latency->array) {
    if (entry.Find("verb")->string_value == "contained" &&
        entry.Find("regime")->string_value == "section3" &&
        entry.Find("window_secs")->number_value == 10) {
      found = true;
      EXPECT_DOUBLE_EQ(entry.Find("count")->number_value, 100);
      EXPECT_DOUBLE_EQ(entry.Find("p50_us")->number_value, 127);
      EXPECT_DOUBLE_EQ(entry.Find("p99_us")->number_value, 5000);
      EXPECT_DOUBLE_EQ(entry.Find("max_us")->number_value, 5000);
    }
  }
  EXPECT_TRUE(found) << statusz;
}

TEST(ServiceMetricsWindowTest, LongWindowEqualToShortIsNotDuplicated) {
  ServiceMetrics metrics;
  auto now = std::make_shared<std::atomic<uint64_t>>(50);
  metrics.set_window_clock_for_test([now] { return now->load(); });
  metrics.set_window_secs(10);  // long == short
  metrics.RecordRequest(Regime::kSection3, 100, false, false);
  obs::MetricsSnapshot snapshot = metrics.Snapshot(CacheStats{});
  int rows_for_cell = 0;
  for (const obs::WindowLatency& w : snapshot.window_latency) {
    if (w.verb == "contained" && w.regime == "section3") ++rows_for_cell;
  }
  EXPECT_EQ(rows_for_cell, 1);
  EXPECT_EQ(snapshot.short_window_secs, snapshot.long_window_secs);
}

}  // namespace
}  // namespace relcont
