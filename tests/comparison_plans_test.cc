#include <gtest/gtest.h>

#include "containment/comparison_containment.h"
#include "containment/cq_containment.h"
#include "datalog/parser.h"
#include "relcont/relative_containment.h"
#include "rewriting/comparison_plans.h"

namespace relcont {
namespace {

// The full mediated schema and sources of paper Example 1.
constexpr char kCarViews[] = R"(
  redcars(CarNo, Model, Year) :- cardesc(CarNo, Model, red, Year).
  antiquecars(CarNo, Model, Year) :-
      cardesc(CarNo, Model, Color, Year), Year < 1970.
  caranddriver(Model, Review) :- review(Model, Review, 10).
)";

constexpr char kQ1[] =
    "q1(CarNo, Review) :- cardesc(CarNo, Model, C, Y), "
    "review(Model, Review, Rating).";
constexpr char kQ2[] =
    "q2(CarNo, Review) :- cardesc(CarNo, Model, C, Y), "
    "review(Model, Review, 10).";
constexpr char kQ3[] =
    "q3(CarNo, Review) :- cardesc(CarNo, Model, C, Y), "
    "review(Model, Review, 10), Y < 1970.";

class ComparisonPlansTest : public ::testing::Test {
 protected:
  ViewSet V(const std::string& text) {
    Result<ViewSet> v = ParseViews(text, &interner_);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return *v;
  }
  GoalQuery GQ(const std::string& text, const char* goal) {
    Result<Program> p = ParseProgram(text, &interner_);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return GoalQuery{*p, S(goal)};
  }
  SymbolId S(const char* name) { return interner_.Intern(name); }

  bool ContainedCmp(const GoalQuery& a, const GoalQuery& b,
                    const ViewSet& views) {
    Result<RelativeContainmentResult> r =
        RelativelyContainedWithComparisons(a, b, views, &interner_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->contained;
  }
  bool ContainedExp(const GoalQuery& a, const GoalQuery& b,
                    const ViewSet& views) {
    Result<bool> r =
        RelativelyContainedViaExpansion(a, b, views, &interner_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  Interner interner_;
};

TEST_F(ComparisonPlansTest, ProjectionKeepsHeadConstraints) {
  ViewSet v = V("antique(C, M, Y) :- cardesc(C, M, Col, Y), Y < 1970.");
  Result<std::vector<Comparison>> proj =
      ProjectViewConstraintsToHead(v.views()[0]);
  ASSERT_TRUE(proj.ok());
  ASSERT_EQ(proj->size(), 1u);
  EXPECT_EQ((*proj)[0].op, ComparisonOp::kLt);
}

TEST_F(ComparisonPlansTest, ProjectionEliminatesExistentials) {
  // X < Y, Y < 5 with Y existential projects onto X < 5.
  ViewSet v = V("src(X) :- p(X, Y), X < Y, Y < 5.");
  Result<std::vector<Comparison>> proj =
      ProjectViewConstraintsToHead(v.views()[0]);
  ASSERT_TRUE(proj.ok());
  bool found = false;
  for (const Comparison& c : *proj) {
    if (c.op == ComparisonOp::kLt && c.lhs.is_variable() &&
        c.rhs.is_constant() && c.rhs.value().number() == Rational(5)) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ComparisonPlansTest, ProjectionDropsUnconstrainedHeads) {
  ViewSet v = V("src(X, Z) :- p(X, Y, Z), X < Y.");
  Result<std::vector<Comparison>> proj =
      ProjectViewConstraintsToHead(v.views()[0]);
  ASSERT_TRUE(proj.ok());
  EXPECT_TRUE(proj->empty());  // nothing visible is entailed
}

TEST_F(ComparisonPlansTest, AugmentAddsViewGuarantees) {
  ViewSet views = V(kCarViews);
  Result<Rule> plan_rule = ParseRule(
      "p(C, R) :- antiquecars(C, M, Y), caranddriver(M, R).", &interner_);
  ASSERT_TRUE(plan_rule.ok());
  Result<Rule> augmented =
      AugmentWithViewConstraints(*plan_rule, views, &interner_);
  ASSERT_TRUE(augmented.ok());
  ASSERT_EQ(augmented->comparisons.size(), 1u);
  EXPECT_EQ(augmented->comparisons[0].op, ComparisonOp::kLt);
  // The Y < 1970 guarantee lands on the plan's own Y variable.
  EXPECT_EQ(augmented->comparisons[0].lhs, Term::Var(S("Y")));
}

// Paper Example 4: the maximally-contained plan P3 for Q3.
TEST_F(ComparisonPlansTest, Example4PlanForQ3) {
  ViewSet views = V(kCarViews);
  GoalQuery q3 = GQ(kQ3, "q3");
  Result<UnionQuery> plan =
      ComparisonAwarePlan(q3.program, q3.goal, views, &interner_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->disjuncts.size(), 2u);

  const Rule* red = nullptr;
  const Rule* antique = nullptr;
  for (const Rule& d : plan->disjuncts) {
    for (const Atom& a : d.body) {
      if (a.predicate == S("redcars")) red = &d;
      if (a.predicate == S("antiquecars")) antique = &d;
    }
  }
  ASSERT_NE(red, nullptr);
  ASSERT_NE(antique, nullptr);
  // The RedCars disjunct must carry the explicit Year < 1970 test...
  ASSERT_EQ(red->comparisons.size(), 1u);
  EXPECT_EQ(red->comparisons[0].op, ComparisonOp::kLt);
  // ...while AntiqueCars already guarantees it (paper prints no test).
  EXPECT_TRUE(antique->comparisons.empty());
}

TEST_F(ComparisonPlansTest, ComparisonFreeQueryPlanHasNoComparisons) {
  ViewSet views = V(kCarViews);
  GoalQuery q1 = GQ(kQ1, "q1");
  Result<UnionQuery> plan =
      ComparisonAwarePlan(q1.program, q1.goal, views, &interner_);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->disjuncts.size(), 2u);
  for (const Rule& d : plan->disjuncts) {
    EXPECT_TRUE(d.comparisons.empty());
  }
}

// ---------------------------------------------------------------------------
// The nine decisions of paper Example 1.
// ---------------------------------------------------------------------------

TEST_F(ComparisonPlansTest, Example1ClassicalFacts) {
  // Q2 ⊑ Q1, Q1 ⋢ Q2; Q3 ⊑ Q2, Q2 ⋢ Q3 (traditional containment).
  GoalQuery q1 = GQ(kQ1, "q1");
  GoalQuery q2 = GQ(kQ2, "q2");
  GoalQuery q3 = GQ(kQ3, "q3");
  auto classical = [&](const GoalQuery& a, const GoalQuery& b) {
    Result<bool> r =
        CqContainedComplete(a.program.rules[0], b.program.rules[0]);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  };
  EXPECT_TRUE(classical(q2, q1));
  EXPECT_FALSE(classical(q1, q2));
  EXPECT_TRUE(classical(q3, q2));
  EXPECT_FALSE(classical(q2, q3));
  EXPECT_TRUE(classical(q3, q1));
}

TEST_F(ComparisonPlansTest, Example1Q1EquivalentToQ2Relatively) {
  // Reviews exist only for top-rated models, so Q1 ≡_V Q2.
  ViewSet views = V(kCarViews);
  GoalQuery q1 = GQ(kQ1, "q1");
  GoalQuery q2 = GQ(kQ2, "q2");
  EXPECT_TRUE(ContainedCmp(q1, q2, views));
  EXPECT_TRUE(ContainedCmp(q2, q1, views));
  // Cross-check by the Theorem 5.2 expansion route (both are
  // comparison-free, so it applies in both directions).
  EXPECT_TRUE(ContainedExp(q1, q2, views));
  EXPECT_TRUE(ContainedExp(q2, q1, views));
}

TEST_F(ComparisonPlansTest, Example1Q1NotContainedInQ3) {
  // Red cars made after 1970 can have retrievable reviews.
  ViewSet views = V(kCarViews);
  GoalQuery q1 = GQ(kQ1, "q1");
  GoalQuery q3 = GQ(kQ3, "q3");
  EXPECT_FALSE(ContainedExp(q1, q3, views));
  EXPECT_FALSE(ContainedCmp(q1, q3, views));
}

TEST_F(ComparisonPlansTest, Example1Q3ContainedInQ1) {
  ViewSet views = V(kCarViews);
  GoalQuery q1 = GQ(kQ1, "q1");
  GoalQuery q3 = GQ(kQ3, "q3");
  EXPECT_TRUE(ContainedCmp(q3, q1, views));
  EXPECT_TRUE(ContainedCmp(q3, GQ(kQ2, "q2"), views));
}

TEST_F(ComparisonPlansTest, Example1AblationWithoutRedCars) {
  // "If the RedCars source were not available, then Q1 would be contained
  // in Q3 relative to the available sources."
  ViewSet views = V(
      "antiquecars(CarNo, Model, Year) :-"
      "    cardesc(CarNo, Model, Color, Year), Year < 1970.\n"
      "caranddriver(Model, Review) :- review(Model, Review, 10).\n");
  GoalQuery q1 = GQ(kQ1, "q1");
  GoalQuery q3 = GQ(kQ3, "q3");
  EXPECT_TRUE(ContainedExp(q1, q3, views));
  EXPECT_TRUE(ContainedCmp(q1, q3, views));
}

TEST_F(ComparisonPlansTest, ExpansionRouteRejectsComparisonsOnLeft) {
  ViewSet views = V(kCarViews);
  Result<bool> r = RelativelyContainedViaExpansion(
      GQ(kQ3, "q3"), GQ(kQ1, "q1"), views, &interner_);
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST_F(ComparisonPlansTest, SemiIntervalViewsRestrictPlans) {
  // The only source serves cheap items; asking for expensive ones yields
  // an empty plan, hence containment in anything.
  ViewSet views = V("cheap(X, P) :- item(X, P), P < 10.");
  GoalQuery expensive = GQ("qe(X) :- item(X, P), P > 100.", "qe");
  GoalQuery anything = GQ("qa(X) :- item(X, P).", "qa");
  Result<UnionQuery> plan = ComparisonAwarePlan(
      expensive.program, expensive.goal, views, &interner_);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->disjuncts.empty());
  EXPECT_TRUE(ContainedCmp(expensive, anything, views));
  EXPECT_FALSE(ContainedCmp(anything, expensive, views));
}

TEST_F(ComparisonPlansTest, ViewGuaranteeMakesQueriesEquivalent) {
  // All retrievable items are cheap, so "items" and "cheap items" agree
  // relative to the source even though classically they differ.
  ViewSet views = V("cheap(X, P) :- item(X, P), P < 10.");
  GoalQuery all = GQ("qa(X, P) :- item(X, P).", "qa");
  GoalQuery cheap = GQ("qc(X, P) :- item(X, P), P < 10.", "qc");
  EXPECT_TRUE(ContainedCmp(all, cheap, views));
  EXPECT_TRUE(ContainedCmp(cheap, all, views));
  EXPECT_TRUE(ContainedExp(all, cheap, views));
}

TEST_F(ComparisonPlansTest, OverlappingIntervalsNeedTheirIntersection) {
  ViewSet views = V(
      "lo(X, P) :- item(X, P), P < 20.\n"
      "hi(X, P) :- item(X, P), P > 10.\n");
  GoalQuery mid = GQ("qm(X) :- item(X, P), P > 10, P < 20.", "qm");
  GoalQuery all = GQ("qa(X) :- item(X, P).", "qa");
  // mid's plan: lo with P > 10 added, hi with P < 20 added.
  Result<UnionQuery> plan =
      ComparisonAwarePlan(mid.program, mid.goal, views, &interner_);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->disjuncts.size(), 2u);
  for (const Rule& d : plan->disjuncts) {
    EXPECT_EQ(d.comparisons.size(), 1u);
  }
  EXPECT_TRUE(ContainedCmp(mid, all, views));
  EXPECT_FALSE(ContainedCmp(all, mid, views));
}

TEST_F(ComparisonPlansTest, PositiveQueriesWithMultipleRules) {
  // Theorem 5.1 covers positive (multi-rule) queries; each rule gets its
  // own candidates.
  ViewSet views = V(
      "cheap(X, P) :- item(X, P), P < 10.\n"
      "luxury(X, P) :- item(X, P), P > 100.\n");
  GoalQuery extremes = GQ(
      "qx(X) :- item(X, P), P < 10.\n"
      "qx(X) :- item(X, P), P > 100.\n",
      "qx");
  Result<UnionQuery> plan =
      ComparisonAwarePlan(extremes.program, extremes.goal, views, &interner_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // cheap serves the first rule, luxury the second; no explicit tests
  // needed (the views guarantee the bounds).
  ASSERT_EQ(plan->disjuncts.size(), 2u);
  for (const Rule& d : plan->disjuncts) {
    EXPECT_TRUE(d.comparisons.empty()) << d.ToString(interner_);
  }
  GoalQuery all = GQ("qa(X) :- item(X, P).", "qa");
  EXPECT_TRUE(ContainedCmp(extremes, all, views));
  // And everything retrievable is extreme, so the converse holds too.
  EXPECT_TRUE(ContainedCmp(all, extremes, views));
}

TEST_F(ComparisonPlansTest, VariableToVariableComparisons) {
  // Non-semi-interval constraints (X < Y) flow through the complete test.
  ViewSet views = V("pairs(X, Y) :- rel(X, Y), X < Y.");
  GoalQuery ordered = GQ("qo(X, Y) :- rel(X, Y), X < Y.", "qo");
  GoalQuery any = GQ("qn(X, Y) :- rel(X, Y).", "qn");
  EXPECT_TRUE(ContainedCmp(ordered, any, views));
  // All retrievable pairs are ordered, so the converse holds relatively.
  EXPECT_TRUE(ContainedCmp(any, ordered, views));
  // But against the strictly-reversed query it fails.
  GoalQuery reversed = GQ("qr(X, Y) :- rel(X, Y), Y < X.", "qr");
  EXPECT_FALSE(ContainedCmp(any, reversed, views));
}

TEST_F(ComparisonPlansTest, PlanRoutesAgreeOnComparisonFreeInputs) {
  // For comparison-free queries and views, the Section 3 procedure and the
  // comparison-aware procedure must coincide.
  ViewSet views = V(
      "v1(X, Y) :- p(X, Y).\n"
      "v2(X) :- p(X, X).\n"
      "v3(Y, Z) :- r(Y, Z).\n");
  std::vector<GoalQuery> queries = {
      GQ("g0(X, Z) :- p(X, Y), r(Y, Z).", "g0"),
      GQ("g1(X) :- p(X, X).", "g1"),
      GQ("g2(X) :- p(X, Y).", "g2"),
      GQ("g3(X) :- p(X, Y), r(Y, X).", "g3"),
  };
  for (const GoalQuery& a : queries) {
    for (const GoalQuery& b : queries) {
      if (a.program.rules[0].head.arity() != b.program.rules[0].head.arity())
        continue;
      Result<RelativeContainmentResult> classic =
          RelativelyContained(a, b, views, &interner_);
      ASSERT_TRUE(classic.ok());
      Result<RelativeContainmentResult> cmp =
          RelativelyContainedWithComparisons(a, b, views, &interner_);
      ASSERT_TRUE(cmp.ok());
      Result<bool> exp =
          RelativelyContainedViaExpansion(a, b, views, &interner_);
      ASSERT_TRUE(exp.ok());
      EXPECT_EQ(classic->contained, cmp->contained);
      EXPECT_EQ(classic->contained, *exp);
    }
  }
}

}  // namespace
}  // namespace relcont
