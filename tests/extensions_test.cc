#include <algorithm>
#include <gtest/gtest.h>

#include "containment/cq_containment.h"
#include "containment/minimize.h"
#include "datalog/parser.h"
#include "eval/evaluator.h"
#include "relcont/cwa.h"
#include "relcont/gav.h"

namespace relcont {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  Program P(const std::string& text) {
    Result<Program> p = ParseProgram(text, &interner_);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return *p;
  }
  Rule R(const std::string& text) {
    Result<Rule> r = ParseRule(text, &interner_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }
  Database D(const std::string& text) {
    Result<Database> d = ParseDatabase(text, &interner_);
    EXPECT_TRUE(d.ok()) << d.status().ToString();
    return *d;
  }
  GoalQuery GQ(const std::string& text, const char* goal) {
    return GoalQuery{P(text), interner_.Intern(goal)};
  }
  SymbolId S(const char* name) { return interner_.Intern(name); }

  Interner interner_;
};

// ---------------------------------------------------------------------------
// Global-as-view (Sections 1/6).
// ---------------------------------------------------------------------------

TEST_F(ExtensionsTest, GavComposeUnfoldsDefinitions) {
  GavSchema schema = *ParseGavSchema(
      "cardesc(C, M, Col, Y) :- dealer1(C, M, Col, Y).\n"
      "cardesc(C, M, Col, Y) :- dealer2(C, M, Col, Y).\n"
      "review(M, R, S) :- critics(M, R, S).\n",
      &interner_);
  Program q = P("q(C) :- cardesc(C, M, Col, Y), review(M, R, S).");
  Result<UnionQuery> composed = schema.Compose(q, S("q"), &interner_);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();
  EXPECT_EQ(composed->disjuncts.size(), 2u);  // two dealers x one critic
  for (const Rule& d : composed->disjuncts) {
    for (const Atom& a : d.body) {
      EXPECT_TRUE(a.predicate == S("dealer1") || a.predicate == S("dealer2") ||
                  a.predicate == S("critics"));
    }
  }
}

TEST_F(ExtensionsTest, GavRejectsRecursionAndSourceQueries) {
  EXPECT_FALSE(ParseGavSchema("m(X) :- m(X).", &interner_).ok());
  GavSchema schema = *ParseGavSchema("m(X) :- s(X).", &interner_);
  Program over_sources = P("q(X) :- s(X).");
  EXPECT_FALSE(schema.Compose(over_sources, S("q"), &interner_).ok());
}

TEST_F(ExtensionsTest, GavRelativeContainmentIsClassicalOnCompositions) {
  // Mediated `reachable2` is defined as source-edge pairs; containment of
  // mediated queries reduces to plain containment over the sources.
  GavSchema schema = *ParseGavSchema(
      "hop(X, Y) :- e(X, Y).\n"
      "hop2(X, Z) :- e(X, Y), e(Y, Z).\n",
      &interner_);
  GoalQuery two{P("q2(X, Z) :- hop2(X, Z)."), S("q2")};
  GoalQuery pair{P("qp(X, Z) :- hop(X, Y), hop(Y, Z)."), S("qp")};
  Result<RelativeContainmentResult> a =
      GavRelativelyContained(two, pair, schema, &interner_);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_TRUE(a->contained);
  Result<RelativeContainmentResult> b =
      GavRelativelyContained(pair, two, schema, &interner_);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->contained);  // the two formulations coincide under GAV
}

TEST_F(ExtensionsTest, GavRelativeWithoutClassical) {
  // The only definition of `review` hard-codes top ratings, so two
  // classically different queries coincide relative to the schema.
  GavSchema schema = *ParseGavSchema(
      "cardesc(C, M, Col, Y) :- dealer(C, M, Col, Y).\n"
      "review(M, R, 10) :- topcritics(M, R).\n",
      &interner_);
  GoalQuery all{P("qa(C, R) :- cardesc(C, M, Col, Y), review(M, R, S)."),
                S("qa")};
  GoalQuery top{P("qt(C, R) :- cardesc(C, M, Col, Y), review(M, R, 10)."),
                S("qt")};
  Result<RelativeContainmentResult> r =
      GavRelativelyContained(all, top, schema, &interner_);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->contained);
}

TEST_F(ExtensionsTest, GavCertainAnswersEvaluateComposition) {
  GavSchema schema = *ParseGavSchema(
      "cardesc(C, M) :- dealer1(C, M).\n"
      "cardesc(C, M) :- dealer2(C, M).\n",
      &interner_);
  Program q = P("q(C) :- cardesc(C, corolla).");
  Database inst = D("dealer1(1, corolla). dealer2(2, corolla). "
                    "dealer2(3, pinto).");
  Result<std::vector<Tuple>> answers =
      GavCertainAnswers(q, S("q"), schema, inst, &interner_);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 2u);
}

TEST_F(ExtensionsTest, GavUncoveredMediatedRelationYieldsNothing) {
  GavSchema schema = *ParseGavSchema("m(X) :- s(X).", &interner_);
  Program q = P("q(X) :- m(X), unheard_of(X).");
  Result<UnionQuery> composed = schema.Compose(q, S("q"), &interner_);
  ASSERT_TRUE(composed.ok());
  EXPECT_TRUE(composed->disjuncts.empty());
}

// ---------------------------------------------------------------------------
// Closed-world refuter (Section 6 / Example 5).
// ---------------------------------------------------------------------------

TEST_F(ExtensionsTest, CwaRefuterFindsExample5Counterexample) {
  ViewSet views = *ParseViews(
      "v1(X) :- p(X, Y).\n"
      "v2(Y) :- p(X, Y).\n"
      "v3(X, Y) :- p(X, Y), r(X, Y).\n",
      &interner_);
  GoalQuery q1{P("q1(X, Y) :- p(X, Y)."), S("q1")};
  GoalQuery q2{P("q2(X, Y) :- r(X, Y)."), S("q2")};
  CwaRefuterOptions opts;
  opts.max_instance_facts = 2;
  opts.domain_size = 2;
  Result<std::optional<CwaRefutation>> r =
      RefuteCwaContainment(q1, q2, views, &interner_, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->has_value());
  // The refutation instance must behave as claimed: recompute the oracle.
  std::vector<ViewDefinition> defs = views.views();
  for (ViewDefinition& d : defs) d.complete = true;
  ViewSet complete(std::move(defs));
  Result<std::vector<Tuple>> c1 = BruteForceCertainAnswers(
      q1.program, q1.goal, complete, (*r)->instance, &interner_);
  ASSERT_TRUE(c1.ok());
  EXPECT_NE(std::find(c1->begin(), c1->end(), (*r)->answer), c1->end());
  Result<std::vector<Tuple>> c2 = BruteForceCertainAnswers(
      q2.program, q2.goal, complete, (*r)->instance, &interner_);
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(std::find(c2->begin(), c2->end(), (*r)->answer), c2->end());
}

TEST_F(ExtensionsTest, CwaRefuterInconclusiveOnActualContainment) {
  ViewSet views = *ParseViews("v(X, Y) :- p(X, Y).", &interner_);
  GoalQuery strong{P("q1(X) :- p(X, X)."), S("q1")};
  GoalQuery weak{P("q2(X) :- p(X, Y)."), S("q2")};
  CwaRefuterOptions opts;
  opts.max_instance_facts = 2;
  opts.domain_size = 2;
  Result<std::optional<CwaRefutation>> r =
      RefuteCwaContainment(strong, weak, views, &interner_, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->has_value());  // classical containment holds, so no cx
}

// ---------------------------------------------------------------------------
// Core minimization.
// ---------------------------------------------------------------------------

TEST_F(ExtensionsTest, MinimizeDropsRedundantAtoms) {
  // e(X, Y2) folds onto e(X, Y): the second atom is redundant.
  Rule q = R("q(X) :- e(X, Y), e(X, Y2).");
  Result<Rule> core = MinimizeQuery(q);
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->body.size(), 1u);
  EXPECT_FALSE(*IsMinimal(q));
}

TEST_F(ExtensionsTest, MinimizeKeepsGenuineJoins) {
  Rule q = R("q(X) :- e(X, Y), f(Y, Z).");
  Result<Rule> core = MinimizeQuery(q);
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->body.size(), 2u);
  EXPECT_TRUE(*IsMinimal(q));
}

TEST_F(ExtensionsTest, MinimizeBooleanChainOntoLoop) {
  // A boolean 3-chain plus a self-loop folds entirely onto the loop.
  Rule q = R("q() :- e(X, Y), e(Y, Z), e(Z, W), e(V, V).");
  Result<Rule> core = MinimizeQuery(q);
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->body.size(), 1u);
  ASSERT_EQ(core->body[0].args.size(), 2u);
  EXPECT_EQ(core->body[0].args[0], core->body[0].args[1]);
}

TEST_F(ExtensionsTest, MinimizePreservesEquivalence) {
  const std::vector<std::string> queries = {
      "q(X) :- e(X, Y), e(X, Y2), e(Y2, Z).",
      "q(X, Y) :- e(X, Y), e(X, W).",
      "q() :- e(A, B), e(B, C), e(C, A), e(D, D).",
      "q(X) :- p(X, 1), p(X, Y).",
  };
  for (const std::string& text : queries) {
    Rule q = R(text);
    Result<Rule> core = MinimizeQuery(q);
    ASSERT_TRUE(core.ok()) << text;
    Result<bool> a = CqContained(q, *core);
    Result<bool> b = CqContained(*core, q);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_TRUE(*a && *b) << text << " -> " << core->ToString(interner_);
    EXPECT_LE(core->body.size(), q.body.size());
    EXPECT_TRUE(*IsMinimal(*core));
  }
}

TEST_F(ExtensionsTest, MinimizeRejectsComparisons) {
  Rule q = R("q(X) :- e(X, Y), Y < 3.");
  EXPECT_EQ(MinimizeQuery(q).status().code(), StatusCode::kUnsupported);
}

TEST_F(ExtensionsTest, MinimizeKeepsHeadVariableSupport) {
  // Dropping e(X, Y) would make head var Y unsafe even though a folding
  // exists; the core must stay safe.
  Rule q = R("q(Y) :- e(X, Y), e(X2, Y2).");
  Result<Rule> core = MinimizeQuery(q);
  ASSERT_TRUE(core.ok());
  ASSERT_EQ(core->body.size(), 1u);
  EXPECT_TRUE(core->CheckSafe().ok());
}

// ---------------------------------------------------------------------------
// Indexed evaluation agrees with the unindexed reference.
// ---------------------------------------------------------------------------

TEST_F(ExtensionsTest, IndexedEvaluationMatchesReference) {
  Program tc = P(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n");
  Database graph = D(
      "e(1, 2). e(2, 3). e(3, 1). e(3, 4). e(4, 4). e(5, 1).");
  EvalOptions with, without;
  with.use_index = true;
  without.use_index = false;
  Result<EvalResult> a = Evaluate(tc, graph, with);
  Result<EvalResult> b = Evaluate(tc, graph, without);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->database.SameFactsAs(b->database));
}

TEST_F(ExtensionsTest, IndexHandlesSkolemValues) {
  Program p = P(
      "v(f(X), X) :- a(X).\n"
      "w(Y) :- v(Z, Y), u(Z).\n"
      "u(f(X)) :- a(X).\n");
  Database db = D("a(1). a(2).");
  Result<std::vector<Tuple>> out = EvaluateGoal(p, S("w"), db);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
}

}  // namespace
}  // namespace relcont
