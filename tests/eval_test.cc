#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "eval/evaluator.h"

namespace relcont {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  Program MustParseProgram(const std::string& text) {
    Result<Program> p = ParseProgram(text, &interner_);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return *p;
  }
  Database MustParseDatabase(const std::string& text) {
    Result<Database> d = ParseDatabase(text, &interner_);
    EXPECT_TRUE(d.ok()) << d.status().ToString();
    return *d;
  }
  std::vector<Tuple> Goal(const Program& p, const char* goal,
                          const Database& db) {
    Result<std::vector<Tuple>> r =
        EvaluateGoal(p, interner_.Lookup(goal), db);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  Interner interner_;
};

TEST_F(EvalTest, DatabaseAddAndContains) {
  Database db = MustParseDatabase("p(1, 2). p(1, 2). p(3, 4).");
  SymbolId p = interner_.Lookup("p");
  EXPECT_EQ(db.TotalFacts(), 2);
  EXPECT_EQ(db.Count(p), 2);
  EXPECT_TRUE(db.Contains(p, {Term::Number(1), Term::Number(2)}));
  EXPECT_FALSE(db.Contains(p, {Term::Number(2), Term::Number(1)}));
}

TEST_F(EvalTest, ParseDatabaseRejectsRulesAndNonGround) {
  EXPECT_FALSE(ParseDatabase("p(X).", &interner_).ok());
  EXPECT_FALSE(ParseDatabase("p(1) :- q(1).", &interner_).ok());
}

TEST_F(EvalTest, ActiveDomainDeduplicates) {
  Database db = MustParseDatabase("p(1, red). q(red, 2).");
  EXPECT_EQ(db.ActiveDomain().size(), 3u);  // 1, red, 2
}

TEST_F(EvalTest, SingleRuleJoin) {
  Program p = MustParseProgram("q(X, Z) :- e(X, Y), e(Y, Z).");
  Database db = MustParseDatabase("e(1, 2). e(2, 3). e(3, 4).");
  std::vector<Tuple> out = Goal(p, "q", db);
  EXPECT_EQ(out.size(), 2u);  // (1,3), (2,4)
}

TEST_F(EvalTest, TransitiveClosure) {
  Program p = MustParseProgram(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n");
  Database db = MustParseDatabase("e(1, 2). e(2, 3). e(3, 4). e(4, 2).");
  std::vector<Tuple> out = Goal(p, "tc", db);
  // From 1: 2,3,4; from 2: 3,4,2; from 3: 4,2,3; from 4: 2,3,4.
  EXPECT_EQ(out.size(), 12u);
}

TEST_F(EvalTest, SemiNaiveIterationCountIsLinearInChain) {
  Program p = MustParseProgram(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n");
  Database db =
      MustParseDatabase("e(1, 2). e(2, 3). e(3, 4). e(4, 5). e(5, 6).");
  Result<EvalResult> r = Evaluate(p, db);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->iterations, 5);
  EXPECT_LE(r->iterations, 7);
}

TEST_F(EvalTest, ComparisonsFilterDerivations) {
  Program p = MustParseProgram("old(C) :- car(C, Y), Y < 1970.");
  Database db = MustParseDatabase("car(1, 1965). car(2, 1980). car(3, 1969).");
  std::vector<Tuple> out = Goal(p, "old", db);
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(EvalTest, ComparisonOnSymbolsSupportsEqualityOnly) {
  Program p = MustParseProgram(
      "match(X) :- item(X, C), C = red.\n"
      "nomatch(X) :- item(X, C), C != red.\n"
      "weird(X) :- item(X, C), C < red.\n");
  Database db = MustParseDatabase("item(1, red). item(2, blue).");
  EXPECT_EQ(Goal(p, "match", db).size(), 1u);
  EXPECT_EQ(Goal(p, "nomatch", db).size(), 1u);
  EXPECT_EQ(Goal(p, "weird", db).size(), 0u);  // order undefined on symbols
}

TEST_F(EvalTest, ConstantsInRuleBodiesSelect) {
  Program p = MustParseProgram("top(M, R) :- review(M, R, 10).");
  Database db = MustParseDatabase(
      "review(corolla, good, 10). review(pinto, bad, 2).");
  std::vector<Tuple> out = Goal(p, "top", db);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0].value().symbol(), interner_.Lookup("corolla"));
}

TEST_F(EvalTest, SkolemHeadsConstructFunctionTerms) {
  // Inverse-rule style: antique cars have an unknown color f(C, M, Y).
  Program p = MustParseProgram(
      "cardesc(C, M, f(C, M, Y), Y) :- antique(C, M, Y).\n"
      "q(C, Col) :- cardesc(C, M, Col, Y).\n");
  Database db = MustParseDatabase("antique(7, model_t, 1920).");
  // q's answer contains a Skolem term, so it is filtered from goal output.
  EXPECT_EQ(Goal(p, "q", db).size(), 0u);
  // But the fact itself is derived.
  Result<EvalResult> r = Evaluate(p, db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->database.Tuples(interner_.Lookup("cardesc")).size(), 1u);
  EXPECT_EQ(r->database.Tuples(interner_.Lookup("q")).size(), 1u);
}

TEST_F(EvalTest, SkolemTermsJoinStructurally) {
  Program p = MustParseProgram(
      "v(f(X), X) :- a(X).\n"
      "w(Y) :- v(Z, Y), v(Z, Y2).\n");
  Database db = MustParseDatabase("a(1). a(2).");
  std::vector<Tuple> out = Goal(p, "w", db);
  // f(1) joins only with f(1): w(1), w(2).
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(EvalTest, DepthBoundStopsRunawaySkolems) {
  // p(f(X)) :- p(X) would diverge without the term-depth bound.
  Program p = MustParseProgram("p(f(X)) :- p(X).\n");
  Database db = MustParseDatabase("p(0).");
  EvalOptions opts;
  opts.max_term_depth = 3;
  Result<EvalResult> r = Evaluate(p, db, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->depth_truncated);
  EXPECT_EQ(r->database.Tuples(interner_.Lookup("p")).size(), 4u);
}

TEST_F(EvalTest, MaxFactsBound) {
  Program p = MustParseProgram("pair(X, Y) :- a(X), a(Y).");
  std::string facts;
  for (int i = 0; i < 100; ++i) facts += "a(" + std::to_string(i) + ").";
  Database db = MustParseDatabase(facts);
  EvalOptions opts;
  opts.max_facts = 1000;  // 100 EDB + 10000 derived > 1000
  Result<EvalResult> r = Evaluate(p, db, opts);
  EXPECT_EQ(r.status().code(), StatusCode::kBoundReached);
}

TEST_F(EvalTest, MultipleGoalRulesUnion) {
  Program p = MustParseProgram(
      "q(X) :- a(X).\n"
      "q(X) :- b(X).\n");
  Database db = MustParseDatabase("a(1). b(2). b(1).");
  EXPECT_EQ(Goal(p, "q", db).size(), 2u);
}

TEST_F(EvalTest, EmptyEdbYieldsEmptyGoal) {
  Program p = MustParseProgram("q(X) :- a(X).");
  Database db;
  EXPECT_EQ(Goal(p, "q", db).size(), 0u);
}

TEST_F(EvalTest, MutualRecursionTerminates) {
  Program p = MustParseProgram(
      "even(X) :- zero(X).\n"
      "even(Y) :- succ(X, Y), odd(X).\n"
      "odd(Y) :- succ(X, Y), even(X).\n");
  Database db = MustParseDatabase(
      "zero(0). succ(0, 1). succ(1, 2). succ(2, 3). succ(3, 4).");
  EXPECT_EQ(Goal(p, "even", db).size(), 3u);  // 0, 2, 4
  EXPECT_EQ(Goal(p, "odd", db).size(), 2u);   // 1, 3
}

TEST_F(EvalTest, DatabaseSetOperations) {
  Database a = MustParseDatabase("p(1). q(2).");
  Database b = MustParseDatabase("p(1).");
  EXPECT_TRUE(b.SubsetOf(a));
  EXPECT_FALSE(a.SubsetOf(b));
  EXPECT_FALSE(a.SameFactsAs(b));
  b.UnionWith(a);
  EXPECT_TRUE(a.SameFactsAs(b));
}

}  // namespace
}  // namespace relcont
