#include <gtest/gtest.h>

#include "containment/cq_containment.h"
#include "datalog/parser.h"
#include "eval/evaluator.h"
#include "rewriting/inverse_rules.h"

namespace relcont {
namespace {

// The mediated schema and sources of the paper's Example 1.
constexpr char kCarViews[] = R"(
  redcars(CarNo, Model, Year) :- cardesc(CarNo, Model, red, Year).
  antiquecars(CarNo, Model, Year) :-
      cardesc(CarNo, Model, Color, Year), Year < 1970.
  caranddriver(Model, Review) :- review(Model, Review, 10).
)";

class RewritingTest : public ::testing::Test {
 protected:
  ViewSet MustParseViews(const std::string& text) {
    Result<ViewSet> v = ParseViews(text, &interner_);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return *v;
  }
  Program MustParseProgram(const std::string& text) {
    Result<Program> p = ParseProgram(text, &interner_);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return *p;
  }
  SymbolId S(const char* name) { return interner_.Intern(name); }

  Interner interner_;
};

TEST_F(RewritingTest, ViewSetBasics) {
  ViewSet v = MustParseViews(kCarViews);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_NE(v.Find(S("redcars")), nullptr);
  EXPECT_EQ(v.Find(S("cardesc")), nullptr);
  EXPECT_EQ(v.SourcePredicates().size(), 3u);
  std::set<SymbolId> mediated = v.MediatedPredicates();
  EXPECT_EQ(mediated.size(), 2u);
  EXPECT_TRUE(mediated.count(S("cardesc")) > 0);
  EXPECT_TRUE(mediated.count(S("review")) > 0);
}

TEST_F(RewritingTest, ViewSetRejectsDuplicates) {
  EXPECT_FALSE(
      ParseViews("v(X) :- p(X).\nv(X) :- q(X).\n", &interner_).ok());
}

TEST_F(RewritingTest, ViewSetRejectsSourceInBody) {
  EXPECT_FALSE(
      ParseViews("v(X) :- p(X).\nw(X) :- v(X).\n", &interner_).ok());
}

TEST_F(RewritingTest, ViewSetRejectsUnsafeView) {
  EXPECT_FALSE(ParseViews("v(X, Y) :- p(X).\n", &interner_).ok());
}

// Paper Example 2: the inverse rules of the three car sources.
TEST_F(RewritingTest, InverseRulesMatchExample2) {
  ViewSet v = MustParseViews(kCarViews);
  Result<Program> inv = InvertViews(v, &interner_);
  ASSERT_TRUE(inv.ok()) << inv.status().ToString();
  ASSERT_EQ(inv->rules.size(), 3u);  // one relational subgoal per view

  // redcars: cardesc(CarNo, Model, red, Year) :- redcars(CarNo, Model, Year).
  const Rule& red = inv->rules[0];
  EXPECT_EQ(red.head.predicate, S("cardesc"));
  EXPECT_EQ(red.head.args[2].value().symbol(), S("red"));
  ASSERT_EQ(red.body.size(), 1u);
  EXPECT_EQ(red.body[0].predicate, S("redcars"));

  // antiquecars: cardesc(C, M, f(C, M, Y), Y) :- antiquecars(C, M, Y).
  const Rule& antique = inv->rules[1];
  EXPECT_EQ(antique.head.predicate, S("cardesc"));
  const Term& skolem = antique.head.args[2];
  ASSERT_TRUE(skolem.is_function());
  EXPECT_EQ(skolem.args().size(), 3u);  // f(CarNo, Model, Year)
  EXPECT_TRUE(antique.comparisons.empty());  // view comparison dropped

  // caranddriver: review(Model, Review, 10) :- caranddriver(Model, Review).
  const Rule& cad = inv->rules[2];
  EXPECT_EQ(cad.head.predicate, S("review"));
  EXPECT_EQ(cad.head.args[2].value().number(), Rational(10));
}

TEST_F(RewritingTest, InverseRulesMultiAtomBody) {
  ViewSet v = MustParseViews("v3(X, Y) :- p(X, Y), r(X, Y).");
  Result<Program> inv = InvertViews(v, &interner_);
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(inv->rules.size(), 2u);
}

TEST_F(RewritingTest, InverseRulesSharedSkolemAcrossSubgoals) {
  // The same existential Y must become the same Skolem term in both
  // inverted subgoals.
  ViewSet v = MustParseViews("v(X) :- p(X, Y), r(Y).");
  Result<Program> inv = InvertViews(v, &interner_);
  ASSERT_TRUE(inv.ok());
  ASSERT_EQ(inv->rules.size(), 2u);
  const Term& in_p = inv->rules[0].head.args[1];
  const Term& in_r = inv->rules[1].head.args[0];
  EXPECT_TRUE(in_p.is_function());
  EXPECT_EQ(in_p, in_r);
}

TEST_F(RewritingTest, MaximallyContainedPlanStructure) {
  ViewSet v = MustParseViews(kCarViews);
  Program q1 = MustParseProgram(
      "q1(CarNo, Review) :- cardesc(CarNo, Model, C, Y), "
      "review(Model, Review, Rating).");
  Result<Program> plan = MaximallyContainedPlan(q1, v, &interner_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->rules.size(), 4u);  // query + 3 inverse rules
  // The plan's EDB relations are exactly the sources.
  std::set<SymbolId> edb = plan->EdbPredicates();
  EXPECT_EQ(edb, v.SourcePredicates());
}

TEST_F(RewritingTest, PlanRejectsQueryOverSources) {
  ViewSet v = MustParseViews(kCarViews);
  Program bad = MustParseProgram("q(X) :- redcars(X, M, Y).");
  EXPECT_FALSE(MaximallyContainedPlan(bad, v, &interner_).ok());
}

// Paper Example 3: function-term elimination and unfolding yield exactly
// two conjunctive plans for Q1.
TEST_F(RewritingTest, PlanToUnionMatchesExample3) {
  ViewSet v = MustParseViews(kCarViews);
  Program q1 = MustParseProgram(
      "q1(CarNo, Review) :- cardesc(CarNo, Model, C, Y), "
      "review(Model, Review, Rating).");
  Result<Program> plan = MaximallyContainedPlan(q1, v, &interner_);
  ASSERT_TRUE(plan.ok());
  Result<UnionQuery> ucq = PlanToUnion(*plan, S("q1"), v, &interner_);
  ASSERT_TRUE(ucq.ok()) << ucq.status().ToString();
  ASSERT_EQ(ucq->disjuncts.size(), 2u);

  UnionQuery expected;
  expected.disjuncts.push_back(*ParseRule(
      "p1(CarNo, Review) :- redcars(CarNo, Model, Year), "
      "caranddriver(Model, Review).",
      &interner_));
  expected.disjuncts.push_back(*ParseRule(
      "p1(CarNo, Review) :- antiquecars(CarNo, Model, Year), "
      "caranddriver(Model, Review).",
      &interner_));
  Result<bool> eq = UnionEquivalent(*ucq, expected);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST_F(RewritingTest, PlanToUnionDropsSkolemJoinsThatCannotGround) {
  // Asking for the (unknown) color of antique cars must yield only the
  // red-cars plan: the antique color Skolem cannot join `pcolor`.
  ViewSet v = MustParseViews(
      "redcars(C, M, Y) :- cardesc(C, M, red, Y).\n"
      "antiquecars(C, M, Y) :- cardesc(C, M, Col, Y).\n"
      "pcolor(Col) :- popular(Col).\n");
  Program q = MustParseProgram(
      "q(C) :- cardesc(C, M, Col, Y), popular(Col).");
  Result<Program> plan = MaximallyContainedPlan(q, v, &interner_);
  ASSERT_TRUE(plan.ok());
  Result<UnionQuery> ucq = PlanToUnion(*plan, S("q"), v, &interner_);
  ASSERT_TRUE(ucq.ok());
  ASSERT_EQ(ucq->disjuncts.size(), 1u);
  EXPECT_EQ(ucq->disjuncts[0].body[0].predicate, S("redcars"));
}

TEST_F(RewritingTest, PlanToUnionKeepsSelfJoinThroughSameSkolem) {
  // Joining an unknown value with itself is fine: both sides resolve to the
  // same Skolem term, which unifies away.
  ViewSet v = MustParseViews("src(X, Y) :- p(X, Z), q(Z, Y).");
  Program query = MustParseProgram("qq(X, Y) :- p(X, Z), q(Z, Y).");
  Result<Program> plan = MaximallyContainedPlan(query, v, &interner_);
  ASSERT_TRUE(plan.ok());
  Result<UnionQuery> ucq = PlanToUnion(*plan, S("qq"), v, &interner_);
  ASSERT_TRUE(ucq.ok());
  ASSERT_EQ(ucq->disjuncts.size(), 1u);
  // The Skolems for Z unify, collapsing both subgoals onto one src atom;
  // semantically the disjunct must equal qq(X, Y) :- src(X, Y).
  UnionQuery expected;
  expected.disjuncts.push_back(*ParseRule("qq(X, Y) :- src(X, Y).",
                                          &interner_));
  Result<bool> eq = UnionEquivalent(*ucq, expected);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST_F(RewritingTest, ExpandUnionPlanRestoresMediatedSchema) {
  ViewSet v = MustParseViews(kCarViews);
  UnionQuery plan;
  plan.disjuncts.push_back(*ParseRule(
      "p1(C, R) :- redcars(C, M, Y), caranddriver(M, R).", &interner_));
  Result<UnionQuery> exp = ExpandUnionPlan(plan, v, &interner_);
  ASSERT_TRUE(exp.ok()) << exp.status().ToString();
  ASSERT_EQ(exp->disjuncts.size(), 1u);
  const Rule& e = exp->disjuncts[0];
  ASSERT_EQ(e.body.size(), 2u);
  EXPECT_EQ(e.body[0].predicate, S("cardesc"));
  EXPECT_EQ(e.body[1].predicate, S("review"));
  // The 'red' constant and the rating 10 come back from the view bodies.
  EXPECT_EQ(e.body[0].args[2].value().symbol(), S("red"));
  EXPECT_EQ(e.body[1].args[2].value().number(), Rational(10));
  EXPECT_TRUE(e.comparisons.empty());  // redcars view has no comparisons
}

TEST_F(RewritingTest, ExpandUnionPlanCarriesViewComparisons) {
  ViewSet v = MustParseViews(kCarViews);
  UnionQuery plan;
  plan.disjuncts.push_back(*ParseRule(
      "p(C, R) :- antiquecars(C, M, Y), caranddriver(M, R).", &interner_));
  Result<UnionQuery> exp = ExpandUnionPlan(plan, v, &interner_);
  ASSERT_TRUE(exp.ok());
  ASSERT_EQ(exp->disjuncts.size(), 1u);
  ASSERT_EQ(exp->disjuncts[0].comparisons.size(), 1u);
  EXPECT_EQ(exp->disjuncts[0].comparisons[0].op, ComparisonOp::kLt);
}

TEST_F(RewritingTest, ExpandPlanProgramHandlesRecursivePlans) {
  ViewSet v = MustParseViews("sedge(X, Y) :- edge(X, Y).");
  Program plan = MustParseProgram(
      "tc(X, Y) :- sedge(X, Y).\n"
      "tc(X, Y) :- sedge(X, Z), tc(Z, Y).\n");
  Result<Program> exp = ExpandPlanProgram(plan, v, &interner_);
  ASSERT_TRUE(exp.ok());
  ASSERT_EQ(exp->rules.size(), 2u);
  EXPECT_EQ(exp->rules[0].body[0].predicate, S("edge"));
  EXPECT_EQ(exp->rules[1].body[0].predicate, S("edge"));
  EXPECT_EQ(exp->rules[1].body[1].predicate, S("tc"));
  EXPECT_TRUE(exp->IsRecursive());
}

TEST_F(RewritingTest, ExpandPlanProgramDropsClashingRules) {
  // The plan rule forces s's view head (constant 1) to unify with the
  // clashing constant 2 — impossible, so the rule disappears.
  ViewSet v = MustParseViews("s(1) :- p(1, 1).");
  Program plan;
  plan.rules.push_back(*ParseRule("q() :- s(2).", &interner_));
  Result<Program> exp = ExpandPlanProgram(plan, v, &interner_);
  ASSERT_TRUE(exp.ok());
  EXPECT_TRUE(exp->rules.empty());
}

// Semantics check: evaluating the plan on source instances returns exactly
// the certain answers one gets from the two-disjunct plan of Example 3.
TEST_F(RewritingTest, PlanEvaluationMatchesExample1Story) {
  ViewSet v = MustParseViews(kCarViews);
  Program q1 = MustParseProgram(
      "q1(CarNo, Review) :- cardesc(CarNo, Model, C, Y), "
      "review(Model, Review, Rating).");
  Result<Program> plan = MaximallyContainedPlan(q1, v, &interner_);
  ASSERT_TRUE(plan.ok());
  Database sources = *ParseDatabase(
      "redcars(1, corolla, 1990).\n"
      "antiquecars(2, model_t, 1920).\n"
      "caranddriver(corolla, 'great car').\n"
      "caranddriver(model_t, 'classic').\n",
      &interner_);
  Result<std::vector<Tuple>> answers =
      EvaluateGoal(*plan, S("q1"), sources);
  ASSERT_TRUE(answers.ok());
  // Certain answers: (1, 'great car') from redcars, (2, 'classic') from
  // antiquecars.
  EXPECT_EQ(answers->size(), 2u);
}

}  // namespace
}  // namespace relcont
