#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "datalog/program.h"
#include "datalog/substitution.h"
#include "datalog/unfold.h"

namespace relcont {
namespace {

class DatalogTest : public ::testing::Test {
 protected:
  Rule MustParseRule(const std::string& text) {
    Result<Rule> r = ParseRule(text, &interner_);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << " for: " << text;
    return *r;
  }
  Program MustParseProgram(const std::string& text) {
    Result<Program> p = ParseProgram(text, &interner_);
    EXPECT_TRUE(p.ok()) << p.status().ToString() << " for: " << text;
    return *p;
  }

  Interner interner_;
};

TEST_F(DatalogTest, ParsesSimpleRule) {
  Rule r = MustParseRule("q(X, Y) :- p(X, Z), r(Z, Y).");
  EXPECT_EQ(r.head.arity(), 2);
  EXPECT_EQ(r.body.size(), 2u);
  EXPECT_TRUE(r.comparisons.empty());
  EXPECT_TRUE(r.head.args[0].is_variable());
}

TEST_F(DatalogTest, ParsesFact) {
  Rule r = MustParseRule("p(1, red).");
  EXPECT_TRUE(r.body.empty());
  EXPECT_TRUE(r.head.IsGround());
  EXPECT_TRUE(r.head.args[0].value().is_number());
  EXPECT_TRUE(r.head.args[1].value().is_symbol());
}

TEST_F(DatalogTest, ParsesComparisons) {
  Rule r = MustParseRule(
      "q3(C, R) :- cardesc(C, M, Col, Y), review(M, R, 10), Y < 1970.");
  EXPECT_EQ(r.body.size(), 2u);
  ASSERT_EQ(r.comparisons.size(), 1u);
  EXPECT_EQ(r.comparisons[0].op, ComparisonOp::kLt);
  EXPECT_EQ(r.comparisons[0].rhs.value().number(), Rational(1970));
}

TEST_F(DatalogTest, ParsesAllComparisonOps) {
  Rule r = MustParseRule(
      "q(X) :- p(X, Y, Z), X < 1, X <= 2, Y > 3, Y >= 4, Z = 5, Z != 6.");
  ASSERT_EQ(r.comparisons.size(), 6u);
  EXPECT_EQ(r.comparisons[0].op, ComparisonOp::kLt);
  EXPECT_EQ(r.comparisons[1].op, ComparisonOp::kLe);
  EXPECT_EQ(r.comparisons[2].op, ComparisonOp::kGt);
  EXPECT_EQ(r.comparisons[3].op, ComparisonOp::kGe);
  EXPECT_EQ(r.comparisons[4].op, ComparisonOp::kEq);
  EXPECT_EQ(r.comparisons[5].op, ComparisonOp::kNe);
}

TEST_F(DatalogTest, ParsesZeroArityHeads) {
  Rule r1 = MustParseRule("q() :- p(X).");
  EXPECT_EQ(r1.head.arity(), 0);
  Rule r2 = MustParseRule("q :- p(X).");
  EXPECT_EQ(r2.head.arity(), 0);
}

TEST_F(DatalogTest, ParsesQuotedAndDecimalConstants) {
  Rule r = MustParseRule("q(X) :- p(X, 'red car', 12.5).");
  EXPECT_EQ(r.body[0].args[1].value().symbol(), interner_.Lookup("red car"));
  EXPECT_EQ(r.body[0].args[2].value().number(), Rational(25, 2));
}

TEST_F(DatalogTest, ParsesFunctionTerms) {
  Rule r = MustParseRule("cardesc(C, M, f(C, M, Y), Y) :- antique(C, M, Y).");
  const Term& skolem = r.head.args[2];
  EXPECT_TRUE(skolem.is_function());
  EXPECT_EQ(skolem.args().size(), 3u);
}

TEST_F(DatalogTest, ParseErrorsAreReported) {
  EXPECT_FALSE(ParseRule("q(X) :- ", &interner_).ok());
  EXPECT_FALSE(ParseRule("q(X) :- p(X", &interner_).ok());
  EXPECT_FALSE(ParseRule("q(X) :- p(X) r(X).", &interner_).ok());
  EXPECT_FALSE(ParseRule("q(X) : p(X).", &interner_).ok());
  EXPECT_FALSE(ParseRule("q(X) :- p('unterminated).", &interner_).ok());
}

TEST_F(DatalogTest, CommentsAreSkipped) {
  Program p = MustParseProgram(
      "% listing rules\n"
      "q(X) :- p(X).  % body comment\n"
      "p(1).\n");
  EXPECT_EQ(p.rules.size(), 2u);
}

TEST_F(DatalogTest, RoundTripThroughPrinter) {
  const std::string text =
      "q3(C, R) :- cardesc(C, M, Col, Y), review(M, R, 10), Y < 1970.";
  Rule r = MustParseRule(text);
  std::string printed = r.ToString(interner_);
  Rule reparsed = MustParseRule(printed);
  EXPECT_EQ(r, reparsed) << printed;
}

TEST_F(DatalogTest, SafetyAcceptsSafeRule) {
  Rule r = MustParseRule("q(X) :- p(X, Y), Y < 3.");
  EXPECT_TRUE(r.CheckSafe().ok());
}

TEST_F(DatalogTest, SafetyRejectsUnboundHeadVariable) {
  Rule r = MustParseRule("q(X, W) :- p(X, Y).");
  Status s = r.CheckSafe();
  EXPECT_EQ(s.code(), StatusCode::kUnsafe);
}

TEST_F(DatalogTest, SafetyRejectsComparisonOnlyVariable) {
  Rule r = MustParseRule("q(X) :- p(X), W < 3.");
  EXPECT_EQ(r.CheckSafe().code(), StatusCode::kUnsafe);
}

TEST_F(DatalogTest, VariableCollection) {
  Rule r = MustParseRule("q(X, Y) :- p(X, Z), r(Z, Y), Z < 5.");
  std::vector<SymbolId> vars = r.Variables();
  EXPECT_EQ(vars.size(), 3u);  // X, Y, Z
  EXPECT_EQ(r.HeadVariables().size(), 2u);
  EXPECT_EQ(r.BodyVariables().size(), 3u);
}

TEST_F(DatalogTest, ConstantsCollection) {
  Rule r = MustParseRule("q(X) :- p(X, red, 7), X < 9.");
  std::vector<Value> consts = r.Constants();
  EXPECT_EQ(consts.size(), 3u);  // red, 7, 9
}

TEST_F(DatalogTest, IdbEdbSplit) {
  Program p = MustParseProgram(
      "q(X) :- p(X), r(X).\n"
      "p(X) :- s(X, Y).\n");
  std::set<SymbolId> idb = p.IdbPredicates();
  std::set<SymbolId> edb = p.EdbPredicates();
  EXPECT_EQ(idb.size(), 2u);  // q, p
  EXPECT_EQ(edb.size(), 2u);  // r, s
  EXPECT_TRUE(idb.count(interner_.Lookup("q")) > 0);
  EXPECT_TRUE(edb.count(interner_.Lookup("s")) > 0);
}

TEST_F(DatalogTest, RecursionDetection) {
  Program nonrec = MustParseProgram(
      "q(X) :- p(X).\n"
      "p(X) :- e(X).\n");
  EXPECT_FALSE(nonrec.IsRecursive());

  Program rec = MustParseProgram(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n");
  EXPECT_TRUE(rec.IsRecursive());
  EXPECT_EQ(rec.RecursivePredicates().size(), 1u);

  Program mutual = MustParseProgram(
      "a(X) :- b(X).\n"
      "b(X) :- a(X).\n"
      "c(X) :- a(X).\n");
  EXPECT_TRUE(mutual.IsRecursive());
  EXPECT_EQ(mutual.RecursivePredicates().size(), 2u);
  EXPECT_EQ(mutual.RecursivePredicates().count(interner_.Lookup("c")), 0u);
}

TEST_F(DatalogTest, TopologicalOrderRespectsDependencies) {
  Program p = MustParseProgram(
      "a(X) :- b(X), c(X).\n"
      "b(X) :- c(X).\n"
      "c(X) :- e(X).\n");
  Result<std::vector<SymbolId>> order = p.TopologicalIdbOrder();
  ASSERT_TRUE(order.ok());
  ASSERT_EQ(order->size(), 3u);
  auto pos = [&](const char* name) {
    SymbolId id = interner_.Lookup(name);
    for (size_t i = 0; i < order->size(); ++i) {
      if ((*order)[i] == id) return static_cast<int>(i);
    }
    return -1;
  };
  EXPECT_LT(pos("c"), pos("b"));
  EXPECT_LT(pos("b"), pos("a"));
}

TEST_F(DatalogTest, TopologicalOrderFailsOnRecursion) {
  Program rec = MustParseProgram("t(X) :- t(X).\n");
  EXPECT_EQ(rec.TopologicalIdbOrder().status().code(),
            StatusCode::kUnsupported);
}

TEST_F(DatalogTest, UnificationBindsVariables) {
  Rule r1 = MustParseRule("q(X, Y) :- p(X, Y).");
  Rule r2 = MustParseRule("q(1, Z) :- p(1, Z).");
  Substitution s;
  EXPECT_TRUE(UnifyAtoms(r1.head, r2.head, &s));
  Term x = s.Apply(Term::Var(interner_.Lookup("X")));
  EXPECT_TRUE(x.is_constant());
  EXPECT_EQ(x.value().number(), Rational(1));
}

TEST_F(DatalogTest, UnificationOccursCheck) {
  SymbolId x = interner_.Intern("X");
  SymbolId f = interner_.Intern("f");
  Substitution s;
  // X = f(X) must fail.
  EXPECT_FALSE(UnifyTerms(Term::Var(x), Term::Function(f, {Term::Var(x)}), &s));
}

TEST_F(DatalogTest, UnificationFunctionTerms) {
  SymbolId f = interner_.Intern("f");
  SymbolId g = interner_.Intern("g");
  SymbolId x = interner_.Intern("X");
  SymbolId y = interner_.Intern("Y");
  {
    // f(X, 2) ~ f(1, Y) succeeds with X=1, Y=2.
    Substitution s;
    EXPECT_TRUE(UnifyTerms(
        Term::Function(f, {Term::Var(x), Term::Number(Rational(2))}),
        Term::Function(f, {Term::Number(Rational(1)), Term::Var(y)}), &s));
    EXPECT_EQ(s.Apply(Term::Var(x)).value().number(), Rational(1));
    EXPECT_EQ(s.Apply(Term::Var(y)).value().number(), Rational(2));
  }
  {
    // f(X) ~ g(X) fails (different functors).
    Substitution s;
    EXPECT_FALSE(UnifyTerms(Term::Function(f, {Term::Var(x)}),
                            Term::Function(g, {Term::Var(x)}), &s));
  }
  {
    // f(X) ~ 1 fails (function vs constant).
    Substitution s;
    EXPECT_FALSE(UnifyTerms(Term::Function(f, {Term::Var(x)}),
                            Term::Number(Rational(1)), &s));
  }
}

TEST_F(DatalogTest, UnificationConstantClash) {
  SymbolId red = interner_.Intern("red");
  Substitution s;
  EXPECT_FALSE(
      UnifyTerms(Term::Number(Rational(1)), Term::Symbol(red), &s));
  EXPECT_TRUE(UnifyTerms(Term::Symbol(red), Term::Symbol(red), &s));
}

TEST_F(DatalogTest, SubstitutionFollowsChains) {
  SymbolId x = interner_.Intern("X");
  SymbolId y = interner_.Intern("Y");
  Substitution s;
  s.Bind(x, Term::Var(y));
  s.Bind(y, Term::Number(Rational(5)));
  Term out = s.Apply(Term::Var(x));
  EXPECT_TRUE(out.is_constant());
  EXPECT_EQ(out.value().number(), Rational(5));
}

TEST_F(DatalogTest, RenameApartProducesDisjointVariables) {
  Rule r = MustParseRule("q(X, Y) :- p(X, Y, Z).");
  Rule renamed = RenameApart(r, &interner_);
  std::vector<SymbolId> orig = r.Variables();
  std::vector<SymbolId> fresh = renamed.Variables();
  EXPECT_EQ(fresh.size(), orig.size());
  for (SymbolId v : fresh) {
    for (SymbolId w : orig) EXPECT_NE(v, w);
  }
  // Structure preserved: head vars coincide with body prefix.
  EXPECT_EQ(renamed.head.args[0], renamed.body[0].args[0]);
  EXPECT_EQ(renamed.head.args[1], renamed.body[0].args[1]);
}

TEST_F(DatalogTest, UnfoldLinearChain) {
  Program p = MustParseProgram(
      "q(X) :- a(X).\n"
      "a(X) :- b(X, Y), c(Y).\n");
  Result<UnionQuery> u =
      UnfoldToUnion(p, interner_.Lookup("q"), &interner_);
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  ASSERT_EQ(u->disjuncts.size(), 1u);
  EXPECT_EQ(u->disjuncts[0].body.size(), 2u);
  EXPECT_EQ(u->disjuncts[0].body[0].predicate, interner_.Lookup("b"));
}

TEST_F(DatalogTest, UnfoldBranchingProducesUnion) {
  Program p = MustParseProgram(
      "q(X) :- a(X), a(X).\n"  // a resolved twice
      "a(X) :- b(X).\n"
      "a(X) :- c(X).\n");
  Result<UnionQuery> u = UnfoldToUnion(p, interner_.Lookup("q"), &interner_);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->disjuncts.size(), 4u);  // 2 choices x 2 choices
}

TEST_F(DatalogTest, UnfoldCarriesComparisons) {
  Program p = MustParseProgram(
      "q(X) :- a(X), X < 10.\n"
      "a(X) :- b(X, Y), Y >= 3.\n");
  Result<UnionQuery> u = UnfoldToUnion(p, interner_.Lookup("q"), &interner_);
  ASSERT_TRUE(u.ok());
  ASSERT_EQ(u->disjuncts.size(), 1u);
  EXPECT_EQ(u->disjuncts[0].comparisons.size(), 2u);
}

TEST_F(DatalogTest, UnfoldRejectsRecursion) {
  Program p = MustParseProgram("t(X) :- e(X).\nt(X) :- t(X).\n");
  EXPECT_EQ(UnfoldToUnion(p, interner_.Lookup("t"), &interner_)
                .status()
                .code(),
            StatusCode::kUnsupported);
}

TEST_F(DatalogTest, UnfoldWithConstantsFiltersUnunifiableBranches) {
  // a's second definition requires its argument to be 1; resolving q's
  // subgoal a(2) against it must fail.
  Program p = MustParseProgram(
      "q() :- a(2).\n"
      "a(X) :- b(X).\n"
      "a(1) :- c().\n");
  Result<UnionQuery> u = UnfoldToUnion(p, interner_.Lookup("q"), &interner_);
  ASSERT_TRUE(u.ok());
  ASSERT_EQ(u->disjuncts.size(), 1u);
  EXPECT_EQ(u->disjuncts[0].body[0].predicate, interner_.Lookup("b"));
}

TEST_F(DatalogTest, UnfoldMaxDisjunctsBound) {
  Program p = MustParseProgram(
      "q(X) :- a(X), a(X), a(X), a(X).\n"
      "a(X) :- b(X).\n"
      "a(X) :- c(X).\n");
  UnfoldOptions opts;
  opts.max_disjuncts = 3;
  Result<UnionQuery> u =
      UnfoldToUnion(p, interner_.Lookup("q"), &interner_, opts);
  EXPECT_EQ(u.status().code(), StatusCode::kBoundReached);
}

TEST_F(DatalogTest, ProgramToStringRoundTrips) {
  Program p = MustParseProgram(
      "q(X) :- p(X, Y), Y < 10.\n"
      "p(1, 2).\n");
  Program reparsed = *ParseProgram(p.ToString(interner_), &interner_);
  ASSERT_EQ(reparsed.rules.size(), p.rules.size());
  EXPECT_EQ(reparsed.rules[0], p.rules[0]);
  EXPECT_EQ(reparsed.rules[1], p.rules[1]);
}

}  // namespace
}  // namespace relcont
