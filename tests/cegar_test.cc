// Property tests for the CEGAR counterexample search (relcont/cegar.h).
//
// The four pinned properties:
//
//   1. Blocking clauses are SOUND: a blocked proposal can never become a
//      counterexample, so enabling blocking never changes a verdict —
//      checked on a handcrafted family where clauses provably fire and on
//      a seeded random sweep.
//   2. The iteration count is monotone non-increasing as clauses
//      accumulate: cover checks with blocking on never exceed (and on the
//      handcrafted family strictly undercut) the count with blocking off.
//   3. A budget trip mid-refinement answers kBoundReached at the
//      `cegar_search` bound site — never a verdict — with the trace,
//      process-wide, and per-run counters all agreeing on the partial
//      work.
//   4. An 8-thread strategy=cegar batch returns the serial verdicts (the
//      run also joins the TSan matrix in CI, pinning the engine's shared
//      state — the global counters — as race-free).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "datalog/parser.h"
#include "relcont/cegar.h"
#include "relcont/pi2p_reduction.h"
#include "relcont/relative_containment.h"
#include "relcont/workload.h"
#include "service/protocol.h"
#include "service/service.h"
#include "trace/trace.h"

namespace relcont {
namespace {

GoalQuery MakeQuery(const std::string& text, Interner* interner) {
  Result<Program> program = ParseProgram(text, interner);
  EXPECT_TRUE(program.ok()) << program.status().ToString() << "\n" << text;
  GoalQuery q;
  q.program = *program;
  q.goal = program->rules[0].head.predicate;
  return q;
}

ViewSet MakeViews(const std::vector<std::string>& rules, Interner* interner) {
  ViewSet views;
  for (const std::string& text : rules) {
    Result<Rule> rule = ParseRule(text, interner);
    EXPECT_TRUE(rule.ok()) << rule.status().ToString() << "\n" << text;
    Status added = views.Add(ViewDefinition{*rule, /*complete=*/false});
    EXPECT_TRUE(added.ok()) << added.ToString();
  }
  return views;
}

Result<RelativeContainmentResult> RunCegar(const GoalQuery& q1,
                                           const GoalQuery& q2,
                                           const ViewSet& views,
                                           Interner* interner, bool blocking,
                                           CegarStats* stats) {
  RelativeContainmentOptions options;
  options.strategy = ContainmentStrategy::kCegar;
  options.cegar.enable_blocking = blocking;
  return CegarRelativelyContained(q1, q2, views, interner, options, stats);
}

// ---------------------------------------------------------------------------
// 1 + 2. Blocking soundness and iteration monotonicity.
// ---------------------------------------------------------------------------

// A family where blocking provably fires: Q1 joins two variable-disjoint
// mediated atoms, Q2 inspects only the second. A cover's support closure
// therefore pins only the q-position's choice, the learned clause leaves
// the p-position free, and every later revisit of the q-position under a
// different p-choice is pruned: k cover checks instead of k^2.
TEST(CegarPropertyTest, BlockingPrunesProvablyOnDisjointJoinFamily) {
  for (int k = 2; k <= 5; ++k) {
    Interner interner;
    std::vector<std::string> view_rules;
    for (int i = 0; i < k; ++i) {
      std::string idx = std::to_string(i);
      view_rules.push_back("v" + idx + "(A, B) :- p(A, B).");
      view_rules.push_back("w" + idx + "(A, B) :- q(A, B).");
    }
    ViewSet views = MakeViews(view_rules, &interner);
    GoalQuery q1 = MakeQuery("q1() :- p(X, Y), q(Z, W).", &interner);
    GoalQuery q2 = MakeQuery("q2() :- q(A, B).", &interner);

    CegarStats off;
    Result<RelativeContainmentResult> r_off =
        RunCegar(q1, q2, views, &interner, /*blocking=*/false, &off);
    CegarStats on;
    Result<RelativeContainmentResult> r_on =
        RunCegar(q1, q2, views, &interner, /*blocking=*/true, &on);
    ASSERT_TRUE(r_off.ok()) << r_off.status().ToString();
    ASSERT_TRUE(r_on.ok()) << r_on.status().ToString();

    // Soundness: every proposal is covered either way.
    EXPECT_TRUE(r_off->contained) << "k=" << k;
    EXPECT_TRUE(r_on->contained) << "k=" << k;
    EXPECT_EQ(off.blocking_clauses, 0u);
    EXPECT_GT(on.blocking_clauses, 0u) << "k=" << k;

    // Exact counts: the proposal space is k x k; blocking collapses the
    // cover checks to the first p-row (k checks), pruning the rest.
    uint64_t kk = static_cast<uint64_t>(k);
    EXPECT_EQ(off.proposals, kk * kk) << "k=" << k;
    EXPECT_EQ(off.iterations, kk * kk) << "k=" << k;
    EXPECT_EQ(on.iterations, kk) << "k=" << k;
    EXPECT_LT(on.proposals, off.proposals) << "k=" << k;
  }
}

TEST(CegarPropertyTest, BlockingNeverChangesVerdictsOnRandomSweep) {
  int decided = 0;
  uint64_t clauses_total = 0;
  for (uint64_t seed = 1; seed <= 150; ++seed) {
    Interner interner;
    RandomQueryOptions options;
    options.num_atoms = 3;
    options.num_variables = 4;
    options.num_predicates = 2;
    options.arity = 2;
    options.constant_probability = 0.15;
    options.head_arity = 1;
    options.seed = seed;
    Rule r1 = RandomConjunctiveQuery(options, "q1", &interner);
    RandomQueryOptions options2 = options;
    options2.seed = seed * 2654435761ULL + 97;
    Rule r2 = RandomConjunctiveQuery(options2, "q2", &interner);
    GoalQuery q1{Program({r1}), r1.head.predicate};
    GoalQuery q2{Program({r2}), r2.head.predicate};
    ViewSet views = RandomViews(options, /*num_views=*/5, &interner);
    if (views.empty() || r1.head.arity() != r2.head.arity()) continue;

    CegarStats off;
    Result<RelativeContainmentResult> r_off =
        RunCegar(q1, q2, views, &interner, /*blocking=*/false, &off);
    CegarStats on;
    Result<RelativeContainmentResult> r_on =
        RunCegar(q1, q2, views, &interner, /*blocking=*/true, &on);
    ASSERT_EQ(r_on.ok(), r_off.ok()) << "seed=" << seed;
    if (!r_off.ok()) continue;
    ++decided;

    // Soundness both ways: a blocked proposal never becomes a
    // counterexample (on-NO => off-NO), and blocking never invents one
    // (on-YES => off-YES).
    EXPECT_EQ(r_on->contained, r_off->contained) << "seed=" << seed;
    EXPECT_EQ(r_on->witness.has_value(), r_off->witness.has_value())
        << "seed=" << seed;

    // Monotonicity: clauses only ever remove cover checks.
    EXPECT_LE(on.iterations, off.iterations) << "seed=" << seed;
    EXPECT_LE(on.proposals, off.proposals) << "seed=" << seed;
    EXPECT_EQ(off.blocking_clauses, 0u) << "seed=" << seed;
    clauses_total += on.blocking_clauses;
  }
  // The sweep must exercise real decisions and real clause learning.
  EXPECT_GT(decided, 100);
  EXPECT_GT(clauses_total, 0u);
}

// ---------------------------------------------------------------------------
// 3. Budget trip mid-refinement.
// ---------------------------------------------------------------------------

TEST(CegarPropertyTest, BudgetTripAnswersBoundReachedAtCegarSearchSite) {
  Interner interner;
  QbfFormula f = RandomQbf(/*num_exists=*/3, /*num_forall=*/8,
                           /*num_clauses=*/4, /*seed=*/7);
  Result<Pi2pInstance> inst = BuildPi2pReduction(f, &interner);
  ASSERT_TRUE(inst.ok()) << inst.status().ToString();

  // Reference run under an UNLIMITED budget: completes normally while
  // counting every charged step, which calibrates the bounded run below.
  CegarStats full;
  int64_t total_steps = 0;
  {
    WorkBudget counter;
    BudgetScope scope(&counter);
    Result<RelativeContainmentResult> reference =
        RunCegar(inst->q2, inst->q1, inst->views, &interner,
                 /*blocking=*/true, &full);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    total_steps = counter.steps_used();
  }
  ASSERT_GT(full.iterations, 2u);
  ASSERT_GT(total_steps, 8);

  // Bounded run at half the measured work: deep enough to clear plan
  // building and check some proposals, far too shallow for the whole loop.
  WorkBudget budget;
  budget.set_max_steps(total_steps / 2);
  trace::TraceContext ctx;
  trace::TraceScope trace_scope(&ctx);
  BudgetScope budget_scope(&budget);
  CegarGlobalCounters& global = GlobalCegarCounters();
  uint64_t g_iterations = global.iterations.load();
  uint64_t g_clauses = global.blocking_clauses.load();
  uint64_t g_proposals = global.proposals.load();

  CegarStats partial;
  Result<RelativeContainmentResult> bounded =
      RunCegar(inst->q2, inst->q1, inst->views, &interner, /*blocking=*/true,
               &partial);

  // Never a wrong verdict: the trip surfaces as a status, at the engine's
  // own bound site.
  ASSERT_FALSE(bounded.ok());
  EXPECT_EQ(bounded.status().code(), StatusCode::kBoundReached)
      << bounded.status().ToString();
  EXPECT_EQ(BoundSiteFromStatus(bounded.status()), "cegar_search")
      << bounded.status().ToString();

  // The loop tripped mid-refinement: some proposals were checked, not all.
  EXPECT_GT(partial.iterations, 0u);
  EXPECT_LT(partial.iterations, full.iterations);

  // Counter deltas pinned across all three accounting paths: the per-run
  // stats out-param, the thread's trace counters (when hooks are compiled
  // in), and the process-wide aggregates must agree on the partial work,
  // even on the error path.
  if (trace::kCompiledIn) {
    EXPECT_EQ(ctx.TotalCount(trace::Counter::kCegarIterations),
              partial.iterations);
    EXPECT_EQ(ctx.TotalCount(trace::Counter::kCegarBlockingClauses),
              partial.blocking_clauses);
    EXPECT_EQ(ctx.TotalCount(trace::Counter::kCegarProposals),
              partial.proposals);
  }
  EXPECT_EQ(global.iterations.load() - g_iterations, partial.iterations);
  EXPECT_EQ(global.blocking_clauses.load() - g_clauses,
            partial.blocking_clauses);
  EXPECT_EQ(global.proposals.load() - g_proposals, partial.proposals);
}

// ---------------------------------------------------------------------------
// 4. Concurrency: strategy=cegar under the batch fan-out (TSan matrix).
// ---------------------------------------------------------------------------

std::string RenderViews(const ViewSet& views, const Interner& interner) {
  std::string text;
  for (const ViewDefinition& v : views.views()) {
    text += v.rule.ToString(interner);
    text += '\n';
  }
  return text;
}

std::string RenderQuery(const GoalQuery& q, const Interner& interner) {
  std::string text;
  for (const Rule& r : q.program.rules) {
    text += r.ToString(interner);
    text += '\n';
  }
  return text;
}

TEST(CegarPropertyTest, EightThreadCegarBatchMatchesSerialVerdicts) {
  // A pool of QBF instances, both containment directions, all forced
  // through the CEGAR engine; 8 batch workers hammer the global counters
  // concurrently.
  std::vector<DecisionRequest> requests;
  std::string views_text;
  {
    Interner gen;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      Interner local;
      QbfFormula f = RandomQbf(/*num_exists=*/3, /*num_forall=*/4,
                               /*num_clauses=*/3, seed);
      Result<Pi2pInstance> inst = BuildPi2pReduction(f, &local);
      ASSERT_TRUE(inst.ok()) << inst.status().ToString();
      DecisionRequest request;
      request.q1_text = RenderQuery(inst->q2, local);
      request.q2_text = RenderQuery(inst->q1, local);
      request.catalog = "qbf" + std::to_string(seed);
      request.options.strategy = ContainmentStrategy::kCegar;
      request.bypass_cache = true;
      requests.push_back(request);
      DecisionRequest reversed = request;
      std::swap(reversed.q1_text, reversed.q2_text);
      requests.push_back(reversed);
      if (seed == 1) views_text = RenderViews(inst->views, local);
    }
  }
  // All instances of the family share the same catalog shape per seed;
  // register each seed's catalog.
  ContainmentService parallel_service;
  ContainmentService serial_service;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Interner local;
    QbfFormula f = RandomQbf(3, 4, 3, seed);
    Result<Pi2pInstance> inst = BuildPi2pReduction(f, &local);
    ASSERT_TRUE(inst.ok());
    std::string views = RenderViews(inst->views, local);
    std::string name = "qbf" + std::to_string(seed);
    ASSERT_TRUE(parallel_service.catalogs().Register(name, views).ok());
    ASSERT_TRUE(serial_service.catalogs().Register(name, views).ok());
  }

  std::vector<DecisionResponse> serial =
      serial_service.ExecuteBatch(requests, 1);
  std::vector<DecisionResponse> concurrent =
      parallel_service.ExecuteBatch(requests, 8);
  ASSERT_EQ(serial.size(), requests.size());
  ASSERT_EQ(concurrent.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(serial[i].status.ok()) << serial[i].status.ToString();
    ASSERT_TRUE(concurrent[i].status.ok()) << concurrent[i].status.ToString();
    EXPECT_EQ(concurrent[i].contained, serial[i].contained) << "at " << i;
  }
  // The engine ran: the process-wide proposal counter moved.
  EXPECT_GT(GlobalCegarCounters().proposals.load(), 0u);
}

// ---------------------------------------------------------------------------
// Protocol surface for the strategy option.
// ---------------------------------------------------------------------------

TEST(CegarPropertyTest, StrategyProtocolOptionParsesAndRejects) {
  ContainmentService service;
  ServerSession session(&service);
  session.HandleLine("CATALOG c VIEW v(X, Y) :- p(X, Y).");
  session.HandleLine("DEFINE a a(X) :- p(X, X).");
  session.HandleLine("DEFINE b b(X) :- p(X, Y).");
  for (const char* strategy : {"cegar", "scan", "auto"}) {
    std::string out = session.HandleLine(
        std::string("CONTAINED? a b @c strategy=") + strategy);
    EXPECT_EQ(out.rfind("YES section3", 0), 0u) << strategy << ": " << out;
  }
  std::string no =
      session.HandleLine("CONTAINED? b a @c strategy=cegar budget=100000");
  EXPECT_EQ(no.rfind("NO section3", 0), 0u) << no;
  std::string err = session.HandleLine("CONTAINED? a b @c strategy=bogus");
  EXPECT_EQ(err.rfind("ERR InvalidArgument", 0), 0u) << err;
  EXPECT_NE(err.find("cegar, scan, or auto"), std::string::npos) << err;
}

TEST(CegarPropertyTest, StrategyNamesRoundTrip) {
  for (ContainmentStrategy s :
       {ContainmentStrategy::kScan, ContainmentStrategy::kCegar,
        ContainmentStrategy::kAuto}) {
    std::optional<ContainmentStrategy> parsed =
        ParseContainmentStrategy(ContainmentStrategyName(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(ParseContainmentStrategy("SCAN").has_value());
  EXPECT_FALSE(ParseContainmentStrategy("").has_value());
}

}  // namespace
}  // namespace relcont
