#include <gtest/gtest.h>

#include "binding/sound_plan.h"
#include "datalog/parser.h"

namespace relcont {
namespace {

class SoundPlanTest : public ::testing::Test {
 protected:
  ViewSet V(const std::string& text) {
    Result<ViewSet> v = ParseViews(text, &interner_);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return *v;
  }
  Program P(const std::string& text) {
    Result<Program> p = ParseProgram(text, &interner_);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return *p;
  }
  SymbolId S(const char* name) { return interner_.Intern(name); }

  Interner interner_;
};

// The paper's red-cars example around Definition 4.2.
constexpr char kRedCarViews[] =
    "redcars(C, M, Y) :- cardesc(C, M, red, Y).\n";
constexpr char kRedQuery[] = "q(C, Y) :- cardesc(C, M, red, Y).\n";

TEST_F(SoundPlanTest, CorollaProbeIsExecutableButUnsound) {
  // The paper's "cheating" plan: p(C, Y) :- redcars(C, corolla, Y).
  // It obeys the access pattern (the model position is a constant) but
  // introduces a constant not in Q ∪ V, so it is not sound.
  ViewSet views = V(kRedCarViews);
  BindingPatterns patterns;
  patterns.Set(S("redcars"), *Adornment::Parse("fbf"));
  Program query = P(kRedQuery);
  Program plan = P("p(C, Y) :- redcars(C, corolla, Y).\n");
  Result<SoundPlanResult> r =
      CheckSoundPlan(plan, S("p"), query, S("q"), views, patterns,
                     &interner_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->executable);
  EXPECT_FALSE(r->constants_ok);
  EXPECT_TRUE(r->expansion_contained);
  EXPECT_FALSE(r->sound);
}

TEST_F(SoundPlanTest, UnexecutablePlanDetected) {
  ViewSet views = V(kRedCarViews);
  BindingPatterns patterns;
  patterns.Set(S("redcars"), *Adornment::Parse("fbf"));
  Program query = P(kRedQuery);
  Program plan = P("p(C, Y) :- redcars(C, M, Y).\n");  // M unbound
  Result<SoundPlanResult> r =
      CheckSoundPlan(plan, S("p"), query, S("q"), views, patterns,
                     &interner_);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->executable);
  EXPECT_FALSE(r->sound);
}

TEST_F(SoundPlanTest, GoodPlanIsSound) {
  ViewSet views = V(
      "models(M) :- popular(M).\n"
      "redcars(C, M, Y) :- cardesc(C, M, red, Y).\n");
  BindingPatterns patterns;
  patterns.Set(S("redcars"), *Adornment::Parse("fbf"));
  Program query = P(kRedQuery);
  Program plan = P("p(C, Y) :- models(M), redcars(C, M, Y).\n");
  Result<SoundPlanResult> r =
      CheckSoundPlan(plan, S("p"), query, S("q"), views, patterns,
                     &interner_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->executable);
  EXPECT_TRUE(r->constants_ok);
  EXPECT_TRUE(r->expansion_contained);
  EXPECT_TRUE(r->sound);
}

TEST_F(SoundPlanTest, OverbroadPlanFailsExpansionContainment) {
  ViewSet views = V(
      "allcars(C, M, Col, Y) :- cardesc(C, M, Col, Y).\n");
  Program query = P(kRedQuery);  // red cars only
  Program plan = P("p(C, Y) :- allcars(C, M, Col, Y).\n");  // any color
  BindingPatterns none;
  Result<SoundPlanResult> r = CheckSoundPlan(
      plan, S("p"), query, S("q"), views, none, &interner_);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->executable);
  EXPECT_TRUE(r->constants_ok);
  EXPECT_FALSE(r->expansion_contained);
  EXPECT_FALSE(r->sound);
}

TEST_F(SoundPlanTest, RecursivePlanCounterexampleIsDefinite) {
  ViewSet views = V(
      "seed(X) :- link(a, X).\n"
      "next(X, Y) :- link(X, Y).\n");
  BindingPatterns patterns;
  patterns.Set(S("next"), *Adornment::Parse("bf"));
  // The reference query only wants links out of a, but the recursive plan
  // walks arbitrarily far.
  Program query = P("q(Y) :- link(a, Y).\n");
  Program plan = P(
      "p(Y) :- reach(Y).\n"
      "reach(Y) :- seed(Y).\n"
      "reach(Y) :- reach(X), next(X, Y).\n");
  Result<SoundPlanResult> r =
      CheckSoundPlan(plan, S("p"), query, S("q"), views, patterns,
                     &interner_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->executable);
  EXPECT_FALSE(r->expansion_contained);
  EXPECT_FALSE(r->sound);
}

TEST_F(SoundPlanTest, RecursivePlanAgainstRecursionCoverIsInconclusive) {
  ViewSet views = V(
      "seed(X) :- link(a, X).\n"
      "next(X, Y) :- link(X, Y).\n");
  BindingPatterns patterns;
  patterns.Set(S("next"), *Adornment::Parse("bf"));
  Program query = P("q(Y) :- link(X, Y).\n");  // any link target
  Program plan = P(
      "p(Y) :- reach(Y).\n"
      "reach(Y) :- seed(Y).\n"
      "reach(Y) :- reach(X), next(X, Y).\n");
  Result<SoundPlanResult> r =
      CheckSoundPlan(plan, S("p"), query, S("q"), views, patterns,
                     &interner_);
  // Every expansion IS contained, but the bounded search cannot certify
  // the infinite family.
  EXPECT_EQ(r.status().code(), StatusCode::kBoundReached);
}

TEST_F(SoundPlanTest, PlanPredicateCollisionRejected) {
  ViewSet views = V("v(X) :- p(X).");
  Program query = P("q(X) :- p(X).");
  Program plan = P("p(X) :- v(X).");  // collides with mediated p
  BindingPatterns none;
  EXPECT_EQ(CheckSoundPlan(plan, S("p"), query, S("q"), views, none,
                           &interner_)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SoundPlanTest, PlanOverUnknownRelationsRejected) {
  ViewSet views = V("v(X) :- p(X).");
  Program query = P("q(X) :- p(X).");
  Program plan = P("g(X) :- mystery(X).");
  BindingPatterns none;
  EXPECT_EQ(CheckSoundPlan(plan, S("g"), query, S("q"), views, none,
                           &interner_)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace relcont
