#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "relcont/relative_containment.h"

namespace relcont {
namespace {

class OneRecursiveTest : public ::testing::Test {
 protected:
  ViewSet V(const std::string& text) {
    Result<ViewSet> v = ParseViews(text, &interner_);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return *v;
  }
  GoalQuery GQ(const std::string& text, const char* goal) {
    Result<Program> p = ParseProgram(text, &interner_);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return GoalQuery{*p, interner_.Intern(goal)};
  }

  Interner interner_;
};

constexpr char kEdgeView[] = "sedge(X, Y) :- e(X, Y).\n";

constexpr char kTcQuery[] =
    "tc(X, Y) :- e(X, Y).\n"
    "tc(X, Y) :- e(X, Z), tc(Z, Y).\n";

// --- Q2 recursive (exact direction) ----------------------------------------

TEST_F(OneRecursiveTest, PathContainedInTransitiveClosure) {
  ViewSet views = V(kEdgeView);
  GoalQuery path2 = GQ("q(X, Y) :- e(X, Z), e(Z, Y).", "q");
  GoalQuery tc = GQ(kTcQuery, "tc");
  Result<bool> r =
      RelativelyContainedOneRecursive(path2, tc, views, &interner_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(*r);
}

TEST_F(OneRecursiveTest, DisconnectedPairNotContainedInTc) {
  ViewSet views = V(kEdgeView);
  GoalQuery pair = GQ("q(X, Y) :- e(X, Z), e(W, Y).", "q");
  GoalQuery tc = GQ(kTcQuery, "tc");
  Result<bool> r =
      RelativelyContainedOneRecursive(pair, tc, views, &interner_);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST_F(OneRecursiveTest, SourceCoverageMattersForRecursiveTarget) {
  // Only 2-paths are exported, so every retrievable edge-pair chains; a
  // 1-edge query is unanswerable and trivially contained.
  ViewSet views = V("spath(X, Z) :- e(X, Y), e(Y, Z).\n");
  GoalQuery single = GQ("q(X, Y) :- e(X, Y).", "q");
  GoalQuery tc = GQ(kTcQuery, "tc");
  Result<bool> r =
      RelativelyContainedOneRecursive(single, tc, views, &interner_);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);  // empty plan: no certain answers to contain
}

// --- Q1 recursive (semi-decision direction) --------------------------------

TEST_F(OneRecursiveTest, TcNotContainedInBoundedPaths) {
  ViewSet views = V(kEdgeView);
  GoalQuery tc = GQ(kTcQuery, "tc");
  GoalQuery short_paths = GQ(
      "q(X, Y) :- e(X, Y).\n"
      "q(X, Y) :- e(X, Z), e(Z, Y).\n",
      "q");
  Result<bool> r =
      RelativelyContainedOneRecursive(tc, short_paths, views, &interner_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(*r);  // a 3-chain expansion escapes both disjuncts
}

TEST_F(OneRecursiveTest, TcOverSelfLoopViewsIsInconclusiveButNotWrong) {
  // Sources only export self-loops, so every tc expansion collapses onto a
  // loop and IS contained in the plain edge query — but the bounded search
  // cannot certify an infinite expansion family, so it must answer
  // kBoundReached rather than guessing.
  ViewSet views = V("loops(X) :- e(X, X).\n");
  GoalQuery tc = GQ(kTcQuery, "tc");
  GoalQuery edge = GQ("q(X, Y) :- e(X, Y).", "q");
  Result<bool> r =
      RelativelyContainedOneRecursive(tc, edge, views, &interner_);
  EXPECT_EQ(r.status().code(), StatusCode::kBoundReached);
}

TEST_F(OneRecursiveTest, BothRecursiveRejected) {
  ViewSet views = V(kEdgeView);
  GoalQuery tc1 = GQ(kTcQuery, "tc");
  GoalQuery tc2 = GQ(
      "tc2(X, Y) :- e(X, Y).\n"
      "tc2(X, Y) :- e(X, Z), tc2(Z, Y).\n",
      "tc2");
  Result<bool> r =
      RelativelyContainedOneRecursive(tc1, tc2, views, &interner_);
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST_F(OneRecursiveTest, NonrecursivePairDelegatesToSection3) {
  ViewSet views = V(kEdgeView);
  GoalQuery a = GQ("qa(X, Y) :- e(X, Z), e(Z, Y).", "qa");
  GoalQuery b = GQ("qb(X, Y) :- e(X, Z), e(W, Y).", "qb");
  Result<bool> r = RelativelyContainedOneRecursive(a, b, views, &interner_);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  Result<bool> back =
      RelativelyContainedOneRecursive(b, a, views, &interner_);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(*back);
}

// --- Relevant sources -------------------------------------------------------

TEST_F(OneRecursiveTest, RelevantSourcesDetectsIrrelevantSource) {
  // v_diag still matters (an instance can populate it without v_all), but
  // v_other serves a relation the query never touches, and v_proj cannot
  // contribute answers (it hides the second column behind a Skolem).
  ViewSet views = V(
      "v_all(X, Y) :- p(X, Y).\n"
      "v_diag(X) :- p(X, X).\n"
      "v_proj(X) :- p(X, Y).\n"
      "v_other(Z) :- r(Z).\n");
  GoalQuery q = GQ("q(X, Y) :- p(X, Y).", "q");
  Result<std::set<SymbolId>> relevant =
      RelevantSources(q, views, &interner_);
  ASSERT_TRUE(relevant.ok()) << relevant.status().ToString();
  EXPECT_EQ(relevant->size(), 2u);
  EXPECT_TRUE(relevant->count(interner_.Lookup("v_all")) > 0);
  EXPECT_TRUE(relevant->count(interner_.Lookup("v_diag")) > 0);
  EXPECT_EQ(relevant->count(interner_.Lookup("v_other")), 0u);
  EXPECT_EQ(relevant->count(interner_.Lookup("v_proj")), 0u);
}

TEST_F(OneRecursiveTest, RelevantSourcesKeepsComplementarySources) {
  ViewSet views = V(
      "redcars(C, Y) :- car(C, red, Y).\n"
      "bluecars(C, Y) :- car(C, blue, Y).\n");
  GoalQuery q = GQ("q(C) :- car(C, Col, Y).", "q");
  Result<std::set<SymbolId>> relevant =
      RelevantSources(q, views, &interner_);
  ASSERT_TRUE(relevant.ok());
  EXPECT_EQ(relevant->size(), 2u);  // both colors contribute answers
}

TEST_F(OneRecursiveTest, RelevantSourcesEmptyForUnanswerableQuery) {
  ViewSet views = V("v(X) :- p(X).");
  GoalQuery q = GQ("q(X) :- s(X).", "q");
  Result<std::set<SymbolId>> relevant =
      RelevantSources(q, views, &interner_);
  ASSERT_TRUE(relevant.ok());
  EXPECT_TRUE(relevant->empty());
}

}  // namespace
}  // namespace relcont
