#include <gtest/gtest.h>

#include "constraints/order_constraints.h"
#include "containment/comparison_containment.h"
#include "datalog/parser.h"

namespace relcont {
namespace {

class ConstraintsTest : public ::testing::Test {
 protected:
  // Unwraps the materializing oracle (which must succeed in these tests).
  std::vector<Linearization> Lins(const OrderConstraints& c) {
    Result<std::vector<Linearization>> r = c.EnumerateLinearizations();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : std::vector<Linearization>{};
  }

  // Parses the comparisons of a dummy rule "q() :- p(...), <comparisons>."
  std::vector<Comparison> Cmp(const std::string& comparisons) {
    Result<Rule> r =
        ParseRule("q() :- p(A, B, C, D, E), " + comparisons + ".", &interner_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->comparisons;
  }
  Comparison One(const std::string& c) { return Cmp(c)[0]; }
  Term Var(const char* name) { return Term::Var(interner_.Intern(name)); }

  Interner interner_;
};

TEST_F(ConstraintsTest, EmptyIsSatisfiable) {
  OrderConstraints c;
  EXPECT_TRUE(c.IsSatisfiable());
}

TEST_F(ConstraintsTest, SimpleChainSatisfiable) {
  OrderConstraints c;
  ASSERT_TRUE(c.AddAll(Cmp("A < B, B < C")).ok());
  EXPECT_TRUE(c.IsSatisfiable());
  EXPECT_TRUE(c.Entails(One("A < C")));
  EXPECT_TRUE(c.Entails(One("A <= C")));
  EXPECT_TRUE(c.Entails(One("A != C")));
  EXPECT_FALSE(c.Entails(One("C < A")));
  EXPECT_FALSE(c.Entails(One("A = C")));
}

TEST_F(ConstraintsTest, StrictCycleUnsatisfiable) {
  OrderConstraints c;
  ASSERT_TRUE(c.AddAll(Cmp("A < B, B < C, C <= A")).ok());
  EXPECT_FALSE(c.IsSatisfiable());
  // Ex falso: an unsatisfiable set entails anything.
  EXPECT_TRUE(c.Entails(One("A = B")));
}

TEST_F(ConstraintsTest, WeakCycleForcesEquality) {
  OrderConstraints c;
  ASSERT_TRUE(c.AddAll(Cmp("A <= B, B <= A")).ok());
  EXPECT_TRUE(c.IsSatisfiable());
  EXPECT_TRUE(c.Entails(One("A = B")));
  EXPECT_FALSE(c.Entails(One("A != B")));
}

TEST_F(ConstraintsTest, DisequalityPlusWeakOrderIsStrict) {
  OrderConstraints c;
  ASSERT_TRUE(c.AddAll(Cmp("A <= B, A != B")).ok());
  EXPECT_TRUE(c.IsSatisfiable());
  EXPECT_TRUE(c.Entails(One("A < B")));
}

TEST_F(ConstraintsTest, EqualityConflictsWithDisequality) {
  OrderConstraints c;
  ASSERT_TRUE(c.AddAll(Cmp("A = B, A != B")).ok());
  EXPECT_FALSE(c.IsSatisfiable());
}

TEST_F(ConstraintsTest, EntailmentThroughSandwichedDisequality) {
  // A <= X, X <= Y, Y <= B, X != Y entails A < B.
  OrderConstraints c;
  ASSERT_TRUE(c.AddAll(Cmp("A <= D, D <= E, E <= B, D != E")).ok());
  EXPECT_TRUE(c.IsSatisfiable());
  EXPECT_TRUE(c.Entails(One("A < B")));
}

TEST_F(ConstraintsTest, DisequalityPropagatesThroughEquality) {
  OrderConstraints c;
  ASSERT_TRUE(c.AddAll(Cmp("A = B, B != C")).ok());
  EXPECT_TRUE(c.Entails(One("A != C")));
}

TEST_F(ConstraintsTest, ConstantsAreImplicitlyOrdered) {
  OrderConstraints c;
  ASSERT_TRUE(c.AddAll(Cmp("A <= 5, B >= 7")).ok());
  EXPECT_TRUE(c.Entails(One("A < B")));
  EXPECT_TRUE(c.Entails(One("A <= 7")));
  EXPECT_FALSE(c.Entails(One("B <= 5")));
}

TEST_F(ConstraintsTest, ConstantSandwichForcesValue) {
  OrderConstraints c;
  ASSERT_TRUE(c.AddAll(Cmp("A >= 5, A <= 5")).ok());
  EXPECT_TRUE(c.Entails(One("A = 5")));
  OrderConstraints bad;
  ASSERT_TRUE(bad.AddAll(Cmp("A > 5, A < 5")).ok());
  EXPECT_FALSE(bad.IsSatisfiable());
}

TEST_F(ConstraintsTest, RationalConstantsCompareExactly) {
  OrderConstraints c;
  ASSERT_TRUE(c.AddAll(Cmp("A <= 2.5, B >= 5/2")).ok());
  // 2.5 == 5/2, so A <= B but not A < B.
  EXPECT_TRUE(c.Entails(One("A <= B")));
  EXPECT_FALSE(c.Entails(One("A < B")));
}

TEST_F(ConstraintsTest, RejectsSymbolicConstants) {
  OrderConstraints c;
  Status s = c.Add(One("A < red"));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(ConstraintsTest, EntailsTrivialReflexivity) {
  OrderConstraints c;
  EXPECT_TRUE(c.Entails(One("A = A")));
  EXPECT_TRUE(c.Entails(One("A <= A")));
  EXPECT_FALSE(c.Entails(One("A < A")));
  EXPECT_FALSE(c.Entails(One("A != A")));
}

TEST_F(ConstraintsTest, EntailsOnSymbolPairs) {
  OrderConstraints c;
  SymbolId red = interner_.Intern("red");
  SymbolId blue = interner_.Intern("blue");
  Comparison ne(Term::Symbol(red), ComparisonOp::kNe, Term::Symbol(blue));
  EXPECT_TRUE(c.Entails(ne));
  Comparison eq(Term::Symbol(red), ComparisonOp::kEq, Term::Symbol(red));
  EXPECT_TRUE(c.Entails(eq));
  Comparison lt(Term::Symbol(red), ComparisonOp::kLt, Term::Symbol(blue));
  EXPECT_FALSE(c.Entails(lt));
}

TEST_F(ConstraintsTest, UnconstrainedVariablesEntailNothing) {
  OrderConstraints c;
  ASSERT_TRUE(c.AddAll(Cmp("A < B")).ok());
  EXPECT_FALSE(c.Entails(One("C < D")));
  EXPECT_FALSE(c.Entails(One("A < C")));
}

TEST_F(ConstraintsTest, LinearizationsOfTwoFreePoints) {
  OrderConstraints c;
  ASSERT_TRUE(c.AddPoint(Var("A")).ok());
  ASSERT_TRUE(c.AddPoint(Var("B")).ok());
  // A<B, A=B, A>B.
  EXPECT_EQ(Lins(c).size(), 3u);
}

TEST_F(ConstraintsTest, LinearizationsRespectConstraints) {
  OrderConstraints c;
  ASSERT_TRUE(c.AddAll(Cmp("A < B")).ok());
  std::vector<Linearization> lins = Lins(c);
  ASSERT_EQ(lins.size(), 1u);
  ASSERT_EQ(lins[0].size(), 2u);
  EXPECT_EQ(c.points()[lins[0][0][0]], Var("A"));
}

TEST_F(ConstraintsTest, LinearizationsThreeFreePointsOrderedBell) {
  OrderConstraints c;
  ASSERT_TRUE(c.AddPoint(Var("A")).ok());
  ASSERT_TRUE(c.AddPoint(Var("B")).ok());
  ASSERT_TRUE(c.AddPoint(Var("C")).ok());
  // Ordered Bell number of 3 = 13.
  EXPECT_EQ(Lins(c).size(), 13u);
}

TEST_F(ConstraintsTest, LinearizationsKeepConstantsApart) {
  OrderConstraints c;
  ASSERT_TRUE(c.AddPoint(Term::Number(Rational(1))).ok());
  ASSERT_TRUE(c.AddPoint(Term::Number(Rational(2))).ok());
  ASSERT_TRUE(c.AddPoint(Var("A")).ok());
  // A < 1, A = 1, 1 < A < 2, A = 2, A > 2.
  EXPECT_EQ(Lins(c).size(), 5u);
}

TEST_F(ConstraintsTest, LinearizationEnumerationGuardsLargePointSets) {
  OrderConstraints c;
  for (int i = 0; i <= OrderConstraints::kMaxEnumerablePoints; ++i) {
    ASSERT_TRUE(
        c.AddPoint(Term::Var(interner_.Intern("P" + std::to_string(i))))
            .ok());
  }
  EXPECT_TRUE(c.TooManyPointsToEnumerate());
  // The materializing oracle refuses over-cap point sets with an explicit
  // status — no longer an empty vector indistinguishable from "unsat".
  EXPECT_EQ(c.EnumerateLinearizations().status().code(),
            StatusCode::kBoundReached);
  // The containment layer surfaces the bound as kBoundReached: the
  // streaming DFS has no point cap, but 15 unconstrained points exceed
  // the default enumeration node cap.
  std::string body = "q(V0) :- ";
  for (int i = 0; i < 14; ++i) {
    if (i > 0) body += ", ";
    body += "p(V" + std::to_string(i) + ", V" + std::to_string(i + 1) + ")";
  }
  Result<Rule> wide = ParseRule(body + ".", &interner_);
  ASSERT_TRUE(wide.ok());
  // Force the linearization path with a union of case-split disjuncts.
  Result<Rule> le = ParseRule("q(A) :- p(A, B), A <= B.", &interner_);
  Result<Rule> ge = ParseRule("q(A) :- p(A, B), A >= B.", &interner_);
  ASSERT_TRUE(le.ok());
  ASSERT_TRUE(ge.ok());
  UnionQuery split;
  split.disjuncts.push_back(*le);
  split.disjuncts.push_back(*ge);
  Result<bool> r = CqContainedInUnionComplete(*wide, split);
  EXPECT_EQ(r.status().code(), StatusCode::kBoundReached);
}

TEST_F(ConstraintsTest, RealizeAssignsConsistentValues) {
  OrderConstraints c;
  ASSERT_TRUE(c.AddAll(Cmp("A < B, B <= C, C < 10, D > 10")).ok());
  for (const Linearization& lin : Lins(c)) {
    std::map<Term, Rational> sigma = c.Realize(lin);
    EXPECT_LT(sigma.at(Var("A")), sigma.at(Var("B")));
    EXPECT_LE(sigma.at(Var("B")), sigma.at(Var("C")));
    EXPECT_LT(sigma.at(Var("C")), Rational(10));
    EXPECT_GT(sigma.at(Var("D")), Rational(10));
    EXPECT_EQ(sigma.at(Term::Number(Rational(10))), Rational(10));
  }
}

TEST_F(ConstraintsTest, RealizeRespectsClassStructure) {
  OrderConstraints c;
  ASSERT_TRUE(c.AddPoint(Var("A")).ok());
  ASSERT_TRUE(c.AddPoint(Var("B")).ok());
  ASSERT_TRUE(c.AddPoint(Var("C")).ok());
  for (const Linearization& lin : Lins(c)) {
    std::map<Term, Rational> sigma = c.Realize(lin);
    // Rebuild class order from sigma and compare with lin.
    for (size_t i = 0; i < lin.size(); ++i) {
      for (size_t j = i + 1; j < lin.size(); ++j) {
        for (int p : lin[i]) {
          for (int q : lin[j]) {
            EXPECT_LT(sigma.at(c.points()[p]), sigma.at(c.points()[q]));
          }
        }
      }
      for (size_t a = 1; a < lin[i].size(); ++a) {
        EXPECT_EQ(sigma.at(c.points()[lin[i][0]]),
                  sigma.at(c.points()[lin[i][a]]));
      }
    }
  }
}

// Property: entailment agrees with linearization semantics. C ⊨ c iff every
// consistent linearization satisfies c under its realization.
TEST_F(ConstraintsTest, EntailmentAgreesWithLinearizationSemantics) {
  const std::vector<std::string> constraint_sets = {
      "A < B",          "A <= B, B <= C", "A < 5, B > 3",
      "A = B, B < C",   "A != B, A <= B", "A < B, C < D",
      "A <= 4, A >= 4", "A < B, B < 5, C > 2",
  };
  const std::vector<std::string> candidates = {
      "A < B",  "A <= B", "A = B",  "A != B", "B < A",  "A < C",
      "A <= C", "A < 5",  "A <= 4", "B > 3",  "C > 2",  "A = 4",
  };
  for (const std::string& cs : constraint_sets) {
    OrderConstraints c;
    ASSERT_TRUE(c.AddAll(Cmp(cs)).ok());
    for (const std::string& cand : candidates) {
      Comparison target = One(cand);
      // Build a solver with the candidate's points registered too, so that
      // linearizations cover them.
      OrderConstraints full;
      ASSERT_TRUE(full.AddPoint(target.lhs).ok());
      ASSERT_TRUE(full.AddPoint(target.rhs).ok());
      ASSERT_TRUE(full.AddAll(Cmp(cs)).ok());
      bool all_lins_satisfy = true;
      for (const Linearization& lin : Lins(full)) {
        std::map<Term, Rational> sigma = full.Realize(lin);
        Rational a = target.lhs.is_constant() ? target.lhs.value().number()
                                              : sigma.at(target.lhs);
        Rational b = target.rhs.is_constant() ? target.rhs.value().number()
                                              : sigma.at(target.rhs);
        bool holds = false;
        switch (target.op) {
          case ComparisonOp::kEq: holds = a == b; break;
          case ComparisonOp::kNe: holds = a != b; break;
          case ComparisonOp::kLt: holds = a < b; break;
          case ComparisonOp::kLe: holds = a <= b; break;
          case ComparisonOp::kGt: holds = a > b; break;
          case ComparisonOp::kGe: holds = a >= b; break;
        }
        if (!holds) {
          all_lins_satisfy = false;
          break;
        }
      }
      EXPECT_EQ(full.Entails(target), all_lins_satisfy)
          << "constraints {" << cs << "} candidate {" << cand << "}";
    }
  }
}

// The pair-matrix engine has no point cap: satisfiability and entailment
// are closure-based, so constraint sets far beyond the old 12-point
// enumerable limit are decided outright (never kBoundReached).
TEST_F(ConstraintsTest, SatisfiabilityAndEntailmentUncappedAtTwentyPoints) {
  auto v = [&](int i) {
    return Term::Var(interner_.Intern("V" + std::to_string(i)));
  };
  OrderConstraints c;
  const int n = 24;
  for (int i = 0; i + 1 < n; ++i) {
    ASSERT_TRUE(c.Add(Comparison(v(i), ComparisonOp::kLt, v(i + 1))).ok());
  }
  ASSERT_GT(c.points().size(), 20u);
  EXPECT_TRUE(c.IsSatisfiable());
  EXPECT_TRUE(c.Entails(Comparison(v(0), ComparisonOp::kLt, v(n - 1))));
  EXPECT_TRUE(c.Entails(Comparison(v(0), ComparisonOp::kNe, v(n - 1))));
  EXPECT_FALSE(c.Entails(Comparison(v(n - 1), ComparisonOp::kLe, v(0))));
  // Closing the chain into a strict cycle is caught by closure alone.
  ASSERT_TRUE(c.Add(Comparison(v(n - 1), ComparisonOp::kLe, v(0))).ok());
  EXPECT_FALSE(c.IsSatisfiable());
}

TEST_F(ConstraintsTest, StreamingEnumerationHandlesTwentyPlusPoints) {
  // A 20-point strict chain plus two free points: ~2k realizable
  // linearizations out of an ordered-Bell space of ~10^21. The pruned DFS
  // visits only what the closed matrix allows and completes without
  // tripping the node cap.
  auto v = [&](int i) {
    return Term::Var(interner_.Intern("V" + std::to_string(i)));
  };
  OrderConstraints c;
  for (int i = 0; i + 1 < 20; ++i) {
    ASSERT_TRUE(c.Add(Comparison(v(i), ComparisonOp::kLt, v(i + 1))).ok());
  }
  ASSERT_TRUE(c.AddPoint(Var("Y")).ok());
  ASSERT_TRUE(c.AddPoint(Var("Z")).ok());
  ASSERT_EQ(c.points().size(), 22u);
  uint64_t count = 0;
  Status st = c.ForEachLinearization([&](const Linearization& lin) {
    EXPECT_FALSE(lin.empty());
    ++count;
    return true;
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(count, 0u);
}

TEST_F(ConstraintsTest, ContainmentSucceedsBeyondOldEnumerationCap) {
  // 22 dense-order points (20-chain plus free Y, Z): the old
  // materialize-then-iterate path reported kBoundReached here; the
  // streaming DFS decides it.
  std::string body = "q(V0) :- ";
  std::string comparisons;
  for (int i = 0; i + 1 < 20; ++i) {
    body += "p(V" + std::to_string(i) + ", V" + std::to_string(i + 1) + "), ";
    comparisons +=
        ", V" + std::to_string(i) + " < V" + std::to_string(i + 1);
  }
  body += "r(Y, Z)";
  Result<Rule> q1 = ParseRule(body + comparisons + ".", &interner_);
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  // Case-split union on the free pair: no single disjunct is entailed, so
  // the decision must walk the linearizations.
  Result<Rule> le =
      ParseRule("q(A) :- p(A, B), r(C, D), C <= D.", &interner_);
  Result<Rule> ge =
      ParseRule("q(A) :- p(A, B), r(C, D), C >= D.", &interner_);
  ASSERT_TRUE(le.ok());
  ASSERT_TRUE(ge.ok());
  UnionQuery split;
  split.disjuncts.push_back(*le);
  split.disjuncts.push_back(*ge);
  Result<bool> res = CqContainedInUnionComplete(*q1, split);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(*res);
}

}  // namespace
}  // namespace relcont
