// Unit tests for the cooperative work budget (common/budget.h), the
// parallel scan built on it (common/parallel.h), and the unified
// kBoundReached surface the budget gives every search in the library:
// exhaustion never changes an answer, it only turns a truncated search
// into "bound reached [<site>]: ..." instead of a verdict.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "common/parallel.h"
#include "constraints/order_constraints.h"
#include "datalog/parser.h"
#include "eval/evaluator.h"
#include "planner/planner.h"
#include "relcont/decide.h"
#include "relcont/pi2p_reduction.h"

namespace relcont {
namespace {

// ---------------------------------------------------------------------------
// WorkBudget semantics.
// ---------------------------------------------------------------------------

TEST(WorkBudgetTest, UnlimitedBudgetNeverExhausts) {
  WorkBudget budget;
  for (int i = 0; i < 10'000; ++i) EXPECT_TRUE(budget.Charge());
  EXPECT_FALSE(budget.Exhausted());
  EXPECT_EQ(budget.reason(), BudgetReason::kNone);
  EXPECT_EQ(budget.steps_used(), 10'000);
}

TEST(WorkBudgetTest, StepBudgetTripsAtCapAndIsSticky) {
  WorkBudget budget;
  budget.set_max_steps(10);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(budget.Charge()) << i;
  EXPECT_FALSE(budget.Charge());
  EXPECT_TRUE(budget.Exhausted());
  EXPECT_EQ(budget.reason(), BudgetReason::kSteps);
  // Sticky: once tripped, every further charge fails.
  EXPECT_FALSE(budget.Charge());
}

TEST(WorkBudgetTest, PastDeadlineTripsOnFirstCharge) {
  WorkBudget budget;
  budget.set_deadline(std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(1));
  // The very first charge reads the clock (no stride warm-up needed).
  EXPECT_FALSE(budget.Charge());
  EXPECT_EQ(budget.reason(), BudgetReason::kDeadline);
}

TEST(WorkBudgetTest, DeadlineIsCheckedWithinOneStride) {
  WorkBudget budget;
  budget.set_timeout(std::chrono::milliseconds(5));
  uint64_t charges = 0;
  // A 5 ms deadline must surface in well under a second of charging.
  auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (budget.Charge()) {
    ++charges;
    if (std::chrono::steady_clock::now() > give_up) {
      FAIL() << "deadline never tripped after " << charges << " charges";
    }
  }
  EXPECT_EQ(budget.reason(), BudgetReason::kDeadline);
}

TEST(WorkBudgetTest, CancelTripsWithCancelledReason) {
  WorkBudget budget;
  budget.Cancel();
  EXPECT_FALSE(budget.Charge());
  EXPECT_EQ(budget.reason(), BudgetReason::kCancelled);
}

TEST(WorkBudgetTest, FirstTripReasonWins) {
  WorkBudget budget;
  budget.set_max_steps(1);
  EXPECT_TRUE(budget.Charge());
  EXPECT_FALSE(budget.Charge());
  EXPECT_EQ(budget.reason(), BudgetReason::kSteps);
  budget.Cancel();  // later cancellation must not rewrite the reason
  EXPECT_EQ(budget.reason(), BudgetReason::kSteps);
}

TEST(WorkBudgetTest, RegionForwardsChargesToParent) {
  WorkBudget parent;
  parent.set_max_steps(5);
  WorkBudget region(&parent);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(region.Charge());
  // The sixth charge exhausts the parent; the region inherits its reason.
  EXPECT_FALSE(region.Charge());
  EXPECT_TRUE(parent.Exhausted());
  EXPECT_TRUE(region.Exhausted());
  EXPECT_EQ(region.reason(), BudgetReason::kSteps);
}

TEST(WorkBudgetTest, RegionCancelDoesNotTouchParent) {
  WorkBudget parent;
  WorkBudget region(&parent);
  region.Cancel();
  EXPECT_FALSE(region.Charge());
  EXPECT_FALSE(parent.Exhausted());
  EXPECT_TRUE(parent.Charge());  // the next phase of the request runs on
}

TEST(WorkBudgetTest, TaskCountersAccumulateOnRoot) {
  WorkBudget root;
  WorkBudget region(&root);
  region.NoteHelperSpawned();
  region.NoteHelperSpawned();
  region.NoteHelperCompleted();
  region.NoteHelperCompleted();
  EXPECT_EQ(root.tasks_spawned(), 2u);
  EXPECT_EQ(root.tasks_completed(), 2u);
}

TEST(WorkBudgetTest, ToStatusIsUniformBoundReached) {
  WorkBudget budget;
  budget.set_max_steps(1);
  budget.Charge();
  budget.Charge();
  Status status = budget.ToStatus("hom_search");
  EXPECT_EQ(status.code(), StatusCode::kBoundReached);
  EXPECT_NE(status.ToString().find("bound reached [hom_search]"),
            std::string::npos)
      << status.ToString();
}

// ---------------------------------------------------------------------------
// Thread-local installation (BudgetScope and the free helpers).
// ---------------------------------------------------------------------------

TEST(BudgetScopeTest, InstallsAndRestores) {
  EXPECT_EQ(CurrentBudget(), nullptr);
  WorkBudget outer;
  {
    BudgetScope outer_scope(&outer);
    EXPECT_EQ(CurrentBudget(), &outer);
    WorkBudget inner;
    {
      BudgetScope inner_scope(&inner);
      EXPECT_EQ(CurrentBudget(), &inner);
    }
    EXPECT_EQ(CurrentBudget(), &outer);
  }
  EXPECT_EQ(CurrentBudget(), nullptr);
}

TEST(BudgetScopeTest, FreeHelpersAreNoOpsWithoutBudget) {
  ASSERT_EQ(CurrentBudget(), nullptr);
  EXPECT_TRUE(BudgetCharge(1'000'000));
  EXPECT_FALSE(BudgetExhausted());
  EXPECT_TRUE(BudgetOkOrBound("nowhere").ok());
  EXPECT_TRUE(BudgetChargeOr("nowhere").ok());
}

TEST(BudgetScopeTest, BudgetOkOrBoundReflectsExhaustion) {
  WorkBudget budget;
  budget.set_max_steps(1);
  BudgetScope scope(&budget);
  EXPECT_TRUE(BudgetOkOrBound("site").ok());
  BudgetCharge(2);
  Status status = BudgetOkOrBound("site");
  EXPECT_EQ(status.code(), StatusCode::kBoundReached);
}

// ---------------------------------------------------------------------------
// ParallelScan.
// ---------------------------------------------------------------------------

TEST(ParallelScanTest, RunsEveryItemInline) {
  WorkBudget region;
  std::atomic<int> ran{0};
  ParallelScanStats stats = ParallelScan(17, /*workers=*/1, &region,
                                         [&](size_t) {
                                           ran.fetch_add(1);
                                           return true;
                                         });
  EXPECT_EQ(ran.load(), 17);
  EXPECT_EQ(stats.helpers_spawned, 0);
  EXPECT_EQ(stats.items_unfinished, 0u);
}

TEST(ParallelScanTest, RunsEveryItemExactlyOnceAcrossThreads) {
  WorkBudget region;
  constexpr size_t kItems = 200;
  std::vector<std::atomic<int>> runs(kItems);
  ParallelScanStats stats = ParallelScan(kItems, /*workers=*/4, &region,
                                         [&](size_t i) {
                                           runs[i].fetch_add(1);
                                           return true;
                                         });
  for (size_t i = 0; i < kItems; ++i) EXPECT_EQ(runs[i].load(), 1) << i;
  EXPECT_EQ(stats.items_unfinished, 0u);
  EXPECT_LE(stats.helpers_spawned, 3);
  // Pool quiescence: every announced helper was joined before return.
  EXPECT_EQ(region.tasks_spawned(), region.tasks_completed());
}

TEST(ParallelScanTest, TasksRunUnderTheRegionBudget) {
  WorkBudget region;
  std::atomic<bool> saw_region{true};
  ParallelScan(50, /*workers=*/4, &region, [&](size_t) {
    if (CurrentBudget() != &region) saw_region.store(false);
    return true;
  });
  EXPECT_TRUE(saw_region.load());
}

TEST(ParallelScanTest, EarlyExitCancelsRegion) {
  WorkBudget region;
  std::atomic<int> ran{0};
  ParallelScanStats stats = ParallelScan(1'000, /*workers=*/4, &region,
                                         [&](size_t i) {
                                           ran.fetch_add(1);
                                           return i != 3;  // "counterexample"
                                         });
  EXPECT_TRUE(region.Exhausted());
  EXPECT_EQ(region.reason(), BudgetReason::kCancelled);
  // Unclaimed items were never started.
  EXPECT_LT(ran.load(), 1'000);
  EXPECT_GT(stats.items_unfinished, 0u);
  EXPECT_EQ(region.tasks_spawned(), region.tasks_completed());
}

TEST(ParallelScanTest, ParentExhaustionStopsTheScan) {
  WorkBudget parent;
  parent.set_max_steps(10);
  WorkBudget region(&parent);
  std::atomic<int> ran{0};
  ParallelScanStats stats = ParallelScan(1'000, /*workers=*/2, &region,
                                         [&](size_t) {
                                           ran.fetch_add(1);
                                           BudgetCharge(1);
                                           return true;
                                         });
  EXPECT_TRUE(parent.Exhausted());
  EXPECT_GT(stats.items_unfinished, 0u);
  EXPECT_LT(ran.load(), 1'000);
}

// ---------------------------------------------------------------------------
// The unified bound surface: structural caps and budget exhaustion produce
// the same "bound reached [<site>]: ..." kBoundReached status.
// ---------------------------------------------------------------------------

TEST(UnifiedBoundTest, EvaluatorMaxFactsUsesBoundReachedFormat) {
  Interner interner;
  Result<Program> p =
      ParseProgram("q(X, Y) :- e(X, Y).\nq(X, Z) :- q(X, Y), e(Y, Z).",
                   &interner);
  ASSERT_TRUE(p.ok());
  Result<Database> db = ParseDatabase(
      "e(1, 2). e(2, 3). e(3, 4). e(4, 5). e(5, 1).", &interner);
  ASSERT_TRUE(db.ok());
  EvalOptions options;
  options.max_facts = 3;
  Result<EvalResult> r = Evaluate(*p, *db, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBoundReached);
  EXPECT_NE(r.status().ToString().find("bound reached [eval]"),
            std::string::npos)
      << r.status().ToString();
}

TEST(UnifiedBoundTest, StepBudgetTurnsDecisionIntoBoundReached) {
  Interner interner;
  QbfFormula f = RandomQbf(/*num_exists=*/2, /*num_forall=*/3,
                           /*num_clauses=*/3, /*seed=*/7);
  Result<Pi2pInstance> inst = BuildPi2pReduction(f, &interner);
  ASSERT_TRUE(inst.ok());
  DecideOptions options;
  options.max_steps = 4;  // far below what the Π₂ᴾ check needs
  Result<Decision> d = DecideRelativeContainment(
      inst->q2, inst->q1, inst->views, {}, &interner, options);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kBoundReached);
  EXPECT_NE(d.status().ToString().find("bound reached ["), std::string::npos)
      << d.status().ToString();
  EXPECT_NE(d.status().ToString().find("step budget exhausted"),
            std::string::npos)
      << d.status().ToString();
}

TEST(UnifiedBoundTest, ExpiredDeadlineTurnsDecisionIntoBoundReached) {
  Interner interner;
  QbfFormula f = RandomQbf(/*num_exists=*/2, /*num_forall=*/3,
                           /*num_clauses=*/3, /*seed=*/11);
  Result<Pi2pInstance> inst = BuildPi2pReduction(f, &interner);
  ASSERT_TRUE(inst.ok());
  // An already-expired deadline: the decision must stop at its first
  // budget probe and answer kBoundReached, never a fabricated verdict.
  WorkBudget budget;
  budget.set_deadline(std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(1));
  BudgetScope scope(&budget);
  Result<Decision> d = DecideRelativeContainment(
      inst->q2, inst->q1, inst->views, {}, &interner, {});
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kBoundReached);
  EXPECT_NE(d.status().ToString().find("deadline exceeded"),
            std::string::npos)
      << d.status().ToString();
  EXPECT_EQ(budget.reason(), BudgetReason::kDeadline);
}

TEST(UnifiedBoundTest, VerdictsAreBudgetIndependent) {
  // The library's soundness contract: adding a (sufficient) budget never
  // changes a verdict — it can only turn one into kBoundReached.
  Interner interner;
  QbfFormula f = RandomQbf(/*num_exists=*/2, /*num_forall=*/2,
                           /*num_clauses=*/3, /*seed=*/3);
  Result<Pi2pInstance> inst = BuildPi2pReduction(f, &interner);
  ASSERT_TRUE(inst.ok());
  Result<Decision> unbounded = DecideRelativeContainment(
      inst->q2, inst->q1, inst->views, {}, &interner, {});
  ASSERT_TRUE(unbounded.ok()) << unbounded.status().ToString();
  DecideOptions generous;
  generous.max_steps = 100'000'000;
  generous.timeout_ms = 60'000;
  Result<Decision> bounded = DecideRelativeContainment(
      inst->q2, inst->q1, inst->views, {}, &interner, generous);
  ASSERT_TRUE(bounded.ok()) << bounded.status().ToString();
  EXPECT_EQ(bounded->contained, unbounded->contained);
}

// ---------------------------------------------------------------------------
// Bound-site attribution: every minted kBoundReached status also bumps its
// site's counter in the process-global registry (BoundSiteCounts), so the
// telemetry can say *where* budgets die. The registry is cumulative across
// the process, so every assertion below is a delta.
// ---------------------------------------------------------------------------

uint64_t SiteCount(std::string_view site) {
  for (const auto& [name, count] : BoundSiteCounts()) {
    if (name == site) return count;
  }
  return 0;
}

TEST(BoundSiteAttributionTest, LinearizationDfsTripIsAttributed) {
  const uint64_t before = SiteCount("linearization_dfs");
  Interner interner;
  OrderConstraints oc;
  ASSERT_TRUE(oc.AddPoint(Term::Var(interner.Intern("A"))).ok());
  ASSERT_TRUE(oc.AddPoint(Term::Var(interner.Intern("B"))).ok());
  ASSERT_TRUE(oc.AddPoint(Term::Var(interner.Intern("C"))).ok());
  WorkBudget budget;
  budget.set_max_steps(1);
  budget.Charge();
  budget.Charge();  // exhausted: the DFS dies at its first node
  BudgetScope scope(&budget);
  Status status =
      oc.ForEachLinearization([](const Linearization&) { return true; });
  ASSERT_EQ(status.code(), StatusCode::kBoundReached);
  EXPECT_NE(status.ToString().find("[linearization_dfs]"),
            std::string::npos)
      << status.ToString();
  EXPECT_EQ(SiteCount("linearization_dfs"), before + 1);
}

TEST(BoundSiteAttributionTest, DisjunctScanTripIsAttributed) {
  // A budget that dies *during* the parallel disjunct scan — after plan
  // construction, before the scan completes — mints [containment_check].
  // The right step cap depends on plan sizes, so sweep upward until the
  // trip lands in the scan window.
  const uint64_t before = SiteCount("containment_check");
  Interner interner;
  QbfFormula f = RandomQbf(/*num_exists=*/2, /*num_forall=*/3,
                           /*num_clauses=*/3, /*seed=*/7);
  Result<Pi2pInstance> inst = BuildPi2pReduction(f, &interner);
  ASSERT_TRUE(inst.ok());
  bool tripped = false;
  for (int64_t steps = 1; steps <= 5000 && !tripped; ++steps) {
    DecideOptions options;
    options.max_steps = steps;
    options.parallel_workers = 2;
    Result<Decision> d = DecideRelativeContainment(
        inst->q2, inst->q1, inst->views, {}, &interner, options);
    if (d.ok()) break;  // enough budget: no later cap can trip mid-scan
    if (d.status().ToString().find("[containment_check]") !=
        std::string::npos) {
      tripped = true;
    }
  }
  ASSERT_TRUE(tripped) << "no step cap tripped inside the disjunct scan";
  EXPECT_GT(SiteCount("containment_check"), before);
}

TEST(BoundSiteAttributionTest, PlannerTripIsAttributed) {
  const uint64_t before = SiteCount("planner_plan");
  Interner gen;
  QbfFormula f = RandomQbf(/*num_exists=*/2, /*num_forall=*/3,
                           /*num_clauses=*/3, /*seed=*/7);
  Result<Pi2pInstance> inst = BuildPi2pReduction(f, &gen);
  ASSERT_TRUE(inst.ok());
  std::string views_text;
  for (const ViewDefinition& v : inst->views.views()) {
    views_text += v.rule.ToString(gen);
    views_text += '\n';
  }
  std::string query_text;
  for (const Rule& r : inst->q2.program.rules) {
    query_text += r.ToString(gen);
    query_text += '\n';
  }

  CatalogRegistry catalogs;
  ServiceMetrics metrics;
  ASSERT_TRUE(catalogs.Register("qbf", views_text).ok());
  Planner planner(&catalogs, &metrics);
  PlannerContext ctx;
  PlanRequest request;
  request.query_text = query_text;
  request.catalog = "qbf";
  request.options.max_steps = 1;
  PlanResponse response = planner.Plan(request, &ctx);
  ASSERT_EQ(response.status.code(), StatusCode::kBoundReached)
      << response.status.ToString();
  // The planner attributes the whole bound request to its own aggregate
  // site on top of whatever inner site minted the status.
  EXPECT_EQ(SiteCount("planner_plan"), before + 1);
}

TEST(UnifiedBoundTest, ParallelWorkersPreserveTheVerdict) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Interner interner;
    QbfFormula f = RandomQbf(/*num_exists=*/2, /*num_forall=*/3,
                             /*num_clauses=*/3, seed);
    Result<Pi2pInstance> inst = BuildPi2pReduction(f, &interner);
    ASSERT_TRUE(inst.ok());
    Result<Decision> serial = DecideRelativeContainment(
        inst->q2, inst->q1, inst->views, {}, &interner, {});
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    DecideOptions parallel;
    parallel.parallel_workers = 4;
    Result<Decision> fanned = DecideRelativeContainment(
        inst->q2, inst->q1, inst->views, {}, &interner, parallel);
    ASSERT_TRUE(fanned.ok()) << fanned.status().ToString();
    EXPECT_EQ(fanned->contained, serial->contained) << "seed " << seed;
  }
}

}  // namespace
}  // namespace relcont
