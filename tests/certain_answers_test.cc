#include <algorithm>
#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "datalog/substitution.h"
#include "relcont/certain_answers.h"
#include "relcont/relative_containment.h"

namespace relcont {
namespace {

class CertainAnswersTest : public ::testing::Test {
 protected:
  ViewSet V(const std::string& text) {
    Result<ViewSet> v = ParseViews(text, &interner_);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return *v;
  }
  Program P(const std::string& text) {
    Result<Program> p = ParseProgram(text, &interner_);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return *p;
  }
  Database D(const std::string& text) {
    Result<Database> d = ParseDatabase(text, &interner_);
    EXPECT_TRUE(d.ok()) << d.status().ToString();
    return *d;
  }
  SymbolId S(const char* name) { return interner_.Intern(name); }

  static std::vector<Tuple> Sorted(std::vector<Tuple> ts) {
    std::sort(ts.begin(), ts.end());
    return ts;
  }

  Interner interner_;
};

TEST_F(CertainAnswersTest, PlanAndCanonicalAgreeOnSimpleJoin) {
  ViewSet views = V(
      "v1(X, Y) :- p(X, Y).\n"
      "v2(Y, Z) :- r(Y, Z).\n");
  Program q = P("q(X, Z) :- p(X, Y), r(Y, Z).");
  Database inst = D("v1(a, b). v2(b, c). v2(x, y).");
  Result<std::vector<Tuple>> plan_based =
      CertainAnswers(q, S("q"), views, inst, &interner_);
  ASSERT_TRUE(plan_based.ok()) << plan_based.status().ToString();
  Result<std::vector<Tuple>> chase_based =
      CertainAnswersViaCanonical(q, S("q"), views, inst, &interner_);
  ASSERT_TRUE(chase_based.ok());
  EXPECT_EQ(Sorted(*plan_based), Sorted(*chase_based));
  ASSERT_EQ(plan_based->size(), 1u);
  EXPECT_EQ((*plan_based)[0][0].value().symbol(), S("a"));
  EXPECT_EQ((*plan_based)[0][1].value().symbol(), S("c"));
}

TEST_F(CertainAnswersTest, ProjectionViewsGiveNoJoinAnswers) {
  // Paper Example 5 intuition (open world): v1 and v2 project p's columns,
  // so the join q(x,y) :- p(x,y) has no certain answers from them.
  ViewSet views = V(
      "v1(X) :- p(X, Y).\n"
      "v2(Y) :- p(X, Y).\n"
      "v3(X, Y) :- p(X, Y), r(X, Y).\n");
  Program q1 = P("q1(X, Y) :- p(X, Y).");
  Database inst = D("v1(a). v2(b).");
  Result<std::vector<Tuple>> answers =
      CertainAnswers(q1, S("q1"), views, inst, &interner_);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->empty());
  // But v3 provides p-facts directly.
  Database inst2 = D("v3(a, b).");
  Result<std::vector<Tuple>> answers2 =
      CertainAnswers(q1, S("q1"), views, inst2, &interner_);
  ASSERT_TRUE(answers2.ok());
  EXPECT_EQ(answers2->size(), 1u);
}

TEST_F(CertainAnswersTest, CanonicalDatabaseBuildsLabelledNulls) {
  ViewSet views = V("v1(X) :- p(X, Y).");
  Database inst = D("v1(a). v1(b).");
  Result<Database> chase = CanonicalDatabase(views, inst, &interner_);
  ASSERT_TRUE(chase.ok());
  EXPECT_EQ(chase->TotalFacts(), 2);
  // Each tuple gets its own null: p(a, n1), p(b, n2) with n1 != n2.
  const std::vector<Tuple>& p = chase->Tuples(S("p"));
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NE(p[0][1], p[1][1]);
}

TEST_F(CertainAnswersTest, CanonicalDatabaseRespectsHeadConstants) {
  ViewSet views = V("red(C, Y) :- car(C, red, Y).");
  Database inst = D("red(7, 1990).");
  Result<Database> chase = CanonicalDatabase(views, inst, &interner_);
  ASSERT_TRUE(chase.ok());
  const std::vector<Tuple>& car = chase->Tuples(S("car"));
  ASSERT_EQ(car.size(), 1u);
  EXPECT_EQ(car[0][1].value().symbol(), S("red"));
}

TEST_F(CertainAnswersTest, BruteForceAgreesWithPlanOnOpenWorld) {
  ViewSet views = V("v1(X, Y) :- p(X, Y).");
  Program q = P("q(X, Z) :- p(X, Y), p(Y, Z).");
  Database inst = D("v1(a, b). v1(b, a).");
  Result<std::vector<Tuple>> brute = BruteForceCertainAnswers(
      q, S("q"), views, inst, &interner_, {.extra_constants = 1});
  ASSERT_TRUE(brute.ok()) << brute.status().ToString();
  Result<std::vector<Tuple>> plan_based =
      CertainAnswers(q, S("q"), views, inst, &interner_);
  ASSERT_TRUE(plan_based.ok());
  EXPECT_EQ(Sorted(*brute), Sorted(*plan_based));
}

// Paper Example 5, incomplete (open-world) sources: v1(a), v2(b) give no
// certain answer to q1.
TEST_F(CertainAnswersTest, Example5OpenWorld) {
  ViewSet views = V(
      "v1(X) :- p(X, Y).\n"
      "v2(Y) :- p(X, Y).\n"
      "v3(X, Y) :- p(X, Y), r(X, Y).\n");
  Program q1 = P("q1(X, Y) :- p(X, Y).");
  Database inst = D("v1(a). v2(b).");
  Result<std::vector<Tuple>> brute = BruteForceCertainAnswers(
      q1, S("q1"), views, inst, &interner_, {.extra_constants = 1});
  ASSERT_TRUE(brute.ok()) << brute.status().ToString();
  EXPECT_TRUE(brute->empty());
}

// Paper Example 5, complete (closed-world) sources: v1 = {a} and v2 = {b}
// force p(a, b), so (a, b) is a certain answer of q1 but q2 has none.
TEST_F(CertainAnswersTest, Example5ClosedWorld) {
  Result<ViewSet> parsed = ParseViews(
      "v1(X) :- p(X, Y).\n"
      "v2(Y) :- p(X, Y).\n"
      "v3(X, Y) :- p(X, Y), r(X, Y).\n",
      &interner_);
  ASSERT_TRUE(parsed.ok());
  std::vector<ViewDefinition> defs = parsed->views();
  for (ViewDefinition& d : defs) d.complete = true;
  ViewSet views(std::move(defs));

  Program q1 = P("q1(X, Y) :- p(X, Y).");
  Program q2 = P("q2(X, Y) :- r(X, Y).");
  Database inst = D("v1(a). v2(b).");

  Result<std::vector<Tuple>> a1 = BruteForceCertainAnswers(
      q1, S("q1"), views, inst, &interner_, {.extra_constants = 1});
  ASSERT_TRUE(a1.ok()) << a1.status().ToString();
  ASSERT_EQ(a1->size(), 1u);
  EXPECT_EQ((*a1)[0][0].value().symbol(), S("a"));
  EXPECT_EQ((*a1)[0][1].value().symbol(), S("b"));

  Result<std::vector<Tuple>> a2 = BruteForceCertainAnswers(
      q2, S("q2"), views, inst, &interner_, {.extra_constants = 1});
  ASSERT_TRUE(a2.ok());
  EXPECT_TRUE(a2->empty());
}

TEST_F(CertainAnswersTest, BruteForceBoundIsReported) {
  ViewSet views = V("v(X, Y, Z) :- p(X, Y, Z).");
  Program q = P("q(X) :- p(X, Y, Z).");
  Database inst = D("v(a, b, c). v(d, e, f).");
  // Domain has >= 6 values, arity 3 => 216+ potential facts.
  Result<std::vector<Tuple>> r = BruteForceCertainAnswers(
      q, S("q"), views, inst, &interner_, {.extra_constants = 0});
  EXPECT_EQ(r.status().code(), StatusCode::kBoundReached);
}

// ---------------------------------------------------------------------------
// Relative containment, Section 3 (comparison-free fragment).
// ---------------------------------------------------------------------------

class RelativeContainmentTest : public CertainAnswersTest {
 protected:
  GoalQuery GQ(const std::string& text, const char* goal) {
    return GoalQuery{P(text), S(goal)};
  }
  bool RelContained(const GoalQuery& q1, const GoalQuery& q2,
                    const ViewSet& views) {
    Result<RelativeContainmentResult> r =
        RelativelyContained(q1, q2, views, &interner_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->contained;
  }
};

TEST_F(RelativeContainmentTest, ClassicalContainmentImpliesRelative) {
  ViewSet views = V("v(X, Y) :- p(X, Y).");
  GoalQuery strong = GQ("q(X) :- p(X, Y), p(Y, X).", "q");
  GoalQuery weak = GQ("q(X) :- p(X, Y).", "q");
  EXPECT_TRUE(RelContained(strong, weak, views));
  EXPECT_FALSE(RelContained(weak, strong, views));
}

TEST_F(RelativeContainmentTest, RelativeWithoutClassical) {
  // The only review source serves top-rated models (rating hard-coded via
  // a constant in the view), so "all reviews" and "reviews of rating-10
  // models" coincide relative to the sources. (Example 1's Q1 vs Q2,
  // with the comparison-free view subset.)
  ViewSet views = V(
      "allcars(C, M, Col, Y) :- cardesc(C, M, Col, Y).\n"
      "caranddriver(M, R) :- review(M, R, 10).\n");
  GoalQuery q1 = GQ(
      "q1(C, R) :- cardesc(C, M, Col, Y), review(M, R, Rat).", "q1");
  GoalQuery q2 = GQ(
      "q2(C, R) :- cardesc(C, M, Col, Y), review(M, R, 10).", "q2");
  // Classically q1 is NOT contained in q2 (see containment tests), but
  // relative to the views both directions hold.
  EXPECT_TRUE(RelContained(q1, q2, views));
  EXPECT_TRUE(RelContained(q2, q1, views));
  Result<bool> eq = RelativelyEquivalent(q1, q2, views, &interner_);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST_F(RelativeContainmentTest, SourceRemovalChangesTheAnswer) {
  // With both car sources, q_all is not contained in q_red; dropping the
  // blue source makes every retrievable car red.
  ViewSet both = V(
      "redcars(C, Y) :- car(C, red, Y).\n"
      "bluecars(C, Y) :- car(C, blue, Y).\n");
  ViewSet red_only = V("redcars2(C, Y) :- car(C, red, Y).");
  GoalQuery q_all = GQ("qa(C) :- car(C, Col, Y).", "qa");
  GoalQuery q_red = GQ("qr(C) :- car(C, red, Y).", "qr");
  EXPECT_FALSE(RelContained(q_all, q_red, both));
  EXPECT_TRUE(RelContained(q_all, q_red, red_only));
  // q_red ⊑ q_all always (classical).
  EXPECT_TRUE(RelContained(q_red, q_all, both));
}

TEST_F(RelativeContainmentTest, EmptyPlanIsContainedInEverything) {
  // No source mentions relation s, so q1 has no plan at all.
  ViewSet views = V("v(X) :- p(X).");
  GoalQuery q1 = GQ("q1(X) :- s(X).", "q1");
  GoalQuery q2 = GQ("q2(X) :- p(X).", "q2");
  EXPECT_TRUE(RelContained(q1, q2, views));
  EXPECT_FALSE(RelContained(q2, q1, views));
}

TEST_F(RelativeContainmentTest, WitnessInstanceSeparatesTheQueries) {
  // When not contained, the witness disjunct's frozen body is a source
  // instance on which certain(Q1) ⊄ certain(Q2).
  ViewSet views = V(
      "v1(X, Y) :- p(X, Y).\n"
      "v2(X) :- s(X).\n");
  GoalQuery q1 = GQ("q1(X) :- p(X, Y).", "q1");
  GoalQuery q2 = GQ("q2(X) :- p(X, Y), s(X).", "q2");
  Result<RelativeContainmentResult> r =
      RelativelyContained(q1, q2, views, &interner_);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->contained);
  ASSERT_TRUE(r->witness.has_value());
  // Build the witness instance and compare certain answers.
  Database inst;
  Substitution freeze;
  for (SymbolId v : r->witness->Variables()) {
    freeze.Bind(v, Term::Symbol(interner_.Fresh("_w")));
  }
  for (const Atom& a : r->witness->body) inst.Add(freeze.Apply(a));
  Tuple head = freeze.Apply(r->witness->head).args;
  Result<std::vector<Tuple>> c1 =
      CertainAnswers(q1.program, q1.goal, views, inst, &interner_);
  ASSERT_TRUE(c1.ok());
  Result<std::vector<Tuple>> c2 =
      CertainAnswers(q2.program, q2.goal, views, inst, &interner_);
  ASSERT_TRUE(c2.ok());
  EXPECT_NE(std::find(c1->begin(), c1->end(), head), c1->end());
  EXPECT_EQ(std::find(c2->begin(), c2->end(), head), c2->end());
}

TEST_F(RelativeContainmentTest, PositiveQueriesWithMultipleRules) {
  ViewSet views = V(
      "v1(X) :- a(X).\n"
      "v2(X) :- b(X).\n"
      "v3(X) :- c(X).\n");
  GoalQuery q1 = GQ(
      "q1(X) :- a(X).\n"
      "q1(X) :- b(X).\n",
      "q1");
  GoalQuery q2 = GQ(
      "q2(X) :- a(X).\n"
      "q2(X) :- b(X).\n"
      "q2(X) :- c(X).\n",
      "q2");
  EXPECT_TRUE(RelContained(q1, q2, views));
  EXPECT_FALSE(RelContained(q2, q1, views));
}

// Property: the plan-based decision agrees with certain-answer semantics on
// frozen instances built from every disjunct of Q1's plan.
TEST_F(RelativeContainmentTest, DecisionConsistentWithCertainAnswers) {
  ViewSet views = V(
      "v1(X, Y) :- p(X, Y).\n"
      "v2(Y, Z) :- r(Y, Z).\n"
      "v3(X) :- p(X, X).\n");
  std::vector<GoalQuery> queries = {
      GQ("g0(X, Z) :- p(X, Y), r(Y, Z).", "g0"),
      GQ("g1(X, X) :- p(X, X).", "g1"),
      GQ("g2(X, Y) :- p(X, Y).", "g2"),
      GQ("g3(X, Z) :- p(X, Y), r(Y, Z), p(X, X).", "g3"),
  };
  for (const GoalQuery& a : queries) {
    for (const GoalQuery& b : queries) {
      Result<RelativeContainmentResult> decision =
          RelativelyContained(a, b, views, &interner_);
      ASSERT_TRUE(decision.ok());
      // Sample check: on every frozen disjunct of a's plan, certain answers
      // of a contain the frozen head; containment demands b does too.
      bool sample_holds = true;
      for (const Rule& d : decision->plan1.disjuncts) {
        Database inst;
        Substitution freeze;
        for (SymbolId v : d.Variables()) {
          freeze.Bind(v, Term::Symbol(interner_.Fresh("_w")));
        }
        for (const Atom& atom : d.body) inst.Add(freeze.Apply(atom));
        Tuple head = freeze.Apply(d.head).args;
        Result<std::vector<Tuple>> cb =
            CertainAnswers(b.program, b.goal, views, inst, &interner_);
        ASSERT_TRUE(cb.ok());
        if (std::find(cb->begin(), cb->end(), head) == cb->end()) {
          sample_holds = false;
          break;
        }
      }
      // The frozen-disjunct family is exactly the hard direction of the
      // containment proof, so the decision and the samples must agree.
      EXPECT_EQ(decision->contained, sample_holds);
    }
  }
}

}  // namespace
}  // namespace relcont
