// Randomized differential testing of the containment decision procedures.
//
// Three fragments, each >= RELCONT_DIFF_CASES seeded random cases
// (default 500; the nightly CI job raises it 10x):
//
//   * Section 3 (comparison-free CQs over conjunctive views): the parallel
//     fan-out must return the serial verdict, NO verdicts must be refuted
//     by the witness's frozen instance under the certain-answer semantics,
//     and the two independent certain-answer oracles (plan-based vs
//     canonical-database) must agree on sampled instances.
//   * Section 5 semi-interval (Q2 and the views may carry semi-interval
//     comparisons): serial vs parallel, and NO witnesses refuted with the
//     comparison-aware certain-answer oracle.
//   * Section 6 CWA: every refutation the closed-world refuter reports is
//     re-verified against the independent brute-force oracle.
//   * CEGAR (three sub-sweeps): the counterexample-guided engine
//     (relcont/cegar.h) must return the serial scan's verdict — and the
//     parallel scan's — on random Section 3 triples (narrow and wide
//     vocabularies) and on the Theorem 3.3 QBF family, where all engines
//     are additionally pinned to the ∀∃-satisfiability oracle. Every CEGAR
//     NO is re-verified the same way as the scan's: the witness instance
//     carries a Q1 certain answer that Q2 does not.
//
// Every failure message carries the seed; replay one case with
//   RELCONT_DIFF_SEED=<seed> ./build/tests/differential_test
// and scale the sweep with RELCONT_DIFF_CASES=<n>.

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datalog/substitution.h"
#include "relcont/cegar.h"
#include "relcont/certain_answers.h"
#include "relcont/cwa.h"
#include "relcont/pi2p_reduction.h"
#include "relcont/relative_containment.h"
#include "relcont/workload.h"

namespace relcont {
namespace {

int CasesFromEnv() {
  const char* env = std::getenv("RELCONT_DIFF_CASES");
  if (env == nullptr || *env == '\0') return 500;
  int cases = std::atoi(env);
  return cases > 0 ? cases : 500;
}

std::optional<uint64_t> ReplaySeedFromEnv() {
  const char* env = std::getenv("RELCONT_DIFF_SEED");
  if (env == nullptr || *env == '\0') return std::nullopt;
  return std::strtoull(env, nullptr, 10);
}

std::string ReplayHint(uint64_t seed) {
  return "replay: RELCONT_DIFF_SEED=" + std::to_string(seed) +
         " ./build/tests/differential_test";
}

/// Runs `run(seed)` for every seed of the fragment's sweep, or for the one
/// replay seed when RELCONT_DIFF_SEED is set. Fragment bases keep the
/// three sweeps on disjoint seed ranges so a replay seed is unambiguous
/// about which case it regenerates within each fragment.
void ForEachCase(uint64_t fragment_base,
                 const std::function<void(uint64_t)>& run) {
  if (std::optional<uint64_t> replay = ReplaySeedFromEnv()) {
    run(*replay);
    return;
  }
  int cases = CasesFromEnv();
  for (int i = 0; i < cases; ++i) run(fragment_base + static_cast<uint64_t>(i));
}

std::vector<Tuple> Normalized(std::vector<Tuple> tuples) {
  std::sort(tuples.begin(), tuples.end());
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  return tuples;
}

bool IsSubset(const std::vector<Tuple>& a, const std::vector<Tuple>& b) {
  std::vector<Tuple> sa = Normalized(a);
  std::vector<Tuple> sb = Normalized(b);
  return std::includes(sb.begin(), sb.end(), sa.begin(), sa.end());
}

/// The witness instance of a NO verdict: the witness disjunct's body with
/// every variable frozen to a fresh constant, plus the frozen head tuple
/// it derives (see RelativeContainmentResult::witness).
struct FrozenWitness {
  Database instance;
  Tuple head;
};

FrozenWitness FreezeWitness(const Rule& witness, Interner* interner) {
  FrozenWitness out;
  Substitution freeze;
  for (SymbolId v : witness.Variables()) {
    freeze.Bind(v, Term::Symbol(interner->Fresh("_w")));
  }
  for (const Atom& a : witness.body) out.instance.Add(freeze.Apply(a));
  out.head = freeze.Apply(witness.head).args;
  return out;
}

RandomQueryOptions CaseOptions(uint64_t seed) {
  RandomQueryOptions options;
  options.num_atoms = 2 + static_cast<int>(seed % 2);
  options.num_variables = 3;
  options.num_predicates = 2;
  options.arity = 2;
  options.constant_probability = 0.15;
  options.head_arity = 1;
  options.seed = seed;
  return options;
}

/// One random (Q1, Q2, V) triple over a shared vocabulary. Q2 gets an
/// independent RNG stream so the pair is not trivially isomorphic.
struct RandomTriple {
  GoalQuery q1;
  GoalQuery q2;
  ViewSet views;
};

RandomTriple MakeTriple(const RandomQueryOptions& options, int num_views,
                        Interner* interner) {
  Rule r1 = RandomConjunctiveQuery(options, "q1", interner);
  RandomQueryOptions options2 = options;
  options2.seed = options.seed * 2654435761ULL + 97;
  Rule r2 = RandomConjunctiveQuery(options2, "q2", interner);
  RandomTriple out;
  out.q1 = GoalQuery{Program({r1}), r1.head.predicate};
  out.q2 = GoalQuery{Program({r2}), r2.head.predicate};
  out.views = RandomViews(options, num_views, interner);
  return out;
}

// ---------------------------------------------------------------------------
// Fragment 1: Section 3, comparison-free.
// ---------------------------------------------------------------------------

TEST(DifferentialTest, Section3ParallelMatchesSerialAndOracle) {
  int decided = 0, refuted = 0, skipped = 0;
  ForEachCase(1'000'000, [&](uint64_t seed) {
    Interner interner;
    RandomTriple t = MakeTriple(CaseOptions(seed), /*num_views=*/3, &interner);
    if (t.views.empty() ||
        t.q1.program.rules[0].head.arity() !=
            t.q2.program.rules[0].head.arity()) {
      ++skipped;
      return;
    }
    Result<RelativeContainmentResult> serial =
        RelativelyContained(t.q1, t.q2, t.views, &interner);
    RelativeContainmentOptions par_options;
    par_options.parallel_workers = 4;
    Result<RelativeContainmentResult> parallel =
        RelativelyContained(t.q1, t.q2, t.views, &interner, par_options);
    // Verdict determinism: the fan-out returns the serial outcome, down to
    // the status code on error paths (only the witness index may differ).
    ASSERT_EQ(parallel.ok(), serial.ok()) << ReplayHint(seed);
    if (!serial.ok()) {
      EXPECT_EQ(parallel.status().code(), serial.status().code())
          << ReplayHint(seed);
      ++skipped;
      return;
    }
    EXPECT_EQ(parallel->contained, serial->contained) << ReplayHint(seed);
    ++decided;

    if (!serial->contained) {
      // A NO verdict must be backed by a real counterexample instance.
      ASSERT_TRUE(serial->witness.has_value()) << ReplayHint(seed);
      FrozenWitness w = FreezeWitness(*serial->witness, &interner);
      Result<std::vector<Tuple>> c1 = CertainAnswers(
          t.q1.program, t.q1.goal, t.views, w.instance, &interner);
      Result<std::vector<Tuple>> c2 = CertainAnswers(
          t.q2.program, t.q2.goal, t.views, w.instance, &interner);
      ASSERT_TRUE(c1.ok()) << c1.status().ToString() << "\n"
                           << ReplayHint(seed);
      ASSERT_TRUE(c2.ok()) << c2.status().ToString() << "\n"
                           << ReplayHint(seed);
      EXPECT_NE(std::find(c1->begin(), c1->end(), w.head), c1->end())
          << ReplayHint(seed);
      EXPECT_EQ(std::find(c2->begin(), c2->end(), w.head), c2->end())
          << ReplayHint(seed);
      ++refuted;
      return;
    }
    // A YES verdict promises certain(Q1, I) ⊆ certain(Q2, I) on EVERY
    // instance; sample a few. The two independent certain-answer
    // implementations must also agree with each other.
    for (int k = 0; k < 2; ++k) {
      Database instance = RandomInstance(t.views, /*num_facts=*/4,
                                         /*domain_size=*/3,
                                         seed * 31 + static_cast<uint64_t>(k),
                                         &interner);
      Result<std::vector<Tuple>> plan1 = CertainAnswers(
          t.q1.program, t.q1.goal, t.views, instance, &interner);
      Result<std::vector<Tuple>> plan2 = CertainAnswers(
          t.q2.program, t.q2.goal, t.views, instance, &interner);
      Result<std::vector<Tuple>> canon1 = CertainAnswersViaCanonical(
          t.q1.program, t.q1.goal, t.views, instance, &interner);
      ASSERT_TRUE(plan1.ok() && plan2.ok() && canon1.ok())
          << ReplayHint(seed);
      EXPECT_TRUE(IsSubset(*plan1, *plan2)) << ReplayHint(seed);
      EXPECT_EQ(Normalized(*plan1), Normalized(*canon1)) << ReplayHint(seed);
    }
  });
  RecordProperty("decided", decided);
  RecordProperty("refuted", refuted);
  RecordProperty("skipped", skipped);
  // The sweep must exercise real decisions, not degenerate skips.
  EXPECT_GT(decided, skipped);
}

// ---------------------------------------------------------------------------
// Fragment 2: Section 5, semi-interval comparisons on Q2.
// ---------------------------------------------------------------------------

TEST(DifferentialTest, SemiIntervalParallelMatchesSerialAndOracle) {
  int decided = 0, refuted = 0, skipped = 0;
  ForEachCase(2'000'000, [&](uint64_t seed) {
    Interner interner;
    // Slightly narrower than the Section 3 sweep: every containment check
    // here enumerates dense-order linearizations, whose count explodes in
    // the number of distinct points, so most cases stay at two variables.
    RandomQueryOptions options = CaseOptions(seed);
    options.num_atoms = 2;
    options.num_variables = (seed % 4 == 0) ? 3 : 2;
    RandomTriple t = MakeTriple(options, /*num_views=*/3, &interner);
    Rule& r2 = t.q2.program.rules[0];
    std::vector<SymbolId> body_vars = r2.BodyVariables();
    if (t.views.empty() || body_vars.empty() ||
        t.q1.program.rules[0].head.arity() != r2.head.arity()) {
      ++skipped;
      return;
    }
    // Attach a semi-interval comparison (Theorem 5.2's decidable shape) to
    // Q2: the first body variable bounded by a small constant.
    ComparisonOp op = (seed % 2 == 0) ? ComparisonOp::kLe : ComparisonOp::kGe;
    r2.comparisons.emplace_back(Term::Var(body_vars[0]), op,
                                Term::Number(Rational(1)));
    Rule serial_witness, parallel_witness;
    Result<bool> serial = RelativelyContainedViaExpansion(
        t.q1, t.q2, t.views, &interner, {}, &serial_witness);
    RelativeContainmentOptions par_options;
    par_options.parallel_workers = 4;
    Result<bool> parallel = RelativelyContainedViaExpansion(
        t.q1, t.q2, t.views, &interner, par_options, &parallel_witness);
    ASSERT_EQ(parallel.ok(), serial.ok()) << ReplayHint(seed);
    if (!serial.ok()) {
      EXPECT_EQ(parallel.status().code(), serial.status().code())
          << ReplayHint(seed);
      ++skipped;
      return;
    }
    EXPECT_EQ(*parallel, *serial) << ReplayHint(seed);
    ++decided;
    if (*serial) return;
    // Refute the NO verdict: the witness expansion (comparison-free — it
    // comes from Q1's plan) freezes to an instance where Q1 certainly
    // derives a tuple that the comparison-aware oracle for Q2 does not.
    FrozenWitness w = FreezeWitness(serial_witness, &interner);
    Result<std::vector<Tuple>> c1 = CertainAnswers(
        t.q1.program, t.q1.goal, t.views, w.instance, &interner);
    Result<std::vector<Tuple>> c2 = CertainAnswersWithComparisons(
        t.q2.program, t.q2.goal, t.views, w.instance, &interner);
    ASSERT_TRUE(c1.ok()) << c1.status().ToString() << "\n" << ReplayHint(seed);
    ASSERT_TRUE(c2.ok()) << c2.status().ToString() << "\n" << ReplayHint(seed);
    EXPECT_NE(std::find(c1->begin(), c1->end(), w.head), c1->end())
        << ReplayHint(seed);
    EXPECT_EQ(std::find(c2->begin(), c2->end(), w.head), c2->end())
        << ReplayHint(seed);
    ++refuted;
  });
  RecordProperty("decided", decided);
  RecordProperty("refuted", refuted);
  RecordProperty("skipped", skipped);
  EXPECT_GT(decided, skipped);
}

// ---------------------------------------------------------------------------
// Fragment 3: Section 6, closed-world refuter vs brute force.
// ---------------------------------------------------------------------------

TEST(DifferentialTest, CwaRefutationsVerifiedByBruteForce) {
  int refutations = 0, inconclusive = 0, skipped = 0;
  ForEachCase(3'000'000, [&](uint64_t seed) {
    Interner interner;
    // A deliberately tiny vocabulary: the refuter's search is doubly
    // exponential (candidate instances x candidate databases), so the CWA
    // sweep trades width for case count.
    RandomQueryOptions cwa_options = CaseOptions(seed);
    cwa_options.num_variables = 2;
    cwa_options.num_predicates = 1;
    cwa_options.constant_probability = 0.0;
    RandomTriple t = MakeTriple(cwa_options, /*num_views=*/2, &interner);
    if (t.views.empty() ||
        t.q1.program.rules[0].head.arity() !=
            t.q2.program.rules[0].head.arity()) {
      ++skipped;
      return;
    }
    CwaRefuterOptions options;
    options.max_instance_facts = 2;
    options.domain_size = 2;
    Result<std::optional<CwaRefutation>> refutation =
        RefuteCwaContainment(t.q1, t.q2, t.views, &interner, options);
    if (!refutation.ok()) {
      // The bounded search can exceed the brute-force enumeration cap on
      // wide vocabularies; that is a bound, not a defect.
      ASSERT_EQ(refutation.status().code(), StatusCode::kBoundReached)
          << refutation.status().ToString() << "\n"
          << ReplayHint(seed);
      ++skipped;
      return;
    }
    if (!refutation->has_value()) {
      ++inconclusive;
      return;
    }
    // Re-verify the refutation against the independent oracle, with every
    // view complete (the refuter's closed-world reading).
    ViewSet complete_views;
    for (const ViewDefinition& v : t.views.views()) {
      ViewDefinition closed = v;
      closed.complete = true;
      Status added = complete_views.Add(std::move(closed));
      ASSERT_TRUE(added.ok()) << added.ToString();
    }
    const Database& instance = (*refutation)->instance;
    Result<std::vector<Tuple>> c1 = BruteForceCertainAnswers(
        t.q1.program, t.q1.goal, complete_views, instance, &interner);
    Result<std::vector<Tuple>> c2 = BruteForceCertainAnswers(
        t.q2.program, t.q2.goal, complete_views, instance, &interner);
    ASSERT_TRUE(c1.ok()) << c1.status().ToString() << "\n" << ReplayHint(seed);
    ASSERT_TRUE(c2.ok()) << c2.status().ToString() << "\n" << ReplayHint(seed);
    const Tuple& answer = (*refutation)->answer;
    EXPECT_NE(std::find(c1->begin(), c1->end(), answer), c1->end())
        << ReplayHint(seed);
    EXPECT_EQ(std::find(c2->begin(), c2->end(), answer), c2->end())
        << ReplayHint(seed);
    ++refutations;
  });
  RecordProperty("refutations", refutations);
  RecordProperty("inconclusive", inconclusive);
  RecordProperty("skipped", skipped);
  // Closed-world separations must actually occur in the sweep.
  if (ReplaySeedFromEnv() == std::nullopt) {
    EXPECT_GT(refutations, 0);
  }
}

// ---------------------------------------------------------------------------
// Fragment 4: CEGAR vs the scans, three sub-sweeps (3 x RELCONT_DIFF_CASES).
// ---------------------------------------------------------------------------

/// Decides the triple with all three engines — serial scan, 4-way parallel
/// scan, CEGAR — asserts verdict (and status-code) agreement, re-verifies
/// CEGAR NO witnesses semantically, and reports the agreed verdict.
/// Returns nullopt when every engine erred identically (counted a skip).
std::optional<bool> DecideAllEngines(const RandomTriple& t,
                                     Interner* interner, uint64_t seed,
                                     int* decided, int* refuted,
                                     int* skipped) {
  Result<RelativeContainmentResult> serial =
      RelativelyContained(t.q1, t.q2, t.views, interner);
  RelativeContainmentOptions par_options;
  par_options.parallel_workers = 4;
  Result<RelativeContainmentResult> parallel =
      RelativelyContained(t.q1, t.q2, t.views, interner, par_options);
  RelativeContainmentOptions cegar_options;
  cegar_options.strategy = ContainmentStrategy::kCegar;
  CegarStats stats;
  Result<RelativeContainmentResult> cegar = CegarRelativelyContained(
      t.q1, t.q2, t.views, interner, cegar_options, &stats);

  EXPECT_EQ(parallel.ok(), serial.ok()) << ReplayHint(seed);
  EXPECT_EQ(cegar.ok(), serial.ok()) << ReplayHint(seed);
  if (!serial.ok() || !parallel.ok() || !cegar.ok()) {
    if (!serial.ok() && !cegar.ok()) {
      EXPECT_EQ(cegar.status().code(), serial.status().code())
          << serial.status().ToString() << " vs "
          << cegar.status().ToString() << "\n"
          << ReplayHint(seed);
    }
    ++*skipped;
    return std::nullopt;
  }
  EXPECT_EQ(parallel->contained, serial->contained) << ReplayHint(seed);
  EXPECT_EQ(cegar->contained, serial->contained) << ReplayHint(seed);
  // Every completed CEGAR run checked each proposal it did not prune.
  EXPECT_LE(stats.iterations, stats.proposals) << ReplayHint(seed);
  ++*decided;

  if (!cegar->contained) {
    // The CEGAR witness is re-verified on its own merits (it generally
    // differs from the scan's): its frozen instance must carry a Q1
    // certain answer that is not a Q2 certain answer.
    EXPECT_TRUE(cegar->witness.has_value()) << ReplayHint(seed);
    if (cegar->witness.has_value()) {
      FrozenWitness w = FreezeWitness(*cegar->witness, interner);
      Result<std::vector<Tuple>> c1 = CertainAnswers(
          t.q1.program, t.q1.goal, t.views, w.instance, interner);
      Result<std::vector<Tuple>> c2 = CertainAnswers(
          t.q2.program, t.q2.goal, t.views, w.instance, interner);
      EXPECT_TRUE(c1.ok()) << c1.status().ToString() << "\n"
                           << ReplayHint(seed);
      EXPECT_TRUE(c2.ok()) << c2.status().ToString() << "\n"
                           << ReplayHint(seed);
      if (c1.ok() && c2.ok()) {
        EXPECT_NE(std::find(c1->begin(), c1->end(), w.head), c1->end())
            << ReplayHint(seed);
        EXPECT_EQ(std::find(c2->begin(), c2->end(), w.head), c2->end())
            << ReplayHint(seed);
        ++*refuted;
      }
    }
  }
  return serial->contained;
}

TEST(DifferentialTest, CegarMatchesScansOnSection3) {
  int decided = 0, refuted = 0, skipped = 0;
  ForEachCase(4'000'000, [&](uint64_t seed) {
    Interner interner;
    RandomTriple t = MakeTriple(CaseOptions(seed), /*num_views=*/3, &interner);
    if (t.views.empty() ||
        t.q1.program.rules[0].head.arity() !=
            t.q2.program.rules[0].head.arity()) {
      ++skipped;
      return;
    }
    DecideAllEngines(t, &interner, seed, &decided, &refuted, &skipped);
  });
  RecordProperty("decided", decided);
  RecordProperty("refuted", refuted);
  RecordProperty("skipped", skipped);
  EXPECT_GT(decided, skipped);
}

TEST(DifferentialTest, CegarMatchesScansOnWideSection3) {
  int decided = 0, refuted = 0, skipped = 0;
  ForEachCase(5'000'000, [&](uint64_t seed) {
    Interner interner;
    // A wider vocabulary than the base sweep: more atoms and views means
    // several inverse-rule options per template position, so the CEGAR
    // proposal DFS genuinely branches and blocking clauses actually fire.
    RandomQueryOptions options = CaseOptions(seed);
    options.num_atoms = 3;
    options.num_predicates = 2;
    options.num_variables = 4;
    RandomTriple t = MakeTriple(options, /*num_views=*/5, &interner);
    if (t.views.empty() ||
        t.q1.program.rules[0].head.arity() !=
            t.q2.program.rules[0].head.arity()) {
      ++skipped;
      return;
    }
    std::optional<bool> verdict =
        DecideAllEngines(t, &interner, seed, &decided, &refuted, &skipped);
    if (!verdict.has_value()) return;
    // Dispatch coverage: kAuto must agree whichever engine it picks.
    RelativeContainmentOptions auto_options;
    auto_options.strategy = ContainmentStrategy::kAuto;
    Result<RelativeContainmentResult> chosen =
        RelativelyContained(t.q1, t.q2, t.views, &interner, auto_options);
    ASSERT_TRUE(chosen.ok()) << chosen.status().ToString() << "\n"
                             << ReplayHint(seed);
    EXPECT_EQ(chosen->contained, *verdict) << ReplayHint(seed);
  });
  RecordProperty("decided", decided);
  RecordProperty("refuted", refuted);
  RecordProperty("skipped", skipped);
  EXPECT_GT(decided, skipped);
}

TEST(DifferentialTest, CegarMatchesScansAndQbfOracleOnPi2pFamily) {
  int decided = 0, refuted = 0, skipped = 0;
  ForEachCase(6'000'000, [&](uint64_t seed) {
    Interner interner;
    // The Theorem 3.3 family: F is ∀∃-satisfiable iff q2 ⊑_V q1, so every
    // engine is pinned against an independent closed-form oracle, not just
    // against each other. m stays small — the scan is the slow side.
    int num_forall = 1 + static_cast<int>(seed % 5);
    QbfFormula f = RandomQbf(/*num_exists=*/3, num_forall,
                             /*num_clauses=*/4, seed);
    Result<Pi2pInstance> inst = BuildPi2pReduction(f, &interner);
    ASSERT_TRUE(inst.ok()) << inst.status().ToString() << "\n"
                           << ReplayHint(seed);
    RandomTriple t;
    t.q1 = inst->q2;
    t.q2 = inst->q1;
    t.views = inst->views;
    std::optional<bool> verdict =
        DecideAllEngines(t, &interner, seed, &decided, &refuted, &skipped);
    ASSERT_TRUE(verdict.has_value()) << ReplayHint(seed);
    EXPECT_EQ(*verdict, ForallExistsSatisfiable(f)) << ReplayHint(seed);
  });
  RecordProperty("decided", decided);
  RecordProperty("refuted", refuted);
  RecordProperty("skipped", skipped);
  EXPECT_GT(decided, skipped);
}

}  // namespace
}  // namespace relcont
