// Tests for the request-scoped flight recorder (obs/flight.h): the
// seqlock wide-event ring under concurrent writers (run under TSan in
// CI), the tail-retention policy against a fake window clock, the FIFO
// byte-capped arena, head sampling, the async-signal-safe JSON renderer,
// and the crash black box via a forked child that raises SIGABRT.

#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "gtest/gtest.h"
#include "obs/flight.h"
#include "service/metrics.h"
#include "trace/trace.h"

namespace relcont {
namespace {

using obs::FlightRecorder;
using obs::WideEvent;

/// A wide event whose numeric fields are all derived from `id`, so a
/// reader can detect a torn ring slot by checking self-consistency.
WideEvent SelfConsistentEvent(uint64_t id) {
  WideEvent event;
  event.request_id = id;
  event.ts_unix_micros = 7 * id;
  event.latency_micros = 3 * id + 1;
  event.catalog_version = static_cast<int64_t>(id);
  event.worker_count = static_cast<uint32_t>(id % 17);
  event.error = static_cast<uint8_t>(id % 2);
  event.set_verb("contained");
  event.set_regime("section3");
  event.set_catalog("stress");
  return event;
}

TEST(FlightRingTest, ConcurrentWritersNeverSurfaceTornEvents) {
  FlightRecorder flight({/*ring_capacity=*/256, /*arena_max_bytes=*/1024,
                         /*head_sample_every=*/0});
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 5000;

  std::vector<std::thread> writers;
  std::atomic<bool> reader_stop{false};
  // A concurrent reader exercises the seqlock validation while writers
  // race; every event it surfaces must be internally consistent.
  std::thread reader([&flight, &reader_stop] {
    while (!reader_stop.load(std::memory_order_relaxed)) {
      for (const WideEvent& event : flight.RecentEvents(64)) {
        WideEvent expected = SelfConsistentEvent(event.request_id);
        EXPECT_EQ(event.latency_micros, expected.latency_micros);
        EXPECT_EQ(event.ts_unix_micros, expected.ts_unix_micros);
        EXPECT_EQ(event.catalog_version, expected.catalog_version);
        EXPECT_EQ(event.worker_count, expected.worker_count);
        EXPECT_STREQ(event.catalog, "stress");
      }
    }
  });
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&flight, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        flight.Record(SelfConsistentEvent(
            static_cast<uint64_t>(t) * kPerThread + i + 1));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  reader_stop.store(true, std::memory_order_relaxed);
  reader.join();

  // Every Record counts, including writes dropped in slot races.
  EXPECT_EQ(flight.recorded_total(), kThreads * kPerThread);

  std::vector<WideEvent> recent = flight.RecentEvents(256);
  EXPECT_GT(recent.size(), 0u);
  EXPECT_LE(recent.size(), 256u);
  std::set<uint64_t> ids;
  for (const WideEvent& event : recent) {
    WideEvent expected = SelfConsistentEvent(event.request_id);
    EXPECT_EQ(event.latency_micros, expected.latency_micros);
    EXPECT_EQ(event.catalog_version, expected.catalog_version);
    EXPECT_TRUE(ids.insert(event.request_id).second)
        << "duplicate id " << event.request_id;
  }
}

TEST(FlightRingTest, RecentEventsAreNewestFirst) {
  FlightRecorder flight({/*ring_capacity=*/8, /*arena_max_bytes=*/1024,
                         /*head_sample_every=*/0});
  for (uint64_t id = 1; id <= 20; ++id) {
    flight.Record(SelfConsistentEvent(id));
  }
  std::vector<WideEvent> recent = flight.RecentEvents();
  ASSERT_EQ(recent.size(), 8u);  // one ring lap survives
  for (size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].request_id, 20 - i);
  }
}

TEST(FlightRingTest, RequestIdsAreMonotonicFromOne) {
  FlightRecorder flight;
  EXPECT_EQ(flight.NextRequestId(), 1u);
  EXPECT_EQ(flight.NextRequestId(), 2u);
  EXPECT_EQ(flight.NextRequestId(), 3u);
}

TEST(FlightArenaTest, FifoEvictionUnderByteCapCountsDrops) {
  WideEvent event;
  const size_t entry_bytes = sizeof(WideEvent) + 100;
  FlightRecorder flight({/*ring_capacity=*/16,
                         /*arena_max_bytes=*/3 * entry_bytes,
                         /*head_sample_every=*/0});
  for (uint64_t id = 1; id <= 5; ++id) {
    event.request_id = id;
    flight.Retain(event, std::string(60, 'a'), std::string(40, 'b'));
  }
  // Three fit; retaining the 4th and 5th evicted the two oldest.
  EXPECT_EQ(flight.retained_total(), 5u);
  EXPECT_EQ(flight.dropped_total(), 2u);
  EXPECT_LE(flight.arena_bytes(), flight.arena_max_bytes());
  EXPECT_FALSE(flight.FindRetained(1).has_value());
  EXPECT_FALSE(flight.FindRetained(2).has_value());
  ASSERT_TRUE(flight.FindRetained(5).has_value());
  EXPECT_EQ(flight.FindRetained(5)->trace_text, std::string(60, 'a'));
  EXPECT_EQ(flight.RetainedIds(), (std::vector<uint64_t>{5, 4, 3}));

  // An entry bigger than the whole arena is dropped outright.
  event.request_id = 6;
  flight.Retain(event, std::string(4 * entry_bytes, 'c'), "");
  EXPECT_FALSE(flight.FindRetained(6).has_value());
  EXPECT_EQ(flight.dropped_total(), 3u);
}

TEST(FlightArenaTest, HeadSamplingKeepsEveryNth) {
  FlightRecorder flight({/*ring_capacity=*/16, /*arena_max_bytes=*/4096,
                         /*head_sample_every=*/4});
  EXPECT_TRUE(flight.ShouldHeadSample(1));
  EXPECT_FALSE(flight.ShouldHeadSample(2));
  EXPECT_FALSE(flight.ShouldHeadSample(4));
  EXPECT_TRUE(flight.ShouldHeadSample(5));
  EXPECT_TRUE(flight.ShouldHeadSample(9));

  FlightRecorder disabled({/*ring_capacity=*/16, /*arena_max_bytes=*/4096,
                           /*head_sample_every=*/0});
  for (uint64_t id = 1; id <= 16; ++id) {
    EXPECT_FALSE(disabled.ShouldHeadSample(id));
  }
}

TEST(FlightJsonTest, RenderedWideEventParsesWithEveryField) {
  WideEvent event;
  event.request_id = 42;
  event.ts_unix_micros = 1700000000000000;
  event.latency_micros = 1234;
  event.catalog_version = 3;
  event.worker_count = 4;
  event.error = 1;
  event.cache_hit = 1;
  event.traced = 1;
  event.bound = 1;
  event.set_verb("contained");
  event.set_regime("section3");
  event.set_catalog("ca\"rs");  // escaping goes through the AS-safe path
  event.set_bound_site("linearization_dfs");
  WideEvent::CopyInto(event.phases[0].name, WideEvent::kPhaseChars, "decide");
  event.phases[0].ns = 900000;

  char buf[2048];
  size_t len = obs::RenderWideEventJson(event, buf, sizeof(buf));
  ASSERT_GT(len, 0u);
  Result<json::Value> parsed = json::Parse(std::string(buf, len));
  ASSERT_TRUE(parsed.ok()) << buf;
  EXPECT_DOUBLE_EQ(parsed->Find("request_id")->number_value, 42);
  EXPECT_EQ(parsed->Find("verb")->string_value, "contained");
  EXPECT_EQ(parsed->Find("regime")->string_value, "section3");
  EXPECT_EQ(parsed->Find("catalog")->string_value, "ca\"rs");
  EXPECT_EQ(parsed->Find("bound_site")->string_value, "linearization_dfs");
  EXPECT_DOUBLE_EQ(parsed->Find("latency_us")->number_value, 1234);
  EXPECT_DOUBLE_EQ(parsed->Find("workers")->number_value, 4);
  EXPECT_DOUBLE_EQ(parsed->Find("catalog_version")->number_value, 3);
  EXPECT_TRUE(parsed->Find("error")->bool_value);
  EXPECT_TRUE(parsed->Find("cache_hit")->bool_value);
  EXPECT_TRUE(parsed->Find("traced")->bool_value);
  EXPECT_TRUE(parsed->Find("bound")->bool_value);
  ASSERT_EQ(parsed->Find("phases")->array.size(), 1u);
  EXPECT_EQ(parsed->Find("phases")->array[0].Find("name")->string_value,
            "decide");
  EXPECT_DOUBLE_EQ(parsed->Find("phases")->array[0].Find("ns")->number_value,
                   900000);
}

// ---------------------------------------------------------------------------
// Retention policy against a deterministic window clock.

TEST(FlightRetentionTest, TailThresholdTracksTrailingWindowP99) {
  ServiceMetrics metrics;
  uint64_t now_sec = 1000;
  metrics.set_window_clock_for_test([&now_sec] { return now_sec; });

  // No samples yet: the latency criterion is disabled.
  EXPECT_EQ(metrics.TailThresholdMicros(ServiceVerb::kContained), 0u);

  // 100 samples, latencies 1..100 µs: the window p99 picks a real sample
  // from the top of that range.
  for (uint64_t i = 1; i <= 100; ++i) {
    metrics.RecordRequest(Regime::kSection3, i, /*error=*/false,
                          /*cache_hit=*/false);
  }
  ++now_sec;  // invalidate the per-second threshold cache
  uint64_t threshold = metrics.TailThresholdMicros(ServiceVerb::kContained);
  EXPECT_GE(threshold, 90u);
  EXPECT_LE(threshold, 100u);

  // The other verbs saw no traffic; their thresholds stay disabled.
  EXPECT_EQ(metrics.TailThresholdMicros(ServiceVerb::kPlan), 0u);

  // Advance past the short trailing window: the samples age out and the
  // criterion disables again.
  now_sec += ServiceMetrics::kShortWindowSecs + 1;
  EXPECT_EQ(metrics.TailThresholdMicros(ServiceVerb::kContained), 0u);
}

TEST(FlightRetentionTest, RecordFlightRetainsErrorsAndTailAndHeadSample) {
  ServiceMetrics metrics;
  uint64_t now_sec = 2000;
  metrics.set_window_clock_for_test([&now_sec] { return now_sec; });
  metrics.flight().Configure({/*ring_capacity=*/64,
                              /*arena_max_bytes=*/64 * 1024,
                              /*head_sample_every=*/64});

  // Establish a trailing p99 around 100 µs.
  for (uint64_t i = 1; i <= 100; ++i) {
    metrics.RecordRequest(Regime::kSection3, i, false, false);
  }
  ++now_sec;

  auto make_event = [&metrics](uint64_t latency, uint8_t error) {
    WideEvent event;
    event.request_id = metrics.flight().NextRequestId();
    event.latency_micros = latency;
    event.error = error;
    event.set_verb("contained");
    event.set_regime("section3");
    return event;
  };

  // Id 1 is the head sample: retained although fast and healthy.
  WideEvent head = make_event(/*latency=*/5, /*error=*/0);
  metrics.RecordFlight(ServiceVerb::kContained, head, nullptr);
  EXPECT_TRUE(metrics.flight().FindRetained(head.request_id).has_value());

  // Fast, healthy, off the head sample: recorded but not retained.
  WideEvent fast = make_event(/*latency=*/5, /*error=*/0);
  metrics.RecordFlight(ServiceVerb::kContained, fast, nullptr);
  EXPECT_FALSE(metrics.flight().FindRetained(fast.request_id).has_value());

  // Slower than the trailing p99: retained.
  WideEvent slow = make_event(/*latency=*/5000, /*error=*/0);
  metrics.RecordFlight(ServiceVerb::kContained, slow, nullptr);
  EXPECT_TRUE(metrics.flight().FindRetained(slow.request_id).has_value());

  // Errored (covers kBoundReached): retained even though fast.
  WideEvent errored = make_event(/*latency=*/5, /*error=*/1);
  metrics.RecordFlight(ServiceVerb::kContained, errored, nullptr);
  EXPECT_TRUE(metrics.flight().FindRetained(errored.request_id).has_value());

  // Every RecordFlight stamped a wall-clock timestamp and hit the ring.
  EXPECT_EQ(metrics.flight().recorded_total(), 4u);
  for (const WideEvent& event : metrics.flight().RecentEvents(4)) {
    EXPECT_GT(event.ts_unix_micros, 0u);
  }
}

// ---------------------------------------------------------------------------
// Crash black box.

TEST(FlightCrashTest, CrashHandlerDumpsRingAndStatuszOnAbort) {
  std::string path = testing::TempDir() + "/flight_crash_dump.txt";
  std::remove(path.c_str());

  FlightRecorder flight({/*ring_capacity=*/16, /*arena_max_bytes=*/4096,
                         /*head_sample_every=*/0});
  for (uint64_t id = 1; id <= 3; ++id) {
    flight.Record(SelfConsistentEvent(id));
  }
  flight.StoreStatuszSnapshot("{\"service\":\"relcont\",\"draining\":false}");

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: install the handler (never in the parent — gtest must not
    // inherit it) and die the way a real crash does.
    obs::InstallCrashHandler(&flight, path.c_str());
    raise(SIGABRT);
    _exit(97);  // unreachable: the handler re-raises with default action
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus)) << "child exited " << wstatus;
  EXPECT_EQ(WTERMSIG(wstatus), SIGABRT);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "no crash dump at " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines.front().rfind("relcont-crash-v1 signal=6 recorded=3", 0),
            0u)
      << lines.front();
  EXPECT_EQ(lines.back(), "END");

  int statusz_lines = 0;
  int event_lines = 0;
  for (const std::string& dump_line : lines) {
    if (dump_line.rfind("STATUSZ ", 0) == 0) {
      ++statusz_lines;
      Result<json::Value> statusz = json::Parse(dump_line.substr(8));
      ASSERT_TRUE(statusz.ok()) << dump_line;
      EXPECT_EQ(statusz->Find("service")->string_value, "relcont");
    } else if (dump_line.rfind("EVENT ", 0) == 0) {
      ++event_lines;
      Result<json::Value> event = json::Parse(dump_line.substr(6));
      ASSERT_TRUE(event.ok()) << dump_line;
      uint64_t id =
          static_cast<uint64_t>(event->Find("request_id")->number_value);
      WideEvent expected = SelfConsistentEvent(id);
      EXPECT_DOUBLE_EQ(event->Find("latency_us")->number_value,
                       static_cast<double>(expected.latency_micros));
    }
  }
  EXPECT_EQ(statusz_lines, 1);
  EXPECT_EQ(event_lines, 3);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace relcont
