// The plan service end to end: the PlanCache (LRU, invalidation, and the
// counters the METRICS surfaces render), the Planner facade over both plan
// regimes (Section 2.3 UCQ plans and Section 4 executable dom plans), the
// PLAN?/REWRITE?/CATALOG? protocol verbs, budget behavior (a bound is an
// error, never a wrong plan), and the path-view workload generator.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "datalog/parser.h"
#include "planner/plan_cache.h"
#include "planner/planner.h"
#include "relcont/workload.h"
#include "service/protocol.h"
#include "service/service.h"
#include "trace/trace.h"

namespace relcont {
namespace {

// --- plan cache -------------------------------------------------------------

CachedPlan PlanValue(const std::string& text) {
  CachedPlan out;
  out.plan_text = text;
  out.num_rules = 1;
  return out;
}

TEST(PlanCacheTest, LookupInsertAndLruEviction) {
  PlanCache cache(/*capacity=*/2, /*num_shards=*/1);
  EXPECT_FALSE(cache.Lookup("a").has_value());
  cache.Insert("a", "cat", PlanValue("plan-a"));
  cache.Insert("b", "cat", PlanValue("plan-b"));
  // Touch "a" so "b" is the LRU victim when "c" arrives.
  EXPECT_TRUE(cache.Lookup("a").has_value());
  cache.Insert("c", "cat", PlanValue("plan-c"));
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  PlanCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.invalidated, 0u);
}

TEST(PlanCacheTest, InsertRefreshesExistingEntry) {
  PlanCache cache(4, 1);
  cache.Insert("a", "cat", PlanValue("old"));
  cache.Insert("a", "cat", PlanValue("new"));
  auto hit = cache.Lookup("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->plan_text, "new");
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST(PlanCacheTest, InvalidateCatalogEvictsOnlyThatCatalog) {
  PlanCache cache(/*capacity=*/64, /*num_shards=*/4);
  for (int i = 0; i < 8; ++i) {
    cache.Insert("left-" + std::to_string(i), "left", PlanValue("l"));
    cache.Insert("right-" + std::to_string(i), "right", PlanValue("r"));
  }
  // Accumulate some hits so we can assert the counters survive.
  EXPECT_TRUE(cache.Lookup("left-0").has_value());
  EXPECT_TRUE(cache.Lookup("right-0").has_value());
  PlanCacheStats before = cache.Stats();

  cache.InvalidateCatalog("left");

  PlanCacheStats after = cache.Stats();
  EXPECT_EQ(after.invalidated, 8u);
  EXPECT_EQ(after.entries, 8u);
  // Hit/miss counters are untouched by invalidation.
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(cache.Lookup("left-" + std::to_string(i)).has_value());
    EXPECT_TRUE(cache.Lookup("right-" + std::to_string(i)).has_value());
  }
}

// --- planner facade ---------------------------------------------------------

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(service_.catalogs()
                    .Register("plain",
                              "v(X, Y) :- e(X, Y).\n"
                              "w(X, Y) :- e(X, Z), e(Z, Y).\n")
                    .ok());
    ASSERT_TRUE(service_.catalogs()
                    .Register("bound",
                              "v(X, Y) :- e(X, Y).\n",
                              {{"v", "bf"}})
                    .ok());
  }

  PlanResponse Plan(const std::string& query, const std::string& catalog,
                    bool bypass_cache = false) {
    PlanRequest request;
    request.query_text = query;
    request.catalog = catalog;
    request.bypass_cache = bypass_cache;
    return service_.planner().Plan(request, &ctx_);
  }

  RewriteResponse Rewrite(const std::string& q1, const std::string& q2,
                          const std::string& catalog) {
    RewriteRequest request;
    request.q1_text = q1;
    request.q2_text = q2;
    request.catalog = catalog;
    return service_.planner().Rewrite(request, &ctx_);
  }

  ContainmentService service_;
  PlannerContext ctx_;
};

TEST_F(PlannerTest, UcqPlanForPatternFreeCatalog) {
  PlanResponse r = Plan("q(X, Z) :- e(X, Y), e(Y, Z).", "plain");
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_FALSE(r.recursive);
  EXPECT_TRUE(r.dom_predicate.empty());
  EXPECT_GE(r.num_rules, 1);
  EXPECT_EQ(r.catalog_version, 1);
  // The plan is executable text over the sources: it re-parses, every
  // rule's head is the goal, and every body predicate is a source.
  Interner check;
  Result<Program> parsed = ParseProgram(r.plan_text, &check);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(static_cast<int>(parsed->rules.size()), r.num_rules);
  for (const Rule& rule : parsed->rules) {
    EXPECT_EQ(check.NameOf(rule.head.predicate), "q");
    for (const Atom& atom : rule.body) {
      std::string name = check.NameOf(atom.predicate);
      EXPECT_TRUE(name == "v" || name == "w") << name;
    }
  }
}

TEST_F(PlannerTest, RecursiveDomPlanForPatternCatalog) {
  PlanResponse r = Plan("q(X, Y) :- e(X, Y).", "bound");
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.recursive);
  EXPECT_FALSE(r.dom_predicate.empty());
  EXPECT_GE(r.num_rules, 2);
  // The recursive plan (Skolem terms included) round-trips through the
  // parser — the differential sweep and the cache both rely on this.
  Interner check;
  Result<Program> parsed = ParseProgram(r.plan_text, &check);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(static_cast<int>(parsed->rules.size()), r.num_rules);
  EXPECT_NE(r.plan_text.find(r.dom_predicate), std::string::npos);
}

TEST_F(PlannerTest, PlanCacheHitAndCatalogInvalidation) {
  PlanResponse cold = Plan("q(X, Z) :- e(X, Y), e(Y, Z).", "plain");
  ASSERT_TRUE(cold.status.ok());
  EXPECT_FALSE(cold.cache_hit);
  // Renamed variables still hit: the key uses canonical fingerprints.
  PlanResponse warm = Plan("q(A, C) :- e(A, B), e(B, C).", "plain");
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.plan_text, cold.plan_text);

  // Other catalogs' entries survive a re-registration...
  PlanResponse other = Plan("q(X, Y) :- e(X, Y).", "bound");
  ASSERT_TRUE(other.status.ok());
  ASSERT_TRUE(
      service_.catalogs().Register("plain", "v(X, Y) :- e(Y, X).\n").ok());
  PlanCacheStats stats = service_.planner().cache().Stats();
  EXPECT_GE(stats.invalidated, 1u);

  // ...so "bound" still hits while "plain" re-plans against v2.
  PlanResponse after = Plan("q(X, Z) :- e(X, Y), e(Y, Z).", "plain");
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.catalog_version, 2);
  PlanResponse bound_again = Plan("q(X, Y) :- e(X, Y).", "bound");
  ASSERT_TRUE(bound_again.status.ok());
  EXPECT_TRUE(bound_again.cache_hit);
}

TEST_F(PlannerTest, RewriteDecidesPlanLevelContainment) {
  // Identical queries: P1^exp ⊑ Q2 holds.
  RewriteResponse yes = Rewrite("q1(X, Z) :- e(X, Y), e(Y, Z).",
                                "q2(X, Z) :- e(X, Y), e(Y, Z).", "plain");
  ASSERT_TRUE(yes.status.ok()) << yes.status.ToString();
  EXPECT_TRUE(yes.contained);
  EXPECT_TRUE(yes.witness_text.empty());

  // A length-1 chain is not contained in a length-2 chain.
  RewriteResponse no = Rewrite("q1(X, Y) :- e(X, Y).",
                               "q2(X, Z) :- e(X, Y), e(Y, Z).", "plain");
  ASSERT_TRUE(no.status.ok()) << no.status.ToString();
  EXPECT_FALSE(no.contained);
  EXPECT_FALSE(no.witness_text.empty());

  // Same question under binding patterns (Theorem 4.1 route).
  RewriteResponse bound = Rewrite("q1(X, Y) :- e(X, Y).",
                                  "q2(X, Y) :- e(X, Y).", "bound");
  ASSERT_TRUE(bound.status.ok()) << bound.status.ToString();
  EXPECT_TRUE(bound.contained);
}

TEST_F(PlannerTest, RewriteResultsAreCachedAndInvalidated) {
  RewriteResponse cold = Rewrite("q1(X, Y) :- e(X, Y).",
                                 "q2(X, Z) :- e(X, Y), e(Y, Z).", "plain");
  ASSERT_TRUE(cold.status.ok());
  EXPECT_FALSE(cold.cache_hit);
  RewriteResponse warm = Rewrite("q1(A, B) :- e(A, B).",
                                 "q2(A, C) :- e(A, B), e(B, C).", "plain");
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.contained, cold.contained);
  EXPECT_EQ(warm.witness_text, cold.witness_text);
}

TEST_F(PlannerTest, ErrorsForUnknownCatalogAndBadQuery) {
  PlanResponse unknown = Plan("q(X) :- e(X, Y).", "nope");
  EXPECT_FALSE(unknown.status.ok());
  PlanResponse bad = Plan("q(X :- ", "plain");
  EXPECT_FALSE(bad.status.ok());
  EXPECT_EQ(service_.planner().cache().Stats().entries, 0u);
}

TEST_F(PlannerTest, ExpiredDeadlineAnswersBoundReachedNeverAWrongPlan) {
  // A catalog big enough that planning cannot finish within 1 ms of work
  // — the request must come back kBoundReached, not with a partial plan.
  PathViewOptions options;
  options.num_views = 400;
  options.num_relations = 6;
  options.max_length = 4;
  options.bound_probability = 0.0;  // UCQ route: unfolding charges budget
  options.seed = 7;
  PathViewWorkload workload = MakePathViewWorkload(options);
  ASSERT_TRUE(service_.catalogs()
                  .Register("paths", workload.views_text, workload.patterns)
                  .ok());
  PlanRequest request;
  request.query_text = workload.query_text;
  request.catalog = "paths";
  request.options.max_steps = 1;  // deterministic analogue of timeout_ms=1
  PlanResponse r = service_.planner().Plan(request, &ctx_);
  ASSERT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kBoundReached)
      << r.status.ToString();
  EXPECT_TRUE(r.plan_text.empty());
  // Bounded results are never cached: a retry with budget must re-plan.
  EXPECT_EQ(service_.planner().cache().Stats().entries, 0u);
}

TEST_F(PlannerTest, PlannerMetricsFlowIntoTheSharedSnapshot) {
  ASSERT_TRUE(Plan("q(X, Z) :- e(X, Y), e(Y, Z).", "plain").status.ok());
  ASSERT_TRUE(Rewrite("q1(X, Y) :- e(X, Y).", "q2(X, Y) :- e(X, Y).",
                      "plain")
                  .status.ok());
  ASSERT_FALSE(Plan("q(X) :- e(X, Y).", "nope").status.ok());
  EXPECT_EQ(service_.metrics().plan_requests(), 2u);
  EXPECT_EQ(service_.metrics().rewrite_requests(), 1u);
  EXPECT_EQ(service_.metrics().plan_errors(), 1u);
  std::string dump = service_.metrics().Dump(
      service_.cache().Stats(), service_.planner().cache().Stats());
  EXPECT_NE(dump.find("plan_requests_total 2"), std::string::npos) << dump;
  EXPECT_NE(dump.find("rewrite_requests_total 1"), std::string::npos);
  EXPECT_NE(dump.find("plan_errors_total 1"), std::string::npos);
  EXPECT_NE(dump.find("plan_cache_misses"), std::string::npos);
}

// --- concurrent invalidation stress (8 threads, TSan-clean) -----------------

TEST(PlannerStressTest, ConcurrentPlansAndReRegistrations) {
  ContainmentService service;
  ASSERT_TRUE(
      service.catalogs().Register("hot", "v(X, Y) :- e(X, Y).\n").ok());
  ASSERT_TRUE(
      service.catalogs().Register("cold", "v(X, Y) :- e(X, Y).\n").ok());
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &failures, t]() {
      PlannerContext ctx;
      for (int i = 0; i < kRequestsPerThread; ++i) {
        if (t == 0 && i % 8 == 3) {
          // One thread churns the hot catalog while the rest plan.
          if (!service.catalogs()
                   .Register("hot", "v(X, Y) :- e(X, Y).\n")
                   .ok()) {
            failures.fetch_add(1);
          }
          continue;
        }
        PlanRequest request;
        request.query_text = "q(X, Z) :- e(X, Y), e(Y, Z).";
        request.catalog = (i % 2 == 0) ? "hot" : "cold";
        PlanResponse r = service.planner().Plan(request, &ctx);
        if (!r.status.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Deterministic tail (the racing phase above is about TSan coverage):
  // plan twice so the second is a guaranteed hit, then re-register and
  // check the entry was invalidated.
  PlannerContext ctx;
  PlanRequest request;
  request.query_text = "q(X, Z) :- e(X, Y), e(Y, Z).";
  request.catalog = "hot";
  ASSERT_TRUE(service.planner().Plan(request, &ctx).status.ok());
  EXPECT_TRUE(service.planner().Plan(request, &ctx).cache_hit);
  ASSERT_TRUE(
      service.catalogs().Register("hot", "v(X, Y) :- e(X, Y).\n").ok());
  PlanCacheStats stats = service.planner().cache().Stats();
  EXPECT_GE(stats.invalidated, 1u);
  EXPECT_GE(stats.hits, 1u);
}

// --- path-view workload generator -------------------------------------------

TEST(PathViewWorkloadTest, DeterministicPerSeedAndRegistrable) {
  PathViewOptions options;
  options.num_views = 50;
  options.seed = 42;
  PathViewWorkload a = MakePathViewWorkload(options);
  PathViewWorkload b = MakePathViewWorkload(options);
  EXPECT_EQ(a.views_text, b.views_text);
  EXPECT_EQ(a.patterns, b.patterns);
  EXPECT_EQ(a.query_text, b.query_text);
  options.seed = 43;
  PathViewWorkload c = MakePathViewWorkload(options);
  EXPECT_NE(a.views_text, c.views_text);

  CatalogRegistry registry;
  Result<int64_t> version =
      registry.Register("paths", a.views_text, a.patterns);
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  EXPECT_EQ(registry.Find("paths")->num_views, 50);
}

TEST(PathViewWorkloadTest, BoundProbabilityControlsAdornments) {
  PathViewOptions options;
  options.num_views = 100;
  options.seed = 1;
  options.bound_probability = 0.0;
  EXPECT_TRUE(MakePathViewWorkload(options).patterns.empty());
  options.bound_probability = 1.0;
  PathViewWorkload all = MakePathViewWorkload(options);
  EXPECT_EQ(static_cast<int>(all.patterns.size()), options.num_views);
  for (const auto& [source, adornment] : all.patterns) {
    EXPECT_EQ(adornment, "bf");
  }
}

TEST(PathViewWorkloadTest, SkewConcentratesOnPopularRelations) {
  PathViewOptions options;
  options.num_views = 300;
  options.num_relations = 8;
  options.skew = 2.0;
  options.seed = 5;
  PathViewWorkload w = MakePathViewWorkload(options);
  // e0 is the heaviest relation under skew 2.0; it must appear far more
  // often than the rarest one.
  auto count = [&w](const std::string& needle) {
    size_t n = 0;
    for (size_t pos = w.views_text.find(needle); pos != std::string::npos;
         pos = w.views_text.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_GT(count("e0("), 4 * count("e7("));
}

// --- protocol verbs ---------------------------------------------------------

class PlanVerbTest : public ::testing::Test {
 protected:
  PlanVerbTest() : session_(&service_) {
    EXPECT_EQ(session_.HandleLine("CATALOG c VIEW v(X, Y) :- e(X, Y). "
                                  "VIEW w(X, Y) :- e(X, Z), e(Z, Y)."),
              "OK catalog c v1 views=2 patterns=0\n");
    EXPECT_EQ(session_.HandleLine(
                  "DEFINE q q(X, Z) :- e(X, Y), e(Y, Z)."),
              "OK query q rules=1\n");
    EXPECT_EQ(session_.HandleLine("DEFINE q1 q1(X, Y) :- e(X, Y)."),
              "OK query q1 rules=1\n");
  }

  ContainmentService service_;
  ServerSession session_;
};

TEST_F(PlanVerbTest, PlanRoundTripAndCacheHit) {
  std::string cold = session_.HandleLine("PLAN? q @c");
  ASSERT_EQ(cold.rfind("OK plan catalog=c v1 kind=ucq rules=", 0), 0u)
      << cold;
  EXPECT_NE(cold.find(" MISS "), std::string::npos);
  // The lines after the header are the plan itself.
  std::string body = cold.substr(cold.find('\n') + 1);
  Interner check;
  ASSERT_TRUE(ParseProgram(body, &check).ok()) << body;

  std::string warm = session_.HandleLine("PLAN? q @c");
  EXPECT_NE(warm.find(" HIT "), std::string::npos) << warm;
  EXPECT_EQ(warm.substr(warm.find('\n') + 1), body);
}

TEST_F(PlanVerbTest, PlanAgainstPatternCatalogReportsRecursiveKind) {
  EXPECT_EQ(session_.HandleLine("CATALOG b VIEW v(X, Y) :- e(X, Y). "
                                "PATTERN v bf"),
            "OK catalog b v1 views=1 patterns=1\n");
  std::string out = session_.HandleLine("PLAN? q1 @b");
  ASSERT_EQ(out.rfind("OK plan catalog=b v1 kind=recursive", 0), 0u) << out;
  EXPECT_NE(out.find(" dom="), std::string::npos);
}

TEST_F(PlanVerbTest, RewriteVerbAnswersLikeContained) {
  EXPECT_EQ(session_.HandleLine("DEFINE q2 q2(X, Z) :- e(X, Y), e(Y, Z)."),
            "OK query q2 rules=1\n");
  std::string yes = session_.HandleLine("REWRITE? q q2 @c");
  EXPECT_EQ(yes.rfind("YES plan MISS ", 0), 0u) << yes;
  std::string no = session_.HandleLine("REWRITE? q1 q2 @c");
  EXPECT_EQ(no.rfind("NO plan MISS ", 0), 0u) << no;
  EXPECT_NE(no.find(" witness: "), std::string::npos);
  std::string warm = session_.HandleLine("REWRITE? q1 q2 @c");
  EXPECT_EQ(warm.rfind("NO plan HIT ", 0), 0u) << warm;
}

TEST_F(PlanVerbTest, StrictValidationAndBatchRejection) {
  EXPECT_EQ(session_.HandleLine("PLAN? q"),
            "ERR InvalidArgument: expected PLAN? <q> @<catalog> "
            "[timeout_ms=N] [budget=N] [workers=N]\n");
  EXPECT_EQ(session_.HandleLine("PLAN? missing @c"),
            "ERR InvalidArgument: unknown query 'missing' — DEFINE it "
            "first\n");
  std::string bad_option = session_.HandleLine("PLAN? q @c timeout_ms=zero");
  EXPECT_EQ(bad_option.rfind("ERR InvalidArgument: option 'timeout_ms'", 0),
            0u)
      << bad_option;
  EXPECT_EQ(session_.HandleLine("REWRITE? q @c"),
            "ERR InvalidArgument: expected REWRITE? <q1> <q2> @<catalog> "
            "[timeout_ms=N] [budget=N] [workers=N]\n");
  EXPECT_EQ(session_.HandleLine("BATCH BEGIN"), "OK batch begin\n");
  EXPECT_EQ(session_.HandleLine("PLAN? q @c"),
            "ERR InvalidArgument: PLAN? is not allowed inside a batch\n");
  EXPECT_EQ(session_.HandleLine("REWRITE? q q1 @c"),
            "ERR InvalidArgument: REWRITE? is not allowed inside a batch\n");
  EXPECT_EQ(session_.HandleLine("BATCH END"), "OK batch 0\n");
}

TEST_F(PlanVerbTest, PlanHonorsBudgetWithBoundReached) {
  std::string out = session_.HandleLine("PLAN? q @c budget=1");
  // Service-originated errors carry the flight-recorder request id.
  EXPECT_EQ(out.rfind("ERR [id=", 0), 0u) << out;
  EXPECT_NE(out.find("BoundReached"), std::string::npos) << out;
}

TEST_F(PlanVerbTest, ExplainPlanEmitsTrace) {
  std::string out = session_.HandleLine("EXPLAIN PLAN? q @c");
  ASSERT_EQ(out.rfind("OK plan catalog=c", 0), 0u) << out;
  // EXPLAIN bypasses the cache, so even after a warm PLAN? it reports MISS.
  EXPECT_NE(out.find(" MISS "), std::string::npos);
  if (trace::kCompiledIn) {
    EXPECT_NE(out.find("planner_plan"), std::string::npos) << out;
  }
  std::string rewrite = session_.HandleLine("EXPLAIN REWRITE? q q1 @c");
  EXPECT_EQ(rewrite.rfind("NO plan MISS ", 0), 0u) << rewrite;
  if (trace::kCompiledIn) {
    EXPECT_NE(rewrite.find("planner_rewrite"), std::string::npos);
  }
}

TEST_F(PlanVerbTest, CatalogQueryReturnsJson) {
  EXPECT_EQ(session_.HandleLine("CATALOG b VIEW v(X, Y) :- e(X, Y). "
                                "PATTERN v bf"),
            "OK catalog b v1 views=1 patterns=1\n");
  std::string out = session_.HandleLine("CATALOG?");
  Result<json::Value> parsed = json::Parse(out);
  ASSERT_TRUE(parsed.ok()) << out;
  const json::Value* catalogs = parsed->Find("catalogs");
  ASSERT_NE(catalogs, nullptr);
  ASSERT_EQ(catalogs->array.size(), 2u);  // sorted: b, c
  const json::Value& b = catalogs->array[0];
  EXPECT_EQ(b.Find("name")->string_value, "b");
  EXPECT_EQ(b.Find("version")->number_value, 1);
  EXPECT_EQ(b.Find("views")->number_value, 1);
  ASSERT_EQ(b.Find("patterns")->array.size(), 1u);
  EXPECT_EQ(b.Find("patterns")->array[0].Find("source")->string_value, "v");
  EXPECT_EQ(b.Find("patterns")->array[0].Find("adornment")->string_value,
            "bf");
  const json::Value& c = catalogs->array[1];
  EXPECT_EQ(c.Find("name")->string_value, "c");
  EXPECT_EQ(c.Find("views")->number_value, 2);
  EXPECT_TRUE(c.Find("patterns")->array.empty());

  std::string single = session_.HandleLine("CATALOG? b");
  Result<json::Value> one = json::Parse(single);
  ASSERT_TRUE(one.ok()) << single;
  EXPECT_EQ(one->Find("catalogs")->array.size(), 1u);
  EXPECT_EQ(session_.HandleLine("CATALOG? nope"),
            "ERR InvalidArgument: unknown catalog 'nope'\n");
}

TEST_F(PlanVerbTest, UnknownVerbGetsDistinctErrorAndCounter) {
  EXPECT_EQ(service_.metrics().unknown_verbs(), 0u);
  EXPECT_EQ(session_.HandleLine("CONTAIND? q q1 @c"),
            "ERR unknown-verb 'CONTAIND?' — try HELP\n");
  EXPECT_EQ(service_.metrics().unknown_verbs(), 1u);
  // Malformed requests to KNOWN verbs keep the InvalidArgument shape.
  std::string known = session_.HandleLine("CONTAINED? q");
  EXPECT_EQ(known.rfind("ERR InvalidArgument:", 0), 0u) << known;
  EXPECT_EQ(service_.metrics().unknown_verbs(), 1u);
  std::string dump = session_.HandleLine("METRICS");
  EXPECT_NE(dump.find("unknown_verbs_total 1"), std::string::npos) << dump;
}

TEST_F(PlanVerbTest, MetricsVerbCarriesPlanCacheCounters) {
  ASSERT_EQ(session_.HandleLine("PLAN? q @c").rfind("OK plan", 0), 0u);
  session_.HandleLine("PLAN? q @c");
  std::string dump = session_.HandleLine("METRICS");
  EXPECT_NE(dump.find("plan_requests_total 2"), std::string::npos) << dump;
  EXPECT_NE(dump.find("plan_cache_hits 1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("plan_cache_misses 1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("plan_cache_entries 1"), std::string::npos) << dump;
}

}  // namespace
}  // namespace relcont
