#include <gtest/gtest.h>

#include <algorithm>

#include "datalog/parser.h"
#include "datalog/unfold.h"
#include "eval/evaluator.h"
#include "relcont/version.h"
#include "relcont/workload.h"

namespace relcont {
namespace {

TEST(VersionTest, VersionStringMatchesComponents) {
  std::string expected = std::to_string(kVersionMajor) + "." +
                         std::to_string(kVersionMinor) + "." +
                         std::to_string(kVersionPatch);
  EXPECT_EQ(expected, kVersionString);
}

class ApiSurfaceTest : public ::testing::Test {
 protected:
  Interner interner_;
};

TEST_F(ApiSurfaceTest, ValueTotalOrderIsConsistent) {
  std::vector<Value> values = {
      Value::Number(Rational(2)), Value::Number(Rational(-1)),
      Value::Symbol(interner_.Intern("b")),
      Value::Symbol(interner_.Intern("a")), Value::Number(Rational(1, 2))};
  std::sort(values.begin(), values.end());
  // Numbers sort before symbols; numbers by value; symbols by id.
  EXPECT_TRUE(values[0].is_number());
  EXPECT_EQ(values[0].number(), Rational(-1));
  EXPECT_EQ(values[1].number(), Rational(1, 2));
  EXPECT_EQ(values[2].number(), Rational(2));
  EXPECT_TRUE(values[3].is_symbol());
  // Antisymmetry on a sample.
  EXPECT_FALSE(values[0] < values[0]);
}

TEST_F(ApiSurfaceTest, TermHashDistinguishesKinds) {
  SymbolId s = interner_.Intern("x");
  Term var = Term::Var(s);
  Term sym = Term::Symbol(s);
  Term num = Term::Number(Rational(0));
  EXPECT_NE(var, sym);
  EXPECT_NE(var.Hash(), sym.Hash());
  EXPECT_NE(sym, num);
  Term f1 = Term::Function(s, {var});
  Term f2 = Term::Function(s, {sym});
  EXPECT_NE(f1, f2);
  EXPECT_NE(f1.Hash(), f2.Hash());
  EXPECT_EQ(f1, Term::Function(s, {Term::Var(s)}));
}

TEST_F(ApiSurfaceTest, TermOrderingIsTotalOnMixedKinds) {
  SymbolId f = interner_.Intern("f");
  std::vector<Term> terms = {
      Term::Var(interner_.Intern("B")), Term::Var(interner_.Intern("A")),
      Term::Number(Rational(3)), Term::Symbol(interner_.Intern("sym")),
      Term::Function(f, {Term::Number(Rational(1))}),
      Term::Function(f, {Term::Number(Rational(0))})};
  std::sort(terms.begin(), terms.end());
  for (size_t i = 0; i + 1 < terms.size(); ++i) {
    EXPECT_FALSE(terms[i + 1] < terms[i]);
  }
}

TEST_F(ApiSurfaceTest, DatabaseToStringRoundTrips) {
  Database db = *ParseDatabase("p(1, red). q('two words').", &interner_);
  std::string text = db.ToString(interner_);
  Database again = *ParseDatabase(text, &interner_);
  EXPECT_TRUE(db.SameFactsAs(again));
}

TEST_F(ApiSurfaceTest, ViewSetToStringMarksCompleteSources) {
  Result<ViewSet> parsed = ParseViews("v(X) :- p(X).", &interner_);
  ASSERT_TRUE(parsed.ok());
  std::vector<ViewDefinition> defs = parsed->views();
  defs[0].complete = true;
  ViewSet views(std::move(defs));
  EXPECT_NE(views.ToString(interner_).find("% complete"), std::string::npos);
}

TEST_F(ApiSurfaceTest, MatchingTuplesPrunesByColumn) {
  Database db = *ParseDatabase(
      "e(a, b). e(a, c). e(b, c). e(c, d).", &interner_);
  SymbolId e = interner_.Lookup("e");
  Term a = Term::Symbol(interner_.Lookup("a"));
  const std::vector<int32_t>* hits = db.MatchingTuples(e, 0, a);
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->size(), 2u);
  // Out-of-range column: no index.
  EXPECT_EQ(db.MatchingTuples(e, 5, a), nullptr);
  // Unknown predicate: empty.
  const std::vector<int32_t>* none =
      db.MatchingTuples(interner_.Intern("ghost"), 0, a);
  ASSERT_NE(none, nullptr);
  EXPECT_TRUE(none->empty());
}

TEST_F(ApiSurfaceTest, EvaluatorReportsIterations) {
  Program tc = *ParseProgram(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- e(X, Z), tc(Z, Y).\n",
      &interner_);
  Database line = *ParseDatabase("e(1, 2). e(2, 3).", &interner_);
  Result<EvalResult> r = Evaluate(tc, line);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->iterations, 2);
  EXPECT_FALSE(r->depth_truncated);
}

TEST_F(ApiSurfaceTest, UnionQueryToStringListsAllDisjuncts) {
  UnionQuery u;
  u.disjuncts.push_back(*ParseRule("q(X) :- a(X).", &interner_));
  u.disjuncts.push_back(*ParseRule("q(X) :- b(X).", &interner_));
  std::string text = u.ToString(interner_);
  EXPECT_NE(text.find("a(X)"), std::string::npos);
  EXPECT_NE(text.find("b(X)"), std::string::npos);
  Result<Program> reparsed = ParseProgram(text, &interner_);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->rules.size(), 2u);
}

TEST_F(ApiSurfaceTest, WorkloadGeneratorsAreDeterministic) {
  RandomQueryOptions opts;
  opts.seed = 99;
  Rule a = RandomConjunctiveQuery(opts, "g", &interner_);
  Rule b = RandomConjunctiveQuery(opts, "g", &interner_);
  EXPECT_EQ(a, b);
  Database g1 = RandomGraph("e", 10, 20, 5, &interner_);
  Database g2 = RandomGraph("e", 10, 20, 5, &interner_);
  EXPECT_TRUE(g1.SameFactsAs(g2));
}

TEST_F(ApiSurfaceTest, ChainAndStarShapes) {
  Rule chain = ChainQuery(3, "g", "e", &interner_);
  EXPECT_EQ(chain.body.size(), 3u);
  EXPECT_EQ(chain.head.arity(), 2);
  EXPECT_TRUE(chain.CheckSafe().ok());
  Rule star = StarQuery(4, "g", "e", &interner_);
  EXPECT_EQ(star.body.size(), 4u);
  EXPECT_EQ(star.head.arity(), 1);
  // All rays share the center.
  for (const Atom& atom : star.body) {
    EXPECT_EQ(atom.args[0], star.head.args[0]);
  }
}

TEST_F(ApiSurfaceTest, UnfoldEmptyGoalYieldsEmptyUnion) {
  Program p = *ParseProgram("q(X) :- a(X).", &interner_);
  Result<UnionQuery> u =
      UnfoldToUnion(p, interner_.Intern("nothing"), &interner_);
  ASSERT_TRUE(u.ok());
  EXPECT_TRUE(u->disjuncts.empty());
}

TEST_F(ApiSurfaceTest, ComparisonOpHelpers) {
  EXPECT_EQ(FlipComparisonOp(ComparisonOp::kLt), ComparisonOp::kGt);
  EXPECT_EQ(FlipComparisonOp(ComparisonOp::kGe), ComparisonOp::kLe);
  EXPECT_EQ(FlipComparisonOp(ComparisonOp::kEq), ComparisonOp::kEq);
  EXPECT_EQ(NegateComparisonOp(ComparisonOp::kLt), ComparisonOp::kGe);
  EXPECT_EQ(NegateComparisonOp(ComparisonOp::kNe), ComparisonOp::kEq);
  EXPECT_STREQ(ComparisonOpToString(ComparisonOp::kLe), "<=");
}

TEST_F(ApiSurfaceTest, SemiIntervalClassifierOnAtoms) {
  Term x = Term::Var(interner_.Intern("X"));
  Term y = Term::Var(interner_.Intern("Y"));
  Term five = Term::Number(Rational(5));
  EXPECT_TRUE(Comparison(x, ComparisonOp::kLt, five).IsSemiInterval());
  EXPECT_TRUE(Comparison(five, ComparisonOp::kGe, x).IsSemiInterval());
  EXPECT_FALSE(Comparison(x, ComparisonOp::kLt, y).IsSemiInterval());
  EXPECT_FALSE(Comparison(x, ComparisonOp::kEq, five).IsSemiInterval());
  Term red = Term::Symbol(interner_.Intern("red"));
  EXPECT_FALSE(Comparison(x, ComparisonOp::kLt, red).IsSemiInterval());
}

TEST_F(ApiSurfaceTest, GroundComparisonEvaluation) {
  Term a = Term::Number(Rational(1));
  Term b = Term::Number(Rational(2));
  EXPECT_TRUE(Comparison(a, ComparisonOp::kLt, b).EvaluateGround());
  EXPECT_FALSE(Comparison(b, ComparisonOp::kLt, a).EvaluateGround());
  Term red = Term::Symbol(interner_.Intern("red"));
  Term blue = Term::Symbol(interner_.Intern("blue"));
  EXPECT_TRUE(Comparison(red, ComparisonOp::kNe, blue).EvaluateGround());
  EXPECT_FALSE(Comparison(red, ComparisonOp::kLt, blue).EvaluateGround());
  // Non-ground evaluates to false.
  Term x = Term::Var(interner_.Intern("X"));
  EXPECT_FALSE(Comparison(x, ComparisonOp::kEq, x).EvaluateGround());
}

}  // namespace
}  // namespace relcont
