// Tests for the TCP front end (obs::ObsServer): the line protocol over a
// socket, concurrent isolated sessions, HTTP endpoint routing, and the
// acceptance property that GET /metrics and the METRICS verb agree —
// they render the same MetricsSnapshot. Run under TSan in CI.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "gtest/gtest.h"
#include "obs/access_log.h"
#include "obs/server.h"
#include "relcont/pi2p_reduction.h"
#include "service/service.h"

namespace relcont {
namespace {

// ---------------------------------------------------------------------------
// Minimal blocking socket client.

class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  bool Send(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// One LF-terminated line (stripped of the terminator), "" on EOF.
  std::string ReadLine() {
    std::string line;
    char c;
    while (::recv(fd_, &c, 1, 0) == 1) {
      if (c == '\n') return line;
      line.push_back(c);
    }
    return line;
  }

  /// Everything until the peer closes.
  std::string ReadAll() {
    std::string out;
    char chunk[4096];
    ssize_t n;
    while ((n = ::recv(fd_, chunk, sizeof(chunk), 0)) > 0) {
      out.append(chunk, static_cast<size_t>(n));
    }
    return out;
  }

  /// Half-close: no more requests, but responses still flow back.
  void FinishSending() { ::shutdown(fd_, SHUT_WR); }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

struct HttpReply {
  std::string status_line;
  std::map<std::string, std::string> headers;
  std::string body;
};

HttpReply Get(int port, const std::string& target,
              const std::string& method = "GET") {
  Client client(port);
  EXPECT_TRUE(client.connected());
  client.Send(method + " " + target + " HTTP/1.1\r\nHost: test\r\n\r\n");
  std::string raw = client.ReadAll();
  HttpReply reply;
  size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    reply.status_line = raw;
    return reply;
  }
  reply.body = raw.substr(head_end + 4);
  std::istringstream head(raw.substr(0, head_end));
  std::getline(head, reply.status_line);
  if (!reply.status_line.empty() && reply.status_line.back() == '\r') {
    reply.status_line.pop_back();
  }
  std::string line;
  while (std::getline(head, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    size_t colon = line.find(": ");
    if (colon != std::string::npos) {
      reply.headers[line.substr(0, colon)] = line.substr(colon + 2);
    }
  }
  return reply;
}

// ---------------------------------------------------------------------------
// Fixture: a service with one catalog, served on an ephemeral port.

class ObsServerTest : public testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(service_
                    .catalogs()
                    .Register("cars",
                              "redcars(C, M, Y) :- cardesc(C, M, red, Y).\n"
                              "allcars(C, M, Col) :- cardesc(C, M, Col, Y).\n")
                    .ok());
    StartServer();
  }

  void StartServer(obs::AccessLog* access_log = nullptr) {
    obs::ServerOptions options;
    options.port = 0;  // ephemeral: tests never collide on a fixed port
    options.batch_threads = 2;
    options.access_log = access_log;
    StartServerWith(options);
  }

  void StartServerWith(obs::ServerOptions options) {
    options.port = 0;
    server_ = std::make_unique<obs::ObsServer>(&service_, options);
    Status status = server_->Start();
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_GT(server_->port(), 0);
    serve_thread_ = std::thread([this] { server_->Serve(); });
  }

  /// Stops the running server so a test can restart it with custom
  /// options via StartServerWith.
  void StopServer() {
    server_->Shutdown();
    if (serve_thread_.joinable()) serve_thread_.join();
  }

  void TearDown() override {
    server_->Shutdown();
    if (serve_thread_.joinable()) serve_thread_.join();
  }

  int port() const { return server_->port(); }

  /// Runs one CONTAINED? decision over a fresh protocol connection.
  std::string RunDecision(const std::string& q1_head = "q1",
                          const std::string& q2_head = "q2") {
    Client client(port());
    EXPECT_TRUE(client.connected());
    client.Send("DEFINE " + q1_head + " " + q1_head +
                "(C) :- cardesc(C, M, red, Y).\n");
    EXPECT_NE(client.ReadLine().find("OK"), std::string::npos);
    client.Send("DEFINE " + q2_head + " " + q2_head +
                "(C) :- cardesc(C, M, Col, Y).\n");
    EXPECT_NE(client.ReadLine().find("OK"), std::string::npos);
    client.Send("CONTAINED? " + q1_head + " " + q2_head + " @cars\n");
    return client.ReadLine();
  }

  ContainmentService service_;
  std::unique_ptr<obs::ObsServer> server_;
  std::thread serve_thread_;
};

TEST_F(ObsServerTest, SpeaksTheProtocolOverTcp) {
  std::string verdict = RunDecision();
  EXPECT_EQ(verdict.substr(0, 3), "YES") << verdict;
}

TEST_F(ObsServerTest, SessionsAreIsolatedAndConcurrent) {
  Client a(port());
  Client b(port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());
  // The same query name means different things in each session.
  a.Send("DEFINE q q(C) :- cardesc(C, M, red, Y).\n");
  b.Send("DEFINE q q(C) :- cardesc(C, M, Col, Y).\n");
  EXPECT_NE(a.ReadLine().find("OK"), std::string::npos);
  EXPECT_NE(b.ReadLine().find("OK"), std::string::npos);
  // Session B never defined q2; session A resolves both.
  a.Send("DEFINE q2 q2(C) :- cardesc(C, M, Col, Y).\n");
  EXPECT_NE(a.ReadLine().find("OK"), std::string::npos);
  b.Send("CONTAINED? q q2 @cars\n");
  EXPECT_EQ(b.ReadLine().substr(0, 3), "ERR");
  a.Send("CONTAINED? q q2 @cars\n");
  EXPECT_EQ(a.ReadLine().substr(0, 3), "YES");
}

TEST_F(ObsServerTest, ManyConcurrentClients) {
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::vector<std::string> verdicts(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, i, &verdicts] {
      verdicts[i] = RunDecision("qa" + std::to_string(i),
                                "qb" + std::to_string(i));
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& verdict : verdicts) {
    EXPECT_EQ(verdict.substr(0, 3), "YES") << verdict;
  }
}

TEST_F(ObsServerTest, HealthzAnswersOk) {
  HttpReply reply = Get(port(), "/healthz");
  EXPECT_EQ(reply.status_line, "HTTP/1.1 200 OK");
  EXPECT_EQ(reply.body, "ok\n");
}

TEST_F(ObsServerTest, BuildzReportsIdentityAsJson) {
  HttpReply reply = Get(port(), "/buildz");
  EXPECT_EQ(reply.status_line, "HTTP/1.1 200 OK");
  EXPECT_EQ(reply.headers["Content-Type"], "application/json");
  Result<json::Value> parsed = json::Parse(reply.body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << reply.body;
  EXPECT_TRUE(parsed->Find("version")->is_string());
  EXPECT_TRUE(parsed->Find("trace_compiled_in")->is_bool());
  EXPECT_GT(parsed->Find("cache_capacity")->number_value, 0);
  EXPECT_DOUBLE_EQ(parsed->Find("batch_threads")->number_value, 2);
}

TEST_F(ObsServerTest, UnknownPathIs404AndBadMethodIs405) {
  EXPECT_EQ(Get(port(), "/nope").status_line, "HTTP/1.1 404 Not Found");
  EXPECT_EQ(Get(port(), "/metrics", "POST").status_line,
            "HTTP/1.1 405 Method Not Allowed");
}

/// Satellite: between RequestDrain (SIGTERM) and listener close, /healthz
/// answers 503 "draining" so a load balancer can deregister the node, and
/// the flag is visible in the shared snapshot.
TEST_F(ObsServerTest, HealthzReportsDrainingDuringGrace) {
  StopServer();
  obs::ServerOptions options;
  options.batch_threads = 2;
  options.drain_grace_ms = 60000;  // TearDown's Shutdown preempts this
  StartServerWith(options);

  EXPECT_EQ(Get(port(), "/healthz").status_line, "HTTP/1.1 200 OK");
  server_->RequestDrain();
  HttpReply reply = Get(port(), "/healthz");
  EXPECT_EQ(reply.status_line, "HTTP/1.1 503 Service Unavailable");
  EXPECT_EQ(reply.body, "draining\n");
  EXPECT_NE(Get(port(), "/metrics").body.find("relcont_draining 1"),
            std::string::npos);
  EXPECT_NE(Get(port(), "/statusz").body.find("\"draining\":true"),
            std::string::npos);
}

/// After the grace period the watchdog closes the listener: Serve returns
/// and new connections are refused.
TEST_F(ObsServerTest, DrainClosesListenerAfterGrace) {
  StopServer();
  obs::ServerOptions options;
  options.batch_threads = 2;
  options.drain_grace_ms = 50;
  StartServerWith(options);
  int drained_port = port();
  server_->RequestDrain();
  serve_thread_.join();  // Serve unblocks once the watchdog shuts down
  Client late(drained_port);
  EXPECT_TRUE(!late.connected() || late.ReadAll().empty());
}

/// Satellite: parser hardening. An oversized request line or header block
/// is answered 431 and counted; a client that stalls mid-head is cut off
/// with 408 after --http-header-timeout and counted.
TEST_F(ObsServerTest, OversizedRequestHeadIs431AndCounted) {
  Client line_client(port());
  ASSERT_TRUE(line_client.connected());
  line_client.Send("GET /" + std::string(9000, 'a') + " HTTP/1.1\r\n\r\n");
  std::string raw = line_client.ReadAll();
  EXPECT_EQ(raw.substr(0, 12), "HTTP/1.1 431") << raw.substr(0, 64);

  Client header_client(port());
  ASSERT_TRUE(header_client.connected());
  std::string request = "GET /healthz HTTP/1.1\r\n";
  for (int i = 0; i < 16; ++i) {
    request += "X-Pad-" + std::to_string(i) + ": " +
               std::string(4000, 'b') + "\r\n";
  }
  request += "\r\n";
  header_client.Send(request);
  raw = header_client.ReadAll();
  EXPECT_EQ(raw.substr(0, 12), "HTTP/1.1 431") << raw.substr(0, 64);

  EXPECT_EQ(service_.metrics().Snapshot(service_.cache().Stats())
                .http_rejected_431,
            2u);
  EXPECT_NE(
      Get(port(), "/metrics")
          .body.find("relcont_http_rejected_total{code=\"431\"} 2"),
      std::string::npos);
}

TEST_F(ObsServerTest, SlowClientMidHeadIs408AndCounted) {
  StopServer();
  obs::ServerOptions options;
  options.batch_threads = 2;
  options.http_header_timeout_ms = 150;
  StartServerWith(options);

  Client client(port());
  ASSERT_TRUE(client.connected());
  client.Send("GET /healthz HTTP/1.1\r\nHost: test\r\n");  // no blank line
  std::string raw = client.ReadAll();  // server must cut us off
  EXPECT_EQ(raw.substr(0, 12), "HTTP/1.1 408") << raw.substr(0, 64);
  EXPECT_EQ(service_.metrics().Snapshot(service_.cache().Stats())
                .http_rejected_408,
            1u);
}

TEST_F(ObsServerTest, MalformedHttpIs400) {
  Client client(port());
  ASSERT_TRUE(client.connected());
  client.Send("GET badtarget HTTP/1.1\r\n\r\n");
  std::string raw = client.ReadAll();
  EXPECT_EQ(raw.substr(0, 17), "HTTP/1.1 400 Bad ");
}

/// The acceptance property: /metrics (Prometheus) and the METRICS verb
/// (text dump) are two renderings of one shared MetricsSnapshot, so every
/// counter they both expose must agree when the service is quiescent.
TEST_F(ObsServerTest, MetricsEndpointMatchesMetricsVerb) {
  // Generate traffic: two decisions (one MISS, one HIT via the cache).
  EXPECT_EQ(RunDecision().substr(0, 3), "YES");
  EXPECT_EQ(RunDecision().substr(0, 3), "YES");

  // METRICS over a protocol connection (half-close ends the session).
  Client verb(port());
  ASSERT_TRUE(verb.connected());
  verb.Send("METRICS\n");
  verb.FinishSending();
  std::string text = verb.ReadAll();

  // /metrics over HTTP.
  HttpReply reply = Get(port(), "/metrics");
  EXPECT_EQ(reply.status_line, "HTTP/1.1 200 OK");
  EXPECT_EQ(reply.headers["Content-Type"],
            "text/plain; version=0.0.4; charset=utf-8");

  auto extract = [](const std::string& body, const std::string& line_key) {
    size_t pos = body.find(line_key);
    if (pos == std::string::npos) return std::string("<absent>");
    pos += line_key.size();
    size_t end = body.find('\n', pos);
    return body.substr(pos, end - pos);
  };
  // (METRICS key, Prometheus key) pairs for every shared counter.
  const std::pair<const char*, const char*> kPairs[] = {
      {"\nrequests_total ", "\nrelcont_requests_total "},
      {"\nerrors_total ", "\nrelcont_errors_total "},
      {"\nrequest_cache_hits ", "\nrelcont_request_cache_hits_total "},
      {"\ncache_hits ", "\nrelcont_cache_hits_total "},
      {"\ncache_misses ", "\nrelcont_cache_misses_total "},
      {"\ncache_entries ", "\nrelcont_cache_entries "},
      {"\nlatency_us_count ", "\nrelcont_request_latency_microseconds_count "},
      {"\nlatency_us_sum ", "\nrelcont_request_latency_microseconds_sum "},
      {"decisions_by_regime{section3} ",
       "relcont_decisions_total{regime=\"section3\"} "},
      {"\nplan_requests_total ", "\nrelcont_plan_requests_total "},
      {"\nrewrite_requests_total ", "\nrelcont_rewrite_requests_total "},
      {"\nplan_errors_total ", "\nrelcont_plan_errors_total "},
      {"\nunknown_verbs_total ", "\nrelcont_unknown_verb_total "},
      {"\ndense_order_propagations_total ",
       "\nrelcont_dense_order_propagations_total "},
      {"\ndense_order_pruned_branches_total ",
       "\nrelcont_dense_order_pruned_branches_total "},
      {"\ndense_order_bound_hits_total ",
       "\nrelcont_dense_order_bound_hits_total "},
      {"\nplan_cache_hits ", "\nrelcont_plan_cache_hits_total "},
      {"\nplan_cache_misses ", "\nrelcont_plan_cache_misses_total "},
      {"\nplan_cache_invalidated ",
       "\nrelcont_plan_cache_invalidated_total "},
      {"\nplan_cache_entries ", "\nrelcont_plan_cache_entries "},
      {"\ninflight_requests ", "\nrelcont_inflight_requests "},
      {"\nbatch_queue_depth ", "\nrelcont_batch_queue_depth "},
      {"\ndraining ", "\nrelcont_draining "},
      {"\nhttp_rejected_431_total ",
       "relcont_http_rejected_total{code=\"431\"} "},
      {"\nhttp_rejected_408_total ",
       "relcont_http_rejected_total{code=\"408\"} "},
      // The windowed series agree too: the 60s window is wide enough that
      // both scrapes still cover the traffic generated above.
      {"window_latency_requests{verb=\"contained\",regime=\"all\","
       "window=\"60s\"} ",
       "relcont_window_latency_requests{verb=\"contained\",regime=\"all\","
       "window=\"60s\"} "},
      {"window_latency_us{verb=\"contained\",regime=\"all\","
       "window=\"60s\",q=\"p99\"} ",
       "relcont_window_latency_microseconds{verb=\"contained\","
       "regime=\"all\",window=\"60s\",quantile=\"p99\"} "},
  };
  for (const auto& [text_key, prom_key] : kPairs) {
    EXPECT_EQ(extract(text, text_key), extract(reply.body, prom_key))
        << "counter mismatch between METRICS '" << text_key
        << "' and /metrics '" << prom_key << "'";
  }
  // Sanity: the traffic we generated is visible, not just zero == zero.
  EXPECT_EQ(extract(text, "\nrequests_total "), "2");
  EXPECT_EQ(extract(text,
                    "window_latency_requests{verb=\"contained\","
                    "regime=\"all\",window=\"60s\"} "),
            "2");
  EXPECT_NE(extract(reply.body, "\nrelcont_cache_hits_total "), "0");
  EXPECT_NE(reply.body.find("relcont_build_info{version=\""),
            std::string::npos);
}

/// The same no-drift property for the third surface: the STATUSZ protocol
/// verb and GET /statusz render the same MetricsSnapshot as JSON, so over
/// a live socket their stable fields must agree.
TEST_F(ObsServerTest, StatuszEndpointMatchesStatuszVerb) {
  EXPECT_EQ(RunDecision().substr(0, 3), "YES");
  EXPECT_EQ(RunDecision().substr(0, 3), "YES");

  Client verb(port());
  ASSERT_TRUE(verb.connected());
  verb.Send("STATUSZ\n");
  verb.FinishSending();
  std::string verb_json = verb.ReadAll();

  HttpReply reply = Get(port(), "/statusz");
  EXPECT_EQ(reply.status_line, "HTTP/1.1 200 OK");
  EXPECT_EQ(reply.headers["Content-Type"], "application/json");

  Result<json::Value> from_verb = json::Parse(verb_json);
  ASSERT_TRUE(from_verb.ok()) << verb_json;
  Result<json::Value> from_http = json::Parse(reply.body);
  ASSERT_TRUE(from_http.ok()) << reply.body;

  // Uptime differs between the two snapshots; every cumulative field must
  // not. Compare the request totals, cache counters, and the windowed
  // latency rows (the 60s window spans both scrape instants).
  auto requests = [](const json::Value& v, const char* key) {
    return v.Find("requests")->Find(key)->number_value;
  };
  for (const char* key : {"total", "errors", "cache_hits", "plan_requests",
                          "unknown_verbs"}) {
    EXPECT_DOUBLE_EQ(requests(*from_verb, key), requests(*from_http, key))
        << key;
  }
  EXPECT_DOUBLE_EQ(requests(*from_verb, "total"), 2);
  EXPECT_DOUBLE_EQ(from_verb->Find("cache")->Find("hits")->number_value,
                   from_http->Find("cache")->Find("hits")->number_value);
  EXPECT_DOUBLE_EQ(from_verb->Find("cache")->Find("hit_rate")->number_value,
                   from_http->Find("cache")->Find("hit_rate")->number_value);

  auto window_row = [](const json::Value& v, const std::string& verb_name,
                       const std::string& regime, int window_secs)
      -> const json::Value* {
    for (const json::Value& row :
         v.Find("windows")->Find("latency")->array) {
      if (row.Find("verb")->string_value == verb_name &&
          row.Find("regime")->string_value == regime &&
          row.Find("window_secs")->number_value == window_secs) {
        return &row;
      }
    }
    return nullptr;
  };
  const json::Value* verb_row = window_row(*from_verb, "contained", "all", 60);
  const json::Value* http_row = window_row(*from_http, "contained", "all", 60);
  ASSERT_NE(verb_row, nullptr) << verb_json;
  ASSERT_NE(http_row, nullptr) << reply.body;
  EXPECT_DOUBLE_EQ(verb_row->Find("count")->number_value, 2);
  for (const char* key : {"count", "p50_us", "p90_us", "p99_us", "max_us"}) {
    EXPECT_DOUBLE_EQ(verb_row->Find(key)->number_value,
                     http_row->Find(key)->number_value)
        << key;
  }
}

/// Acceptance criterion for the plan service: PLAN? and REWRITE? round-trip
/// over a live TCP socket, a warm PLAN? is a cache HIT, and the planner's
/// counters show up in both METRICS and /metrics.
TEST_F(ObsServerTest, PlanAndRewriteRoundTripOverTcp) {
  Client client(port());
  ASSERT_TRUE(client.connected());
  client.Send("DEFINE pq pq(C) :- cardesc(C, M, red, Y).\n");
  EXPECT_NE(client.ReadLine().find("OK"), std::string::npos);
  client.Send("PLAN? pq @cars\n");
  std::string header = client.ReadLine();
  ASSERT_EQ(header.rfind("OK plan catalog=cars v1 kind=ucq rules=", 0), 0u)
      << header;
  EXPECT_NE(header.find(" MISS "), std::string::npos);
  // The plan body: rules=N executable rules, one per line, over the
  // sources.
  size_t rules_pos = header.find("rules=") + 6;
  int num_rules = std::atoi(header.c_str() + rules_pos);
  ASSERT_GT(num_rules, 0) << header;
  std::vector<std::string> plan_lines;
  for (int i = 0; i < num_rules; ++i) {
    plan_lines.push_back(client.ReadLine());
    EXPECT_EQ(plan_lines.back().rfind("pq(", 0), 0u) << plan_lines.back();
    EXPECT_TRUE(plan_lines.back().find("redcars(") != std::string::npos ||
                plan_lines.back().find("allcars(") != std::string::npos)
        << plan_lines.back();
  }

  client.Send("PLAN? pq @cars\n");
  std::string warm = client.ReadLine();
  EXPECT_NE(warm.find(" HIT "), std::string::npos) << warm;
  for (int i = 0; i < num_rules; ++i) {
    EXPECT_EQ(client.ReadLine(), plan_lines[static_cast<size_t>(i)]);
  }

  client.Send("DEFINE pq2 pq2(C) :- cardesc(C, M, Col, Y).\n");
  EXPECT_NE(client.ReadLine().find("OK"), std::string::npos);
  client.Send("REWRITE? pq pq2 @cars\n");
  std::string rewrite = client.ReadLine();
  EXPECT_EQ(rewrite.rfind("YES plan MISS ", 0), 0u) << rewrite;

  // The planner traffic is visible in both renderings of the snapshot.
  Client verb(port());
  ASSERT_TRUE(verb.connected());
  verb.Send("METRICS\n");
  verb.FinishSending();
  std::string text = verb.ReadAll();
  EXPECT_NE(text.find("plan_requests_total 2"), std::string::npos) << text;
  EXPECT_NE(text.find("rewrite_requests_total 1"), std::string::npos);
  EXPECT_NE(text.find("plan_cache_hits 1"), std::string::npos);
  HttpReply metrics = Get(port(), "/metrics");
  EXPECT_NE(metrics.body.find("relcont_plan_requests_total 2"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("relcont_rewrite_requests_total 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("relcont_plan_cache_hits_total 1"),
            std::string::npos);
}

/// Satellite: CATALOG? introspection over a live socket answers one line of
/// JSON that parses and reflects names, versions, view counts, and
/// adornments.
TEST_F(ObsServerTest, CatalogIntrospectionOverTcp) {
  ASSERT_TRUE(service_.catalogs()
                  .Register("paths", "v0(X, Y) :- e(X, Y).\n",
                            {{"v0", "bf"}})
                  .ok());
  Client client(port());
  ASSERT_TRUE(client.connected());
  client.Send("CATALOG?\n");
  std::string line = client.ReadLine();
  Result<json::Value> parsed = json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << line;
  const json::Value* catalogs = parsed->Find("catalogs");
  ASSERT_NE(catalogs, nullptr);
  ASSERT_EQ(catalogs->array.size(), 2u);  // sorted: cars, paths
  EXPECT_EQ(catalogs->array[0].Find("name")->string_value, "cars");
  EXPECT_EQ(catalogs->array[0].Find("views")->number_value, 2);
  EXPECT_TRUE(catalogs->array[0].Find("patterns")->array.empty());
  const json::Value& paths = catalogs->array[1];
  EXPECT_EQ(paths.Find("name")->string_value, "paths");
  EXPECT_EQ(paths.Find("version")->number_value, 1);
  ASSERT_EQ(paths.Find("patterns")->array.size(), 1u);
  EXPECT_EQ(paths.Find("patterns")->array[0].Find("adornment")->string_value,
            "bf");

  client.Send("CATALOG? paths\n");
  std::string single = client.ReadLine();
  Result<json::Value> one = json::Parse(single);
  ASSERT_TRUE(one.ok()) << single;
  EXPECT_EQ(one->Find("catalogs")->array.size(), 1u);
}

/// Satellite: a typo'd verb over the wire gets the distinct unknown-verb
/// error line, and the counter lands in the Prometheus exposition under
/// the exact name relcont_unknown_verb_total.
TEST_F(ObsServerTest, UnknownVerbOverTcpIsCountedAndDistinct) {
  Client client(port());
  ASSERT_TRUE(client.connected());
  client.Send("PLANE? q @cars\n");
  EXPECT_EQ(client.ReadLine(), "ERR unknown-verb 'PLANE?' — try HELP");
  HttpReply metrics = Get(port(), "/metrics");
  EXPECT_NE(metrics.body.find("relcont_unknown_verb_total 1"),
            std::string::npos);
}

/// Acceptance criterion: a PLAN? past its deadline answers a bound error —
/// never a wrong (truncated) plan. Uses the same hard QBF catalog as the
/// CONTAINED? deadline test below.
TEST_F(ObsServerTest, PlanPastDeadlineAnswersBoundReached) {
  Interner gen;
  QbfFormula f = RandomQbf(/*num_exists=*/2, /*num_forall=*/8,
                           /*num_clauses=*/16, /*seed=*/11);
  Result<Pi2pInstance> inst = BuildPi2pReduction(f, &gen);
  ASSERT_TRUE(inst.ok()) << inst.status().ToString();
  std::string views_text;
  for (const ViewDefinition& v : inst->views.views()) {
    views_text += v.rule.ToString(gen);
    views_text += '\n';
  }
  ASSERT_TRUE(service_.catalogs().Register("qbf", views_text).ok());
  std::string query_text;
  for (const Rule& r : inst->q1.program.rules) {
    if (!query_text.empty()) query_text += ' ';
    query_text += r.ToString(gen);
  }
  Client client(port());
  ASSERT_TRUE(client.connected());
  client.Send("DEFINE hq " + query_text + "\n");
  EXPECT_NE(client.ReadLine().find("OK"), std::string::npos);
  client.Send("PLAN? hq @qbf timeout_ms=1\n");
  std::string reply = client.ReadLine();
  EXPECT_EQ(reply.substr(0, 3), "ERR") << reply;
  EXPECT_NE(reply.find("bound reached"), std::string::npos) << reply;
  // Nothing partial was cached: a retry with headroom must rebuild.
  EXPECT_EQ(service_.planner().cache().Stats().entries, 0u);
}

/// Acceptance criterion for deadline-aware serving: a request that carries
/// timeout_ms=1 against a Π₂ᵖ-hard pair (2^8 plan disjuncts, tens of
/// milliseconds of serial scanning) comes back as a well-formed bound
/// error well before the decision could have finished — and the trip is
/// visible in the Prometheus exposition.
TEST_F(ObsServerTest, ExpiredDeadlineAnswersBoundReachedFast) {
  // Render the hard pair through the text API.
  Interner gen;
  QbfFormula f = RandomQbf(/*num_exists=*/2, /*num_forall=*/8,
                           /*num_clauses=*/16, /*seed=*/11);
  Result<Pi2pInstance> inst = BuildPi2pReduction(f, &gen);
  ASSERT_TRUE(inst.ok()) << inst.status().ToString();
  std::string views_text;
  for (const ViewDefinition& v : inst->views.views()) {
    views_text += v.rule.ToString(gen);
    views_text += '\n';
  }
  ASSERT_TRUE(service_.catalogs().Register("qbf", views_text).ok());
  auto render = [&gen](const GoalQuery& q) {
    std::string text;  // multi-rule DEFINE: rules joined on one line
    for (const Rule& r : q.program.rules) {
      if (!text.empty()) text += ' ';
      text += r.ToString(gen);
    }
    return text;
  };

  Client client(port());
  ASSERT_TRUE(client.connected());
  client.Send("DEFINE hq1 " + render(inst->q2) + "\n");
  EXPECT_NE(client.ReadLine().find("OK"), std::string::npos);
  client.Send("DEFINE hq2 " + render(inst->q1) + "\n");
  EXPECT_NE(client.ReadLine().find("OK"), std::string::npos);

  auto start = std::chrono::steady_clock::now();
  client.Send("CONTAINED? hq1 hq2 @qbf timeout_ms=1 workers=4\n");
  std::string reply = client.ReadLine();
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();

  EXPECT_EQ(reply.substr(0, 3), "ERR") << reply;
  EXPECT_NE(reply.find("bound reached"), std::string::npos) << reply;
  EXPECT_NE(reply.find("deadline exceeded"), std::string::npos) << reply;
  // The ISSUE budget was 50 ms on an idle machine (~17 ms typical); under a
  // parallel ctest run the scheduler can add tens of ms, so allow headroom
  // while still ruling out a run-to-completion answer. Sanitizer builds get
  // more slack — instrumented steps inflate the stride between deadline
  // checks.
  int64_t bound_ms = 150;
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  bound_ms = 500;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  bound_ms = 500;
#endif
#endif
  EXPECT_LT(elapsed_ms, bound_ms) << reply;

  // The trip shows up in the exposition, and the helper pool is quiescent.
  HttpReply metrics = Get(port(), "/metrics");
  EXPECT_EQ(metrics.status_line, "HTTP/1.1 200 OK");
  EXPECT_NE(metrics.body.find("relcont_deadline_exceeded_total 1"),
            std::string::npos);
  EXPECT_EQ(service_.metrics().tasks_spawned(),
            service_.metrics().tasks_completed());
}

/// Parses the request id out of an "ERR [id=N] ..." line (0 on mismatch).
uint64_t ParseErrorRequestId(const std::string& line) {
  size_t open = line.find("[id=");
  if (open == std::string::npos) return 0;
  return std::strtoull(line.c_str() + open + 4, nullptr, 10);
}

/// Acceptance criterion: the REQUESTZ verb and GET /requestz render the
/// flight recorder through the same code path, so over live sockets the
/// two surfaces must agree byte for byte — list and per-id drill-down.
TEST_F(ObsServerTest, RequestzVerbMatchesRequestzEndpoint) {
  // Traffic: two healthy decisions (id 1 is the head sample, retained),
  // then one service-level error (unknown catalog), always retained.
  EXPECT_EQ(RunDecision().substr(0, 3), "YES");
  EXPECT_EQ(RunDecision().substr(0, 3), "YES");
  Client bad(port());
  ASSERT_TRUE(bad.connected());
  bad.Send("DEFINE qe qe(C) :- cardesc(C, M, red, Y).\n");
  EXPECT_NE(bad.ReadLine().find("OK"), std::string::npos);
  bad.Send("CONTAINED? qe qe @nosuch\n");
  std::string err = bad.ReadLine();
  EXPECT_EQ(err.rfind("ERR [id=", 0), 0u) << err;
  uint64_t err_id = ParseErrorRequestId(err);
  ASSERT_GT(err_id, 0u) << err;

  // REQUESTZ mints no id and records no event, so the two scrapes see an
  // identical recorder and must render identical bytes.
  Client verb(port());
  ASSERT_TRUE(verb.connected());
  verb.Send("REQUESTZ\n");
  verb.FinishSending();
  std::string verb_list = verb.ReadAll();
  HttpReply http_list = Get(port(), "/requestz");
  EXPECT_EQ(http_list.status_line, "HTTP/1.1 200 OK");
  EXPECT_EQ(http_list.headers["Content-Type"], "application/json");
  EXPECT_EQ(verb_list, http_list.body);

  Result<json::Value> list = json::Parse(verb_list);
  ASSERT_TRUE(list.ok()) << verb_list;
  const json::Value* flight = list->Find("flight");
  ASSERT_NE(flight, nullptr);
  EXPECT_DOUBLE_EQ(flight->Find("recorded_total")->number_value, 3);
  EXPECT_GE(flight->Find("retained_total")->number_value, 2);
  EXPECT_GT(flight->Find("arena_bytes")->number_value, 0);
  EXPECT_EQ(list->Find("events")->array.size(), 3u);

  // The error request is resident: drill down on both surfaces.
  Client drill(port());
  ASSERT_TRUE(drill.connected());
  drill.Send("REQUESTZ " + std::to_string(err_id) + "\n");
  drill.FinishSending();
  std::string verb_event = drill.ReadAll();
  HttpReply http_event =
      Get(port(), "/requestz?id=" + std::to_string(err_id));
  EXPECT_EQ(http_event.status_line, "HTTP/1.1 200 OK");
  EXPECT_EQ(verb_event, http_event.body);

  Result<json::Value> entry = json::Parse(verb_event);
  ASSERT_TRUE(entry.ok()) << verb_event;
  const json::Value* event = entry->Find("event");
  ASSERT_NE(event, nullptr);
  EXPECT_DOUBLE_EQ(event->Find("request_id")->number_value,
                   static_cast<double>(err_id));
  EXPECT_EQ(event->Find("verb")->string_value, "contained");
  EXPECT_EQ(event->Find("catalog")->string_value, "nosuch");
  EXPECT_TRUE(event->Find("error")->bool_value);

  // Misses answer in kind on both surfaces.
  Client missing(port());
  ASSERT_TRUE(missing.connected());
  missing.Send("REQUESTZ 999999\n");
  EXPECT_EQ(missing.ReadLine(),
            "ERR InvalidArgument: request id 999999 not retained");
  EXPECT_EQ(Get(port(), "/requestz?id=999999").status_line,
            "HTTP/1.1 404 Not Found");
}

/// Acceptance criterion: a deliberately slow request (1 ms deadline on a
/// hard catalog, so the budget trips) is tail-retained with its bound
/// site, and its full span tree is retrievable by request id.
TEST_F(ObsServerTest, BoundReachedRequestIsRetainedWithSpanTree) {
  StopServer();
  ServiceConfig config;
  config.trace_requests = true;
  ContainmentService traced_service(config);
  Interner gen;
  QbfFormula f = RandomQbf(/*num_exists=*/2, /*num_forall=*/8,
                           /*num_clauses=*/16, /*seed=*/11);
  Result<Pi2pInstance> inst = BuildPi2pReduction(f, &gen);
  ASSERT_TRUE(inst.ok()) << inst.status().ToString();
  std::string views_text;
  for (const ViewDefinition& v : inst->views.views()) {
    views_text += v.rule.ToString(gen);
    views_text += '\n';
  }
  ASSERT_TRUE(traced_service.catalogs().Register("qbf", views_text).ok());
  auto render = [&gen](const GoalQuery& q) {
    std::string text;
    for (const Rule& r : q.program.rules) {
      if (!text.empty()) text += ' ';
      text += r.ToString(gen);
    }
    return text;
  };
  obs::ServerOptions options;
  options.port = 0;
  options.batch_threads = 2;
  obs::ObsServer server(&traced_service, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serve([&server] { server.Serve(); });

  Client client(server.port());
  ASSERT_TRUE(client.connected());
  client.Send("DEFINE hq1 " + render(inst->q2) + "\n");
  EXPECT_NE(client.ReadLine().find("OK"), std::string::npos);
  client.Send("DEFINE hq2 " + render(inst->q1) + "\n");
  EXPECT_NE(client.ReadLine().find("OK"), std::string::npos);
  client.Send("CONTAINED? hq1 hq2 @qbf timeout_ms=1\n");
  std::string reply = client.ReadLine();
  EXPECT_EQ(reply.rfind("ERR [id=", 0), 0u) << reply;
  EXPECT_NE(reply.find("bound reached"), std::string::npos) << reply;
  uint64_t id = ParseErrorRequestId(reply);
  ASSERT_GT(id, 0u) << reply;

  client.Send("REQUESTZ " + std::to_string(id) + "\n");
  client.FinishSending();
  std::string rendered = client.ReadAll();
  Result<json::Value> entry = json::Parse(rendered);
  ASSERT_TRUE(entry.ok()) << rendered;
  const json::Value* event = entry->Find("event");
  ASSERT_NE(event, nullptr);
  EXPECT_TRUE(event->Find("error")->bool_value);
  EXPECT_TRUE(event->Find("bound")->bool_value);
  EXPECT_FALSE(event->Find("bound_site")->string_value.empty()) << rendered;
  if (trace::kCompiledIn) {
    EXPECT_TRUE(event->Find("traced")->bool_value);
    EXPECT_FALSE(entry->Find("trace_text")->string_value.empty());
    ASSERT_NE(entry->Find("chrome_trace"), nullptr);
    EXPECT_TRUE(entry->Find("chrome_trace")->is_object()) << rendered;
    EXPECT_FALSE(event->Find("phases")->array.empty()) << rendered;
  }

  server.Shutdown();
  serve.join();
  StartServer();  // TearDown needs a live fixture server
}

TEST_F(ObsServerTest, AccessLogRecordsDecisionsAcrossSessions) {
  // Rebuild the server with an access log attached.
  server_->Shutdown();
  serve_thread_.join();

  std::string path = testing::TempDir() + "/obs_server_access.jsonl";
  std::remove(path.c_str());
  obs::AccessLogOptions log_options;
  log_options.path = path;
  auto log = obs::AccessLog::Open(log_options);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  StartServer(log->get());

  EXPECT_EQ(RunDecision("qa1", "qb1").substr(0, 3), "YES");
  EXPECT_EQ(RunDecision("qa2", "qb2").substr(0, 3), "YES");

  server_->Shutdown();
  serve_thread_.join();
  log->reset();  // flush + close before reading

  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  double last_id = 0;
  for (const std::string& event_line : lines) {
    Result<json::Value> event = json::Parse(event_line);
    ASSERT_TRUE(event.ok()) << event_line;
    EXPECT_GT(event->Find("id")->number_value, last_id);  // monotonic ids
    last_id = event->Find("id")->number_value;
    EXPECT_EQ(event->Find("catalog")->string_value, "cars");
    EXPECT_GT(event->Find("catalog_version")->number_value, 0);
    EXPECT_EQ(event->Find("regime")->string_value, "section3");
    EXPECT_TRUE(event->Find("contained")->bool_value);
    EXPECT_EQ(event->Find("error")->string_value, "");
  }

  // Restart a plain server so TearDown has something to stop.
  StartServer();
}

}  // namespace
}  // namespace relcont
