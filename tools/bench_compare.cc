// Perf regression gate: diffs two relcont-bench-v1 JSON files (see
// bench/harness.h for the schema) metric by metric and fails when the
// current run is worse than the baseline by more than a threshold.
//
//   bench_compare baseline.json current.json [--threshold FRAC]
//
// A metric regresses when it moved against its recorded direction
// (`higher_is_better`) by more than FRAC (default 0.25, i.e. 25%): with
// allowed factor f = 1 + FRAC, a higher-is-better metric regresses when
// current < baseline / f, a lower-is-better one when current > baseline
// * f. Metrics present in the baseline but missing from the current run
// fail too — a benchmark that silently stops reporting is not a pass.
// New metrics (current-only) are listed but never fail the gate.
//
// Distribution metrics may carry p50/p95/p99 order statistics; when both
// files record a p99 it is gated with the same direction and threshold
// (tail regressions hide inside a healthy median). Files without
// percentiles — everything written before the fields existed — compare
// exactly as before; when the current run carries a p99 the baseline
// lacks, a non-fatal stderr warning asks for a baseline refresh so the
// tail gate doesn't stay silently disabled.
//
// Exit codes: 0 = no regression, 1 = regression (or missing metric),
// 2 = unreadable/malformed input.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"

namespace relcont {
namespace {

struct MetricRow {
  double value = 0;
  std::string unit;
  bool higher_is_better = true;
  /// Optional tail statistic (bench/harness.h emits p50/p95/p99 for
  /// distribution metrics). Gated only when both files carry it, so
  /// pre-percentile baselines keep comparing cleanly.
  bool has_p99 = false;
  double p99 = 0;
};

struct BenchFile {
  std::string name;
  std::map<std::string, MetricRow> metrics;  // ordered for stable output
};

int Usage() {
  std::fprintf(stderr,
               "usage: bench_compare <baseline.json> <current.json> "
               "[--threshold FRAC]\n");
  return 2;
}

bool LoadBenchFile(const char* path, BenchFile* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path);
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  Result<json::Value> parsed = json::Parse(text.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path,
                 parsed.status().ToString().c_str());
    return false;
  }
  const json::Value& root = *parsed;
  const json::Value* schema = root.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string_value != "relcont-bench-v1") {
    std::fprintf(stderr,
                 "bench_compare: %s: not a relcont-bench-v1 file\n", path);
    return false;
  }
  if (const json::Value* name = root.Find("name");
      name != nullptr && name->is_string()) {
    out->name = name->string_value;
  }
  const json::Value* metrics = root.Find("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    std::fprintf(stderr, "bench_compare: %s: missing metrics array\n", path);
    return false;
  }
  for (const json::Value& entry : metrics->array) {
    const json::Value* name = entry.Find("name");
    const json::Value* value = entry.Find("value");
    if (name == nullptr || !name->is_string() || value == nullptr ||
        !value->is_number()) {
      std::fprintf(stderr,
                   "bench_compare: %s: metric needs a name and a numeric "
                   "value\n", path);
      return false;
    }
    MetricRow row;
    row.value = value->number_value;
    if (const json::Value* unit = entry.Find("unit");
        unit != nullptr && unit->is_string()) {
      row.unit = unit->string_value;
    }
    if (const json::Value* dir = entry.Find("higher_is_better");
        dir != nullptr && dir->is_bool()) {
      row.higher_is_better = dir->bool_value;
    }
    if (const json::Value* p99 = entry.Find("p99");
        p99 != nullptr && p99->is_number()) {
      row.has_p99 = true;
      row.p99 = p99->number_value;
    }
    out->metrics[name->string_value] = std::move(row);
  }
  return true;
}

int Main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  double threshold = 0.25;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      char* end = nullptr;
      threshold = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || threshold < 0) return Usage();
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (current_path == nullptr) {
      current_path = argv[i];
    } else {
      return Usage();
    }
  }
  if (baseline_path == nullptr || current_path == nullptr) return Usage();

  BenchFile baseline;
  BenchFile current;
  if (!LoadBenchFile(baseline_path, &baseline) ||
      !LoadBenchFile(current_path, &current)) {
    return 2;
  }
  if (!baseline.name.empty() && !current.name.empty() &&
      baseline.name != current.name) {
    std::fprintf(stderr,
                 "bench_compare: comparing different benchmarks "
                 "('%s' vs '%s')\n",
                 baseline.name.c_str(), current.name.c_str());
    return 2;
  }

  const double allowed_factor = 1.0 + threshold;
  std::printf("bench_compare: %s, allowed slack %.0f%%\n",
              current.name.empty() ? "(unnamed)" : current.name.c_str(),
              threshold * 100.0);
  std::printf("  %-32s %14s %14s %9s  %s\n", "metric", "baseline",
              "current", "ratio", "verdict");

  int regressions = 0;
  for (const auto& [name, base] : baseline.metrics) {
    auto it = current.metrics.find(name);
    if (it == current.metrics.end()) {
      std::printf("  %-32s %14.6g %14s %9s  MISSING\n", name.c_str(),
                  base.value, "-", "-");
      ++regressions;
      continue;
    }
    const MetricRow& cur = it->second;
    // Non-positive baselines make the ratio meaningless (a 0 ns timing,
    // a negative overhead-%) — report but never gate on them.
    if (base.value <= 0) {
      std::printf("  %-32s %14.6g %14.6g %9s  skipped\n", name.c_str(),
                  base.value, cur.value, "-");
      continue;
    }
    double ratio = cur.value / base.value;
    bool regressed = base.higher_is_better
                         ? cur.value * allowed_factor < base.value
                         : cur.value > base.value * allowed_factor;
    std::printf("  %-32s %14.6g %14.6g %8.3fx  %s\n", name.c_str(),
                base.value, cur.value, ratio,
                regressed ? "REGRESSED" : "ok");
    if (regressed) ++regressions;
    // Tail gate: same direction and threshold applied to p99, but only
    // when both files recorded it (older files carry no percentiles).
    if (base.has_p99 && cur.has_p99 && base.p99 > 0) {
      bool p99_regressed = base.higher_is_better
                               ? cur.p99 * allowed_factor < base.p99
                               : cur.p99 > base.p99 * allowed_factor;
      std::printf("  %-32s %14.6g %14.6g %8.3fx  %s\n",
                  (name + " (p99)").c_str(), base.p99, cur.p99,
                  cur.p99 / base.p99, p99_regressed ? "REGRESSED" : "ok");
      if (p99_regressed) ++regressions;
    } else if (cur.has_p99 && !base.has_p99) {
      // The current run records a tail the baseline predates; the p99 gate
      // is silently off until the baseline is regenerated. Warn (non-fatal)
      // so stale baselines get refreshed instead of hiding tail drift.
      std::fprintf(stderr,
                   "bench_compare: warning: %s has p99 in the current run "
                   "but not the baseline; regenerate the baseline to gate "
                   "the tail\n",
                   name.c_str());
    }
  }
  for (const auto& [name, cur] : current.metrics) {
    if (baseline.metrics.find(name) == baseline.metrics.end()) {
      std::printf("  %-32s %14s %14.6g %9s  new\n", name.c_str(), "-",
                  cur.value, "-");
    }
  }

  if (regressions > 0) {
    std::printf("bench_compare: %d regression%s beyond the %.0f%% "
                "threshold\n",
                regressions, regressions == 1 ? "" : "s",
                threshold * 100.0);
    return 1;
  }
  std::printf("bench_compare: no regressions\n");
  return 0;
}

}  // namespace
}  // namespace relcont

int main(int argc, char** argv) { return relcont::Main(argc, argv); }
