// metrics_lint — keeps the three telemetry surfaces and the docs honest.
//
// Builds one synthetic MetricsSnapshot with every field populated (all
// vectors non-empty, every counter nonzero, draining on), renders it
// through all three surfaces — METRICS text, Prometheus /metrics, and the
// /statusz JSON — and then checks:
//
//   1. every METRICS series name maps to a Prometheus series that is
//      actually present in the /metrics rendering (via an explicit alias
//      table for renames, default rule `relcont_<name>`, and a short list
//      of intentional text-only series like the slow log);
//   2. every series name on either surface appears verbatim in the
//      OBSERVABILITY.md glossary (argv[1]);
//   3. the /statusz JSON reparses with the in-repo parser;
//   4. the /requestz JSON (both the list and the per-id drill-down,
//      rendered from a synthetic fully populated flight recorder)
//      reparses, and every key in it appears in the OBSERVABILITY.md
//      wide-event schema table (the chrome_trace subtree is exempt — its
//      keys are Chrome's, documented upstream).
//
// Adding a counter to exposition.cc without documenting it — or renaming a
// series on one surface but not the other — fails this binary, and it runs
// as a ctest case, so CI gates on it.
//
// Usage: metrics_lint <path/to/OBSERVABILITY.md>
// Exit: 0 clean, 1 lint findings, 2 usage/IO error.

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "obs/exposition.h"

namespace {

using relcont::obs::MetricsSnapshot;

/// A snapshot in which every optional section renders: nonzero counters,
/// one row per labelled family, trace aggregates, a slow-log entry, window
/// rows, bound sites, draining on. If a renderer gates a family on
/// emptiness, this snapshot un-gates it.
MetricsSnapshot FullyPopulatedSnapshot() {
  MetricsSnapshot s;
  s.version = "0.0.0-lint";
  s.trace_compiled_in = true;
  s.start_time_unix_seconds = 1700000000;
  s.uptime_seconds = 12.5;
  s.requests = 10;
  s.errors = 1;
  s.request_cache_hits = 2;
  s.deadline_exceeded = 1;
  s.parallel_tasks_spawned = 4;
  s.parallel_tasks_completed = 4;
  s.plan_requests = 3;
  s.rewrite_requests = 2;
  s.plan_errors = 1;
  s.unknown_verbs = 1;
  s.dense_order_propagations = 5;
  s.dense_order_pruned_branches = 6;
  s.dense_order_bound_hits = 7;
  s.cegar_iterations = 8;
  s.cegar_blocking_clauses = 9;
  s.cegar_proposals = 10;
  s.decisions_by_regime.push_back({"section3", 5});
  s.cache.hits = 2;
  s.cache.misses = 8;
  s.cache.evictions = 1;
  s.cache.entries = 7;
  s.plan_cache.hits = 1;
  s.plan_cache.misses = 4;
  s.plan_cache.evictions = 1;
  s.plan_cache.invalidated = 2;
  s.plan_cache.entries = 2;
  s.latency_buckets.push_back({false, 128, 6});
  s.latency_buckets.push_back({true, 0, 10});
  s.latency_sum_micros = 1234;
  s.latency_count = 10;
  s.trace_counter_totals.push_back({"section3", "hom_candidates_tried", 42});
  s.phases.push_back({"decide", 900000, 10});
  relcont::obs::SlowEntry slow;
  slow.latency_micros = 900;
  slow.regime = "section3";
  slow.request_id = 7;
  slow.description = "CONTAINED? q1 q2 @c";
  slow.trace_text = "decide 900us\n  regime_section3 880us";
  slow.top_phases.push_back({"decide", 900000, 1});
  s.slow_log.push_back(slow);
  s.short_window_secs = 10;
  s.long_window_secs = 60;
  s.window_latency.push_back({"contained", "all", 10, 5, 10, 20, 30, 40});
  s.window_latency.push_back({"plan", "section3", 60, 2, 11, 21, 31, 41});
  s.inflight_requests = 1;
  s.open_connections = 2;
  s.batch_queue_depth = 3;
  s.draining = true;
  s.http_rejected_431 = 1;
  s.http_rejected_408 = 1;
  s.bound_sites.push_back({"linearization_dfs", 3});
  s.flight_retained = 4;
  s.flight_dropped = 1;
  s.flight_arena_bytes = 2048;
  return s;
}

/// A flight recorder with every wide-event field populated and one fully
/// retained entry, so both /requestz renderings (list and drill-down)
/// emit every key they are capable of emitting.
void PopulateFlightRecorder(relcont::obs::FlightRecorder* flight) {
  relcont::obs::WideEvent event;
  event.request_id = flight->NextRequestId();
  event.ts_unix_micros = 1700000000000000;
  event.latency_micros = 1234;
  event.catalog_version = 3;
  event.worker_count = 4;
  event.error = 1;
  event.cache_hit = 1;
  event.traced = 1;
  event.bound = 1;
  event.set_verb("contained");
  event.set_regime("section3");
  event.set_catalog("cars");
  event.set_bound_site("linearization_dfs");
  relcont::obs::WideEvent::CopyInto(
      event.phases[0].name, relcont::obs::WideEvent::kPhaseChars, "decide");
  event.phases[0].ns = 900000;
  flight->Record(event);
  flight->Retain(event, "decide 900us\n  regime_section3 880us",
                 "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}");
}

/// Collects every object key in `value`, skipping the `chrome_trace`
/// subtree — its keys belong to the Chrome trace_event schema, documented
/// upstream, not to OBSERVABILITY.md.
void CollectJsonKeys(const relcont::json::Value& value,
                     std::set<std::string>* keys) {
  if (value.is_object()) {
    for (const auto& [key, member] : value.object) {
      keys->insert(key);
      if (key == "chrome_trace") continue;
      CollectJsonKeys(member, keys);
    }
  } else if (value.is_array()) {
    for (const relcont::json::Value& member : value.array) {
      CollectJsonKeys(member, keys);
    }
  }
}

/// Extracts the series name from one exposition line: the token before the
/// first ' ' or '{'. Returns empty for lines that carry no series name
/// (comments, indented slow-log continuations, blanks).
std::string SeriesName(const std::string& line) {
  if (line.empty() || line[0] == '#' || line[0] == ' ') return "";
  size_t end = line.find_first_of(" {");
  if (end == std::string::npos || end == 0) return "";
  return line.substr(0, end);
}

std::set<std::string> ExtractNames(const std::string& text) {
  std::set<std::string> names;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    std::string name = SeriesName(line);
    if (!name.empty()) names.insert(name);
  }
  return names;
}

/// METRICS-text series whose Prometheus counterpart is not
/// `relcont_<name>`. An empty mapping marks a series that is text-only by
/// design (free-form payloads Prometheus cannot carry).
const std::map<std::string, std::string>& PromAliases() {
  static const std::map<std::string, std::string> aliases = {
      {"library_version", "relcont_build_info"},
      {"start_time_unix_seconds", "relcont_start_time_seconds"},
      {"request_cache_hits", "relcont_request_cache_hits_total"},
      {"deadline_exceeded", "relcont_deadline_exceeded_total"},
      {"parallel_tasks_spawned", "relcont_parallel_tasks_spawned_total"},
      {"parallel_tasks_completed", "relcont_parallel_tasks_completed_total"},
      {"decisions_by_regime", "relcont_decisions_total"},
      {"unknown_verbs_total", "relcont_unknown_verb_total"},
      {"http_rejected_431_total", "relcont_http_rejected_total"},
      {"http_rejected_408_total", "relcont_http_rejected_total"},
      {"window_latency_us", "relcont_window_latency_microseconds"},
      {"cache_hits", "relcont_cache_hits_total"},
      {"cache_misses", "relcont_cache_misses_total"},
      {"cache_evictions", "relcont_cache_evictions_total"},
      {"plan_cache_hits", "relcont_plan_cache_hits_total"},
      {"plan_cache_misses", "relcont_plan_cache_misses_total"},
      {"plan_cache_evictions", "relcont_plan_cache_evictions_total"},
      {"plan_cache_invalidated", "relcont_plan_cache_invalidated_total"},
      {"latency_us_bucket", "relcont_request_latency_microseconds_bucket"},
      {"latency_us_sum", "relcont_request_latency_microseconds_sum"},
      {"latency_us_count", "relcont_request_latency_microseconds_count"},
      {"trace_phase_ns", "relcont_trace_phase_nanoseconds_total"},
      {"trace_phase_calls", "relcont_trace_phase_calls_total"},
      // The slow log is free-form request text plus an indented span tree;
      // /statusz carries its structured digest instead.
      {"slow_request", ""},
  };
  return aliases;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: metrics_lint <path/to/OBSERVABILITY.md>\n");
    return 2;
  }
  std::ifstream doc_file(argv[1]);
  if (!doc_file) {
    std::fprintf(stderr, "metrics_lint: cannot read %s\n", argv[1]);
    return 2;
  }
  std::stringstream doc_stream;
  doc_stream << doc_file.rdbuf();
  const std::string doc = doc_stream.str();

  const MetricsSnapshot snapshot = FullyPopulatedSnapshot();
  const std::string text = RenderMetricsText(snapshot);
  const std::string prom = RenderPrometheusText(snapshot);
  const std::string statusz = RenderStatuszJson(snapshot);

  const std::set<std::string> text_names = ExtractNames(text);
  const std::set<std::string> prom_names = ExtractNames(prom);

  int findings = 0;
  auto fail = [&findings](const std::string& message) {
    std::fprintf(stderr, "metrics_lint: %s\n", message.c_str());
    ++findings;
  };

  // 1. Every METRICS series has a live Prometheus counterpart (or is
  //    explicitly marked text-only in the alias table).
  for (const std::string& name : text_names) {
    std::string expected = "relcont_" + name;
    auto alias = PromAliases().find(name);
    if (alias != PromAliases().end()) expected = alias->second;
    if (expected.empty()) continue;  // text-only by design
    if (prom_names.count(expected) == 0) {
      fail("METRICS series '" + name + "' has no /metrics counterpart '" +
           expected + "' (add it to exposition.cc or the alias table)");
    }
  }

  // 2. No Prometheus series is orphaned: each must be the counterpart of
  //    some METRICS series.
  std::set<std::string> reachable;
  for (const std::string& name : text_names) {
    auto alias = PromAliases().find(name);
    reachable.insert(alias != PromAliases().end() ? alias->second
                                                  : "relcont_" + name);
  }
  for (const std::string& name : prom_names) {
    if (reachable.count(name) == 0) {
      fail("/metrics series '" + name +
           "' has no METRICS-text counterpart (one surface drifted)");
    }
  }

  // 3. Every series name on either surface appears verbatim in the
  //    OBSERVABILITY.md glossary.
  for (const std::set<std::string>* names : {&text_names, &prom_names}) {
    for (const std::string& name : *names) {
      if (doc.find(name) == std::string::npos) {
        fail("series '" + name + "' is not documented in " +
             std::string(argv[1]));
      }
    }
  }

  // 4. The /statusz rendering must reparse with the in-repo JSON parser,
  //    and the engine counter groups that METRICS/Prometheus carry must be
  //    present there too — /statusz is the third surface, and a counter
  //    group added to exposition.cc's text renderers but not the JSON one
  //    (or vice versa) fails here.
  auto parsed = relcont::json::Parse(statusz);
  if (!parsed.ok()) {
    fail("/statusz JSON does not reparse: " + parsed.status().ToString());
  } else {
    auto find_member = [](const relcont::json::Value& value,
                          const std::string& key)
        -> const relcont::json::Value* {
      for (const auto& [name, member] : value.object) {
        if (name == key) return &member;
      }
      return nullptr;
    };
    const relcont::json::Value* cegar = find_member(*parsed, "cegar");
    if (cegar == nullptr || !cegar->is_object()) {
      fail("/statusz JSON lacks the 'cegar' counter object");
    } else {
      for (const char* key :
           {"iterations", "blocking_clauses", "proposals"}) {
        if (find_member(*cegar, key) == nullptr) {
          fail(std::string("/statusz 'cegar' object lacks key '") + key +
               "'");
        }
      }
    }
  }

  // 5. /requestz schema: render both shapes (list and drill-down) from a
  //    fully populated recorder, reparse, and require every JSON key to
  //    appear verbatim in the OBSERVABILITY.md schema table. A wide-event
  //    field added to flight.cc without documenting it fails here.
  relcont::obs::FlightRecorder flight;
  PopulateFlightRecorder(&flight);
  const std::string requestz_list =
      relcont::obs::RenderRequestzListJson(flight);
  auto retained = flight.FindRetained(1);
  if (!retained.has_value()) {
    fail("synthetic flight recorder lost its retained entry");
  }
  const std::string requestz_event =
      retained.has_value()
          ? relcont::obs::RenderRequestzEventJson(*retained)
          : std::string();
  for (const auto& [label, text_json] :
       {std::pair<const char*, const std::string&>{"/requestz",
                                                   requestz_list},
        std::pair<const char*, const std::string&>{"/requestz?id=",
                                                   requestz_event}}) {
    if (text_json.empty()) continue;
    auto doc_parsed = relcont::json::Parse(text_json);
    if (!doc_parsed.ok()) {
      fail(std::string(label) + " JSON does not reparse: " +
           doc_parsed.status().ToString());
      continue;
    }
    std::set<std::string> keys;
    CollectJsonKeys(*doc_parsed, &keys);
    for (const std::string& key : keys) {
      if (doc.find(key) == std::string::npos) {
        fail(std::string(label) + " key '" + key +
             "' is not documented in " + std::string(argv[1]));
      }
    }
  }

  if (findings > 0) {
    std::fprintf(stderr, "metrics_lint: %d finding(s)\n", findings);
    return 1;
  }
  std::printf("metrics_lint: %zu METRICS series, %zu /metrics series, all "
              "documented\n",
              text_names.size(), prom_names.size());
  return 0;
}
