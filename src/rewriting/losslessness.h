#ifndef RELCONT_REWRITING_LOSSLESSNESS_H_
#define RELCONT_REWRITING_LOSSLESSNESS_H_

#include "rewriting/views.h"

namespace relcont {

/// Losslessness / equivalent rewritings. The maximally-contained plan is
/// by construction contained in the query; when the converse also holds —
/// the plan's expansion contains the query — the views are LOSSLESS for
/// the query: its certain answers equal its real answers on every
/// database, and the plan is an equivalent rewriting in the sense of the
/// rewriting literature the paper builds on (Levy–Mendelzon–Sagiv–
/// Srivastava). This is the bridge between relative containment and
/// classical query answering using views.
struct LosslessnessResult {
  bool lossless = false;
  /// The function-term-free UCQ plan over the sources.
  UnionQuery plan;
  /// When lossless: the plan doubles as an equivalent rewriting.
};

/// Decides whether `views` are lossless for the (nonrecursive,
/// comparison-free) query: Q ≡ P^exp.
Result<LosslessnessResult> CheckLossless(const Program& query, SymbolId goal,
                                         const ViewSet& views,
                                         Interner* interner);

}  // namespace relcont

#endif  // RELCONT_REWRITING_LOSSLESSNESS_H_
