#include "rewriting/comparison_plans.h"

#include "constraints/order_constraints.h"
#include "containment/comparison_containment.h"
#include "datalog/substitution.h"
#include "rewriting/inverse_rules.h"
#include "trace/trace.h"

namespace relcont {

namespace {

bool IsNumericConst(const Term& t) {
  return t.is_constant() && t.value().is_number();
}

// Emits the strongest comparison entailed between two visible points, if
// any.
void EmitStrongest(const OrderConstraints& solver, const Term& a,
                   const Term& b, std::vector<Comparison>* out) {
  auto entails = [&](ComparisonOp op) {
    return solver.Entails(Comparison(a, op, b));
  };
  if (entails(ComparisonOp::kEq)) {
    out->emplace_back(a, ComparisonOp::kEq, b);
    return;
  }
  if (entails(ComparisonOp::kLt)) {
    out->emplace_back(a, ComparisonOp::kLt, b);
    return;
  }
  if (entails(ComparisonOp::kGt)) {
    out->emplace_back(a, ComparisonOp::kGt, b);
    return;
  }
  bool le = entails(ComparisonOp::kLe);
  bool ge = entails(ComparisonOp::kGe);
  bool ne = entails(ComparisonOp::kNe);
  if (le) out->emplace_back(a, ComparisonOp::kLe, b);
  if (ge) out->emplace_back(a, ComparisonOp::kGe, b);
  if (ne && !le && !ge) out->emplace_back(a, ComparisonOp::kNe, b);
}

Result<std::vector<Comparison>> ProjectConstraints(const Rule& view_rule) {
  OrderConstraints solver;
  for (SymbolId v : view_rule.BodyVariables()) {
    RELCONT_RETURN_NOT_OK(solver.AddPoint(Term::Var(v)));
  }
  std::vector<Term> visible;
  for (SymbolId v : view_rule.HeadVariables()) visible.push_back(Term::Var(v));
  for (const Value& c : view_rule.Constants()) {
    if (c.is_number()) {
      Term t = Term::Constant(c);
      RELCONT_RETURN_NOT_OK(solver.AddPoint(t));
      visible.push_back(t);
    }
  }
  RELCONT_RETURN_NOT_OK(solver.AddAll(view_rule.comparisons));
  std::vector<Comparison> out;
  for (size_t i = 0; i < visible.size(); ++i) {
    for (size_t j = i + 1; j < visible.size(); ++j) {
      if (IsNumericConst(visible[i]) && IsNumericConst(visible[j])) continue;
      EmitStrongest(solver, visible[i], visible[j], &out);
    }
  }
  return out;
}

}  // namespace

Result<std::vector<Comparison>> ProjectViewConstraintsToHead(
    const ViewDefinition& view) {
  return ProjectConstraints(view.rule);
}

Result<Rule> AugmentWithViewConstraints(const Rule& plan_rule,
                                        const ViewSet& views,
                                        Interner* interner) {
  Rule out = plan_rule;
  for (const Atom& atom : plan_rule.body) {
    const ViewDefinition* view = views.Find(atom.predicate);
    if (view == nullptr) continue;
    if (view->rule.comparisons.empty()) continue;
    Rule fresh = RenameApart(view->rule, interner);
    // Unify with the view head on the left so the unifier binds the fresh
    // view variables to the plan's terms (not vice versa) — the projected
    // comparisons must land on the plan's own variables.
    Substitution mgu;
    if (!UnifyAtoms(fresh.head, atom, &mgu)) {
      // No real source tuple can populate this subgoal; make the rule
      // explicitly unsatisfiable.
      out.comparisons.emplace_back(Term::Number(Rational(0)),
                                   ComparisonOp::kLt,
                                   Term::Number(Rational(0)));
      return out;
    }
    RELCONT_ASSIGN_OR_RETURN(std::vector<Comparison> projected,
                             ProjectConstraints(fresh));
    for (const Comparison& c : projected) {
      Comparison mapped = mgu.Apply(c);
      auto usable = [](const Term& t) {
        return t.is_variable() || IsNumericConst(t);
      };
      if (usable(mapped.lhs) && usable(mapped.rhs)) {
        out.comparisons.push_back(std::move(mapped));
      }
    }
  }
  return out;
}

Result<UnionQuery> ComparisonAwarePlan(const Program& query, SymbolId goal,
                                       const ViewSet& views,
                                       Interner* interner,
                                       const UnfoldOptions& options) {
  RELCONT_TRACE_SPAN("plan_comparison_aware");
  RELCONT_RETURN_NOT_OK(query.CheckSafe());
  std::set<SymbolId> sources = views.SourcePredicates();
  for (const Rule& r : query.rules) {
    for (const Atom& a : r.body) {
      if (sources.count(a.predicate) > 0) {
        return Status::InvalidArgument(
            "query must be over the mediated schema, not the sources");
      }
    }
  }
  // The query as a UCQ over the mediated schema (soundness reference).
  RELCONT_ASSIGN_OR_RETURN(UnionQuery query_ucq,
                           UnfoldToUnion(query, goal, interner, options));

  // Candidate plans: unfold the query (comparisons and all) against the
  // inverse rules.
  RELCONT_ASSIGN_OR_RETURN(Program inverse, InvertViews(views, interner));
  Program plan = query;
  for (Rule& r : inverse.rules) plan.rules.push_back(std::move(r));
  RELCONT_ASSIGN_OR_RETURN(UnionQuery unfolded,
                           UnfoldToUnion(plan, goal, interner, options));

  UnionQuery out;
  for (Rule& candidate : unfolded.disjuncts) {
    // Heads and relational subgoals must be Skolem-free and source-only.
    bool viable = true;
    for (const Term& t : candidate.head.args) {
      if (t.is_function()) viable = false;
    }
    for (const Atom& a : candidate.body) {
      if (sources.count(a.predicate) == 0) viable = false;
      for (const Term& t : a.args) {
        if (t.is_function()) viable = false;
      }
    }
    if (!viable) continue;
    // Pull back the comparisons that landed on visible terms; comparisons
    // stranded on Skolem terms must be guaranteed by the views, which the
    // soundness check below verifies after we remove them.
    std::vector<Comparison> kept;
    for (Comparison& c : candidate.comparisons) {
      if (!c.lhs.is_function() && !c.rhs.is_function()) {
        kept.push_back(std::move(c));
      }
    }
    candidate.comparisons = std::move(kept);

    // Soundness: the candidate's expansion must be contained in the query.
    auto sound = [&](const Rule& r) -> Result<bool> {
      UnionQuery single;
      single.disjuncts.push_back(r);
      RELCONT_ASSIGN_OR_RETURN(UnionQuery expansion,
                               ExpandUnionPlan(single, views, interner));
      return UnionContainedInUnionComplete(expansion, query_ucq);
    };
    RELCONT_ASSIGN_OR_RETURN(bool ok, sound(candidate));
    if (!ok) continue;

    // Prune vacuous candidates: if the candidate's constraints together
    // with what its views guarantee are unsatisfiable, no consistent
    // source instance can ever fire it ("no appropriate constraints
    // exist" in the paper's construction).
    RELCONT_ASSIGN_OR_RETURN(
        Rule augmented, AugmentWithViewConstraints(candidate, views, interner));
    RELCONT_ASSIGN_OR_RETURN(std::optional<Rule> satisfiable,
                             NormalizeComparisons(augmented));
    if (!satisfiable.has_value()) continue;

    // Maximality: greedily drop pulled-back comparisons the views already
    // guarantee (weakest sound constraint set). Example 4: the AntiqueCars
    // disjunct needs no explicit Year < 1970.
    for (size_t i = 0; i < candidate.comparisons.size();) {
      Rule weakened = candidate;
      weakened.comparisons.erase(weakened.comparisons.begin() + i);
      RELCONT_ASSIGN_OR_RETURN(bool still_sound, sound(weakened));
      if (still_sound) {
        candidate = std::move(weakened);
      } else {
        ++i;
      }
    }
    out.disjuncts.push_back(std::move(candidate));
  }
  return out;
}

}  // namespace relcont
