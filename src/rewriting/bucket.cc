#include "rewriting/bucket.h"

#include <algorithm>
#include <functional>
#include <map>

#include "containment/cq_containment.h"
#include "datalog/substitution.h"
#include "rewriting/inverse_rules.h"

namespace relcont {

namespace {

// One way a query subgoal can be served: view `view_index`, whose body
// subgoal `subgoal_index` unifies with the query subgoal.
struct BucketEntry {
  int view_index = 0;
  int subgoal_index = 0;
};

class BucketBuilder {
 public:
  BucketBuilder(const ViewSet& views, Interner* interner)
      : views_(views), interner_(interner) {}

  Result<UnionQuery> Run(const UnionQuery& query_ucq, BucketStats* stats) {
    UnionQuery out;
    for (const Rule& q : query_ucq.disjuncts) {
      RELCONT_RETURN_NOT_OK(RewriteRule(q, query_ucq, stats, &out));
    }
    return MinimizeUnion(out);
  }

 private:
  Status RewriteRule(const Rule& q, const UnionQuery& query_ucq,
                     BucketStats* stats, UnionQuery* out) {
    // Build the buckets.
    std::vector<std::vector<BucketEntry>> buckets(q.body.size());
    for (size_t i = 0; i < q.body.size(); ++i) {
      for (size_t v = 0; v < views_.views().size(); ++v) {
        const Rule& view = views_.views()[v].rule;
        for (size_t w = 0; w < view.body.size(); ++w) {
          if (view.body[w].predicate != q.body[i].predicate ||
              view.body[w].args.size() != q.body[i].args.size()) {
            continue;
          }
          // Quick feasibility: the subgoals must unify in isolation.
          Rule fresh = RenameApart(view, interner_);
          Substitution probe;
          if (!UnifyAtoms(q.body[i], fresh.body[w], &probe)) continue;
          buckets[i].push_back(
              {static_cast<int>(v), static_cast<int>(w)});
        }
      }
      if (stats != nullptr) {
        stats->bucket_sizes.push_back(static_cast<int>(buckets[i].size()));
      }
      if (buckets[i].empty()) return Status::OK();  // subgoal unanswerable
    }
    // Cartesian product of the buckets.
    std::vector<size_t> pick(q.body.size(), 0);
    for (;;) {
      if (stats != nullptr) ++stats->candidates;
      RELCONT_RETURN_NOT_OK(TryCandidate(q, query_ucq, buckets, pick, stats,
                                         out));
      size_t i = 0;
      while (i < pick.size() && ++pick[i] == buckets[i].size()) {
        pick[i] = 0;
        ++i;
      }
      if (i == pick.size() || pick.empty()) break;
    }
    return Status::OK();
  }

  Status TryCandidate(const Rule& q, const UnionQuery& query_ucq,
                      const std::vector<std::vector<BucketEntry>>& buckets,
                      const std::vector<size_t>& pick, BucketStats* stats,
                      UnionQuery* out) {
    // A single view copy may cover several query subgoals (a join through
    // a view existential — the MiniCon observation), so enumerate, for
    // each group of subgoals that chose the same view, every partition
    // into shared copies.
    std::map<int, std::vector<int>> by_view;  // view -> subgoal indices
    for (size_t i = 0; i < q.body.size(); ++i) {
      by_view[buckets[i][pick[i]].view_index].push_back(
          static_cast<int>(i));
    }
    std::vector<std::vector<std::vector<int>>> group_partitions;
    for (const auto& [view, subgoals] : by_view) {
      (void)view;
      group_partitions.push_back({});
      EnumeratePartitions(subgoals, &group_partitions.back());
    }
    // Product over the per-view partition choices.
    std::vector<size_t> choice(group_partitions.size(), 0);
    for (;;) {
      RELCONT_RETURN_NOT_OK(TryCopyAssignment(q, query_ucq, buckets, pick,
                                              by_view, group_partitions,
                                              choice, stats, out));
      size_t i = 0;
      while (i < choice.size() &&
             ++choice[i] == group_partitions[i].size()) {
        choice[i] = 0;
        ++i;
      }
      if (i == choice.size() || choice.empty()) break;
    }
    return Status::OK();
  }

  // Enumerates all set partitions of `items`, appending each as a list of
  // blocks encoded back-to-back; blocks are separated at reconstruction.
  // For simplicity each partition is stored flattened with block ids.
  void EnumeratePartitions(const std::vector<int>& items,
                           std::vector<std::vector<int>>* out) {
    // Restricted-growth strings: rgs[i] = block id of items[i].
    std::vector<int> rgs(items.size(), 0);
    std::function<void(size_t, int)> rec = [&](size_t i, int max_block) {
      if (i == items.size()) {
        out->push_back(rgs);
        return;
      }
      for (int b = 0; b <= max_block + 1; ++b) {
        rgs[i] = b;
        rec(i + 1, std::max(max_block, b));
      }
    };
    if (items.empty()) {
      out->push_back({});
    } else {
      rec(0, -1);
    }
  }

  Status TryCopyAssignment(
      const Rule& q, const UnionQuery& query_ucq,
      const std::vector<std::vector<BucketEntry>>& buckets,
      const std::vector<size_t>& pick,
      const std::map<int, std::vector<int>>& by_view,
      const std::vector<std::vector<std::vector<int>>>& group_partitions,
      const std::vector<size_t>& choice, BucketStats* stats,
      UnionQuery* out) {
    Substitution mgu;
    std::vector<Atom> body;
    size_t group = 0;
    for (const auto& [view_index, subgoals] : by_view) {
      const std::vector<int>& rgs = group_partitions[group][choice[group]];
      ++group;
      int blocks = 0;
      for (int b : rgs) blocks = std::max(blocks, b + 1);
      // One fresh copy per block; unify every subgoal of the block with
      // its chosen view subgoal in that copy.
      std::vector<Rule> copies;
      for (int b = 0; b < blocks; ++b) {
        copies.push_back(
            RenameApart(views_.views()[view_index].rule, interner_));
      }
      for (size_t k = 0; k < subgoals.size(); ++k) {
        int i = subgoals[k];
        const Rule& copy = copies[rgs[k]];
        const BucketEntry& entry = buckets[i][pick[i]];
        if (!UnifyAtoms(q.body[i], copy.body[entry.subgoal_index], &mgu)) {
          return Status::OK();  // inconsistent assignment
        }
      }
      for (const Rule& copy : copies) body.push_back(copy.head);
    }
    Rule candidate;
    candidate.head = mgu.Apply(q.head);
    for (Atom& a : body) candidate.body.push_back(mgu.Apply(a));
    // Safety: the head must not expose view existentials that vanished.
    if (!candidate.CheckSafe().ok()) return Status::OK();
    // Soundness: the candidate's expansion must be contained in the query.
    UnionQuery single;
    single.disjuncts.push_back(candidate);
    RELCONT_ASSIGN_OR_RETURN(UnionQuery expansion,
                             ExpandUnionPlan(single, views_, interner_));
    RELCONT_ASSIGN_OR_RETURN(bool sound,
                             UnionContainedInUnion(expansion, query_ucq));
    if (!sound) return Status::OK();
    if (stats != nullptr) ++stats->kept;
    out->disjuncts.push_back(std::move(candidate));
    return Status::OK();
  }

  const ViewSet& views_;
  Interner* interner_;
};

}  // namespace

Result<UnionQuery> BucketRewriting(const Program& query, SymbolId goal,
                                   const ViewSet& views, Interner* interner,
                                   BucketStats* stats) {
  RELCONT_RETURN_NOT_OK(query.CheckSafe());
  RELCONT_RETURN_NOT_OK(views.Validate());
  for (const Rule& r : query.rules) {
    if (!r.comparisons.empty()) {
      return Status::Unsupported(
          "the bucket implementation covers comparison-free queries");
    }
  }
  for (const ViewDefinition& v : views.views()) {
    if (!v.rule.comparisons.empty()) {
      return Status::Unsupported(
          "the bucket implementation covers comparison-free views");
    }
  }
  RELCONT_ASSIGN_OR_RETURN(UnionQuery query_ucq,
                           UnfoldToUnion(query, goal, interner));
  return BucketBuilder(views, interner).Run(query_ucq, stats);
}

}  // namespace relcont
