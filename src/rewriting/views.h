#ifndef RELCONT_REWRITING_VIEWS_H_
#define RELCONT_REWRITING_VIEWS_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/program.h"

namespace relcont {

/// A local-as-view source description  V(X̄) ⊇ Q(X̄)  (Section 2.2): the
/// source relation `rule.head.predicate` contains a subset of the answers
/// to the conjunctive query `rule` over the mediated schema. A complete
/// source (V = Q, the closed-world assumption) is marked with `complete`.
struct ViewDefinition {
  Rule rule;
  bool complete = false;

  SymbolId source_predicate() const { return rule.head.predicate; }
};

/// The set of available sources of a data integration system.
class ViewSet {
 public:
  ViewSet() = default;
  explicit ViewSet(std::vector<ViewDefinition> views)
      : views_(std::move(views)) {}

  /// Adds a view. The source predicate must be fresh (one view per source)
  /// and must not appear in any view body (sources are not mediated
  /// relations).
  Status Add(ViewDefinition view);

  const std::vector<ViewDefinition>& views() const { return views_; }
  bool empty() const { return views_.empty(); }
  size_t size() const { return views_.size(); }

  /// The view defining `source_pred`, or nullptr.
  const ViewDefinition* Find(SymbolId source_pred) const;

  /// All source predicates.
  std::set<SymbolId> SourcePredicates() const;
  /// All mediated-schema predicates mentioned in view bodies.
  std::set<SymbolId> MediatedPredicates() const;
  /// All constants in the view definitions.
  std::vector<Value> Constants() const;

  /// Checks each view is safe and conjunctive (single rule per source).
  Status Validate() const;

  std::string ToString(const Interner& interner) const;

 private:
  std::vector<ViewDefinition> views_;
};

/// Parses one view definition per rule. All parsed views are incomplete
/// (open-world) sources; flip `complete` on the result for closed-world
/// experiments.
Result<ViewSet> ParseViews(std::string_view text, Interner* interner);

}  // namespace relcont

#endif  // RELCONT_REWRITING_VIEWS_H_
