#ifndef RELCONT_REWRITING_INVERSE_RULES_H_
#define RELCONT_REWRITING_INVERSE_RULES_H_

#include "datalog/unfold.h"
#include "rewriting/views.h"

namespace relcont {

/// The inverse-rules algorithm of Duschka–Genesereth–Levy (Section 2.3 of
/// the paper): each view  v(X̄) :- b1, ..., bn  is inverted into n rules
/// bi σ :- v(X̄), where σ maps each existential variable of the view to a
/// Skolem term f_v_var(X̄) over the view's distinguished variables.
/// Comparison subgoals of the view are dropped from the inverse rules (the
/// source guarantees them); they reappear in expansions.
Result<Program> InvertViews(const ViewSet& views, Interner* interner);

/// The maximally-contained query plan for `query` using `views`
/// (Definition 2.2): the query's rules plus the inverse rules. The plan's
/// EDB predicates are the source predicates. Fails if the query mentions
/// source predicates directly or contains comparisons (see
/// rewriting/comparison_plans.h for the Section 5 constructions).
Result<Program> MaximallyContainedPlan(const Program& query,
                                       const ViewSet& views,
                                       Interner* interner);

/// Unfolds a nonrecursive plan into a union of conjunctive queries over the
/// source predicates and performs function-term elimination: disjuncts in
/// which a Skolem term survives (in the head or in a source subgoal) can
/// never produce a ground answer on a real source instance and are removed
/// (paper Example 3). Disjuncts mentioning a mediated-schema predicate that
/// no source covers are likewise unanswerable and removed.
Result<UnionQuery> PlanToUnion(const Program& plan, SymbolId goal,
                               const ViewSet& views, Interner* interner,
                               const UnfoldOptions& options = {});

/// The expansion P^exp of a UCQ plan over the sources: every source
/// subgoal is replaced by the body of its view definition with fresh
/// existential variables (and the view's comparisons). The result is a UCQ
/// over the mediated schema.
Result<UnionQuery> ExpandUnionPlan(const UnionQuery& plan,
                                   const ViewSet& views, Interner* interner);

/// The expansion of an arbitrary (possibly recursive) datalog plan: source
/// subgoals of every rule are replaced in place by view bodies. Rules whose
/// source subgoals cannot unify with their view's head are dropped.
Result<Program> ExpandPlanProgram(const Program& plan, const ViewSet& views,
                                  Interner* interner);

}  // namespace relcont

#endif  // RELCONT_REWRITING_INVERSE_RULES_H_
