#include "rewriting/views.h"

#include "datalog/parser.h"

namespace relcont {

Status ViewSet::Add(ViewDefinition view) {
  if (Find(view.source_predicate()) != nullptr) {
    return Status::InvalidArgument(
        "duplicate view definition for a source predicate");
  }
  if (view.rule.body.empty()) {
    return Status::InvalidArgument("view body must not be empty");
  }
  RELCONT_RETURN_NOT_OK(view.rule.CheckSafe());
  views_.push_back(std::move(view));
  return Status::OK();
}

const ViewDefinition* ViewSet::Find(SymbolId source_pred) const {
  for (const ViewDefinition& v : views_) {
    if (v.source_predicate() == source_pred) return &v;
  }
  return nullptr;
}

std::set<SymbolId> ViewSet::SourcePredicates() const {
  std::set<SymbolId> out;
  for (const ViewDefinition& v : views_) out.insert(v.source_predicate());
  return out;
}

std::set<SymbolId> ViewSet::MediatedPredicates() const {
  std::set<SymbolId> out;
  for (const ViewDefinition& v : views_) {
    for (const Atom& a : v.rule.body) out.insert(a.predicate);
  }
  return out;
}

std::vector<Value> ViewSet::Constants() const {
  std::vector<Value> out;
  for (const ViewDefinition& v : views_) {
    std::vector<Value> c = v.rule.Constants();
    out.insert(out.end(), c.begin(), c.end());
  }
  return out;
}

Status ViewSet::Validate() const {
  std::set<SymbolId> sources = SourcePredicates();
  for (const ViewDefinition& v : views_) {
    RELCONT_RETURN_NOT_OK(v.rule.CheckSafe());
    for (const Atom& a : v.rule.body) {
      if (sources.count(a.predicate) > 0) {
        return Status::InvalidArgument(
            "a source predicate occurs in a view body");
      }
    }
  }
  return Status::OK();
}

std::string ViewSet::ToString(const Interner& interner) const {
  std::string out;
  for (const ViewDefinition& v : views_) {
    out += v.rule.ToString(interner);
    if (v.complete) out += "  % complete";
    out += '\n';
  }
  return out;
}

Result<ViewSet> ParseViews(std::string_view text, Interner* interner) {
  RELCONT_ASSIGN_OR_RETURN(Program program, ParseProgram(text, interner));
  ViewSet out;
  for (Rule& r : program.rules) {
    ViewDefinition v;
    v.rule = std::move(r);
    RELCONT_RETURN_NOT_OK(out.Add(std::move(v)));
  }
  RELCONT_RETURN_NOT_OK(out.Validate());
  return out;
}

}  // namespace relcont
