#include "rewriting/inverse_rules.h"

#include <unordered_set>

#include "datalog/substitution.h"
#include "trace/trace.h"

namespace relcont {

Result<Program> InvertViews(const ViewSet& views, Interner* interner) {
  RELCONT_RETURN_NOT_OK(views.Validate());
  Program out;
  for (const ViewDefinition& view : views.views()) {
    const Rule& rule = view.rule;
    // Distinguished (head) variables in order, for Skolem arguments.
    std::vector<SymbolId> head_vars = rule.HeadVariables();
    std::vector<Term> skolem_args;
    skolem_args.reserve(head_vars.size());
    for (SymbolId v : head_vars) skolem_args.push_back(Term::Var(v));
    std::unordered_set<SymbolId> head_set(head_vars.begin(), head_vars.end());

    // sigma: existential variable -> Skolem term over the head variables.
    Substitution sigma;
    for (SymbolId v : rule.BodyVariables()) {
      if (head_set.count(v) > 0) continue;
      std::string name = "f_" + interner->NameOf(view.source_predicate()) +
                         "_" + interner->NameOf(v);
      sigma.Bind(v, Term::Function(interner->Intern(name), skolem_args));
    }

    for (const Atom& subgoal : rule.body) {
      Rule inverse;
      inverse.head = sigma.Apply(subgoal);
      inverse.body.push_back(rule.head);
      out.rules.push_back(std::move(inverse));
      RELCONT_TRACE_COUNT(kPlanRules, 1);
    }
  }
  return out;
}

Result<Program> MaximallyContainedPlan(const Program& query,
                                       const ViewSet& views,
                                       Interner* interner) {
  RELCONT_TRACE_SPAN("plan_inverse_rules");
  RELCONT_RETURN_NOT_OK(query.CheckSafe());
  std::set<SymbolId> sources = views.SourcePredicates();
  for (const Rule& r : query.rules) {
    if (!r.comparisons.empty()) {
      return Status::Unsupported(
          "queries with comparisons need the Section 5 plan constructions");
    }
    for (const Atom& a : r.body) {
      if (sources.count(a.predicate) > 0) {
        return Status::InvalidArgument(
            "query must be over the mediated schema, not the sources");
      }
    }
  }
  RELCONT_ASSIGN_OR_RETURN(Program plan, InvertViews(views, interner));
  Program out = query;
  for (Rule& r : plan.rules) out.rules.push_back(std::move(r));
  return out;
}

namespace {

bool RuleHasFunctionTerm(const Rule& r) {
  auto term_has = [](const Term& t) { return t.is_function(); };
  for (const Term& t : r.head.args) {
    if (term_has(t)) return true;
  }
  for (const Atom& a : r.body) {
    for (const Term& t : a.args) {
      if (term_has(t)) return true;
    }
  }
  for (const Comparison& c : r.comparisons) {
    if (term_has(c.lhs) || term_has(c.rhs)) return true;
  }
  return false;
}

}  // namespace

Result<UnionQuery> PlanToUnion(const Program& plan, SymbolId goal,
                               const ViewSet& views, Interner* interner,
                               const UnfoldOptions& options) {
  RELCONT_TRACE_SPAN("plan_to_union");
  RELCONT_ASSIGN_OR_RETURN(UnionQuery unfolded,
                           UnfoldToUnion(plan, goal, interner, options));
  std::set<SymbolId> sources = views.SourcePredicates();
  UnionQuery out;
  for (Rule& d : unfolded.disjuncts) {
    if (RuleHasFunctionTerm(d)) {
      RELCONT_TRACE_COUNT(kPlanDisjunctsDropped, 1);
      continue;
    }
    bool answerable = true;
    for (const Atom& a : d.body) {
      if (sources.count(a.predicate) == 0) {
        answerable = false;  // mediated relation no source covers
        break;
      }
    }
    if (answerable) {
      RELCONT_TRACE_COUNT(kPlanDisjunctsKept, 1);
      out.disjuncts.push_back(std::move(d));
    } else {
      RELCONT_TRACE_COUNT(kPlanDisjunctsDropped, 1);
    }
  }
  return out;
}

Result<UnionQuery> ExpandUnionPlan(const UnionQuery& plan,
                                   const ViewSet& views, Interner* interner) {
  // The expansion is the unfolding of the plan disjuncts against the view
  // definitions (views are exactly rules defining the source predicates).
  Program program;
  if (plan.disjuncts.empty()) return UnionQuery{};
  SymbolId goal = plan.disjuncts[0].head.predicate;
  for (const Rule& d : plan.disjuncts) {
    if (d.head.predicate != goal) {
      return Status::InvalidArgument(
          "plan disjuncts must share a head predicate");
    }
    program.rules.push_back(d);
  }
  for (const ViewDefinition& v : views.views()) {
    program.rules.push_back(v.rule);
  }
  return UnfoldToUnion(program, goal, interner);
}

Result<Program> ExpandPlanProgram(const Program& plan, const ViewSet& views,
                                  Interner* interner) {
  Program out;
  for (const Rule& rule : plan.rules) {
    Rule cur = rule;
    bool dead = false;
    // Repeatedly replace the first source subgoal by its view body.
    for (;;) {
      int idx = -1;
      for (size_t i = 0; i < cur.body.size(); ++i) {
        if (views.Find(cur.body[i].predicate) != nullptr) {
          idx = static_cast<int>(i);
          break;
        }
      }
      if (idx < 0) break;
      const ViewDefinition* view = views.Find(cur.body[idx].predicate);
      Rule fresh = RenameApart(view->rule, interner);
      Substitution mgu;
      if (!UnifyAtoms(cur.body[idx], fresh.head, &mgu)) {
        dead = true;  // e.g. a constant in the plan clashes with the view
        break;
      }
      Rule next;
      next.head = mgu.Apply(cur.head);
      for (size_t i = 0; i < cur.body.size(); ++i) {
        if (static_cast<int>(i) == idx) {
          for (const Atom& a : fresh.body) next.body.push_back(mgu.Apply(a));
        } else {
          next.body.push_back(mgu.Apply(cur.body[i]));
        }
      }
      for (const Comparison& c : cur.comparisons) {
        next.comparisons.push_back(mgu.Apply(c));
      }
      for (const Comparison& c : fresh.comparisons) {
        next.comparisons.push_back(mgu.Apply(c));
      }
      cur = std::move(next);
    }
    if (!dead) out.rules.push_back(std::move(cur));
  }
  return out;
}

}  // namespace relcont
