#ifndef RELCONT_REWRITING_COMPARISON_PLANS_H_
#define RELCONT_REWRITING_COMPARISON_PLANS_H_

#include "datalog/unfold.h"
#include "rewriting/views.h"

namespace relcont {

/// Plan construction in the presence of comparison predicates (Section 5).
///
/// Theorem 5.1's construction: candidate conjunctive plans are the
/// inverse-rule unfoldings of the query's relational subgoals (at most n
/// source subgoals); for each candidate, the query's comparisons are pulled
/// back through the unifier onto the plan's visible variables, comparisons
/// that land on Skolem terms must instead be guaranteed by the views, and a
/// final soundness check verifies that the candidate's expansion is
/// contained in the query. Pulled-back comparisons that the views already
/// guarantee are dropped again, so e.g. the AntiqueCars disjunct of paper
/// Example 4 carries no explicit Year < 1970 test.

/// Computes the dense-order constraints of `view`'s body projected onto its
/// distinguished (head) variables and the numeric constants occurring in
/// the view: the strongest comparisons between visible points entailed by
/// the view definition. E.g. v(X) :- p(X, Y), X < Y, Y < 5 projects to
/// X < 5.
Result<std::vector<Comparison>> ProjectViewConstraintsToHead(
    const ViewDefinition& view);

/// Adds to `plan_rule` (a CQ over source predicates) every comparison the
/// view definitions guarantee about its visible variables. Used to decide
/// plan containment relative to consistent source instances.
Result<Rule> AugmentWithViewConstraints(const Rule& plan_rule,
                                        const ViewSet& views,
                                        Interner* interner);

/// The maximally-contained UCQ plan for a positive query whose rules may
/// carry comparison predicates, over conjunctive views that may carry
/// comparison predicates (Theorem 5.1; complete for the semi-interval
/// fragment, sound in general).
Result<UnionQuery> ComparisonAwarePlan(const Program& query, SymbolId goal,
                                       const ViewSet& views,
                                       Interner* interner,
                                       const UnfoldOptions& options = {});

}  // namespace relcont

#endif  // RELCONT_REWRITING_COMPARISON_PLANS_H_
