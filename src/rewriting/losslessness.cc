#include "rewriting/losslessness.h"

#include "containment/cq_containment.h"
#include "datalog/unfold.h"
#include "rewriting/inverse_rules.h"

namespace relcont {

Result<LosslessnessResult> CheckLossless(const Program& query, SymbolId goal,
                                         const ViewSet& views,
                                         Interner* interner) {
  for (const ViewDefinition& v : views.views()) {
    if (!v.rule.comparisons.empty()) {
      return Status::Unsupported(
          "losslessness is implemented for comparison-free views");
    }
  }
  LosslessnessResult out;
  RELCONT_ASSIGN_OR_RETURN(Program plan,
                           MaximallyContainedPlan(query, views, interner));
  RELCONT_ASSIGN_OR_RETURN(out.plan,
                           PlanToUnion(plan, goal, views, interner));
  RELCONT_ASSIGN_OR_RETURN(UnionQuery expansion,
                           ExpandUnionPlan(out.plan, views, interner));
  RELCONT_ASSIGN_OR_RETURN(UnionQuery query_ucq,
                           UnfoldToUnion(query, goal, interner));
  // P^exp ⊑ Q holds by construction (maximal containment); losslessness is
  // the converse.
  RELCONT_ASSIGN_OR_RETURN(bool covered,
                           UnionContainedInUnion(query_ucq, expansion));
  out.lossless = covered;
  return out;
}

}  // namespace relcont
