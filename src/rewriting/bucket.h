#ifndef RELCONT_REWRITING_BUCKET_H_
#define RELCONT_REWRITING_BUCKET_H_

#include "datalog/unfold.h"
#include "rewriting/views.h"

namespace relcont {

/// The Bucket algorithm (Levy–Rajaraman–Ordille) — an independent
/// implementation of answering-queries-using-views, used to cross-validate
/// the inverse-rules pipeline: both must produce equivalent
/// maximally-contained plans.
///
/// For each query subgoal, the bucket holds the view subgoals it can unify
/// with; candidate rewritings are formed by picking one bucket entry per
/// subgoal and unifying simultaneously, and are kept exactly when their
/// expansion is contained in the query (soundness check). By
/// Levy–Mendelzon–Sagiv–Srivastava, conjunctive rewritings with one view
/// atom per query subgoal suffice for the maximally-contained plan of a
/// conjunctive query.
struct BucketStats {
  /// Bucket sizes per query subgoal.
  std::vector<int> bucket_sizes;
  /// Candidates formed / kept after the containment check.
  int64_t candidates = 0;
  int64_t kept = 0;
};

/// Computes the maximally-contained UCQ plan of the (nonrecursive,
/// comparison-free) query via buckets. The result is equivalent — as a
/// query over the sources — to PlanToUnion(MaximallyContainedPlan(...)).
Result<UnionQuery> BucketRewriting(const Program& query, SymbolId goal,
                                   const ViewSet& views, Interner* interner,
                                   BucketStats* stats = nullptr);

}  // namespace relcont

#endif  // RELCONT_REWRITING_BUCKET_H_
