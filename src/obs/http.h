#ifndef RELCONT_OBS_HTTP_H_
#define RELCONT_OBS_HTTP_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace relcont {
namespace obs {

/// A minimal, dependency-free HTTP/1.1 server-side message layer — just
/// enough for a scraper (`curl`, Prometheus) to GET /metrics, /healthz,
/// and /buildz from the containment server. No bodies are read (the
/// endpoints are all GET/HEAD), no chunked encoding, no keep-alive: every
/// response carries `Connection: close`.

struct HttpRequest {
  std::string method;   // as sent ("GET", "HEAD", ...)
  std::string target;   // path + optional query, e.g. "/metrics"
  std::string version;  // "HTTP/1.1"
  /// Header (name, value) pairs in arrival order; names lowercased.
  std::vector<std::pair<std::string, std::string>> headers;

  /// Path portion of the target (query string stripped).
  std::string path() const;
  /// First header named `name` (lowercase), or nullptr.
  const std::string* FindHeader(std::string_view name) const;
};

/// True when `first_line` looks like an HTTP request line rather than a
/// containment-protocol verb — used by the server to decide how to speak
/// on a freshly accepted connection.
bool LooksLikeHttp(std::string_view first_line);

/// Parses a request head: the request line plus headers, up to (not
/// including) the blank line. Line endings may be CRLF or bare LF.
Result<HttpRequest> ParseHttpRequest(std::string_view head);

/// Renders a complete response with Content-Length and Connection: close.
/// `head_only` elides the body (HEAD requests) but keeps the headers.
std::string RenderHttpResponse(int status, std::string_view content_type,
                               std::string_view body, bool head_only = false);

/// The canonical reason phrase for `status` ("OK", "Not Found", ...).
std::string_view HttpReason(int status);

}  // namespace obs
}  // namespace relcont

#endif  // RELCONT_OBS_HTTP_H_
