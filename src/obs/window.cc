#include "obs/window.h"

#include <algorithm>
#include <cmath>

namespace relcont {
namespace obs {

uint64_t WindowAggregate::PercentileMicros(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  rank = std::max<uint64_t>(1, std::min(rank, total));
  uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      if (i == kBuckets - 1) return max_micros;
      // The rank sample s satisfies s <= 2^i - 1 and s <= max_micros, so
      // the min is still an upper bound — and p100 reports the exact max.
      return std::min<uint64_t>((1ull << i) - 1, max_micros);
    }
  }
  return max_micros;
}

WindowRing::WindowRing() = default;

void WindowRing::Record(uint64_t now_sec, uint64_t latency_micros) {
  Slot& slot = slots_[now_sec % kSlots];
  for (;;) {
    uint64_t epoch = slot.epoch.load(std::memory_order_acquire);
    if (epoch == now_sec) break;  // Slot already belongs to this second.
    if (epoch == kResettingEpoch) continue;  // Another writer is reclaiming.
    if (epoch != kEmptyEpoch && epoch > now_sec) return;  // We are too late.
    // Stale (or empty) slot: try to claim it for this second.
    if (slot.epoch.compare_exchange_weak(epoch, kResettingEpoch,
                                         std::memory_order_acq_rel)) {
      for (auto& b : slot.buckets) b.store(0, std::memory_order_relaxed);
      slot.sum.store(0, std::memory_order_relaxed);
      slot.max.store(0, std::memory_order_relaxed);
      slot.epoch.store(now_sec, std::memory_order_release);
      break;
    }
  }
  slot.buckets[BucketFor(latency_micros)].fetch_add(1,
                                                    std::memory_order_relaxed);
  slot.sum.fetch_add(latency_micros, std::memory_order_relaxed);
  uint64_t seen = slot.max.load(std::memory_order_relaxed);
  while (seen < latency_micros &&
         !slot.max.compare_exchange_weak(seen, latency_micros,
                                         std::memory_order_relaxed)) {
  }
}

WindowAggregate WindowRing::Aggregate(uint64_t now_sec,
                                      int window_secs) const {
  window_secs = std::max(1, std::min(window_secs, kMaxWindowSecs));
  WindowAggregate out;
  for (int k = 0; k < window_secs; ++k) {
    if (now_sec < static_cast<uint64_t>(k)) break;
    const uint64_t sec = now_sec - static_cast<uint64_t>(k);
    const Slot& slot = slots_[sec % kSlots];
    if (slot.epoch.load(std::memory_order_acquire) != sec) continue;
    for (int i = 0; i < kBuckets; ++i) {
      out.buckets[i] += slot.buckets[i].load(std::memory_order_relaxed);
    }
    out.sum_micros += slot.sum.load(std::memory_order_relaxed);
    const uint64_t m = slot.max.load(std::memory_order_relaxed);
    if (m > out.max_micros) out.max_micros = m;
  }
  return out;
}

}  // namespace obs
}  // namespace relcont
