#include "obs/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/json.h"
#include "obs/exposition.h"
#include "obs/http.h"
#include "trace/trace.h"

namespace relcont {
namespace obs {

namespace {

/// Buffered line reader over a connected socket. Lines are LF-terminated
/// (a trailing CR is stripped, so CRLF clients work too).
class FdLineReader {
 public:
  explicit FdLineReader(int fd) : fd_(fd) {}

  /// False on EOF or error with no pending complete line.
  bool ReadLine(std::string* line) {
    while (true) {
      size_t newline = buffer_.find('\n', pos_);
      if (newline != std::string::npos) {
        size_t end = newline;
        if (end > pos_ && buffer_[end - 1] == '\r') --end;
        line->assign(buffer_, pos_, end - pos_);
        pos_ = newline + 1;
        if (pos_ > 4096) {
          buffer_.erase(0, pos_);
          pos_ = 0;
        }
        return true;
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        timed_out_ = true;  // SO_RCVTIMEO expired mid-read.
        return false;
      }
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
      // A protocol or header line this long is hostile input — bail.
      if (buffer_.size() - pos_ > (1u << 20)) return false;
    }
  }

  /// True once a ReadLine failed because the socket's receive timeout
  /// expired (as opposed to EOF or a hard error).
  bool timed_out() const { return timed_out_; }

 private:
  int fd_;
  std::string buffer_;
  size_t pos_ = 0;
  bool timed_out_ = false;
};

bool SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

}  // namespace

ObsServer::ObsServer(ContainmentService* service, ServerOptions options)
    : service_(service), options_(options) {}

ObsServer::~ObsServer() {
  watchdog_stop_.store(true, std::memory_order_release);
  Shutdown();
  if (drain_watchdog_.joinable()) drain_watchdog_.join();
  ReapConnections(/*all=*/true);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Status ObsServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    Status status = Status::InvalidArgument(
        "cannot bind port " + std::to_string(options_.port) + ": " +
        std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) < 0) {
    Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  // Seed the crash handler's statusz snapshot before traffic; the
  // watchdog refreshes it from here on.
  RefreshFlightStatusz();
  // RequestDrain is async-signal-safe, so it cannot spawn this thread
  // itself — it only flips an atomic the watchdog polls.
  if (!drain_watchdog_.joinable()) {
    drain_watchdog_ = std::thread([this] { DrainWatchdog(); });
  }
  return Status::OK();
}

void ObsServer::Serve() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or a fatal accept error)
    }
    ReapConnections(/*all=*/false);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { HandleConnection(raw); });
  }
  // Drain: wake every live session (their reads fail), then join.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const auto& conn : connections_) {
      if (!conn->done.load(std::memory_order_acquire)) {
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }
  ReapConnections(/*all=*/true);
}

void ObsServer::Shutdown() {
  stopping_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void ObsServer::RequestDrain() {
  draining_.store(true, std::memory_order_release);
  service_->metrics().set_draining(true);
}

void ObsServer::RefreshFlightStatusz() {
  service_->metrics().flight().StoreStatuszSnapshot(RenderStatuszJson(
      service_->metrics().Snapshot(service_->cache().Stats(),
                                   service_->planner().cache().Stats())));
}

void ObsServer::DrainWatchdog() {
  const auto tick = std::chrono::milliseconds(10);
  int ticks = 0;
  while (!watchdog_stop_.load(std::memory_order_acquire) &&
         !stopping_.load(std::memory_order_acquire)) {
    // Keep the crash black box's pre-rendered /statusz copy about a second
    // fresh (the signal handler cannot render one itself).
    if (++ticks >= 100) {
      ticks = 0;
      RefreshFlightStatusz();
    }
    if (draining_.load(std::memory_order_acquire)) {
      // Grace period: /healthz already answers 503, so a router has this
      // long to deregister the node before the listener closes.
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(options_.drain_grace_ms);
      while (std::chrono::steady_clock::now() < deadline &&
             !watchdog_stop_.load(std::memory_order_acquire) &&
             !stopping_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(tick);
      }
      if (!watchdog_stop_.load(std::memory_order_acquire)) Shutdown();
      return;
    }
    std::this_thread::sleep_for(tick);
  }
}

void ObsServer::ReapConnections(bool all) {
  std::list<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (all) {
      finished.swap(connections_);
    } else {
      for (auto it = connections_.begin(); it != connections_.end();) {
        if ((*it)->done.load(std::memory_order_acquire)) {
          finished.push_back(std::move(*it));
          it = connections_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  for (const auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void ObsServer::HandleConnection(Connection* conn) {
  int fd = conn->fd;
  service_->metrics().IncOpenConnections();
  FdLineReader reader(fd);
  std::string line;
  if (reader.ReadLine(&line)) {
    if (LooksLikeHttp(line)) {
      // Hostile-input caps on the request head; a client exceeding them
      // is answered 431, a client stalling mid-head 408. Both rejections
      // are counted so a flood of them is visible in /metrics.
      constexpr size_t kMaxRequestLineBytes = 8192;
      constexpr size_t kMaxHeadBytes = 32768;
      constexpr int kMaxHeaderLines = 100;
      if (line.size() > kMaxRequestLineBytes) {
        service_->metrics().RecordHttpRejected(431);
        SendAll(fd, RenderHttpResponse(431, "text/plain; charset=utf-8",
                                       "request line too long\n"));
      } else {
        if (options_.http_header_timeout_ms > 0) {
          timeval tv{};
          tv.tv_sec = options_.http_header_timeout_ms / 1000;
          tv.tv_usec =
              static_cast<long>(options_.http_header_timeout_ms % 1000) *
              1000;
          ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        }
        // Collect the rest of the request head (headers until blank line).
        std::string head = line;
        head += '\n';
        std::string header;
        bool complete = false;
        bool oversized = false;
        int header_lines = 0;
        while (reader.ReadLine(&header)) {
          if (header.empty()) {
            complete = true;
            break;
          }
          head += header;
          head += '\n';
          if (++header_lines > kMaxHeaderLines ||
              head.size() > kMaxHeadBytes) {
            oversized = true;
            break;
          }
        }
        if (oversized) {
          service_->metrics().RecordHttpRejected(431);
          SendAll(fd, RenderHttpResponse(431, "text/plain; charset=utf-8",
                                         "request head too large\n"));
        } else if (!complete && reader.timed_out()) {
          service_->metrics().RecordHttpRejected(408);
          SendAll(fd, RenderHttpResponse(
                          408, "text/plain; charset=utf-8",
                          "timed out reading request head\n"));
        } else {
          // EOF before the blank line still serves what arrived (legacy
          // behaviour); a malformed head is answered 400 by ServeHttp.
          ServeHttp(fd, head);
        }
      }
    } else {
      // A long-lived protocol session: this connection's own DEFINE
      // namespace and worker arena, against the shared service.
      ServerSession session(service_, options_.batch_threads);
      if (options_.access_log != nullptr) {
        AccessLog* log = options_.access_log;
        session.set_decision_observer(
            [log](const DecisionRequest& request,
                  const DecisionResponse& response) {
              log->Record(request, response);
            });
      }
      do {
        std::string response = session.HandleLine(line);
        if (!response.empty() && !SendAll(fd, response)) break;
      } while (reader.ReadLine(&line));
    }
  }
  ::close(fd);
  service_->metrics().DecOpenConnections();
  conn->done.store(true, std::memory_order_release);
}

void ObsServer::ServeHttp(int fd, const std::string& head) {
  Result<HttpRequest> parsed = ParseHttpRequest(head);
  if (!parsed.ok()) {
    SendAll(fd, RenderHttpResponse(400, "text/plain; charset=utf-8",
                                   parsed.status().ToString() + "\n"));
    return;
  }
  const HttpRequest& request = *parsed;
  bool head_only = request.method == "HEAD";
  if (request.method != "GET" && !head_only) {
    SendAll(fd, RenderHttpResponse(405, "text/plain; charset=utf-8",
                                   "only GET and HEAD are supported\n",
                                   head_only));
    return;
  }
  std::string path = request.path();
  if (path == "/metrics") {
    std::string body = RenderPrometheusText(
        service_->metrics().Snapshot(service_->cache().Stats(),
                                     service_->planner().cache().Stats()));
    SendAll(fd, RenderHttpResponse(
                    200, "text/plain; version=0.0.4; charset=utf-8", body,
                    head_only));
  } else if (path == "/statusz") {
    // Same MetricsSnapshot (and renderer) as the STATUSZ protocol verb,
    // so the two surfaces cannot drift.
    std::string body = RenderStatuszJson(
        service_->metrics().Snapshot(service_->cache().Stats(),
                                     service_->planner().cache().Stats()));
    SendAll(fd, RenderHttpResponse(200, "application/json", body,
                                   head_only));
  } else if (path == "/requestz") {
    // Same renderers as the REQUESTZ protocol verb; the lockstep test in
    // obs_server_test asserts byte equality between the two surfaces.
    // path() strips the query string, so parse ?id=N off the raw target.
    uint64_t id = 0;
    bool bad_query = false;
    const size_t query = request.target.find('?');
    if (query != std::string::npos) {
      const std::string args = request.target.substr(query + 1);
      if (args.rfind("id=", 0) == 0) {
        char* end = nullptr;
        id = std::strtoull(args.c_str() + 3, &end, 10);
        bad_query = end == nullptr || *end != '\0' || id == 0;
      } else {
        bad_query = true;
      }
    }
    if (bad_query) {
      SendAll(fd, RenderHttpResponse(400, "text/plain; charset=utf-8",
                                     "expected /requestz or /requestz?id=N\n",
                                     head_only));
    } else if (id == 0) {
      SendAll(fd, RenderHttpResponse(
                      200, "application/json",
                      RenderRequestzListJson(service_->metrics().flight()),
                      head_only));
    } else if (std::optional<FlightRecorder::Retained> entry =
                   service_->metrics().flight().FindRetained(id)) {
      SendAll(fd, RenderHttpResponse(200, "application/json",
                                     RenderRequestzEventJson(*entry),
                                     head_only));
    } else {
      SendAll(fd, RenderHttpResponse(404, "text/plain; charset=utf-8",
                                     "request id " + std::to_string(id) +
                                         " not retained\n",
                                     head_only));
    }
  } else if (path == "/healthz") {
    if (service_->metrics().draining()) {
      SendAll(fd, RenderHttpResponse(503, "text/plain; charset=utf-8",
                                     "draining\n", head_only));
    } else {
      SendAll(fd, RenderHttpResponse(200, "text/plain; charset=utf-8",
                                     "ok\n", head_only));
    }
  } else if (path == "/buildz") {
    SendAll(fd, RenderHttpResponse(200, "application/json", BuildzJson(),
                                   head_only));
  } else {
    SendAll(fd, RenderHttpResponse(404, "text/plain; charset=utf-8",
                                   "not found — try /metrics, /statusz, "
                                   "/requestz, /healthz, /buildz\n",
                                   head_only));
  }
}

std::string ObsServer::BuildzJson() const {
  MetricsSnapshot snapshot =
      service_->metrics().Snapshot(service_->cache().Stats(),
                                   service_->planner().cache().Stats());
  const ServiceConfig& config = service_->config();
  std::string out = "{\"version\":";
  json::AppendEscaped(snapshot.version, &out);
  out += ",\"trace_compiled_in\":";
  out += trace::kCompiledIn ? "true" : "false";
  out += ",\"trace_requests\":";
  out += config.trace_requests ? "true" : "false";
  out += ",\"start_time_unix_seconds\":";
  out += std::to_string(snapshot.start_time_unix_seconds);
  out += ",\"uptime_seconds\":";
  out += std::to_string(snapshot.uptime_seconds);
  out += ",\"cache_capacity\":";
  out += std::to_string(service_->cache().capacity());
  out += ",\"cache_shards\":";
  out += std::to_string(service_->cache().num_shards());
  out += ",\"batch_threads\":";
  out += std::to_string(options_.batch_threads);
  out += ",\"slow_log_capacity\":";
  out += std::to_string(config.slow_log_capacity);
  out += "}\n";
  return out;
}

}  // namespace obs
}  // namespace relcont
