#include "obs/exposition.h"

#include <cstdarg>
#include <cstdio>

#include "common/json.h"

namespace relcont {
namespace obs {

namespace {

void AppendLine(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void AppendLine(std::string* out, const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list sizing;
  va_copy(sizing, args);
  int needed = std::vsnprintf(nullptr, 0, format, sizing);
  va_end(sizing);
  if (needed > 0) {
    size_t old_size = out->size();
    out->resize(old_size + static_cast<size_t>(needed) + 1);
    std::vsnprintf(out->data() + old_size,
                   static_cast<size_t>(needed) + 1, format, args);
    out->resize(old_size + static_cast<size_t>(needed));
  }
  va_end(args);
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string LabelEscaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

unsigned long long ULL(uint64_t v) {
  return static_cast<unsigned long long>(v);
}

}  // namespace

std::string RenderMetricsText(const MetricsSnapshot& s) {
  std::string out;
  AppendLine(&out, "library_version %s\n", s.version.c_str());
  AppendLine(&out, "start_time_unix_seconds %lld\n",
             static_cast<long long>(s.start_time_unix_seconds));
  AppendLine(&out, "uptime_seconds %.3f\n", s.uptime_seconds);
  AppendLine(&out, "requests_total %llu\nerrors_total %llu\n",
             ULL(s.requests), ULL(s.errors));
  AppendLine(&out, "request_cache_hits %llu\n", ULL(s.request_cache_hits));
  AppendLine(&out, "deadline_exceeded %llu\n", ULL(s.deadline_exceeded));
  AppendLine(&out,
             "parallel_tasks_spawned %llu\nparallel_tasks_completed %llu\n",
             ULL(s.parallel_tasks_spawned), ULL(s.parallel_tasks_completed));
  AppendLine(&out,
             "inflight_requests %lld\nopen_connections %lld\n"
             "batch_queue_depth %lld\n",
             static_cast<long long>(s.inflight_requests),
             static_cast<long long>(s.open_connections),
             static_cast<long long>(s.batch_queue_depth));
  AppendLine(&out, "draining %d\n", s.draining ? 1 : 0);
  AppendLine(&out,
             "http_rejected_431_total %llu\nhttp_rejected_408_total %llu\n",
             ULL(s.http_rejected_431), ULL(s.http_rejected_408));
  for (const RegimeDecisions& regime : s.decisions_by_regime) {
    AppendLine(&out, "decisions_by_regime{%s} %llu\n", regime.regime.c_str(),
               ULL(regime.count));
  }
  AppendLine(&out,
             "plan_requests_total %llu\nrewrite_requests_total %llu\n"
             "plan_errors_total %llu\nunknown_verbs_total %llu\n",
             ULL(s.plan_requests), ULL(s.rewrite_requests),
             ULL(s.plan_errors), ULL(s.unknown_verbs));
  AppendLine(&out,
             "dense_order_propagations_total %llu\n"
             "dense_order_pruned_branches_total %llu\n"
             "dense_order_bound_hits_total %llu\n",
             ULL(s.dense_order_propagations),
             ULL(s.dense_order_pruned_branches),
             ULL(s.dense_order_bound_hits));
  AppendLine(&out,
             "cegar_iterations_total %llu\n"
             "cegar_blocking_clauses_total %llu\n"
             "cegar_proposals_total %llu\n",
             ULL(s.cegar_iterations), ULL(s.cegar_blocking_clauses),
             ULL(s.cegar_proposals));
  for (const BoundSiteCount& site : s.bound_sites) {
    AppendLine(&out, "bound_hits_total{site=\"%s\"} %llu\n",
               site.site.c_str(), ULL(site.count));
  }
  AppendLine(&out,
             "flight_retained_total %llu\nflight_dropped_total %llu\n"
             "flight_arena_bytes %llu\n",
             ULL(s.flight_retained), ULL(s.flight_dropped),
             ULL(s.flight_arena_bytes));
  for (const WindowLatency& w : s.window_latency) {
    AppendLine(&out,
               "window_latency_requests{verb=\"%s\",regime=\"%s\","
               "window=\"%ds\"} %llu\n",
               w.verb.c_str(), w.regime.c_str(), w.window_secs,
               ULL(w.count));
    AppendLine(&out,
               "window_latency_us{verb=\"%s\",regime=\"%s\",window=\"%ds\","
               "q=\"p50\"} %llu\n",
               w.verb.c_str(), w.regime.c_str(), w.window_secs,
               ULL(w.p50_micros));
    AppendLine(&out,
               "window_latency_us{verb=\"%s\",regime=\"%s\",window=\"%ds\","
               "q=\"p90\"} %llu\n",
               w.verb.c_str(), w.regime.c_str(), w.window_secs,
               ULL(w.p90_micros));
    AppendLine(&out,
               "window_latency_us{verb=\"%s\",regime=\"%s\",window=\"%ds\","
               "q=\"p99\"} %llu\n",
               w.verb.c_str(), w.regime.c_str(), w.window_secs,
               ULL(w.p99_micros));
    AppendLine(&out,
               "window_latency_us{verb=\"%s\",regime=\"%s\",window=\"%ds\","
               "q=\"max\"} %llu\n",
               w.verb.c_str(), w.regime.c_str(), w.window_secs,
               ULL(w.max_micros));
  }
  AppendLine(&out,
             "cache_hits %llu\ncache_misses %llu\ncache_evictions "
             "%llu\ncache_entries %llu\n",
             ULL(s.cache.hits), ULL(s.cache.misses), ULL(s.cache.evictions),
             ULL(s.cache.entries));
  AppendLine(&out,
             "plan_cache_hits %llu\nplan_cache_misses %llu\n"
             "plan_cache_evictions %llu\nplan_cache_invalidated %llu\n"
             "plan_cache_entries %llu\n",
             ULL(s.plan_cache.hits), ULL(s.plan_cache.misses),
             ULL(s.plan_cache.evictions), ULL(s.plan_cache.invalidated),
             ULL(s.plan_cache.entries));
  for (const HistogramBucket& bucket : s.latency_buckets) {
    if (bucket.unbounded) {
      AppendLine(&out, "latency_us_bucket{le=\"+Inf\"} %llu\n",
                 ULL(bucket.cumulative_count));
    } else {
      AppendLine(&out, "latency_us_bucket{le=\"%llu\"} %llu\n",
                 ULL(bucket.le), ULL(bucket.cumulative_count));
    }
  }
  AppendLine(&out, "latency_us_sum %llu\nlatency_us_count %llu\n",
             ULL(s.latency_sum_micros), ULL(s.latency_count));
  for (const TraceCounterTotal& t : s.trace_counter_totals) {
    AppendLine(&out,
               "trace_counter_total{regime=\"%s\",counter=\"%s\"} %llu\n",
               t.regime.c_str(), t.counter.c_str(), ULL(t.total));
  }
  for (const PhaseSnapshot& phase : s.phases) {
    AppendLine(&out,
               "trace_phase_ns{phase=\"%s\"} %llu\n"
               "trace_phase_calls{phase=\"%s\"} %llu\n",
               phase.name.c_str(), ULL(phase.ns), phase.name.c_str(),
               ULL(phase.calls));
  }
  for (size_t i = 0; i < s.slow_log.size(); ++i) {
    const SlowEntry& slow = s.slow_log[i];
    AppendLine(&out,
               "slow_request{rank=%llu,latency_us=%llu,regime=\"%s\","
               "id=%llu} ",
               ULL(i), ULL(slow.latency_micros), slow.regime.c_str(),
               ULL(slow.request_id));
    out += slow.description;
    out += '\n';
    // The span tree, indented so a scraper can skip continuation lines.
    size_t begin = 0;
    while (begin < slow.trace_text.size()) {
      size_t end = slow.trace_text.find('\n', begin);
      if (end == std::string::npos) end = slow.trace_text.size();
      out += "    ";
      out.append(slow.trace_text, begin, end - begin);
      out += '\n';
      begin = end + 1;
    }
  }
  return out;
}

std::string RenderPrometheusText(const MetricsSnapshot& s) {
  std::string out;
  AppendLine(&out,
             "# HELP relcont_build_info Build identity of the containment "
             "service (value is always 1).\n"
             "# TYPE relcont_build_info gauge\n"
             "relcont_build_info{version=\"%s\",trace=\"%s\"} 1\n",
             LabelEscaped(s.version).c_str(),
             s.trace_compiled_in ? "on" : "off");
  AppendLine(&out,
             "# HELP relcont_start_time_seconds Unix time the service "
             "started.\n"
             "# TYPE relcont_start_time_seconds gauge\n"
             "relcont_start_time_seconds %lld\n",
             static_cast<long long>(s.start_time_unix_seconds));
  AppendLine(&out,
             "# HELP relcont_uptime_seconds Seconds since service start.\n"
             "# TYPE relcont_uptime_seconds gauge\n"
             "relcont_uptime_seconds %.3f\n",
             s.uptime_seconds);
  AppendLine(&out,
             "# HELP relcont_requests_total Containment requests answered "
             "(including errors).\n"
             "# TYPE relcont_requests_total counter\n"
             "relcont_requests_total %llu\n",
             ULL(s.requests));
  AppendLine(&out,
             "# HELP relcont_errors_total Requests answered with a non-OK "
             "status.\n"
             "# TYPE relcont_errors_total counter\n"
             "relcont_errors_total %llu\n",
             ULL(s.errors));
  AppendLine(&out,
             "# HELP relcont_request_cache_hits_total Requests served from "
             "the decision cache.\n"
             "# TYPE relcont_request_cache_hits_total counter\n"
             "relcont_request_cache_hits_total %llu\n",
             ULL(s.request_cache_hits));
  AppendLine(&out,
             "# HELP relcont_deadline_exceeded_total Requests whose "
             "deadline expired before the decision completed.\n"
             "# TYPE relcont_deadline_exceeded_total counter\n"
             "relcont_deadline_exceeded_total %llu\n",
             ULL(s.deadline_exceeded));
  AppendLine(&out,
             "# HELP relcont_parallel_tasks_spawned_total Parallel helper "
             "tasks spawned by decisions.\n"
             "# TYPE relcont_parallel_tasks_spawned_total counter\n"
             "relcont_parallel_tasks_spawned_total %llu\n",
             ULL(s.parallel_tasks_spawned));
  AppendLine(&out,
             "# HELP relcont_parallel_tasks_completed_total Parallel helper "
             "tasks joined by decisions (equals spawned when idle).\n"
             "# TYPE relcont_parallel_tasks_completed_total counter\n"
             "relcont_parallel_tasks_completed_total %llu\n",
             ULL(s.parallel_tasks_completed));
  AppendLine(&out,
             "# HELP relcont_inflight_requests Requests currently being "
             "decided.\n"
             "# TYPE relcont_inflight_requests gauge\n"
             "relcont_inflight_requests %lld\n"
             "# HELP relcont_open_connections TCP connections currently "
             "open on the obs server.\n"
             "# TYPE relcont_open_connections gauge\n"
             "relcont_open_connections %lld\n"
             "# HELP relcont_batch_queue_depth Batch items queued but not "
             "yet claimed by a worker.\n"
             "# TYPE relcont_batch_queue_depth gauge\n"
             "relcont_batch_queue_depth %lld\n",
             static_cast<long long>(s.inflight_requests),
             static_cast<long long>(s.open_connections),
             static_cast<long long>(s.batch_queue_depth));
  AppendLine(&out,
             "# HELP relcont_draining 1 between SIGTERM drain start and "
             "listener close, else 0.\n"
             "# TYPE relcont_draining gauge\n"
             "relcont_draining %d\n",
             s.draining ? 1 : 0);
  AppendLine(&out,
             "# HELP relcont_http_rejected_total HTTP requests rejected by "
             "the parser hardening, by status code.\n"
             "# TYPE relcont_http_rejected_total counter\n"
             "relcont_http_rejected_total{code=\"431\"} %llu\n"
             "relcont_http_rejected_total{code=\"408\"} %llu\n",
             ULL(s.http_rejected_431), ULL(s.http_rejected_408));
  out +=
      "# HELP relcont_decisions_total Decisions per paper regime.\n"
      "# TYPE relcont_decisions_total counter\n";
  for (const RegimeDecisions& regime : s.decisions_by_regime) {
    AppendLine(&out, "relcont_decisions_total{regime=\"%s\"} %llu\n",
               LabelEscaped(regime.regime).c_str(), ULL(regime.count));
  }
  AppendLine(&out,
             "# HELP relcont_cache_hits_total Decision-cache lookup hits.\n"
             "# TYPE relcont_cache_hits_total counter\n"
             "relcont_cache_hits_total %llu\n"
             "# HELP relcont_cache_misses_total Decision-cache lookup "
             "misses.\n"
             "# TYPE relcont_cache_misses_total counter\n"
             "relcont_cache_misses_total %llu\n"
             "# HELP relcont_cache_evictions_total LRU evictions from the "
             "decision cache.\n"
             "# TYPE relcont_cache_evictions_total counter\n"
             "relcont_cache_evictions_total %llu\n"
             "# HELP relcont_cache_entries Entries currently resident in "
             "the decision cache.\n"
             "# TYPE relcont_cache_entries gauge\n"
             "relcont_cache_entries %llu\n",
             ULL(s.cache.hits), ULL(s.cache.misses), ULL(s.cache.evictions),
             ULL(s.cache.entries));
  AppendLine(&out,
             "# HELP relcont_plan_requests_total PLAN? requests answered "
             "(including errors).\n"
             "# TYPE relcont_plan_requests_total counter\n"
             "relcont_plan_requests_total %llu\n"
             "# HELP relcont_rewrite_requests_total REWRITE? requests "
             "answered (including errors).\n"
             "# TYPE relcont_rewrite_requests_total counter\n"
             "relcont_rewrite_requests_total %llu\n"
             "# HELP relcont_plan_errors_total Planner requests answered "
             "with a non-OK status.\n"
             "# TYPE relcont_plan_errors_total counter\n"
             "relcont_plan_errors_total %llu\n"
             "# HELP relcont_unknown_verb_total Protocol lines rejected "
             "because no handler claims their verb.\n"
             "# TYPE relcont_unknown_verb_total counter\n"
             "relcont_unknown_verb_total %llu\n",
             ULL(s.plan_requests), ULL(s.rewrite_requests),
             ULL(s.plan_errors), ULL(s.unknown_verbs));
  AppendLine(&out,
             "# HELP relcont_plan_cache_hits_total Plan-cache lookup hits.\n"
             "# TYPE relcont_plan_cache_hits_total counter\n"
             "relcont_plan_cache_hits_total %llu\n"
             "# HELP relcont_plan_cache_misses_total Plan-cache lookup "
             "misses.\n"
             "# TYPE relcont_plan_cache_misses_total counter\n"
             "relcont_plan_cache_misses_total %llu\n"
             "# HELP relcont_plan_cache_evictions_total LRU evictions from "
             "the plan cache.\n"
             "# TYPE relcont_plan_cache_evictions_total counter\n"
             "relcont_plan_cache_evictions_total %llu\n"
             "# HELP relcont_plan_cache_invalidated_total Plan-cache "
             "entries dropped by catalog re-registration.\n"
             "# TYPE relcont_plan_cache_invalidated_total counter\n"
             "relcont_plan_cache_invalidated_total %llu\n"
             "# HELP relcont_plan_cache_entries Entries currently resident "
             "in the plan cache.\n"
             "# TYPE relcont_plan_cache_entries gauge\n"
             "relcont_plan_cache_entries %llu\n",
             ULL(s.plan_cache.hits), ULL(s.plan_cache.misses),
             ULL(s.plan_cache.evictions), ULL(s.plan_cache.invalidated),
             ULL(s.plan_cache.entries));
  AppendLine(&out,
             "# HELP relcont_dense_order_propagations_total Pair-matrix "
             "cell narrowings performed by the dense-order engine.\n"
             "# TYPE relcont_dense_order_propagations_total counter\n"
             "relcont_dense_order_propagations_total %llu\n"
             "# HELP relcont_dense_order_pruned_branches_total Linearization "
             "DFS class placements rejected by the closed pair matrix.\n"
             "# TYPE relcont_dense_order_pruned_branches_total counter\n"
             "relcont_dense_order_pruned_branches_total %llu\n"
             "# HELP relcont_dense_order_bound_hits_total Linearization "
             "streams cut short by a budget or the structural node cap.\n"
             "# TYPE relcont_dense_order_bound_hits_total counter\n"
             "relcont_dense_order_bound_hits_total %llu\n",
             ULL(s.dense_order_propagations),
             ULL(s.dense_order_pruned_branches),
             ULL(s.dense_order_bound_hits));
  AppendLine(&out,
             "# HELP relcont_cegar_iterations_total Cover checks performed "
             "by the CEGAR counterexample search (loop iterations).\n"
             "# TYPE relcont_cegar_iterations_total counter\n"
             "relcont_cegar_iterations_total %llu\n"
             "# HELP relcont_cegar_blocking_clauses_total Blocking clauses "
             "learned from successful covers.\n"
             "# TYPE relcont_cegar_blocking_clauses_total counter\n"
             "relcont_cegar_blocking_clauses_total %llu\n"
             "# HELP relcont_cegar_proposals_total Candidate source "
             "instances proposed by the CEGAR search (DFS leaves).\n"
             "# TYPE relcont_cegar_proposals_total counter\n"
             "relcont_cegar_proposals_total %llu\n",
             ULL(s.cegar_iterations), ULL(s.cegar_blocking_clauses),
             ULL(s.cegar_proposals));
  if (!s.bound_sites.empty()) {
    out +=
        "# HELP relcont_bound_hits_total Bound trips per budget site "
        "(the [site] tag of kBoundReached statuses).\n"
        "# TYPE relcont_bound_hits_total counter\n";
    for (const BoundSiteCount& site : s.bound_sites) {
      AppendLine(&out, "relcont_bound_hits_total{site=\"%s\"} %llu\n",
                 LabelEscaped(site.site).c_str(), ULL(site.count));
    }
  }
  AppendLine(&out,
             "# HELP relcont_flight_retained_total Requests retained in the "
             "flight-recorder arena (tail-sampled or head-sampled).\n"
             "# TYPE relcont_flight_retained_total counter\n"
             "relcont_flight_retained_total %llu\n"
             "# HELP relcont_flight_dropped_total Flight-recorder drops: "
             "arena evictions plus oversized entries.\n"
             "# TYPE relcont_flight_dropped_total counter\n"
             "relcont_flight_dropped_total %llu\n"
             "# HELP relcont_flight_arena_bytes Bytes currently resident in "
             "the flight-recorder retention arena.\n"
             "# TYPE relcont_flight_arena_bytes gauge\n"
             "relcont_flight_arena_bytes %llu\n",
             ULL(s.flight_retained), ULL(s.flight_dropped),
             ULL(s.flight_arena_bytes));
  if (!s.window_latency.empty()) {
    out +=
        "# HELP relcont_window_latency_requests Requests recorded in the "
        "trailing window per verb and regime.\n"
        "# TYPE relcont_window_latency_requests gauge\n";
    for (const WindowLatency& w : s.window_latency) {
      AppendLine(&out,
                 "relcont_window_latency_requests{verb=\"%s\",regime=\"%s\","
                 "window=\"%ds\"} %llu\n",
                 LabelEscaped(w.verb).c_str(), LabelEscaped(w.regime).c_str(),
                 w.window_secs, ULL(w.count));
    }
    out +=
        "# HELP relcont_window_latency_microseconds Windowed latency "
        "quantiles per verb and regime (upper-bound bucket estimates; max "
        "is exact).\n"
        "# TYPE relcont_window_latency_microseconds gauge\n";
    for (const WindowLatency& w : s.window_latency) {
      const struct {
        const char* q;
        uint64_t value;
      } rows[] = {{"p50", w.p50_micros},
                  {"p90", w.p90_micros},
                  {"p99", w.p99_micros},
                  {"max", w.max_micros}};
      for (const auto& row : rows) {
        AppendLine(&out,
                   "relcont_window_latency_microseconds{verb=\"%s\","
                   "regime=\"%s\",window=\"%ds\",quantile=\"%s\"} %llu\n",
                   LabelEscaped(w.verb).c_str(),
                   LabelEscaped(w.regime).c_str(), w.window_secs, row.q,
                   ULL(row.value));
      }
    }
  }
  out +=
      "# HELP relcont_request_latency_microseconds Request latency "
      "(cumulative power-of-two buckets).\n"
      "# TYPE relcont_request_latency_microseconds histogram\n";
  for (const HistogramBucket& bucket : s.latency_buckets) {
    if (bucket.unbounded) {
      AppendLine(&out,
                 "relcont_request_latency_microseconds_bucket{le=\"+Inf\"} "
                 "%llu\n",
                 ULL(bucket.cumulative_count));
    } else {
      AppendLine(&out,
                 "relcont_request_latency_microseconds_bucket{le=\"%llu\"} "
                 "%llu\n",
                 ULL(bucket.le), ULL(bucket.cumulative_count));
    }
  }
  AppendLine(&out,
             "relcont_request_latency_microseconds_sum %llu\n"
             "relcont_request_latency_microseconds_count %llu\n",
             ULL(s.latency_sum_micros), ULL(s.latency_count));
  if (!s.trace_counter_totals.empty()) {
    out +=
        "# HELP relcont_trace_counter_total Trace counter totals per "
        "regime (see docs/OBSERVABILITY.md for the glossary).\n"
        "# TYPE relcont_trace_counter_total counter\n";
    for (const TraceCounterTotal& t : s.trace_counter_totals) {
      AppendLine(&out,
                 "relcont_trace_counter_total{regime=\"%s\",counter=\"%s\"} "
                 "%llu\n",
                 LabelEscaped(t.regime).c_str(),
                 LabelEscaped(t.counter).c_str(), ULL(t.total));
    }
  }
  if (!s.phases.empty()) {
    out +=
        "# HELP relcont_trace_phase_nanoseconds_total Cumulative time per "
        "pipeline phase across recorded traces.\n"
        "# TYPE relcont_trace_phase_nanoseconds_total counter\n";
    for (const PhaseSnapshot& phase : s.phases) {
      AppendLine(&out,
                 "relcont_trace_phase_nanoseconds_total{phase=\"%s\"} %llu\n",
                 LabelEscaped(phase.name).c_str(), ULL(phase.ns));
    }
    out +=
        "# HELP relcont_trace_phase_calls_total Recorded spans per "
        "pipeline phase.\n"
        "# TYPE relcont_trace_phase_calls_total counter\n";
    for (const PhaseSnapshot& phase : s.phases) {
      AppendLine(&out,
                 "relcont_trace_phase_calls_total{phase=\"%s\"} %llu\n",
                 LabelEscaped(phase.name).c_str(), ULL(phase.calls));
    }
  }
  return out;
}

namespace {

double HitRate(uint64_t hits, uint64_t misses) {
  const uint64_t lookups = hits + misses;
  if (lookups == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(lookups);
}

}  // namespace

std::string RenderStatuszJson(const MetricsSnapshot& s) {
  std::string out;
  out += "{\"version\":";
  json::AppendEscaped(s.version, &out);
  AppendLine(&out,
             ",\"trace_compiled_in\":%s"
             ",\"start_time_unix_seconds\":%lld"
             ",\"uptime_seconds\":%.3f"
             ",\"draining\":%s",
             s.trace_compiled_in ? "true" : "false",
             static_cast<long long>(s.start_time_unix_seconds),
             s.uptime_seconds, s.draining ? "true" : "false");
  AppendLine(&out, ",\"windows\":{\"short_secs\":%d,\"long_secs\":%d",
             s.short_window_secs, s.long_window_secs);
  out += ",\"latency\":[";
  for (size_t i = 0; i < s.window_latency.size(); ++i) {
    const WindowLatency& w = s.window_latency[i];
    if (i > 0) out += ',';
    out += "{\"verb\":";
    json::AppendEscaped(w.verb, &out);
    out += ",\"regime\":";
    json::AppendEscaped(w.regime, &out);
    AppendLine(&out,
               ",\"window_secs\":%d,\"count\":%llu,\"p50_us\":%llu,"
               "\"p90_us\":%llu,\"p99_us\":%llu,\"max_us\":%llu}",
               w.window_secs, ULL(w.count), ULL(w.p50_micros),
               ULL(w.p90_micros), ULL(w.p99_micros), ULL(w.max_micros));
  }
  out += "]}";
  AppendLine(&out,
             ",\"gauges\":{\"inflight_requests\":%lld,"
             "\"open_connections\":%lld,\"batch_queue_depth\":%lld}",
             static_cast<long long>(s.inflight_requests),
             static_cast<long long>(s.open_connections),
             static_cast<long long>(s.batch_queue_depth));
  AppendLine(&out,
             ",\"requests\":{\"total\":%llu,\"errors\":%llu,"
             "\"cache_hits\":%llu,\"deadline_exceeded\":%llu,"
             "\"plan_requests\":%llu,\"rewrite_requests\":%llu,"
             "\"plan_errors\":%llu,\"unknown_verbs\":%llu}",
             ULL(s.requests), ULL(s.errors), ULL(s.request_cache_hits),
             ULL(s.deadline_exceeded), ULL(s.plan_requests),
             ULL(s.rewrite_requests), ULL(s.plan_errors),
             ULL(s.unknown_verbs));
  AppendLine(&out,
             ",\"cache\":{\"hits\":%llu,\"misses\":%llu,\"evictions\":%llu,"
             "\"entries\":%llu,\"hit_rate\":%.4f}",
             ULL(s.cache.hits), ULL(s.cache.misses), ULL(s.cache.evictions),
             ULL(s.cache.entries), HitRate(s.cache.hits, s.cache.misses));
  AppendLine(&out,
             ",\"plan_cache\":{\"hits\":%llu,\"misses\":%llu,"
             "\"evictions\":%llu,\"invalidated\":%llu,\"entries\":%llu,"
             "\"hit_rate\":%.4f}",
             ULL(s.plan_cache.hits), ULL(s.plan_cache.misses),
             ULL(s.plan_cache.evictions), ULL(s.plan_cache.invalidated),
             ULL(s.plan_cache.entries),
             HitRate(s.plan_cache.hits, s.plan_cache.misses));
  AppendLine(&out,
             ",\"http\":{\"rejected_431\":%llu,\"rejected_408\":%llu}",
             ULL(s.http_rejected_431), ULL(s.http_rejected_408));
  AppendLine(&out,
             ",\"flight\":{\"retained_total\":%llu,\"dropped_total\":%llu,"
             "\"arena_bytes\":%llu}",
             ULL(s.flight_retained), ULL(s.flight_dropped),
             ULL(s.flight_arena_bytes));
  AppendLine(&out,
             ",\"cegar\":{\"iterations\":%llu,\"blocking_clauses\":%llu,"
             "\"proposals\":%llu}",
             ULL(s.cegar_iterations), ULL(s.cegar_blocking_clauses),
             ULL(s.cegar_proposals));
  out += ",\"bound_sites\":[";
  for (size_t i = 0; i < s.bound_sites.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"site\":";
    json::AppendEscaped(s.bound_sites[i].site, &out);
    AppendLine(&out, ",\"count\":%llu}", ULL(s.bound_sites[i].count));
  }
  out += "],\"slow_requests\":[";
  for (size_t i = 0; i < s.slow_log.size(); ++i) {
    const SlowEntry& slow = s.slow_log[i];
    if (i > 0) out += ',';
    AppendLine(&out, "{\"latency_us\":%llu,\"regime\":",
               ULL(slow.latency_micros));
    json::AppendEscaped(slow.regime, &out);
    AppendLine(&out, ",\"request_id\":%llu", ULL(slow.request_id));
    out += ",\"description\":";
    json::AppendEscaped(slow.description, &out);
    out += ",\"phases\":[";
    for (size_t j = 0; j < slow.top_phases.size(); ++j) {
      const PhaseSnapshot& phase = slow.top_phases[j];
      if (j > 0) out += ',';
      out += "{\"name\":";
      json::AppendEscaped(phase.name, &out);
      AppendLine(&out, ",\"ns\":%llu,\"calls\":%llu}", ULL(phase.ns),
                 ULL(phase.calls));
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

namespace {

/// Renders one wide event through the shared AS-safe renderer, so the
/// /requestz surface and the crash dump emit byte-identical objects.
void AppendWideEvent(const WideEvent& event, std::string* out) {
  char buf[2048];
  out->append(buf, RenderWideEventJson(event, buf, sizeof buf));
}

}  // namespace

std::string RenderRequestzListJson(const FlightRecorder& recorder) {
  std::string out;
  AppendLine(&out,
             "{\"flight\":{\"ring_capacity\":%llu,\"recorded_total\":%llu,"
             "\"retained_total\":%llu,\"dropped_total\":%llu,"
             "\"arena_bytes\":%llu,\"arena_max_bytes\":%llu",
             ULL(recorder.ring_capacity()), ULL(recorder.recorded_total()),
             ULL(recorder.retained_total()), ULL(recorder.dropped_total()),
             ULL(recorder.arena_bytes()), ULL(recorder.arena_max_bytes()));
  out += ",\"retained_ids\":[";
  const std::vector<uint64_t> ids = recorder.RetainedIds();
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ',';
    AppendLine(&out, "%llu", ULL(ids[i]));
  }
  out += "]},\"events\":[";
  const std::vector<WideEvent> events = recorder.RecentEvents();
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += ',';
    AppendWideEvent(events[i], &out);
  }
  out += "]}\n";
  return out;
}

std::string RenderRequestzEventJson(const FlightRecorder::Retained& entry) {
  std::string out = "{\"event\":";
  AppendWideEvent(entry.event, &out);
  out += ",\"trace_text\":";
  json::AppendEscaped(entry.trace_text, &out);
  out += ",\"chrome_trace\":";
  if (entry.chrome_json.empty()) {
    out += "null";
  } else {
    // The exporter's JSON document, embedded raw (trailing newline
    // stripped so the embedding stays a single line).
    std::string_view chrome = entry.chrome_json;
    while (!chrome.empty() &&
           (chrome.back() == '\n' || chrome.back() == ' ')) {
      chrome.remove_suffix(1);
    }
    out.append(chrome);
  }
  out += "}\n";
  return out;
}

}  // namespace obs
}  // namespace relcont
