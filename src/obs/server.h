#ifndef RELCONT_OBS_SERVER_H_
#define RELCONT_OBS_SERVER_H_

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/access_log.h"
#include "service/protocol.h"
#include "service/service.h"

namespace relcont {
namespace obs {

struct ServerOptions {
  /// TCP port to listen on; 0 asks the kernel for an ephemeral port (read
  /// it back with port() after Start — the test harness does).
  int port = 0;
  /// Fan-out width of BATCH END inside each protocol session.
  int batch_threads = 4;
  /// Optional shared access log (not owned); every session's decisions
  /// are recorded through it.
  AccessLog* access_log = nullptr;
};

/// The networked front end of the containment service: one TCP listener
/// that speaks two dialects, distinguished by the first line a client
/// sends.
///
///   * A containment-protocol line (CATALOG, DEFINE, CONTAINED?, ...)
///     turns the connection into a long-lived protocol session — one
///     ServerSession per connection, so DEFINEs are session-local and
///     many clients run concurrently against the shared service.
///   * An HTTP request line serves one observability request and closes:
///     GET /metrics (Prometheus text exposition, rendered from the same
///     MetricsSnapshot as the METRICS verb), GET /healthz, GET /buildz.
///
/// Lifecycle: Start() binds and listens; Serve() blocks accepting
/// connections until Shutdown() (async-signal-safe: callable from a
/// SIGINT/SIGTERM handler) closes the listener; Serve() then shuts down
/// every live connection and joins all session threads before returning.
class ObsServer {
 public:
  ObsServer(ContainmentService* service, ServerOptions options);
  ~ObsServer();

  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;

  /// Binds and listens. After this, port() is the actual bound port.
  Status Start();
  int port() const { return port_; }

  /// Accept loop; blocks until Shutdown. One thread per connection.
  void Serve();

  /// Stops the accept loop. Async-signal-safe (an atomic store and a
  /// shutdown(2) on the listening socket).
  void Shutdown();

 private:
  struct Connection {
    int fd = -1;
    std::atomic<bool> done{false};
    std::thread thread;
  };

  void HandleConnection(Connection* conn);
  void ServeHttp(int fd, const std::string& head);
  std::string BuildzJson() const;
  /// Joins finished connection threads; `all` waits for the rest too.
  void ReapConnections(bool all);

  ContainmentService* service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::mutex conn_mu_;
  std::list<std::unique_ptr<Connection>> connections_;
};

}  // namespace obs
}  // namespace relcont

#endif  // RELCONT_OBS_SERVER_H_
