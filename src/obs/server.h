#ifndef RELCONT_OBS_SERVER_H_
#define RELCONT_OBS_SERVER_H_

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/access_log.h"
#include "service/protocol.h"
#include "service/service.h"

namespace relcont {
namespace obs {

struct ServerOptions {
  /// TCP port to listen on; 0 asks the kernel for an ephemeral port (read
  /// it back with port() after Start — the test harness does).
  int port = 0;
  /// Fan-out width of BATCH END inside each protocol session.
  int batch_threads = 4;
  /// Optional shared access log (not owned); every session's decisions
  /// are recorded through it.
  AccessLog* access_log = nullptr;
  /// How long RequestDrain keeps the listener open (answering /healthz
  /// with 503 "draining") before closing it, so a router can deregister
  /// the node first. 0 closes immediately.
  int drain_grace_ms = 0;
  /// Receive timeout while reading an HTTP request head; a client that
  /// stalls mid-request is answered 408 and dropped. <= 0 disables.
  int http_header_timeout_ms = 5000;
};

/// The networked front end of the containment service: one TCP listener
/// that speaks two dialects, distinguished by the first line a client
/// sends.
///
///   * A containment-protocol line (CATALOG, DEFINE, CONTAINED?, ...)
///     turns the connection into a long-lived protocol session — one
///     ServerSession per connection, so DEFINEs are session-local and
///     many clients run concurrently against the shared service.
///   * An HTTP request line serves one observability request and closes:
///     GET /metrics (Prometheus text exposition, rendered from the same
///     MetricsSnapshot as the METRICS verb), GET /statusz (JSON, same
///     snapshot as the STATUSZ verb), GET /healthz (503 while draining),
///     GET /buildz. Oversized request heads are answered 431 and slow
///     clients 408 — both counted in the metrics.
///
/// Lifecycle: Start() binds and listens; Serve() blocks accepting
/// connections until Shutdown() (async-signal-safe: callable from a
/// SIGINT/SIGTERM handler) closes the listener; Serve() then shuts down
/// every live connection and joins all session threads before returning.
class ObsServer {
 public:
  ObsServer(ContainmentService* service, ServerOptions options);
  ~ObsServer();

  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;

  /// Binds and listens. After this, port() is the actual bound port.
  Status Start();
  int port() const { return port_; }

  /// Accept loop; blocks until Shutdown. One thread per connection.
  void Serve();

  /// Stops the accept loop. Async-signal-safe (an atomic store and a
  /// shutdown(2) on the listening socket).
  void Shutdown();

  /// Begins a graceful drain: /healthz flips to 503 "draining" immediately
  /// (so load balancers stop routing here), and after drain_grace_ms the
  /// watchdog thread calls Shutdown(). Async-signal-safe (two atomic
  /// stores); callable from a SIGTERM handler. Idempotent.
  void RequestDrain();

 private:
  struct Connection {
    int fd = -1;
    std::atomic<bool> done{false};
    std::thread thread;
  };

  void HandleConnection(Connection* conn);
  void ServeHttp(int fd, const std::string& head);
  std::string BuildzJson() const;
  /// Joins finished connection threads; `all` waits for the rest too.
  void ReapConnections(bool all);
  /// Body of the drain watchdog thread: waits for RequestDrain, sleeps
  /// out the grace period, then calls Shutdown(). Also refreshes the
  /// flight recorder's pre-rendered statusz snapshot about once a second.
  void DrainWatchdog();
  /// Re-renders /statusz into the flight recorder's crash-dump buffer.
  void RefreshFlightStatusz();

  ContainmentService* service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> watchdog_stop_{false};
  std::thread drain_watchdog_;
  std::mutex conn_mu_;
  std::list<std::unique_ptr<Connection>> connections_;
};

}  // namespace obs
}  // namespace relcont

#endif  // RELCONT_OBS_SERVER_H_
