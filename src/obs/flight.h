#ifndef RELCONT_OBS_FLIGHT_H_
#define RELCONT_OBS_FLIGHT_H_

/// Request-scoped flight recorder: the per-request forensic layer under
/// REQUESTZ / GET /requestz (docs/OBSERVABILITY.md, "Flight recorder").
///
/// Three pieces, each with a distinct durability/cost contract:
///
///   * a monotonic REQUEST ID counter, minted once per service request and
///     threaded end to end (response lines, traces, access log, slow
///     digest, error lines);
///   * a lock-free RING of fixed-size WIDE EVENTS — one per request, every
///     field an operator needs to triage a tail sample (verb, regime,
///     catalog+version, cache hit, bound site, latency, worker count,
///     phase digest). Writers pay a ticket fetch_add, a seqlock claim, and
///     ~33 relaxed word stores; readers validate the seqlock so a torn
///     event is skipped, never surfaced;
///   * a bounded RETENTION ARENA holding the full span tree (text + Chrome
///     trace JSON) for the requests worth keeping: errored, kBoundReached,
///     slower than the live trailing-window p99, or the cheap head sample.
///     FIFO-evicted under a byte cap so a burst of slow requests cannot
///     grow memory without bound.
///
/// The ring doubles as a crash BLACK BOX: DumpTo(fd) walks it with only
/// async-signal-safe operations, so the SIGSEGV/SIGABRT handler installed
/// by InstallCrashHandler can write the last N wide events plus a
/// pre-rendered /statusz snapshot to --crash-dump before the process dies.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace relcont {
namespace obs {

/// One request's worth of telemetry, fixed-size and trivially copyable so
/// it can live in the atomic-word ring and be rendered from a signal
/// handler. String fields are truncating copies — long catalog names keep
/// their prefix, which is enough to pivot into CATALOG?.
struct WideEvent {
  static constexpr int kMaxPhases = 4;
  static constexpr size_t kVerbChars = 12;
  static constexpr size_t kRegimeChars = 16;
  static constexpr size_t kCatalogChars = 32;
  static constexpr size_t kSiteChars = 32;
  static constexpr size_t kPhaseChars = 24;

  uint64_t request_id = 0;
  uint64_t ts_unix_micros = 0;
  uint64_t latency_micros = 0;
  int64_t catalog_version = 0;
  uint32_t worker_count = 0;
  uint8_t error = 0;      ///< non-OK status
  uint8_t cache_hit = 0;
  uint8_t traced = 0;     ///< a span tree was collected for this request
  uint8_t bound = 0;      ///< status was kBoundReached
  char verb[kVerbChars] = {};        ///< "contained" | "plan" | "rewrite"
  char regime[kRegimeChars] = {};
  char catalog[kCatalogChars] = {};
  char bound_site[kSiteChars] = {};  ///< the [site] tag of a bound status

  /// Top-of-tree phase digest (root span and its direct children,
  /// aggregated by name, largest first) when the request was traced.
  struct Phase {
    char name[kPhaseChars] = {};
    uint64_t ns = 0;
  };
  Phase phases[kMaxPhases] = {};

  static void CopyInto(char* dst, size_t cap, std::string_view src) {
    size_t n = src.size() < cap - 1 ? src.size() : cap - 1;
    std::memcpy(dst, src.data(), n);
    dst[n] = '\0';
  }
  void set_verb(std::string_view v) { CopyInto(verb, kVerbChars, v); }
  void set_regime(std::string_view v) { CopyInto(regime, kRegimeChars, v); }
  void set_catalog(std::string_view v) {
    CopyInto(catalog, kCatalogChars, v);
  }
  void set_bound_site(std::string_view v) {
    CopyInto(bound_site, kSiteChars, v);
  }
};
static_assert(sizeof(WideEvent) % 8 == 0, "ring slots are 64-bit words");

/// Renders `event` as one JSON object into `buf` (capacity `cap`,
/// NUL-terminated, truncating) and returns the rendered length. Uses no
/// allocation, locale, or errno — async-signal-safe — and is the ONE wide
/// event renderer: /requestz and the crash dump both call it, so the two
/// surfaces cannot drift (tools/metrics_lint pins the keys against the
/// OBSERVABILITY.md schema table).
size_t RenderWideEventJson(const WideEvent& event, char* buf, size_t cap);

class FlightRecorder {
 public:
  struct Options {
    size_t ring_capacity = 1024;     ///< rounded up to a power of two
    size_t arena_max_bytes = 512 * 1024;
    uint64_t head_sample_every = 64; ///< 0 disables head sampling
  };

  /// A retained request: the wide event plus its full span renderings
  /// (empty strings when the request was not traced).
  struct Retained {
    WideEvent event;
    std::string trace_text;
    std::string chrome_json;
  };

  FlightRecorder() : FlightRecorder(Options{}) {}
  explicit FlightRecorder(const Options& options);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Reallocates the ring and rebinds the caps. Call before any traffic
  /// (the service constructor does); not safe concurrently with Record.
  void Configure(const Options& options);

  /// Mints the next request id (monotonic from 1, process-wide per
  /// recorder — one recorder per service, shared by all verbs).
  uint64_t NextRequestId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records one wide event into the ring. Lock-free; a writer that loses
  /// the (one-full-lap) slot race drops its write, never tears another's.
  void Record(const WideEvent& event);

  /// Retains the full span renderings for one request in the FIFO arena.
  /// Evicts oldest entries past the byte cap (each eviction counts as a
  /// drop); an entry larger than the whole arena is dropped outright.
  void Retain(const WideEvent& event, std::string trace_text,
              std::string chrome_json);

  /// True for the cheap head sample (every Nth id) that keeps some healthy
  /// requests in the arena for baseline comparison.
  bool ShouldHeadSample(uint64_t request_id) const {
    return head_sample_every_ != 0 &&
           request_id % head_sample_every_ == 1 % head_sample_every_;
  }

  /// The most recent ring events, newest first, torn/empty slots skipped.
  std::vector<WideEvent> RecentEvents(size_t max_events = 128) const;

  /// The retained entry for `request_id`, if still resident.
  std::optional<Retained> FindRetained(uint64_t request_id) const;
  /// Ids currently resident in the arena, newest first.
  std::vector<uint64_t> RetainedIds() const;

  uint64_t recorded_total() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  uint64_t retained_total() const {
    return retained_.load(std::memory_order_relaxed);
  }
  uint64_t dropped_total() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  uint64_t arena_bytes() const {
    return arena_bytes_gauge_.load(std::memory_order_relaxed);
  }
  size_t ring_capacity() const { return capacity_; }
  size_t arena_max_bytes() const { return arena_max_bytes_; }
  uint64_t head_sample_every() const { return head_sample_every_; }

  /// Stores a pre-rendered /statusz JSON document for the crash dump. The
  /// signal handler cannot render one (RenderStatuszJson allocates), so
  /// the obs server refreshes this copy about once a second.
  void StoreStatuszSnapshot(std::string_view json);

  /// Writes the crash black box to `fd`: a header line, the stored statusz
  /// snapshot, one "EVENT {...}" line per ring event (newest first), and
  /// an "END" line. Async-signal-safe: write(2), atomic loads, and stack
  /// buffers only.
  void DumpTo(int fd, int signal) const;

 private:
  static constexpr size_t kPayloadWords = (sizeof(WideEvent) + 7) / 8;
  static constexpr size_t kSlotWords = kPayloadWords + 1;  // +1: seqlock
  static constexpr size_t kStatuszCap = 65536;

  /// Seqlock-validated slot read; false on empty, mid-write, or torn.
  bool ReadSlot(size_t slot_index, WideEvent* out) const;

  size_t capacity_ = 0;  // power of two
  size_t mask_ = 0;
  size_t arena_max_bytes_ = 0;
  uint64_t head_sample_every_ = 0;

  std::unique_ptr<std::atomic<uint64_t>[]> ring_;
  std::atomic<uint64_t> head_{0};      // next ticket
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> retained_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> arena_bytes_gauge_{0};

  mutable std::mutex arena_mu_;
  std::deque<Retained> arena_;   // guarded by arena_mu_
  size_t arena_used_bytes_ = 0;  // guarded by arena_mu_

  std::mutex statusz_mu_;  // serializes writers; the AS reader takes none
  std::atomic<uint64_t> statusz_seq_{0};
  std::atomic<size_t> statusz_len_{0};
  char statusz_buf_[kStatuszCap];
};

/// Installs the SIGSEGV/SIGABRT crash handler: on either signal the
/// handler writes `recorder`'s black box (DumpTo) to `dump_path` (opened
/// now, truncating; stderr when null/empty or unopenable), then re-raises
/// with the default disposition so the process still dies by the original
/// signal. SA_RESETHAND keeps a crash inside the handler from looping.
void InstallCrashHandler(FlightRecorder* recorder, const char* dump_path);

}  // namespace obs
}  // namespace relcont

#endif  // RELCONT_OBS_FLIGHT_H_
