#include "obs/http.h"

#include <cctype>

namespace relcont {
namespace obs {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view TrimSpace(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::string HttpRequest::path() const {
  size_t query = target.find('?');
  return query == std::string::npos ? target : target.substr(0, query);
}

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [header, value] : headers) {
    if (header == name) return &value;
  }
  return nullptr;
}

bool LooksLikeHttp(std::string_view first_line) {
  // "<METHOD> <target> HTTP/x.y" — the trailing version token is the
  // discriminator; no containment-protocol line ends with one.
  size_t pos = first_line.rfind(" HTTP/");
  if (pos == std::string_view::npos) return false;
  static constexpr std::string_view kMethods[] = {
      "GET ", "HEAD ", "POST ", "PUT ", "DELETE ", "OPTIONS ", "PATCH "};
  for (std::string_view method : kMethods) {
    if (first_line.substr(0, method.size()) == method) return true;
  }
  return false;
}

Result<HttpRequest> ParseHttpRequest(std::string_view head) {
  HttpRequest request;
  size_t line_end = head.find('\n');
  std::string_view request_line =
      TrimSpace(head.substr(0, line_end));
  size_t method_end = request_line.find(' ');
  if (method_end == std::string_view::npos) {
    return Status::InvalidArgument("http: malformed request line");
  }
  size_t target_end = request_line.find(' ', method_end + 1);
  if (target_end == std::string_view::npos) {
    return Status::InvalidArgument("http: request line missing version");
  }
  request.method = std::string(request_line.substr(0, method_end));
  request.target = std::string(
      request_line.substr(method_end + 1, target_end - method_end - 1));
  request.version = std::string(request_line.substr(target_end + 1));
  if (request.target.empty() || request.target[0] != '/') {
    return Status::InvalidArgument("http: target must be origin-form");
  }
  if (request.version.substr(0, 5) != "HTTP/") {
    return Status::InvalidArgument("http: bad version token");
  }
  while (line_end != std::string_view::npos) {
    size_t begin = line_end + 1;
    line_end = head.find('\n', begin);
    std::string_view line = TrimSpace(head.substr(
        begin, line_end == std::string_view::npos ? std::string_view::npos
                                                  : line_end - begin));
    if (line.empty()) break;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("http: header line missing ':'");
    }
    request.headers.emplace_back(
        ToLower(TrimSpace(line.substr(0, colon))),
        std::string(TrimSpace(line.substr(colon + 1))));
  }
  return request;
}

std::string_view HttpReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string RenderHttpResponse(int status, std::string_view content_type,
                               std::string_view body, bool head_only) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += HttpReason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  if (!head_only) out += body;
  return out;
}

}  // namespace obs
}  // namespace relcont
