#ifndef RELCONT_OBS_EXPOSITION_H_
#define RELCONT_OBS_EXPOSITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight.h"
#include "planner/plan_cache.h"
#include "service/decision_cache.h"

namespace relcont {
namespace obs {

/// relcont::obs — networked telemetry for the containment service (see
/// docs/OBSERVABILITY.md). This header defines the one snapshot type both
/// metric surfaces render from: the METRICS protocol verb and the
/// Prometheus `/metrics` endpoint serialize the same MetricsSnapshot, so
/// their counters cannot drift apart.

/// Cumulative per-phase timer, aggregated over every recorded trace.
struct PhaseSnapshot {
  std::string name;
  uint64_t ns = 0;
  uint64_t calls = 0;
};

/// Decisions attributed to one regime (only nonzero regimes appear).
struct RegimeDecisions {
  std::string regime;
  uint64_t count = 0;
};

/// Total of one trace counter across every trace recorded under a regime.
struct TraceCounterTotal {
  std::string regime;
  std::string counter;
  uint64_t total = 0;
};

/// One cumulative latency-histogram bucket, Prometheus style: the count of
/// requests with latency <= `le` microseconds (`unbounded` marks +Inf).
struct HistogramBucket {
  bool unbounded = false;
  uint64_t le = 0;
  uint64_t cumulative_count = 0;
};

/// One slow-log entry (worst traced requests, worst first).
struct SlowEntry {
  uint64_t latency_micros = 0;
  std::string regime;
  /// Flight-recorder request id (0 when unknown) — the /requestz?id=N
  /// pivot for this entry.
  uint64_t request_id = 0;
  std::string description;
  std::string trace_text;
  /// The request's dominant phases (root span + its direct children,
  /// aggregated by name, worst first) — the /statusz-sized digest of
  /// trace_text.
  std::vector<PhaseSnapshot> top_phases;
};

/// Windowed latency percentiles for one (verb, regime, window) cell.
/// `regime == "all"` folds every regime of the verb into one row; per-verb
/// "all" rows are always present, per-regime rows only when nonempty.
struct WindowLatency {
  std::string verb;    ///< "contained" | "plan" | "rewrite"
  std::string regime;  ///< RegimeName(...) or "all"
  int window_secs = 0;
  uint64_t count = 0;
  uint64_t p50_micros = 0;
  uint64_t p90_micros = 0;
  uint64_t p99_micros = 0;
  uint64_t max_micros = 0;
};

/// Cumulative bound trips attributed to one budget site (the `[site]` tag
/// minted by BoundReachedAt in common/budget.h).
struct BoundSiteCount {
  std::string site;
  uint64_t count = 0;
};

/// A point-in-time copy of every service counter plus build/uptime
/// identity. Plain data: renderers need nothing beyond this struct.
struct MetricsSnapshot {
  std::string version;
  bool trace_compiled_in = false;
  int64_t start_time_unix_seconds = 0;
  double uptime_seconds = 0;

  uint64_t requests = 0;
  uint64_t errors = 0;
  /// Cache hits observed at the request level (a subset of cache.hits,
  /// which also counts probes made outside Decide).
  uint64_t request_cache_hits = 0;
  /// Requests whose per-request deadline (timeout_ms / the server default)
  /// expired before the decision completed.
  uint64_t deadline_exceeded = 0;
  /// Parallel helper tasks spawned/completed by decisions. Equal whenever
  /// the service is idle: every helper is joined before its request
  /// returns (pool quiescence).
  uint64_t parallel_tasks_spawned = 0;
  uint64_t parallel_tasks_completed = 0;
  /// Planner verb totals (PLAN? / REWRITE?) and protocol lines rejected
  /// for an unknown verb. Planner latencies fold into the shared latency
  /// histogram below.
  uint64_t plan_requests = 0;
  uint64_t rewrite_requests = 0;
  uint64_t plan_errors = 0;
  uint64_t unknown_verbs = 0;
  /// Process-wide dense-order engine counters (constraints/dense_order.h):
  /// pair-matrix cell narrowings, DFS class placements rejected by the
  /// closed matrix, and linearization streams cut short by a budget or the
  /// structural node cap.
  uint64_t dense_order_propagations = 0;
  uint64_t dense_order_pruned_branches = 0;
  uint64_t dense_order_bound_hits = 0;
  /// Process-wide CEGAR engine counters (relcont/cegar.h): cover checks
  /// performed, blocking clauses learned, and candidate instances
  /// proposed by the counterexample search.
  uint64_t cegar_iterations = 0;
  uint64_t cegar_blocking_clauses = 0;
  uint64_t cegar_proposals = 0;
  std::vector<RegimeDecisions> decisions_by_regime;
  CacheStats cache;
  /// Counters of the planner's plan cache (all zero without a planner).
  PlanCacheStats plan_cache;

  std::vector<HistogramBucket> latency_buckets;
  uint64_t latency_sum_micros = 0;
  uint64_t latency_count = 0;

  std::vector<TraceCounterTotal> trace_counter_totals;
  std::vector<PhaseSnapshot> phases;
  std::vector<SlowEntry> slow_log;

  /// Sliding-window percentiles (src/obs/window.h): the trailing
  /// short/long windows, one row per (verb, regime, window) with traffic
  /// plus always-present per-verb "all" rows.
  int short_window_secs = 0;
  int long_window_secs = 0;
  std::vector<WindowLatency> window_latency;

  /// Live gauges: requests currently inside Service::Decide, TCP
  /// connections currently open on the obs server, and batch items queued
  /// but not yet claimed by a worker.
  int64_t inflight_requests = 0;
  int64_t open_connections = 0;
  int64_t batch_queue_depth = 0;
  /// True between SIGTERM drain start and listener close (/healthz 503).
  bool draining = false;

  /// HTTP requests rejected by the parser hardening: oversized request
  /// line/headers (431) and slow clients cut off mid-request (408).
  uint64_t http_rejected_431 = 0;
  uint64_t http_rejected_408 = 0;

  /// Cumulative bound trips per budget site, lexicographic by site.
  std::vector<BoundSiteCount> bound_sites;

  /// Flight-recorder totals (src/obs/flight.h): arena entries retained,
  /// events/entries dropped (ring slot races + arena evictions +
  /// oversized entries), and current arena residency in bytes (a gauge).
  uint64_t flight_retained = 0;
  uint64_t flight_dropped = 0;
  uint64_t flight_arena_bytes = 0;
};

/// The METRICS verb rendering: the line-oriented text dump served over the
/// protocol (and historically by ServiceMetrics::Dump, which now forwards
/// here).
std::string RenderMetricsText(const MetricsSnapshot& snapshot);

/// The Prometheus text exposition (format version 0.0.4) served by
/// `GET /metrics`: `# HELP`/`# TYPE` headers, `relcont_`-prefixed series,
/// escaped label values, the cumulative `le` histogram, and a
/// `relcont_build_info` identity gauge. The slow log is omitted — it is
/// free-form text, not a numeric series.
std::string RenderPrometheusText(const MetricsSnapshot& snapshot);

/// The introspection rendering served by the `STATUSZ` protocol verb and
/// `GET /statusz`: one JSON object (newline-terminated) summarizing
/// uptime, windowed percentiles, gauges, cache hit rates, bound-site
/// attribution, and the recent slow requests with their top-phase
/// breakdown. Same MetricsSnapshot as the other two renderers, so the
/// three surfaces cannot drift.
std::string RenderStatuszJson(const MetricsSnapshot& snapshot);

/// The /requestz (and REQUESTZ verb) list rendering: one JSON object
/// (newline-terminated) with the recorder's counters, the retained ids
/// (newest first), and the recent ring wide events (newest first, rendered
/// by RenderWideEventJson so the crash dump cannot drift from this
/// surface).
std::string RenderRequestzListJson(const FlightRecorder& recorder);

/// The /requestz?id=N (and REQUESTZ <id>) drill-down rendering: the
/// retained wide event plus its full span renderings — `trace_text` as a
/// JSON string, `chrome_trace` as the embedded Chrome trace object (null
/// when the request was not traced).
std::string RenderRequestzEventJson(const FlightRecorder::Retained& entry);

}  // namespace obs
}  // namespace relcont

#endif  // RELCONT_OBS_EXPOSITION_H_
