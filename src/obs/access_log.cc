#include "obs/access_log.h"

#include <chrono>
#include <cstdio>
#include <map>
#include <vector>

#include "common/budget.h"
#include "common/json.h"

namespace relcont {
namespace obs {

namespace {

int64_t NowUnixMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void AppendField(std::string* out, const char* name, bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  json::AppendEscaped(name, out);
  out->push_back(':');
}

}  // namespace

Result<std::unique_ptr<AccessLog>> AccessLog::Open(AccessLogOptions options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("access log needs a file path");
  }
  if (options.sample == 0) {
    return Status::InvalidArgument("access-log sample rate must be >= 1");
  }
  std::FILE* file = std::fopen(options.path.c_str(), "ab");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open access log '" +
                                   options.path + "'");
  }
  std::fseek(file, 0, SEEK_END);
  long size = std::ftell(file);
  uint64_t bytes = size > 0 ? static_cast<uint64_t>(size) : 0;
  return std::unique_ptr<AccessLog>(
      new AccessLog(std::move(options), file, bytes));
}

AccessLog::AccessLog(AccessLogOptions options, std::FILE* file,
                     uint64_t initial_bytes)
    : options_(std::move(options)), file_(file), bytes_(initial_bytes) {}

AccessLog::~AccessLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
}

std::string AccessLog::RenderEvent(uint64_t id, int64_t unix_micros,
                                   const DecisionRequest& request,
                                   const DecisionResponse& response) {
  std::string out = "{";
  bool first = true;
  AppendField(&out, "id", &first);
  out += std::to_string(id);
  AppendField(&out, "request_id", &first);
  out += std::to_string(response.request_id);
  AppendField(&out, "ts_unix_micros", &first);
  out += std::to_string(unix_micros);
  AppendField(&out, "catalog", &first);
  json::AppendEscaped(request.catalog, &out);
  AppendField(&out, "catalog_version", &first);
  out += std::to_string(response.catalog_version);
  AppendField(&out, "q1", &first);
  json::AppendEscaped(request.q1_text, &out);
  AppendField(&out, "q2", &first);
  json::AppendEscaped(request.q2_text, &out);
  AppendField(&out, "regime", &first);
  json::AppendEscaped(RegimeName(response.regime), &out);
  AppendField(&out, "contained", &first);
  out += response.contained ? "true" : "false";
  AppendField(&out, "cache_hit", &first);
  out += response.cache_hit ? "true" : "false";
  AppendField(&out, "latency_us", &first);
  out += std::to_string(response.latency_micros);
  AppendField(&out, "error", &first);
  json::AppendEscaped(
      response.status.ok() ? std::string() : response.status.ToString(),
      &out);
  AppendField(&out, "bound_site", &first);
  json::AppendEscaped(BoundSiteFromStatus(response.status), &out);
  if (response.trace != nullptr && !response.trace->spans().empty()) {
    // Top-level breakdown only: the root span plus its direct children
    // (aggregated by name) — the full tree belongs to EXPLAIN, not to a
    // per-request log line.
    std::vector<std::pair<std::string, uint64_t>> phases;
    std::map<std::string, size_t> index;
    for (const trace::SpanNode& span : response.trace->spans()) {
      if (span.depth > 1) continue;
      auto [it, inserted] = index.emplace(span.name, phases.size());
      if (inserted) phases.emplace_back(span.name, 0);
      phases[it->second].second += span.duration_ns();
    }
    AppendField(&out, "phases", &first);
    out.push_back('[');
    for (size_t i = 0; i < phases.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += "{\"phase\":";
      json::AppendEscaped(phases[i].first, &out);
      out += ",\"ns\":";
      out += std::to_string(phases[i].second);
      out.push_back('}');
    }
    out.push_back(']');
  }
  out.push_back('}');
  return out;
}

void AccessLog::Record(const DecisionRequest& request,
                       const DecisionResponse& response) {
  uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if ((id - 1) % options_.sample != 0) return;
  std::string line = RenderEvent(id, NowUnixMicros(), request, response);
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  if (bytes_ > 0 && bytes_ + line.size() > options_.max_bytes) {
    RotateLocked();
  }
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  bytes_ += line.size();
}

void AccessLog::RotateLocked() {
  std::fclose(file_);
  file_ = nullptr;
  std::string rotated = options_.path + ".1";
  std::remove(rotated.c_str());
  std::rename(options_.path.c_str(), rotated.c_str());
  file_ = std::fopen(options_.path.c_str(), "wb");
  bytes_ = 0;
}

}  // namespace obs
}  // namespace relcont
