#ifndef RELCONT_OBS_ACCESS_LOG_H_
#define RELCONT_OBS_ACCESS_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "service/service.h"

namespace relcont {
namespace obs {

struct AccessLogOptions {
  std::string path;
  /// Log one of every `sample` requests (1 = every request). Sampling is
  /// deterministic on the monotonic request id, so a given id is either
  /// always logged or never — reruns of a workload produce the same ids
  /// in the log.
  uint64_t sample = 1;
  /// Rotate when the current file would exceed this many bytes: the file
  /// is renamed to `<path>.1` (replacing any previous rotation) and a
  /// fresh file is opened. Two generations bound disk usage at ~2x.
  uint64_t max_bytes = 64ull << 20;
};

/// A structured JSONL access log: one JSON object per line, one line per
/// containment decision (schema in docs/OBSERVABILITY.md). Writes are
/// mutex-serialized and flushed per line; the expensive part of a decision
/// dwarfs the logging cost, and sampling exists for workloads where it
/// does not. Thread-safe — one instance is shared by every session.
class AccessLog {
 public:
  /// Opens (appends to) `options.path`.
  static Result<std::unique_ptr<AccessLog>> Open(AccessLogOptions options);

  ~AccessLog();

  /// Assigns the next monotonic request id and, if the id is sampled,
  /// writes one event line. Matches the DecisionObserver signature.
  void Record(const DecisionRequest& request,
              const DecisionResponse& response);

  /// Total requests seen (logged or sampled away).
  uint64_t requests_seen() const {
    return next_id_.load(std::memory_order_relaxed) - 1;
  }

  /// Renders the event line (no trailing newline) exactly as Record writes
  /// it, with the given id and timestamp. Exposed for tests.
  static std::string RenderEvent(uint64_t id, int64_t unix_micros,
                                 const DecisionRequest& request,
                                 const DecisionResponse& response);

 private:
  explicit AccessLog(AccessLogOptions options, std::FILE* file,
                     uint64_t initial_bytes);

  void RotateLocked();

  AccessLogOptions options_;
  std::atomic<uint64_t> next_id_{1};
  std::mutex mu_;
  std::FILE* file_;       // guarded by mu_
  uint64_t bytes_ = 0;    // size of the current file, guarded by mu_
};

}  // namespace obs
}  // namespace relcont

#endif  // RELCONT_OBS_ACCESS_LOG_H_
