#ifndef RELCONT_OBS_WINDOW_H_
#define RELCONT_OBS_WINDOW_H_

/// Sliding-window latency telemetry: a ring of per-second slots, each a
/// power-of-two latency histogram, so the service can answer "what is p99
/// *right now*" instead of since-process-start. Writers are lock-free
/// (atomic adds into the current second's slot); readers aggregate the
/// trailing N seconds into a WindowAggregate and take percentiles from the
/// bucket boundaries.
///
/// Time is supplied by the caller as a plain seconds counter, which makes
/// the whole structure deterministic under a fake clock (tests/window_test).
///
/// Percentile semantics: buckets mirror service::LatencyHistogram — bucket 0
/// holds [0,1) microseconds and bucket i holds [2^(i-1), 2^i) — and the
/// reported quantile is the inclusive upper bound (2^i - 1) of the bucket
/// containing the rank-ceil(q*count) sample, clamped by the observed
/// maximum. The estimate is therefore never below the true quantile and
/// less than 2x above it; the top (unbounded) bucket reports the exact
/// observed max.

#include <atomic>
#include <cstdint>

namespace relcont {
namespace obs {

/// A merged, immutable view over one or more window rings: plain counters,
/// cheap to copy, percentile math lives here.
struct WindowAggregate {
  static constexpr int kBuckets = 24;

  uint64_t buckets[kBuckets] = {};
  uint64_t sum_micros = 0;
  uint64_t max_micros = 0;

  /// Total samples in the aggregate (sum of the buckets — kept derived so
  /// count and percentile ranks can never disagree).
  uint64_t count() const {
    uint64_t total = 0;
    for (int i = 0; i < kBuckets; ++i) total += buckets[i];
    return total;
  }

  /// Adds `other` into this aggregate (used to fold per-regime rings into
  /// a per-verb "all" row).
  void Merge(const WindowAggregate& other) {
    for (int i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
    sum_micros += other.sum_micros;
    if (other.max_micros > max_micros) max_micros = other.max_micros;
  }

  /// Upper-bound estimate of the q-quantile in microseconds (0 < q <= 1).
  /// Returns 0 when the aggregate is empty. Guaranteed >= the true
  /// quantile of the recorded samples and < 2x + 1 above it.
  uint64_t PercentileMicros(double q) const;
};

/// Lock-free ring of per-second histogram slots. Each slot is tagged with
/// the absolute second it describes; recording into a new second reclaims
/// the slot via a CAS-guarded reset, so stale data from kSlots seconds ago
/// can never leak into a fresh window. Readers only trust a slot whose
/// epoch tag matches the second they are summing.
class WindowRing {
 public:
  static constexpr int kSlots = 128;
  static constexpr int kBuckets = WindowAggregate::kBuckets;
  /// Largest trustworthy trailing window: one slot is always the current
  /// (partial) second and one guards against wrap-around reclaim races.
  static constexpr int kMaxWindowSecs = kSlots - 2;

  WindowRing();
  WindowRing(const WindowRing&) = delete;
  WindowRing& operator=(const WindowRing&) = delete;

  /// Records one sample against the second `now_sec`. Thread-safe and
  /// lock-free; a sample racing against a slot already claimed by a newer
  /// second is dropped (it is at least kSlots seconds late).
  void Record(uint64_t now_sec, uint64_t latency_micros);

  /// Sums the trailing `window_secs` seconds ending at (and including)
  /// `now_sec`. window_secs is clamped to [1, kMaxWindowSecs].
  WindowAggregate Aggregate(uint64_t now_sec, int window_secs) const;

  /// The histogram bucket for a latency (same law as
  /// service::LatencyHistogram): bucket 0 is [0,1)us, bucket i is
  /// [2^(i-1), 2^i)us, the last bucket is unbounded.
  static int BucketFor(uint64_t micros) {
    int bucket = 0;
    while (bucket < kBuckets - 1 && micros >= (1ull << bucket)) ++bucket;
    return bucket;
  }

 private:
  // Epoch sentinels: kEmptyEpoch marks a never-used slot, kResettingEpoch
  // marks a slot mid-reclaim (writers spin, readers skip).
  static constexpr uint64_t kEmptyEpoch = ~0ull;
  static constexpr uint64_t kResettingEpoch = ~0ull - 1;

  struct Slot {
    std::atomic<uint64_t> epoch{kEmptyEpoch};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
    std::atomic<uint64_t> buckets[kBuckets];
    Slot() {
      for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
    }
  };

  Slot slots_[kSlots];
};

}  // namespace obs
}  // namespace relcont

#endif  // RELCONT_OBS_WINDOW_H_
