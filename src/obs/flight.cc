#include "obs/flight.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>

namespace relcont {
namespace obs {

namespace {

// --- async-signal-safe formatting helpers -----------------------------------
// All of these append into a caller-owned buffer, truncate at cap-1, and
// return the new logical position (which may exceed cap-1 after
// truncation; writes past the cap are suppressed, the final NUL is not).

size_t AppendChar(char* buf, size_t cap, size_t pos, char c) {
  if (pos + 1 < cap) buf[pos] = c;
  return pos + 1;
}

size_t AppendStr(char* buf, size_t cap, size_t pos, const char* s) {
  for (; *s != '\0'; ++s) pos = AppendChar(buf, cap, pos, *s);
  return pos;
}

size_t AppendU64(char* buf, size_t cap, size_t pos, uint64_t v) {
  char digits[20];
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) pos = AppendChar(buf, cap, pos, digits[--n]);
  return pos;
}

size_t AppendI64(char* buf, size_t cap, size_t pos, int64_t v) {
  if (v < 0) {
    pos = AppendChar(buf, cap, pos, '-');
    return AppendU64(buf, cap, pos, static_cast<uint64_t>(-(v + 1)) + 1);
  }
  return AppendU64(buf, cap, pos, static_cast<uint64_t>(v));
}

/// Quoted JSON string from a NUL-terminated field. Escapes quote and
/// backslash; control characters are dropped (the fields are protocol
/// tokens and span names, so this loses nothing in practice and keeps the
/// renderer signal-safe and allocation-free).
size_t AppendJsonStr(char* buf, size_t cap, size_t pos, const char* s) {
  pos = AppendChar(buf, cap, pos, '"');
  for (; *s != '\0'; ++s) {
    unsigned char c = static_cast<unsigned char>(*s);
    if (c < 0x20) continue;
    if (c == '"' || c == '\\') pos = AppendChar(buf, cap, pos, '\\');
    pos = AppendChar(buf, cap, pos, static_cast<char>(c));
  }
  return AppendChar(buf, cap, pos, '"');
}

size_t AppendBool(char* buf, size_t cap, size_t pos, bool v) {
  return AppendStr(buf, cap, pos, v ? "true" : "false");
}

/// write(2) the whole buffer, retrying on short writes and EINTR.
void WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    ssize_t n = ::write(fd, data, len);
    if (n <= 0) return;  // nothing recoverable to do in a signal handler
    data += n;
    len -= static_cast<size_t>(n);
  }
}

}  // namespace

size_t RenderWideEventJson(const WideEvent& e, char* buf, size_t cap) {
  size_t pos = 0;
  pos = AppendStr(buf, cap, pos, "{\"request_id\":");
  pos = AppendU64(buf, cap, pos, e.request_id);
  pos = AppendStr(buf, cap, pos, ",\"ts_unix_micros\":");
  pos = AppendU64(buf, cap, pos, e.ts_unix_micros);
  pos = AppendStr(buf, cap, pos, ",\"verb\":");
  pos = AppendJsonStr(buf, cap, pos, e.verb);
  pos = AppendStr(buf, cap, pos, ",\"regime\":");
  pos = AppendJsonStr(buf, cap, pos, e.regime);
  pos = AppendStr(buf, cap, pos, ",\"catalog\":");
  pos = AppendJsonStr(buf, cap, pos, e.catalog);
  pos = AppendStr(buf, cap, pos, ",\"catalog_version\":");
  pos = AppendI64(buf, cap, pos, e.catalog_version);
  pos = AppendStr(buf, cap, pos, ",\"latency_us\":");
  pos = AppendU64(buf, cap, pos, e.latency_micros);
  pos = AppendStr(buf, cap, pos, ",\"workers\":");
  pos = AppendU64(buf, cap, pos, e.worker_count);
  pos = AppendStr(buf, cap, pos, ",\"cache_hit\":");
  pos = AppendBool(buf, cap, pos, e.cache_hit != 0);
  pos = AppendStr(buf, cap, pos, ",\"error\":");
  pos = AppendBool(buf, cap, pos, e.error != 0);
  pos = AppendStr(buf, cap, pos, ",\"bound\":");
  pos = AppendBool(buf, cap, pos, e.bound != 0);
  pos = AppendStr(buf, cap, pos, ",\"bound_site\":");
  pos = AppendJsonStr(buf, cap, pos, e.bound_site);
  pos = AppendStr(buf, cap, pos, ",\"traced\":");
  pos = AppendBool(buf, cap, pos, e.traced != 0);
  pos = AppendStr(buf, cap, pos, ",\"phases\":[");
  bool first = true;
  for (const WideEvent::Phase& phase : e.phases) {
    if (phase.name[0] == '\0') continue;
    if (!first) pos = AppendChar(buf, cap, pos, ',');
    first = false;
    pos = AppendStr(buf, cap, pos, "{\"name\":");
    pos = AppendJsonStr(buf, cap, pos, phase.name);
    pos = AppendStr(buf, cap, pos, ",\"ns\":");
    pos = AppendU64(buf, cap, pos, phase.ns);
    pos = AppendChar(buf, cap, pos, '}');
  }
  pos = AppendStr(buf, cap, pos, "]}");
  size_t len = pos < cap - 1 ? pos : cap - 1;
  buf[len] = '\0';
  return len;
}

FlightRecorder::FlightRecorder(const Options& options) {
  statusz_buf_[0] = '\0';
  Configure(options);
}

void FlightRecorder::Configure(const Options& options) {
  size_t capacity = 1;
  while (capacity < options.ring_capacity) capacity <<= 1;
  capacity_ = capacity;
  mask_ = capacity - 1;
  arena_max_bytes_ = options.arena_max_bytes;
  head_sample_every_ = options.head_sample_every;
  // Value-initialized: every seq word starts 0 (empty slot).
  ring_.reset(new std::atomic<uint64_t>[capacity_ * kSlotWords]());
  head_.store(0, std::memory_order_relaxed);
}

void FlightRecorder::Record(const WideEvent& event) {
  recorded_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  std::atomic<uint64_t>* slot = &ring_[(ticket & mask_) * kSlotWords];
  uint64_t seq = slot[0].load(std::memory_order_relaxed);
  // Claim the slot by bumping the seqlock to odd. A concurrent claimant is
  // a writer exactly one ring lap away; the loser drops its write — its
  // event would have been overwritten within a lap anyway, and dropping
  // preserves the invariant that payload words have exactly one writer.
  if ((seq & 1) != 0 ||
      !slot[0].compare_exchange_strong(seq, seq + 1,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
    return;
  }
  uint64_t words[kPayloadWords] = {};
  std::memcpy(words, &event, sizeof(WideEvent));
  for (size_t i = 0; i < kPayloadWords; ++i) {
    slot[1 + i].store(words[i], std::memory_order_relaxed);
  }
  slot[0].store(seq + 2, std::memory_order_release);
}

bool FlightRecorder::ReadSlot(size_t slot_index, WideEvent* out) const {
  const std::atomic<uint64_t>* slot = &ring_[slot_index * kSlotWords];
  const uint64_t seq = slot[0].load(std::memory_order_acquire);
  if (seq == 0 || (seq & 1) != 0) return false;
  uint64_t words[kPayloadWords];
  for (size_t i = 0; i < kPayloadWords; ++i) {
    words[i] = slot[1 + i].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot[0].load(std::memory_order_relaxed) != seq) return false;
  std::memcpy(out, words, sizeof(WideEvent));
  return true;
}

std::vector<WideEvent> FlightRecorder::RecentEvents(
    size_t max_events) const {
  std::vector<WideEvent> out;
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t lap = std::min<uint64_t>(head, capacity_);
  for (uint64_t i = 0; i < lap && out.size() < max_events; ++i) {
    const uint64_t ticket = head - 1 - i;
    WideEvent event;
    if (ReadSlot(ticket & mask_, &event)) out.push_back(event);
  }
  return out;
}

void FlightRecorder::Retain(const WideEvent& event, std::string trace_text,
                            std::string chrome_json) {
  const size_t bytes =
      sizeof(WideEvent) + trace_text.size() + chrome_json.size();
  std::lock_guard<std::mutex> lock(arena_mu_);
  if (bytes > arena_max_bytes_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  arena_.push_back({event, std::move(trace_text), std::move(chrome_json)});
  arena_used_bytes_ += bytes;
  while (arena_used_bytes_ > arena_max_bytes_ && !arena_.empty()) {
    const Retained& victim = arena_.front();
    arena_used_bytes_ -= sizeof(WideEvent) + victim.trace_text.size() +
                         victim.chrome_json.size();
    arena_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  retained_.fetch_add(1, std::memory_order_relaxed);
  arena_bytes_gauge_.store(arena_used_bytes_, std::memory_order_relaxed);
}

std::optional<FlightRecorder::Retained> FlightRecorder::FindRetained(
    uint64_t request_id) const {
  std::lock_guard<std::mutex> lock(arena_mu_);
  for (auto it = arena_.rbegin(); it != arena_.rend(); ++it) {
    if (it->event.request_id == request_id) return *it;
  }
  return std::nullopt;
}

std::vector<uint64_t> FlightRecorder::RetainedIds() const {
  std::lock_guard<std::mutex> lock(arena_mu_);
  std::vector<uint64_t> out;
  out.reserve(arena_.size());
  for (auto it = arena_.rbegin(); it != arena_.rend(); ++it) {
    out.push_back(it->event.request_id);
  }
  return out;
}

void FlightRecorder::StoreStatuszSnapshot(std::string_view json) {
  std::lock_guard<std::mutex> lock(statusz_mu_);
  const uint64_t seq = statusz_seq_.load(std::memory_order_relaxed);
  statusz_seq_.store(seq + 1, std::memory_order_release);  // odd: mid-write
  const size_t n = std::min(json.size(), kStatuszCap - 1);
  std::memcpy(statusz_buf_, json.data(), n);
  statusz_buf_[n] = '\0';
  statusz_len_.store(n, std::memory_order_relaxed);
  statusz_seq_.store(seq + 2, std::memory_order_release);
}

void FlightRecorder::DumpTo(int fd, int signal) const {
  char buf[2048];
  size_t pos = AppendStr(buf, sizeof buf, 0, "relcont-crash-v1 signal=");
  pos = AppendI64(buf, sizeof buf, pos, signal);
  pos = AppendStr(buf, sizeof buf, pos, " recorded=");
  pos = AppendU64(buf, sizeof buf, pos, recorded_total());
  pos = AppendStr(buf, sizeof buf, pos, " retained=");
  pos = AppendU64(buf, sizeof buf, pos, retained_total());
  pos = AppendStr(buf, sizeof buf, pos, " dropped=");
  pos = AppendU64(buf, sizeof buf, pos, dropped_total());
  pos = AppendChar(buf, sizeof buf, pos, '\n');
  WriteAll(fd, buf, std::min(pos, sizeof buf - 1));

  // The statusz snapshot, pre-rendered by the obs server's watchdog. If a
  // refresh was interrupted by this very crash the seq is odd; dump the
  // (possibly stale) buffer anyway — a black box prefers partial truth.
  const uint64_t seq = statusz_seq_.load(std::memory_order_acquire);
  const size_t len = statusz_len_.load(std::memory_order_relaxed);
  if (seq != 0 && len > 0) {
    WriteAll(fd, "STATUSZ ", 8);
    WriteAll(fd, statusz_buf_, len);
    if (statusz_buf_[len - 1] != '\n') WriteAll(fd, "\n", 1);
  } else {
    WriteAll(fd, "STATUSZ unavailable\n", 20);
  }

  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t lap = std::min<uint64_t>(head, capacity_);
  for (uint64_t i = 0; i < lap; ++i) {
    const uint64_t ticket = head - 1 - i;
    WideEvent event;
    if (!ReadSlot(ticket & mask_, &event)) continue;
    WriteAll(fd, "EVENT ", 6);
    const size_t n = RenderWideEventJson(event, buf, sizeof buf);
    WriteAll(fd, buf, n);
    WriteAll(fd, "\n", 1);
  }
  WriteAll(fd, "END\n", 4);
}

namespace {

FlightRecorder* g_crash_recorder = nullptr;
int g_crash_fd = STDERR_FILENO;

void CrashHandler(int sig) {
  FlightRecorder* recorder = g_crash_recorder;
  if (recorder != nullptr) recorder->DumpTo(g_crash_fd, sig);
  // SA_RESETHAND restored the default disposition on entry; re-raise so
  // the process dies by the original signal (keeping core-dump and
  // wait-status semantics for whoever supervises it).
  raise(sig);
}

}  // namespace

void InstallCrashHandler(FlightRecorder* recorder, const char* dump_path) {
  g_crash_recorder = recorder;
  if (dump_path != nullptr && *dump_path != '\0') {
    int fd = ::open(dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) g_crash_fd = fd;
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = CrashHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  sigaction(SIGSEGV, &sa, nullptr);
  sigaction(SIGABRT, &sa, nullptr);
}

}  // namespace obs
}  // namespace relcont
