#include "binding/dom_plan.h"

#include <map>
#include <unordered_set>

#include "datalog/substitution.h"
#include "rewriting/inverse_rules.h"
#include "trace/trace.h"

namespace relcont {

Result<ExecutablePlanResult> ExecutablePlan(const Program& query,
                                            const ViewSet& views,
                                            const BindingPatterns& patterns,
                                            Interner* interner) {
  RELCONT_TRACE_SPAN("plan_executable");
  RELCONT_RETURN_NOT_OK(query.CheckSafe());
  RELCONT_RETURN_NOT_OK(views.Validate());
  for (const Rule& r : query.rules) {
    if (!r.comparisons.empty()) {
      return Status::Unsupported(
          "binding-pattern plans cover comparison-free queries (Section 4)");
    }
  }

  ExecutablePlanResult out;
  out.dom_predicate = interner->Fresh("dom");
  Program& plan = out.program;
  plan = query;

  auto add_rule = [&plan](Rule rule) {
    // Identical rules can arise from overlapping alternative adornments.
    for (const Rule& existing : plan.rules) {
      if (existing == rule) return;
    }
    plan.rules.push_back(std::move(rule));
  };

  for (const ViewDefinition& view : views.views()) {
    const Rule& rule = view.rule;
    const std::vector<Adornment>* alternatives =
        patterns.Find(view.source_predicate());
    std::vector<Adornment> effective =
        alternatives != nullptr
            ? *alternatives
            : std::vector<Adornment>{Adornment::AllFree(rule.head.arity())};

    // Skolemization is per view, shared by all access-pattern alternatives.
    std::vector<SymbolId> head_vars = rule.HeadVariables();
    std::vector<Term> skolem_args;
    for (SymbolId v : head_vars) skolem_args.push_back(Term::Var(v));
    std::unordered_set<SymbolId> head_set(head_vars.begin(), head_vars.end());
    Substitution sigma;
    for (SymbolId v : rule.BodyVariables()) {
      if (head_set.count(v) > 0) continue;
      std::string name = "f_" + interner->NameOf(view.source_predicate()) +
                         "_" + interner->NameOf(v);
      sigma.Bind(v, Term::Function(interner->Intern(name), skolem_args));
    }

    for (const Adornment& adornment : effective) {
      if (adornment.arity() != rule.head.arity()) {
        return Status::InvalidArgument(
            "adornment arity mismatch for a source");
      }
      // dom guards: one per distinct variable in a bound head position.
      std::vector<Atom> guards;
      std::unordered_set<SymbolId> guarded;
      for (int i = 0; i < rule.head.arity(); ++i) {
        if (!adornment.IsBound(i)) continue;
        const Term& t = rule.head.args[i];
        if (t.is_variable() && guarded.insert(t.symbol()).second) {
          guards.emplace_back(out.dom_predicate, std::vector<Term>{t});
        }
      }

      // Guarded inverse rules:  gσ :- dom(Xb)..., v(X̄).
      for (const Atom& subgoal : rule.body) {
        Rule inverse;
        inverse.head = sigma.Apply(subgoal);
        inverse.body = guards;
        inverse.body.push_back(rule.head);
        add_rule(std::move(inverse));
      }

      // dom rules: every variable in a free head position enlarges dom.
      for (int i = 0; i < rule.head.arity(); ++i) {
        if (adornment.IsBound(i)) continue;
        const Term& t = rule.head.args[i];
        if (!t.is_variable()) continue;
        if (guarded.count(t.symbol()) > 0) continue;  // already bound anyway
        Rule dom_rule;
        dom_rule.head = Atom(out.dom_predicate, {t});
        dom_rule.body = guards;
        dom_rule.body.push_back(rule.head);
        add_rule(std::move(dom_rule));
      }
    }
  }

  // dom facts: the constants of Q ∪ V (Definition 4.2's constant
  // discipline — executable plans may use no others).
  std::vector<Value> constants = query.Constants();
  std::vector<Value> view_constants = views.Constants();
  constants.insert(constants.end(), view_constants.begin(),
                   view_constants.end());
  std::set<Value> seen_consts;
  for (const Value& c : constants) {
    if (!seen_consts.insert(c).second) continue;
    Rule fact;
    fact.head = Atom(out.dom_predicate, {Term::Constant(c)});
    plan.rules.push_back(std::move(fact));
  }
  return out;
}

Result<Program> ExpandExecutablePlanForContainment(
    const ExecutablePlanResult& plan, SymbolId goal, const ViewSet& views,
    Interner* interner) {
  // 1. Rename the plan's mediated IDB predicates apart from the stored
  //    relations of the same name. dom, the goal, and the sources keep
  //    their names.
  std::set<SymbolId> sources = views.SourcePredicates();
  std::map<SymbolId, SymbolId> prime;
  auto primed = [&](SymbolId pred) {
    auto it = prime.find(pred);
    if (it != prime.end()) return it->second;
    SymbolId p = interner->Intern("_plan_" + interner->NameOf(pred));
    prime.emplace(pred, p);
    return p;
  };
  auto needs_prime = [&](SymbolId pred) {
    return pred != goal && pred != plan.dom_predicate &&
           sources.count(pred) == 0;
  };
  Program renamed;
  for (const Rule& r : plan.program.rules) {
    Rule copy = r;
    if (needs_prime(copy.head.predicate)) {
      copy.head.predicate = primed(copy.head.predicate);
    }
    for (Atom& a : copy.body) {
      if (needs_prime(a.predicate)) a.predicate = primed(a.predicate);
    }
    renamed.rules.push_back(std::move(copy));
  }
  // 2. Replace source subgoals with view bodies (stored relations).
  RELCONT_ASSIGN_OR_RETURN(Program expanded,
                           ExpandPlanProgram(renamed, views, interner));
  // 3. Drop rules depending on underivable primed predicates (mediated
  //    relations no source covers), cascading.
  for (;;) {
    std::set<SymbolId> defined = expanded.IdbPredicates();
    std::set<SymbolId> primed_preds;
    for (const auto& [orig, p] : prime) {
      (void)orig;
      primed_preds.insert(p);
    }
    Program filtered;
    bool dropped = false;
    for (Rule& r : expanded.rules) {
      bool dead = false;
      for (const Atom& a : r.body) {
        if (primed_preds.count(a.predicate) > 0 &&
            defined.count(a.predicate) == 0) {
          dead = true;
          break;
        }
      }
      if (dead) {
        dropped = true;
      } else {
        filtered.rules.push_back(std::move(r));
      }
    }
    expanded = std::move(filtered);
    if (!dropped) break;
  }
  return expanded;
}

Result<std::vector<Tuple>> ReachableCertainAnswers(
    const Program& query, SymbolId goal, const ViewSet& views,
    const BindingPatterns& patterns, const Database& instance,
    Interner* interner) {
  RELCONT_ASSIGN_OR_RETURN(ExecutablePlanResult plan,
                           ExecutablePlan(query, views, patterns, interner));
  return EvaluateGoal(plan.program, goal, instance);
}

}  // namespace relcont
