#ifndef RELCONT_BINDING_DOM_PLAN_H_
#define RELCONT_BINDING_DOM_PLAN_H_

#include "binding/adornment.h"
#include "eval/evaluator.h"
#include "rewriting/views.h"

namespace relcont {

/// The Duschka–Genesereth–Levy construction of the maximally-contained
/// EXECUTABLE plan under binding-pattern restrictions (Section 4 of the
/// paper; Definition 4.4). The plan is recursive in general: a unary
/// predicate `dom` accumulates every constant obtainable from the sources,
/// and inverse rules may only feed bound positions from `dom` (or from the
/// constants of Q ∪ V, per the sound-plan discipline of Definition 4.2).
struct ExecutablePlanResult {
  Program program;
  /// The accumulator predicate created for this plan.
  SymbolId dom_predicate = kInvalidSymbol;
};

/// Builds the executable maximally-contained plan of `query` (rules over
/// the mediated schema, comparison-free) using `views` under `patterns`.
Result<ExecutablePlanResult> ExecutablePlan(const Program& query,
                                            const ViewSet& views,
                                            const BindingPatterns& patterns,
                                            Interner* interner);

/// Reachable certain answers (Definition 4.3): certain answers obtainable
/// by a sound executable plan — exactly the answers of the executable
/// maximally-contained plan on the instance.
Result<std::vector<Tuple>> ReachableCertainAnswers(
    const Program& query, SymbolId goal, const ViewSet& views,
    const BindingPatterns& patterns, const Database& instance,
    Interner* interner);

/// The expansion P^exp of an executable plan, prepared for the containment
/// check of Theorem 4.1 (P1^exp ⊑ Q2): source subgoals are replaced by
/// view bodies over the STORED mediated relations, while the plan's own
/// reconstruction of each mediated relation is renamed apart (cardesc
/// becomes a fresh IDB predicate) so that the program's EDB schema is
/// exactly the mediated schema. Rules that depend on a mediated relation
/// no source covers are unanswerable and removed.
Result<Program> ExpandExecutablePlanForContainment(
    const ExecutablePlanResult& plan, SymbolId goal, const ViewSet& views,
    Interner* interner);

}  // namespace relcont

#endif  // RELCONT_BINDING_DOM_PLAN_H_
