#ifndef RELCONT_BINDING_DOM_CONTAINMENT_H_
#define RELCONT_BINDING_DOM_CONTAINMENT_H_

#include <optional>

#include "datalog/unfold.h"

namespace relcont {

/// Decides containment of a `dom`-recursive datalog program in a union of
/// conjunctive queries — the decision problem at the heart of Theorem 4.2.
///
/// The plans produced by the binding-pattern construction (after expanding
/// source relations back to the mediated schema) have a restricted
/// recursion shape: the only recursive predicate is the unary accumulator
/// `dom`, whose rules are
///
///     dom(X)  :-  dom(Y1), ..., dom(Yk), e1, ..., em.      (node rules)
///     dom(c).                                              (facts)
///
/// An expansion of the goal is therefore a CORE (the nonrecursive part
/// unfolded) with dom-derivation TREES hanging off its dom subgoals; each
/// tree touches the rest of the expansion through a single boundary term.
/// A containment mapping from a UCQ disjunct decomposes along these
/// boundaries, so each tree is fully characterized by its PROFILE: which
/// atom subsets of which disjunct it can absorb, and how the absorbed
/// variables relate to the boundary and to constants. Profiles live in a
/// finite space; saturating the set of reachable profile sets explores all
/// infinitely many trees, making the check exact:
///
///   contained  ⇔  for every core and every reachable profile assignment
///                 to its dom subgoals, some disjunct embeds.
struct DomContainmentOptions {
  /// Cap on distinct tree profile types kept during saturation.
  int max_tree_options = 256;
  /// Cap on saturation rounds.
  int max_rounds = 64;
  /// Cap on (core, option assignment) combinations checked.
  int64_t max_core_checks = 1'000'000;
  /// Disjuncts with more atoms or variables than this are rejected
  /// (bitmask representation).
  int max_disjunct_size = 60;
  UnfoldOptions unfold;
};

struct DomContainmentResult {
  bool contained = true;
  /// When !contained: a concrete expansion of the program that is not
  /// contained in the UCQ — freezing its body gives a counterexample
  /// database.
  std::optional<Rule> counterexample;
  /// Statistics: reachable tree profile types and cores examined.
  int tree_options = 0;
  int64_t cores_checked = 0;
};

/// Decides `program ⊑ q2` where `program`'s only recursion runs through
/// the unary predicate `dom_pred` (shape above) and everything is
/// comparison-free. Fails with kUnsupported if the program is outside the
/// shape, and kBoundReached if a cap was hit before the answer was
/// certain.
Result<DomContainmentResult> DomPlanContainedInUcq(
    const Program& program, SymbolId goal, SymbolId dom_pred,
    const UnionQuery& q2, Interner* interner,
    const DomContainmentOptions& options = {});

}  // namespace relcont

#endif  // RELCONT_BINDING_DOM_CONTAINMENT_H_
