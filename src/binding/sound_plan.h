#ifndef RELCONT_BINDING_SOUND_PLAN_H_
#define RELCONT_BINDING_SOUND_PLAN_H_

#include "binding/adornment.h"
#include "datalog/unfold.h"
#include "rewriting/views.h"

namespace relcont {

/// Definition 4.2 — sound query plans. A user-supplied plan (a datalog
/// program over the source relations) is SOUND relative to a query Q,
/// views V and binding patterns B when
///   (1) it is executable under B,
///   (2) its constants are a subset of those of Q ∪ V (no "cheating" by
///       inventing probe values, as in the paper's corolla example), and
///   (3) its expansion is contained in Q.
/// Sound plans are exactly the ones whose answers are reachable certain
/// answers; the executable maximally-contained plan contains every sound
/// plan (Definition 4.4).
struct SoundPlanResult {
  bool executable = false;
  bool constants_ok = false;
  /// Expansion containment: true/false when decided; the overall verdict
  /// is only set when all three checks were decided.
  bool expansion_contained = false;
  bool sound = false;
};

struct SoundPlanOptions {
  UnfoldOptions unfold;
  /// Bounds for the expansion-containment check when `plan` is recursive.
  int max_rule_applications = 12;
  int64_t max_expansions = 200'000;
};

/// Checks the three conditions of Definition 4.2. `plan` must be a datalog
/// program over the source predicates with goal `plan_goal`; `query` is
/// the reference query over the mediated schema. Exact for nonrecursive
/// plans; recursive plans use a bounded expansion search and may report
/// kBoundReached.
Result<SoundPlanResult> CheckSoundPlan(
    const Program& plan, SymbolId plan_goal, const Program& query,
    SymbolId query_goal, const ViewSet& views,
    const BindingPatterns& patterns, Interner* interner,
    const SoundPlanOptions& options = {});

}  // namespace relcont

#endif  // RELCONT_BINDING_SOUND_PLAN_H_
