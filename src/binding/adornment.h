#ifndef RELCONT_BINDING_ADORNMENT_H_
#define RELCONT_BINDING_ADORNMENT_H_

#include <map>
#include <optional>
#include <string>

#include "common/status.h"
#include "datalog/program.h"

namespace relcont {

/// An access-pattern adornment (Section 4): a string of 'b' (bound: the
/// value must be supplied to the source) and 'f' (free) characters, one per
/// argument of a source predicate. E.g. RedCars^fbf requires the car model.
class Adornment {
 public:
  Adornment() = default;

  /// Parses "fbf"-style text.
  static Result<Adornment> Parse(std::string_view text);
  /// The all-free adornment of the given arity.
  static Adornment AllFree(int arity);

  int arity() const { return static_cast<int>(bound_.size()); }
  bool IsBound(int position) const { return bound_[position]; }
  bool HasBoundPosition() const;

  std::string ToString() const;

  friend bool operator==(const Adornment& a, const Adornment& b) {
    return a.bound_ == b.bound_;
  }

 private:
  std::vector<bool> bound_;
};

/// The set B of the paper: adornments per source predicate. The paper
/// concentrates on one adornment per source and notes that "sources with
/// multiple possible access patterns can be modelled by a set of
/// adornments"; both are supported. Sources without an entry are
/// unrestricted (all-free).
class BindingPatterns {
 public:
  BindingPatterns() = default;

  /// Registers `adornment` as the only access pattern of `source_pred`,
  /// replacing previous ones; arity checked on use.
  void Set(SymbolId source_pred, Adornment adornment) {
    patterns_[source_pred] = {std::move(adornment)};
  }

  /// Registers an additional alternative access pattern.
  void AddAlternative(SymbolId source_pred, Adornment adornment) {
    patterns_[source_pred].push_back(std::move(adornment));
  }

  /// The access patterns of `source_pred`, or nullptr when unrestricted.
  const std::vector<Adornment>* Find(SymbolId source_pred) const {
    auto it = patterns_.find(source_pred);
    return it == patterns_.end() ? nullptr : &it->second;
  }

  bool empty() const { return patterns_.empty(); }

 private:
  std::map<SymbolId, std::vector<Adornment>> patterns_;
};

/// Executability (Definition 4.1): a rule is executable if for every
/// adorned subgoal, every bound position holds a constant or a variable
/// that appears earlier in the body (in an ordinary subgoal or a bound-free
/// position to its left). Subgoals of unadorned predicates bind all their
/// variables.
bool IsRuleExecutable(const Rule& rule, const BindingPatterns& patterns);

/// A program is executable if all its rules are.
bool IsProgramExecutable(const Program& program,
                         const BindingPatterns& patterns);

/// Attempts to reorder the body of `rule` into an executable order.
/// Returns nullopt if no ordering works.
std::optional<Rule> ReorderForExecutability(const Rule& rule,
                                            const BindingPatterns& patterns);

}  // namespace relcont

#endif  // RELCONT_BINDING_ADORNMENT_H_
