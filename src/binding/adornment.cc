#include "binding/adornment.h"

#include <algorithm>
#include <unordered_set>

namespace relcont {

Result<Adornment> Adornment::Parse(std::string_view text) {
  Adornment out;
  for (char c : text) {
    if (c == 'b') {
      out.bound_.push_back(true);
    } else if (c == 'f') {
      out.bound_.push_back(false);
    } else {
      return Status::InvalidArgument(
          "adornment characters must be 'b' or 'f'");
    }
  }
  return out;
}

Adornment Adornment::AllFree(int arity) {
  Adornment out;
  out.bound_.assign(arity, false);
  return out;
}

bool Adornment::HasBoundPosition() const {
  return std::find(bound_.begin(), bound_.end(), true) != bound_.end();
}

std::string Adornment::ToString() const {
  std::string out;
  for (bool b : bound_) out += b ? 'b' : 'f';
  return out;
}

namespace {

void CollectTermVars(const Term& t, std::unordered_set<SymbolId>* out) {
  std::vector<SymbolId> vars;
  t.CollectVars(&vars);
  out->insert(vars.begin(), vars.end());
}

}  // namespace

namespace {

// Definition 4.1 for one adornment: every bound position holds a constant
// or a variable already seen to its left.
bool AtomExecutableUnder(const Atom& atom, const Adornment& adornment,
                         const std::unordered_set<SymbolId>& seen) {
  std::unordered_set<SymbolId> local = seen;
  for (int i = 0; i < atom.arity(); ++i) {
    const Term& t = atom.args[i];
    if (i < adornment.arity() && adornment.IsBound(i)) {
      if (t.is_variable() && local.count(t.symbol()) == 0) return false;
      if (t.is_function()) return false;  // Skolem values cannot be sent
    }
    CollectTermVars(t, &local);
  }
  return true;
}

}  // namespace

bool IsRuleExecutable(const Rule& rule, const BindingPatterns& patterns) {
  std::unordered_set<SymbolId> seen;
  for (const Atom& atom : rule.body) {
    const std::vector<Adornment>* alternatives = patterns.Find(atom.predicate);
    if (alternatives != nullptr) {
      // With multiple access patterns, any satisfied alternative suffices.
      bool ok = false;
      for (const Adornment& a : *alternatives) {
        if (AtomExecutableUnder(atom, a, seen)) {
          ok = true;
          break;
        }
      }
      if (!ok) return false;
    }
    for (const Term& t : atom.args) CollectTermVars(t, &seen);
  }
  return true;
}

bool IsProgramExecutable(const Program& program,
                         const BindingPatterns& patterns) {
  for (const Rule& rule : program.rules) {
    if (!IsRuleExecutable(rule, patterns)) return false;
  }
  return true;
}

std::optional<Rule> ReorderForExecutability(const Rule& rule,
                                            const BindingPatterns& patterns) {
  // Greedy: repeatedly pick any not-yet-placed subgoal whose bound
  // positions are covered by the variables bound so far. Greedy is
  // complete here because placing a subgoal never unbinds variables.
  std::vector<bool> placed(rule.body.size(), false);
  std::unordered_set<SymbolId> seen;
  Rule out = rule;
  out.body.clear();
  for (size_t step = 0; step < rule.body.size(); ++step) {
    bool advanced = false;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (placed[i]) continue;
      const Atom& atom = rule.body[i];
      const std::vector<Adornment>* alternatives =
          patterns.Find(atom.predicate);
      bool ok = true;
      if (alternatives != nullptr) {
        ok = false;
        for (const Adornment& a : *alternatives) {
          if (AtomExecutableUnder(atom, a, seen)) {
            ok = true;
            break;
          }
        }
      }
      if (!ok) continue;
      placed[i] = true;
      out.body.push_back(atom);
      for (const Term& t : atom.args) CollectTermVars(t, &seen);
      advanced = true;
      break;
    }
    if (!advanced) return std::nullopt;
  }
  return out;
}

}  // namespace relcont
