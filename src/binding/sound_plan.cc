#include "binding/sound_plan.h"

#include <algorithm>

#include "containment/cq_containment.h"
#include "containment/expansion.h"
#include "datalog/unfold.h"
#include "rewriting/inverse_rules.h"

namespace relcont {

Result<SoundPlanResult> CheckSoundPlan(
    const Program& plan, SymbolId plan_goal, const Program& query,
    SymbolId query_goal, const ViewSet& views,
    const BindingPatterns& patterns, Interner* interner,
    const SoundPlanOptions& options) {
  RELCONT_RETURN_NOT_OK(plan.CheckSafe());
  RELCONT_RETURN_NOT_OK(query.CheckSafe());
  // The plan's own predicates must not collide with the mediated schema,
  // or the expansion would conflate them.
  std::set<SymbolId> mediated = views.MediatedPredicates();
  for (SymbolId p : plan.IdbPredicates()) {
    if (mediated.count(p) > 0) {
      return Status::InvalidArgument(
          "plan predicate collides with a mediated relation name");
    }
  }
  std::set<SymbolId> sources = views.SourcePredicates();
  std::set<SymbolId> plan_idb = plan.IdbPredicates();
  for (const Rule& r : plan.rules) {
    for (const Atom& a : r.body) {
      if (sources.count(a.predicate) == 0 &&
          plan_idb.count(a.predicate) == 0) {
        return Status::InvalidArgument(
            "plan bodies must mention only sources and plan predicates");
      }
    }
  }

  SoundPlanResult out;
  // (1) Executability under the binding patterns.
  out.executable = IsProgramExecutable(plan, patterns);

  // (2) Constant discipline: constants(P) ⊆ constants(Q ∪ V).
  std::vector<Value> allowed = query.Constants();
  std::vector<Value> view_consts = views.Constants();
  allowed.insert(allowed.end(), view_consts.begin(), view_consts.end());
  out.constants_ok = true;
  for (const Value& c : plan.Constants()) {
    if (std::find(allowed.begin(), allowed.end(), c) == allowed.end()) {
      out.constants_ok = false;
      break;
    }
  }

  // (3) Expansion containment: P^exp ⊑ Q.
  RELCONT_ASSIGN_OR_RETURN(Program expanded,
                           ExpandPlanProgram(plan, views, interner));
  RELCONT_ASSIGN_OR_RETURN(
      UnionQuery query_ucq,
      UnfoldToUnion(query, query_goal, interner, options.unfold));
  if (!expanded.IsRecursive()) {
    RELCONT_ASSIGN_OR_RETURN(
        UnionQuery exp_ucq,
        UnfoldToUnion(expanded, plan_goal, interner, options.unfold));
    // Drop disjuncts over mediated relations nothing stores... they ARE
    // the stored relations here; function terms cannot appear (user plans
    // have no Skolems), so plain union containment applies.
    RELCONT_ASSIGN_OR_RETURN(out.expansion_contained,
                             UnionContainedInUnion(exp_ucq, query_ucq));
  } else {
    ExpansionOptions bounds;
    bounds.max_rule_applications = options.max_rule_applications;
    bounds.max_expansions = options.max_expansions;
    RELCONT_ASSIGN_OR_RETURN(
        out.expansion_contained,
        DatalogContainedInUcqBounded(expanded, plan_goal, query_ucq,
                                     interner, bounds));
  }
  out.sound = out.executable && out.constants_ok && out.expansion_contained;
  return out;
}

}  // namespace relcont
