#include "binding/dom_containment.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "common/budget.h"
#include "datalog/substitution.h"
#include "trace/trace.h"

namespace relcont {

namespace {

// ---------------------------------------------------------------------------
// Preprocessed shapes.
// ---------------------------------------------------------------------------

// A UCQ disjunct with indexed variables and occurrence bitmasks.
struct DisjunctInfo {
  Rule rule;
  std::vector<SymbolId> vars;          // index -> symbol
  std::map<SymbolId, int> var_index;   // symbol -> index
  std::vector<uint64_t> occurrence;    // per var: atoms containing it
  std::vector<bool> in_head;           // per var: occurs in the head
};

// A dom node rule  dom(X) :- dom(Y1), ..., dom(Yk), e1, ..., em.
struct NodeRule {
  Rule rule;                       // renamed-apart copy
  SymbolId output_var;
  std::vector<SymbolId> guard_vars;  // distinct, in first-occurrence order
  std::vector<Atom> body_edb;
};

// How a variable of a disjunct relates to the outside of a tree.
struct ProfileEntry {
  int disjunct = 0;
  uint64_t atoms = 0;     // subset of the disjunct's atoms absorbed
  uint64_t boundary = 0;  // vars mapped to the tree's attachment term
  std::vector<std::pair<int, int>> consts;  // (var index, const index)

  friend bool operator<(const ProfileEntry& a, const ProfileEntry& b) {
    return std::tie(a.disjunct, a.atoms, a.boundary, a.consts) <
           std::tie(b.disjunct, b.atoms, b.boundary, b.consts);
  }
};

// A reference to a resolved dom subgoal inside a tree: either a constant
// leaf (dom fact) or another tree type.
struct ChildRef {
  bool is_const = false;
  int index = 0;  // const table index or tree option index
};

// Enough structure to materialize one concrete tree of this type.
struct TreeRep {
  int rule_index = 0;
  int output_const = -1;  // -1: variable/opaque boundary
  std::vector<ChildRef> children;
};

// A reachable tree type: its complete embedding profile.
struct TreeOption {
  int output_const = -1;
  std::set<ProfileEntry> entries;
  TreeRep rep;
  // Per disjunct: union of atom masks over entries (placement prefilter).
  std::map<int, uint64_t> atom_union;
};

// ---------------------------------------------------------------------------
// The decider.
// ---------------------------------------------------------------------------

class DomDecider {
 public:
  DomDecider(const Program& program, SymbolId goal, SymbolId dom_pred,
             const UnionQuery& q2, Interner* interner,
             const DomContainmentOptions& options)
      : goal_(goal),
        dom_(dom_pred),
        interner_(interner),
        options_(options),
        program_(program),
        q2_(q2) {}

  Result<DomContainmentResult> Run() {
    RELCONT_RETURN_NOT_OK(Preprocess());
    RELCONT_RETURN_NOT_OK(BuildCores());
    RELCONT_RETURN_NOT_OK(Saturate());
    return CheckCores();
  }

 private:
  // ---- setup ------------------------------------------------------------

  int InternConst(const Value& v) {
    for (size_t i = 0; i < const_table_.size(); ++i) {
      if (const_table_[i] == v) return static_cast<int>(i);
    }
    const_table_.push_back(v);
    return static_cast<int>(const_table_.size()) - 1;
  }

  Status Preprocess() {
    RELCONT_RETURN_NOT_OK(program_.CheckSafe());
    // Split the program into dom facts, dom node rules, and the rest.
    for (const Rule& r : program_.rules) {
      if (!r.comparisons.empty()) {
        return Status::Unsupported("program must be comparison-free");
      }
      if (r.head.predicate != dom_) {
        rest_.rules.push_back(r);
        continue;
      }
      if (r.head.arity() != 1) {
        return Status::Unsupported("dom predicate must be unary");
      }
      if (r.body.empty()) {
        if (!r.head.args[0].is_constant()) {
          return Status::Unsupported("dom facts must be constants");
        }
        dom_fact_consts_.insert(InternConst(r.head.args[0].value()));
        continue;
      }
      RELCONT_RETURN_NOT_OK(AddNodeRule(r));
    }
    if (rest_.IsRecursive()) {
      return Status::Unsupported(
          "recursion outside the dom predicate is not in the decidable "
          "shape");
    }
    std::set<SymbolId> rest_idb = rest_.IdbPredicates();
    if (rest_idb.count(dom_) > 0) {
      return Status::Internal("dom rules were not split out");
    }
    for (const NodeRule& n : node_rules_) {
      for (const Atom& a : n.body_edb) {
        if (rest_idb.count(a.predicate) > 0) {
          return Status::Unsupported(
              "dom rules must be over EDB relations only");
        }
      }
    }
    // Constant tables: everything in the program and the UCQ.
    for (const Value& v : program_.Constants()) InternConst(v);
    for (const Rule& d : q2_.disjuncts) {
      if (!d.comparisons.empty()) {
        return Status::Unsupported("UCQ must be comparison-free");
      }
      for (const Value& v : d.Constants()) InternConst(v);
      for (const Atom& a : d.body) {
        if (a.predicate == dom_) {
          return Status::Unsupported("UCQ must not mention dom");
        }
      }
    }
    // Disjunct infos.
    for (const Rule& d : q2_.disjuncts) {
      DisjunctInfo info;
      info.rule = d;
      std::vector<SymbolId> vars = d.Variables();
      if (static_cast<int>(d.body.size()) > options_.max_disjunct_size ||
          static_cast<int>(vars.size()) > options_.max_disjunct_size) {
        return BoundReachedAt("dom_containment",
                              "UCQ disjunct too large for bitmasks");
      }
      for (SymbolId v : vars) {
        info.var_index[v] = static_cast<int>(info.vars.size());
        info.vars.push_back(v);
      }
      info.occurrence.assign(info.vars.size(), 0);
      info.in_head.assign(info.vars.size(), false);
      for (size_t i = 0; i < d.body.size(); ++i) {
        std::vector<SymbolId> atom_vars;
        d.body[i].CollectVars(&atom_vars);
        for (SymbolId v : atom_vars) {
          info.occurrence[info.var_index[v]] |= uint64_t{1} << i;
        }
      }
      std::vector<SymbolId> head_vars;
      d.head.CollectVars(&head_vars);
      for (SymbolId v : head_vars) info.in_head[info.var_index[v]] = true;
      disjuncts_.push_back(std::move(info));
    }
    return Status::OK();
  }

  Status AddNodeRule(const Rule& r) {
    NodeRule node;
    node.rule = RenameApart(r, interner_);
    const Term& head_arg = node.rule.head.args[0];
    if (!head_arg.is_variable()) {
      return Status::Unsupported("dom rule heads must be variables");
    }
    node.output_var = head_arg.symbol();
    std::set<SymbolId> seen_guards;
    for (const Atom& a : node.rule.body) {
      if (a.predicate != dom_) {
        node.body_edb.push_back(a);
        continue;
      }
      if (a.arity() != 1) {
        return Status::Unsupported("dom predicate must be unary");
      }
      const Term& arg = a.args[0];
      if (arg.is_constant()) {
        // A constant guard is only tractable when a dom fact satisfies it.
        int idx = InternConst(arg.value());
        if (dom_fact_consts_.count(idx) == 0) {
          return Status::Unsupported(
              "constant dom guard without a matching dom fact");
        }
        continue;  // satisfied; contributes nothing
      }
      if (!arg.is_variable()) {
        return Status::Unsupported("dom guards must be variables");
      }
      if (arg.symbol() == node.output_var) {
        return Status::Unsupported("dom rule output guarded by itself");
      }
      if (seen_guards.insert(arg.symbol()).second) {
        node.guard_vars.push_back(arg.symbol());
      }
    }
    node_rules_.push_back(std::move(node));
    return Status::OK();
  }

  // ---- cores ------------------------------------------------------------

  struct Core {
    Rule unfolded;                  // head + full body (dom atoms included)
    std::vector<Atom> edb_atoms;
    std::vector<Term> attachments;  // distinct dom arguments
  };

  Status BuildCores() {
    RELCONT_ASSIGN_OR_RETURN(
        UnionQuery cores,
        UnfoldToUnion(rest_, goal_, interner_, options_.unfold));
    for (Rule& r : cores.disjuncts) {
      Core core;
      core.unfolded = r;
      std::vector<Term> seen;
      for (const Atom& a : r.body) {
        if (a.predicate == dom_) {
          const Term& t = a.args[0];
          if (std::find(seen.begin(), seen.end(), t) == seen.end()) {
            seen.push_back(t);
          }
        } else {
          core.edb_atoms.push_back(a);
        }
      }
      core.attachments = std::move(seen);
      // Needed constant outputs: dom(c) attachments.
      for (const Term& t : core.attachments) {
        if (t.is_constant()) needed_const_outputs_.insert(InternConst(t.value()));
      }
      cores_.push_back(std::move(core));
    }
    return Status::OK();
  }

  // ---- tree saturation ----------------------------------------------------

  // Builds the concrete atoms of a node with the given output and children
  // and computes its profile entries.
  Result<TreeOption> BuildOption(int rule_index, int output_const,
                                 const std::vector<ChildRef>& children) {
    const NodeRule& node = node_rules_[rule_index];
    Substitution mapping;
    if (output_const >= 0) {
      mapping.Bind(node.output_var,
                   Term::Constant(const_table_[output_const]));
    } else {
      mapping.Bind(node.output_var, Term::Var(BoundaryMarker()));
    }
    for (size_t i = 0; i < children.size(); ++i) {
      if (children[i].is_const) {
        mapping.Bind(node.guard_vars[i],
                     Term::Constant(const_table_[children[i].index]));
      } else {
        mapping.Bind(node.guard_vars[i],
                     Term::Var(ChildMarker(static_cast<int>(i))));
      }
    }
    TreeOption option;
    option.output_const = output_const;
    option.rep.rule_index = rule_index;
    option.rep.output_const = output_const;
    option.rep.children = children;
    std::vector<Atom> node_atoms;
    for (const Atom& a : node.body_edb) node_atoms.push_back(mapping.Apply(a));

    for (size_t di = 0; di < disjuncts_.size(); ++di) {
      ComputeEntries(static_cast<int>(di), node_atoms, children, &option);
    }
    for (const ProfileEntry& e : option.entries) {
      option.atom_union[e.disjunct] |= e.atoms;
    }
    return option;
  }

  SymbolId BoundaryMarker() {
    if (boundary_marker_ == kInvalidSymbol) {
      boundary_marker_ = interner_->Intern("__dom_boundary__");
    }
    return boundary_marker_;
  }
  SymbolId ChildMarker(int i) {
    while (static_cast<int>(child_markers_.size()) <= i) {
      child_markers_.push_back(interner_->Intern(
          "__dom_child" + std::to_string(child_markers_.size()) + "__"));
    }
    return child_markers_[i];
  }

  // Enumerates placements of disjunct `di`'s atoms into {outside, node,
  // child_0..k-1} and records every consistent profile entry.
  void ComputeEntries(int di, const std::vector<Atom>& node_atoms,
                      const std::vector<ChildRef>& children,
                      TreeOption* option) {
    const DisjunctInfo& d = disjuncts_[di];
    int m = static_cast<int>(d.rule.body.size());
    // Prefilters.
    std::vector<bool> can_node(m, false);
    std::vector<std::vector<bool>> can_child(children.size(),
                                             std::vector<bool>(m, false));
    for (int a = 0; a < m; ++a) {
      for (const Atom& na : node_atoms) {
        if (na.predicate == d.rule.body[a].predicate &&
            na.args.size() == d.rule.body[a].args.size()) {
          can_node[a] = true;
          break;
        }
      }
      for (size_t c = 0; c < children.size(); ++c) {
        if (children[c].is_const) continue;
        const TreeOption& child = tree_options_[children[c].index];
        auto it = child.atom_union.find(di);
        if (it != child.atom_union.end() && (it->second >> a) & 1) {
          can_child[c][a] = true;
        }
      }
    }
    std::vector<int> placement(m, -1);  // -1 outside, 0 node, 1+c child c
    PlacementRec(di, node_atoms, children, can_node, can_child, 0, &placement,
                 option);
  }

  void PlacementRec(int di, const std::vector<Atom>& node_atoms,
                    const std::vector<ChildRef>& children,
                    const std::vector<bool>& can_node,
                    const std::vector<std::vector<bool>>& can_child, int a,
                    std::vector<int>* placement, TreeOption* option) {
    const DisjunctInfo& d = disjuncts_[di];
    int m = static_cast<int>(d.rule.body.size());
    if (a == m) {
      FinishPlacement(di, node_atoms, children, *placement, option);
      return;
    }
    (*placement)[a] = -1;
    PlacementRec(di, node_atoms, children, can_node, can_child, a + 1,
                 placement, option);
    if (can_node[a]) {
      (*placement)[a] = 0;
      PlacementRec(di, node_atoms, children, can_node, can_child, a + 1,
                   placement, option);
    }
    for (size_t c = 0; c < children.size(); ++c) {
      if (!can_child[c][a]) continue;
      (*placement)[a] = 1 + static_cast<int>(c);
      PlacementRec(di, node_atoms, children, can_node, can_child, a + 1,
                   placement, option);
    }
    (*placement)[a] = -1;
  }

  void FinishPlacement(int di, const std::vector<Atom>& node_atoms,
                       const std::vector<ChildRef>& children,
                       const std::vector<int>& placement,
                       TreeOption* option) {
    const DisjunctInfo& d = disjuncts_[di];
    int m = static_cast<int>(d.rule.body.size());
    uint64_t s_mask = 0;
    std::vector<uint64_t> child_mask(children.size(), 0);
    std::vector<int> node_atoms_chosen;
    for (int a = 0; a < m; ++a) {
      if (placement[a] < 0) continue;
      s_mask |= uint64_t{1} << a;
      if (placement[a] == 0) {
        node_atoms_chosen.push_back(a);
      } else {
        child_mask[placement[a] - 1] |= uint64_t{1} << a;
      }
    }
    if (s_mask == 0) return;
    // Candidate entries per involved child.
    std::vector<std::vector<const ProfileEntry*>> child_entries;
    std::vector<int> involved_children;
    for (size_t c = 0; c < children.size(); ++c) {
      if (child_mask[c] == 0) continue;
      involved_children.push_back(static_cast<int>(c));
      const TreeOption& child = tree_options_[children[c].index];
      std::vector<const ProfileEntry*> matches;
      for (const ProfileEntry& e : child.entries) {
        if (e.disjunct == di && e.atoms == child_mask[c]) matches.push_back(&e);
      }
      if (matches.empty()) return;  // unrealizable placement
      child_entries.push_back(std::move(matches));
    }
    // Enumerate entry combinations.
    std::vector<size_t> pick(child_entries.size(), 0);
    for (;;) {
      TryEntryCombo(di, node_atoms, node_atoms_chosen, s_mask,
                    involved_children, child_entries, pick, option);
      // Advance the odometer.
      size_t i = 0;
      while (i < pick.size() && ++pick[i] == child_entries[i].size()) {
        pick[i] = 0;
        ++i;
      }
      if (i == pick.size()) break;
      if (pick.empty()) break;
    }
  }

  void TryEntryCombo(
      int di, const std::vector<Atom>& node_atoms,
      const std::vector<int>& node_atoms_chosen, uint64_t s_mask,
      const std::vector<int>& involved_children,
      const std::vector<std::vector<const ProfileEntry*>>& child_entries,
      const std::vector<size_t>& pick, TreeOption* option) {
    const DisjunctInfo& d = disjuncts_[di];
    // Seed the assignment from the chosen child entries: boundary vars of
    // child c map to the child's marker; const vars to their constants.
    Substitution seed;
    for (size_t j = 0; j < involved_children.size(); ++j) {
      const ProfileEntry& e = *child_entries[j][pick[j]];
      Term marker = Term::Var(ChildMarker(involved_children[j]));
      for (size_t v = 0; v < d.vars.size(); ++v) {
        if ((e.boundary >> v) & 1) {
          std::optional<Term> prev = seed.Lookup(d.vars[v]);
          if (prev.has_value() && !(*prev == marker)) return;
          seed.Bind(d.vars[v], marker);
        }
      }
      for (const auto& [v, cidx] : e.consts) {
        Term cterm = Term::Constant(const_table_[cidx]);
        std::optional<Term> prev = seed.Lookup(d.vars[v]);
        if (prev.has_value() && !(*prev == cterm)) return;
        seed.Bind(d.vars[v], cterm);
      }
    }
    // Backtracking hom for the node-placed atoms; each complete hom yields
    // one profile entry.
    HomRec(di, node_atoms, node_atoms_chosen, 0, seed, s_mask, option);
  }

  void HomRec(int di, const std::vector<Atom>& node_atoms,
              const std::vector<int>& chosen, size_t idx, Substitution subst,
              uint64_t s_mask, TreeOption* option) {
    const DisjunctInfo& d = disjuncts_[di];
    if (idx == chosen.size()) {
      EmitEntry(di, subst, s_mask, option);
      return;
    }
    const Atom& pattern = d.rule.body[chosen[idx]];
    for (const Atom& target : node_atoms) {
      if (target.predicate != pattern.predicate ||
          target.args.size() != pattern.args.size()) {
        continue;
      }
      Substitution extended = subst;
      if (!MatchAtomAgainstGround(pattern, target.args, &extended)) continue;
      HomRec(di, node_atoms, chosen, idx + 1, std::move(extended), s_mask,
             option);
    }
  }

  void EmitEntry(int di, const Substitution& subst, uint64_t s_mask,
                 TreeOption* option) {
    const DisjunctInfo& d = disjuncts_[di];
    ProfileEntry entry;
    entry.disjunct = di;
    entry.atoms = s_mask;
    for (size_t v = 0; v < d.vars.size(); ++v) {
      std::optional<Term> t = subst.Lookup(d.vars[v]);
      if (!t.has_value()) continue;
      bool fully_inside =
          !d.in_head[v] && (d.occurrence[v] & ~s_mask) == 0;
      if (t->is_variable() && t->symbol() == boundary_marker_) {
        if (!fully_inside) entry.boundary |= uint64_t{1} << v;
        continue;
      }
      if (t->is_constant()) {
        if (!fully_inside) {
          entry.consts.emplace_back(static_cast<int>(v),
                                    InternConst(t->value()));
        }
        continue;
      }
      // Child marker or node-internal variable (or a function term over
      // internal variables): invisible outside, so the variable must not
      // escape the absorbed atoms.
      if (!fully_inside) return;
    }
    std::sort(entry.consts.begin(), entry.consts.end());
    option->entries.insert(std::move(entry));
  }

  // Computes the saturated set of variable-output tree types, then the
  // constant-output types the cores need.
  Status Saturate() {
    RELCONT_TRACE_SPAN("dom_saturate");
    auto key_of = [](const TreeOption& o) {
      std::string key = std::to_string(o.output_const) + "|";
      for (const ProfileEntry& e : o.entries) {
        key += std::to_string(e.disjunct) + "," + std::to_string(e.atoms) +
               "," + std::to_string(e.boundary);
        for (const auto& [v, c] : e.consts) {
          key += ":" + std::to_string(v) + "=" + std::to_string(c);
        }
        key += ";";
      }
      return key;
    };
    std::set<std::string> seen;
    bool changed = true;
    int rounds = 0;
    while (changed) {
      if (++rounds > options_.max_rounds) {
        return BoundReachedAt("dom_saturation",
                              "tree saturation round cap hit");
      }
      RELCONT_RETURN_NOT_OK(BudgetChargeOr("dom_saturation"));
      RELCONT_TRACE_COUNT(kDomSaturationRounds, 1);
      changed = false;
      for (size_t r = 0; r < node_rules_.size(); ++r) {
        std::vector<std::vector<ChildRef>> combos;
        RELCONT_RETURN_NOT_OK(ChildCombos(node_rules_[r], &combos));
        for (const std::vector<ChildRef>& children : combos) {
          RELCONT_ASSIGN_OR_RETURN(
              TreeOption option,
              BuildOption(static_cast<int>(r), /*output_const=*/-1, children));
          if (seen.insert(key_of(option)).second) {
            tree_options_.push_back(std::move(option));
            changed = true;
            if (static_cast<int>(tree_options_.size()) >
                options_.max_tree_options) {
              return BoundReachedAt("dom_saturation", "tree option cap hit");
            }
          }
        }
      }
    }
    var_option_count_ = static_cast<int>(tree_options_.size());
    // Constant-output types (attachments dom(c)); children come from the
    // saturated variable-output set, so one pass suffices.
    for (int cidx : needed_const_outputs_) {
      for (size_t r = 0; r < node_rules_.size(); ++r) {
        std::vector<std::vector<ChildRef>> combos;
        RELCONT_RETURN_NOT_OK(ChildCombos(node_rules_[r], &combos));
        for (const std::vector<ChildRef>& children : combos) {
          RELCONT_ASSIGN_OR_RETURN(
              TreeOption option,
              BuildOption(static_cast<int>(r), cidx, children));
          if (seen.insert(key_of(option)).second) {
            tree_options_.push_back(std::move(option));
            if (static_cast<int>(tree_options_.size()) >
                options_.max_tree_options) {
              return BoundReachedAt("dom_saturation", "tree option cap hit");
            }
          }
        }
      }
    }
    return Status::OK();
  }

  // All assignments of the rule's guards to {dom-fact constants} ∪
  // {existing variable-output tree types}. Children always come from the
  // variable-output pool: guard resolution unifies a VARIABLE with the
  // child rule's head, so constant-output types never serve as children.
  Status ChildCombos(const NodeRule& node,
                     std::vector<std::vector<ChildRef>>* out) {
    std::vector<ChildRef> choices;
    for (int c : dom_fact_consts_) choices.push_back({true, c});
    int pool = var_option_count_ > 0 ? var_option_count_
                                     : static_cast<int>(tree_options_.size());
    for (int i = 0; i < pool; ++i) {
      if (tree_options_[i].output_const == -1) choices.push_back({false, i});
    }
    size_t k = node.guard_vars.size();
    int64_t total = 1;
    for (size_t i = 0; i < k; ++i) {
      total *= static_cast<int64_t>(choices.size());
      if (total > 100000) {
        return BoundReachedAt("dom_saturation", "child combination cap hit");
      }
    }
    std::vector<ChildRef> current(k);
    std::function<void(size_t)> rec = [&](size_t i) {
      if (i == k) {
        out->push_back(current);
        return;
      }
      for (const ChildRef& c : choices) {
        current[i] = c;
        rec(i + 1);
      }
    };
    if (k == 0) {
      out->push_back({});
    } else {
      if (choices.empty()) return Status::OK();  // no way to feed guards
      rec(0);
    }
    return Status::OK();
  }

  // ---- the ∀∃ check over cores -------------------------------------------

  Result<DomContainmentResult> CheckCores() {
    RELCONT_TRACE_SPAN("dom_check_cores");
    DomContainmentResult result;
    result.tree_options = static_cast<int>(tree_options_.size());
    for (const Core& core : cores_) {
      // Option lists per attachment (OptionsFor is the single source of
      // truth; pick indices below index into the same lists).
      std::vector<std::vector<ChildRef>> option_lists;
      bool dead_core = false;
      for (const Term& t : core.attachments) {
        std::vector<ChildRef> opts = OptionsFor(t);
        if (opts.empty()) {
          dead_core = true;  // this dom subgoal can never be satisfied
          break;
        }
        option_lists.push_back(std::move(opts));
      }
      if (dead_core) continue;
      // Enumerate assignments.
      std::vector<size_t> pick(option_lists.size(), 0);
      for (;;) {
        if (++result.cores_checked > options_.max_core_checks) {
          return BoundReachedAt("dom_check_cores", "core assignment cap hit");
        }
        // CheckAssignment's embedding search is budget-free (so a negative
        // is always a real counterexample); the charge here makes the ∀∃
        // sweep interruptible between assignments.
        RELCONT_RETURN_NOT_OK(BudgetChargeOr("dom_check_cores"));
        RELCONT_ASSIGN_OR_RETURN(bool embeds, CheckAssignment(core, pick));
        if (!embeds) {
          result.contained = false;
          RELCONT_ASSIGN_OR_RETURN(result.counterexample,
                                   Materialize(core, pick));
          return result;
        }
        size_t i = 0;
        while (i < pick.size() && ++pick[i] == option_lists[i].size()) {
          pick[i] = 0;
          ++i;
        }
        if (i == pick.size()) break;
        if (pick.empty()) break;
      }
    }
    return result;
  }

  // Rebuilds the option list for one attachment (deterministic).
  std::vector<ChildRef> OptionsFor(const Term& t) {
    std::vector<ChildRef> opts;
    if (t.is_variable()) {
      for (int c : dom_fact_consts_) opts.push_back(ChildRef{true, c});
      for (int i = 0; i < static_cast<int>(tree_options_.size()); ++i) {
        if (tree_options_[i].output_const == -1) {
          opts.push_back(ChildRef{false, i});
        }
      }
    } else if (t.is_constant()) {
      int cidx = InternConst(t.value());
      if (dom_fact_consts_.count(cidx) > 0) {
        opts.push_back(ChildRef{true, cidx});
      }
      for (int i = 0; i < static_cast<int>(tree_options_.size()); ++i) {
        if (tree_options_[i].output_const == cidx) {
          opts.push_back(ChildRef{false, i});
        }
      }
    } else {
      for (int i = 0; i < static_cast<int>(tree_options_.size()); ++i) {
        if (tree_options_[i].output_const == -1) {
          opts.push_back(ChildRef{false, i});
        }
      }
    }
    return opts;
  }

  // Applies ConstLeaf substitutions of an assignment to the core and
  // returns (effective atoms, effective head, live trees).
  struct EffectiveCore {
    std::vector<Atom> atoms;
    Atom head;
    // (attachment term after substitution, tree option index)
    std::vector<std::pair<Term, int>> trees;
  };

  EffectiveCore BuildEffectiveCore(const Core& core,
                                   const std::vector<size_t>& pick) {
    Substitution leaf_subst;
    std::vector<std::pair<const Term*, int>> trees_raw;
    for (size_t i = 0; i < core.attachments.size(); ++i) {
      const Term& t = core.attachments[i];
      std::vector<ChildRef> opts = OptionsFor(t);
      const ChildRef& chosen = opts[pick[i]];
      if (chosen.is_const) {
        if (t.is_variable()) {
          leaf_subst.Bind(t.symbol(),
                          Term::Constant(const_table_[chosen.index]));
        }
        // Constant attachments resolved by facts contribute nothing.
      } else {
        trees_raw.emplace_back(&t, chosen.index);
      }
    }
    EffectiveCore out;
    for (const Atom& a : core.edb_atoms) out.atoms.push_back(leaf_subst.Apply(a));
    out.head = leaf_subst.Apply(core.unfolded.head);
    for (const auto& [t, idx] : trees_raw) {
      out.trees.emplace_back(leaf_subst.Apply(*t), idx);
    }
    return out;
  }

  Result<bool> CheckAssignment(const Core& core,
                               const std::vector<size_t>& pick) {
    EffectiveCore eff = BuildEffectiveCore(core, pick);
    for (size_t di = 0; di < disjuncts_.size(); ++di) {
      if (EmbedsDisjunct(static_cast<int>(di), eff)) return true;
    }
    return false;
  }

  bool EmbedsDisjunct(int di, const EffectiveCore& eff) {
    const DisjunctInfo& d = disjuncts_[di];
    if (d.rule.head.arity() != eff.head.arity()) return false;
    int m = static_cast<int>(d.rule.body.size());
    // Placement prefilters.
    std::vector<bool> can_core(m, false);
    std::vector<std::vector<bool>> can_tree(eff.trees.size(),
                                            std::vector<bool>(m, false));
    for (int a = 0; a < m; ++a) {
      for (const Atom& ca : eff.atoms) {
        if (ca.predicate == d.rule.body[a].predicate &&
            ca.args.size() == d.rule.body[a].args.size()) {
          can_core[a] = true;
          break;
        }
      }
      for (size_t t = 0; t < eff.trees.size(); ++t) {
        const TreeOption& opt = tree_options_[eff.trees[t].second];
        auto it = opt.atom_union.find(di);
        if (it != opt.atom_union.end() && (it->second >> a) & 1) {
          can_tree[t][a] = true;
        }
      }
    }
    std::vector<int> placement(m, 0);  // 0 core, 1+t tree t
    return PlaceAndEmbed(di, eff, can_core, can_tree, 0, &placement);
  }

  bool PlaceAndEmbed(int di, const EffectiveCore& eff,
                     const std::vector<bool>& can_core,
                     const std::vector<std::vector<bool>>& can_tree, int a,
                     std::vector<int>* placement) {
    const DisjunctInfo& d = disjuncts_[di];
    int m = static_cast<int>(d.rule.body.size());
    if (a == m) return TryPlacement(di, eff, *placement);
    if (can_core[a]) {
      (*placement)[a] = 0;
      if (PlaceAndEmbed(di, eff, can_core, can_tree, a + 1, placement)) {
        return true;
      }
    }
    for (size_t t = 0; t < eff.trees.size(); ++t) {
      if (!can_tree[t][a]) continue;
      (*placement)[a] = 1 + static_cast<int>(t);
      if (PlaceAndEmbed(di, eff, can_core, can_tree, a + 1, placement)) {
        return true;
      }
    }
    return false;
  }

  bool TryPlacement(int di, const EffectiveCore& eff,
                    const std::vector<int>& placement) {
    const DisjunctInfo& d = disjuncts_[di];
    int m = static_cast<int>(d.rule.body.size());
    std::vector<int> core_atoms;
    std::vector<uint64_t> tree_mask(eff.trees.size(), 0);
    for (int a = 0; a < m; ++a) {
      if (placement[a] == 0) {
        core_atoms.push_back(a);
      } else {
        tree_mask[placement[a] - 1] |= uint64_t{1} << a;
      }
    }
    // Candidate entries per involved tree.
    std::vector<std::vector<const ProfileEntry*>> tree_entries;
    std::vector<int> involved;
    for (size_t t = 0; t < eff.trees.size(); ++t) {
      if (tree_mask[t] == 0) continue;
      involved.push_back(static_cast<int>(t));
      const TreeOption& opt = tree_options_[eff.trees[t].second];
      std::vector<const ProfileEntry*> matches;
      for (const ProfileEntry& e : opt.entries) {
        if (e.disjunct == di && e.atoms == tree_mask[t]) matches.push_back(&e);
      }
      if (matches.empty()) return false;
      tree_entries.push_back(std::move(matches));
    }
    std::vector<size_t> pick(tree_entries.size(), 0);
    for (;;) {
      if (TryEntryComboAtCore(di, eff, core_atoms, involved, tree_entries,
                              pick)) {
        return true;
      }
      size_t i = 0;
      while (i < pick.size() && ++pick[i] == tree_entries[i].size()) {
        pick[i] = 0;
        ++i;
      }
      if (i == pick.size() || pick.empty()) break;
    }
    return false;
  }

  bool TryEntryComboAtCore(
      int di, const EffectiveCore& eff, const std::vector<int>& core_atoms,
      const std::vector<int>& involved,
      const std::vector<std::vector<const ProfileEntry*>>& tree_entries,
      const std::vector<size_t>& pick) {
    const DisjunctInfo& d = disjuncts_[di];
    Substitution subst;
    for (size_t j = 0; j < involved.size(); ++j) {
      const ProfileEntry& e = *tree_entries[j][pick[j]];
      const Term& attachment = eff.trees[involved[j]].first;
      for (size_t v = 0; v < d.vars.size(); ++v) {
        if ((e.boundary >> v) & 1) {
          std::optional<Term> prev = subst.Lookup(d.vars[v]);
          if (prev.has_value() && !(*prev == attachment)) return false;
          subst.Bind(d.vars[v], attachment);
        }
      }
      for (const auto& [v, cidx] : e.consts) {
        Term cterm = Term::Constant(const_table_[cidx]);
        std::optional<Term> prev = subst.Lookup(d.vars[v]);
        if (prev.has_value() && !(*prev == cterm)) return false;
        subst.Bind(d.vars[v], cterm);
      }
    }
    // Head match.
    if (d.rule.head.arity() != eff.head.arity()) return false;
    for (int i = 0; i < d.rule.head.arity(); ++i) {
      if (!MatchTermAgainstGround(d.rule.head.args[i], eff.head.args[i],
                                  &subst)) {
        return false;
      }
    }
    return CoreHomRec(di, eff, core_atoms, 0, subst);
  }

  bool CoreHomRec(int di, const EffectiveCore& eff,
                  const std::vector<int>& core_atoms, size_t idx,
                  Substitution subst) {
    const DisjunctInfo& d = disjuncts_[di];
    if (idx == core_atoms.size()) return true;
    const Atom& pattern = d.rule.body[core_atoms[idx]];
    for (const Atom& target : eff.atoms) {
      if (target.predicate != pattern.predicate ||
          target.args.size() != pattern.args.size()) {
        continue;
      }
      Substitution extended = subst;
      if (!MatchAtomAgainstGround(pattern, target.args, &extended)) continue;
      if (CoreHomRec(di, eff, core_atoms, idx + 1, std::move(extended))) {
        return true;
      }
    }
    return false;
  }

  // ---- witness materialization --------------------------------------------

  Result<Rule> Materialize(const Core& core, const std::vector<size_t>& pick) {
    Substitution subst;
    std::vector<Atom> atoms;
    // Leaf substitutions and tree expansions.
    for (size_t i = 0; i < core.attachments.size(); ++i) {
      const Term& t = core.attachments[i];
      std::vector<ChildRef> opts = OptionsFor(t);
      const ChildRef& chosen = opts[pick[i]];
      if (chosen.is_const) {
        if (t.is_variable()) {
          subst.Bind(t.symbol(), Term::Constant(const_table_[chosen.index]));
        }
      } else {
        RELCONT_RETURN_NOT_OK(MaterializeTree(
            tree_options_[chosen.index].rep, t, &subst, &atoms));
      }
    }
    Rule out;
    out.head = subst.Apply(core.unfolded.head);
    for (const Atom& a : core.edb_atoms) out.body.push_back(subst.Apply(a));
    for (const Atom& a : atoms) out.body.push_back(subst.Apply(a));
    return out;
  }

  Status MaterializeTree(const TreeRep& rep, const Term& attachment,
                         Substitution* subst, std::vector<Atom>* atoms) {
    Rule fresh = RenameApart(node_rules_[rep.rule_index].rule, interner_);
    // Recover the fresh guard variables in order.
    std::vector<SymbolId> guards;
    std::set<SymbolId> seen;
    SymbolId output = fresh.head.args[0].symbol();
    std::vector<Atom> edb;
    for (const Atom& a : fresh.body) {
      if (a.predicate == dom_) {
        if (a.args[0].is_variable() && a.args[0].symbol() != output &&
            seen.insert(a.args[0].symbol()).second) {
          guards.push_back(a.args[0].symbol());
        }
      } else {
        edb.push_back(a);
      }
    }
    if (!UnifyTerms(Term::Var(output), attachment, subst)) {
      return Status::Internal("tree output failed to unify with attachment");
    }
    for (size_t i = 0; i < rep.children.size() && i < guards.size(); ++i) {
      if (rep.children[i].is_const) {
        if (!UnifyTerms(Term::Var(guards[i]),
                        Term::Constant(const_table_[rep.children[i].index]),
                        subst)) {
          return Status::Internal("guard failed to unify with constant");
        }
      } else {
        RELCONT_RETURN_NOT_OK(
            MaterializeTree(tree_options_[rep.children[i].index].rep,
                            Term::Var(guards[i]), subst, atoms));
      }
    }
    for (const Atom& a : edb) atoms->push_back(a);
    return Status::OK();
  }

  // ---- state ------------------------------------------------------------

  SymbolId goal_;
  SymbolId dom_;
  Interner* interner_;
  const DomContainmentOptions& options_;
  const Program& program_;
  const UnionQuery& q2_;

  Program rest_;
  std::vector<NodeRule> node_rules_;
  std::set<int> dom_fact_consts_;
  std::vector<Value> const_table_;
  std::vector<DisjunctInfo> disjuncts_;
  std::vector<Core> cores_;
  std::set<int> needed_const_outputs_;
  std::vector<TreeOption> tree_options_;
  int var_option_count_ = 0;
  SymbolId boundary_marker_ = kInvalidSymbol;
  std::vector<SymbolId> child_markers_;
};

}  // namespace

Result<DomContainmentResult> DomPlanContainedInUcq(
    const Program& program, SymbolId goal, SymbolId dom_pred,
    const UnionQuery& q2, Interner* interner,
    const DomContainmentOptions& options) {
  RELCONT_TRACE_SPAN("dom_containment");
  Result<DomContainmentResult> result =
      DomDecider(program, goal, dom_pred, q2, interner, options).Run();
  if (result.ok()) {
    RELCONT_TRACE_COUNT(kDomTreeOptions,
                        static_cast<uint64_t>(result->tree_options));
    RELCONT_TRACE_COUNT(kDomCoresChecked,
                        static_cast<uint64_t>(result->cores_checked));
  }
  return result;
}

}  // namespace relcont
