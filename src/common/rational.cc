#include "common/rational.h"

#include <cstdlib>
#include <numeric>

namespace relcont {

Rational::Rational(int64_t num, int64_t den) : num_(num), den_(den) {
  Normalize();
}

void Rational::Normalize() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) den_ = 1;
}

std::string Rational::ToString() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

bool Rational::Parse(const std::string& text, Rational* out) {
  if (text.empty()) return false;
  // Fraction form "a/b".
  size_t slash = text.find('/');
  if (slash != std::string::npos) {
    char* end = nullptr;
    int64_t num = std::strtoll(text.c_str(), &end, 10);
    if (end != text.c_str() + slash) return false;
    int64_t den = std::strtoll(text.c_str() + slash + 1, &end, 10);
    if (*end != '\0' || den == 0) return false;
    *out = Rational(num, den);
    return true;
  }
  // Decimal form "a.b" or plain integer.
  size_t dot = text.find('.');
  if (dot == std::string::npos) {
    char* end = nullptr;
    int64_t num = std::strtoll(text.c_str(), &end, 10);
    if (*end != '\0') return false;
    *out = Rational(num);
    return true;
  }
  char* end = nullptr;
  int64_t whole = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + dot) return false;
  const char* frac_begin = text.c_str() + dot + 1;
  if (*frac_begin == '\0') return false;
  int64_t frac = std::strtoll(frac_begin, &end, 10);
  if (*end != '\0' || frac < 0) return false;
  int64_t scale = 1;
  for (const char* p = frac_begin; *p != '\0'; ++p) scale *= 10;
  bool negative = text[0] == '-';
  int64_t num = whole * scale + (negative ? -frac : frac);
  *out = Rational(num, scale);
  return true;
}

Rational Rational::Midpoint(const Rational& a, const Rational& b) {
  Rational sum = a + b;
  return Rational(sum.num(), sum.den() * 2);
}

bool operator<(const Rational& a, const Rational& b) {
  // a.num/a.den < b.num/b.den  <=>  a.num*b.den < b.num*a.den (dens > 0).
  // Use __int128 to avoid overflow on large literals.
  return static_cast<__int128>(a.num_) * b.den_ <
         static_cast<__int128>(b.num_) * a.den_;
}

Rational operator+(const Rational& a, const Rational& b) {
  return Rational(a.num_ * b.den_ + b.num_ * a.den_, a.den_ * b.den_);
}

Rational operator-(const Rational& a, const Rational& b) {
  return Rational(a.num_ * b.den_ - b.num_ * a.den_, a.den_ * b.den_);
}

}  // namespace relcont
