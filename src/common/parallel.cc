#include "common/parallel.h"

#include <atomic>
#include <thread>
#include <vector>

namespace relcont {
namespace {

/// Claims indices from `next` and runs `task` until the items run out or
/// the region trips. Returns the number of items this thread completed.
size_t RunLoop(size_t n, WorkBudget* region, std::atomic<size_t>* next,
               const std::function<bool(size_t)>& task) {
  size_t done = 0;
  while (!region->Exhausted()) {
    size_t i = next->fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    bool keep_going = task(i);
    // The item ran to completion whatever it answered; only the REST of
    // the scan is abandoned on early exit.
    ++done;
    if (!keep_going) {
      region->Cancel();
      break;
    }
  }
  return done;
}

}  // namespace

ParallelScanStats ParallelScan(size_t n, int workers, WorkBudget* region,
                               const std::function<bool(size_t)>& task) {
  ParallelScanStats stats;
  if (n == 0) return stats;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  size_t helpers =
      workers <= 1 ? 0
                   : std::min(static_cast<size_t>(workers), n) - 1;
  std::vector<std::thread> threads;
  threads.reserve(helpers);
  for (size_t h = 0; h < helpers; ++h) {
    region->NoteHelperSpawned();
    threads.emplace_back([&, region] {
      BudgetScope scope(region);
      done.fetch_add(RunLoop(n, region, &next, task),
                     std::memory_order_relaxed);
      region->NoteHelperCompleted();
    });
  }
  {
    // The caller participates under the same region budget; its previous
    // budget (the region's parent) is restored on scope exit.
    BudgetScope scope(region);
    done.fetch_add(RunLoop(n, region, &next, task),
                   std::memory_order_relaxed);
  }
  for (std::thread& t : threads) t.join();
  stats.helpers_spawned = static_cast<int>(helpers);
  stats.items_unfinished = n - done.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace relcont
