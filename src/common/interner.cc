#include "common/interner.h"

namespace relcont {

SymbolId Interner::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

SymbolId Interner::Lookup(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kInvalidSymbol : it->second;
}

SymbolId Interner::Fresh(std::string_view prefix) {
  for (;;) {
    std::string candidate(prefix);
    candidate += std::to_string(fresh_counter_++);
    if (ids_.find(candidate) == ids_.end()) return Intern(candidate);
  }
}

}  // namespace relcont
