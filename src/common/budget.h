#ifndef RELCONT_COMMON_BUDGET_H_
#define RELCONT_COMMON_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace relcont {

/// relcont::WorkBudget — one cooperative resource budget for a whole
/// containment decision (see docs/ALGORITHMS.md, "Budgets and deadlines").
///
/// The decision procedures are Π₂ᴾ-hard: the unfolded plans can be
/// exponentially large and every disjunct check is an NP search. A
/// WorkBudget turns that liveness hazard into a bounded, observable path:
///
///   * a STEP budget counts units of search work (backtracking nodes,
///     linearizations, expansions, derived facts) across every module;
///   * a DEADLINE is a steady-clock point checked every few hundred steps,
///     so a 1 ms timeout surfaces within a fraction of a millisecond of
///     work, not at the next coarse phase boundary;
///   * a CANCELLATION flag lets a parallel sibling that found a definite
///     counterexample stop the in-flight rest of the fan-out.
///
/// Exhaustion is sticky and one-way: once any of the three trips, every
/// subsequent Charge() fails and the search unwinds. The exhaustion NEVER
/// changes an answer — procedures that observe it report kBoundReached
/// instead of a verdict (a definite YES/NO is only ever produced from a
/// completed search; see BudgetOkOrBound below for the pattern).
///
/// Thread-safety: Charge/Cancel/Exhausted/reason and the task counters are
/// safe from many threads (the parallel fan-out shares one budget across
/// workers). set_max_steps/set_deadline must be called before the budget
/// is shared.
///
/// Budgets CHAIN: a region budget constructed with a parent forwards every
/// charge to the parent, so a parallel region both respects the request's
/// global deadline and can be cancelled locally without disturbing the
/// parent (the next phase of the same request keeps running).
enum class BudgetReason : int {
  kNone = 0,      ///< not exhausted
  kSteps,         ///< the step budget ran out
  kDeadline,      ///< the wall-clock deadline passed
  kCancelled,     ///< Cancel() was called (first-counterexample-wins)
};

/// Short stable name for `reason` ("none", "steps", "deadline",
/// "cancelled").
std::string_view BudgetReasonName(BudgetReason reason);

class WorkBudget {
 public:
  /// How many steps pass between wall-clock reads (a steady_clock read per
  /// step would dominate the innermost search loops).
  static constexpr uint64_t kDeadlineCheckStride = 256;

  /// An unlimited budget: never exhausts on its own, but still serves as a
  /// cancellation token and as the accumulator for task counters.
  WorkBudget() = default;
  /// A region budget chained to `parent` (may be null): every Charge also
  /// charges the parent, and parent exhaustion propagates down. Cancel()
  /// on the region does NOT touch the parent.
  explicit WorkBudget(WorkBudget* parent) : parent_(parent) {}

  WorkBudget(const WorkBudget&) = delete;
  WorkBudget& operator=(const WorkBudget&) = delete;

  /// Caps total charged steps; <= 0 means unlimited. Set before sharing.
  void set_max_steps(int64_t max_steps) { max_steps_ = max_steps; }
  /// Sets the wall-clock deadline. Set before sharing.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  /// Convenience: deadline `timeout` from now.
  void set_timeout(std::chrono::milliseconds timeout) {
    set_deadline(std::chrono::steady_clock::now() + timeout);
  }

  /// Charges `n` units of work. Returns true when the search may continue;
  /// false once the budget is exhausted (sticky). Cheap: one relaxed
  /// fetch_add plus a clock read every kDeadlineCheckStride steps.
  bool Charge(uint64_t n = 1);

  /// Marks the budget exhausted with kCancelled (used by the parallel scan
  /// when a sibling found a definite counterexample).
  void Cancel() { MarkExhausted(BudgetReason::kCancelled); }

  bool Exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }
  /// Why the budget exhausted (kNone while healthy). The first trip wins.
  BudgetReason reason() const {
    return static_cast<BudgetReason>(reason_.load(std::memory_order_relaxed));
  }
  /// Steps charged so far (to this budget; a region's charges also appear
  /// on its parent).
  int64_t steps_used() const {
    return static_cast<int64_t>(steps_.load(std::memory_order_relaxed));
  }

  /// The uniform kBoundReached status for this budget's exhaustion reason,
  /// attributed to `site` (also bumps the bound_hits trace counter).
  Status ToStatus(std::string_view site) const;

  /// Task accounting for the parallel fan-out, accumulated on the ROOT of
  /// the parent chain so the service reads one pair of counters per
  /// request. Spawned is recorded before a helper thread starts, completed
  /// as its last action — after a decision returns the two are equal iff
  /// every helper was joined (pool quiescence).
  void NoteHelperSpawned() {
    root()->tasks_spawned_.fetch_add(1, std::memory_order_relaxed);
  }
  void NoteHelperCompleted() {
    root()->tasks_completed_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t tasks_spawned() const {
    return root()->tasks_spawned_.load(std::memory_order_relaxed);
  }
  uint64_t tasks_completed() const {
    return root()->tasks_completed_.load(std::memory_order_relaxed);
  }

 private:
  void MarkExhausted(BudgetReason reason);
  WorkBudget* root() {
    WorkBudget* b = this;
    while (b->parent_ != nullptr) b = b->parent_;
    return b;
  }
  const WorkBudget* root() const {
    const WorkBudget* b = this;
    while (b->parent_ != nullptr) b = b->parent_;
    return b;
  }

  WorkBudget* parent_ = nullptr;
  int64_t max_steps_ = 0;  ///< <= 0: unlimited
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};

  std::atomic<uint64_t> steps_{0};
  std::atomic<bool> exhausted_{false};
  std::atomic<int> reason_{static_cast<int>(BudgetReason::kNone)};
  std::atomic<uint64_t> tasks_spawned_{0};
  std::atomic<uint64_t> tasks_completed_{0};
};

/// The thread's active budget, or nullptr (the common case: no bounds, no
/// parallel region). Mirrors trace::CurrentTrace.
WorkBudget* CurrentBudget();

/// Installs `budget` (may be nullptr) as the thread's current budget for
/// the scope's lifetime; restores the previous one on destruction.
class BudgetScope {
 public:
  explicit BudgetScope(WorkBudget* budget);
  ~BudgetScope();
  BudgetScope(const BudgetScope&) = delete;
  BudgetScope& operator=(const BudgetScope&) = delete;

 private:
  WorkBudget* prev_;
};

/// Charges the current budget (no-op true when none is installed).
bool BudgetCharge(uint64_t n = 1);

/// True when a budget is installed and exhausted.
bool BudgetExhausted();

/// OK while the current budget (if any) is healthy; the budget's uniform
/// kBoundReached status once it is exhausted. The soundness idiom of every
/// search in this library:
///
///   if (found) return true;                         // positives are real
///   RELCONT_RETURN_NOT_OK(BudgetOkOrBound(site));   // truncated search
///   return false;                                   // exhaustive "no"
Status BudgetOkOrBound(std::string_view site);

/// Charges `n` against the current budget; OK on success, the budget's
/// kBoundReached status on exhaustion.
Status BudgetChargeOr(std::string_view site, uint64_t n = 1);

/// The ONE formatter for resource-bound failures, whether budget-driven or
/// a structural cap (max_facts, linearization point cap, dom saturation
/// caps): returns `kBoundReached` with the message
/// "bound reached [<site>]: <detail>", bumps the `bound_hits` trace
/// counter, and attributes the trip to `site` in the process-wide
/// bound-site registry below — so every bound hit is grep-able, countable,
/// and attributable the same way.
Status BoundReachedAt(std::string_view site, std::string_view detail);

/// Records one bound trip against `site` in the process-wide registry.
/// Called by BoundReachedAt for every minted status; services may also
/// call it directly to attribute an aggregation-level outcome (e.g. the
/// planner counting a whole request that ended kBoundReached), so the sum
/// over sites can exceed the number of distinct bound statuses.
void NoteBoundSite(std::string_view site);

/// The registry contents as (site, trips) pairs in lexicographic site
/// order. Counts are cumulative since process start; sites appear once
/// they have tripped at least once.
std::vector<std::pair<std::string, uint64_t>> BoundSiteCounts();

/// Extracts the `[<site>]` tag from a BoundReachedAt-minted status message
/// ("bound reached [<site>]: ..."). Empty view when the status is not
/// kBoundReached or carries no site tag — callers (access log, flight
/// recorder wide events) treat empty as "no site".
std::string_view BoundSiteFromStatus(const Status& status);

}  // namespace relcont

#endif  // RELCONT_COMMON_BUDGET_H_
