#include "common/budget.h"

#include <map>
#include <mutex>
#include <string>

#include "trace/trace.h"

namespace relcont {
namespace {

thread_local WorkBudget* g_current_budget = nullptr;

// Process-wide bound-site registry. A mutex-guarded map is fine here:
// sites only trip on the error path of a decision, never inside a search
// loop, and the set of distinct sites is small and static.
struct BoundSiteRegistry {
  std::mutex mu;
  std::map<std::string, uint64_t> counts;
};

BoundSiteRegistry& GlobalBoundSites() {
  static BoundSiteRegistry* registry = new BoundSiteRegistry();
  return *registry;
}

}  // namespace

std::string_view BudgetReasonName(BudgetReason reason) {
  switch (reason) {
    case BudgetReason::kNone:
      return "none";
    case BudgetReason::kSteps:
      return "steps";
    case BudgetReason::kDeadline:
      return "deadline";
    case BudgetReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

bool WorkBudget::Charge(uint64_t n) {
  if (exhausted_.load(std::memory_order_relaxed)) return false;
  if (parent_ != nullptr && !parent_->Charge(n)) {
    // The parent's exhaustion (e.g. the request deadline) propagates down
    // into the region with the parent's reason, so the region's ToStatus
    // reports the real cause, not a spurious "cancelled".
    MarkExhausted(parent_->reason());
    return false;
  }
  uint64_t used = steps_.fetch_add(n, std::memory_order_relaxed) + n;
  if (max_steps_ > 0 && used > static_cast<uint64_t>(max_steps_)) {
    MarkExhausted(BudgetReason::kSteps);
    return false;
  }
  if (has_deadline_) {
    // Read the clock on the first charge and then once per stride: a 1 ms
    // deadline trips within ~256 search steps of expiring, while the
    // steady_clock read stays off the inner-loop hot path.
    uint64_t prev = used - n;
    if (prev == 0 || used / kDeadlineCheckStride != prev / kDeadlineCheckStride) {
      if (std::chrono::steady_clock::now() >= deadline_) {
        MarkExhausted(BudgetReason::kDeadline);
        return false;
      }
    }
  }
  return true;
}

void WorkBudget::MarkExhausted(BudgetReason reason) {
  int expected = static_cast<int>(BudgetReason::kNone);
  // First trip wins; later causes (e.g. a cancel racing a deadline) keep
  // the original reason so diagnostics are stable.
  reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                  std::memory_order_relaxed);
  exhausted_.store(true, std::memory_order_relaxed);
}

Status WorkBudget::ToStatus(std::string_view site) const {
  std::string detail;
  switch (reason()) {
    case BudgetReason::kSteps:
      detail = "step budget exhausted after " +
               std::to_string(steps_used()) + " steps";
      break;
    case BudgetReason::kDeadline:
      detail = "deadline exceeded";
      break;
    case BudgetReason::kCancelled:
      detail = "cancelled (a sibling task already decided the result)";
      break;
    case BudgetReason::kNone:
      detail = "budget exhausted";
      break;
  }
  return BoundReachedAt(site, detail);
}

WorkBudget* CurrentBudget() { return g_current_budget; }

BudgetScope::BudgetScope(WorkBudget* budget) : prev_(g_current_budget) {
  g_current_budget = budget;
}

BudgetScope::~BudgetScope() { g_current_budget = prev_; }

bool BudgetCharge(uint64_t n) {
  WorkBudget* b = g_current_budget;
  return b == nullptr || b->Charge(n);
}

bool BudgetExhausted() {
  WorkBudget* b = g_current_budget;
  return b != nullptr && b->Exhausted();
}

Status BudgetOkOrBound(std::string_view site) {
  WorkBudget* b = g_current_budget;
  if (b == nullptr || !b->Exhausted()) return Status::OK();
  return b->ToStatus(site);
}

Status BudgetChargeOr(std::string_view site, uint64_t n) {
  WorkBudget* b = g_current_budget;
  if (b == nullptr || b->Charge(n)) return Status::OK();
  return b->ToStatus(site);
}

void NoteBoundSite(std::string_view site) {
  BoundSiteRegistry& registry = GlobalBoundSites();
  std::lock_guard<std::mutex> lock(registry.mu);
  ++registry.counts[std::string(site)];
}

std::vector<std::pair<std::string, uint64_t>> BoundSiteCounts() {
  BoundSiteRegistry& registry = GlobalBoundSites();
  std::lock_guard<std::mutex> lock(registry.mu);
  return std::vector<std::pair<std::string, uint64_t>>(
      registry.counts.begin(), registry.counts.end());
}

std::string_view BoundSiteFromStatus(const Status& status) {
  if (status.code() != StatusCode::kBoundReached) return {};
  std::string_view message = status.message();
  const size_t open = message.find('[');
  if (open == std::string_view::npos) return {};
  const size_t close = message.find(']', open + 1);
  if (close == std::string_view::npos) return {};
  return message.substr(open + 1, close - open - 1);
}

Status BoundReachedAt(std::string_view site, std::string_view detail) {
  RELCONT_TRACE_COUNT(kBoundHits, 1);
  NoteBoundSite(site);
  std::string message = "bound reached [";
  message.append(site);
  message.append("]: ");
  message.append(detail);
  return Status::BoundReached(message);
}

}  // namespace relcont
