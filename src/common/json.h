#ifndef RELCONT_COMMON_JSON_H_
#define RELCONT_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace relcont {
namespace json {

/// A minimal JSON toolkit shared by every component that emits or consumes
/// JSON — the Chrome trace exporter, the access log, the bench JSON schema,
/// and bench_compare. Having exactly one escaper (and one parser to verify
/// round trips in tests) keeps the emitters from drifting apart.

/// Appends `s` to `out` as a quoted JSON string, escaping quotes,
/// backslashes, and control characters (as \uXXXX).
void AppendEscaped(std::string_view s, std::string* out);

/// The quoted, escaped JSON form of `s`.
std::string Escaped(std::string_view s);

/// A parsed JSON value. Numbers are held as doubles (adequate for bench
/// metrics and log fields; exact 64-bit integers above 2^53 are not a use
/// case here). Object members preserve source order and may repeat.
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_bool() const { return type == Type::kBool; }

  /// First member named `key`, or nullptr (objects only).
  const Value* Find(std::string_view key) const;
};

/// Parses one JSON document; trailing non-whitespace is an error.
Result<Value> Parse(std::string_view text);

}  // namespace json
}  // namespace relcont

#endif  // RELCONT_COMMON_JSON_H_
