#include "common/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace relcont {
namespace json {

void AppendEscaped(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string Escaped(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  AppendEscaped(s, &out);
  return out;
}

const Value* Value::Find(std::string_view key) const {
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

/// Recursive-descent parser over a string_view cursor. Depth-bounded so
/// hostile inputs cannot exhaust the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> ParseDocument() {
    RELCONT_ASSIGN_OR_RETURN(Value value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json: " + message + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    Value value;
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      value.type = Value::Type::kString;
      RELCONT_ASSIGN_OR_RETURN(value.string_value, ParseString());
      return value;
    }
    if (ConsumeWord("true")) {
      value.type = Value::Type::kBool;
      value.bool_value = true;
      return value;
    }
    if (ConsumeWord("false")) {
      value.type = Value::Type::kBool;
      return value;
    }
    if (ConsumeWord("null")) return value;
    return ParseNumber();
  }

  Result<Value> ParseObject(int depth) {
    Value value;
    value.type = Value::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return value;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      RELCONT_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      RELCONT_ASSIGN_OR_RETURN(Value member, ParseValue(depth + 1));
      value.object.emplace_back(std::move(key), std::move(member));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return value;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<Value> ParseArray(int depth) {
    Value value;
    value.type = Value::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return value;
    while (true) {
      RELCONT_ASSIGN_OR_RETURN(Value element, ParseValue(depth + 1));
      value.array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return value;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // UTF-8 encode; surrogate pairs are not recombined (the emitters
          // here only \u-escape control characters, all below 0x20).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<Value> ParseNumber() {
    size_t begin = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == begin) return Error("expected a value");
    std::string token(text_.substr(begin, pos_ - begin));
    char* end = nullptr;
    double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    Value value;
    value.type = Value::Type::kNumber;
    value.number_value = parsed;
    return value;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace json
}  // namespace relcont
