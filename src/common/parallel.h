#ifndef RELCONT_COMMON_PARALLEL_H_
#define RELCONT_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

#include "common/budget.h"

namespace relcont {

/// What one ParallelScan did, for trace/metrics attribution by the caller
/// (helper threads have no trace context of their own — see ParallelScan).
struct ParallelScanStats {
  /// Helper threads actually launched (0 when the scan ran inline).
  int helpers_spawned = 0;
  /// Items whose task never ran to completion because the region was
  /// cancelled or its budget exhausted before they finished.
  size_t items_unfinished = 0;
};

/// Runs `task(i)` once for each i in [0, n), fanned out over up to
/// `workers` threads. The calling thread participates, so `workers <= 1`
/// or `n <= 1` degenerates to an inline loop with zero threads spawned.
///
/// Scheduling is dynamic work-sharing: every thread claims the next
/// unclaimed index from one shared atomic cursor, so a thread stuck on an
/// expensive disjunct never blocks the cheap ones behind it (the
/// work-stealing effect the fan-out needs, without per-thread deques —
/// items are claimed one at a time, so there is nothing to steal back).
///
/// `task` returning false requests EARLY EXIT (first-counterexample-wins):
/// the region budget is cancelled, so in-flight siblings stop at their
/// next budget probe and unclaimed items are never started.
///
/// Every thread — including the caller — runs its tasks with `region`
/// installed as the thread-local CurrentBudget(). `region` must outlive
/// the call (stack allocation in the caller is the intended use) and
/// should chain to the caller's budget:
///
///   WorkBudget region(CurrentBudget());
///   ParallelScanStats stats = ParallelScan(n, workers, &region, task);
///
/// Helper threads do NOT inherit the caller's TraceContext (contexts are
/// single-threaded by contract); per-span counters from helper-executed
/// tasks are therefore not recorded. The caller's own share of the work is
/// traced as usual, and the scan-level stats are returned for the caller
/// to attribute.
///
/// Helper bookkeeping: each helper is announced on the region's ROOT
/// budget via NoteHelperSpawned before launch and NoteHelperCompleted as
/// the helper's last action; all helpers are joined before ParallelScan
/// returns, so tasks_spawned == tasks_completed afterwards (the service's
/// pool-quiescence invariant).
ParallelScanStats ParallelScan(size_t n, int workers, WorkBudget* region,
                               const std::function<bool(size_t)>& task);

}  // namespace relcont

#endif  // RELCONT_COMMON_PARALLEL_H_
