#ifndef RELCONT_COMMON_RATIONAL_H_
#define RELCONT_COMMON_RATIONAL_H_

#include <cstdint>
#include <string>

namespace relcont {

/// An exact rational number num/den with den > 0, always kept in lowest
/// terms. Comparison predicates in queries and views are interpreted over a
/// dense order (Section 5 of the paper); rationals give us exact midpoints
/// ("pick a value strictly between a and b") without floating-point hazards.
class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}
  /// The integer `n`.
  Rational(int64_t n) : num_(n), den_(1) {}  // NOLINT(runtime/explicit)
  /// num/den; `den` must be nonzero.
  Rational(int64_t num, int64_t den);

  int64_t num() const { return num_; }
  int64_t den() const { return den_; }

  bool is_integer() const { return den_ == 1; }

  /// Renders "n" or "n/d".
  std::string ToString() const;

  /// Parses an integer, decimal ("12.5"), or fraction ("25/2") literal.
  /// Returns false on malformed input.
  static bool Parse(const std::string& text, Rational* out);

  /// The exact midpoint (a+b)/2 — always strictly between distinct a and b,
  /// witnessing density of the order.
  static Rational Midpoint(const Rational& a, const Rational& b);

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) {
    return !(a == b);
  }
  friend bool operator<(const Rational& a, const Rational& b);
  friend bool operator<=(const Rational& a, const Rational& b) {
    return a == b || a < b;
  }
  friend bool operator>(const Rational& a, const Rational& b) { return b < a; }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return b <= a;
  }

  friend Rational operator+(const Rational& a, const Rational& b);
  friend Rational operator-(const Rational& a, const Rational& b);

  /// Hash suitable for unordered containers.
  size_t Hash() const {
    return static_cast<size_t>(num_) * 1000003u ^ static_cast<size_t>(den_);
  }

 private:
  void Normalize();

  int64_t num_;
  int64_t den_;
};

}  // namespace relcont

#endif  // RELCONT_COMMON_RATIONAL_H_
