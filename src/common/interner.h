#ifndef RELCONT_COMMON_INTERNER_H_
#define RELCONT_COMMON_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace relcont {

/// A dense integer handle for an interned string (predicate name, variable
/// name, symbolic constant, or Skolem function name).
using SymbolId = int32_t;

/// Sentinel for "no symbol".
inline constexpr SymbolId kInvalidSymbol = -1;

/// Bidirectional string <-> SymbolId table.
///
/// The library uses one interner per "universe" of discourse (typically one
/// per test or application session); all datalog structures built against it
/// carry SymbolIds and are cheap to hash and compare.
///
/// Thread-safety: NONE, by design — Intern() and Fresh() mutate the table,
/// and even logically read-only decision procedures allocate fresh symbols
/// through it. Concurrent work must use one Interner per thread and keep
/// every structure carrying SymbolIds confined to the thread that owns the
/// interner those ids came from (the service layer's worker arenas do
/// exactly this; cross-thread values travel as rendered text or canonical
/// fingerprints instead).
class Interner {
 public:
  Interner() = default;
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  /// Returns the id for `name`, creating it if needed.
  SymbolId Intern(std::string_view name);

  /// Returns the id for `name`, or kInvalidSymbol if it was never interned.
  SymbolId Lookup(std::string_view name) const;

  /// Returns the string for `id`. `id` must have been produced by Intern().
  const std::string& NameOf(SymbolId id) const { return names_[id]; }

  /// Number of distinct symbols interned so far.
  int64_t size() const { return static_cast<int64_t>(names_.size()); }

  /// Creates a fresh symbol guaranteed distinct from all interned names, of
  /// the form "<prefix><n>". Useful for fresh variables and Skolem functions.
  SymbolId Fresh(std::string_view prefix);

 private:
  std::unordered_map<std::string, SymbolId> ids_;
  std::vector<std::string> names_;
  int64_t fresh_counter_ = 0;
};

}  // namespace relcont

#endif  // RELCONT_COMMON_INTERNER_H_
