#ifndef RELCONT_COMMON_STATUS_H_
#define RELCONT_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace relcont {

/// Error categories used across the library. The library does not throw
/// exceptions across its public API; fallible operations return Status or
/// Result<T>.
enum class StatusCode {
  kOk = 0,
  /// Malformed input (parse errors, arity mismatches, unknown predicates).
  kInvalidArgument,
  /// A rule or program violates a structural requirement (e.g. safety).
  kUnsafe,
  /// The requested operation is outside the decidable/implemented fragment.
  kUnsupported,
  /// A configured resource bound (expansion depth, iteration cap) was hit
  /// before the algorithm could reach a definite answer.
  kBoundReached,
  /// Internal invariant violation; indicates a bug in the library.
  kInternal,
};

/// Returns a short stable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value, in the style of arrow::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status Unsafe(std::string message) {
    return Status(StatusCode::kUnsafe, std::move(message));
  }
  static Status Unsupported(std::string message) {
    return Status(StatusCode::kUnsupported, std::move(message));
  }
  static Status BoundReached(std::string message) {
    return Status(StatusCode::kBoundReached, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "Code: message" for diagnostics.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error holder, in the style of arrow::Result<T>.
///
/// Access to ValueOrDie() on an error Result aborts the process; callers are
/// expected to check ok() (or status()) first.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs a failed result from a non-OK status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    AbortIfError();
    return *value_;
  }
  T& ValueOrDie() & {
    AbortIfError();
    return *value_;
  }
  T ValueOrDie() && {
    AbortIfError();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void AbortIfError() const;

  std::optional<T> value_;
  Status status_;
};

namespace internal {
/// Aborts the process with `status` rendered to stderr.
[[noreturn]] void DieOnBadAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!value_.has_value()) internal::DieOnBadAccess(status_);
}

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define RELCONT_RETURN_NOT_OK(expr)                  \
  do {                                               \
    ::relcont::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (false)

/// Evaluates `rexpr` (a Result<T> expression); on error returns its status,
/// otherwise moves the value into `lhs`.
#define RELCONT_ASSIGN_OR_RETURN(lhs, rexpr)         \
  RELCONT_ASSIGN_OR_RETURN_IMPL(                     \
      RELCONT_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define RELCONT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).ValueOrDie()

#define RELCONT_CONCAT_IMPL_(a, b) a##b
#define RELCONT_CONCAT_(a, b) RELCONT_CONCAT_IMPL_(a, b)

}  // namespace relcont

#endif  // RELCONT_COMMON_STATUS_H_
