#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace relcont {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kUnsafe:
      return "Unsafe";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kBoundReached:
      return "BoundReached";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieOnBadAccess(const Status& status) {
  std::fprintf(stderr, "Result accessed with error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace relcont
