#ifndef RELCONT_SERVICE_CATALOG_H_
#define RELCONT_SERVICE_CATALOG_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "binding/adornment.h"
#include "common/status.h"
#include "rewriting/views.h"

namespace relcont {

/// An immutable, named snapshot of a data integration system's source
/// descriptions: the view definitions plus the binding patterns.
///
/// Snapshots are stored as *text*, not parsed structures: parsed ViewSets
/// carry SymbolIds bound to one Interner, and the service gives every
/// worker thread its own interner arena (Interner is not thread-safe; see
/// common/interner.h). Workers materialize the text into their arena on
/// first use and cache the result by (name, version).
struct CatalogSpec {
  std::string name;
  /// Monotonically increasing per name; re-registering bumps it, which
  /// invalidates worker materializations and rotates cache keys, so stale
  /// cached decisions are never served for an updated catalog.
  int64_t version = 0;
  /// View definitions, one rule per view (ParseViews syntax).
  std::string views_text;
  /// Number of views in views_text (counted during validation, so CATALOG?
  /// introspection never needs to re-parse the text).
  int num_views = 0;
  /// (source predicate name, adornment text) pairs, e.g. ("redcars", "bf").
  std::vector<std::pair<std::string, std::string>> patterns;
};

/// A CatalogSpec parsed against one worker's interner.
struct MaterializedCatalog {
  int64_t version = 0;
  ViewSet views;
  BindingPatterns patterns;
};

/// Parses `spec` against `interner`: views must parse and validate, every
/// pattern must name a declared source with a matching arity.
Result<MaterializedCatalog> MaterializeCatalog(const CatalogSpec& spec,
                                               Interner* interner);

/// A thread-safe registry of named catalog snapshots. Registration
/// validates the spec (by materializing it against a scratch interner)
/// before publishing; lookups hand out shared immutable snapshots, so a
/// concurrent re-registration never mutates a spec a reader holds.
class CatalogRegistry {
 public:
  /// Invoked after every successful Register with the published name and
  /// version (the plan cache invalidates that catalog's entries this way).
  /// Must be safe to call from many registering threads concurrently.
  using RegistrationListener =
      std::function<void(const std::string& name, int64_t version)>;

  /// Validates and publishes `views_text` + `patterns` under `name`,
  /// replacing any previous snapshot. Returns the published version
  /// (1 for a new name, previous + 1 on replacement).
  Result<int64_t> Register(
      const std::string& name, std::string views_text,
      std::vector<std::pair<std::string, std::string>> patterns = {});

  /// Installs the registration listener (empty function removes it). Not
  /// synchronized against in-flight Register calls — install before the
  /// registry is shared, as the owning service's constructor does.
  void set_registration_listener(RegistrationListener listener) {
    listener_ = std::move(listener);
  }

  /// The current snapshot for `name`, or nullptr if never registered.
  std::shared_ptr<const CatalogSpec> Find(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const CatalogSpec>> catalogs_;
  /// Immutable once the registry is shared (see set_registration_listener),
  /// so Register may invoke it outside mu_.
  RegistrationListener listener_;
};

}  // namespace relcont

#endif  // RELCONT_SERVICE_CATALOG_H_
