#ifndef RELCONT_SERVICE_DECISION_CACHE_H_
#define RELCONT_SERVICE_DECISION_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "relcont/decide.h"

namespace relcont {

/// A containment decision in interner-independent form, so one cache can
/// serve every worker arena: the witness travels as rendered text rather
/// than as a Rule full of thread-local SymbolIds.
struct CachedDecision {
  bool contained = false;
  Regime regime = Regime::kUnknown;
  /// Rendered witness ("" when the decision has none).
  std::string witness_text;
};

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;
};

/// A sharded LRU cache of containment decisions, keyed by the canonical
/// fingerprint of (Q1, Q2, catalog id + version, options) — see
/// CanonicalProgramFingerprint in containment/canonical.h for why the key
/// is invariant under variable renaming and rule reordering.
///
/// Each shard holds its own mutex, recency list, and counters, so lookups
/// from different workers contend only when their keys collide on a shard.
/// Thread-safe.
class DecisionCache {
 public:
  /// `capacity` is the total entry budget, split evenly across
  /// `num_shards` shards (each shard holds at least one entry).
  explicit DecisionCache(size_t capacity, size_t num_shards = 8);

  /// Returns the cached decision and refreshes its recency, or nullopt.
  /// Counts a hit or a miss.
  std::optional<CachedDecision> Lookup(const std::string& key);

  /// Inserts (or refreshes) `key`, evicting the shard's least recently
  /// used entry when the shard is full.
  void Insert(const std::string& key, CachedDecision value);

  /// Aggregated counters across shards.
  CacheStats Stats() const;

  /// Drops every entry; counters keep accumulating.
  void Clear();

  size_t capacity() const { return per_shard_capacity_ * shards_.size(); }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<std::string, CachedDecision>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, CachedDecision>>::
                           iterator>
        index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const std::string& key);

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace relcont

#endif  // RELCONT_SERVICE_DECISION_CACHE_H_
