#include "service/protocol.h"

#include <cstdlib>
#include <optional>
#include <sstream>

#include "common/json.h"
#include "datalog/parser.h"

namespace relcont {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> Tokenize(const std::string& s) {
  std::istringstream in(s);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

std::string JoinFrom(const std::vector<std::string>& tokens, size_t begin,
                     size_t end) {
  std::string out;
  for (size_t i = begin; i < end; ++i) {
    if (!out.empty()) out += ' ';
    out += tokens[i];
  }
  return out;
}

/// Pops trailing `key=value` budget options off `tokens` and applies them
/// to `options`. Recognized keys: timeout_ms (per-request deadline),
/// budget (max decision steps), workers (parallel scan width), strategy
/// (section3 engine: cegar, scan, or auto). Returns a newline-terminated
/// "ERR ..." line on a malformed option, "" on success.
std::string ConsumeBudgetOptions(std::vector<std::string>* tokens,
                                 DecideOptions* options) {
  while (!tokens->empty() &&
         tokens->back().find('=') != std::string::npos) {
    const std::string& token = tokens->back();
    size_t eq = token.find('=');
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (key == "strategy") {
      // The one string-valued option; handled before the integer parse.
      std::optional<ContainmentStrategy> strategy =
          ParseContainmentStrategy(value);
      if (!strategy.has_value()) {
        return "ERR InvalidArgument: option 'strategy' must be cegar, "
               "scan, or auto, got '" + value + "'\n";
      }
      options->strategy = *strategy;
      tokens->pop_back();
      continue;
    }
    char* end = nullptr;
    long long parsed = std::strtoll(value.c_str(), &end, 10);
    if (value.empty() || end == nullptr || *end != '\0' || parsed <= 0) {
      return "ERR InvalidArgument: option '" + key +
             "' needs a positive integer, got '" + value + "'\n";
    }
    if (key == "timeout_ms") {
      options->timeout_ms = parsed;
    } else if (key == "budget") {
      options->max_steps = parsed;
    } else if (key == "workers") {
      options->parallel_workers = static_cast<int>(parsed);
    } else {
      return "ERR InvalidArgument: unknown option '" + key +
             "' — try timeout_ms=, budget=, workers=, or strategy=\n";
    }
    tokens->pop_back();
  }
  return "";
}

}  // namespace

ServerSession::ServerSession(ContainmentService* service, int batch_threads)
    : service_(service), batch_threads_(batch_threads) {}

std::string ServerSession::HandleLine(const std::string& raw_line) {
  std::string line = Trim(raw_line);
  if (line.empty() || line[0] == '%') return "";
  std::istringstream in(line);
  std::string command;
  in >> command;
  std::string rest;
  std::getline(in, rest);
  rest = Trim(rest);
  if (command == "CATALOG") return HandleCatalog(rest);
  if (command == "CATALOG?") return HandleCatalogQuery(rest);
  if (command == "DEFINE") return HandleDefine(rest);
  if (command == "CONTAINED?") return HandleContained(rest);
  if (command == "PLAN?") {
    return HandlePlan(rest, /*collect_trace=*/false, /*trace_json=*/false);
  }
  if (command == "REWRITE?") {
    return HandleRewrite(rest, /*collect_trace=*/false,
                         /*trace_json=*/false);
  }
  if (command == "EXPLAIN") return HandleExplain(rest);
  if (command == "BATCH") return HandleBatch(rest);
  if (command == "CATALOGS") {
    std::string out;
    for (const std::string& name : service_->catalogs().Names()) {
      auto spec = service_->catalogs().Find(name);
      if (spec == nullptr) continue;
      out += "catalog " + name + " v" + std::to_string(spec->version) + "\n";
    }
    return out.empty() ? "OK no catalogs\n" : out;
  }
  if (command == "METRICS") {
    return service_->metrics().Dump(service_->cache().Stats(),
                                    service_->planner().cache().Stats());
  }
  if (command == "STATUSZ") {
    // The same MetricsSnapshot METRICS and /metrics render, as one JSON
    // object — so the protocol verb and GET /statusz cannot drift.
    return obs::RenderStatuszJson(
        service_->metrics().Snapshot(service_->cache().Stats(),
                                     service_->planner().cache().Stats()));
  }
  if (command == "REQUESTZ") return HandleRequestz(rest);
  if (command == "HELP") {
    return "CATALOG <name> VIEW <rule> [VIEW <rule>]... [PATTERN <src> "
           "<adornment>]...\n"
           "CATALOG? [<name>]\n"
           "DEFINE <name> <rule> [<rule>]...\n"
           "CONTAINED? <q1> <q2> @<catalog> [timeout_ms=N] [budget=N] "
           "[workers=N] [strategy=cegar|scan|auto]\n"
           "PLAN? <q> @<catalog> [timeout_ms=N] [budget=N] [workers=N]\n"
           "REWRITE? <q1> <q2> @<catalog> [timeout_ms=N] [budget=N] "
           "[workers=N] [strategy=cegar|scan|auto]\n"
           "EXPLAIN [JSON] [PLAN?|REWRITE?] <args as above>\n"
           "BATCH BEGIN ... BATCH END\n"
           "REQUESTZ [<id>]\n"
           "CATALOGS | METRICS | STATUSZ | HELP\n"
           "  timeout_ms: per-request deadline; budget: max decision "
           "steps; workers: parallel scan width;\n"
           "  strategy: section3 engine (default auto — CEGAR search on "
           "wide plans, scan otherwise).\n"
           "  A request past its bound answers ERR BoundReached (not a "
           "verdict).\n";
  }
  // A distinct error shape (and counter) so clients can tell a typo'd verb
  // from a malformed request to a known verb.
  service_->metrics().RecordUnknownVerb();
  return "ERR unknown-verb '" + command + "' — try HELP\n";
}

std::string ServerSession::HandleCatalog(const std::string& rest) {
  std::vector<std::string> tokens = Tokenize(rest);
  if (tokens.empty()) {
    return "ERR InvalidArgument: CATALOG needs a name\n";
  }
  const std::string& name = tokens[0];
  std::string views_text;
  int num_views = 0;
  std::vector<std::pair<std::string, std::string>> patterns;
  size_t i = 1;
  while (i < tokens.size()) {
    if (tokens[i] == "VIEW") {
      size_t end = i + 1;
      while (end < tokens.size() && tokens[end] != "VIEW" &&
             tokens[end] != "PATTERN") {
        ++end;
      }
      if (end == i + 1) {
        return "ERR InvalidArgument: VIEW needs a rule\n";
      }
      views_text += JoinFrom(tokens, i + 1, end);
      views_text += '\n';
      ++num_views;
      i = end;
    } else if (tokens[i] == "PATTERN") {
      if (i + 2 >= tokens.size()) {
        return "ERR InvalidArgument: PATTERN needs <source> <adornment>\n";
      }
      patterns.emplace_back(tokens[i + 1], tokens[i + 2]);
      i += 3;
    } else {
      return "ERR InvalidArgument: expected VIEW or PATTERN, got '" +
             tokens[i] + "'\n";
    }
  }
  if (num_views == 0) {
    return "ERR InvalidArgument: a catalog needs at least one VIEW\n";
  }
  size_t num_patterns = patterns.size();
  Result<int64_t> version = service_->catalogs().Register(
      name, std::move(views_text), std::move(patterns));
  if (!version.ok()) {
    return "ERR " + version.status().ToString() + "\n";
  }
  return "OK catalog " + name + " v" + std::to_string(*version) +
         " views=" + std::to_string(num_views) +
         " patterns=" + std::to_string(num_patterns) + "\n";
}

std::string ServerSession::HandleDefine(const std::string& rest) {
  std::vector<std::string> tokens = Tokenize(rest);
  if (tokens.size() < 2) {
    return "ERR InvalidArgument: DEFINE needs <name> <rule>\n";
  }
  const std::string& name = tokens[0];
  std::string text = JoinFrom(tokens, 1, tokens.size());
  // Validate now so a bad DEFINE fails loudly instead of at request time.
  Result<Program> parsed = ParseProgram(text, ctx_.interner());
  if (!parsed.ok()) {
    return "ERR " + parsed.status().ToString() + "\n";
  }
  if (parsed->rules.empty()) {
    return "ERR InvalidArgument: DEFINE needs at least one rule\n";
  }
  queries_[name] = std::move(text);
  return "OK query " + name +
         " rules=" + std::to_string(parsed->rules.size()) + "\n";
}

std::string ServerSession::HandleContained(const std::string& rest) {
  std::vector<std::string> tokens = Tokenize(rest);
  DecisionRequest request;
  std::string option_error = ConsumeBudgetOptions(&tokens, &request.options);
  if (!option_error.empty()) return option_error;
  if (tokens.size() != 3 || tokens[2].size() < 2 || tokens[2][0] != '@') {
    return "ERR InvalidArgument: expected CONTAINED? <q1> <q2> @<catalog> "
           "[timeout_ms=N] [budget=N] [workers=N]\n";
  }
  for (int side = 0; side < 2; ++side) {
    auto it = queries_.find(tokens[side]);
    if (it == queries_.end()) {
      return "ERR InvalidArgument: unknown query '" + tokens[side] +
             "' — DEFINE it first\n";
    }
    (side == 0 ? request.q1_text : request.q2_text) = it->second;
  }
  request.catalog = tokens[2].substr(1);
  if (in_batch_) {
    batch_.push_back(std::move(request));
    return "QUEUED " + std::to_string(batch_.size() - 1) + "\n";
  }
  DecisionResponse response = service_->Decide(request, &ctx_);
  Observe(request, response);
  return RenderResponse(response);
}

const std::string* ServerSession::LookupQuery(const std::string& name,
                                              std::string* error) const {
  auto it = queries_.find(name);
  if (it == queries_.end()) {
    *error = "ERR InvalidArgument: unknown query '" + name +
             "' — DEFINE it first\n";
    return nullptr;
  }
  return &it->second;
}

void ServerSession::AppendTrace(const trace::TraceContext* trace, bool json,
                                std::string* out) {
  if (trace == nullptr) return;
  if (trace->spans().empty() && !trace::kCompiledIn) {
    *out += "(trace hooks compiled out: rebuild with -DRELCONT_TRACE=ON)\n";
    return;
  }
  if (json) {
    *out += trace->ToChromeJson();
    *out += '\n';
  } else {
    *out += trace->ToText();
  }
}

std::string ServerSession::HandlePlan(const std::string& rest,
                                      bool collect_trace, bool trace_json) {
  if (in_batch_) {
    return "ERR InvalidArgument: PLAN? is not allowed inside a batch\n";
  }
  std::vector<std::string> tokens = Tokenize(rest);
  PlanRequest request;
  std::string option_error = ConsumeBudgetOptions(&tokens, &request.options);
  if (!option_error.empty()) return option_error;
  if (tokens.size() != 2 || tokens[1].size() < 2 || tokens[1][0] != '@') {
    return "ERR InvalidArgument: expected PLAN? <q> @<catalog> "
           "[timeout_ms=N] [budget=N] [workers=N]\n";
  }
  std::string error;
  const std::string* query = LookupQuery(tokens[0], &error);
  if (query == nullptr) return error;
  request.query_text = *query;
  request.catalog = tokens[1].substr(1);
  // EXPLAIN semantics: bypass the cache so there is a construction to
  // trace.
  request.collect_trace = collect_trace;
  request.bypass_cache = collect_trace;
  PlanResponse response = service_->planner().Plan(request, &planner_ctx_);
  if (!response.status.ok()) {
    return "ERR [id=" + std::to_string(response.request_id) + "] " +
           response.status.ToString() + "\n";
  }
  std::string out = "OK plan catalog=" + request.catalog + " v" +
                    std::to_string(response.catalog_version) +
                    " kind=" + (response.recursive ? "recursive" : "ucq") +
                    " rules=" + std::to_string(response.num_rules);
  if (!response.dom_predicate.empty()) {
    out += " dom=" + response.dom_predicate;
  }
  out += response.cache_hit ? " HIT " : " MISS ";
  out += std::to_string(response.latency_micros);
  out += "us id=";
  out += std::to_string(response.request_id);
  out += '\n';
  out += response.plan_text;
  if (collect_trace) AppendTrace(response.trace.get(), trace_json, &out);
  return out;
}

std::string ServerSession::HandleRewrite(const std::string& rest,
                                         bool collect_trace,
                                         bool trace_json) {
  if (in_batch_) {
    return "ERR InvalidArgument: REWRITE? is not allowed inside a batch\n";
  }
  std::vector<std::string> tokens = Tokenize(rest);
  RewriteRequest request;
  std::string option_error = ConsumeBudgetOptions(&tokens, &request.options);
  if (!option_error.empty()) return option_error;
  if (tokens.size() != 3 || tokens[2].size() < 2 || tokens[2][0] != '@') {
    return "ERR InvalidArgument: expected REWRITE? <q1> <q2> @<catalog> "
           "[timeout_ms=N] [budget=N] [workers=N]\n";
  }
  std::string error;
  for (int side = 0; side < 2; ++side) {
    const std::string* query = LookupQuery(tokens[side], &error);
    if (query == nullptr) return error;
    (side == 0 ? request.q1_text : request.q2_text) = *query;
  }
  request.catalog = tokens[2].substr(1);
  request.collect_trace = collect_trace;
  request.bypass_cache = collect_trace;
  RewriteResponse response =
      service_->planner().Rewrite(request, &planner_ctx_);
  if (!response.status.ok()) {
    return "ERR [id=" + std::to_string(response.request_id) + "] " +
           response.status.ToString() + "\n";
  }
  std::string out = response.contained ? "YES plan" : "NO plan";
  out += response.cache_hit ? " HIT " : " MISS ";
  out += std::to_string(response.latency_micros);
  out += "us id=";
  out += std::to_string(response.request_id);
  if (!response.witness_text.empty()) {
    out += " witness: ";
    out += response.witness_text;
  }
  out += '\n';
  if (collect_trace) AppendTrace(response.trace.get(), trace_json, &out);
  return out;
}

std::string ServerSession::HandleRequestz(const std::string& rest) {
  if (in_batch_) {
    return "ERR InvalidArgument: REQUESTZ is not allowed inside a batch\n";
  }
  // Introspection, like METRICS: mints no id and records no wide event, so
  // REQUESTZ and GET /requestz render byte-identical documents.
  std::vector<std::string> tokens = Tokenize(rest);
  if (tokens.empty()) {
    return obs::RenderRequestzListJson(service_->metrics().flight());
  }
  char* end = nullptr;
  unsigned long long id = std::strtoull(tokens[0].c_str(), &end, 10);
  if (tokens.size() > 1 || end == nullptr || *end != '\0' || id == 0) {
    return "ERR InvalidArgument: expected REQUESTZ [<id>]\n";
  }
  std::optional<obs::FlightRecorder::Retained> entry =
      service_->metrics().flight().FindRetained(id);
  if (!entry.has_value()) {
    return "ERR InvalidArgument: request id " + std::to_string(id) +
           " not retained\n";
  }
  return obs::RenderRequestzEventJson(*entry);
}

std::string ServerSession::HandleCatalogQuery(const std::string& rest) {
  std::vector<std::string> tokens = Tokenize(rest);
  if (tokens.size() > 1) {
    return "ERR InvalidArgument: expected CATALOG? [<name>]\n";
  }
  std::vector<std::string> names;
  if (tokens.empty()) {
    names = service_->catalogs().Names();
  } else {
    names.push_back(tokens[0]);
  }
  std::string out = "{\"catalogs\":[";
  bool first = true;
  for (const std::string& name : names) {
    auto spec = service_->catalogs().Find(name);
    if (spec == nullptr) {
      if (!tokens.empty()) {
        return "ERR InvalidArgument: unknown catalog '" + name + "'\n";
      }
      continue;  // raced with a concurrent removal of a listed name
    }
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    json::AppendEscaped(spec->name, &out);
    out += ",\"version\":" + std::to_string(spec->version);
    out += ",\"views\":" + std::to_string(spec->num_views);
    out += ",\"patterns\":[";
    for (size_t i = 0; i < spec->patterns.size(); ++i) {
      if (i > 0) out += ',';
      out += "{\"source\":";
      json::AppendEscaped(spec->patterns[i].first, &out);
      out += ",\"adornment\":";
      json::AppendEscaped(spec->patterns[i].second, &out);
      out += '}';
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

std::string ServerSession::HandleExplain(const std::string& rest) {
  if (in_batch_) {
    return "ERR InvalidArgument: EXPLAIN is not allowed inside a batch\n";
  }
  std::vector<std::string> tokens = Tokenize(rest);
  bool json = !tokens.empty() && tokens[0] == "JSON";
  if (json) tokens.erase(tokens.begin());
  if (!tokens.empty() && tokens[0] == "PLAN?") {
    return HandlePlan(JoinFrom(tokens, 1, tokens.size()),
                      /*collect_trace=*/true, json);
  }
  if (!tokens.empty() && tokens[0] == "REWRITE?") {
    return HandleRewrite(JoinFrom(tokens, 1, tokens.size()),
                         /*collect_trace=*/true, json);
  }
  DecisionRequest request;
  std::string option_error = ConsumeBudgetOptions(&tokens, &request.options);
  if (!option_error.empty()) return option_error;
  if (tokens.size() != 3 || tokens[2].size() < 2 || tokens[2][0] != '@') {
    return "ERR InvalidArgument: expected EXPLAIN [JSON] <q1> <q2> "
           "@<catalog> [timeout_ms=N] [budget=N] [workers=N]\n";
  }
  for (int side = 0; side < 2; ++side) {
    auto it = queries_.find(tokens[side]);
    if (it == queries_.end()) {
      return "ERR InvalidArgument: unknown query '" + tokens[side] +
             "' — DEFINE it first\n";
    }
    (side == 0 ? request.q1_text : request.q2_text) = it->second;
  }
  request.catalog = tokens[2].substr(1);
  // Bypass the cache so there is an actual decision to trace — a cache hit
  // would explain nothing.
  request.bypass_cache = true;
  request.collect_trace = true;
  DecisionResponse response = service_->Decide(request, &ctx_);
  Observe(request, response);
  std::string out = RenderResponse(response);
  if (!response.status.ok() || response.trace == nullptr) return out;
  if (response.trace->spans().empty() && !trace::kCompiledIn) {
    out += "(trace hooks compiled out: rebuild with -DRELCONT_TRACE=ON)\n";
    return out;
  }
  if (json) {
    out += response.trace->ToChromeJson();
    out += '\n';
  } else {
    out += response.trace->ToText();
  }
  return out;
}

std::string ServerSession::HandleBatch(const std::string& rest) {
  if (rest == "BEGIN") {
    if (in_batch_) return "ERR InvalidArgument: already in a batch\n";
    in_batch_ = true;
    batch_.clear();
    return "OK batch begin\n";
  }
  if (rest == "END") {
    if (!in_batch_) return "ERR InvalidArgument: no batch in progress\n";
    in_batch_ = false;
    std::vector<DecisionResponse> responses =
        service_->ExecuteBatch(batch_, batch_threads_);
    std::string out =
        "OK batch " + std::to_string(responses.size()) + "\n";
    for (size_t i = 0; i < responses.size(); ++i) {
      Observe(batch_[i], responses[i]);
      out += "[" + std::to_string(i) + "] " + RenderResponse(responses[i]);
    }
    batch_.clear();
    return out;
  }
  return "ERR InvalidArgument: expected BATCH BEGIN or BATCH END\n";
}

std::string ServerSession::RenderResponse(
    const DecisionResponse& response) const {
  if (!response.status.ok()) {
    // Service-originated errors carry the request id so a client log line
    // correlates with the server-side retained trace (REQUESTZ <id>).
    // Protocol-level validation errors (no id was minted) stay plain.
    return "ERR [id=" + std::to_string(response.request_id) + "] " +
           response.status.ToString() + "\n";
  }
  std::string out = response.contained ? "YES " : "NO ";
  out += RegimeName(response.regime);
  out += response.cache_hit ? " HIT " : " MISS ";
  out += std::to_string(response.latency_micros);
  out += "us id=";
  out += std::to_string(response.request_id);
  if (!response.witness_text.empty()) {
    out += " witness: ";
    out += response.witness_text;
  }
  out += '\n';
  return out;
}

}  // namespace relcont
