#ifndef RELCONT_SERVICE_PROTOCOL_H_
#define RELCONT_SERVICE_PROTOCOL_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "service/service.h"

namespace relcont {

/// Invoked once per finished containment decision (CONTAINED?, EXPLAIN,
/// and each batch element), after the service answered. The observer runs
/// on the session's thread; it must be safe to call from many sessions
/// concurrently if one observer instance is shared (obs::AccessLog is).
using DecisionObserver =
    std::function<void(const DecisionRequest&, const DecisionResponse&)>;

/// One client session of the line-delimited request/response protocol
/// (grammar in docs/SERVICE.md). One request per line:
///
///   CATALOG <name> VIEW <rule> [VIEW <rule>]... [PATTERN <src> <adr>]...
///   DEFINE <name> <rule> [<rule>]...
///   CONTAINED? <q1> <q2> @<catalog> [timeout_ms=N] [budget=N] [workers=N]
///   PLAN? <q> @<catalog> [...]      (maximally-contained plan of <q>)
///   REWRITE? <q1> <q2> @<catalog> [...]  (plan-level P1^exp ⊑ Q2)
///   EXPLAIN [JSON] [PLAN?|REWRITE?] <args>  (traced, cache-bypassing)
///   BATCH BEGIN ... BATCH END       (CONTAINED? lines fan out in parallel)
///   CATALOG? [<name>]               (catalog introspection, one JSON line)
///   CATALOGS | METRICS | HELP
///
/// Responses are single lines ("OK ...", "YES ...", "NO ...", "ERR ...")
/// except METRICS, BATCH END, and EXPLAIN, which emit several. EXPLAIN
/// answers like CONTAINED? on its first line, then the decision's span
/// tree (indented text, or one line of Chrome trace_event JSON with the
/// JSON flag — see docs/OBSERVABILITY.md). The session
/// owns a WorkerContext; the ContainmentService it fronts is shared, so
/// many sessions (e.g. one per connection) can run concurrently.
///
/// Not thread-safe — one session per thread, like WorkerContext.
class ServerSession {
 public:
  /// `batch_threads` is the fan-out width of BATCH END.
  explicit ServerSession(ContainmentService* service, int batch_threads = 4);

  /// Processes one request line and returns the response text, newline
  /// terminated. Empty and '%'-comment lines yield an empty response.
  std::string HandleLine(const std::string& line);

  /// Installs an observer for every decision this session makes (access
  /// logging). Pass an empty function to remove it.
  void set_decision_observer(DecisionObserver observer) {
    observer_ = std::move(observer);
  }

 private:
  void Observe(const DecisionRequest& request,
               const DecisionResponse& response) const {
    if (observer_) observer_(request, response);
  }

  std::string HandleCatalog(const std::string& rest);
  std::string HandleDefine(const std::string& rest);
  std::string HandleContained(const std::string& rest);
  std::string HandlePlan(const std::string& rest, bool collect_trace,
                         bool trace_json);
  std::string HandleRewrite(const std::string& rest, bool collect_trace,
                            bool trace_json);
  std::string HandleCatalogQuery(const std::string& rest);
  std::string HandleRequestz(const std::string& rest);
  std::string HandleExplain(const std::string& rest);
  std::string HandleBatch(const std::string& rest);
  std::string RenderResponse(const DecisionResponse& response) const;
  /// Looks up a DEFINE'd query name; returns "" and fills *error on miss.
  const std::string* LookupQuery(const std::string& name,
                                 std::string* error) const;
  /// Appends the rendered span tree (or a compiled-out notice) to *out.
  static void AppendTrace(const trace::TraceContext* trace, bool json,
                          std::string* out);

  ContainmentService* service_;
  WorkerContext ctx_;
  /// The planner's arena, retired independently of ctx_ (plan construction
  /// mints far more symbols per request than a containment decision).
  PlannerContext planner_ctx_;
  int batch_threads_;
  DecisionObserver observer_;
  /// Named query texts declared with DEFINE.
  std::map<std::string, std::string> queries_;
  bool in_batch_ = false;
  std::vector<DecisionRequest> batch_;
};

}  // namespace relcont

#endif  // RELCONT_SERVICE_PROTOCOL_H_
