#include "service/metrics.h"

#include <algorithm>
#include <chrono>

#include "common/budget.h"
#include "constraints/dense_order.h"
#include "relcont/cegar.h"
#include "relcont/version.h"

namespace relcont {

std::string_view ServiceVerbName(ServiceVerb verb) {
  switch (verb) {
    case ServiceVerb::kContained:
      return "contained";
    case ServiceVerb::kPlan:
      return "plan";
    case ServiceVerb::kRewrite:
      return "rewrite";
  }
  return "unknown";
}

void LatencyHistogram::Record(uint64_t micros) {
  int bucket = 0;
  while (bucket < kBuckets - 1 && micros >= (uint64_t{1} << bucket)) {
    ++bucket;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
}

uint64_t LatencyHistogram::TotalCount() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

std::pair<uint64_t, uint64_t> LatencyHistogram::BucketBounds(int bucket) {
  uint64_t lower = bucket == 0 ? 0 : uint64_t{1} << (bucket - 1);
  uint64_t upper =
      bucket == kBuckets - 1 ? 0 : uint64_t{1} << bucket;
  return {lower, upper};
}

ServiceMetrics::ServiceMetrics()
    : windows_(new obs::WindowRing[kNumVerbs * kNumRegimes]) {
  window_clock_ = [start = start_steady_]() -> uint64_t {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  };
}

void ServiceMetrics::set_window_secs(int secs) {
  secs = std::max(1, std::min(secs, obs::WindowRing::kMaxWindowSecs));
  window_secs_.store(secs, std::memory_order_relaxed);
}

void ServiceMetrics::RecordWindow(ServiceVerb verb, Regime regime,
                                  uint64_t micros) {
  Ring(static_cast<int>(verb), static_cast<int>(regime))
      .Record(window_clock_(), micros);
}

obs::WindowAggregate ServiceMetrics::WindowFor(ServiceVerb verb,
                                               int window_secs,
                                               int regime) const {
  const uint64_t now_sec = window_clock_();
  obs::WindowAggregate out;
  const int v = static_cast<int>(verb);
  if (regime >= 0 && regime < kNumRegimes) {
    return Ring(v, regime).Aggregate(now_sec, window_secs);
  }
  for (int r = 0; r < kNumRegimes; ++r) {
    out.Merge(Ring(v, r).Aggregate(now_sec, window_secs));
  }
  return out;
}

void ServiceMetrics::RecordRequest(Regime regime, uint64_t latency_micros,
                                   bool error, bool cache_hit) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (error) errors_.fetch_add(1, std::memory_order_relaxed);
  if (cache_hit) cache_hits_.fetch_add(1, std::memory_order_relaxed);
  by_regime_[static_cast<int>(regime)].fetch_add(1,
                                                 std::memory_order_relaxed);
  latency_.Record(latency_micros);
  RecordWindow(ServiceVerb::kContained, regime, latency_micros);
}

void ServiceMetrics::RecordPlanRequest(bool rewrite, Regime regime,
                                       uint64_t latency_micros, bool error) {
  (rewrite ? rewrite_requests_ : plan_requests_)
      .fetch_add(1, std::memory_order_relaxed);
  if (error) plan_errors_.fetch_add(1, std::memory_order_relaxed);
  latency_.Record(latency_micros);
  RecordWindow(rewrite ? ServiceVerb::kRewrite : ServiceVerb::kPlan, regime,
               latency_micros);
}

void ServiceMetrics::RecordTrace(Regime regime, uint64_t latency_micros,
                                 const trace::TraceContext& trace,
                                 std::string description,
                                 uint64_t request_id) {
  auto& totals = counter_totals_[static_cast<int>(regime)];
  for (int c = 0; c < kNumTraceCounters; ++c) {
    uint64_t v = trace.TotalCount(static_cast<trace::Counter>(c));
    if (v != 0) totals[c].fetch_add(v, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(trace_mu_);
  for (const trace::SpanNode& s : trace.spans()) {
    PhaseStat& stat = phases_[s.name];
    stat.ns += s.duration_ns();
    stat.calls += 1;
  }
  if (slow_log_capacity_ == 0) return;
  if (slow_log_.size() >= slow_log_capacity_ &&
      latency_micros <= slow_log_.back().latency_micros) {
    return;
  }
  SlowRequest entry;
  entry.latency_micros = latency_micros;
  entry.regime = regime;
  entry.request_id = request_id;
  entry.description = std::move(description);
  entry.trace_text = trace.ToText();
  // Digest for /statusz: the root span and its direct children aggregated
  // by name, largest cumulative time first (ties break by name).
  std::map<std::string, PhaseStat> tops;
  for (const trace::SpanNode& s : trace.spans()) {
    if (s.depth > 1) continue;
    PhaseStat& stat = tops[s.name];
    stat.ns += s.duration_ns();
    stat.calls += 1;
  }
  for (const auto& [name, stat] : tops) {
    entry.top_phases.push_back({name, stat.ns, stat.calls});
  }
  std::sort(entry.top_phases.begin(), entry.top_phases.end(),
            [](const obs::PhaseSnapshot& a, const obs::PhaseSnapshot& b) {
              if (a.ns != b.ns) return a.ns > b.ns;
              return a.name < b.name;
            });
  slow_log_.push_back(std::move(entry));
  // Stable: requests with equal latency keep their arrival order, so ties
  // at the cutoff are broken deterministically (earliest recorded wins).
  std::stable_sort(slow_log_.begin(), slow_log_.end(),
                   [](const SlowRequest& a, const SlowRequest& b) {
                     return a.latency_micros > b.latency_micros;
                   });
  if (slow_log_.size() > slow_log_capacity_) {
    slow_log_.resize(slow_log_capacity_);
  }
}

void ServiceMetrics::RecordFlight(ServiceVerb verb, obs::WideEvent event,
                                  const trace::TraceContext* trace) {
  event.ts_unix_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  if (trace != nullptr) {
    event.traced = 1;
    // Same digest the slow log shows: root span + direct children,
    // aggregated by name, largest cumulative time first.
    std::map<std::string, uint64_t> tops;
    for (const trace::SpanNode& s : trace->spans()) {
      if (s.depth > 1) continue;
      tops[s.name] += s.duration_ns();
    }
    std::vector<std::pair<std::string, uint64_t>> sorted(tops.begin(),
                                                         tops.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    for (int i = 0;
         i < obs::WideEvent::kMaxPhases &&
         i < static_cast<int>(sorted.size());
         ++i) {
      obs::WideEvent::CopyInto(event.phases[i].name,
                               obs::WideEvent::kPhaseChars, sorted[i].first);
      event.phases[i].ns = sorted[i].second;
    }
  }
  flight_.Record(event);
  const uint64_t p99 = TailThresholdMicros(verb);
  const bool tail =
      event.error != 0 || (p99 > 0 && event.latency_micros > p99);
  if (tail || flight_.ShouldHeadSample(event.request_id)) {
    flight_.Retain(event, trace != nullptr ? trace->ToText() : std::string(),
                   trace != nullptr ? trace->ToChromeJson() : std::string());
  }
}

uint64_t ServiceMetrics::TailThresholdMicros(ServiceVerb verb) const {
  const uint64_t now_sec = window_clock_();
  std::atomic<uint64_t>& cell = tail_cache_[static_cast<int>(verb)];
  const uint64_t packed = cell.load(std::memory_order_relaxed);
  if (packed != 0 && (packed >> 32) == (now_sec & 0xffffffffu)) {
    return packed & 0xffffffffu;
  }
  // Stale (or never computed) for this window second: aggregate the short
  // window across regimes and cache the p99. Concurrent recomputes race
  // benignly — both store the same second's answer.
  const obs::WindowAggregate agg =
      WindowFor(verb, kShortWindowSecs, kNumRegimes);
  uint64_t p99 = agg.count() == 0 ? 0 : agg.PercentileMicros(0.99);
  if (p99 > 0xffffffffu) p99 = 0xffffffffu;
  // The high word is never 0 once computed (second 0 with an empty window
  // packs to 0 and simply recomputes — harmless for one second at start).
  cell.store(((now_sec & 0xffffffffu) << 32) | p99,
             std::memory_order_relaxed);
  return p99;
}

uint64_t ServiceMetrics::PhaseNanos(const std::string& phase) const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  auto it = phases_.find(phase);
  return it == phases_.end() ? 0 : it->second.ns;
}

uint64_t ServiceMetrics::PhaseCalls(const std::string& phase) const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  auto it = phases_.find(phase);
  return it == phases_.end() ? 0 : it->second.calls;
}

std::vector<SlowRequest> ServiceMetrics::SlowLog() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  return slow_log_;
}

void ServiceMetrics::set_slow_log_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(trace_mu_);
  slow_log_capacity_ = capacity;
  if (slow_log_.size() > capacity) slow_log_.resize(capacity);
}

obs::MetricsSnapshot ServiceMetrics::Snapshot(
    const CacheStats& cache, const PlanCacheStats& plan_cache) const {
  obs::MetricsSnapshot s;
  s.version = kVersionString;
  s.trace_compiled_in = trace::kCompiledIn;
  s.start_time_unix_seconds = start_unix_seconds_;
  s.uptime_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_steady_)
                         .count();

  s.requests = requests();
  s.errors = errors();
  s.request_cache_hits = cache_hits();
  s.deadline_exceeded = deadline_exceeded();
  s.parallel_tasks_spawned = tasks_spawned();
  s.parallel_tasks_completed = tasks_completed();
  s.plan_requests = plan_requests();
  s.rewrite_requests = rewrite_requests();
  s.plan_errors = plan_errors();
  s.unknown_verbs = unknown_verbs();
  s.plan_cache = plan_cache;
  s.inflight_requests = inflight_requests();
  s.open_connections = open_connections();
  s.batch_queue_depth = batch_queue_depth();
  s.draining = draining();
  s.http_rejected_431 = http_rejected_431_.load(std::memory_order_relaxed);
  s.http_rejected_408 = http_rejected_408_.load(std::memory_order_relaxed);
  for (const auto& [site, count] : BoundSiteCounts()) {
    s.bound_sites.push_back({site, count});
  }
  s.flight_retained = flight_.retained_total();
  s.flight_dropped = flight_.dropped_total();
  s.flight_arena_bytes = flight_.arena_bytes();
  const constraints::DenseOrderStats& dense =
      constraints::GlobalDenseOrderStats();
  s.dense_order_propagations =
      dense.propagations.load(std::memory_order_relaxed);
  s.dense_order_pruned_branches =
      dense.pruned_branches.load(std::memory_order_relaxed);
  s.dense_order_bound_hits = dense.bound_hits.load(std::memory_order_relaxed);
  const CegarGlobalCounters& cegar = GlobalCegarCounters();
  s.cegar_iterations = cegar.iterations.load(std::memory_order_relaxed);
  s.cegar_blocking_clauses =
      cegar.blocking_clauses.load(std::memory_order_relaxed);
  s.cegar_proposals = cegar.proposals.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumRegimes; ++i) {
    Regime regime = static_cast<Regime>(i);
    uint64_t count = RegimeCount(regime);
    if (count == 0) continue;
    s.decisions_by_regime.push_back(
        {std::string(RegimeName(regime)), count});
  }
  s.cache = cache;

  // Prometheus histogram convention: buckets are cumulative, keyed by
  // their inclusive upper bound `le`, and always end at +Inf. The bucket
  // upper bound is exclusive in the histogram but `le` is inclusive;
  // [0, 2^i) integers == le 2^i - 1.
  uint64_t cumulative = 0;
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    cumulative += latency_.BucketCount(i);
    auto [lower, upper] = LatencyHistogram::BucketBounds(i);
    (void)lower;
    obs::HistogramBucket bucket;
    bucket.unbounded = upper == 0;
    bucket.le = bucket.unbounded ? 0 : upper - 1;
    bucket.cumulative_count = cumulative;
    s.latency_buckets.push_back(bucket);
  }
  s.latency_sum_micros = latency_.SumMicros();
  s.latency_count = latency_.TotalCount();

  // Windowed percentiles: per verb and trailing window, one always-present
  // "all" row (every regime folded together) plus one row per regime with
  // traffic in that window.
  s.short_window_secs = kShortWindowSecs;
  s.long_window_secs = window_secs();
  const uint64_t now_sec = window_clock_();
  std::vector<int> window_lengths = {kShortWindowSecs};
  if (s.long_window_secs != kShortWindowSecs) {
    window_lengths.push_back(s.long_window_secs);
  }
  for (int v = 0; v < kNumVerbs; ++v) {
    const std::string verb(ServiceVerbName(static_cast<ServiceVerb>(v)));
    for (int wsecs : window_lengths) {
      obs::WindowAggregate per_regime[kNumRegimes];
      obs::WindowAggregate all;
      for (int r = 0; r < kNumRegimes; ++r) {
        per_regime[r] = Ring(v, r).Aggregate(now_sec, wsecs);
        all.Merge(per_regime[r]);
      }
      auto row = [&](const std::string& regime,
                     const obs::WindowAggregate& agg) {
        obs::WindowLatency w;
        w.verb = verb;
        w.regime = regime;
        w.window_secs = wsecs;
        w.count = agg.count();
        w.p50_micros = agg.PercentileMicros(0.50);
        w.p90_micros = agg.PercentileMicros(0.90);
        w.p99_micros = agg.PercentileMicros(0.99);
        w.max_micros = agg.max_micros;
        s.window_latency.push_back(std::move(w));
      };
      row("all", all);
      for (int r = 0; r < kNumRegimes; ++r) {
        if (per_regime[r].count() == 0) continue;
        row(std::string(RegimeName(static_cast<Regime>(r))), per_regime[r]);
      }
    }
  }

  for (int r = 0; r < kNumRegimes; ++r) {
    for (int c = 0; c < kNumTraceCounters; ++c) {
      uint64_t v = counter_totals_[r][c].load(std::memory_order_relaxed);
      if (v == 0) continue;
      s.trace_counter_totals.push_back(
          {std::string(RegimeName(static_cast<Regime>(r))),
           std::string(trace::CounterName(static_cast<trace::Counter>(c))),
           v});
    }
  }

  std::lock_guard<std::mutex> lock(trace_mu_);
  for (const auto& [phase, stat] : phases_) {
    s.phases.push_back({phase, stat.ns, stat.calls});
  }
  for (const SlowRequest& slow : slow_log_) {
    s.slow_log.push_back({slow.latency_micros,
                          std::string(RegimeName(slow.regime)),
                          slow.request_id, slow.description, slow.trace_text,
                          slow.top_phases});
  }
  return s;
}

std::string ServiceMetrics::Dump(const CacheStats& cache,
                                 const PlanCacheStats& plan_cache) const {
  return obs::RenderMetricsText(Snapshot(cache, plan_cache));
}

}  // namespace relcont
