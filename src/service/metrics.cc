#include "service/metrics.h"

#include <algorithm>
#include <chrono>

#include "constraints/dense_order.h"
#include "relcont/version.h"

namespace relcont {

void LatencyHistogram::Record(uint64_t micros) {
  int bucket = 0;
  while (bucket < kBuckets - 1 && micros >= (uint64_t{1} << bucket)) {
    ++bucket;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
}

uint64_t LatencyHistogram::TotalCount() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

std::pair<uint64_t, uint64_t> LatencyHistogram::BucketBounds(int bucket) {
  uint64_t lower = bucket == 0 ? 0 : uint64_t{1} << (bucket - 1);
  uint64_t upper =
      bucket == kBuckets - 1 ? 0 : uint64_t{1} << bucket;
  return {lower, upper};
}

void ServiceMetrics::RecordRequest(Regime regime, uint64_t latency_micros,
                                   bool error, bool cache_hit) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (error) errors_.fetch_add(1, std::memory_order_relaxed);
  if (cache_hit) cache_hits_.fetch_add(1, std::memory_order_relaxed);
  by_regime_[static_cast<int>(regime)].fetch_add(1,
                                                 std::memory_order_relaxed);
  latency_.Record(latency_micros);
}

void ServiceMetrics::RecordTrace(Regime regime, uint64_t latency_micros,
                                 const trace::TraceContext& trace,
                                 std::string description) {
  auto& totals = counter_totals_[static_cast<int>(regime)];
  for (int c = 0; c < kNumTraceCounters; ++c) {
    uint64_t v = trace.TotalCount(static_cast<trace::Counter>(c));
    if (v != 0) totals[c].fetch_add(v, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(trace_mu_);
  for (const trace::SpanNode& s : trace.spans()) {
    PhaseStat& stat = phases_[s.name];
    stat.ns += s.duration_ns();
    stat.calls += 1;
  }
  if (slow_log_capacity_ == 0) return;
  if (slow_log_.size() >= slow_log_capacity_ &&
      latency_micros <= slow_log_.back().latency_micros) {
    return;
  }
  SlowRequest entry;
  entry.latency_micros = latency_micros;
  entry.regime = regime;
  entry.description = std::move(description);
  entry.trace_text = trace.ToText();
  slow_log_.push_back(std::move(entry));
  // Stable: requests with equal latency keep their arrival order, so ties
  // at the cutoff are broken deterministically (earliest recorded wins).
  std::stable_sort(slow_log_.begin(), slow_log_.end(),
                   [](const SlowRequest& a, const SlowRequest& b) {
                     return a.latency_micros > b.latency_micros;
                   });
  if (slow_log_.size() > slow_log_capacity_) {
    slow_log_.resize(slow_log_capacity_);
  }
}

uint64_t ServiceMetrics::PhaseNanos(const std::string& phase) const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  auto it = phases_.find(phase);
  return it == phases_.end() ? 0 : it->second.ns;
}

uint64_t ServiceMetrics::PhaseCalls(const std::string& phase) const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  auto it = phases_.find(phase);
  return it == phases_.end() ? 0 : it->second.calls;
}

std::vector<SlowRequest> ServiceMetrics::SlowLog() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  return slow_log_;
}

void ServiceMetrics::set_slow_log_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(trace_mu_);
  slow_log_capacity_ = capacity;
  if (slow_log_.size() > capacity) slow_log_.resize(capacity);
}

obs::MetricsSnapshot ServiceMetrics::Snapshot(
    const CacheStats& cache, const PlanCacheStats& plan_cache) const {
  obs::MetricsSnapshot s;
  s.version = kVersionString;
  s.trace_compiled_in = trace::kCompiledIn;
  s.start_time_unix_seconds = start_unix_seconds_;
  s.uptime_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_steady_)
                         .count();

  s.requests = requests();
  s.errors = errors();
  s.request_cache_hits = cache_hits();
  s.deadline_exceeded = deadline_exceeded();
  s.parallel_tasks_spawned = tasks_spawned();
  s.parallel_tasks_completed = tasks_completed();
  s.plan_requests = plan_requests();
  s.rewrite_requests = rewrite_requests();
  s.plan_errors = plan_errors();
  s.unknown_verbs = unknown_verbs();
  s.plan_cache = plan_cache;
  const constraints::DenseOrderStats& dense =
      constraints::GlobalDenseOrderStats();
  s.dense_order_propagations =
      dense.propagations.load(std::memory_order_relaxed);
  s.dense_order_pruned_branches =
      dense.pruned_branches.load(std::memory_order_relaxed);
  s.dense_order_bound_hits = dense.bound_hits.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumRegimes; ++i) {
    Regime regime = static_cast<Regime>(i);
    uint64_t count = RegimeCount(regime);
    if (count == 0) continue;
    s.decisions_by_regime.push_back(
        {std::string(RegimeName(regime)), count});
  }
  s.cache = cache;

  // Prometheus histogram convention: buckets are cumulative, keyed by
  // their inclusive upper bound `le`, and always end at +Inf. The bucket
  // upper bound is exclusive in the histogram but `le` is inclusive;
  // [0, 2^i) integers == le 2^i - 1.
  uint64_t cumulative = 0;
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    cumulative += latency_.BucketCount(i);
    auto [lower, upper] = LatencyHistogram::BucketBounds(i);
    (void)lower;
    obs::HistogramBucket bucket;
    bucket.unbounded = upper == 0;
    bucket.le = bucket.unbounded ? 0 : upper - 1;
    bucket.cumulative_count = cumulative;
    s.latency_buckets.push_back(bucket);
  }
  s.latency_sum_micros = latency_.SumMicros();
  s.latency_count = latency_.TotalCount();

  for (int r = 0; r < kNumRegimes; ++r) {
    for (int c = 0; c < kNumTraceCounters; ++c) {
      uint64_t v = counter_totals_[r][c].load(std::memory_order_relaxed);
      if (v == 0) continue;
      s.trace_counter_totals.push_back(
          {std::string(RegimeName(static_cast<Regime>(r))),
           std::string(trace::CounterName(static_cast<trace::Counter>(c))),
           v});
    }
  }

  std::lock_guard<std::mutex> lock(trace_mu_);
  for (const auto& [phase, stat] : phases_) {
    s.phases.push_back({phase, stat.ns, stat.calls});
  }
  for (const SlowRequest& slow : slow_log_) {
    s.slow_log.push_back({slow.latency_micros,
                          std::string(RegimeName(slow.regime)),
                          slow.description, slow.trace_text});
  }
  return s;
}

std::string ServiceMetrics::Dump(const CacheStats& cache,
                                 const PlanCacheStats& plan_cache) const {
  return obs::RenderMetricsText(Snapshot(cache, plan_cache));
}

}  // namespace relcont
