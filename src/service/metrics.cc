#include "service/metrics.h"

#include <algorithm>
#include <cstdio>

namespace relcont {

void LatencyHistogram::Record(uint64_t micros) {
  int bucket = 0;
  while (bucket < kBuckets - 1 && micros >= (uint64_t{1} << bucket)) {
    ++bucket;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
}

uint64_t LatencyHistogram::TotalCount() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

std::pair<uint64_t, uint64_t> LatencyHistogram::BucketBounds(int bucket) {
  uint64_t lower = bucket == 0 ? 0 : uint64_t{1} << (bucket - 1);
  uint64_t upper =
      bucket == kBuckets - 1 ? 0 : uint64_t{1} << bucket;
  return {lower, upper};
}

void ServiceMetrics::RecordRequest(Regime regime, uint64_t latency_micros,
                                   bool error, bool cache_hit) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (error) errors_.fetch_add(1, std::memory_order_relaxed);
  if (cache_hit) cache_hits_.fetch_add(1, std::memory_order_relaxed);
  by_regime_[static_cast<int>(regime)].fetch_add(1,
                                                 std::memory_order_relaxed);
  latency_.Record(latency_micros);
}

void ServiceMetrics::RecordTrace(Regime regime, uint64_t latency_micros,
                                 const trace::TraceContext& trace,
                                 std::string description) {
  auto& totals = counter_totals_[static_cast<int>(regime)];
  for (int c = 0; c < kNumTraceCounters; ++c) {
    uint64_t v = trace.TotalCount(static_cast<trace::Counter>(c));
    if (v != 0) totals[c].fetch_add(v, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(trace_mu_);
  for (const trace::SpanNode& s : trace.spans()) {
    PhaseStat& stat = phases_[s.name];
    stat.ns += s.duration_ns();
    stat.calls += 1;
  }
  if (slow_log_capacity_ == 0) return;
  if (slow_log_.size() >= slow_log_capacity_ &&
      latency_micros <= slow_log_.back().latency_micros) {
    return;
  }
  SlowRequest entry;
  entry.latency_micros = latency_micros;
  entry.regime = regime;
  entry.description = std::move(description);
  entry.trace_text = trace.ToText();
  slow_log_.push_back(std::move(entry));
  std::sort(slow_log_.begin(), slow_log_.end(),
            [](const SlowRequest& a, const SlowRequest& b) {
              return a.latency_micros > b.latency_micros;
            });
  if (slow_log_.size() > slow_log_capacity_) {
    slow_log_.resize(slow_log_capacity_);
  }
}

uint64_t ServiceMetrics::PhaseNanos(const std::string& phase) const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  auto it = phases_.find(phase);
  return it == phases_.end() ? 0 : it->second.ns;
}

uint64_t ServiceMetrics::PhaseCalls(const std::string& phase) const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  auto it = phases_.find(phase);
  return it == phases_.end() ? 0 : it->second.calls;
}

std::vector<SlowRequest> ServiceMetrics::SlowLog() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  return slow_log_;
}

void ServiceMetrics::set_slow_log_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(trace_mu_);
  slow_log_capacity_ = capacity;
  if (slow_log_.size() > capacity) slow_log_.resize(capacity);
}

std::string ServiceMetrics::Dump(const CacheStats& cache) const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "requests_total %llu\nerrors_total %llu\n",
                static_cast<unsigned long long>(requests()),
                static_cast<unsigned long long>(errors()));
  out += line;
  for (int i = 0; i < kNumRegimes; ++i) {
    Regime regime = static_cast<Regime>(i);
    uint64_t count = RegimeCount(regime);
    if (count == 0) continue;
    std::snprintf(line, sizeof(line), "decisions_by_regime{%.*s} %llu\n",
                  static_cast<int>(RegimeName(regime).size()),
                  RegimeName(regime).data(),
                  static_cast<unsigned long long>(count));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "cache_hits %llu\ncache_misses %llu\ncache_evictions "
                "%llu\ncache_entries %llu\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                static_cast<unsigned long long>(cache.evictions),
                static_cast<unsigned long long>(cache.entries));
  out += line;
  // Prometheus histogram convention: buckets are cumulative, keyed by
  // their inclusive upper bound `le`, and always end at +Inf; the paired
  // _sum/_count series make averages computable.
  uint64_t cumulative = 0;
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    cumulative += latency_.BucketCount(i);
    auto [lower, upper] = LatencyHistogram::BucketBounds(i);
    (void)lower;
    if (upper == 0) {
      std::snprintf(line, sizeof(line),
                    "latency_us_bucket{le=\"+Inf\"} %llu\n",
                    static_cast<unsigned long long>(cumulative));
    } else {
      // The bucket upper bound is exclusive in the histogram but `le` is
      // inclusive; [0, 2^i) integers == le 2^i - 1.
      std::snprintf(line, sizeof(line),
                    "latency_us_bucket{le=\"%llu\"} %llu\n",
                    static_cast<unsigned long long>(upper - 1),
                    static_cast<unsigned long long>(cumulative));
    }
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "latency_us_sum %llu\nlatency_us_count %llu\n",
                static_cast<unsigned long long>(latency_.SumMicros()),
                static_cast<unsigned long long>(latency_.TotalCount()));
  out += line;

  for (int r = 0; r < kNumRegimes; ++r) {
    for (int c = 0; c < kNumTraceCounters; ++c) {
      uint64_t v = counter_totals_[r][c].load(std::memory_order_relaxed);
      if (v == 0) continue;
      std::string_view regime = RegimeName(static_cast<Regime>(r));
      std::string_view counter =
          trace::CounterName(static_cast<trace::Counter>(c));
      std::snprintf(line, sizeof(line),
                    "trace_counter_total{regime=\"%.*s\",counter=\"%.*s\"} "
                    "%llu\n",
                    static_cast<int>(regime.size()), regime.data(),
                    static_cast<int>(counter.size()), counter.data(),
                    static_cast<unsigned long long>(v));
      out += line;
    }
  }

  std::lock_guard<std::mutex> lock(trace_mu_);
  for (const auto& [phase, stat] : phases_) {
    std::snprintf(line, sizeof(line),
                  "trace_phase_ns{phase=\"%s\"} %llu\n"
                  "trace_phase_calls{phase=\"%s\"} %llu\n",
                  phase.c_str(), static_cast<unsigned long long>(stat.ns),
                  phase.c_str(),
                  static_cast<unsigned long long>(stat.calls));
    out += line;
  }
  for (size_t i = 0; i < slow_log_.size(); ++i) {
    const SlowRequest& slow = slow_log_[i];
    std::string_view regime = RegimeName(slow.regime);
    std::snprintf(line, sizeof(line),
                  "slow_request{rank=%llu,latency_us=%llu,regime=\"%.*s\"} ",
                  static_cast<unsigned long long>(i),
                  static_cast<unsigned long long>(slow.latency_micros),
                  static_cast<int>(regime.size()), regime.data());
    out += line;
    out += slow.description;
    out += '\n';
    // The span tree, indented so a scraper can skip continuation lines.
    size_t begin = 0;
    while (begin < slow.trace_text.size()) {
      size_t end = slow.trace_text.find('\n', begin);
      if (end == std::string::npos) end = slow.trace_text.size();
      out += "    ";
      out.append(slow.trace_text, begin, end - begin);
      out += '\n';
      begin = end + 1;
    }
  }
  return out;
}

}  // namespace relcont
