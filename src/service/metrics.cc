#include "service/metrics.h"

#include <cstdio>

namespace relcont {

void LatencyHistogram::Record(uint64_t micros) {
  int bucket = 0;
  while (bucket < kBuckets - 1 && micros >= (uint64_t{1} << bucket)) {
    ++bucket;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

uint64_t LatencyHistogram::TotalCount() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

std::pair<uint64_t, uint64_t> LatencyHistogram::BucketBounds(int bucket) {
  uint64_t lower = bucket == 0 ? 0 : uint64_t{1} << (bucket - 1);
  uint64_t upper =
      bucket == kBuckets - 1 ? 0 : uint64_t{1} << bucket;
  return {lower, upper};
}

void ServiceMetrics::RecordRequest(Regime regime, uint64_t latency_micros,
                                   bool error, bool cache_hit) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (error) errors_.fetch_add(1, std::memory_order_relaxed);
  if (cache_hit) cache_hits_.fetch_add(1, std::memory_order_relaxed);
  by_regime_[static_cast<int>(regime)].fetch_add(1,
                                                 std::memory_order_relaxed);
  latency_.Record(latency_micros);
}

std::string ServiceMetrics::Dump(const CacheStats& cache) const {
  char line[160];
  std::string out;
  std::snprintf(line, sizeof(line),
                "requests_total %llu\nerrors_total %llu\n",
                static_cast<unsigned long long>(requests()),
                static_cast<unsigned long long>(errors()));
  out += line;
  for (int i = 0; i < kNumRegimes; ++i) {
    Regime regime = static_cast<Regime>(i);
    uint64_t count = RegimeCount(regime);
    if (count == 0) continue;
    std::snprintf(line, sizeof(line), "decisions_by_regime{%.*s} %llu\n",
                  static_cast<int>(RegimeName(regime).size()),
                  RegimeName(regime).data(),
                  static_cast<unsigned long long>(count));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "cache_hits %llu\ncache_misses %llu\ncache_evictions "
                "%llu\ncache_entries %llu\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                static_cast<unsigned long long>(cache.evictions),
                static_cast<unsigned long long>(cache.entries));
  out += line;
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    uint64_t count = latency_.BucketCount(i);
    if (count == 0) continue;
    auto [lower, upper] = LatencyHistogram::BucketBounds(i);
    if (upper == 0) {
      std::snprintf(line, sizeof(line), "latency_us{ge=%llu} %llu\n",
                    static_cast<unsigned long long>(lower),
                    static_cast<unsigned long long>(count));
    } else {
      std::snprintf(line, sizeof(line), "latency_us{lt=%llu} %llu\n",
                    static_cast<unsigned long long>(upper),
                    static_cast<unsigned long long>(count));
    }
    out += line;
  }
  return out;
}

}  // namespace relcont
