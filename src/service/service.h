#ifndef RELCONT_SERVICE_SERVICE_H_
#define RELCONT_SERVICE_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "planner/planner.h"
#include "relcont/decide.h"
#include "service/catalog.h"
#include "service/decision_cache.h"
#include "service/metrics.h"
#include "trace/trace.h"

namespace relcont {

/// The containment-decision service: many clients ask `Q1 ⊑_V Q2 ?`
/// against named catalogs of source descriptions, and the service amortizes
/// the (Π₂ᴾ-hard) decisions with a canonical-form cache and a thread-pool
/// batch executor.
///
/// Concurrency model. Decisions are pure functions of
/// (Q1, Q2, catalog, options), but the library's decision procedures
/// allocate fresh symbols through a non-thread-safe Interner. The service
/// therefore confines every Interner-carrying structure to a WorkerContext
/// owned by exactly one thread at a time; the only shared state is the
/// catalog registry (mutex), the decision cache (sharded mutexes, values
/// are interner-independent text), and the metrics (atomics).

struct ServiceConfig {
  /// Total decision-cache capacity in entries.
  size_t cache_capacity = 4096;
  size_t cache_shards = 8;
  /// A worker arena is discarded and rebuilt once its interner holds more
  /// than this many symbols (decision procedures mint fresh symbols per
  /// request, so long-lived arenas grow without bound).
  int64_t max_worker_symbols = 1 << 20;
  /// When true every request is traced (as if collect_trace were set) and
  /// folded into the metrics aggregates. Off by default: tracing allocates
  /// and is not free, unlike the dormant instrumentation hooks.
  bool trace_requests = false;
  /// How many worst-latency traces METRICS retains (0 disables the log).
  size_t slow_log_capacity = 4;
  /// Deadline applied to requests that do not set their own timeout_ms
  /// (0 = no default deadline). A request past its deadline answers
  /// kBoundReached — a bound, not an error.
  int64_t default_timeout_ms = 0;
  /// Worker-thread count for the parallel per-disjunct scan, applied to
  /// requests that do not set their own parallel_workers. 1 = serial.
  int default_parallel_workers = 1;
  /// Total plan-cache capacity in entries (the planner's cache is separate
  /// from the decision cache: plans are large values with a different
  /// working set).
  size_t plan_cache_capacity = 4096;
  size_t plan_cache_shards = 8;
  /// Long trailing window for the sliding-window latency percentiles, in
  /// seconds (the short window is fixed at 10 s). Clamped to the window
  /// ring size (obs::WindowRing::kMaxWindowSecs).
  int window_secs = 60;
  /// Flight-recorder sizing (src/obs/flight.h): wide-event ring slots
  /// (rounded up to a power of two), retention-arena byte cap, and the
  /// head-sampling period (every Nth request retained even when healthy;
  /// 0 disables head sampling).
  size_t flight_ring_capacity = 1024;
  size_t flight_arena_kb = 512;
  uint64_t flight_head_sample = 64;
};

/// One containment question. The query texts use the ParseProgram syntax
/// (multi-rule text forms a UCQ or recursive program); the goal is the
/// head predicate of the first rule.
struct DecisionRequest {
  std::string q1_text;
  std::string q2_text;
  /// Name of a catalog previously registered with the service.
  std::string catalog;
  DecideOptions options;
  /// When true the cache is neither consulted nor filled (used by the
  /// benchmarks to measure cold decision cost, and available to clients
  /// that need a from-scratch re-derivation).
  bool bypass_cache = false;
  /// When true the decision runs under a TraceContext and the response
  /// carries the recorded span tree (EXPLAIN sets this, together with
  /// bypass_cache so there is an actual decision to trace).
  bool collect_trace = false;
};

struct DecisionResponse {
  /// Non-OK on parse errors, unknown catalogs, or undecidable fragments;
  /// the decision fields are meaningful only when ok.
  Status status;
  bool contained = false;
  Regime regime = Regime::kUnknown;
  /// Rendered witness ("" when none — see Decision::witness).
  std::string witness_text;
  bool cache_hit = false;
  uint64_t latency_micros = 0;
  /// The flight-recorder request id minted for this request; echoed on
  /// protocol response lines (`id=N` / `ERR [id=N]`) and the key into
  /// /requestz?id=N when the request was retained.
  uint64_t request_id = 0;
  /// Version of the catalog the decision ran against (0 when the request
  /// failed before catalog resolution). Lets the access log attribute a
  /// decision to the exact catalog snapshot it saw.
  int64_t catalog_version = 0;
  /// The decision's span tree, present iff tracing was requested for this
  /// request (empty spans when the hooks are compiled out). Shared so
  /// responses stay cheap to copy.
  std::shared_ptr<const trace::TraceContext> trace;
};

/// Per-thread working memory: the interner arena plus the catalogs
/// materialized against it. NOT thread-safe — each context must be used by
/// one thread at a time (constructing one is cheap).
class WorkerContext {
 public:
  WorkerContext();

  Interner* interner() { return interner_.get(); }

 private:
  friend class ContainmentService;

  /// Drops the arena and every structure built against it.
  void Reset();

  std::unique_ptr<Interner> interner_;
  std::map<std::string, MaterializedCatalog> catalogs_;
};

class ContainmentService {
 public:
  explicit ContainmentService(ServiceConfig config = {});

  CatalogRegistry& catalogs() { return catalogs_; }
  DecisionCache& cache() { return cache_; }
  ServiceMetrics& metrics() { return metrics_; }
  Planner& planner() { return planner_; }
  const ServiceConfig& config() const { return config_; }

  /// Answers one request using the caller-owned worker context. Safe to
  /// call from many threads as long as each uses its own context.
  DecisionResponse Decide(const DecisionRequest& request, WorkerContext* ctx);

  /// Fans `requests` across `num_threads` workers (each with a fresh
  /// WorkerContext) and returns responses positionally aligned with the
  /// requests. `num_threads <= 1` runs inline on the calling thread.
  std::vector<DecisionResponse> ExecuteBatch(
      const std::vector<DecisionRequest>& requests, int num_threads);

  /// The cache key for `request` as seen from `ctx`: canonical query
  /// fingerprints + catalog identity + options. Exposed for tests.
  Result<std::string> CacheKey(const DecisionRequest& request,
                               WorkerContext* ctx);

 private:
  /// Materializes `request.catalog` into `ctx` (cached by version).
  Result<const MaterializedCatalog*> CatalogFor(const std::string& name,
                                                WorkerContext* ctx);

  ServiceConfig config_;
  CatalogRegistry catalogs_;
  DecisionCache cache_;
  ServiceMetrics metrics_;
  /// Declared after catalogs_ and metrics_ (it points at both).
  Planner planner_;
};

}  // namespace relcont

#endif  // RELCONT_SERVICE_SERVICE_H_
