#include "service/decision_cache.h"

#include <algorithm>
#include <functional>

namespace relcont {

DecisionCache::DecisionCache(size_t capacity, size_t num_shards) {
  num_shards = std::max<size_t>(1, num_shards);
  per_shard_capacity_ = std::max<size_t>(1, (capacity + num_shards - 1) /
                                                num_shards);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

DecisionCache::Shard& DecisionCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::optional<CachedDecision> DecisionCache::Lookup(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void DecisionCache::Insert(const std::string& key, CachedDecision value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.emplace_front(key, std::move(value));
  shard.index[key] = shard.lru.begin();
}

CacheStats DecisionCache::Stats() const {
  CacheStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.evictions += shard->evictions;
    out.entries += shard->lru.size();
  }
  return out;
}

void DecisionCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace relcont
