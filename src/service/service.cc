#include "service/service.h"

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>

#include "common/budget.h"
#include "containment/canonical.h"
#include "datalog/parser.h"

namespace relcont {

namespace {

Result<GoalQuery> ParseGoalQuery(const std::string& text,
                                 Interner* interner) {
  RELCONT_ASSIGN_OR_RETURN(Program program, ParseProgram(text, interner));
  if (program.rules.empty()) {
    return Status::InvalidArgument("query text contains no rules");
  }
  SymbolId goal = program.rules[0].head.predicate;
  return GoalQuery{std::move(program), goal};
}

/// Every option that can change a decision must appear in the key, or the
/// cache would serve a decision computed under different bounds.
///
/// The budget fields (timeout_ms, max_steps, parallel_workers) are
/// deliberately absent: a budget can only turn a decision into a non-OK
/// kBoundReached status, and non-OK results are never cached — so every
/// cached verdict is budget-independent, and requests that differ only in
/// budget may share an entry.
std::string OptionsFingerprint(const DecideOptions& o) {
  std::string out = std::to_string(o.max_rule_applications);
  out += ',';
  out += std::to_string(o.unfold.max_disjuncts);
  out += ',';
  out += std::to_string(o.dom.max_tree_options);
  out += ',';
  out += std::to_string(o.dom.max_rounds);
  out += ',';
  out += std::to_string(o.dom.max_core_checks);
  out += ',';
  out += std::to_string(o.dom.max_disjunct_size);
  out += ',';
  out += std::to_string(o.dom.unfold.max_disjuncts);
  out += ',';
  // The strategy never changes a verdict (cegar ≡ scan by construction),
  // but the reported witness may differ, so cached answers are kept
  // per-engine.
  out += ContainmentStrategyName(o.strategy);
  return out;
}

std::string MakeCacheKey(const GoalQuery& q1, const GoalQuery& q2,
                         const std::string& catalog_name,
                         int64_t catalog_version,
                         const DecideOptions& options,
                         const Interner& interner) {
  std::string key = catalog_name;
  key += ":v";
  key += std::to_string(catalog_version);
  key += '\x1f';
  key += CanonicalProgramFingerprint(q1.program, q1.goal, interner);
  key += '\x1f';
  key += CanonicalProgramFingerprint(q2.program, q2.goal, interner);
  key += '\x1f';
  key += OptionsFingerprint(options);
  return key;
}

/// One newline-free line identifying a request in the slow log.
std::string DescribeRequest(const DecisionRequest& request) {
  std::string out = request.q1_text + " => " + request.q2_text + " @" +
                    request.catalog;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  constexpr size_t kMaxLength = 160;
  if (out.size() > kMaxLength) {
    out.resize(kMaxLength - 3);
    out += "...";
  }
  return out;
}

}  // namespace

WorkerContext::WorkerContext() : interner_(std::make_unique<Interner>()) {}

void WorkerContext::Reset() {
  catalogs_.clear();
  interner_ = std::make_unique<Interner>();
}

namespace {

PlannerConfig PlannerConfigFrom(const ServiceConfig& config) {
  PlannerConfig out;
  out.cache_capacity = config.plan_cache_capacity;
  out.cache_shards = config.plan_cache_shards;
  out.max_worker_symbols = config.max_worker_symbols;
  out.trace_requests = config.trace_requests;
  out.default_timeout_ms = config.default_timeout_ms;
  out.default_parallel_workers = config.default_parallel_workers;
  return out;
}

}  // namespace

ContainmentService::ContainmentService(ServiceConfig config)
    : config_(config),
      cache_(config.cache_capacity, config.cache_shards),
      planner_(&catalogs_, &metrics_, PlannerConfigFrom(config)) {
  metrics_.set_slow_log_capacity(config.slow_log_capacity);
  metrics_.set_window_secs(config.window_secs);
  metrics_.flight().Configure({config.flight_ring_capacity,
                               config.flight_arena_kb * 1024,
                               config.flight_head_sample});
  // Re-registering a catalog bumps its version, which already rotates plan
  // cache keys; the listener additionally reclaims the dead entries so a
  // churning catalog cannot crowd out live plans.
  catalogs_.set_registration_listener(
      [this](const std::string& name, int64_t version) {
        (void)version;
        planner_.cache().InvalidateCatalog(name);
      });
}

Result<const MaterializedCatalog*> ContainmentService::CatalogFor(
    const std::string& name, WorkerContext* ctx) {
  std::shared_ptr<const CatalogSpec> spec = catalogs_.Find(name);
  if (spec == nullptr) {
    return Status::InvalidArgument("unknown catalog '" + name + "'");
  }
  auto it = ctx->catalogs_.find(name);
  if (it != ctx->catalogs_.end() && it->second.version == spec->version) {
    return &it->second;
  }
  RELCONT_ASSIGN_OR_RETURN(MaterializedCatalog materialized,
                           MaterializeCatalog(*spec, ctx->interner()));
  auto [pos, inserted] =
      ctx->catalogs_.insert_or_assign(name, std::move(materialized));
  (void)inserted;
  return &pos->second;
}

Result<std::string> ContainmentService::CacheKey(
    const DecisionRequest& request, WorkerContext* ctx) {
  RELCONT_ASSIGN_OR_RETURN(const MaterializedCatalog* catalog,
                           CatalogFor(request.catalog, ctx));
  RELCONT_ASSIGN_OR_RETURN(GoalQuery q1,
                           ParseGoalQuery(request.q1_text, ctx->interner()));
  RELCONT_ASSIGN_OR_RETURN(GoalQuery q2,
                           ParseGoalQuery(request.q2_text, ctx->interner()));
  return MakeCacheKey(q1, q2, request.catalog, catalog->version,
                      request.options, *ctx->interner());
}

DecisionResponse ContainmentService::Decide(const DecisionRequest& request,
                                            WorkerContext* ctx) {
  auto start = std::chrono::steady_clock::now();
  metrics_.IncInflight();
  DecisionResponse out;
  out.request_id = metrics_.flight().NextRequestId();
  // The service owns the one budget governing this request; the library
  // sees it via the installed BudgetScope and skips its own (decide.cc).
  // Request options take precedence over the config defaults.
  WorkBudget budget;
  int64_t timeout_ms = request.options.timeout_ms > 0
                           ? request.options.timeout_ms
                           : config_.default_timeout_ms;
  if (timeout_ms > 0) {
    budget.set_timeout(std::chrono::milliseconds(timeout_ms));
  }
  if (request.options.max_steps > 0) {
    budget.set_max_steps(request.options.max_steps);
  }
  std::shared_ptr<trace::TraceContext> trace_ctx;
  std::optional<trace::TraceScope> trace_scope;
  if (request.collect_trace || config_.trace_requests) {
    trace_ctx = std::make_shared<trace::TraceContext>();
    trace_ctx->set_request_id(out.request_id);
    // Installed for this thread only; concurrent workers each install
    // their own context, so traces never interleave.
    trace_scope.emplace(trace_ctx.get());
  }
  // The body below returns early through this lambda so the latency and
  // metrics accounting runs on every path, including errors.
  out.status = [&]() -> Status {
    if (ctx->interner()->size() > config_.max_worker_symbols) {
      ctx->Reset();
    }
    RELCONT_ASSIGN_OR_RETURN(const MaterializedCatalog* catalog,
                             CatalogFor(request.catalog, ctx));
    out.catalog_version = catalog->version;
    RELCONT_ASSIGN_OR_RETURN(
        GoalQuery q1, ParseGoalQuery(request.q1_text, ctx->interner()));
    RELCONT_ASSIGN_OR_RETURN(
        GoalQuery q2, ParseGoalQuery(request.q2_text, ctx->interner()));
    std::string key;
    if (!request.bypass_cache) {
      key = MakeCacheKey(q1, q2, request.catalog, catalog->version,
                         request.options, *ctx->interner());
      if (std::optional<CachedDecision> cached = cache_.Lookup(key)) {
        out.contained = cached->contained;
        out.regime = cached->regime;
        out.witness_text = std::move(cached->witness_text);
        out.cache_hit = true;
        return Status::OK();
      }
    }
    DecideOptions options = request.options;
    if (options.parallel_workers <= 1) {
      options.parallel_workers = config_.default_parallel_workers;
    }
    BudgetScope budget_scope(&budget);
    RELCONT_ASSIGN_OR_RETURN(
        Decision decision,
        DecideRelativeContainment(q1, q2, catalog->views, catalog->patterns,
                                  ctx->interner(), options));
    out.contained = decision.contained;
    out.regime = decision.regime;
    if (decision.witness.has_value()) {
      out.witness_text = decision.witness->ToString(*ctx->interner());
    }
    if (!request.bypass_cache) {
      cache_.Insert(key, CachedDecision{out.contained, out.regime,
                                        out.witness_text});
    }
    return Status::OK();
  }();
  trace_scope.reset();
  out.latency_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  metrics_.DecInflight();
  metrics_.RecordRequest(out.regime, out.latency_micros, !out.status.ok(),
                         out.cache_hit);
  metrics_.RecordBudget(budget.tasks_spawned(), budget.tasks_completed(),
                        budget.reason() == BudgetReason::kDeadline);
  if (trace_ctx != nullptr) {
    metrics_.RecordTrace(out.regime, out.latency_micros, *trace_ctx,
                         DescribeRequest(request), out.request_id);
  }
  obs::WideEvent event;
  event.request_id = out.request_id;
  event.latency_micros = out.latency_micros;
  event.catalog_version = out.catalog_version;
  event.worker_count = static_cast<uint32_t>(
      request.options.parallel_workers > 1
          ? request.options.parallel_workers
          : config_.default_parallel_workers);
  event.error = out.status.ok() ? 0 : 1;
  event.cache_hit = out.cache_hit ? 1 : 0;
  event.bound = out.status.code() == StatusCode::kBoundReached ? 1 : 0;
  event.set_verb("contained");
  event.set_regime(RegimeName(out.regime));
  event.set_catalog(request.catalog);
  event.set_bound_site(BoundSiteFromStatus(out.status));
  metrics_.RecordFlight(ServiceVerb::kContained, event, trace_ctx.get());
  if (trace_ctx != nullptr) out.trace = std::move(trace_ctx);
  return out;
}

std::vector<DecisionResponse> ContainmentService::ExecuteBatch(
    const std::vector<DecisionRequest>& requests, int num_threads) {
  std::vector<DecisionResponse> out(requests.size());
  // Every batch item counts as queued until a worker claims it, so the
  // batch_queue_depth gauge exposes backlog while a batch is in flight.
  metrics_.AddBatchQueueDepth(static_cast<int64_t>(requests.size()));
  if (num_threads <= 1 || requests.size() <= 1) {
    WorkerContext ctx;
    for (size_t i = 0; i < requests.size(); ++i) {
      metrics_.AddBatchQueueDepth(-1);
      out[i] = Decide(requests[i], &ctx);
    }
    return out;
  }
  std::atomic<size_t> next{0};
  auto work = [&]() {
    WorkerContext ctx;
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < requests.size();
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      metrics_.AddBatchQueueDepth(-1);
      out[i] = Decide(requests[i], &ctx);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) threads.emplace_back(work);
  for (std::thread& t : threads) t.join();
  return out;
}

}  // namespace relcont
