#ifndef RELCONT_SERVICE_METRICS_H_
#define RELCONT_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/exposition.h"
#include "obs/flight.h"
#include "obs/window.h"
#include "planner/plan_cache.h"
#include "relcont/decide.h"
#include "service/decision_cache.h"
#include "trace/trace.h"

namespace relcont {

/// A lock-free latency histogram with power-of-two microsecond buckets:
/// bucket i counts latencies in [2^(i-1), 2^i) µs (bucket 0 is [0, 1) µs,
/// the last bucket absorbs everything larger). Thread-safe.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 24;  // covers up to ~8.4 s

  void Record(uint64_t micros);

  uint64_t BucketCount(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  uint64_t TotalCount() const;
  /// Sum of every recorded latency, in microseconds.
  uint64_t SumMicros() const {
    return sum_micros_.load(std::memory_order_relaxed);
  }

  /// [lower, upper) bounds of `bucket` in microseconds; upper is 0 for the
  /// unbounded last bucket.
  static std::pair<uint64_t, uint64_t> BucketBounds(int bucket);

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> sum_micros_{0};
};

/// One entry of the slow-request log: the worst-latency traced requests
/// seen so far, with their rendered span trees.
struct SlowRequest {
  uint64_t latency_micros = 0;
  Regime regime = Regime::kUnknown;
  /// One-line request description (queries + catalog, newline-free).
  std::string description;
  /// The request id minted by the flight recorder (0 when recorded by a
  /// caller outside the service), for pivoting into /requestz?id=N.
  uint64_t request_id = 0;
  /// The EXPLAIN-style span tree of the request.
  std::string trace_text;
  /// The dominant phases of this request (root span + direct children,
  /// aggregated by name, largest total first) — the compact digest
  /// /statusz shows without the full tree.
  std::vector<obs::PhaseSnapshot> top_phases;
};

/// The protocol verbs the windowed latency rings break down by.
enum class ServiceVerb : int { kContained = 0, kPlan, kRewrite };

/// Stable lowercase name: "contained" | "plan" | "rewrite".
std::string_view ServiceVerbName(ServiceVerb verb);

/// Request-level counters for the containment service: totals, errors,
/// cache hits observed at the request level, per-regime decision counts,
/// and the latency histogram. All counters are atomics — recording from
/// many workers never blocks. Thread-safe.
///
/// When tracing is enabled (per request or service-wide), RecordTrace
/// additionally folds each trace into per-phase cumulative timers, per-
/// regime trace-counter totals, and a bounded log of the N worst traces.
/// Those aggregates are mutex-protected; they sit off the hot path — a
/// request that was not traced never touches them.
class ServiceMetrics {
 public:
  static constexpr int kNumRegimes = 6;  // Regime enumerators incl. kUnknown
  static constexpr int kNumVerbs = 3;    // ServiceVerb enumerators
  static constexpr int kNumTraceCounters =
      static_cast<int>(trace::Counter::kNumCounters);
  /// The fixed short trailing window; the long window is configurable
  /// (set_window_secs, default 60, capped by the ring size).
  static constexpr int kShortWindowSecs = 10;

  ServiceMetrics();

  /// Records one finished request. `regime` is kUnknown for errors.
  void RecordRequest(Regime regime, uint64_t latency_micros, bool error,
                     bool cache_hit);

  /// Records one finished planner request (PLAN? when `rewrite` is false,
  /// REWRITE? when true) attributed to the regime of the plan it produced
  /// (kUnknown for errors). Planner latencies fold into the shared latency
  /// histogram; the per-verb totals stay separate from requests_ so the
  /// containment counters keep their meaning.
  void RecordPlanRequest(bool rewrite, Regime regime, uint64_t latency_micros,
                         bool error);

  /// Records one rejected protocol line whose verb no handler claims
  /// (satisfies the `relcont_unknown_verb_total` series).
  void RecordUnknownVerb() {
    unknown_verbs_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records one HTTP request rejected by the parser hardening: 431
  /// (oversized request line/headers) or 408 (slow client cut off).
  void RecordHttpRejected(int status_code) {
    if (status_code == 431) {
      http_rejected_431_.fetch_add(1, std::memory_order_relaxed);
    } else if (status_code == 408) {
      http_rejected_408_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Live gauges. Inflight tracks requests inside Service::Decide; open
  /// connections tracks sockets held by the obs server; batch queue depth
  /// tracks ExecuteBatch items not yet claimed by a worker.
  void IncInflight() { inflight_.fetch_add(1, std::memory_order_relaxed); }
  void DecInflight() { inflight_.fetch_sub(1, std::memory_order_relaxed); }
  void IncOpenConnections() {
    open_connections_.fetch_add(1, std::memory_order_relaxed);
  }
  void DecOpenConnections() {
    open_connections_.fetch_sub(1, std::memory_order_relaxed);
  }
  void AddBatchQueueDepth(int64_t delta) {
    batch_queue_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t inflight_requests() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  int64_t open_connections() const {
    return open_connections_.load(std::memory_order_relaxed);
  }
  int64_t batch_queue_depth() const {
    return batch_queue_.load(std::memory_order_relaxed);
  }

  /// Drain state: set on SIGTERM drain start, cleared never (the process
  /// exits). /healthz answers 503 and /statusz reports it while set.
  void set_draining(bool draining) {
    draining_.store(draining, std::memory_order_relaxed);
  }
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// Sets the long trailing window in seconds (clamped to
  /// [1, obs::WindowRing::kMaxWindowSecs]). Call before serving traffic.
  void set_window_secs(int secs);
  int window_secs() const {
    return window_secs_.load(std::memory_order_relaxed);
  }

  /// Replaces the window clock (a seconds counter) for deterministic
  /// tests. Must be installed before any request is recorded; the default
  /// clock counts steady-clock seconds since construction.
  void set_window_clock_for_test(std::function<uint64_t()> clock) {
    window_clock_ = std::move(clock);
  }

  /// Aggregates the trailing `window_secs` seconds for one verb. `regime`
  /// of kNumRegimes (the default) folds every regime together.
  obs::WindowAggregate WindowFor(ServiceVerb verb, int window_secs,
                                 int regime = kNumRegimes) const;

  /// Records one request's budget outcome: how many parallel helper tasks
  /// its decision spawned/completed (equal after every request — the pool-
  /// quiescence invariant tests assert) and whether its deadline expired.
  void RecordBudget(uint64_t tasks_spawned, uint64_t tasks_completed,
                    bool deadline_exceeded) {
    tasks_spawned_.fetch_add(tasks_spawned, std::memory_order_relaxed);
    tasks_completed_.fetch_add(tasks_completed, std::memory_order_relaxed);
    if (deadline_exceeded) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Folds one recorded trace into the observability aggregates: every
  /// span adds to the cumulative timer and call count of its phase (spans
  /// aggregate by name), every counter adds to the regime's totals, and
  /// the request enters the slow log if it ranks among the worst.
  /// `request_id` tags the slow-log entry (0 = not a service request).
  void RecordTrace(Regime regime, uint64_t latency_micros,
                   const trace::TraceContext& trace, std::string description,
                   uint64_t request_id = 0);

  /// The per-request flight recorder (ids, wide-event ring, retention
  /// arena, crash black box). Lives here so every surface that already
  /// holds the metrics — service, planner, protocol, obs server — reaches
  /// the same recorder.
  obs::FlightRecorder& flight() { return flight_; }
  const obs::FlightRecorder& flight() const { return flight_; }

  /// Finishes and files one request's wide event: stamps the wall-clock
  /// timestamp, folds the trace's top phases in (when `trace` is non-null),
  /// records the event into the ring, and applies the retention policy —
  /// retain the full span renderings when the request errored (which
  /// covers kBoundReached), ran slower than TailThresholdMicros(verb), or
  /// falls on the head sample. The caller fills the identity fields
  /// (id, verb, regime, catalog, latency, flags) first.
  void RecordFlight(ServiceVerb verb, obs::WideEvent event,
                    const trace::TraceContext* trace);

  /// The live tail-retention threshold for `verb`: the trailing
  /// kShortWindowSecs p99 in microseconds, all regimes folded, or 0 when
  /// the window holds no samples (latency criterion disabled). Recomputed
  /// lazily at most once per window-clock second and cached, so the
  /// per-request retention decision costs one atomic load.
  uint64_t TailThresholdMicros(ServiceVerb verb) const;

  uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  uint64_t errors() const { return errors_.load(std::memory_order_relaxed); }
  uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t deadline_exceeded() const {
    return deadline_exceeded_.load(std::memory_order_relaxed);
  }
  uint64_t plan_requests() const {
    return plan_requests_.load(std::memory_order_relaxed);
  }
  uint64_t rewrite_requests() const {
    return rewrite_requests_.load(std::memory_order_relaxed);
  }
  uint64_t plan_errors() const {
    return plan_errors_.load(std::memory_order_relaxed);
  }
  uint64_t unknown_verbs() const {
    return unknown_verbs_.load(std::memory_order_relaxed);
  }
  uint64_t tasks_spawned() const {
    return tasks_spawned_.load(std::memory_order_relaxed);
  }
  uint64_t tasks_completed() const {
    return tasks_completed_.load(std::memory_order_relaxed);
  }
  uint64_t RegimeCount(Regime regime) const {
    return by_regime_[static_cast<int>(regime)].load(
        std::memory_order_relaxed);
  }
  const LatencyHistogram& latency() const { return latency_; }

  /// Cumulative nanoseconds spent in spans named `phase` across every
  /// recorded trace, and how many such spans were recorded.
  uint64_t PhaseNanos(const std::string& phase) const;
  uint64_t PhaseCalls(const std::string& phase) const;
  /// Total of `c` across every trace recorded under `regime`.
  uint64_t RegimeCounterTotal(Regime regime, trace::Counter c) const {
    return counter_totals_[static_cast<int>(regime)][static_cast<int>(c)]
        .load(std::memory_order_relaxed);
  }
  /// Snapshot of the slow log, worst latency first.
  std::vector<SlowRequest> SlowLog() const;

  /// Caps the slow log at `capacity` entries (default 4; 0 disables it).
  void set_slow_log_capacity(size_t capacity);

  /// Copies every counter plus build/uptime identity into one consistent
  /// snapshot — the single source both the METRICS verb and the Prometheus
  /// `/metrics` endpoint render from (see obs/exposition.h). `plan_cache`
  /// carries the planner's cache counters (defaulted so callers without a
  /// planner keep working).
  obs::MetricsSnapshot Snapshot(const CacheStats& cache,
                                const PlanCacheStats& plan_cache = {}) const;

  /// Renders a multi-line text dump: request totals, per-regime counts,
  /// the supplied cache counters, the latency histogram as cumulative
  /// Prometheus-style `le` buckets with `latency_us_sum`/`_count`, and —
  /// when traces were recorded — per-phase timers, per-regime trace
  /// counter totals, and the slow-request log. Equivalent to
  /// obs::RenderMetricsText(Snapshot(cache, plan_cache)).
  std::string Dump(const CacheStats& cache,
                   const PlanCacheStats& plan_cache = {}) const;

 private:
  struct PhaseStat {
    uint64_t ns = 0;
    uint64_t calls = 0;
  };

  /// Records one sample into the (verb, regime) window ring at the current
  /// window-clock second.
  void RecordWindow(ServiceVerb verb, Regime regime, uint64_t micros);
  const obs::WindowRing& Ring(int verb, int regime) const {
    return windows_[verb * kNumRegimes + regime];
  }
  obs::WindowRing& Ring(int verb, int regime) {
    return windows_[verb * kNumRegimes + regime];
  }

  /// Fixed at construction; Snapshot derives uptime and start time.
  const std::chrono::steady_clock::time_point start_steady_ =
      std::chrono::steady_clock::now();
  const int64_t start_unix_seconds_ =
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> plan_requests_{0};
  std::atomic<uint64_t> rewrite_requests_{0};
  std::atomic<uint64_t> plan_errors_{0};
  std::atomic<uint64_t> unknown_verbs_{0};
  std::atomic<uint64_t> tasks_spawned_{0};
  std::atomic<uint64_t> tasks_completed_{0};
  std::atomic<uint64_t> http_rejected_431_{0};
  std::atomic<uint64_t> http_rejected_408_{0};
  std::atomic<int64_t> inflight_{0};
  std::atomic<int64_t> open_connections_{0};
  std::atomic<int64_t> batch_queue_{0};
  std::atomic<bool> draining_{false};
  std::atomic<int> window_secs_{60};
  std::array<std::atomic<uint64_t>, kNumRegimes> by_regime_{};
  LatencyHistogram latency_;

  /// kNumVerbs x kNumRegimes window rings (heap-allocated: each ring is
  /// ~27 KB of atomics). Indexed by Ring(verb, regime).
  std::unique_ptr<obs::WindowRing[]> windows_;
  /// The window clock, in whole seconds. Read concurrently, written only
  /// by set_window_clock_for_test before traffic starts.
  std::function<uint64_t()> window_clock_;

  std::array<std::array<std::atomic<uint64_t>, kNumTraceCounters>,
             kNumRegimes>
      counter_totals_{};

  obs::FlightRecorder flight_;
  /// Per-verb tail-threshold cache: packed {window second : 32, p99 µs
  /// clamped to 32 bits}. Recomputed when the cached second goes stale.
  mutable std::array<std::atomic<uint64_t>, kNumVerbs> tail_cache_{};

  mutable std::mutex trace_mu_;
  std::map<std::string, PhaseStat> phases_;
  size_t slow_log_capacity_ = 4;
  /// Sorted worst-first; at most slow_log_capacity_ entries.
  std::vector<SlowRequest> slow_log_;
};

}  // namespace relcont

#endif  // RELCONT_SERVICE_METRICS_H_
