#ifndef RELCONT_SERVICE_METRICS_H_
#define RELCONT_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

#include "relcont/decide.h"
#include "service/decision_cache.h"

namespace relcont {

/// A lock-free latency histogram with power-of-two microsecond buckets:
/// bucket i counts latencies in [2^(i-1), 2^i) µs (bucket 0 is [0, 1) µs,
/// the last bucket absorbs everything larger). Thread-safe.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 24;  // covers up to ~8.4 s

  void Record(uint64_t micros);

  uint64_t BucketCount(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  uint64_t TotalCount() const;

  /// [lower, upper) bounds of `bucket` in microseconds; upper is 0 for the
  /// unbounded last bucket.
  static std::pair<uint64_t, uint64_t> BucketBounds(int bucket);

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

/// Request-level counters for the containment service: totals, errors,
/// cache hits observed at the request level, per-regime decision counts,
/// and the latency histogram. All counters are atomics — recording from
/// many workers never blocks. Thread-safe.
class ServiceMetrics {
 public:
  static constexpr int kNumRegimes = 6;  // Regime enumerators incl. kUnknown

  /// Records one finished request. `regime` is kUnknown for errors.
  void RecordRequest(Regime regime, uint64_t latency_micros, bool error,
                     bool cache_hit);

  uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  uint64_t errors() const { return errors_.load(std::memory_order_relaxed); }
  uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t RegimeCount(Regime regime) const {
    return by_regime_[static_cast<int>(regime)].load(
        std::memory_order_relaxed);
  }
  const LatencyHistogram& latency() const { return latency_; }

  /// Renders a multi-line text dump: request totals, per-regime counts,
  /// the supplied cache counters, and the nonempty latency buckets.
  std::string Dump(const CacheStats& cache) const;

 private:
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::array<std::atomic<uint64_t>, kNumRegimes> by_regime_{};
  LatencyHistogram latency_;
};

}  // namespace relcont

#endif  // RELCONT_SERVICE_METRICS_H_
