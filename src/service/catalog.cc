#include "service/catalog.h"

namespace relcont {

Result<MaterializedCatalog> MaterializeCatalog(const CatalogSpec& spec,
                                               Interner* interner) {
  MaterializedCatalog out;
  out.version = spec.version;
  RELCONT_ASSIGN_OR_RETURN(out.views, ParseViews(spec.views_text, interner));
  RELCONT_RETURN_NOT_OK(out.views.Validate());
  for (const auto& [source, adornment_text] : spec.patterns) {
    SymbolId pred = interner->Lookup(source);
    const ViewDefinition* view =
        pred == kInvalidSymbol ? nullptr : out.views.Find(pred);
    if (view == nullptr) {
      return Status::InvalidArgument("pattern names unknown source '" +
                                     source + "'");
    }
    RELCONT_ASSIGN_OR_RETURN(Adornment adornment,
                             Adornment::Parse(adornment_text));
    if (adornment.arity() != view->rule.head.arity()) {
      return Status::InvalidArgument(
          "adornment '" + adornment_text + "' has arity " +
          std::to_string(adornment.arity()) + " but source '" + source +
          "' has arity " + std::to_string(view->rule.head.arity()));
    }
    out.patterns.AddAlternative(pred, std::move(adornment));
  }
  return out;
}

Result<int64_t> CatalogRegistry::Register(
    const std::string& name, std::string views_text,
    std::vector<std::pair<std::string, std::string>> patterns) {
  if (name.empty()) {
    return Status::InvalidArgument("catalog name must be nonempty");
  }
  auto spec = std::make_shared<CatalogSpec>();
  spec->name = name;
  spec->views_text = std::move(views_text);
  spec->patterns = std::move(patterns);
  // Validate against a scratch interner before publishing, so a registry
  // never holds a snapshot that workers cannot materialize.
  {
    Interner scratch;
    RELCONT_ASSIGN_OR_RETURN(MaterializedCatalog materialized,
                             MaterializeCatalog(*spec, &scratch));
    spec->num_views = static_cast<int>(materialized.views.size());
  }
  int64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = catalogs_.find(name);
    spec->version = it == catalogs_.end() ? 1 : it->second->version + 1;
    version = spec->version;
    catalogs_[name] = std::move(spec);
  }
  // Outside mu_: the listener may take locks of its own (the plan cache's
  // shard mutexes), and readers must not block on it.
  if (listener_) listener_(name, version);
  return version;
}

std::shared_ptr<const CatalogSpec> CatalogRegistry::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = catalogs_.find(name);
  return it == catalogs_.end() ? nullptr : it->second;
}

std::vector<std::string> CatalogRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(catalogs_.size());
  for (const auto& [name, spec] : catalogs_) names.push_back(name);
  return names;
}

size_t CatalogRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return catalogs_.size();
}

}  // namespace relcont
