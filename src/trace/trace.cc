#include "trace/trace.h"

#include <chrono>
#include <cstdio>

#include "common/json.h"

namespace relcont {
namespace trace {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

thread_local TraceContext* g_current = nullptr;

/// Appends a JSON-escaped copy of `s` (span names are plain identifiers,
/// but stay safe if one ever is not). Shared with the access log and the
/// bench schema so every JSON emitter escapes identically.
void AppendJsonString(std::string_view s, std::string* out) {
  json::AppendEscaped(s, out);
}

}  // namespace

std::string_view CounterName(Counter c) {
  switch (c) {
    case Counter::kPlanRules:
      return "plan_rules";
    case Counter::kPlanDisjunctsKept:
      return "plan_disjuncts_kept";
    case Counter::kPlanDisjunctsDropped:
      return "plan_disjuncts_dropped";
    case Counter::kUnfoldResolutions:
      return "unfold_resolutions";
    case Counter::kUnfoldDisjuncts:
      return "unfold_disjuncts";
    case Counter::kExpansionsVisited:
      return "expansions_visited";
    case Counter::kExpansionRuleApps:
      return "expansion_rule_apps";
    case Counter::kFrozenQueries:
      return "frozen_queries";
    case Counter::kFrozenAtoms:
      return "frozen_atoms";
    case Counter::kFrozenConstants:
      return "frozen_constants";
    case Counter::kHomMappingCalls:
      return "hom_mapping_calls";
    case Counter::kHomCandidatesTried:
      return "hom_candidates_tried";
    case Counter::kHomBacktracks:
      return "hom_backtracks";
    case Counter::kHomMappingsFound:
      return "hom_mappings_found";
    case Counter::kDisjunctChecks:
      return "disjunct_checks";
    case Counter::kLinearizations:
      return "linearizations";
    case Counter::kEntailmentChecks:
      return "entailment_checks";
    case Counter::kClosureRecomputes:
      return "closure_recomputes";
    case Counter::kDenseOrderPropagations:
      return "dense_order_propagations";
    case Counter::kDenseOrderBranchesPruned:
      return "dense_order_branches_pruned";
    case Counter::kDomTreeOptions:
      return "dom_tree_options";
    case Counter::kDomCoresChecked:
      return "dom_cores_checked";
    case Counter::kDomSaturationRounds:
      return "dom_saturation_rounds";
    case Counter::kPlannerPlansBuilt:
      return "planner_plans_built";
    case Counter::kPlannerPlanRules:
      return "planner_plan_rules";
    case Counter::kCegarIterations:
      return "cegar_iterations";
    case Counter::kCegarBlockingClauses:
      return "cegar_blocking_clauses";
    case Counter::kCegarProposals:
      return "cegar_proposals";
    case Counter::kBoundHits:
      return "bound_hits";
    case Counter::kParallelTasksSpawned:
      return "parallel_tasks_spawned";
    case Counter::kParallelTasksCancelled:
      return "parallel_tasks_cancelled";
    case Counter::kNumCounters:
      break;
  }
  return "unknown";
}

TraceContext::TraceContext() : epoch_ns_(NowNs()) {}

int TraceContext::OpenSpan(const char* name) {
  SpanNode node;
  node.name = name;
  node.start_ns = NowNs() - epoch_ns_;
  node.parent = open_;
  node.depth = open_ < 0 ? 0 : spans_[open_].depth + 1;
  int index = static_cast<int>(spans_.size());
  spans_.push_back(node);
  open_ = index;
  return index;
}

void TraceContext::CloseSpan(int index) {
  if (index < 0 || index >= static_cast<int>(spans_.size())) return;
  uint64_t now = NowNs() - epoch_ns_;
  // Close intervening spans too, so early returns that skip inner
  // destructors (there are none, but be safe) cannot corrupt the tree.
  while (open_ >= 0) {
    int closing = open_;
    if (spans_[closing].end_ns == 0) spans_[closing].end_ns = now;
    open_ = spans_[closing].parent;
    if (closing == index) break;
  }
}

void TraceContext::AddCount(Counter c, uint64_t delta) {
  if (spans_.empty()) {
    OpenSpan("orphan");  // counts recorded outside any span still land
  }
  int target = open_ >= 0 ? open_ : static_cast<int>(spans_.size()) - 1;
  spans_[target].counters[static_cast<size_t>(c)] += delta;
}

uint64_t TraceContext::TotalCount(Counter c) const {
  uint64_t total = 0;
  for (const SpanNode& s : spans_) total += s.counters[static_cast<size_t>(c)];
  return total;
}

uint64_t TraceContext::root_duration_ns() const {
  for (const SpanNode& s : spans_) {
    if (s.parent < 0) return s.duration_ns();
  }
  return 0;
}

std::string TraceContext::ToText() const {
  std::string out;
  char buf[64];
  for (const SpanNode& s : spans_) {
    out.append(static_cast<size_t>(s.depth) * 2, ' ');
    out.append(s.name);
    std::snprintf(buf, sizeof(buf), " %llu.%03lluus",
                  static_cast<unsigned long long>(s.duration_ns() / 1000),
                  static_cast<unsigned long long>(s.duration_ns() % 1000));
    out.append(buf);
    for (int c = 0; c < static_cast<int>(Counter::kNumCounters); ++c) {
      uint64_t v = s.counters[static_cast<size_t>(c)];
      if (v == 0) continue;
      out.push_back(' ');
      out.append(CounterName(static_cast<Counter>(c)));
      out.push_back('=');
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(v));
      out.append(buf);
    }
    out.push_back('\n');
  }
  return out;
}

std::string TraceContext::ToChromeJson() const {
  // The trace_event "X" (complete) phase wants microsecond floats; emit
  // fractional microseconds from the nanosecond timestamps.
  std::string out = "{\"displayTimeUnit\":\"ns\",";
  if (request_id_ != 0) {
    out.append("\"request_id\":");
    out.append(std::to_string(request_id_));
    out.push_back(',');
  }
  out.append("\"traceEvents\":[");
  char buf[96];
  bool first = true;
  for (const SpanNode& s : spans_) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":");
    AppendJsonString(s.name, &out);
    std::snprintf(buf, sizeof(buf),
                  ",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":%llu.%03llu,"
                  "\"dur\":%llu.%03llu",
                  static_cast<unsigned long long>(s.start_ns / 1000),
                  static_cast<unsigned long long>(s.start_ns % 1000),
                  static_cast<unsigned long long>(s.duration_ns() / 1000),
                  static_cast<unsigned long long>(s.duration_ns() % 1000));
    out.append(buf);
    out.append(",\"args\":{");
    bool first_arg = true;
    for (int c = 0; c < static_cast<int>(Counter::kNumCounters); ++c) {
      uint64_t v = s.counters[static_cast<size_t>(c)];
      if (v == 0) continue;
      if (!first_arg) out.push_back(',');
      first_arg = false;
      AppendJsonString(CounterName(static_cast<Counter>(c)), &out);
      std::snprintf(buf, sizeof(buf), ":%llu",
                    static_cast<unsigned long long>(v));
      out.append(buf);
    }
    out.append("}}");
  }
  out.append("]}");
  return out;
}

TraceContext* CurrentTrace() { return g_current; }

TraceScope::TraceScope(TraceContext* ctx) : prev_(g_current) {
  g_current = ctx;
}

TraceScope::~TraceScope() { g_current = prev_; }

}  // namespace trace
}  // namespace relcont
