#include "eval/evaluator.h"

#include <unordered_set>

#include "common/budget.h"
#include "datalog/substitution.h"

namespace relcont {

namespace {

// Matches a rule term pattern against a ground term, extending `subst`.
// Unlike full unification, the right side is always ground.
bool MatchTerm(const Term& pattern, const Term& ground, Substitution* subst) {
  switch (pattern.kind()) {
    case Term::Kind::kConstant:
      return ground.is_constant() && pattern.value() == ground.value();
    case Term::Kind::kVariable: {
      std::optional<Term> bound = subst->Lookup(pattern.symbol());
      if (bound.has_value()) return *bound == ground;
      subst->Bind(pattern.symbol(), ground);
      return true;
    }
    case Term::Kind::kFunction: {
      if (!ground.is_function() || ground.symbol() != pattern.symbol() ||
          ground.args().size() != pattern.args().size()) {
        return false;
      }
      for (size_t i = 0; i < pattern.args().size(); ++i) {
        if (!MatchTerm(pattern.args()[i], ground.args()[i], subst)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

bool MatchAtom(const Atom& pattern, const Tuple& tuple, Substitution* subst) {
  if (pattern.args.size() != tuple.size()) return false;
  for (size_t i = 0; i < pattern.args.size(); ++i) {
    if (!MatchTerm(pattern.args[i], tuple[i], subst)) return false;
  }
  return true;
}

int TermDepth(const Term& t) {
  if (!t.is_function()) return 0;
  int max_child = 0;
  for (const Term& a : t.args()) {
    int d = TermDepth(a);
    if (d > max_child) max_child = d;
  }
  return 1 + max_child;
}

// Semi-naive evaluation state.
class SemiNaive {
 public:
  SemiNaive(const Program& program, const Database& edb,
            const EvalOptions& options)
      : program_(program), options_(options) {
    idb_ = program.IdbPredicates();
    full_ = edb;
  }

  Result<EvalResult> Run() {
    // Round 0: every rule evaluated against the EDB (delta = everything).
    Database delta;
    for (const Rule& rule : program_.rules) {
      RELCONT_RETURN_NOT_OK(EvalRuleAllFull(rule, &delta));
    }
    int iterations = 0;
    while (delta.TotalFacts() > 0) {
      ++iterations;
      full_.UnionWith(delta);
      Database next_delta;
      for (const Rule& rule : program_.rules) {
        RELCONT_RETURN_NOT_OK(EvalRuleWithDelta(rule, delta, &next_delta));
      }
      delta = std::move(next_delta);
      if (full_.TotalFacts() > options_.max_facts) {
        return BoundReachedAt(
            "eval", "max_facts exceeded during evaluation (" +
                        std::to_string(options_.max_facts) + ")");
      }
    }
    EvalResult result;
    result.database = std::move(full_);
    result.depth_truncated = depth_truncated_;
    result.iterations = iterations;
    return result;
  }

 private:
  // Evaluates `rule` with every body atom ranging over full_, emitting
  // genuinely new facts (not already in full_) into `out`.
  Status EvalRuleAllFull(const Rule& rule, Database* out) {
    Substitution subst;
    return JoinFrom(rule, 0, -1, Database(), &subst, out);
  }

  // Semi-naive step: for each body position i holding an IDB predicate,
  // evaluate with atom i ranging over `delta` and the others over full_.
  Status EvalRuleWithDelta(const Rule& rule, const Database& delta,
                           Database* out) {
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (idb_.count(rule.body[i].predicate) == 0) continue;
      Substitution subst;
      RELCONT_RETURN_NOT_OK(
          JoinFrom(rule, 0, static_cast<int>(i), delta, &subst, out));
    }
    return Status::OK();
  }

  // Recursive nested-loop join over body atoms starting at `index`. The
  // atom at `delta_index` (if >= 0) ranges over `delta`; all others over
  // full_.
  Status JoinFrom(const Rule& rule, size_t index, int delta_index,
                  const Database& delta, Substitution* subst, Database* out) {
    if (index == rule.body.size()) {
      return EmitHead(rule, *subst, out);
    }
    const Atom& atom = rule.body[index];
    const Database& source =
        (static_cast<int>(index) == delta_index) ? delta : full_;
    const std::vector<Tuple>& tuples = source.Tuples(atom.predicate);
    // Join pruning: if some argument is ground under the current bindings,
    // scan only the tuples matching it in that column.
    const std::vector<int32_t>* candidates = nullptr;
    if (options_.use_index) {
      for (int i = 0; i < atom.arity(); ++i) {
        Term bound = subst->Apply(atom.args[i]);
        if (bound.IsGround()) {
          candidates = source.MatchingTuples(atom.predicate, i, bound);
          break;
        }
      }
    }
    if (candidates != nullptr) {
      for (int32_t position : *candidates) {
        Substitution extended = *subst;
        if (!MatchAtom(atom, tuples[position], &extended)) continue;
        RELCONT_RETURN_NOT_OK(
            JoinFrom(rule, index + 1, delta_index, delta, &extended, out));
      }
      return Status::OK();
    }
    for (const Tuple& tuple : tuples) {
      Substitution extended = *subst;
      if (!MatchAtom(atom, tuple, &extended)) continue;
      RELCONT_RETURN_NOT_OK(
          JoinFrom(rule, index + 1, delta_index, delta, &extended, out));
    }
    return Status::OK();
  }

  Status EmitHead(const Rule& rule, const Substitution& subst, Database* out) {
    // One budget step per complete join result: the tightest loop the
    // evaluator has, so deadlines land mid-round instead of at round
    // boundaries.
    RELCONT_RETURN_NOT_OK(BudgetChargeOr("eval"));
    // Comparisons must evaluate to true under the (now total) assignment.
    for (const Comparison& c : rule.comparisons) {
      Comparison ground = subst.Apply(c);
      if (!ground.lhs.IsGround() || !ground.rhs.IsGround()) return Status::OK();
      if (!ground.EvaluateGround()) return Status::OK();
    }
    Atom head = subst.Apply(rule.head);
    if (!head.IsGround()) {
      return Status::Internal("unsafe rule reached evaluation: " +
                              std::to_string(rule.head.predicate));
    }
    for (const Term& t : head.args) {
      if (TermDepth(t) > options_.max_term_depth) {
        depth_truncated_ = true;
        return Status::OK();
      }
    }
    if (!full_.Contains(head)) out->Add(head);
    return Status::OK();
  }

  const Program& program_;
  const EvalOptions& options_;
  std::set<SymbolId> idb_;
  Database full_;
  bool depth_truncated_ = false;
};

}  // namespace

Result<EvalResult> Evaluate(const Program& program, const Database& edb,
                            const EvalOptions& options) {
  return SemiNaive(program, edb, options).Run();
}

Result<std::vector<Tuple>> EvaluateGoal(const Program& program, SymbolId goal,
                                        const Database& edb,
                                        const EvalOptions& options) {
  RELCONT_ASSIGN_OR_RETURN(EvalResult result, Evaluate(program, edb, options));
  std::vector<Tuple> out;
  for (const Tuple& t : result.database.Tuples(goal)) {
    bool has_function = false;
    for (const Term& term : t) {
      if (term.is_function()) {
        has_function = true;
        break;
      }
    }
    if (!has_function) out.push_back(t);
  }
  return out;
}

}  // namespace relcont
