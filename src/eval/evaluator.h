#ifndef RELCONT_EVAL_EVALUATOR_H_
#define RELCONT_EVAL_EVALUATOR_H_

#include "eval/database.h"

namespace relcont {

/// Tuning knobs and safety bounds for bottom-up evaluation.
struct EvalOptions {
  /// Facts whose terms nest Skolem functions deeper than this are not
  /// derived. Inverse-rule plans never nest Skolems, so the default is
  /// generous; the bound exists to guarantee termination on arbitrary
  /// recursive programs with function terms.
  int max_term_depth = 8;
  /// Hard cap on the number of derived facts.
  int64_t max_facts = 10'000'000;
  /// Use per-column hash indexes for join pruning (ablation switch; the
  /// bench_ablation harness measures the difference).
  bool use_index = true;
};

/// The outcome of evaluating a program.
struct EvalResult {
  /// EDB facts plus every derived IDB fact.
  Database database;
  /// True if max_term_depth suppressed any derivation (the result is then a
  /// sound under-approximation of the fixpoint).
  bool depth_truncated = false;
  /// Number of semi-naive iterations executed.
  int iterations = 0;
};

/// Computes the minimal model of `program` over `edb` by semi-naive
/// bottom-up evaluation. Comparison subgoals are evaluated over the dense
/// numeric order; Skolem function terms in rule heads are constructed as
/// syntactic values. Fails with kBoundReached if max_facts is exceeded.
Result<EvalResult> Evaluate(const Program& program, const Database& edb,
                            const EvalOptions& options = {});

/// Evaluates `program` and returns the derived tuples of `goal`, excluding
/// tuples that contain Skolem function terms (which do not denote ground
/// certain answers — see Duschka–Genesereth–Levy).
Result<std::vector<Tuple>> EvaluateGoal(const Program& program, SymbolId goal,
                                        const Database& edb,
                                        const EvalOptions& options = {});

}  // namespace relcont

#endif  // RELCONT_EVAL_EVALUATOR_H_
