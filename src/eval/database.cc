#include "eval/database.h"

#include "datalog/parser.h"

namespace relcont {

bool Database::Add(SymbolId predicate, Tuple tuple) {
  Relation& rel = relations_[predicate];
  auto [it, inserted] = rel.index.insert(tuple);
  (void)it;
  if (inserted) {
    if (rel.by_column.size() < tuple.size()) {
      rel.by_column.resize(tuple.size());
    }
    int32_t position = static_cast<int32_t>(rel.tuples.size());
    for (size_t c = 0; c < tuple.size(); ++c) {
      rel.by_column[c][tuple[c].Hash()].push_back(position);
    }
    rel.tuples.push_back(std::move(tuple));
    ++total_facts_;
  }
  return inserted;
}

const std::vector<int32_t>* Database::MatchingTuples(SymbolId predicate,
                                                     int column,
                                                     const Term& value) const {
  static const std::vector<int32_t> kEmpty;
  auto it = relations_.find(predicate);
  if (it == relations_.end()) return &kEmpty;
  const Relation& rel = it->second;
  if (column < 0 || column >= static_cast<int>(rel.by_column.size())) {
    return nullptr;
  }
  auto hit = rel.by_column[column].find(value.Hash());
  return hit == rel.by_column[column].end() ? &kEmpty : &hit->second;
}

bool Database::Contains(SymbolId predicate, const Tuple& tuple) const {
  auto it = relations_.find(predicate);
  if (it == relations_.end()) return false;
  return it->second.index.count(tuple) > 0;
}

const std::vector<Tuple>& Database::Tuples(SymbolId predicate) const {
  static const std::vector<Tuple> kEmpty;
  auto it = relations_.find(predicate);
  return it == relations_.end() ? kEmpty : it->second.tuples;
}

std::set<SymbolId> Database::Predicates() const {
  std::set<SymbolId> out;
  for (const auto& [pred, rel] : relations_) {
    if (!rel.tuples.empty()) out.insert(pred);
  }
  return out;
}

namespace {
void CollectValues(const Term& t, std::vector<Value>* out) {
  if (t.is_constant()) {
    out->push_back(t.value());
  } else if (t.is_function()) {
    for (const Term& a : t.args()) CollectValues(a, out);
  }
}
}  // namespace

std::vector<Value> Database::ActiveDomain() const {
  std::vector<Value> all;
  for (const auto& [pred, rel] : relations_) {
    (void)pred;
    for (const Tuple& t : rel.tuples) {
      for (const Term& term : t) CollectValues(term, &all);
    }
  }
  // Deduplicate preserving order.
  std::vector<Value> out;
  for (const Value& v : all) {
    bool seen = false;
    for (const Value& w : out) {
      if (v == w) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(v);
  }
  return out;
}

void Database::UnionWith(const Database& other) {
  for (const auto& [pred, rel] : other.relations_) {
    for (const Tuple& t : rel.tuples) Add(pred, t);
  }
}

bool Database::SameFactsAs(const Database& other) const {
  return SubsetOf(other) && other.SubsetOf(*this);
}

bool Database::SubsetOf(const Database& other) const {
  for (const auto& [pred, rel] : relations_) {
    for (const Tuple& t : rel.tuples) {
      if (!other.Contains(pred, t)) return false;
    }
  }
  return true;
}

std::string Database::ToString(const Interner& interner) const {
  std::string out;
  for (const auto& [pred, rel] : relations_) {
    for (const Tuple& t : rel.tuples) {
      Atom a(pred, t);
      out += a.ToString(interner);
      out += ".\n";
    }
  }
  return out;
}

Result<Database> ParseDatabase(std::string_view text, Interner* interner) {
  RELCONT_ASSIGN_OR_RETURN(Program program, ParseProgram(text, interner));
  Database db;
  for (const Rule& r : program.rules) {
    if (!r.body.empty() || !r.comparisons.empty()) {
      return Status::InvalidArgument("database text may contain only facts");
    }
    if (!r.head.IsGround()) {
      return Status::InvalidArgument("facts must be ground");
    }
    db.Add(r.head);
  }
  return db;
}

}  // namespace relcont
