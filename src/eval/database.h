#ifndef RELCONT_EVAL_DATABASE_H_
#define RELCONT_EVAL_DATABASE_H_

#include <map>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "datalog/program.h"

namespace relcont {

/// A ground tuple. Entries are ground terms: constants, or (inside query
/// plans) Skolem function terms over constants.
using Tuple = std::vector<Term>;

/// A set of ground facts keyed by predicate. Used both for source (view)
/// instances and for databases over the mediated schema.
class Database {
 public:
  Database() = default;

  /// Adds a fact. The tuple must be ground; returns true if it was new.
  bool Add(SymbolId predicate, Tuple tuple);
  /// Adds a ground atom.
  bool Add(const Atom& fact) { return Add(fact.predicate, fact.args); }

  bool Contains(SymbolId predicate, const Tuple& tuple) const;
  bool Contains(const Atom& fact) const {
    return Contains(fact.predicate, fact.args);
  }

  /// Tuples of `predicate` in insertion order (empty if unknown predicate).
  const std::vector<Tuple>& Tuples(SymbolId predicate) const;

  /// Indices (into Tuples(predicate)) of tuples whose `column`-th entry
  /// hashes like `value` — a superset of the exact matches, for join
  /// pruning; callers must still verify equality. Returns nullptr when the
  /// predicate is unknown or the column is out of range.
  const std::vector<int32_t>* MatchingTuples(SymbolId predicate, int column,
                                             const Term& value) const;

  /// Predicates that have at least one fact.
  std::set<SymbolId> Predicates() const;

  int64_t TotalFacts() const { return total_facts_; }
  /// Number of tuples for one predicate.
  int64_t Count(SymbolId predicate) const {
    return static_cast<int64_t>(Tuples(predicate).size());
  }

  /// All distinct constant values appearing in any tuple (recursing into
  /// function terms).
  std::vector<Value> ActiveDomain() const;

  /// Merges all facts of `other` into this database.
  void UnionWith(const Database& other);

  /// True if both databases contain exactly the same facts.
  bool SameFactsAs(const Database& other) const;

  /// True if every fact of this database is in `other`.
  bool SubsetOf(const Database& other) const;

  std::string ToString(const Interner& interner) const;

 private:
  struct Relation {
    std::vector<Tuple> tuples;
    std::unordered_set<Tuple, TermVecHash> index;
    // Per column: value hash -> tuple positions (join acceleration).
    std::vector<std::unordered_map<size_t, std::vector<int32_t>>> by_column;
  };

  std::map<SymbolId, Relation> relations_;
  int64_t total_facts_ = 0;
};

/// Parses a database from fact syntax ("p(1, red). q(2)."). Fails if any
/// rule has a body or a non-ground head.
Result<Database> ParseDatabase(std::string_view text, Interner* interner);

}  // namespace relcont

#endif  // RELCONT_EVAL_DATABASE_H_
