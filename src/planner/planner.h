#ifndef RELCONT_PLANNER_PLANNER_H_
#define RELCONT_PLANNER_PLANNER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "planner/plan_cache.h"
#include "relcont/decide.h"
#include "service/catalog.h"
#include "service/metrics.h"
#include "trace/trace.h"

namespace relcont {

/// relcont::planner — the plan service behind the PLAN? and REWRITE?
/// protocol verbs. Where ContainmentService answers `Q1 ⊑_V Q2 ?`, the
/// Planner *produces* the maximally-contained plan of one query against a
/// catalog (Section 2.3 inverse rules, or the Section 4 executable dom
/// plan when the catalog carries binding patterns) and decides plan-level
/// containment `P1^exp ⊑ Q2` (Theorems 4.1/5.2).
///
/// Concurrency model: identical to ContainmentService. Plans are pure
/// functions of (query, catalog, options), but plan construction mints
/// fresh symbols through a non-thread-safe Interner, so every
/// Interner-carrying structure is confined to a PlannerContext owned by
/// one thread at a time; the shared state is the catalog registry (mutex),
/// the plan cache (sharded mutexes, values are interner-independent text),
/// and the metrics (atomics).

struct PlannerConfig {
  /// Total plan-cache capacity in entries.
  size_t cache_capacity = 4096;
  size_t cache_shards = 8;
  /// A planner arena is discarded and rebuilt once its interner holds more
  /// than this many symbols (plan construction mints Skolem functions and
  /// fresh predicates per request, so arenas grow without bound).
  int64_t max_worker_symbols = 1 << 20;
  /// When true every plan request is traced and folded into the metrics
  /// aggregates (as if collect_trace were set).
  bool trace_requests = false;
  /// Deadline applied to requests that do not set their own timeout_ms
  /// (0 = no default deadline). A request past its deadline answers
  /// kBoundReached — a bound, never a wrong plan.
  int64_t default_timeout_ms = 0;
  /// Default fan-out width for REWRITE?'s per-disjunct containment scan.
  int default_parallel_workers = 1;
};

/// One plan-construction question: the maximally-contained plan of
/// `query_text` (ParseProgram syntax, goal = head of the first rule)
/// against the named catalog.
struct PlanRequest {
  std::string query_text;
  std::string catalog;
  DecideOptions options;
  bool bypass_cache = false;
  bool collect_trace = false;
};

struct PlanResponse {
  /// Non-OK on parse errors, unknown catalogs, unsupported fragments, or
  /// an exhausted budget (kBoundReached); the plan fields are meaningful
  /// only when ok.
  Status status;
  /// The plan rules, one per line, re-parseable by ParseProgram.
  std::string plan_text;
  /// Name of the unary dom accumulator ("" for nonrecursive UCQ plans).
  std::string dom_predicate;
  int num_rules = 0;
  /// True when the plan recurses through the dom accumulator (the catalog
  /// has binding patterns); false for the function-free UCQ plan.
  bool recursive = false;
  bool cache_hit = false;
  uint64_t latency_micros = 0;
  /// The flight-recorder request id minted for this request (echoed on
  /// the protocol line and the /requestz?id=N pivot).
  uint64_t request_id = 0;
  int64_t catalog_version = 0;
  /// Present iff tracing was requested for this request.
  std::shared_ptr<const trace::TraceContext> trace;
};

/// One plan-level containment question: `P1^exp ⊑ Q2` where P1 is
/// q1_text's maximally-contained plan against the catalog.
struct RewriteRequest {
  std::string q1_text;
  std::string q2_text;
  std::string catalog;
  DecideOptions options;
  bool bypass_cache = false;
  bool collect_trace = false;
};

struct RewriteResponse {
  Status status;
  bool contained = false;
  /// Rendered counterexample expansion ("" when contained).
  std::string witness_text;
  bool cache_hit = false;
  uint64_t latency_micros = 0;
  /// The flight-recorder request id minted for this request.
  uint64_t request_id = 0;
  int64_t catalog_version = 0;
  std::shared_ptr<const trace::TraceContext> trace;
};

/// Per-thread working memory for the planner: the interner arena plus the
/// catalogs materialized against it. NOT thread-safe — one context per
/// thread, exactly like WorkerContext (service/service.h); it is a
/// separate type only because the two subsystems retire their arenas
/// independently.
class PlannerContext {
 public:
  PlannerContext();

  Interner* interner() { return interner_.get(); }

 private:
  friend class Planner;

  /// Drops the arena and every structure built against it.
  void Reset();

  std::unique_ptr<Interner> interner_;
  std::map<std::string, MaterializedCatalog> catalogs_;
};

/// The plan service facade. Shares the catalog registry and metrics with
/// the ContainmentService that fronts it; owns the plan cache.
class Planner {
 public:
  /// `catalogs` and `metrics` must outlive the planner (the owning
  /// ContainmentService guarantees this).
  Planner(CatalogRegistry* catalogs, ServiceMetrics* metrics,
          PlannerConfig config = {});

  /// Builds the maximally-contained plan for `request` using the
  /// caller-owned context. Safe to call from many threads as long as each
  /// uses its own context.
  PlanResponse Plan(const PlanRequest& request, PlannerContext* ctx);

  /// Decides plan-level containment P1^exp ⊑ Q2.
  RewriteResponse Rewrite(const RewriteRequest& request, PlannerContext* ctx);

  PlanCache& cache() { return cache_; }
  const PlannerConfig& config() const { return config_; }

 private:
  /// Materializes `name` into `ctx` (cached by version).
  Result<const MaterializedCatalog*> CatalogFor(const std::string& name,
                                                PlannerContext* ctx);

  CatalogRegistry* catalogs_;
  ServiceMetrics* metrics_;
  PlannerConfig config_;
  PlanCache cache_;
};

}  // namespace relcont

#endif  // RELCONT_PLANNER_PLANNER_H_
