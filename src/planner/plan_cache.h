#ifndef RELCONT_PLANNER_PLAN_CACHE_H_
#define RELCONT_PLANNER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace relcont {

/// A planner result in interner-independent form, so one cache can serve
/// every worker arena: the plan travels as rendered text (re-parseable by
/// ParseProgram) rather than as a Program full of thread-local SymbolIds.
/// PLAN? entries fill the plan fields; REWRITE? entries fill the verdict
/// fields. Both share the struct so the cache needs a single value type.
struct CachedPlan {
  /// PLAN?: the plan rules, one per line (ParseProgram syntax, Skolem
  /// function terms included for recursive dom plans).
  std::string plan_text;
  /// Name of the unary dom accumulator ("" for nonrecursive UCQ plans).
  std::string dom_predicate;
  /// Rule count of the plan (0 for REWRITE? entries).
  int num_rules = 0;
  /// True when the plan recurses through the dom accumulator.
  bool recursive = false;
  /// REWRITE?: the plan-level containment verdict P1^exp ⊑ Q2.
  bool contained = false;
  /// Rendered counterexample ("" when none).
  std::string witness_text;
};

struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Entries dropped by catalog re-registration (not LRU pressure).
  uint64_t invalidated = 0;
  uint64_t entries = 0;
};

/// A sharded LRU cache of planner results, keyed by (catalog name +
/// version, canonical query fingerprint, verb) — see
/// CanonicalProgramFingerprint in containment/canonical.h for why the key
/// is invariant under variable renaming and rule reordering.
///
/// Mirrors DecisionCache's design (per-shard mutex + recency list +
/// counters) with one addition: every entry remembers the catalog it was
/// planned against, so InvalidateCatalog can evict exactly that catalog's
/// plans when a re-registration bumps its version. The version in the key
/// already prevents stale *hits*; invalidation reclaims the dead entries
/// instead of letting them age out under LRU pressure. Thread-safe.
class PlanCache {
 public:
  /// `capacity` is the total entry budget, split evenly across
  /// `num_shards` shards (each shard holds at least one entry).
  explicit PlanCache(size_t capacity, size_t num_shards = 8);

  /// Returns the cached plan and refreshes its recency, or nullopt.
  /// Counts a hit or a miss.
  std::optional<CachedPlan> Lookup(const std::string& key);

  /// Inserts (or refreshes) `key` attributed to `catalog`, evicting the
  /// shard's least recently used entry when the shard is full.
  void Insert(const std::string& key, const std::string& catalog,
              CachedPlan value);

  /// Drops every entry planned against `catalog` (every shard is swept —
  /// invalidation is rare, lookups are not). Counts each dropped entry
  /// under `invalidated`; other catalogs' entries and the hit/miss
  /// counters are untouched.
  void InvalidateCatalog(const std::string& catalog);

  /// Aggregated counters across shards.
  PlanCacheStats Stats() const;

  /// Drops every entry; counters keep accumulating.
  void Clear();

  size_t capacity() const { return per_shard_capacity_ * shards_.size(); }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    std::string key;
    std::string catalog;
    CachedPlan plan;
  };

  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidated = 0;
  };

  Shard& ShardFor(const std::string& key);

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace relcont

#endif  // RELCONT_PLANNER_PLAN_CACHE_H_
