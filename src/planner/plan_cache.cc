#include "planner/plan_cache.h"

#include <algorithm>
#include <functional>

namespace relcont {

PlanCache::PlanCache(size_t capacity, size_t num_shards) {
  num_shards = std::max<size_t>(1, num_shards);
  per_shard_capacity_ = std::max<size_t>(1, (capacity + num_shards - 1) /
                                                num_shards);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PlanCache::Shard& PlanCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::optional<CachedPlan> PlanCache::Lookup(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->plan;
}

void PlanCache::Insert(const std::string& key, const std::string& catalog,
                       CachedPlan value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->catalog = catalog;
    it->second->plan = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.push_front(Entry{key, catalog, std::move(value)});
  shard.index[key] = shard.lru.begin();
}

void PlanCache::InvalidateCatalog(const std::string& catalog) {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->catalog == catalog) {
        shard->index.erase(it->key);
        it = shard->lru.erase(it);
        ++shard->invalidated;
      } else {
        ++it;
      }
    }
  }
}

PlanCacheStats PlanCache::Stats() const {
  PlanCacheStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.evictions += shard->evictions;
    out.invalidated += shard->invalidated;
    out.entries += shard->lru.size();
  }
  return out;
}

void PlanCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace relcont
