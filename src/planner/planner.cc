#include "planner/planner.h"

#include <chrono>
#include <optional>
#include <utility>

#include "binding/dom_plan.h"
#include "common/budget.h"
#include "containment/canonical.h"
#include "datalog/parser.h"
#include "relcont/binding_containment.h"
#include "relcont/relative_containment.h"
#include "rewriting/inverse_rules.h"

namespace relcont {

namespace {

Result<GoalQuery> ParseGoalQuery(const std::string& text,
                                 Interner* interner) {
  RELCONT_ASSIGN_OR_RETURN(Program program, ParseProgram(text, interner));
  if (program.rules.empty()) {
    return Status::InvalidArgument("query text contains no rules");
  }
  SymbolId goal = program.rules[0].head.predicate;
  return GoalQuery{std::move(program), goal};
}

/// Every option that can change a plan must appear in the key; the budget
/// fields are deliberately absent for the same reason as the decision
/// cache's key (service.cc): a bound turns the answer into a non-OK
/// status, and non-OK results are never cached.
std::string PlanOptionsFingerprint(const DecideOptions& o) {
  std::string out = std::to_string(o.unfold.max_disjuncts);
  out += ',';
  out += std::to_string(o.dom.max_tree_options);
  out += ',';
  out += std::to_string(o.dom.max_rounds);
  out += ',';
  out += std::to_string(o.dom.max_core_checks);
  out += ',';
  out += std::to_string(o.dom.max_disjunct_size);
  out += ',';
  out += std::to_string(o.dom.unfold.max_disjuncts);
  return out;
}

/// One newline-free line identifying a planner request in the slow log.
std::string DescribePlanRequest(const std::string& verb,
                                const std::string& query,
                                const std::string& catalog) {
  std::string out = verb + " " + query + " @" + catalog;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  constexpr size_t kMaxLength = 160;
  if (out.size() > kMaxLength) {
    out.resize(kMaxLength - 3);
    out += "...";
  }
  return out;
}

}  // namespace

PlannerContext::PlannerContext() : interner_(std::make_unique<Interner>()) {}

void PlannerContext::Reset() {
  catalogs_.clear();
  interner_ = std::make_unique<Interner>();
}

Planner::Planner(CatalogRegistry* catalogs, ServiceMetrics* metrics,
                 PlannerConfig config)
    : catalogs_(catalogs),
      metrics_(metrics),
      config_(config),
      cache_(config.cache_capacity, config.cache_shards) {}

Result<const MaterializedCatalog*> Planner::CatalogFor(
    const std::string& name, PlannerContext* ctx) {
  std::shared_ptr<const CatalogSpec> spec = catalogs_->Find(name);
  if (spec == nullptr) {
    return Status::InvalidArgument("unknown catalog '" + name + "'");
  }
  auto it = ctx->catalogs_.find(name);
  if (it != ctx->catalogs_.end() && it->second.version == spec->version) {
    return &it->second;
  }
  RELCONT_ASSIGN_OR_RETURN(MaterializedCatalog materialized,
                           MaterializeCatalog(*spec, ctx->interner()));
  auto [pos, inserted] =
      ctx->catalogs_.insert_or_assign(name, std::move(materialized));
  (void)inserted;
  return &pos->second;
}

PlanResponse Planner::Plan(const PlanRequest& request, PlannerContext* ctx) {
  auto start = std::chrono::steady_clock::now();
  PlanResponse out;
  out.request_id = metrics_->flight().NextRequestId();
  WorkBudget budget;
  int64_t timeout_ms = request.options.timeout_ms > 0
                           ? request.options.timeout_ms
                           : config_.default_timeout_ms;
  if (timeout_ms > 0) {
    budget.set_timeout(std::chrono::milliseconds(timeout_ms));
  }
  if (request.options.max_steps > 0) {
    budget.set_max_steps(request.options.max_steps);
  }
  std::shared_ptr<trace::TraceContext> trace_ctx;
  std::optional<trace::TraceScope> trace_scope;
  if (request.collect_trace || config_.trace_requests) {
    trace_ctx = std::make_shared<trace::TraceContext>();
    trace_ctx->set_request_id(out.request_id);
    trace_scope.emplace(trace_ctx.get());
  }
  out.status = [&]() -> Status {
    if (ctx->interner()->size() > config_.max_worker_symbols) {
      ctx->Reset();
    }
    RELCONT_ASSIGN_OR_RETURN(const MaterializedCatalog* catalog,
                             CatalogFor(request.catalog, ctx));
    out.catalog_version = catalog->version;
    RELCONT_ASSIGN_OR_RETURN(
        GoalQuery query, ParseGoalQuery(request.query_text, ctx->interner()));
    std::string key;
    if (!request.bypass_cache) {
      key = "P\x1f" + request.catalog + ":v" +
            std::to_string(catalog->version) + '\x1f' +
            CanonicalProgramFingerprint(query.program, query.goal,
                                        *ctx->interner()) +
            '\x1f' + PlanOptionsFingerprint(request.options);
      if (std::optional<CachedPlan> cached = cache_.Lookup(key)) {
        out.plan_text = std::move(cached->plan_text);
        out.dom_predicate = std::move(cached->dom_predicate);
        out.num_rules = cached->num_rules;
        out.recursive = cached->recursive;
        out.cache_hit = true;
        return Status::OK();
      }
    }
    BudgetScope budget_scope(&budget);
    RELCONT_TRACE_SPAN("planner_plan");
    if (!catalog->patterns.empty()) {
      // Section 4: the executable maximally-contained plan — recursive
      // through the unary dom accumulator, Skolem terms in the guarded
      // inverse rules (they round-trip through ParseProgram).
      RELCONT_ASSIGN_OR_RETURN(
          ExecutablePlanResult plan,
          ExecutablePlan(query.program, catalog->views, catalog->patterns,
                         ctx->interner()));
      out.plan_text = plan.program.ToString(*ctx->interner());
      out.dom_predicate = ctx->interner()->NameOf(plan.dom_predicate);
      out.num_rules = static_cast<int>(plan.program.rules.size());
      out.recursive = true;
    } else {
      // Section 2.3/3: inverse rules, then function-term elimination down
      // to the executable UCQ over the sources.
      RELCONT_ASSIGN_OR_RETURN(
          Program plan,
          MaximallyContainedPlan(query.program, catalog->views,
                                 ctx->interner()));
      RELCONT_ASSIGN_OR_RETURN(
          UnionQuery ucq,
          PlanToUnion(plan, query.goal, catalog->views, ctx->interner(),
                      request.options.unfold));
      out.plan_text = ucq.ToString(*ctx->interner());
      out.num_rules = static_cast<int>(ucq.disjuncts.size());
      out.recursive = false;
    }
    RELCONT_TRACE_COUNT(kPlannerPlansBuilt, 1);
    RELCONT_TRACE_COUNT(kPlannerPlanRules,
                        static_cast<uint64_t>(out.num_rules));
    if (!request.bypass_cache) {
      cache_.Insert(key, request.catalog,
                    CachedPlan{out.plan_text, out.dom_predicate,
                               out.num_rules, out.recursive,
                               /*contained=*/false, /*witness_text=*/""});
    }
    return Status::OK();
  }();
  trace_scope.reset();
  out.latency_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  if (out.status.code() == StatusCode::kBoundReached) {
    // Aggregation-level attribution: the whole PLAN? request ended in a
    // bound (whatever inner site minted it), so the planner shows up in
    // bound_hits{site=...} alongside the low-level sites.
    NoteBoundSite("planner_plan");
  }
  metrics_->RecordPlanRequest(
      /*rewrite=*/false,
      out.status.ok() ? (out.recursive ? Regime::kSection4 : Regime::kSection3)
                      : Regime::kUnknown,
      out.latency_micros, !out.status.ok());
  metrics_->RecordBudget(budget.tasks_spawned(), budget.tasks_completed(),
                         budget.reason() == BudgetReason::kDeadline);
  if (trace_ctx != nullptr) {
    metrics_->RecordTrace(
        out.recursive ? Regime::kSection4 : Regime::kSection3,
        out.latency_micros, *trace_ctx,
        DescribePlanRequest("PLAN?", request.query_text, request.catalog),
        out.request_id);
  }
  obs::WideEvent event;
  event.request_id = out.request_id;
  event.latency_micros = out.latency_micros;
  event.catalog_version = out.catalog_version;
  event.error = out.status.ok() ? 0 : 1;
  event.cache_hit = out.cache_hit ? 1 : 0;
  event.bound = out.status.code() == StatusCode::kBoundReached ? 1 : 0;
  event.set_verb("plan");
  event.set_regime(RegimeName(
      out.status.ok()
          ? (out.recursive ? Regime::kSection4 : Regime::kSection3)
          : Regime::kUnknown));
  event.set_catalog(request.catalog);
  event.set_bound_site(BoundSiteFromStatus(out.status));
  metrics_->RecordFlight(ServiceVerb::kPlan, event, trace_ctx.get());
  if (trace_ctx != nullptr) out.trace = std::move(trace_ctx);
  return out;
}

RewriteResponse Planner::Rewrite(const RewriteRequest& request,
                                 PlannerContext* ctx) {
  auto start = std::chrono::steady_clock::now();
  RewriteResponse out;
  out.request_id = metrics_->flight().NextRequestId();
  WorkBudget budget;
  int64_t timeout_ms = request.options.timeout_ms > 0
                           ? request.options.timeout_ms
                           : config_.default_timeout_ms;
  if (timeout_ms > 0) {
    budget.set_timeout(std::chrono::milliseconds(timeout_ms));
  }
  if (request.options.max_steps > 0) {
    budget.set_max_steps(request.options.max_steps);
  }
  std::shared_ptr<trace::TraceContext> trace_ctx;
  std::optional<trace::TraceScope> trace_scope;
  if (request.collect_trace || config_.trace_requests) {
    trace_ctx = std::make_shared<trace::TraceContext>();
    trace_ctx->set_request_id(out.request_id);
    trace_scope.emplace(trace_ctx.get());
  }
  bool used_patterns = false;
  out.status = [&]() -> Status {
    if (ctx->interner()->size() > config_.max_worker_symbols) {
      ctx->Reset();
    }
    RELCONT_ASSIGN_OR_RETURN(const MaterializedCatalog* catalog,
                             CatalogFor(request.catalog, ctx));
    out.catalog_version = catalog->version;
    // Set before the cache lookup so cache hits attribute their window
    // sample to the regime the cached answer came from.
    used_patterns = !catalog->patterns.empty();
    RELCONT_ASSIGN_OR_RETURN(
        GoalQuery q1, ParseGoalQuery(request.q1_text, ctx->interner()));
    RELCONT_ASSIGN_OR_RETURN(
        GoalQuery q2, ParseGoalQuery(request.q2_text, ctx->interner()));
    std::string key;
    if (!request.bypass_cache) {
      key = "R\x1f" + request.catalog + ":v" +
            std::to_string(catalog->version) + '\x1f' +
            CanonicalProgramFingerprint(q1.program, q1.goal,
                                        *ctx->interner()) +
            '\x1f' +
            CanonicalProgramFingerprint(q2.program, q2.goal,
                                        *ctx->interner()) +
            '\x1f' + PlanOptionsFingerprint(request.options);
      if (std::optional<CachedPlan> cached = cache_.Lookup(key)) {
        out.contained = cached->contained;
        out.witness_text = std::move(cached->witness_text);
        out.cache_hit = true;
        return Status::OK();
      }
    }
    BudgetScope budget_scope(&budget);
    RELCONT_TRACE_SPAN("planner_rewrite");
    if (used_patterns) {
      // Theorem 4.1: P1^exp ⊑ Q2 over the executable dom plan.
      RELCONT_ASSIGN_OR_RETURN(
          BindingRelativeResult result,
          RelativelyContainedWithBindingPatterns(
              q1, q2, catalog->views, catalog->patterns, ctx->interner(),
              request.options.dom));
      out.contained = result.contained;
      if (result.counterexample.has_value()) {
        out.witness_text = result.counterexample->ToString(*ctx->interner());
      }
    } else {
      // Theorem 5.2 route (degenerates to Theorem 3.1 without
      // comparisons): P1^exp ⊑ Q2 via the expansion.
      RelativeContainmentOptions options;
      options.unfold = request.options.unfold;
      options.parallel_workers =
          request.options.parallel_workers > 1
              ? request.options.parallel_workers
              : config_.default_parallel_workers;
      Rule witness;
      RELCONT_ASSIGN_OR_RETURN(
          out.contained,
          RelativelyContainedViaExpansion(q1, q2, catalog->views,
                                          ctx->interner(), options,
                                          &witness));
      if (!out.contained) {
        out.witness_text = witness.ToString(*ctx->interner());
      }
    }
    if (!request.bypass_cache) {
      cache_.Insert(key, request.catalog,
                    CachedPlan{/*plan_text=*/"", /*dom_predicate=*/"",
                               /*num_rules=*/0, /*recursive=*/false,
                               out.contained, out.witness_text});
    }
    return Status::OK();
  }();
  trace_scope.reset();
  out.latency_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  if (out.status.code() == StatusCode::kBoundReached) {
    NoteBoundSite("planner_rewrite");
  }
  metrics_->RecordPlanRequest(
      /*rewrite=*/true,
      out.status.ok()
          ? (used_patterns ? Regime::kSection4 : Regime::kSection3)
          : Regime::kUnknown,
      out.latency_micros, !out.status.ok());
  metrics_->RecordBudget(budget.tasks_spawned(), budget.tasks_completed(),
                         budget.reason() == BudgetReason::kDeadline);
  if (trace_ctx != nullptr) {
    metrics_->RecordTrace(
        used_patterns ? Regime::kSection4 : Regime::kSection3,
        out.latency_micros, *trace_ctx,
        DescribePlanRequest("REWRITE?",
                            request.q1_text + " => " + request.q2_text,
                            request.catalog),
        out.request_id);
  }
  obs::WideEvent event;
  event.request_id = out.request_id;
  event.latency_micros = out.latency_micros;
  event.catalog_version = out.catalog_version;
  event.error = out.status.ok() ? 0 : 1;
  event.cache_hit = out.cache_hit ? 1 : 0;
  event.bound = out.status.code() == StatusCode::kBoundReached ? 1 : 0;
  event.set_verb("rewrite");
  event.set_regime(RegimeName(
      out.status.ok()
          ? (used_patterns ? Regime::kSection4 : Regime::kSection3)
          : Regime::kUnknown));
  event.set_catalog(request.catalog);
  event.set_bound_site(BoundSiteFromStatus(out.status));
  metrics_->RecordFlight(ServiceVerb::kRewrite, event, trace_ctx.get());
  if (trace_ctx != nullptr) out.trace = std::move(trace_ctx);
  return out;
}

}  // namespace relcont
