#include "containment/expansion.h"

#include "common/budget.h"
#include "containment/cq_containment.h"
#include "datalog/substitution.h"
#include "trace/trace.h"

namespace relcont {

namespace {

class Enumerator {
 public:
  Enumerator(const Program& program, Interner* interner,
             const ExpansionOptions& options,
             const std::function<bool(const Rule&)>& visit)
      : program_(program),
        interner_(interner),
        options_(options),
        visit_(visit),
        idb_(program.IdbPredicates()) {}

  // Returns OK when enumeration ran to natural exhaustion.
  Result<bool> Run(SymbolId goal) {
    for (const Rule* rule : program_.RulesFor(goal)) {
      if (stop_) break;
      Expand(RenameApart(*rule, interner_), 1);
    }
    return complete_ && !stop_;
  }

 private:
  // `rule` has some prefix of EDB atoms and possibly IDB atoms; resolve the
  // first IDB atom against every alternative.
  void Expand(const Rule& rule, int applications) {
    if (stop_) return;
    // One budget step per resolution node; exhaustion truncates the
    // enumeration exactly like max_expansions (complete_ = false), so the
    // caller's BoundReached path reports it.
    if (!BudgetCharge(1)) {
      complete_ = false;
      stop_ = true;
      return;
    }
    int idb_index = -1;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (idb_.count(rule.body[i].predicate) > 0) {
        idb_index = static_cast<int>(i);
        break;
      }
    }
    if (idb_index < 0) {
      if (++visited_ > options_.max_expansions) {
        complete_ = false;
        stop_ = true;
        return;
      }
      RELCONT_TRACE_COUNT(kExpansionsVisited, 1);
      if (!visit_(rule)) stop_ = true;
      return;
    }
    if (applications >= options_.max_rule_applications) {
      complete_ = false;  // derivation cut off
      return;
    }
    const Atom& subgoal = rule.body[idb_index];
    for (const Rule* def : program_.RulesFor(subgoal.predicate)) {
      if (stop_) return;
      Rule fresh = RenameApart(*def, interner_);
      Substitution mgu;
      if (!UnifyAtoms(subgoal, fresh.head, &mgu)) continue;
      RELCONT_TRACE_COUNT(kExpansionRuleApps, 1);
      Rule resolved;
      resolved.head = mgu.Apply(rule.head);
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (static_cast<int>(i) == idb_index) {
          for (const Atom& a : fresh.body) {
            resolved.body.push_back(mgu.Apply(a));
          }
        } else {
          resolved.body.push_back(mgu.Apply(rule.body[i]));
        }
      }
      Expand(resolved, applications + 1);
    }
  }

  const Program& program_;
  Interner* interner_;
  const ExpansionOptions& options_;
  const std::function<bool(const Rule&)>& visit_;
  std::set<SymbolId> idb_;
  int64_t visited_ = 0;
  bool complete_ = true;
  bool stop_ = false;
};

}  // namespace

Result<bool> ForEachExpansion(const Program& program, SymbolId goal,
                              Interner* interner,
                              const ExpansionOptions& options,
                              const std::function<bool(const Rule&)>& visit) {
  for (const Rule& r : program.rules) {
    if (!r.comparisons.empty()) {
      return Status::Unsupported(
          "expansion enumeration covers comparison-free programs");
    }
  }
  RELCONT_TRACE_SPAN("expansion");
  return Enumerator(program, interner, options, visit).Run(goal);
}

Result<bool> DatalogContainedInUcqBounded(const Program& program,
                                          SymbolId goal, const UnionQuery& q,
                                          Interner* interner,
                                          const ExpansionOptions& options,
                                          Rule* witness) {
  bool all_contained = true;
  Rule counterexample;
  Status inner_error;
  Result<bool> complete = ForEachExpansion(
      program, goal, interner, options, [&](const Rule& expansion) {
        Result<bool> contained = CqContainedInUnion(expansion, q);
        if (!contained.ok()) {
          inner_error = contained.status();
          return false;
        }
        if (!*contained) {
          all_contained = false;
          counterexample = expansion;
          return false;  // definite counterexample; stop
        }
        return true;
      });
  if (!complete.ok()) return complete.status();
  if (!inner_error.ok()) return inner_error;
  if (!all_contained) {
    if (witness != nullptr) *witness = counterexample;
    return false;
  }
  if (!*complete) {
    // Prefer the budget's own status (deadline vs steps) when it was the
    // cause; otherwise this is the structural expansion cap.
    RELCONT_RETURN_NOT_OK(BudgetOkOrBound("expansion"));
    return BoundReachedAt(
        "expansion", "no counterexample within bounds, but enumeration was "
                     "truncated");
  }
  return true;
}

}  // namespace relcont
