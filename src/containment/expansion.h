#ifndef RELCONT_CONTAINMENT_EXPANSION_H_
#define RELCONT_CONTAINMENT_EXPANSION_H_

#include <functional>

#include "common/status.h"
#include "datalog/program.h"

namespace relcont {

/// Enumeration of the expansions of a datalog program: the conjunctive
/// queries obtained by unfolding proof trees of the goal predicate. For a
/// recursive program the set is infinite; enumeration is bounded by the
/// number of rule applications per expansion.

struct ExpansionOptions {
  /// Maximum rule applications in a single expansion's derivation tree.
  int max_rule_applications = 10;
  /// Hard cap on the number of expansions visited.
  int64_t max_expansions = 1'000'000;
};

/// Invokes `visit` for every expansion of `goal` whose derivation uses at
/// most max_rule_applications rule applications. `visit` returning false
/// stops enumeration early.
///
/// Returns true if the enumeration was COMPLETE: every expansion of the
/// program was visited (no derivation was cut off by the bounds and the
/// visitor never stopped early) — guaranteed for nonrecursive programs
/// with sufficient bounds. Returns false if some derivations were pruned.
Result<bool> ForEachExpansion(const Program& program, SymbolId goal,
                              Interner* interner,
                              const ExpansionOptions& options,
                              const std::function<bool(const Rule&)>& visit);

/// Bounded containment check of a datalog program in a UCQ
/// (comparison-free): searches the program's expansions for one not
/// contained in `q`.
///  * Finds a counterexample within the bounds -> returns false (definite;
///    `witness` receives the offending expansion).
///  * Full enumeration, all contained -> returns true (definite).
///  * Bounds hit with no counterexample -> kBoundReached (inconclusive).
Result<bool> DatalogContainedInUcqBounded(const Program& program,
                                          SymbolId goal, const UnionQuery& q,
                                          Interner* interner,
                                          const ExpansionOptions& options,
                                          Rule* witness = nullptr);

}  // namespace relcont

#endif  // RELCONT_CONTAINMENT_EXPANSION_H_
