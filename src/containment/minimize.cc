#include "containment/minimize.h"

#include "containment/homomorphism.h"

namespace relcont {

namespace {

Status RequireMinimizable(const Rule& q) {
  if (!q.comparisons.empty()) {
    return Status::Unsupported(
        "minimization is implemented for comparison-free queries");
  }
  return q.CheckSafe();
}

}  // namespace

Result<Rule> MinimizeQuery(const Rule& q) {
  RELCONT_RETURN_NOT_OK(RequireMinimizable(q));
  Rule current = q;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < current.body.size(); ++i) {
      Rule reduced = current;
      reduced.body.erase(reduced.body.begin() + i);
      // Dropping an atom weakens the query; equivalence needs the original
      // to fold into the reduced body (current ⊒ reduced is automatic).
      if (!reduced.CheckSafe().ok()) continue;  // head var would dangle
      if (FindContainmentMapping(current, reduced).has_value()) {
        current = std::move(reduced);
        changed = true;
        break;
      }
    }
  }
  return current;
}

Result<bool> IsMinimal(const Rule& q) {
  RELCONT_ASSIGN_OR_RETURN(Rule core, MinimizeQuery(q));
  return core.body.size() == q.body.size();
}

}  // namespace relcont
