#ifndef RELCONT_CONTAINMENT_MINIMIZE_H_
#define RELCONT_CONTAINMENT_MINIMIZE_H_

#include "common/status.h"
#include "datalog/rule.h"

namespace relcont {

/// Conjunctive-query minimization (Chandra–Merlin cores). Containment's
/// classical application to query optimization: a CQ is equivalent to its
/// CORE, the smallest subset of its subgoals it can be folded onto. The
/// paper's introduction lists query optimization as the first use of
/// containment; this is that use.

/// Computes a core of `q` (comparison-free): repeatedly drops a body atom
/// when a containment mapping from the full query into the reduced one
/// exists. The result is equivalent to `q` and subgoal-minimal. Cores are
/// unique up to isomorphism; this returns one representative.
Result<Rule> MinimizeQuery(const Rule& q);

/// True iff `q` is its own core (no subgoal can be dropped).
Result<bool> IsMinimal(const Rule& q);

}  // namespace relcont

#endif  // RELCONT_CONTAINMENT_MINIMIZE_H_
