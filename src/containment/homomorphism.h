#ifndef RELCONT_CONTAINMENT_HOMOMORPHISM_H_
#define RELCONT_CONTAINMENT_HOMOMORPHISM_H_

#include <functional>
#include <optional>

#include "datalog/substitution.h"

namespace relcont {

/// A containment mapping from rule `from` into rule `to` (Chandra–Merlin):
/// a substitution h on the variables of `from` such that h(head(from)) =
/// head(to) and every relational subgoal of h(body(from)) appears in
/// body(to). Head predicate names are ignored (queries keep their own head
/// symbols); arities must match. Comparison subgoals are NOT checked here —
/// callers layer the appropriate comparison test on top.

/// Finds one containment mapping, or nullopt.
std::optional<Substitution> FindContainmentMapping(const Rule& from,
                                                   const Rule& to);

/// Enumerates all containment mappings from `from` into `to`, invoking
/// `visit` for each. If `visit` returns true, enumeration stops early (and
/// this function returns true). Returns false if no mapping satisfied the
/// visitor.
bool ForEachContainmentMapping(
    const Rule& from, const Rule& to,
    const std::function<bool(const Substitution&)>& visit);

}  // namespace relcont

#endif  // RELCONT_CONTAINMENT_HOMOMORPHISM_H_
