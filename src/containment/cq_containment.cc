#include "containment/cq_containment.h"

#include "common/budget.h"
#include "containment/homomorphism.h"
#include "trace/trace.h"

namespace relcont {

namespace {

Status RequireNoComparisons(const Rule& q) {
  if (!q.comparisons.empty()) {
    return Status::InvalidArgument(
        "comparison subgoals require the comparison-aware containment test");
  }
  return Status::OK();
}

Status RequireNoComparisons(const UnionQuery& q) {
  for (const Rule& r : q.disjuncts) {
    RELCONT_RETURN_NOT_OK(RequireNoComparisons(r));
  }
  return Status::OK();
}

}  // namespace

Result<bool> CqContained(const Rule& q1, const Rule& q2) {
  RELCONT_RETURN_NOT_OK(RequireNoComparisons(q1));
  RELCONT_RETURN_NOT_OK(RequireNoComparisons(q2));
  if (q1.head.arity() != q2.head.arity()) {
    return Status::InvalidArgument("containment requires equal head arity");
  }
  if (FindContainmentMapping(q2, q1).has_value()) return true;
  // A found mapping is real even under an exhausted budget; a "not found"
  // from a truncated search is not an answer.
  RELCONT_RETURN_NOT_OK(BudgetOkOrBound("cq_containment"));
  return false;
}

Result<bool> CqContainedInUnion(const Rule& q1, const UnionQuery& q2) {
  RELCONT_RETURN_NOT_OK(RequireNoComparisons(q1));
  RELCONT_RETURN_NOT_OK(RequireNoComparisons(q2));
  // For a conjunctive (comparison-free) q1, containment in a union holds
  // iff q1 is contained in some single disjunct: freeze q1 to its canonical
  // database; the disjunct that derives the head tuple supplies the
  // containment mapping.
  for (const Rule& d : q2.disjuncts) {
    if (q1.head.arity() != d.head.arity()) continue;
    RELCONT_TRACE_COUNT(kDisjunctChecks, 1);
    if (FindContainmentMapping(d, q1).has_value()) return true;
  }
  RELCONT_RETURN_NOT_OK(BudgetOkOrBound("cq_union_containment"));
  return false;
}

Result<bool> UnionContainedInUnion(const UnionQuery& q1,
                                   const UnionQuery& q2) {
  for (const Rule& d : q1.disjuncts) {
    RELCONT_ASSIGN_OR_RETURN(bool contained, CqContainedInUnion(d, q2));
    if (!contained) return false;
  }
  return true;
}

Result<bool> UnionEquivalent(const UnionQuery& q1, const UnionQuery& q2) {
  RELCONT_ASSIGN_OR_RETURN(bool a, UnionContainedInUnion(q1, q2));
  if (!a) return false;
  return UnionContainedInUnion(q2, q1);
}

Result<UnionQuery> MinimizeUnion(const UnionQuery& q) {
  RELCONT_RETURN_NOT_OK(RequireNoComparisons(q));
  std::vector<bool> dead(q.disjuncts.size(), false);
  for (size_t i = 0; i < q.disjuncts.size(); ++i) {
    for (size_t j = 0; j < q.disjuncts.size(); ++j) {
      if (i == j || dead[i] || dead[j]) continue;
      RELCONT_ASSIGN_OR_RETURN(bool contained,
                               CqContained(q.disjuncts[i], q.disjuncts[j]));
      if (contained) {
        // i is redundant unless i and j are equivalent and j was already
        // kept; break ties by index to keep exactly one of an equivalent
        // pair.
        RELCONT_ASSIGN_OR_RETURN(bool back,
                                 CqContained(q.disjuncts[j], q.disjuncts[i]));
        if (!back || j < i) dead[i] = true;
      }
    }
  }
  UnionQuery out;
  for (size_t i = 0; i < q.disjuncts.size(); ++i) {
    if (!dead[i]) out.disjuncts.push_back(q.disjuncts[i]);
  }
  return out;
}

}  // namespace relcont
