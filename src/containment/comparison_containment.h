#ifndef RELCONT_CONTAINMENT_COMPARISON_CONTAINMENT_H_
#define RELCONT_CONTAINMENT_COMPARISON_CONTAINMENT_H_

#include <optional>

#include "common/status.h"
#include "datalog/rule.h"

namespace relcont {

/// Containment for conjunctive queries with comparison predicates over a
/// dense order (Section 5 of the paper).
///
/// Two tests are provided:
///  * the complete LINEARIZATION test (Klug / van der Meyden): q1 ⊑ q2 iff
///    for every total order of q1's variables and the relevant constants
///    consistent with q1's comparisons there is a containment mapping h
///    from q2's relational subgoals into q1's with the order satisfying
///    h(q2's comparisons). Exponential in the number of points — matching
///    the Π₂ᴾ upper bounds.
///  * the HOMOMORPHISM-ENTAILMENT test: a single mapping h must exist with
///    C(q1) ⊨ h(C(q2)). Sound always; complete when q2's comparisons are
///    semi-interval (x θ c) [Klug], which is the fragment Theorem 5.1 uses.

/// Rewrites `q` into comparison-normal form: equality comparisons are
/// substituted through the rule, ground comparisons are evaluated, and the
/// remaining comparisons relate variables and numeric constants only.
/// Returns nullopt if the comparisons are unsatisfiable (empty query).
/// Fails with kUnsupported on symbolic-constant disequalities over
/// variables (outside the paper's dense-order fragment).
Result<std::optional<Rule>> NormalizeComparisons(const Rule& q);

/// True iff every comparison of `q` is semi-interval after normalization.
bool AllComparisonsSemiInterval(const Rule& q);

/// Complete test: q1 ⊑ q2 for CQs whose comparisons are over the dense
/// order. Uses linearizations of q1's points.
Result<bool> CqContainedComplete(const Rule& q1, const Rule& q2);

/// Complete test against a union: q1 ⊑ ∪(q2). Note that with comparisons a
/// CQ can be contained in a union without being contained in any single
/// disjunct, so this does NOT reduce to per-disjunct checks.
Result<bool> CqContainedInUnionComplete(const Rule& q1, const UnionQuery& q2);

/// Complete test: ∪(q1) ⊑ ∪(q2).
Result<bool> UnionContainedInUnionComplete(const UnionQuery& q1,
                                           const UnionQuery& q2);

/// Sound test, complete for semi-interval q2: exists h with
/// C(q1) ⊨ h(C(q2)).
Result<bool> CqContainedViaEntailment(const Rule& q1, const Rule& q2);

}  // namespace relcont

#endif  // RELCONT_CONTAINMENT_COMPARISON_CONTAINMENT_H_
