#include "containment/comparison_containment.h"

#include <map>

#include "common/budget.h"
#include "constraints/order_constraints.h"
#include "containment/homomorphism.h"
#include "trace/trace.h"

namespace relcont {

namespace {

bool IsNumeric(const Term& t) {
  return t.is_constant() && t.value().is_number();
}
bool IsSymbolic(const Term& t) {
  return t.is_constant() && t.value().is_symbol();
}

// Collects the numeric constants of `q` as terms.
void CollectNumericConstants(const Rule& q, std::vector<Term>* out) {
  for (const Value& v : q.Constants()) {
    if (v.is_number()) out->push_back(Term::Constant(v));
  }
}

// Builds the order constraints of q1's comparisons over the point set
// vars(q1) ∪ numeric-consts(q1) ∪ numeric-consts(q2).
Result<OrderConstraints> BuildConstraints(const Rule& q1, const Rule* q2) {
  OrderConstraints c;
  for (SymbolId v : q1.Variables()) {
    RELCONT_RETURN_NOT_OK(c.AddPoint(Term::Var(v)));
  }
  std::vector<Term> consts;
  CollectNumericConstants(q1, &consts);
  if (q2 != nullptr) CollectNumericConstants(*q2, &consts);
  for (const Term& t : consts) {
    RELCONT_RETURN_NOT_OK(c.AddPoint(t));
  }
  RELCONT_RETURN_NOT_OK(c.AddAll(q1.comparisons));
  return c;
}

// Evaluates a ground-under-σ comparison: every term must be a key of σ.
bool ComparisonHoldsUnder(const Comparison& c,
                          const std::map<Term, Rational>& sigma) {
  auto lookup = [&](const Term& t, Rational* out) {
    if (IsNumeric(t)) {
      *out = t.value().number();
      return true;
    }
    auto it = sigma.find(t);
    if (it == sigma.end()) return false;
    *out = it->second;
    return true;
  };
  Rational a, b;
  if (!lookup(c.lhs, &a) || !lookup(c.rhs, &b)) return false;
  switch (c.op) {
    case ComparisonOp::kEq:
      return a == b;
    case ComparisonOp::kNe:
      return a != b;
    case ComparisonOp::kLt:
      return a < b;
    case ComparisonOp::kLe:
      return a <= b;
    case ComparisonOp::kGt:
      return a > b;
    case ComparisonOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

Result<std::optional<Rule>> NormalizeComparisons(const Rule& q) {
  Rule cur = q;
  // Phase 1: eliminate equalities by substitution.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < cur.comparisons.size(); ++i) {
      const Comparison& c = cur.comparisons[i];
      if (c.op != ComparisonOp::kEq) continue;
      if (c.lhs == c.rhs) {
        cur.comparisons.erase(cur.comparisons.begin() + i);
        changed = true;
        break;
      }
      if (c.lhs.is_variable() || c.rhs.is_variable()) {
        const Term& var = c.lhs.is_variable() ? c.lhs : c.rhs;
        const Term& other = c.lhs.is_variable() ? c.rhs : c.lhs;
        if (other.ContainsVar(var.symbol())) {
          return Status::Unsupported("cyclic equality through function term");
        }
        Substitution s;
        s.Bind(var.symbol(), other);
        Rule next = s.Apply(cur);
        next.comparisons.erase(next.comparisons.begin() + i);
        cur = std::move(next);
        changed = true;
        break;
      }
      // Both sides constant (or function): ground-evaluate.
      Comparison ground = c;
      if (!ground.lhs.IsGround() || !ground.rhs.IsGround()) {
        return Status::Unsupported("equality over function terms");
      }
      if (!ground.EvaluateGround()) return std::optional<Rule>(std::nullopt);
      cur.comparisons.erase(cur.comparisons.begin() + i);
      changed = true;
      break;
    }
  }
  // Phase 2: evaluate ground comparisons, validate the rest.
  std::vector<Comparison> kept;
  for (const Comparison& c : cur.comparisons) {
    if (c.lhs.is_function() || c.rhs.is_function()) {
      return Status::Unsupported("comparison over function terms");
    }
    if (c.lhs.is_constant() && c.rhs.is_constant()) {
      if (!c.EvaluateGround()) return std::optional<Rule>(std::nullopt);
      continue;
    }
    // One side (at least) is a variable.
    if (IsSymbolic(c.lhs) || IsSymbolic(c.rhs)) {
      if (c.op == ComparisonOp::kNe) {
        return Status::Unsupported(
            "disequality between a variable and a symbolic constant");
      }
      // Order comparison against a symbol: no numeric value can satisfy
      // it, so the query is empty.
      return std::optional<Rule>(std::nullopt);
    }
    kept.push_back(c);
  }
  cur.comparisons = std::move(kept);
  // Check joint satisfiability of what remains.
  OrderConstraints c;
  RELCONT_RETURN_NOT_OK(c.AddAll(cur.comparisons));
  if (!c.IsSatisfiable()) return std::optional<Rule>(std::nullopt);
  return std::optional<Rule>(std::move(cur));
}

bool AllComparisonsSemiInterval(const Rule& q) {
  Result<std::optional<Rule>> norm = NormalizeComparisons(q);
  if (!norm.ok()) return false;
  if (!norm->has_value()) return true;  // empty query: vacuously
  for (const Comparison& c : (*norm)->comparisons) {
    if (!c.IsSemiInterval()) return false;
  }
  return true;
}

Result<bool> CqContainedViaEntailment(const Rule& q1_in, const Rule& q2_in) {
  RELCONT_ASSIGN_OR_RETURN(std::optional<Rule> q1n,
                           NormalizeComparisons(q1_in));
  if (!q1n.has_value()) return true;  // empty query contained in anything
  RELCONT_ASSIGN_OR_RETURN(std::optional<Rule> q2n,
                           NormalizeComparisons(q2_in));
  if (!q2n.has_value()) return false;  // nonempty q1 vs empty q2
  const Rule& q1 = *q1n;
  const Rule& q2 = *q2n;
  if (q1.head.arity() != q2.head.arity()) {
    return Status::InvalidArgument("containment requires equal head arity");
  }
  RELCONT_ASSIGN_OR_RETURN(OrderConstraints c1, BuildConstraints(q1, &q2));
  if (!c1.IsSatisfiable()) return true;
  RELCONT_TRACE_SPAN("comparison_entailment");
  bool found = ForEachContainmentMapping(q2, q1, [&](const Substitution& h) {
    for (const Comparison& c : q2.comparisons) {
      RELCONT_TRACE_COUNT(kEntailmentChecks, 1);
      if (!c1.Entails(h.ApplyOnce(c))) return false;
    }
    return true;
  });
  if (found) return true;
  RELCONT_RETURN_NOT_OK(BudgetOkOrBound("comparison_entailment"));
  return false;
}

namespace {

// Shared worker: q1 ⊑ ∪(q2) via the linearization test. `q2` disjuncts are
// already normalized and satisfiable.
Result<bool> ContainedInUnionLinearized(const Rule& q1,
                                        const std::vector<Rule>& q2) {
  // Point set: all of q1's variables plus the numeric constants of both
  // sides.
  OrderConstraints c1;
  for (SymbolId v : q1.Variables()) {
    RELCONT_RETURN_NOT_OK(c1.AddPoint(Term::Var(v)));
  }
  std::vector<Term> consts;
  CollectNumericConstants(q1, &consts);
  for (const Rule& d : q2) CollectNumericConstants(d, &consts);
  for (const Term& t : consts) {
    RELCONT_RETURN_NOT_OK(c1.AddPoint(t));
  }
  RELCONT_RETURN_NOT_OK(c1.AddAll(q1.comparisons));
  if (!c1.IsSatisfiable()) return true;

  // Stream the linearizations out of the pruned matrix DFS: nothing is
  // materialized, the first uncovered linearization stops the walk, and
  // there is no structural cap on the point count — only the budget (or
  // the DFS node cap) bounds the search, surfacing as kBoundReached.
  RELCONT_TRACE_SPAN("comparison_linearizations");
  bool all_covered = true;
  Status truncated_search = Status::OK();
  Status enumeration =
      c1.ForEachLinearization([&](const Linearization& lin) {
        RELCONT_TRACE_COUNT(kLinearizations, 1);
        std::map<Term, Rational> sigma = c1.Realize(lin);
        // Collapse q1 by the linearization: variables in a class with a
        // constant become that constant; variables sharing a class
        // collapse to one representative.
        Substitution rho;
        for (const std::vector<int>& cls : lin) {
          // Pick a constant representative if present, else the first
          // variable.
          Term rep = c1.points()[cls[0]];
          for (int p : cls) {
            if (IsNumeric(c1.points()[p])) rep = c1.points()[p];
          }
          for (int p : cls) {
            const Term& t = c1.points()[p];
            if (t.is_variable() && !(t == rep)) rho.Bind(t.symbol(), rep);
          }
        }
        Rule q1_collapsed = rho.Apply(q1);

        bool covered = false;
        for (const Rule& d : q2) {
          if (d.head.arity() != q1.head.arity()) continue;
          RELCONT_TRACE_COUNT(kDisjunctChecks, 1);
          bool found = ForEachContainmentMapping(
              d, q1_collapsed, [&](const Substitution& h) {
                for (const Comparison& c : d.comparisons) {
                  if (!ComparisonHoldsUnder(h.ApplyOnce(c), sigma)) {
                    return false;
                  }
                }
                return true;
              });
          if (found) {
            covered = true;
            break;
          }
        }
        if (!covered) {
          // An uncovered linearization is a counterexample only when
          // every disjunct search ran to completion.
          truncated_search = BudgetOkOrBound("linearization");
          all_covered = false;
          return false;  // stop streaming either way
        }
        return true;
      });
  RELCONT_RETURN_NOT_OK(truncated_search);
  if (!all_covered) return false;
  // A "covered in every linearization" verdict is only sound when the
  // stream ran to completion.
  RELCONT_RETURN_NOT_OK(enumeration);
  return true;
}

}  // namespace

Result<bool> CqContainedInUnionComplete(const Rule& q1_in,
                                        const UnionQuery& q2_in) {
  RELCONT_ASSIGN_OR_RETURN(std::optional<Rule> q1n,
                           NormalizeComparisons(q1_in));
  if (!q1n.has_value()) return true;
  std::vector<Rule> q2;
  for (const Rule& d : q2_in.disjuncts) {
    RELCONT_ASSIGN_OR_RETURN(std::optional<Rule> dn, NormalizeComparisons(d));
    if (dn.has_value()) q2.push_back(std::move(*dn));
  }
  if (q2.empty()) return false;
  // Fast path: the sound homomorphism-entailment test against any single
  // disjunct (complete on its own for semi-interval disjuncts).
  for (const Rule& d : q2) {
    RELCONT_ASSIGN_OR_RETURN(bool fast, CqContainedViaEntailment(*q1n, d));
    if (fast) return true;
  }
  return ContainedInUnionLinearized(*q1n, q2);
}

Result<bool> CqContainedComplete(const Rule& q1, const Rule& q2) {
  UnionQuery u;
  u.disjuncts.push_back(q2);
  return CqContainedInUnionComplete(q1, u);
}

Result<bool> UnionContainedInUnionComplete(const UnionQuery& q1,
                                           const UnionQuery& q2) {
  for (const Rule& d : q1.disjuncts) {
    RELCONT_ASSIGN_OR_RETURN(bool contained,
                             CqContainedInUnionComplete(d, q2));
    if (!contained) return false;
  }
  return true;
}

}  // namespace relcont
