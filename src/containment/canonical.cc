#include "containment/canonical.h"

#include "eval/evaluator.h"

namespace relcont {

Result<FrozenQuery> FreezeRule(const Rule& q, Interner* interner) {
  if (!q.comparisons.empty()) {
    return Status::InvalidArgument(
        "cannot freeze a query with comparison subgoals");
  }
  RELCONT_RETURN_NOT_OK(q.CheckSafe());
  FrozenQuery out;
  for (SymbolId v : q.Variables()) {
    out.freezing.Bind(v, Term::Symbol(interner->Fresh("_k")));
  }
  for (const Atom& a : q.body) {
    out.database.Add(out.freezing.Apply(a));
  }
  out.head_tuple = out.freezing.Apply(q.head).args;
  return out;
}

Result<bool> UnionContainedInDatalog(const UnionQuery& q1, const Program& p,
                                     SymbolId goal, Interner* interner) {
  for (const Rule& d : q1.disjuncts) {
    RELCONT_ASSIGN_OR_RETURN(FrozenQuery frozen, FreezeRule(d, interner));
    RELCONT_ASSIGN_OR_RETURN(EvalResult eval,
                             Evaluate(p, frozen.database));
    if (!eval.database.Contains(goal, frozen.head_tuple)) return false;
  }
  return true;
}

}  // namespace relcont
