#include "containment/canonical.h"

#include <algorithm>
#include <unordered_map>

#include "eval/evaluator.h"
#include "trace/trace.h"

namespace relcont {

Result<FrozenQuery> FreezeRule(const Rule& q, Interner* interner) {
  if (!q.comparisons.empty()) {
    return Status::InvalidArgument(
        "cannot freeze a query with comparison subgoals");
  }
  RELCONT_RETURN_NOT_OK(q.CheckSafe());
  FrozenQuery out;
  RELCONT_TRACE_COUNT(kFrozenQueries, 1);
  for (SymbolId v : q.Variables()) {
    out.freezing.Bind(v, Term::Symbol(interner->Fresh("_k")));
    RELCONT_TRACE_COUNT(kFrozenConstants, 1);
  }
  for (const Atom& a : q.body) {
    out.database.Add(out.freezing.Apply(a));
    RELCONT_TRACE_COUNT(kFrozenAtoms, 1);
  }
  out.head_tuple = out.freezing.Apply(q.head).args;
  return out;
}

Result<bool> UnionContainedInDatalog(const UnionQuery& q1, const Program& p,
                                     SymbolId goal, Interner* interner,
                                     Rule* witness) {
  RELCONT_TRACE_SPAN("canonical_eval");
  for (const Rule& d : q1.disjuncts) {
    RELCONT_TRACE_COUNT(kDisjunctChecks, 1);
    RELCONT_ASSIGN_OR_RETURN(FrozenQuery frozen, FreezeRule(d, interner));
    RELCONT_ASSIGN_OR_RETURN(EvalResult eval,
                             Evaluate(p, frozen.database));
    if (!eval.database.Contains(goal, frozen.head_tuple)) {
      if (witness != nullptr) *witness = d;
      return false;
    }
  }
  return true;
}

namespace {

/// Renders terms with variables replaced by "?<first-occurrence index>".
class FingerprintRenderer {
 public:
  explicit FingerprintRenderer(const Interner& interner)
      : interner_(interner) {}

  void AppendTerm(const Term& t, std::string* out) {
    switch (t.kind()) {
      case Term::Kind::kVariable: {
        auto [it, inserted] =
            indices_.try_emplace(t.symbol(), indices_.size());
        out->push_back('?');
        out->append(std::to_string(it->second));
        return;
      }
      case Term::Kind::kConstant:
        out->append(t.value().ToString(interner_));
        return;
      case Term::Kind::kFunction: {
        out->append(interner_.NameOf(t.symbol()));
        out->push_back('(');
        for (size_t i = 0; i < t.args().size(); ++i) {
          if (i > 0) out->push_back(',');
          AppendTerm(t.args()[i], out);
        }
        out->push_back(')');
        return;
      }
    }
  }

  void AppendAtom(const Atom& a, std::string* out) {
    out->append(interner_.NameOf(a.predicate));
    out->push_back('(');
    for (int i = 0; i < a.arity(); ++i) {
      if (i > 0) out->push_back(',');
      AppendTerm(a.args[i], out);
    }
    out->push_back(')');
  }

 private:
  const Interner& interner_;
  std::unordered_map<SymbolId, size_t> indices_;
};

}  // namespace

std::string CanonicalRuleFingerprint(const Rule& q, const Interner& interner) {
  FingerprintRenderer renderer(interner);
  std::string out;
  renderer.AppendAtom(q.head, &out);
  out.append(":-");
  for (size_t i = 0; i < q.body.size(); ++i) {
    if (i > 0) out.push_back(';');
    renderer.AppendAtom(q.body[i], &out);
  }
  for (const Comparison& c : q.comparisons) {
    out.push_back(';');
    renderer.AppendTerm(c.lhs, &out);
    out.append(ComparisonOpToString(c.op));
    renderer.AppendTerm(c.rhs, &out);
  }
  return out;
}

std::string CanonicalProgramFingerprint(const Program& p, SymbolId goal,
                                        const Interner& interner) {
  std::vector<std::string> parts;
  parts.reserve(p.rules.size());
  for (const Rule& r : p.rules) {
    parts.push_back(CanonicalRuleFingerprint(r, interner));
  }
  std::sort(parts.begin(), parts.end());
  std::string out = interner.NameOf(goal);
  out.push_back('#');
  for (const std::string& part : parts) {
    out.append(part);
    out.push_back('\n');
  }
  return out;
}

}  // namespace relcont
