#ifndef RELCONT_CONTAINMENT_CQ_CONTAINMENT_H_
#define RELCONT_CONTAINMENT_CQ_CONTAINMENT_H_

#include "common/status.h"
#include "datalog/rule.h"

namespace relcont {

/// Classical containment for conjunctive queries and unions of conjunctive
/// queries WITHOUT comparison subgoals (Chandra–Merlin; Sagiv–Yannakakis).
/// All functions fail with kInvalidArgument if a query has comparisons —
/// use containment/comparison_containment.h for those.

/// Decides q1 ⊑ q2 (every database: answers(q1) ⊆ answers(q2)).
Result<bool> CqContained(const Rule& q1, const Rule& q2);

/// Decides q1 ⊑ ∪(q2). For conjunctive q1 this reduces to containment in a
/// single disjunct (canonical-database argument).
Result<bool> CqContainedInUnion(const Rule& q1, const UnionQuery& q2);

/// Decides ∪(q1) ⊑ ∪(q2): every disjunct of q1 contained in the union.
Result<bool> UnionContainedInUnion(const UnionQuery& q1,
                                   const UnionQuery& q2);

/// Decides equivalence of two UCQs.
Result<bool> UnionEquivalent(const UnionQuery& q1, const UnionQuery& q2);

/// Removes disjuncts of `q` that are contained in another disjunct
/// (minimization at the union level; individual disjuncts are not cored).
Result<UnionQuery> MinimizeUnion(const UnionQuery& q);

}  // namespace relcont

#endif  // RELCONT_CONTAINMENT_CQ_CONTAINMENT_H_
