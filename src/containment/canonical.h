#ifndef RELCONT_CONTAINMENT_CANONICAL_H_
#define RELCONT_CONTAINMENT_CANONICAL_H_

#include "common/status.h"
#include "datalog/substitution.h"
#include "eval/database.h"

namespace relcont {

/// The frozen (canonical) database of a conjunctive query: each distinct
/// variable becomes a fresh symbolic constant; the body atoms become facts.
struct FrozenQuery {
  Database database;
  /// The frozen head tuple — the tuple the query derives on its canonical
  /// database.
  Tuple head_tuple;
  /// Variable -> frozen constant.
  Substitution freezing;
};

/// Freezes a comparison-free conjunctive query (Chandra–Merlin canonical
/// database). Fails with kInvalidArgument on comparisons — those require a
/// canonical database per linearization (see comparison_containment).
Result<FrozenQuery> FreezeRule(const Rule& q, Interner* interner);

/// Decides ∪(q1) ⊑ P where P is an arbitrary (possibly recursive) datalog
/// program with goal predicate `goal`: freeze each disjunct and evaluate P
/// on the canonical database. Comparison-free only.
Result<bool> UnionContainedInDatalog(const UnionQuery& q1, const Program& p,
                                     SymbolId goal, Interner* interner);

}  // namespace relcont

#endif  // RELCONT_CONTAINMENT_CANONICAL_H_
