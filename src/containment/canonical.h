#ifndef RELCONT_CONTAINMENT_CANONICAL_H_
#define RELCONT_CONTAINMENT_CANONICAL_H_

#include "common/status.h"
#include "datalog/substitution.h"
#include "eval/database.h"

namespace relcont {

/// The frozen (canonical) database of a conjunctive query: each distinct
/// variable becomes a fresh symbolic constant; the body atoms become facts.
struct FrozenQuery {
  Database database;
  /// The frozen head tuple — the tuple the query derives on its canonical
  /// database.
  Tuple head_tuple;
  /// Variable -> frozen constant.
  Substitution freezing;
};

/// Freezes a comparison-free conjunctive query (Chandra–Merlin canonical
/// database). Fails with kInvalidArgument on comparisons — those require a
/// canonical database per linearization (see comparison_containment).
Result<FrozenQuery> FreezeRule(const Rule& q, Interner* interner);

/// Decides ∪(q1) ⊑ P where P is an arbitrary (possibly recursive) datalog
/// program with goal predicate `goal`: freeze each disjunct and evaluate P
/// on the canonical database. Comparison-free only. When the containment
/// fails and `witness` is non-null, it receives the first disjunct of q1
/// whose canonical database defeats P.
Result<bool> UnionContainedInDatalog(const UnionQuery& q1, const Program& p,
                                     SymbolId goal, Interner* interner,
                                     Rule* witness = nullptr);

/// A variable-renaming-invariant fingerprint of `q`: every variable is
/// replaced by an index in first-occurrence order (head, then body, then
/// comparisons); predicates and constants render by their interned
/// spelling. Two rules have equal fingerprints iff they are syntactically
/// identical up to a consistent renaming of variables — the canonical-form
/// analogue of freezing that needs no fresh constants, so fingerprints
/// computed against *different* interners agree whenever the spellings do.
/// This is what makes it usable as a cross-worker cache key (see
/// service/decision_cache.h).
std::string CanonicalRuleFingerprint(const Rule& q, const Interner& interner);

/// Fingerprint of a goal query: the goal's spelling plus the rule
/// fingerprints sorted lexicographically (rule order never affects UCQ or
/// datalog semantics, so reorderings key identically).
std::string CanonicalProgramFingerprint(const Program& p, SymbolId goal,
                                        const Interner& interner);

}  // namespace relcont

#endif  // RELCONT_CONTAINMENT_CANONICAL_H_
